#!/usr/bin/env bash
# One-command static/dynamic analysis matrix for TeNDaX.
#
#   tools/check.sh            # run everything available on this machine
#   tools/check.sh --fast     # skip the sanitizer ctest runs
#
# Stages (each skipped gracefully when its toolchain is missing):
#   1. thread-safety   clang -Wthread-safety -Werror build
#                      (TENDAX_THREAD_SAFETY=ON; proves lock annotations)
#   2. lock-order      gcc/clang build with TENDAX_LOCK_ORDER=ON, then the
#                      full ctest suite under the runtime validator
#                      (includes the `checkpoint` label: checkpointer vs
#                      editor lock ranks)
#   3. checkpoint      ctest -L checkpoint on a default build — fuzzy
#                      checkpoint pipeline, WAL truncation, crash sweep
#   4. overload        ctest -L overload on a default build — admission
#                      control, deadline propagation, the editor storm
#   5. mvcc            ctest -L mvcc on a default build — lock-free
#                      snapshot reads, purge-floor semantics, the seeded
#                      snapshot-consistency harness
#   6. clang-tidy      bug/concurrency/performance checks over src/
#   7. sanitizers      ctest under -fsanitize=address and =undefined
#                      (the checkpoint + overload + mvcc suites run under
#                      both as well)
#   8. tsan mvcc       ctest -L mvcc under -fsanitize=thread — snapshot
#                      publication / COW / reclamation raced against the
#                      writer storm, checkpointer, purge, and eviction
#
# Exit code is non-zero iff any stage that *ran* failed.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_ROOT="${TENDAX_CHECK_BUILD_DIR:-$ROOT/build-check}"
JOBS="${TENDAX_CHECK_JOBS:-$(nproc 2>/dev/null || echo 4)}"
FAST=0
[ "${1:-}" = "--fast" ] && FAST=1

failures=()
ran=()
skipped=()

note()  { printf '\n== %s ==\n' "$*"; }
have()  { command -v "$1" >/dev/null 2>&1; }

run_stage() { # name, function
  local name="$1" fn="$2"
  note "$name"
  if "$fn"; then
    ran+=("$name")
  else
    failures+=("$name")
  fi
}

skip_stage() { # name, reason
  note "$1 — SKIPPED ($2)"
  skipped+=("$1")
}

stage_thread_safety() {
  local dir="$BUILD_ROOT/thread-safety"
  cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
        -DTENDAX_THREAD_SAFETY=ON >/dev/null &&
  cmake --build "$dir" -j "$JOBS"
}

stage_lock_order() {
  local dir="$BUILD_ROOT/lock-order"
  cmake -S "$ROOT" -B "$dir" -DTENDAX_LOCK_ORDER=ON >/dev/null &&
  cmake --build "$dir" -j "$JOBS" &&
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

stage_checkpoint() {
  local dir="$BUILD_ROOT/checkpoint"
  cmake -S "$ROOT" -B "$dir" >/dev/null &&
  cmake --build "$dir" -j "$JOBS" &&
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L checkpoint
}

stage_overload() {
  local dir="$BUILD_ROOT/checkpoint"  # reuse the default-config build
  cmake -S "$ROOT" -B "$dir" >/dev/null &&
  cmake --build "$dir" -j "$JOBS" &&
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L overload
}

stage_mvcc() {
  local dir="$BUILD_ROOT/checkpoint"  # reuse the default-config build
  cmake -S "$ROOT" -B "$dir" >/dev/null &&
  cmake --build "$dir" -j "$JOBS" &&
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L mvcc
}

stage_tsan_mvcc() {
  local dir="$BUILD_ROOT/san-thread"
  cmake -S "$ROOT" -B "$dir" -DTENDAX_SANITIZE=thread >/dev/null &&
  cmake --build "$dir" -j "$JOBS" &&
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -L mvcc
}

stage_clang_tidy() {
  local dir="$BUILD_ROOT/tidy"
  cmake -S "$ROOT" -B "$dir" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null ||
    return 1
  # shellcheck disable=SC2046
  clang-tidy -p "$dir" --quiet $(find "$ROOT/src" -name '*.cc' | sort)
}

stage_sanitizer() { # sanitize value
  local kind="$1" dir="$BUILD_ROOT/san-$1"
  cmake -S "$ROOT" -B "$dir" -DTENDAX_SANITIZE="$kind" >/dev/null &&
  cmake --build "$dir" -j "$JOBS" &&
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}
stage_asan() { stage_sanitizer address; }
stage_ubsan() { stage_sanitizer undefined; }

if have clang++; then
  run_stage "thread-safety (clang -Wthread-safety -Werror)" stage_thread_safety
else
  skip_stage "thread-safety" "clang++ not installed; annotations compile as no-ops elsewhere"
fi

run_stage "lock-order (TENDAX_LOCK_ORDER=ON ctest)" stage_lock_order

run_stage "checkpoint (ctest -L checkpoint)" stage_checkpoint

run_stage "overload (ctest -L overload)" stage_overload

run_stage "mvcc (ctest -L mvcc)" stage_mvcc

if have clang-tidy; then
  run_stage "clang-tidy" stage_clang_tidy
else
  skip_stage "clang-tidy" "clang-tidy not installed"
fi

if [ "$FAST" = 1 ]; then
  skip_stage "sanitizers" "--fast"
else
  run_stage "asan ctest" stage_asan
  run_stage "ubsan ctest" stage_ubsan
  run_stage "tsan mvcc (ctest -L mvcc)" stage_tsan_mvcc
fi

note "summary"
printf 'ran:     %s\n' "${ran[*]:-none}"
printf 'skipped: %s\n' "${skipped[*]:-none}"
if [ "${#failures[@]}" -gt 0 ]; then
  printf 'FAILED:  %s\n' "${failures[*]}"
  exit 1
fi
echo "all stages that ran passed"

// Version history end to end: instantiate a report from a template, let
// two authors revise it, inspect exact version diffs and per-author
// contributions, then purge old history and show the storage win.
//
//   build/examples/versioned_report

#include <cstdio>

#include "core/tendax.h"

using namespace tendax;

int main() {
  auto server_res = TendaxServer::Open({});
  if (!server_res.ok()) return 1;
  TendaxServer* server = server_res->get();

  UserId alice = *server->accounts()->CreateUser("alice");
  UserId bob = *server->accounts()->CreateUser("bob");

  // A reusable report template with layout baked in.
  TemplateSection title;
  title.type = "title";
  title.label = "title";
  title.placeholder = "Quarterly Report";
  title.layout["bold"] = "true";
  TemplateSection body;
  body.type = "section";
  body.label = "findings";
  body.placeholder = "Findings: none yet.";
  std::vector<TemplateSection> sections;
  sections.push_back(title);
  sections.push_back(body);
  (void)server->templates()->Define(alice, "quarterly", std::move(sections));

  auto doc = server->templates()->Instantiate(alice, "quarterly", "q3.doc");
  Version v_template = *server->text()->CurrentVersion(*doc);
  std::printf("instantiated from template (v%llu):\n%s\n",
              static_cast<unsigned long long>(v_template),
              server->documents()->RenderMarkup(*doc)->c_str());

  // Two authors revise.
  (void)server->text()->DeleteRange(bob, *doc, 27, 9);  // "none yet."
  (void)server->text()->InsertText(bob, *doc, 27,
                                   "revenue up, costs stable.");
  (void)server->text()->InsertText(alice, *doc, 0, "[DRAFT] ");
  Version v_revised = *server->text()->CurrentVersion(*doc);

  // Exact diff between template state and now — no LCS guessing, the
  // database knows which character appeared/disappeared when and by whom.
  std::printf("%s\n",
              server->diff()->Render(*doc, v_template, v_revised)->c_str());

  auto contributions =
      server->diff()->Contributions(*doc, v_template, v_revised);
  std::printf("contributions since the template:\n");
  for (const auto& [user, chars] : *contributions) {
    std::printf("  %s wrote %llu characters\n",
                server->accounts()->UserName(user)->c_str(),
                static_cast<unsigned long long>(chars));
  }

  // History retention vs storage: purge everything already deleted.
  size_t before = server->text()->FullChain(*doc)->size();
  uint64_t purged = *server->text()->PurgeHistory(alice, *doc, v_revised);
  size_t after = server->text()->FullChain(*doc)->size();
  std::printf("\npurge: %zu chain records -> %zu (reclaimed %llu tombstones)\n",
              before, after, static_cast<unsigned long long>(purged));
  std::printf("text is untouched: \"%s\"\n",
              server->text()->Text(*doc)->c_str());
  return 0;
}

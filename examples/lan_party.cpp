// The word-processing "LAN-party" of the paper's demo (Sec. 3): several
// editors — originally on Windows, Linux and macOS — hammer on the same
// document at once. Concurrent typing, layout, notes, an embedded image,
// local and global undo/redo, and awareness, all through committed
// database transactions.
//
//   build/examples/lan_party [num_editors] [edits_per_editor]

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/tendax.h"
#include "workload/generators.h"

using namespace tendax;

int main(int argc, char** argv) {
  int num_editors = argc > 1 ? std::atoi(argv[1]) : 4;
  int edits_each = argc > 2 ? std::atoi(argv[2]) : 60;

  auto server_res = TendaxServer::Open({});
  if (!server_res.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 server_res.status().ToString().c_str());
    return 1;
  }
  TendaxServer* server = server_res->get();

  static const char* kClients[] = {"editor-windows-xp", "editor-linux",
                                   "editor-macosx"};

  // Party guests.
  std::vector<UserId> users;
  std::vector<std::unique_ptr<Editor>> editors;
  for (int i = 0; i < num_editors; ++i) {
    auto user = server->accounts()->CreateUser("guest" + std::to_string(i));
    auto editor =
        server->AttachEditor(*user, kClients[i % 3]);
    users.push_back(*user);
    editors.push_back(std::move(*editor));
  }

  auto doc = editors[0]->CreateDocument("party-notes.txt");
  for (auto& editor : editors) (void)editor->Open(*doc);

  std::printf("== %d editors join the party on '%s' ==\n", num_editors,
              "party-notes.txt");

  // Everyone types concurrently, driven by a synthetic typing trace.
  std::vector<std::thread> threads;
  for (int i = 0; i < num_editors; ++i) {
    threads.emplace_back([&, i] {
      TypingTraceGenerator trace(1000 + i);
      for (int e = 0; e < edits_each; ++e) {
        auto len = server->text()->Length(*doc);
        if (!len.ok()) continue;
        TypingAction action = trace.Next(static_cast<size_t>(*len));
        if (action.kind == TypingAction::Kind::kInsert) {
          (void)editors[i]->Type(*doc, action.pos, action.text);
        } else {
          (void)editors[i]->Erase(*doc, action.pos, action.len);
        }
        (void)editors[i]->SetCursor(*doc, action.pos);
      }
    });
  }
  for (auto& t : threads) t.join();

  auto length = server->text()->Length(*doc);
  auto version = server->text()->CurrentVersion(*doc);
  std::printf("after the typing storm: %llu chars, version %llu\n",
              static_cast<unsigned long long>(*length),
              static_cast<unsigned long long>(*version));

  // Awareness: who is here, where are their cursors?
  std::printf("\n== awareness ==\n");
  for (const SessionInfo& s : server->sessions()->SessionsViewing(*doc)) {
    std::printf("  session %llu (user %llu, %s) has the document open\n",
                static_cast<unsigned long long>(s.id.value),
                static_cast<unsigned long long>(s.user.value),
                s.client.c_str());
  }
  std::printf("  %zu live cursors\n",
              server->sessions()->CursorsFor(*doc).size());

  // Collaborative layout: guest 0 bolds the first word; guest 1 disagrees
  // with the font and overrides part of it (last writer wins per run).
  if (*length >= 12) {
    (void)editors[0]->ApplyLayout(*doc, 0, 8, "bold", "true");
    (void)editors[1 % num_editors]->ApplyLayout(*doc, 4, 8, "font", "mono");
    std::printf("\n== layout (first 90 chars of markup) ==\n  %s...\n",
                server->documents()->RenderMarkup(*doc)->substr(0, 90).c_str());
  }

  // Notes and an embedded image.
  (void)editors[0]->Annotate(*doc, 0, "party started here");
  std::string fake_png(2048, '\x7f');
  (void)editors[0]->InsertImage(*doc, 0, "group-photo.png", fake_png);
  std::printf("\n== annotations ==\n  %zu notes, %zu embedded objects\n",
              server->documents()->Notes(*doc)->size(),
              server->documents()->Objects(*doc).size());

  // Local undo: the last guest takes back their own latest edit.
  // Global undo: guest 0 takes back anyone's.
  Editor* last = editors.back().get();
  if (last->Undo(*doc).ok()) {
    std::printf("\nguest %d locally undid their last edit\n",
                num_editors - 1);
  }
  if (editors[0]->UndoAnyone(*doc).ok()) {
    std::printf("guest 0 globally undid someone's edit\n");
  }
  std::printf("document now: %llu chars at version %llu\n",
              static_cast<unsigned long long>(*server->text()->Length(*doc)),
              static_cast<unsigned long long>(
                  *server->text()->CurrentVersion(*doc)));

  // Database-side statistics: the party as the DBMS saw it.
  auto txn_stats = server->db()->txns()->stats();
  auto lock_stats = server->db()->locks()->stats();
  std::printf("\n== database view of the party ==\n");
  std::printf("  transactions: %llu committed, %llu aborted\n",
              static_cast<unsigned long long>(txn_stats.committed),
              static_cast<unsigned long long>(txn_stats.aborted));
  std::printf("  locks: %llu acquired, %llu waits, %llu deadlocks\n",
              static_cast<unsigned long long>(lock_stats.acquisitions),
              static_cast<unsigned long long>(lock_stats.waits),
              static_cast<unsigned long long>(lock_stats.deadlocks));
  std::printf("  change events fanned out: %llu\n",
              static_cast<unsigned long long>(
                  server->sessions()->events_delivered()));
  return 0;
}

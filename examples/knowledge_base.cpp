// Document management over a small knowledge base (paper Sec. 3, bullets
// 3-6): dynamic folders, data lineage (Fig. 1 view), search with ranking
// options, and the visual-mining overview (Fig. 2 view).
//
//   build/examples/knowledge_base

#include <cstdio>

#include "core/tendax.h"
#include "workload/generators.h"

using namespace tendax;

int main() {
  auto server_res = TendaxServer::Open({});
  if (!server_res.ok()) return 1;
  TendaxServer* server = server_res->get();

  UserId writer = *server->accounts()->CreateUser("writer");
  UserId reader = *server->accounts()->CreateUser("reader");

  // A corpus: three database-flavoured docs, two gardening docs, plus a
  // survey assembled by copy & paste from the others.
  struct Seed {
    const char* name;
    const char* text;
  };
  const Seed seeds[] = {
      {"txn-notes", "transaction logs recovery checkpoint buffer database"},
      {"index-notes", "btree index pages split database lookup scan"},
      {"storage-notes", "pages buffer pool eviction database disk layout"},
      {"garden-roses", "roses pruning soil watering sunlight petals"},
      {"garden-herbs", "basil thyme watering soil harvest kitchen"},
  };
  std::vector<DocumentId> docs;
  for (const Seed& seed : seeds) {
    auto doc = server->text()->CreateDocument(writer, seed.name);
    (void)server->text()->InsertText(writer, *doc, 0, seed.text);
    docs.push_back(*doc);
  }

  // The survey quotes the first two database docs and one web page.
  auto survey = server->text()->CreateDocument(writer, "db-survey");
  auto q1 = server->text()->Copy(writer, docs[0], 0, 16);
  (void)server->text()->Paste(writer, *survey, 0, *q1);
  (void)server->text()->InsertText(writer, *survey, 16, " and ");
  auto q2 = server->text()->Copy(writer, docs[1], 0, 11);
  (void)server->text()->Paste(writer, *survey, 21, *q2);
  (void)server->text()->InsertText(
      writer, *survey, 32, " (see also the manual)",
      "https://db.example.org/manual");

  // The reader opens a few documents (feeding read metadata).
  auto reader_ed = server->AttachEditor(reader, "editor-linux");
  (void)(*reader_ed)->Open(docs[0]);
  (void)(*reader_ed)->Open(*survey);
  (void)(*reader_ed)->Open(*survey);  // reads twice

  // --- dynamic folders ---
  std::printf("== dynamic folders ==\n");
  auto read_folder = server->folders()->CreateDynamicFolder(
      "read-by-reader", FolderQuery::ReadBy(reader, 0));
  auto db_folder = server->folders()->CreateDynamicFolder(
      "database-docs", FolderQuery::NameContains("notes"));
  for (auto [folder, label] :
       {std::pair{*read_folder, "read-by-reader"},
        std::pair{*db_folder, "*notes*"}}) {
    auto contents = server->folders()->DynamicContents(folder);
    std::printf("  [%s] ", label);
    for (DocumentId d : *contents) {
      std::printf("%s ", server->text()->GetDocumentInfo(d)->name.c_str());
    }
    std::printf("\n");
  }
  // Folders are fluent: a new read changes membership within the same call.
  (void)(*reader_ed)->Open(docs[3]);
  std::printf("  after reading garden-roses, read-by-reader has %zu docs\n",
              server->folders()->DynamicContents(*read_folder)->size());

  // --- data lineage (Fig. 1) ---
  std::printf("\n== data lineage of 'db-survey' (Fig. 1 view) ==\n");
  std::printf("%s", server->lineage()->RenderDocumentLineage(*survey)->c_str());
  auto graph = server->lineage()->BuildGraph();
  std::printf("\ndocument-space provenance graph:\n%s",
              server->lineage()->RenderAscii(*graph).c_str());

  // --- search with ranking options ---
  std::printf("\n== search: 'database' ==\n");
  for (Ranking ranking : {Ranking::kRelevance, Ranking::kNewest,
                          Ranking::kMostCited, Ranking::kMostRead}) {
    auto results = server->search()->Search("database", ranking, {}, 3);
    std::printf("  ranked by %-10s:", RankingName(ranking));
    for (const SearchResult& r : *results) {
      std::printf(" %s", r.name.c_str());
    }
    std::printf("\n");
  }

  // --- text & visual mining (Fig. 2) ---
  std::printf("\n== text mining ==\n");
  (void)server->text_miner()->BuildVectors();
  auto keywords = server->text_miner()->Keywords(*survey, 3);
  std::printf("  survey keywords:");
  for (const auto& [term, weight] : *keywords) {
    std::printf(" %s", term.c_str());
  }
  auto nearest = server->text_miner()->Nearest(docs[0], 2);
  std::printf("\n  nearest to txn-notes: %s, %s\n",
              server->text()->GetDocumentInfo((*nearest)[0].first)->name.c_str(),
              server->text()->GetDocumentInfo((*nearest)[1].first)->name.c_str());

  std::printf("\n== visual mining (Fig. 2 view) ==\n");
  auto points = server->visual_miner()->Project(60);
  std::printf("%s",
              server->visual_miner()->RenderAscii(*points).c_str());
  return 0;
}

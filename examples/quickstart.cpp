// Quickstart: open a TeNDaX server, create users, edit a document
// collaboratively, and look at the metadata the database gathered for free.
//
//   build/examples/quickstart

#include <cstdio>

#include "core/tendax.h"

using namespace tendax;

#define CHECK_OK(expr)                                        \
  do {                                                        \
    auto _st = (expr);                                        \
    if (!_st.ok()) {                                          \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__,     \
                   __LINE__, _st.ToString().c_str());         \
      return 1;                                               \
    }                                                         \
  } while (0)

int main() {
  // 1. Open an in-memory server (pass options.db.path for an on-disk one).
  TendaxOptions options;
  auto server = TendaxServer::Open(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  // 2. Create two users and attach an editor client for each.
  auto alice = (*server)->accounts()->CreateUser("alice");
  auto bob = (*server)->accounts()->CreateUser("bob");
  auto alice_ed = (*server)->AttachEditor(*alice, "editor-linux");
  auto bob_ed = (*server)->AttachEditor(*bob, "editor-macos");

  // 3. Alice creates a document and types; every keystroke batch commits a
  //    real database transaction before it becomes visible.
  auto doc = (*alice_ed)->CreateDocument("quickstart.txt");
  CHECK_OK((*alice_ed)->Type(*doc, 0, "Text lives in the database. "));

  // 4. Bob opens the same document and appends concurrently.
  CHECK_OK((*bob_ed)->Open(*doc));
  CHECK_OK((*bob_ed)->Type(*doc, 28, "Each character is a record."));

  auto text = (*alice_ed)->Text(*doc);
  std::printf("document text : %s\n", text->c_str());

  // 5. Bob regrets it; alice undoes bob's edit globally, then brings it back.
  CHECK_OK((*alice_ed)->UndoAnyone(*doc));
  std::printf("after undo    : %s\n", (*alice_ed)->Text(*doc)->c_str());
  CHECK_OK((*alice_ed)->RedoAnyone(*doc));
  std::printf("after redo    : %s\n", (*alice_ed)->Text(*doc)->c_str());

  // 6. Character-level metadata came for free.
  auto ch = (*server)->text()->CharAt(*doc, 30);
  std::printf("char 30 '%c'   : author=user:%llu inserted@version=%llu\n",
              static_cast<char>(ch->cp),
              static_cast<unsigned long long>(ch->author.value),
              static_cast<unsigned long long>(ch->inserted_version));

  // 7. So did document-level metadata.
  auto meta = (*server)->meta()->Meta(*doc);
  std::printf("doc metadata  : %zu authors, %llu edits, %zu readers\n",
              meta.authors.size(),
              static_cast<unsigned long long>(meta.total_edits),
              meta.readers.size());

  // 8. Time travel: the full history is queryable per version.
  auto v1 = (*server)->text()->TextAtVersion(*doc, 1);
  std::printf("text @ v1     : %s\n", v1->c_str());
  return 0;
}

// Interactive TeNDaX shell: drive a server from the command line.
//
//   build/examples/tendax_shell           # interactive
//   echo "help" | build/examples/tendax_shell
//
// Commands (one per line):
//   user <name>                      create/switch user
//   new <docname>                    create document (becomes current)
//   open <docname>                   switch current document
//   ls                               list documents
//   show                             print current document
//   type <pos> <text...>             insert text
//   erase <pos> <len>                delete range
//   bold <pos> <len>                 apply bold layout
//   note <pos> <text...>             annotate
//   undo | redo | gundo | gredo      local/global undo/redo
//   hist                             version + length
//   diff <from> <to>                 version diff
//   lineage                          provenance of current document
//   search <term...>                 ranked search
//   meta                             metadata of current document
//   quit

#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/tendax.h"

using namespace tendax;

namespace {

void PrintStatus(const Status& st) {
  std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
}

}  // namespace

int main() {
  auto server_res = TendaxServer::Open({});
  if (!server_res.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 server_res.status().ToString().c_str());
    return 1;
  }
  TendaxServer* server = server_res->get();

  UserId user = *server->accounts()->CreateUser("shell-user");
  auto editor = *server->AttachEditor(user, "tendax-shell");
  DocumentId current;

  std::printf("tendax shell — type 'help' for commands\n");
  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string op;
    in >> op;
    if (op.empty()) continue;
    if (op == "quit" || op == "exit") break;

    if (op == "help") {
      std::printf(
          "user new open ls show type erase bold note undo redo gundo gredo "
          "hist diff lineage search meta quit\n");
    } else if (op == "user") {
      std::string name;
      in >> name;
      auto found = server->accounts()->FindUser(name);
      auto id = found.ok() ? *found : *server->accounts()->CreateUser(name);
      user = id;
      editor = *server->AttachEditor(user, "tendax-shell");
      if (current.valid()) (void)editor->Open(current);
      std::printf("now acting as %s\n", name.c_str());
    } else if (op == "new") {
      std::string name;
      in >> name;
      auto doc = editor->CreateDocument(name);
      if (doc.ok()) {
        current = *doc;
        std::printf("created %s\n", name.c_str());
      } else {
        PrintStatus(doc.status());
      }
    } else if (op == "open") {
      std::string name;
      in >> name;
      auto doc = server->text()->FindDocumentByName(name);
      if (doc.ok()) {
        current = *doc;
        PrintStatus(editor->Open(current));
      } else {
        PrintStatus(doc.status());
      }
    } else if (op == "ls") {
      for (DocumentId doc : server->text()->ListDocuments()) {
        auto info = server->text()->GetDocumentInfo(doc);
        if (info.ok()) {
          std::printf("  %-24s v%-4llu %llu chars [%s]\n", info->name.c_str(),
                      static_cast<unsigned long long>(info->version),
                      static_cast<unsigned long long>(info->length),
                      info->state.c_str());
        }
      }
    } else if (!current.valid()) {
      std::printf("no document open ('new' or 'open' first)\n");
    } else if (op == "show") {
      auto markup = server->documents()->RenderMarkup(current);
      std::printf("%s\n", markup.ok() ? markup->c_str() : "(error)");
    } else if (op == "type") {
      size_t pos;
      in >> pos;
      std::string text;
      std::getline(in, text);
      if (!text.empty() && text[0] == ' ') text.erase(0, 1);
      PrintStatus(editor->Type(current, pos, text));
    } else if (op == "erase") {
      size_t pos, len;
      in >> pos >> len;
      PrintStatus(editor->Erase(current, pos, len));
    } else if (op == "bold") {
      size_t pos, len;
      in >> pos >> len;
      PrintStatus(editor->ApplyLayout(current, pos, len, "bold", "true"));
    } else if (op == "note") {
      size_t pos;
      in >> pos;
      std::string text;
      std::getline(in, text);
      PrintStatus(editor->Annotate(current, pos, text).status());
    } else if (op == "undo") {
      PrintStatus(editor->Undo(current));
    } else if (op == "redo") {
      PrintStatus(editor->Redo(current));
    } else if (op == "gundo") {
      PrintStatus(editor->UndoAnyone(current));
    } else if (op == "gredo") {
      PrintStatus(editor->RedoAnyone(current));
    } else if (op == "hist") {
      auto info = server->text()->GetDocumentInfo(current);
      if (info.ok()) {
        std::printf("version %llu, %llu live chars, %zu chain records\n",
                    static_cast<unsigned long long>(info->version),
                    static_cast<unsigned long long>(info->length),
                    server->text()->FullChain(current)->size());
      }
    } else if (op == "diff") {
      Version from, to;
      in >> from >> to;
      auto rendered = server->diff()->Render(current, from, to);
      std::printf("%s", rendered.ok() ? rendered->c_str()
                                      : (rendered.status().ToString() + "\n")
                                            .c_str());
    } else if (op == "lineage") {
      auto rendered = server->lineage()->RenderDocumentLineage(current);
      std::printf("%s", rendered.ok() ? rendered->c_str() : "(error)\n");
    } else if (op == "search") {
      std::string query;
      std::getline(in, query);
      auto results = server->search()->Search(query);
      if (results.ok()) {
        for (const SearchResult& r : *results) {
          std::printf("  %-24s %.3f  %s\n", r.name.c_str(), r.score,
                      r.snippet.c_str());
        }
      } else {
        PrintStatus(results.status());
      }
    } else if (op == "meta") {
      DocumentMeta meta = server->meta()->Meta(current);
      std::printf("%zu authors, %zu readers, %llu edits, %llu reads\n",
                  meta.authors.size(), meta.readers.size(),
                  static_cast<unsigned long long>(meta.total_edits),
                  static_cast<unsigned long long>(meta.total_reads));
    } else {
      std::printf("unknown command '%s' (try 'help')\n", op.c_str());
    }
    // Show what other editors did in the meantime (awareness).
    auto events = editor->PollEvents();
    if (events.ok() && !events->empty()) {
      std::printf("  [%zu change notification(s) received]\n",
                  events->size());
    }
  }
  return 0;
}

// In-document business processes (paper Sec. 3, bullet 2): a contract gets
// a dynamic review workflow — tasks assigned to users and roles, re-routed
// and extended at run time while the document is being edited.
//
//   build/examples/workflow_document

#include <cstdio>

#include "core/tendax.h"

using namespace tendax;

namespace {

void PrintRoute(TendaxServer* server, ProcessId process) {
  auto proc = server->workflows()->GetProcess(process);
  std::printf("process '%s' [%s]\n", proc->name.c_str(),
              proc->state.c_str());
  for (const TaskInfo& t : server->workflows()->Route(process)) {
    std::printf("  %llu. %-12s -> %s%llu  [%s]\n",
                static_cast<unsigned long long>(t.order + 1), t.name.c_str(),
                t.assignee.is_role ? "role:" : "user:",
                static_cast<unsigned long long>(t.assignee.id),
                TaskStateName(t.state));
  }
}

}  // namespace

int main() {
  auto server_res = TendaxServer::Open({});
  if (!server_res.ok()) return 1;
  TendaxServer* server = server_res->get();

  // Cast: an author, a translator, and a verification role with one member.
  UserId author = *server->accounts()->CreateUser("author");
  UserId translator = *server->accounts()->CreateUser("translator");
  UserId verifier = *server->accounts()->CreateUser("verifier");
  RoleId verifiers = *server->accounts()->CreateRole("verifiers");
  (void)server->accounts()->AssignRole(verifier, verifiers);

  // The contract document.
  auto editor = server->AttachEditor(author, "editor-linux");
  auto doc = (*editor)->CreateDocument("contract.txt");
  (void)(*editor)->Type(
      *doc, 0,
      "Clause 1: the parties agree to collaborate.\n"
      "Clause 2: TeNDaX stores this contract in a database.\n");

  // Define the workflow: translate clause 2, then verify the whole text.
  auto process =
      server->workflows()->DefineProcess(author, *doc, "contract-review");
  auto translate = server->workflows()->AddTask(
      author, *process, "translate", "German translation of clause 2",
      Assignee::User(translator), 44, 52);
  auto verify = server->workflows()->AddTask(
      author, *process, "verify", "legal verification",
      Assignee::Role(verifiers));
  std::printf("== initial route ==\n");
  PrintRoute(server, *process);

  // The translator works: their worklist shows the ready task anchored to
  // the clause.
  auto worklist = server->workflows()->Worklist(translator);
  std::printf("\ntranslator's worklist: %zu task(s), first anchored to a "
              "%zu-char clause\n",
              worklist.size(), worklist.empty() ? 0ul : size_t{52});
  auto trans_ed = server->AttachEditor(translator, "editor-macos");
  (void)(*trans_ed)->Open(*doc);
  (void)(*trans_ed)->Type(*doc, 97, "[DE] Klausel 2 uebersetzt.\n");
  (void)server->workflows()->Complete(translator, *translate);

  // Run-time change: before verification, the author squeezes in a legal
  // pre-check and routes it to themselves.
  auto precheck = server->workflows()->InsertTaskAfter(
      author, *translate, "legal-precheck", "inserted at run time",
      Assignee::User(author));
  std::printf("\n== after dynamic insertion (while the process runs) ==\n");
  PrintRoute(server, *process);

  (void)server->workflows()->Complete(author, *precheck);

  // The verifier rejects; the author reroutes to the translator instead.
  (void)server->workflows()->Reject(verifier, *verify,
                                    "missing signature block");
  std::printf("\n== after rejection ==\n");
  PrintRoute(server, *process);
  (void)server->workflows()->Reroute(author, *verify,
                                     Assignee::User(translator));
  (void)server->workflows()->Complete(translator, *verify);
  std::printf("\n== final ==\n");
  PrintRoute(server, *process);

  // Everything the workflow did is in the document's audit trail.
  int workflow_entries = 0;
  (void)server->meta()->VisitAudit([&](const AuditEntry& e) {
    if (e.doc == *doc && e.kind == AuditKind::kWorkflow) ++workflow_entries;
    return true;
  });
  std::printf("\naudit trail recorded %d workflow transactions\n",
              workflow_entries);
  return 0;
}

// E1 — "everything typed appears as soon as it is stored persistently":
// per-character editing as real-time database transactions.
//
// Measures single-character insert/delete latency against document size,
// plus the DESIGN.md ablations: cached position lookup vs full chain walk,
// and read-at-head vs historic-version reads.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "core/tendax.h"
#include "storage/wal.h"
#include "workload/generators.h"

namespace tendax {
namespace {

struct EditingEnv {
  std::unique_ptr<TendaxServer> server;
  UserId user;

  static EditingEnv* Get() {
    static EditingEnv* env = [] {
      auto* e = new EditingEnv();
      TendaxOptions options;
      options.db.buffer_pool_pages = 16384;
      e->server = *TendaxServer::Open(std::move(options));
      e->user = *e->server->accounts()->CreateUser("bench");
      return e;
    }();
    return env;
  }

  DocumentId FreshDoc(size_t chars) {
    static int counter = 0;
    auto doc = server->text()->CreateDocument(
        user, "bench-doc-" + std::to_string(counter++));
    CorpusGenerator corpus(counter);
    size_t remaining = chars;
    while (remaining > 0) {
      size_t batch = std::min<size_t>(remaining, 4000);
      std::string text = corpus.Document(batch / 6 + 1).substr(0, batch);
      (void)server->text()->InsertText(user, *doc, 0, text);
      remaining -= text.size();
    }
    return *doc;
  }
};

// One keystroke at the end of the document = one committed transaction.
void BM_InsertCharAtEnd(benchmark::State& state) {
  EditingEnv* env = EditingEnv::Get();
  DocumentId doc = env->FreshDoc(static_cast<size_t>(state.range(0)));
  size_t pos = static_cast<size_t>(*env->server->text()->Length(doc));
  for (auto _ : state) {
    auto r = env->server->text()->InsertText(env->user, doc, pos, "x");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    ++pos;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertCharAtEnd)->Arg(1024)->Arg(16384)->Arg(65536);

// One keystroke at a random position.
void BM_InsertCharRandom(benchmark::State& state) {
  EditingEnv* env = EditingEnv::Get();
  DocumentId doc = env->FreshDoc(static_cast<size_t>(state.range(0)));
  Random rng(1234);
  size_t len = static_cast<size_t>(*env->server->text()->Length(doc));
  for (auto _ : state) {
    size_t pos = rng.Uniform(len + 1);
    auto r = env->server->text()->InsertText(env->user, doc, pos, "y");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    ++len;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertCharRandom)->Arg(1024)->Arg(16384)->Arg(65536);

// Deleting one character (tombstone transaction).
void BM_DeleteCharRandom(benchmark::State& state) {
  EditingEnv* env = EditingEnv::Get();
  // Oversize the doc so it never empties during the run.
  DocumentId doc = env->FreshDoc(400000);
  Random rng(99);
  size_t len = static_cast<size_t>(*env->server->text()->Length(doc));
  for (auto _ : state) {
    size_t pos = rng.Uniform(len);
    auto r = env->server->text()->DeleteRange(env->user, doc, pos, 1);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    --len;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeleteCharRandom);

// A realistic typing session: trace-driven inserts/deletes.
void BM_TypingTrace(benchmark::State& state) {
  EditingEnv* env = EditingEnv::Get();
  DocumentId doc = env->FreshDoc(1000);
  TypingTraceGenerator trace(7);
  size_t len = static_cast<size_t>(*env->server->text()->Length(doc));
  uint64_t chars = 0;
  for (auto _ : state) {
    TypingAction action = trace.Next(len);
    if (action.kind == TypingAction::Kind::kInsert) {
      auto r =
          env->server->text()->InsertText(env->user, doc, action.pos,
                                          action.text);
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
      len += action.text.size();
      chars += action.text.size();
    } else {
      auto r = env->server->text()->DeleteRange(env->user, doc, action.pos,
                                                action.len);
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
      len -= action.len;
      chars += action.len;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(chars));
  state.counters["chars_per_gesture"] =
      static_cast<double>(chars) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_TypingTrace);

// Ablation: position lookup through the order-statistic cache ...
void BM_ReadTextCached(benchmark::State& state) {
  EditingEnv* env = EditingEnv::Get();
  DocumentId doc = env->FreshDoc(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto text = env->server->text()->Text(doc);
    if (!text.ok()) state.SkipWithError(text.status().ToString().c_str());
    benchmark::DoNotOptimize(text->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReadTextCached)->Arg(1024)->Arg(16384)->Arg(65536);

// ... vs the full linked-record chain walk (also the time-travel path).
void BM_ReadTextChainWalk(benchmark::State& state) {
  EditingEnv* env = EditingEnv::Get();
  DocumentId doc = env->FreshDoc(static_cast<size_t>(state.range(0)));
  Version head = *env->server->text()->CurrentVersion(doc);
  for (auto _ : state) {
    auto text = env->server->text()->TextAtVersion(doc, head);
    if (!text.ok()) state.SkipWithError(text.status().ToString().c_str());
    benchmark::DoNotOptimize(text->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReadTextChainWalk)->Arg(1024)->Arg(16384)->Arg(65536);

// Historic reads cost the same chain walk regardless of target version.
void BM_TimeTravelRead(benchmark::State& state) {
  EditingEnv* env = EditingEnv::Get();
  DocumentId doc = env->FreshDoc(8192);
  // Burn some history.
  for (int i = 0; i < 20; ++i) {
    (void)env->server->text()->DeleteRange(env->user, doc, 0, 10);
    (void)env->server->text()->InsertText(env->user, doc, 0, "replacement");
  }
  Version target = static_cast<Version>(state.range(0));
  for (auto _ : state) {
    auto text = env->server->text()->TextAtVersion(doc, target);
    if (!text.ok()) state.SkipWithError(text.status().ToString().c_str());
    benchmark::DoNotOptimize(text->size());
  }
}
BENCHMARK(BM_TimeTravelRead)->Arg(1)->Arg(20)->Arg(1000000);

// Opening a document rebuilds the cache from the linked records.
void BM_OpenDocument(benchmark::State& state) {
  EditingEnv* env = EditingEnv::Get();
  DocumentId doc = env->FreshDoc(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    env->server->text()->InvalidateHandle(doc);
    auto len = env->server->text()->Length(doc);  // forces reload
    if (!len.ok()) state.SkipWithError(len.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OpenDocument)->Arg(1024)->Arg(16384)->Arg(65536);

// Ablation: tombstone retention vs history purging. A churned document
// carries its whole edit history in the chain; opening it (and any chain
// walk) pays for the tombstones until PurgeHistory reclaims them.
void BM_OpenChurnedDocument(benchmark::State& state) {
  EditingEnv* env = EditingEnv::Get();
  const bool purged = state.range(0) != 0;
  static int counter = 0;
  auto doc = env->server->text()->CreateDocument(
      env->user, "churn" + std::to_string(counter++));
  // Churn: repeatedly type and delete so tombstones pile up (~90%).
  for (int round = 0; round < 40; ++round) {
    (void)env->server->text()->InsertText(env->user, *doc, 0,
                                          std::string(200, 'x'));
    (void)env->server->text()->DeleteRange(env->user, *doc, 0, 180);
  }
  if (purged) {
    auto n = env->server->text()->PurgeHistory(env->user, *doc, kVersionMax);
    if (!n.ok()) state.SkipWithError(n.status().ToString().c_str());
  }
  for (auto _ : state) {
    env->server->text()->InvalidateHandle(*doc);
    auto len = env->server->text()->Length(*doc);  // forces a chain walk
    if (!len.ok()) state.SkipWithError(len.status().ToString().c_str());
  }
  state.counters["chain_records"] = static_cast<double>(
      env->server->text()->FullChain(*doc)->size());
}
BENCHMARK(BM_OpenChurnedDocument)
    ->Arg(0)   // tombstones retained (full history)
    ->Arg(1);  // history purged

// Durability ablation for the group-commit pipeline, single editor on a
// durable file backend (real fsyncs). With one editor there is nothing to
// coalesce, so the group path must not add latency over a plain per-commit
// flush — this row pins the pipeline's uncontended overhead; the contended
// ablation rows live in bench_concurrency (BM_GroupCommit_*).
void BM_InsertCharDurable(benchmark::State& state) {
  const bool grouped = state.range(0) != 0;
  struct DurableEnv {
    std::unique_ptr<TendaxServer> server;
    UserId user;
    DocumentId doc;
  };
  static auto make = [](CommitFlushMode mode, const std::string& tag) {
    auto* e = new DurableEnv();
    const std::string path = "bench_edit_durable_" + tag + ".db";
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
    TendaxOptions options;
    options.db.path = path;
    options.db.buffer_pool_pages = 16384;
    options.db.group_commit.mode = mode;
    options.db.group_commit.flush_interval = std::chrono::microseconds(0);
    e->server = *TendaxServer::Open(std::move(options));
    e->user = *e->server->accounts()->CreateUser("bench");
    e->doc = *e->server->text()->CreateDocument(e->user, "durable");
    return e;
  };
  static DurableEnv* percommit = make(CommitFlushMode::kPerCommit, "percommit");
  static DurableEnv* flusher = make(CommitFlushMode::kFlusherThread, "flusher");
  DurableEnv* env = grouped ? flusher : percommit;
  for (auto _ : state) {
    auto r = env->server->text()->InsertText(env->user, env->doc, 0, "x");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["wal_syncs"] = static_cast<double>(
      env->server->db()->wal()->group_commit_stats().syncs);
}
BENCHMARK(BM_InsertCharDurable)
    ->Arg(0)  // per-commit flush
    ->Arg(1)  // group commit (flusher thread)
    ->UseRealTime();  // the fsync wait parks on the flusher thread, so CPU
                      // time would hide it and flatter the group path

// The purge operation itself.
void BM_PurgeHistory(benchmark::State& state) {
  EditingEnv* env = EditingEnv::Get();
  static int counter = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto doc = env->server->text()->CreateDocument(
        env->user, "purge" + std::to_string(counter++));
    (void)env->server->text()->InsertText(
        env->user, *doc, 0, std::string(state.range(0), 'x'));
    (void)env->server->text()->DeleteRange(
        env->user, *doc, 0, static_cast<size_t>(state.range(0)) / 2);
    state.ResumeTiming();
    auto n = env->server->text()->PurgeHistory(env->user, *doc, kVersionMax);
    if (!n.ok()) state.SkipWithError(n.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) / 2);
}
BENCHMARK(BM_PurgeHistory)->Arg(1000)->Arg(8000);

}  // namespace
}  // namespace tendax

BENCHMARK_MAIN();

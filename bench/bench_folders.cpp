// E6 — dynamic folders change "within seconds": end-to-end latency from an
// activity (read/edit) to updated folder membership, and the DESIGN.md
// ablation of incremental (per-document) vs full re-evaluation.

#include <benchmark/benchmark.h>

#include <map>

#include "core/tendax.h"
#include "workload/generators.h"

namespace tendax {
namespace {



struct FolderEnv {
  std::unique_ptr<TendaxServer> server;
  UserId writer, reader;
  std::vector<DocumentId> docs;
  std::vector<FolderId> dynamic_folders;

  /// One environment per benchmark family, so corpus-size sweeps measure
  /// exactly the corpus their argument names (the corpus only grows).
  static FolderEnv* Get(const std::string& family) {
    static auto* envs = new std::map<std::string, FolderEnv*>();
    auto it = envs->find(family);
    if (it == envs->end()) {
      auto* e = new FolderEnv();
      TendaxOptions options;
      options.db.buffer_pool_pages = 32768;
      e->server = *TendaxServer::Open(std::move(options));
      e->writer = *e->server->accounts()->CreateUser("writer");
      e->reader = *e->server->accounts()->CreateUser("reader");
      it = envs->emplace(family, e).first;
    }
    return it->second;
  }

  void EnsureCorpus(int n) {
    CorpusGenerator corpus(3);
    for (int i = static_cast<int>(docs.size()); i < n; ++i) {
      auto doc = server->text()->CreateDocument(
          writer, corpus.Title() + "-" + std::to_string(i));
      (void)server->text()->InsertText(writer, *doc, 0, corpus.Document(20));
      docs.push_back(*doc);
    }
  }

  void EnsureFolders(int n) {
    constexpr Timestamp kWeek = 7ULL * 24 * 3600 * 1'000'000;
    while (static_cast<int>(dynamic_folders.size()) < n) {
      size_t i = dynamic_folders.size();
      std::unique_ptr<FolderQuery> query;
      switch (i % 4) {
        case 0:
          query = FolderQuery::ReadBy(reader, kWeek);
          break;
        case 1:
          query = FolderQuery::EditedBy(writer, kWeek);
          break;
        case 2:
          query = FolderQuery::SizeAtLeast(50 + i);
          break;
        default:
          query = FolderQuery::NameContains(std::to_string(i % 10));
          break;
      }
      dynamic_folders.push_back(*server->folders()->CreateDynamicFolder(
          "dyn" + std::to_string(i), std::move(query)));
    }
  }
};

// End-to-end: a read event lands, every dynamic folder's membership for
// the touched document is refreshed before the call returns. This is the
// paper's "contents may change within seconds" path — here it is micro-
// seconds because maintenance is incremental.
void BM_ReadEventToFolderUpdate(benchmark::State& state) {
  FolderEnv* env = FolderEnv::Get(__func__);
  env->EnsureCorpus(static_cast<int>(state.range(0)));
  env->EnsureFolders(8);
  Random rng(7);
  for (auto _ : state) {
    DocumentId doc = env->docs[rng.Uniform(env->docs.size())];
    auto st = env->server->meta()->RecordRead(env->reader, doc);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadEventToFolderUpdate)->Arg(100)->Arg(1000)->Arg(5000);

// Ablation arm 1: incremental refresh of one document across all folders.
void BM_IncrementalRefresh(benchmark::State& state) {
  FolderEnv* env = FolderEnv::Get(__func__);
  env->EnsureCorpus(static_cast<int>(state.range(0)));
  env->EnsureFolders(8);
  Random rng(11);
  for (auto _ : state) {
    env->server->folders()->RefreshDocument(
        env->docs[rng.Uniform(env->docs.size())]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncrementalRefresh)->Arg(100)->Arg(1000)->Arg(5000);

// Ablation arm 2: full re-evaluation of one folder over the whole corpus
// (what a naive implementation would do per change).
void BM_FullRefresh(benchmark::State& state) {
  FolderEnv* env = FolderEnv::Get(__func__);
  env->EnsureCorpus(static_cast<int>(state.range(0)));
  env->EnsureFolders(8);
  for (auto _ : state) {
    auto st = env->server->folders()->FullRefresh(env->dynamic_folders[0]);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullRefresh)->Arg(100)->Arg(1000)->Arg(5000);

// Cost of registering a new dynamic folder (initial full evaluation).
void BM_CreateDynamicFolder(benchmark::State& state) {
  FolderEnv* env = FolderEnv::Get(__func__);
  env->EnsureCorpus(static_cast<int>(state.range(0)));
  int counter = 0;
  for (auto _ : state) {
    auto folder = env->server->folders()->CreateDynamicFolder(
        "bench-tmp" + std::to_string(counter++),
        FolderQuery::SizeAtLeast(10));
    if (!folder.ok()) {
      state.SkipWithError(folder.status().ToString().c_str());
    }
  }
}
BENCHMARK(BM_CreateDynamicFolder)->Arg(100)->Arg(1000);

// Reading dynamic folder contents (should be a snapshot copy, not a scan).
void BM_DynamicContents(benchmark::State& state) {
  FolderEnv* env = FolderEnv::Get(__func__);
  env->EnsureCorpus(1000);
  env->EnsureFolders(8);
  for (auto _ : state) {
    auto contents =
        env->server->folders()->DynamicContents(env->dynamic_folders[2]);
    if (!contents.ok()) {
      state.SkipWithError(contents.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(contents->size());
  }
}
BENCHMARK(BM_DynamicContents);

// Static folder placement for comparison.
void BM_StaticPlacement(benchmark::State& state) {
  FolderEnv* env = FolderEnv::Get(__func__);
  env->EnsureCorpus(1000);
  auto folder = env->server->folders()->CreateFolder(env->writer, FolderId(),
                                                     "static-bench");
  Random rng(23);
  for (auto _ : state) {
    DocumentId doc = env->docs[rng.Uniform(env->docs.size())];
    Status st = env->server->folders()->PlaceDocument(env->writer, *folder,
                                                      doc);
    if (st.IsAlreadyExists()) {
      (void)env->server->folders()->RemoveDocument(env->writer, *folder, doc);
    } else if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
    }
  }
}
BENCHMARK(BM_StaticPlacement);

}  // namespace
}  // namespace tendax

BENCHMARK_MAIN();

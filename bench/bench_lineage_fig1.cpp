// E5 / Fig. 1 — the data-lineage view. Regenerates the figure as DOT +
// ASCII from a multi-document copy scenario (printed below, and written to
// artifacts/fig1_lineage.dot), then benchmarks provenance-graph
// construction against corpus size.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <map>

#include "core/tendax.h"
#include "workload/generators.h"

namespace tendax {
namespace {

std::unique_ptr<TendaxServer> MakeServer() {
  TendaxOptions options;
  options.db.buffer_pool_pages = 16384;
  return *TendaxServer::Open(std::move(options));
}

/// Builds the demo scenario of the paper's Fig. 1: a report assembled from
/// two internal sources and one external one, plus a downstream quote.
void EmitFigure1() {
  auto server = MakeServer();
  UserId hodel = *server->accounts()->CreateUser("hodel");
  UserId leone = *server->accounts()->CreateUser("leone");

  auto minutes = server->text()->CreateDocument(hodel, "meeting-minutes");
  (void)server->text()->InsertText(hodel, *minutes, 0,
                                   "decision: store text natively");
  auto spec = server->text()->CreateDocument(hodel, "db-schema-spec");
  (void)server->text()->InsertText(hodel, *spec, 0,
                                   "characters become records");

  auto report = server->text()->CreateDocument(leone, "project-report");
  auto c1 = server->text()->Copy(leone, *minutes, 0, 29);
  (void)server->text()->Paste(leone, *report, 0, *c1);
  (void)server->text()->InsertText(leone, *report, 29, " -- therefore ");
  auto c2 = server->text()->Copy(leone, *spec, 0, 25);
  (void)server->text()->Paste(leone, *report, 43, *c2);
  (void)server->text()->InsertText(leone, *report, 68,
                                   " (cf. the EDBT call)",
                                   "https://edbt2006.example/cfp");

  auto slides = server->text()->CreateDocument(leone, "demo-slides");
  auto c3 = server->text()->Copy(leone, *report, 0, 20);
  (void)server->text()->Paste(leone, *slides, 0, *c3);

  auto graph = *server->lineage()->BuildGraph();
  std::string dot = server->lineage()->RenderDot(graph);
  std::string ascii = server->lineage()->RenderAscii(graph);
  auto detail = server->lineage()->RenderDocumentLineage(*report);

  std::printf("=== Figure 1: data lineage ===\n%s\n%s\n", ascii.c_str(),
              detail->c_str());
  std::filesystem::create_directories("artifacts");
  std::ofstream("artifacts/fig1_lineage.dot") << dot;
  std::printf("(DOT written to artifacts/fig1_lineage.dot)\n\n");
}



struct CorpusEnv {
  std::unique_ptr<TendaxServer> server;
  UserId user;
  int built_docs = 0;

  static CorpusEnv* Get(const std::string& family) {
    static auto* envs = new std::map<std::string, CorpusEnv*>();
    auto it = envs->find(family);
    if (it == envs->end()) {
      auto* e = new CorpusEnv();
      e->server = MakeServer();
      e->user = *e->server->accounts()->CreateUser("builder");
      it = envs->emplace(family, e).first;
    }
    return it->second;
  }

  /// Grows the corpus to `n` documents, each quoting 1-3 predecessors.
  void EnsureCorpus(int n) {
    CorpusGenerator corpus(5);
    Random rng(17);
    std::vector<DocumentId> docs = server->text()->ListDocuments();
    for (int i = built_docs; i < n; ++i) {
      auto doc = server->text()->CreateDocument(
          user, "corpus" + std::to_string(i));
      (void)server->text()->InsertText(user, *doc, 0, corpus.Document(30));
      if (!docs.empty()) {
        int quotes = 1 + static_cast<int>(rng.Uniform(3));
        for (int q = 0; q < quotes; ++q) {
          DocumentId source = docs[rng.Uniform(docs.size())];
          auto clip = server->text()->Copy(user, source, 0, 12);
          if (clip.ok()) {
            (void)server->text()->Paste(user, *doc, 0, *clip);
          }
        }
      }
      docs.push_back(*doc);
    }
    built_docs = std::max(built_docs, n);
  }
};

// Full provenance-graph build over an n-document corpus.
void BM_BuildLineageGraph(benchmark::State& state) {
  CorpusEnv* env = CorpusEnv::Get(__func__);
  env->EnsureCorpus(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto graph = env->server->lineage()->BuildGraph();
    if (!graph.ok()) state.SkipWithError(graph.status().ToString().c_str());
    benchmark::DoNotOptimize(graph->EdgeCount());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildLineageGraph)->Arg(16)->Arg(64)->Arg(256);

// Citation count for one document ("most cited" ranking ingredient).
void BM_CitationCount(benchmark::State& state) {
  CorpusEnv* env = CorpusEnv::Get(__func__);
  env->EnsureCorpus(static_cast<int>(state.range(0)));
  DocumentId first = env->server->text()->ListDocuments().front();
  for (auto _ : state) {
    auto cites = env->server->lineage()->CitationCount(first);
    if (!cites.ok()) state.SkipWithError(cites.status().ToString().c_str());
    benchmark::DoNotOptimize(*cites);
  }
}
BENCHMARK(BM_CitationCount)->Arg(16)->Arg(64)->Arg(256);

// The Fig. 1 rendering itself.
void BM_RenderLineageViews(benchmark::State& state) {
  CorpusEnv* env = CorpusEnv::Get(__func__);
  env->EnsureCorpus(64);
  auto graph = *env->server->lineage()->BuildGraph();
  for (auto _ : state) {
    std::string dot = env->server->lineage()->RenderDot(graph);
    std::string ascii = env->server->lineage()->RenderAscii(graph);
    benchmark::DoNotOptimize(dot.size() + ascii.size());
  }
}
BENCHMARK(BM_RenderLineageViews);

}  // namespace
}  // namespace tendax

int main(int argc, char** argv) {
  tendax::EmitFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

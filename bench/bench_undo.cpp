// E3 — local and global undo/redo as compensating transactions: cost of an
// undo/redo pair against operation-log depth, and global vs local lookup.

#include <benchmark/benchmark.h>

#include "core/tendax.h"

namespace tendax {
namespace {

struct UndoEnv {
  std::unique_ptr<TendaxServer> server;
  UserId alice, bob;

  static UndoEnv* Get() {
    static UndoEnv* env = [] {
      auto* e = new UndoEnv();
      TendaxOptions options;
      options.db.buffer_pool_pages = 16384;
      e->server = *TendaxServer::Open(std::move(options));
      e->alice = *e->server->accounts()->CreateUser("alice");
      e->bob = *e->server->accounts()->CreateUser("bob");
      return e;
    }();
    return env;
  }

  /// Document with `depth` ops (alternating authors) in the op log.
  DocumentId DocWithHistory(int depth) {
    static int counter = 0;
    auto editor_a = server->AttachEditor(alice, "a");
    auto editor_b = server->AttachEditor(bob, "b");
    auto doc = (*editor_a)->CreateDocument("undo-" + std::to_string(counter++));
    for (int i = 0; i < depth; ++i) {
      Editor* ed = i % 2 == 0 ? editor_a->get() : editor_b->get();
      (void)ed->Type(*doc, 0, "word ");
    }
    return *doc;
  }
};

// Undo+redo of the caller's latest op, with a log of `depth` entries.
void BM_LocalUndoRedoPair(benchmark::State& state) {
  UndoEnv* env = UndoEnv::Get();
  DocumentId doc = env->DocWithHistory(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto undo = env->server->undo()->UndoLocal(env->alice, doc);
    if (!undo.ok()) state.SkipWithError(undo.status().ToString().c_str());
    auto redo = env->server->undo()->RedoLocal(env->alice, doc);
    if (!redo.ok()) state.SkipWithError(redo.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_LocalUndoRedoPair)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

// Global undo (anyone's op) at the same depths.
void BM_GlobalUndoRedoPair(benchmark::State& state) {
  UndoEnv* env = UndoEnv::Get();
  DocumentId doc = env->DocWithHistory(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto undo = env->server->undo()->UndoGlobal(env->alice, doc);
    if (!undo.ok()) state.SkipWithError(undo.status().ToString().c_str());
    auto redo = env->server->undo()->RedoGlobal(env->alice, doc);
    if (!redo.ok()) state.SkipWithError(redo.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_GlobalUndoRedoPair)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

// Undo of a large delete (resurrecting many characters at once).
void BM_UndoLargeDelete(benchmark::State& state) {
  UndoEnv* env = UndoEnv::Get();
  auto editor = env->server->AttachEditor(env->alice, "a");
  auto doc = (*editor)->CreateDocument("bulk-undo");
  size_t n = static_cast<size_t>(state.range(0));
  (void)(*editor)->Type(*doc, 0, std::string(n * 2, 'x'));
  (void)(*editor)->Erase(*doc, 0, n);
  for (auto _ : state) {
    auto undo = env->server->undo()->UndoLocal(env->alice, *doc);
    if (!undo.ok()) state.SkipWithError(undo.status().ToString().c_str());
    auto redo = env->server->undo()->RedoLocal(env->alice, *doc);
    if (!redo.ok()) state.SkipWithError(redo.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UndoLargeDelete)->Arg(64)->Arg(1024)->Arg(8192);

// The paper's key property: undo by character identity stays correct (and
// cheap) even when unrelated edits landed after the op being undone.
void BM_UndoWithInterferingEdits(benchmark::State& state) {
  UndoEnv* env = UndoEnv::Get();
  auto editor_a = env->server->AttachEditor(env->alice, "a");
  auto editor_b = env->server->AttachEditor(env->bob, "b");
  auto doc = (*editor_a)->CreateDocument("interfered");
  (void)(*editor_a)->Type(*doc, 0, "target-text ");
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    (void)(*editor_b)->Type(*doc, 0, "noise ");
  }
  for (auto _ : state) {
    auto undo = env->server->undo()->UndoLocal(env->alice, *doc);
    if (!undo.ok()) state.SkipWithError(undo.status().ToString().c_str());
    auto redo = env->server->undo()->RedoLocal(env->alice, *doc);
    if (!redo.ok()) state.SkipWithError(redo.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_UndoWithInterferingEdits)->Arg(0)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace tendax

BENCHMARK_MAIN();

// E10 — in-document business processes: route execution throughput, cost of
// dynamic run-time changes, and worklist queries under many open tasks.

#include <benchmark/benchmark.h>

#include "core/tendax.h"

namespace tendax {
namespace {

struct WorkflowEnv {
  std::unique_ptr<TendaxServer> server;
  UserId owner, worker;
  DocumentId doc;

  static WorkflowEnv* Get() {
    static WorkflowEnv* env = [] {
      auto* e = new WorkflowEnv();
      TendaxOptions options;
      options.db.buffer_pool_pages = 32768;
      e->server = *TendaxServer::Open(std::move(options));
      e->owner = *e->server->accounts()->CreateUser("owner");
      e->worker = *e->server->accounts()->CreateUser("worker");
      e->doc = *e->server->text()->CreateDocument(e->owner, "wf-doc");
      (void)e->server->text()->InsertText(e->owner, e->doc, 0,
                                          "workflow target text");
      return e;
    }();
    return env;
  }
};

// Define a process with K tasks and execute it to completion.
void BM_RunFullRoute(benchmark::State& state) {
  WorkflowEnv* env = WorkflowEnv::Get();
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto process = env->server->workflows()->DefineProcess(
        env->owner, env->doc, "route");
    if (!process.ok()) {
      state.SkipWithError(process.status().ToString().c_str());
      break;
    }
    std::vector<TaskId> tasks;
    for (int i = 0; i < k; ++i) {
      auto task = env->server->workflows()->AddTask(
          env->owner, *process, "t" + std::to_string(i), "",
          Assignee::User(env->worker));
      if (!task.ok()) {
        state.SkipWithError(task.status().ToString().c_str());
        break;
      }
      tasks.push_back(*task);
    }
    for (TaskId task : tasks) {
      auto st = env->server->workflows()->Complete(env->worker, task);
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        break;
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_RunFullRoute)->Arg(2)->Arg(8)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

// Dynamic run-time insertion into the middle of a live route of size K
// (shifts later tasks; the paper's "changed and routed dynamically").
void BM_DynamicInsertion(benchmark::State& state) {
  WorkflowEnv* env = WorkflowEnv::Get();
  const int k = static_cast<int>(state.range(0));
  auto process =
      env->server->workflows()->DefineProcess(env->owner, env->doc, "dyn");
  TaskId first;
  for (int i = 0; i < k; ++i) {
    auto task = env->server->workflows()->AddTask(
        env->owner, *process, "base" + std::to_string(i), "",
        Assignee::User(env->worker));
    if (i == 0) first = *task;
  }
  for (auto _ : state) {
    auto task = env->server->workflows()->InsertTaskAfter(
        env->owner, first, "inserted", "", Assignee::User(env->worker));
    if (!task.ok()) state.SkipWithError(task.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DynamicInsertion)->Arg(8)->Arg(64)->Unit(benchmark::kMicrosecond);

// Worklist query with many ready tasks across processes.
void BM_WorklistQuery(benchmark::State& state) {
  WorkflowEnv* env = WorkflowEnv::Get();
  static int populated = 0;
  const int want = static_cast<int>(state.range(0));
  while (populated < want) {
    auto process = env->server->workflows()->DefineProcess(
        env->owner, env->doc, "wl" + std::to_string(populated));
    (void)env->server->workflows()->AddTask(env->owner, *process, "task", "",
                                            Assignee::User(env->worker));
    ++populated;
  }
  for (auto _ : state) {
    auto worklist = env->server->workflows()->Worklist(env->worker);
    benchmark::DoNotOptimize(worklist.size());
  }
  state.counters["ready_tasks"] = static_cast<double>(want);
}
BENCHMARK(BM_WorklistQuery)->Arg(16)->Arg(256);

// Reassignment and rejection/reroute cycle.
void BM_RejectRerouteCycle(benchmark::State& state) {
  WorkflowEnv* env = WorkflowEnv::Get();
  auto process = env->server->workflows()->DefineProcess(env->owner,
                                                         env->doc, "cycle");
  auto task = env->server->workflows()->AddTask(
      env->owner, *process, "bounce", "", Assignee::User(env->worker));
  for (auto _ : state) {
    auto st = env->server->workflows()->Reject(env->worker, *task, "no");
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    st = env->server->workflows()->Reroute(env->owner, *task,
                                           Assignee::User(env->worker));
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RejectRerouteCycle);

// Workflow steps interleaved with concurrent edits on the same document
// (tasks anchored to live text keep working while the text changes).
void BM_WorkflowUnderConcurrentEdits(benchmark::State& state) {
  WorkflowEnv* env = WorkflowEnv::Get();
  auto process = env->server->workflows()->DefineProcess(
      env->owner, env->doc, "interleaved");
  for (auto _ : state) {
    (void)env->server->text()->InsertText(env->owner, env->doc, 0, "e");
    auto task = env->server->workflows()->AddTask(
        env->owner, *process, "step", "", Assignee::User(env->worker), 0, 5);
    if (!task.ok()) {
      state.SkipWithError(task.status().ToString().c_str());
      break;
    }
    auto st = env->server->workflows()->Complete(env->worker, *task);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkflowUnderConcurrentEdits);

}  // namespace
}  // namespace tendax

BENCHMARK_MAIN();

// E2 — the word-processing LAN-party: editing throughput as the number of
// concurrent editors grows, on one shared document (edits serialize on the
// document lock) versus distinct documents (edits scale out).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>

#include "collab/retrying_client.h"
#include "core/tendax.h"
#include "storage/wal.h"

namespace tendax {
namespace {

struct ConcurrencyEnv {
  std::unique_ptr<TendaxServer> server;
  std::vector<UserId> users;
  DocumentId shared_doc;
  std::vector<DocumentId> private_docs;
  std::atomic<uint64_t> conflicts{0};

  static ConcurrencyEnv* Get() {
    static ConcurrencyEnv* env = [] {
      auto* e = new ConcurrencyEnv();
      TendaxOptions options;
      options.db.buffer_pool_pages = 16384;
      e->server = *TendaxServer::Open(std::move(options));
      for (int i = 0; i < 16; ++i) {
        e->users.push_back(
            *e->server->accounts()->CreateUser("editor" + std::to_string(i)));
      }
      e->shared_doc =
          *e->server->text()->CreateDocument(e->users[0], "shared");
      (void)e->server->text()->InsertText(e->users[0], e->shared_doc, 0,
                                          "seed");
      for (int i = 0; i < 16; ++i) {
        auto doc = e->server->text()->CreateDocument(
            e->users[i], "private" + std::to_string(i));
        (void)e->server->text()->InsertText(e->users[i], *doc, 0, "seed");
        e->private_docs.push_back(*doc);
      }
      return e;
    }();
    return env;
  }
};

// All editors type into ONE document: keystroke transactions serialize on
// the document's exclusive lock (the DB-centric alternative to OT).
void BM_SharedDocTyping(benchmark::State& state) {
  ConcurrencyEnv* env = ConcurrencyEnv::Get();
  UserId user = env->users[state.thread_index() % env->users.size()];
  for (auto _ : state) {
    auto r = env->server->text()->InsertText(user, env->shared_doc, 0, "a");
    if (!r.ok()) {
      if (r.status().IsRetryable()) {
        env->conflicts.fetch_add(1);
      } else {
        state.SkipWithError(r.status().ToString().c_str());
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["retryable_conflicts"] =
        static_cast<double>(env->conflicts.exchange(0));
  }
}
BENCHMARK(BM_SharedDocTyping)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Each editor types into their OWN document: transactions only share the
// storage engine (pages, WAL, buffer pool) and scale out.
void BM_PrivateDocTyping(benchmark::State& state) {
  ConcurrencyEnv* env = ConcurrencyEnv::Get();
  int idx = state.thread_index() % env->private_docs.size();
  UserId user = env->users[idx];
  DocumentId doc = env->private_docs[idx];
  for (auto _ : state) {
    auto r = env->server->text()->InsertText(user, doc, 0, "b");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrivateDocTyping)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Readers concurrent with one writer on the same document: reads go to the
// order cache and never block on the writer's lock.
void BM_ReadersWithWriter(benchmark::State& state) {
  ConcurrencyEnv* env = ConcurrencyEnv::Get();
  if (state.thread_index() == 0) {
    // One writer thread.
    for (auto _ : state) {
      auto r = env->server->text()->InsertText(env->users[0],
                                               env->shared_doc, 0, "w");
      if (!r.ok() && !r.status().IsRetryable()) {
        state.SkipWithError(r.status().ToString().c_str());
      }
    }
  } else {
    for (auto _ : state) {
      auto text = env->server->text()->Text(env->shared_doc);
      if (!text.ok()) state.SkipWithError(text.status().ToString().c_str());
      benchmark::DoNotOptimize(text->size());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadersWithWriter)->Threads(2)->Threads(4)->UseRealTime();

// Cross-document copy/paste under concurrency: pastes take locks on two
// documents and may deadlock; the victim retries (measured as conflicts).
void BM_CrossDocPaste(benchmark::State& state) {
  ConcurrencyEnv* env = ConcurrencyEnv::Get();
  int idx = state.thread_index() % env->private_docs.size();
  UserId user = env->users[idx];
  DocumentId source =
      env->private_docs[(idx + 1) % env->private_docs.size()];
  DocumentId target = env->private_docs[idx];
  for (auto _ : state) {
    auto clip = env->server->text()->Copy(user, source, 0, 4);
    if (!clip.ok()) {
      if (clip.status().IsRetryable()) continue;
      state.SkipWithError(clip.status().ToString().c_str());
      break;
    }
    auto r = env->server->text()->Paste(user, target, 0, *clip);
    if (!r.ok() && !r.status().IsRetryable()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    auto stats = env->server->db()->locks()->stats();
    state.counters["deadlocks_detected"] =
        static_cast<double>(stats.deadlocks);
    state.counters["lock_waits"] = static_cast<double>(stats.waits);
  }
}
BENCHMARK(BM_CrossDocPaste)->Threads(2)->Threads(4)->UseRealTime();

// E7 — group-commit ablation: commit throughput on one shared document over
// a durable file backend (real fsyncs), per-commit flushing versus the two
// group-commit flavors. The group rows amortize one fsync over every commit
// that piles up while the previous flush runs; the per-commit row pays one
// fsync per keystroke transaction.
struct GroupCommitEnv {
  std::unique_ptr<TendaxServer> server;
  std::vector<UserId> users;
  DocumentId doc;
  std::atomic<uint64_t> conflicts{0};

  // Benches run from the build directory; relative paths keep the durable
  // files out of the source tree. Stale files from a previous run are
  // removed so every process starts from an empty database.
  static GroupCommitEnv* Make(CommitFlushMode mode, const std::string& tag) {
    auto* e = new GroupCommitEnv();
    const std::string path = "bench_gc_" + tag + ".db";
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
    TendaxOptions options;
    options.db.path = path;
    options.db.buffer_pool_pages = 16384;
    options.db.group_commit.mode = mode;
    // Zero batching window: flush as soon as any commit waits, batching
    // whatever piled up behind the in-flight flush (lowest latency; the
    // batching comes from fsync pressure itself).
    options.db.group_commit.flush_interval = std::chrono::microseconds(0);
    e->server = *TendaxServer::Open(std::move(options));
    for (int i = 0; i < 16; ++i) {
      e->users.push_back(
          *e->server->accounts()->CreateUser("editor" + std::to_string(i)));
    }
    e->doc = *e->server->text()->CreateDocument(e->users[0], "shared");
    (void)e->server->text()->InsertText(e->users[0], e->doc, 0, "seed");
    return e;
  }

  static GroupCommitEnv* PerCommit() {
    static GroupCommitEnv* e = Make(CommitFlushMode::kPerCommit, "percommit");
    return e;
  }
  static GroupCommitEnv* Leader() {
    static GroupCommitEnv* e = Make(CommitFlushMode::kLeader, "leader");
    return e;
  }
  static GroupCommitEnv* Flusher() {
    static GroupCommitEnv* e = Make(CommitFlushMode::kFlusherThread, "flusher");
    return e;
  }
};

void RunGroupCommitTyping(benchmark::State& state, GroupCommitEnv* env) {
  UserId user = env->users[state.thread_index() % env->users.size()];
  for (auto _ : state) {
    auto r = env->server->text()->InsertText(user, env->doc, 0, "a");
    if (!r.ok()) {
      if (r.status().IsRetryable()) {
        env->conflicts.fetch_add(1);
      } else {
        state.SkipWithError(r.status().ToString().c_str());
        break;
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const WalGroupCommitStats stats =
        env->server->db()->wal()->group_commit_stats();
    state.counters["wal_syncs"] = static_cast<double>(stats.syncs);
    state.counters["group_flushes"] = static_cast<double>(stats.group_flushes);
    state.counters["retryable_conflicts"] =
        static_cast<double>(env->conflicts.exchange(0));
  }
}

void BM_GroupCommit_PerCommit(benchmark::State& state) {
  RunGroupCommitTyping(state, GroupCommitEnv::PerCommit());
}
BENCHMARK(BM_GroupCommit_PerCommit)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

void BM_GroupCommit_Leader(benchmark::State& state) {
  RunGroupCommitTyping(state, GroupCommitEnv::Leader());
}
BENCHMARK(BM_GroupCommit_Leader)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

void BM_GroupCommit_Flusher(benchmark::State& state) {
  RunGroupCommitTyping(state, GroupCommitEnv::Flusher());
}
BENCHMARK(BM_GroupCommit_Flusher)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

// Session resilience: the cost of a reconnect that resumes a backlog
// of missed change events, and fan-out throughput when slow consumers hit
// the bounded-inbox backpressure path.

// One reconnect = fresh endpoint + transport + client over the surviving
// session, then a single resumable poll that redelivers the whole retained
// backlog (Arg = backlog size in events). The backlog is never
// acknowledged, so every iteration resumes the same suffix — exactly the
// reconnect-after-partition hot path.
void BM_ReconnectResume(benchmark::State& state) {
  const size_t backlog = static_cast<size_t>(state.range(0));
  TendaxOptions options;
  options.db.buffer_pool_pages = 16384;
  options.session.max_inbox_events = backlog + 64;
  auto server = *TendaxServer::Open(std::move(options));
  auto user = *server->accounts()->CreateUser("resumer");
  auto doc = *server->text()->CreateDocument(user, "backlog");
  auto watcher = *server->AttachEditor(user, "watcher");
  if (!watcher->Open(doc).ok()) {
    state.SkipWithError("open failed");
    return;
  }
  auto typist = *server->AttachEditor(user, "typist");
  for (size_t i = 0; i < backlog; ++i) {
    auto r = typist->Type(doc, 0, "x");
    if (!r.ok()) {
      state.SkipWithError(r.ToString().c_str());
      return;
    }
  }

  size_t resumed = 0;
  for (auto _ : state) {
    RemoteEditorEndpoint endpoint(watcher.get());
    DirectTransport transport(&endpoint);
    RetryingClient client(&transport);
    auto changes = client.PollChanges();
    if (!changes.ok()) {
      state.SkipWithError(changes.status().ToString().c_str());
      return;
    }
    resumed = changes->events.size();
    benchmark::DoNotOptimize(resumed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(backlog));
  state.counters["events_resumed"] = static_cast<double>(resumed);
}
BENCHMARK(BM_ReconnectResume)->Arg(16)->Arg(256)->Arg(2048)->UseRealTime();

// One typist, Arg watcher sessions that never poll, tiny inboxes: every
// insert fans out to every watcher and keeps tripping the overflow ->
// coalesce-to-resync path. Measures whether backpressure bookkeeping stays
// off the writer's critical path.
void BM_FanoutBackpressure(benchmark::State& state) {
  const int watchers = static_cast<int>(state.range(0));
  TendaxOptions options;
  options.db.buffer_pool_pages = 16384;
  options.session.max_inbox_events = 32;  // overflow early and often
  auto server = *TendaxServer::Open(std::move(options));
  auto user = *server->accounts()->CreateUser("firehose");
  auto doc = *server->text()->CreateDocument(user, "fanout");
  std::vector<std::unique_ptr<Editor>> sleepers;
  for (int w = 0; w < watchers; ++w) {
    auto editor = *server->AttachEditor(user, "sleeper" + std::to_string(w));
    if (!editor->Open(doc).ok()) {
      state.SkipWithError("open failed");
      return;
    }
    sleepers.push_back(std::move(editor));
  }

  for (auto _ : state) {
    auto r = server->text()->InsertText(user, doc, 0, "a");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["resyncs_emitted"] =
      static_cast<double>(server->sessions()->resyncs_emitted());
  state.counters["events_delivered"] =
      static_cast<double>(server->sessions()->events_delivered());
}
BENCHMARK(BM_FanoutBackpressure)->Arg(4)->Arg(16)->UseRealTime();

}  // namespace
}  // namespace tendax

BENCHMARK_MAIN();

// Overload economics: goodput of an editor storm with and without the
// admission gate.
//
// BM_OverloadGoodput/<editors>/<admission> drives `editors` concurrent
// remote clients (wire codec + retrying client) against one shared
// document. With admission off (/0), every request lands directly on the
// lock manager: under a tight lock budget the waiter pile-up turns into
// Conflict storms whose app-level retries burn wall-clock without
// committing. With admission on (/1), at most `max_inflight` requests
// contend inside the engine while the rest queue or are shed with a
// retry-after hint the clients honor — so the same offered load commits
// more edits per second. Goodput is items_per_second (successful edits
// only); the acceptance comparison is /64/1 >= /64/0.
//
// Regenerate the committed results with
//   ./build/bench/bench_overload --benchmark_out=BENCH_overload.json
//       --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "collab/retrying_client.h"
#include "collab/wire.h"
#include "core/tendax.h"
#include "testing/flaky_transport.h"

namespace tendax {
namespace {

constexpr size_t kOpsPerEditorPerRound = 5;
// Fat enough that an admitted edit holds the document lock for a
// measurable slice, so 64 unthrottled waiters overrun the lock budget.
constexpr size_t kPayloadBytes = 128;

struct Rig {
  std::unique_ptr<Editor> editor;
  std::unique_ptr<RemoteEditorEndpoint> endpoint;
  std::unique_ptr<FlakyTransport> transport;
  std::unique_ptr<RetryingClient> client;
};

void BM_OverloadGoodput(benchmark::State& state) {
  const size_t editors = static_cast<size_t>(state.range(0));
  const bool admission_on = state.range(1) != 0;

  TendaxOptions options;
  options.db.buffer_pool_pages = 2048;
  // A tight lock budget is the overload failure mode under test: without
  // the gate, deep waiter queues time out into Conflict.
  options.db.lock_timeout = std::chrono::milliseconds(5);
  if (admission_on) {
    options.admission.max_inflight = 2;
    options.admission.queue_depth = 16;
    options.admission.retry_after_base_micros = 200;
    options.admission.retry_after_max_micros = 5'000;
  }
  auto server = TendaxServer::Open(std::move(options));
  if (!server.ok()) {
    state.SkipWithError(server.status().ToString().c_str());
    return;
  }
  auto user = (*server)->accounts()->CreateUser("bench");
  auto doc = (*server)->text()->CreateDocument(*user, "stormed");
  if (!user.ok() || !doc.ok()) {
    state.SkipWithError("setup failed");
    return;
  }

  std::vector<Rig> rigs(editors);
  for (size_t i = 0; i < editors; ++i) {
    auto editor =
        (*server)->AttachEditor(*user, "editor-" + std::to_string(i));
    if (!editor.ok()) {
      state.SkipWithError(editor.status().ToString().c_str());
      return;
    }
    rigs[i].editor = std::move(*editor);
    rigs[i].endpoint =
        std::make_unique<RemoteEditorEndpoint>(rigs[i].editor.get());
    rigs[i].transport = std::make_unique<FlakyTransport>(
        rigs[i].endpoint.get(), NetFaultOptions::Uniform(i + 1, 0.0));
    RetryOptions retry;
    retry.seed = i + 1;
    retry.max_attempts = 64;
    retry.base_backoff_micros = 100;
    retry.max_backoff_micros = 5'000;
    retry.sleep_fn = [](uint64_t micros) {
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
    };
    rigs[i].client =
        std::make_unique<RetryingClient>(rigs[i].transport.get(), retry);
    while (!rigs[i].client->Open(*doc).ok()) {
    }
  }

  const std::string payload(kPayloadBytes, 'x');
  std::atomic<uint64_t> committed{0};
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(editors);
    for (size_t i = 0; i < editors; ++i) {
      threads.emplace_back([&, i] {
        for (size_t op = 0; op < kOpsPerEditorPerRound; ++op) {
          // One bounded app-level retry pass: a Conflict re-runs the edit
          // (the transaction aborted, so this is safe); anything else
          // drops the op — goodput counts only commits.
          Status st = rigs[i].client->Type(*doc, 0, payload);
          for (int retry = 0; retry < 8 && st.IsRetryable(); ++retry) {
            st = rigs[i].client->Type(*doc, 0, payload);
          }
          if (st.ok()) committed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetItemsProcessed(static_cast<int64_t>(committed.load()));

  const auto admission = (*server)->admission()->Stats();
  state.counters["shed_normal"] = static_cast<double>(
      admission.shed[static_cast<size_t>(PriorityClass::kNormal)]);
  state.counters["shed_critical"] = static_cast<double>(
      admission.shed[static_cast<size_t>(PriorityClass::kCritical)]);
  uint64_t unavailable = 0;
  uint64_t conflicts = 0;
  for (auto& rig : rigs) {
    unavailable += rig.client->stats().unavailable;
  }
  conflicts = (*server)->db()->locks()->stats().timeouts;
  state.counters["client_unavailable"] = static_cast<double>(unavailable);
  state.counters["lock_timeouts"] = static_cast<double>(conflicts);
}
BENCHMARK(BM_OverloadGoodput)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace tendax

BENCHMARK_MAIN();

// E7 — meta-data-based search and ranking: query latency for each ranking
// option against corpus size, phrase verification, and the index-freshness
// ablation (lazy mark-dirty vs eager per-commit re-indexing).

#include <benchmark/benchmark.h>

#include <map>

#include "core/tendax.h"
#include "workload/generators.h"

namespace tendax {
namespace {



struct SearchEnv {
  std::unique_ptr<TendaxServer> server;
  UserId writer, reader;
  std::vector<DocumentId> docs;
  std::string common_word;  // appears in many documents

  static SearchEnv* Get(const std::string& family) {
    static auto* envs = new std::map<std::string, SearchEnv*>();
    auto it = envs->find(family);
    if (it == envs->end()) {
      auto* e = new SearchEnv();
      TendaxOptions options;
      options.db.buffer_pool_pages = 32768;
      e->server = *TendaxServer::Open(std::move(options));
      e->writer = *e->server->accounts()->CreateUser("writer");
      e->reader = *e->server->accounts()->CreateUser("reader");
      CorpusGenerator corpus(1);
      e->common_word = corpus.Word();  // Zipf head: frequent everywhere
      it = envs->emplace(family, e).first;
    }
    return it->second;
  }

  void EnsureCorpus(int n) {
    CorpusGenerator corpus(1);
    bool grew = static_cast<int>(docs.size()) < n;
    Random rng(5);
    for (int i = static_cast<int>(docs.size()); i < n; ++i) {
      auto doc = server->text()->CreateDocument(
          writer, corpus.Title() + std::to_string(i));
      (void)server->text()->InsertText(writer, *doc, 0, corpus.Document(60));
      // A few reads and cross-citations so every ranking has signal.
      if (rng.OneIn(4)) (void)server->meta()->RecordRead(reader, *doc);
      if (!docs.empty() && rng.OneIn(5)) {
        DocumentId source = docs[rng.Uniform(docs.size())];
        auto clip = server->text()->Copy(writer, source, 0, 8);
        if (clip.ok()) (void)server->text()->Paste(writer, *doc, 0, *clip);
      }
      docs.push_back(*doc);
    }
    // Pay the lazy re-index outside the measured region.
    if (grew) (void)server->search()->Search(common_word);
  }
};

void RunRankedSearch(benchmark::State& state, Ranking ranking) {
  SearchEnv* env = SearchEnv::Get(__func__);
  env->EnsureCorpus(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto results =
        env->server->search()->Search(env->common_word, ranking, {}, 10);
    if (!results.ok()) {
      state.SkipWithError(results.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(results->size());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SearchRelevance(benchmark::State& state) {
  RunRankedSearch(state, Ranking::kRelevance);
}
BENCHMARK(BM_SearchRelevance)->Arg(100)->Arg(1000)->Arg(5000);

void BM_SearchNewest(benchmark::State& state) {
  RunRankedSearch(state, Ranking::kNewest);
}
BENCHMARK(BM_SearchNewest)->Arg(100)->Arg(1000);

void BM_SearchMostRead(benchmark::State& state) {
  RunRankedSearch(state, Ranking::kMostRead);
}
BENCHMARK(BM_SearchMostRead)->Arg(100)->Arg(1000);

// Most-cited ranking pays a lineage-graph build per candidate.
void BM_SearchMostCited(benchmark::State& state) {
  RunRankedSearch(state, Ranking::kMostCited);
}
BENCHMARK(BM_SearchMostCited)->Arg(100)->Arg(500);

void BM_SearchPhrase(benchmark::State& state) {
  SearchEnv* env = SearchEnv::Get(__func__);
  env->EnsureCorpus(static_cast<int>(state.range(0)));
  // A phrase that actually occurs somewhere.
  auto text = env->server->text()->Text(env->docs[0]);
  std::string phrase = text->substr(0, 12);
  for (auto _ : state) {
    auto results = env->server->search()->SearchPhrase(phrase);
    if (!results.ok()) {
      state.SkipWithError(results.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(results->size());
  }
}
BENCHMARK(BM_SearchPhrase)->Arg(100)->Arg(1000);

// Metadata-filtered search (author + state).
void BM_SearchWithMetadataFilter(benchmark::State& state) {
  SearchEnv* env = SearchEnv::Get(__func__);
  env->EnsureCorpus(static_cast<int>(state.range(0)));
  SearchFilter filter;
  filter.author = env->writer;
  for (auto _ : state) {
    auto results = env->server->search()->Search(env->common_word,
                                                 Ranking::kRelevance, filter);
    if (!results.ok()) {
      state.SkipWithError(results.status().ToString().c_str());
    }
  }
}
BENCHMARK(BM_SearchWithMetadataFilter)->Arg(100)->Arg(1000);

// Ablation: cost one editing transaction pays for index maintenance under
// the lazy policy (mark dirty) ...
void BM_EditWithLazyIndex(benchmark::State& state) {
  SearchEnv* env = SearchEnv::Get(__func__);
  env->EnsureCorpus(100);
  env->server->search()->SetEagerIndexing(false);
  DocumentId doc = env->docs[0];
  for (auto _ : state) {
    auto r = env->server->text()->InsertText(env->writer, doc, 0, "x");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EditWithLazyIndex);

// ... vs the eager policy (full re-tokenize per committed edit).
void BM_EditWithEagerIndex(benchmark::State& state) {
  SearchEnv* env = SearchEnv::Get(__func__);
  env->EnsureCorpus(100);
  env->server->search()->SetEagerIndexing(true);
  DocumentId doc = env->docs[1];
  for (auto _ : state) {
    auto r = env->server->text()->InsertText(env->writer, doc, 0, "x");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  env->server->search()->SetEagerIndexing(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EditWithEagerIndex);

// First query after a burst of edits pays the deferred re-indexing.
void BM_QueryAfterEditBurst(benchmark::State& state) {
  SearchEnv* env = SearchEnv::Get(__func__);
  env->EnsureCorpus(200);
  Random rng(31);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      DocumentId doc = env->docs[rng.Uniform(env->docs.size())];
      (void)env->server->text()->InsertText(env->writer, doc, 0, "y");
    }
    state.ResumeTiming();
    auto results = env->server->search()->Search(env->common_word);
    if (!results.ok()) {
      state.SkipWithError(results.status().ToString().c_str());
    }
  }
  state.counters["dirty_docs_per_query"] =
      static_cast<double>(state.range(0));
}
BENCHMARK(BM_QueryAfterEditBurst)->Arg(1)->Arg(16)->Arg(64);

}  // namespace
}  // namespace tendax

BENCHMARK_MAIN();

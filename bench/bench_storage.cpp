// E9 — substrate soundness: buffer pool hit behaviour, WAL append/flush,
// B+tree operations, record CRUD through the transactional heap, and
// crash-recovery time against log length.

#include <benchmark/benchmark.h>

#include <chrono>

#include "db/database.h"
#include "util/random.h"

namespace tendax {
namespace {

Schema BenchSchema() {
  return Schema({{"id", ColumnType::kUint64},
                 {"payload", ColumnType::kString}});
}

// Buffer pool: hit path (working set fits) vs miss/eviction path.
void BM_BufferPoolFetch(benchmark::State& state) {
  InMemoryDiskManager disk;
  const size_t pool_pages = 256;
  BufferPool pool(pool_pages, &disk);
  const int total_pages = static_cast<int>(state.range(0));
  std::vector<PageId> pids;
  for (int i = 0; i < total_pages; ++i) {
    auto page = pool.NewPage();
    pids.push_back((*page)->id());
    pool.Unpin(*page, true);
  }
  Random rng(3);
  for (auto _ : state) {
    auto page = pool.FetchPage(pids[rng.Uniform(pids.size())]);
    if (!page.ok()) state.SkipWithError(page.status().ToString().c_str());
    pool.Unpin(*page, false);
  }
  auto stats = pool.stats();
  state.counters["hit_rate"] =
      static_cast<double>(stats.hits) /
      static_cast<double>(stats.hits + stats.misses);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolFetch)->Arg(128)->Arg(256)->Arg(1024)->Arg(4096);

// WAL: buffered append vs append+flush (the durable-commit path).
void BM_WalAppend(benchmark::State& state) {
  Wal wal(std::make_shared<InMemoryLogStorage>());
  std::string image(state.range(0), 'w');
  for (auto _ : state) {
    LogRecord rec;
    rec.type = LogType::kUpdate;
    rec.txn = TxnId(1);
    rec.op = UpdateOp::kInsert;
    rec.table_id = 2;
    rec.rid = 3;
    rec.after = image;
    auto lsn = wal.Append(&rec);
    if (!lsn.ok()) state.SkipWithError(lsn.status().ToString().c_str());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WalAppend)->Arg(32)->Arg(256);

void BM_WalAppendFlush(benchmark::State& state) {
  Wal wal(std::make_shared<InMemoryLogStorage>());
  std::string image(64, 'w');
  for (auto _ : state) {
    LogRecord rec;
    rec.type = LogType::kUpdate;
    rec.txn = TxnId(1);
    rec.op = UpdateOp::kInsert;
    rec.after = image;
    auto lsn = wal.Append(&rec);
    if (!lsn.ok()) state.SkipWithError(lsn.status().ToString().c_str());
    auto st = wal.Flush(*lsn);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppendFlush);

// B+tree point operations at different tree sizes.
void BM_BPlusTreeInsert(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(4096, &disk);
  auto tree = *BPlusTree::Create(1, "bench", &pool);
  uint64_t key = 0;
  for (auto _ : state) {
    auto st = tree->Insert(key, key);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["final_height"] = tree->stats().height;
}
BENCHMARK(BM_BPlusTreeInsert);

void BM_BPlusTreeLookup(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(8192, &disk);
  auto tree = *BPlusTree::Create(1, "bench", &pool);
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (uint64_t i = 0; i < n; ++i) (void)tree->Insert(i, i * 3);
  Random rng(9);
  for (auto _ : state) {
    auto v = tree->GetFirst(rng.Uniform(n));
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(*v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_BPlusTreeRangeScan(benchmark::State& state) {
  InMemoryDiskManager disk;
  BufferPool pool(8192, &disk);
  auto tree = *BPlusTree::Create(1, "bench", &pool);
  for (uint64_t i = 0; i < 100000; ++i) (void)tree->Insert(i, i);
  const uint64_t span = static_cast<uint64_t>(state.range(0));
  Random rng(13);
  for (auto _ : state) {
    uint64_t lo = rng.Uniform(100000 - span);
    uint64_t count = 0;
    (void)tree->ScanRange(lo, lo + span - 1, [&](uint64_t, uint64_t) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * span);
}
BENCHMARK(BM_BPlusTreeRangeScan)->Arg(10)->Arg(1000);

// Transactional record insert through the full stack (WAL + locks + heap).
void BM_HeapInsertCommit(benchmark::State& state) {
  DatabaseOptions options;
  options.buffer_pool_pages = 8192;
  auto db = *Database::Open(std::move(options));
  auto table = *db->CreateTable("bench", BenchSchema());
  std::string payload(state.range(0), 'p');
  uint64_t id = 0;
  for (auto _ : state) {
    Status st = db->txns()->RunInTxn(UserId(1), [&](Transaction* txn) {
      return table->Insert(txn, Record({id++, payload})).status();
    });
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapInsertCommit)->Arg(16)->Arg(256);

// Abort path: insert + rollback.
void BM_HeapInsertAbort(benchmark::State& state) {
  DatabaseOptions options;
  options.buffer_pool_pages = 8192;
  auto db = *Database::Open(std::move(options));
  auto table = *db->CreateTable("bench", BenchSchema());
  for (auto _ : state) {
    Transaction* txn = db->txns()->Begin(UserId(1));
    (void)table->Insert(txn, Record({uint64_t{1}, std::string("doomed")}));
    auto st = db->txns()->Abort(txn);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapInsertAbort);

// Crash recovery: committed transactions in the log vs reopen time.
// (Manual timing: each iteration replays a fresh crash image.)
void BM_CrashRecovery(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto disk = std::make_shared<InMemoryDiskManager>();
    auto log = std::make_shared<InMemoryLogStorage>();
    {
      DatabaseOptions options;
      options.disk = disk;
      options.log_storage = log;
      options.buffer_pool_pages = 8192;
      auto db = *Database::Open(std::move(options));
      auto table = *db->CreateTable("bench", BenchSchema());
      for (int i = 0; i < txns; ++i) {
        (void)db->txns()->RunInTxn(UserId(1), [&](Transaction* txn) {
          return table
              ->Insert(txn, Record({static_cast<uint64_t>(i),
                                    std::string("recoverable-payload")}))
              .status();
        });
      }
      db->SimulateCrash();
    }
    state.ResumeTiming();
    DatabaseOptions options;
    options.disk = disk;
    options.log_storage = log;
    options.buffer_pool_pages = 8192;
    auto db = Database::Open(std::move(options));
    if (!db.ok()) state.SkipWithError(db.status().ToString().c_str());
    benchmark::DoNotOptimize((*db)->recovery_stats().redo_applied);
  }
  state.counters["txns_replayed"] = txns;
}
BENCHMARK(BM_CrashRecovery)->Arg(100)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

// Checkpointing cost (flush-all + log truncation).
void BM_Checkpoint(benchmark::State& state) {
  DatabaseOptions options;
  options.buffer_pool_pages = 8192;
  auto db = *Database::Open(std::move(options));
  auto table = *db->CreateTable("bench", BenchSchema());
  uint64_t id = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 100; ++i) {
      (void)db->txns()->RunInTxn(UserId(1), [&](Transaction* txn) {
        return table->Insert(txn, Record({id++, std::string("cp")})).status();
      });
    }
    state.ResumeTiming();
    auto st = db->Checkpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
}
BENCHMARK(BM_Checkpoint);

}  // namespace
}  // namespace tendax

BENCHMARK_MAIN();

// E4 — copy & paste with per-character provenance: paste cost vs clip
// size, provenance-chain behaviour across generations (constant, thanks to
// origin-collapsing), and lineage extraction cost vs fan-out.

#include <benchmark/benchmark.h>

#include "core/tendax.h"

namespace tendax {
namespace {

struct PasteEnv {
  std::unique_ptr<TendaxServer> server;
  UserId user;

  static PasteEnv* Get() {
    static PasteEnv* env = [] {
      auto* e = new PasteEnv();
      TendaxOptions options;
      options.db.buffer_pool_pages = 16384;
      e->server = *TendaxServer::Open(std::move(options));
      e->user = *e->server->accounts()->CreateUser("paster");
      return e;
    }();
    return env;
  }

  DocumentId Doc(const std::string& name, const std::string& content) {
    auto doc = server->text()->CreateDocument(user, name);
    if (!content.empty()) {
      (void)server->text()->InsertText(user, *doc, 0, content);
    }
    return *doc;
  }
};

// Paste of `n` characters into a target (one transaction, n+3 record ops).
void BM_PasteClip(benchmark::State& state) {
  PasteEnv* env = PasteEnv::Get();
  size_t n = static_cast<size_t>(state.range(0));
  DocumentId source = env->Doc("src" + std::to_string(n),
                               std::string(n, 's'));
  DocumentId target = env->Doc("dst" + std::to_string(n), "");
  auto clip = env->server->text()->Copy(env->user, source, 0, n);
  for (auto _ : state) {
    auto r = env->server->text()->Paste(env->user, target, 0, *clip);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PasteClip)->Arg(16)->Arg(256)->Arg(4096);

// Copy cost (reads + provenance collapse), no mutation.
void BM_CopyRange(benchmark::State& state) {
  PasteEnv* env = PasteEnv::Get();
  size_t n = static_cast<size_t>(state.range(0));
  DocumentId source = env->Doc("copysrc" + std::to_string(n),
                               std::string(n, 'c'));
  for (auto _ : state) {
    auto clip = env->server->text()->Copy(env->user, source, 0, n);
    if (!clip.ok()) state.SkipWithError(clip.status().ToString().c_str());
    benchmark::DoNotOptimize(clip->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CopyRange)->Arg(16)->Arg(256)->Arg(4096);

// Chain generations: doc0 -> doc1 -> ... -> docD. Because provenance
// collapses to the origin at copy time, per-generation paste cost and the
// lineage query at depth D stay flat — the paper's design makes provenance
// chase O(1) per character, not O(depth).
void BM_PasteAtChainDepth(benchmark::State& state) {
  PasteEnv* env = PasteEnv::Get();
  int depth = static_cast<int>(state.range(0));
  static int run = 0;
  ++run;
  DocumentId current = env->Doc("chain0-" + std::to_string(run) + "-" +
                                    std::to_string(depth),
                                std::string(64, 'o'));
  for (int d = 1; d <= depth; ++d) {
    DocumentId next = env->Doc("chain" + std::to_string(d) + "-" +
                                   std::to_string(run) + "-" +
                                   std::to_string(depth),
                               "");
    auto clip = env->server->text()->Copy(env->user, current, 0, 64);
    (void)env->server->text()->Paste(env->user, next, 0, *clip);
    current = next;
  }
  DocumentId sink = env->Doc("chain-sink-" + std::to_string(run) + "-" +
                                 std::to_string(depth),
                             "");
  auto clip = env->server->text()->Copy(env->user, current, 0, 64);
  for (auto _ : state) {
    auto r = env->server->text()->Paste(env->user, sink, 0, *clip);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PasteAtChainDepth)->Arg(1)->Arg(16)->Arg(64);

// Lineage segment extraction for a document stitched from `fanout` sources.
void BM_LineageForDocument(benchmark::State& state) {
  PasteEnv* env = PasteEnv::Get();
  int fanout = static_cast<int>(state.range(0));
  static int run = 0;
  ++run;
  DocumentId target = env->Doc("stitched" + std::to_string(run), "");
  size_t pos = 0;
  for (int f = 0; f < fanout; ++f) {
    DocumentId source = env->Doc(
        "part" + std::to_string(run) + "-" + std::to_string(f),
        std::string(32, static_cast<char>('a' + f % 26)));
    auto clip = env->server->text()->Copy(env->user, source, 0, 32);
    (void)env->server->text()->Paste(env->user, target, pos, *clip);
    pos += 32;
  }
  for (auto _ : state) {
    auto segments = env->server->lineage()->ForDocument(target);
    if (!segments.ok()) {
      state.SkipWithError(segments.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(segments->size());
  }
  state.counters["segments"] = static_cast<double>(fanout);
}
BENCHMARK(BM_LineageForDocument)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace tendax

BENCHMARK_MAIN();

// Observability overhead: the acceptance budget is <= 5% slowdown on the
// instrumented per-keystroke insert path versus metrics_enabled=false.
//
// BM_MetricsOverheadInsertChar/1 vs /0 is that comparison (arg = whether
// histograms are enabled; counters are always live). The group-commit
// variant times the same keystroke when every commit crosses the
// CommitFlush latency timer and the flusher's batch histograms. The micro
// benchmarks price the primitives themselves: a striped counter add, a
// histogram record, a ScopedTimer span (two clock reads), and the cold
// aggregation paths (snapshot, encode, text exposition).
//
// Regenerate the committed results with
//   ./build/bench/bench_observability --benchmark_out=BENCH_observability.json
//       --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "core/tendax.h"
#include "obs/metrics.h"
#include "storage/wal.h"

namespace tendax {
namespace {

struct ObsEnv {
  std::unique_ptr<TendaxServer> server;
  UserId user;

  static ObsEnv* Get(bool metrics_enabled, bool group_commit) {
    static ObsEnv* envs[2][2] = {};
    ObsEnv*& env = envs[metrics_enabled ? 1 : 0][group_commit ? 1 : 0];
    if (env == nullptr) {
      env = new ObsEnv();
      TendaxOptions options;
      options.db.buffer_pool_pages = 16384;
      options.metrics_enabled = metrics_enabled;
      if (group_commit) {
        options.db.group_commit.mode = CommitFlushMode::kFlusherThread;
        options.db.group_commit.flush_interval = std::chrono::microseconds(0);
      }
      env->server = *TendaxServer::Open(std::move(options));
      env->user = *env->server->accounts()->CreateUser("bench");
    }
    return env;
  }

  DocumentId FreshDoc(size_t chars) {
    static int counter = 0;
    auto doc = server->text()->CreateDocument(
        user, "obs-doc-" + std::to_string(counter++));
    if (chars > 0) {
      (void)server->text()->InsertText(user, *doc, 0,
                                       std::string(chars, 'x'));
    }
    return *doc;
  }
};

// One keystroke at the end of the document, instrumented (arg=1) or with
// histograms disabled (arg=0). Counters run in both configurations.
void BM_MetricsOverheadInsertChar(benchmark::State& state) {
  ObsEnv* env = ObsEnv::Get(state.range(0) != 0, /*group_commit=*/false);
  DocumentId doc = env->FreshDoc(1024);
  size_t pos = static_cast<size_t>(*env->server->text()->Length(doc));
  for (auto _ : state) {
    auto r = env->server->text()->InsertText(env->user, doc, pos, "x");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    ++pos;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsOverheadInsertChar)->Arg(0)->Arg(1);

// Same keystroke through the group-commit pipeline (flusher thread), where
// the commit additionally crosses the CommitFlush timer, the flush timer
// and the batch-size histogram.
void BM_MetricsOverheadGroupCommit(benchmark::State& state) {
  ObsEnv* env = ObsEnv::Get(state.range(0) != 0, /*group_commit=*/true);
  DocumentId doc = env->FreshDoc(1024);
  size_t pos = static_cast<size_t>(*env->server->text()->Length(doc));
  for (auto _ : state) {
    auto r = env->server->text()->InsertText(env->user, doc, pos, "x");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    ++pos;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsOverheadGroupCommit)->Arg(0)->Arg(1);

// --- primitive costs ------------------------------------------------------

void BM_CounterAdd(benchmark::State& state) {
  Counter c;
  for (auto _ : state) c.Add();
  benchmark::DoNotOptimize(c.Value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  uint64_t v = 0;
  for (auto _ : state) h.Record(++v & 0xFFFF);
  benchmark::DoNotOptimize(h.Snapshot().count);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_ScopedTimerSpan(benchmark::State& state) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  for (auto _ : state) {
    ScopedTimer timer(h);
    benchmark::DoNotOptimize(timer);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedTimerSpan);

void BM_ScopedTimerDisarmed(benchmark::State& state) {
  for (auto _ : state) {
    ScopedTimer timer(nullptr);  // the metrics_enabled=false configuration
    benchmark::DoNotOptimize(timer);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedTimerDisarmed);

// --- cold aggregation paths ------------------------------------------------

MetricsRegistry* PopulatedRegistry() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    for (int i = 0; i < 32; ++i) {
      Counter* c = r->counter("counter." + std::to_string(i));
      c->Add(static_cast<uint64_t>(i) * 1000);
      Histogram* h = r->histogram("hist." + std::to_string(i));
      for (uint64_t v = 1; v <= 256; ++v) h->Record(v * (i + 1));
    }
    return r;
  }();
  return registry;
}

void BM_RegistrySnapshot(benchmark::State& state) {
  MetricsRegistry* registry = PopulatedRegistry();
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry->Snapshot().counters.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistrySnapshot);

void BM_SnapshotEncodeDecode(benchmark::State& state) {
  MetricsSnapshot snap = PopulatedRegistry()->Snapshot();
  for (auto _ : state) {
    auto decoded = DecodeMetricsSnapshot(EncodeMetricsSnapshot(snap));
    if (!decoded.ok()) state.SkipWithError("decode failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotEncodeDecode);

void BM_TextExposition(benchmark::State& state) {
  MetricsRegistry* registry = PopulatedRegistry();
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry->TextExposition().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TextExposition);

}  // namespace
}  // namespace tendax

BENCHMARK_MAIN();

// MVCC economics: what lock-free snapshot reads buy, and what snapshot
// publication costs.
//
// BM_ReadersWithWriter/<readers> runs `readers` threads taking copy-paste
// source reads (`TextStore::Copy`) from one shared document while a
// background writer types durable keystrokes into it (file-backed WAL,
// inline commit fsync — which holds the writer's exclusive document lock
// through the flush, the strict-2PL behavior of the non-batched commit
// modes). With MVCC on, every Copy materializes from the published
// snapshot inside a lock-free snapshot-read transaction, so readers never
// queue behind the fsync-ing writer. With MVCC off (`mvcc_snapshots =
// false`) each Copy acquires a shared document lock and stalls for the
// writer's full commit+fsync window — the pre-MVCC baseline. Each
// iteration runs one round per mode back to back (interleaved A/B, so
// fsync-cost drift cancels); acceptance is `snapshot_speedup >= 2` at /16.
//
// BM_AcquireSnapshot is the raw fast-path cost: one acquire-load plus a
// shared_ptr refcount bump (and the mvcc.snapshots_acquired tick).
//
// BM_InsertCharDurable measures publication overhead on the write path
// that matters — a durable single-character keystroke commit against a
// file-backed WAL, publication on vs off, interleaved the same way;
// acceptance is `publication_overhead_pct <= 5`.
//
// Regenerate the committed results with
//   ./build/bench/bench_mvcc --benchmark_out=BENCH_mvcc.json
//       --benchmark_out_format=json
//
// NOTE: committed numbers come from a single-CPU VM; reader threads time
// share, so the snapshot-vs-locked gap there is dominated by lock
// convoying (parked readers burning scheduler quanta), not parallelism.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tendax.h"
#include "storage/wal.h"

namespace tendax {
namespace {

struct ReadEnv {
  std::unique_ptr<TendaxServer> server;
  UserId user;
  DocumentId doc;
};

ReadEnv* MakeReadEnv(bool mvcc, const std::string& tag) {
  auto* e = new ReadEnv();
  const std::string path = "bench_mvcc_readers_" + tag + ".db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  TendaxOptions options;
  options.db.path = path;  // durable writer: X lock held through the fsync
  options.db.buffer_pool_pages = 16384;
  options.mvcc_snapshots = mvcc;
  // Readers must not give up while the writer holds the exclusive lock in
  // the locked baseline — a long budget keeps them waiting, which is the
  // cost under measurement.
  options.db.lock_timeout = std::chrono::milliseconds(2000);
  e->server = *TendaxServer::Open(std::move(options));
  e->user = *e->server->accounts()->CreateUser("bench");
  e->doc = *e->server->text()->CreateDocument(e->user, "scanned");
  (void)e->server->text()->InsertText(e->user, e->doc, 0,
                                      std::string(2000, 'x'));
  return e;
}

constexpr size_t kReadsPerReaderPerRound = 500;

// One round: a background writer types durably for the round's duration
// while `readers` threads each take a fixed batch of copy-source reads.
// Returns the wall-clock seconds the readers took.
double ReaderRound(ReadEnv* env, size_t readers) {
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto r = env->server->text()->InsertText(env->user, env->doc, 0, "w");
      if (!r.ok() && !r.status().IsRetryable()) return;
    }
  });
  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (size_t i = 0; i < readers; ++i) {
    threads.emplace_back([&] {
      for (size_t op = 0; op < kReadsPerReaderPerRound; ++op) {
        auto chars = env->server->text()->Copy(env->user, env->doc, 0, 64);
        if (chars.ok()) benchmark::DoNotOptimize(chars->size());
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();
  stop.store(true, std::memory_order_release);
  writer.join();
  return std::chrono::duration<double>(end - begin).count();
}

// Interleaved A/B contrast: every iteration runs one locked round and one
// snapshot round back to back, so slow drift in fsync cost (the rounds are
// dominated by how often readers stall behind the fsync-ing writer) hits
// both sides equally. The committed acceptance number is the
// `snapshot_speedup` counter — reader throughput ratio, snapshot over
// locked — which must be >= 2 for /16.
void BM_ReadersWithWriter(benchmark::State& state) {
  static ReadEnv* locked = MakeReadEnv(false, "locked");
  static ReadEnv* mvcc = MakeReadEnv(true, "mvcc");
  const size_t readers = static_cast<size_t>(state.range(0));

  double locked_secs = 0;
  double mvcc_secs = 0;
  uint64_t reads_per_side = 0;
  for (auto _ : state) {
    locked_secs += ReaderRound(locked, readers);
    mvcc_secs += ReaderRound(mvcc, readers);
    reads_per_side += readers * kReadsPerReaderPerRound;
  }
  state.SetItemsProcessed(static_cast<int64_t>(2 * reads_per_side));
  state.counters["locked_reads_per_sec"] =
      static_cast<double>(reads_per_side) / locked_secs;
  state.counters["snapshot_reads_per_sec"] =
      static_cast<double>(reads_per_side) / mvcc_secs;
  state.counters["snapshot_speedup"] = locked_secs / mvcc_secs;
}
BENCHMARK(BM_ReadersWithWriter)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Raw snapshot acquisition: the read fast path with no materialization.
void BM_AcquireSnapshot(benchmark::State& state) {
  static ReadEnv* env = MakeReadEnv(true, "acquire");
  for (auto _ : state) {
    auto snap = env->server->text()->AcquireSnapshot(env->doc);
    if (!snap.ok()) state.SkipWithError(snap.status().ToString().c_str());
    benchmark::DoNotOptimize(snap->get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AcquireSnapshot);

// Publication overhead on the durable keystroke path: the file-backed
// per-commit-fsync insert, with snapshot publication on versus off. Again
// interleaved A/B — fsync cost drifts far more than the publication delta
// (a copy-on-write segment clone plus an atomic store, tens of
// microseconds of CPU against hundreds of microseconds of flush wait) —
// so each iteration alternates a batch on each server and the committed
// acceptance number is the `publication_overhead_pct` counter (<= 5).
void BM_InsertCharDurable(benchmark::State& state) {
  static auto make = [](bool snapshots, const std::string& tag) {
    auto* e = new ReadEnv();
    const std::string path = "bench_mvcc_durable_" + tag + ".db";
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
    TendaxOptions options;
    options.db.path = path;
    options.db.buffer_pool_pages = 16384;
    options.mvcc_snapshots = snapshots;
    e->server = *TendaxServer::Open(std::move(options));
    e->user = *e->server->accounts()->CreateUser("bench");
    e->doc = *e->server->text()->CreateDocument(e->user, "durable");
    return e;
  };
  static ReadEnv* off = make(false, "off");
  static ReadEnv* on = make(true, "on");
  constexpr size_t kBatch = 16;
  auto batch = [&](ReadEnv* env) {
    const auto begin = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kBatch; ++i) {
      auto r = env->server->text()->InsertText(env->user, env->doc, 0, "x");
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         begin)
        .count();
  };
  double off_secs = 0;
  double on_secs = 0;
  uint64_t inserts_per_side = 0;
  for (auto _ : state) {
    off_secs += batch(off);
    on_secs += batch(on);
    inserts_per_side += kBatch;
  }
  state.SetItemsProcessed(static_cast<int64_t>(2 * inserts_per_side));
  const double per_side = static_cast<double>(inserts_per_side);
  state.counters["insert_off_us"] = off_secs * 1e6 / per_side;
  state.counters["insert_on_us"] = on_secs * 1e6 / per_side;
  state.counters["publication_overhead_pct"] =
      100.0 * (on_secs - off_secs) / off_secs;
}
BENCHMARK(BM_InsertCharDurable)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();  // the fsync wait dominates; CPU time would hide it

}  // namespace
}  // namespace tendax

BENCHMARK_MAIN();

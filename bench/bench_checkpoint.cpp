// Checkpoint economics: what a fuzzy checkpoint buys (bounded recovery) and
// what it costs (the pause it imposes while flushing dirty pages).
//
// BM_RecoveryReplay/0 vs /1 is the acceptance comparison: crash-recovery
// time over the same edit history without (/0) and with (/1) a fuzzy
// checkpoint taken near the end. The checkpointed run replays only the
// post-checkpoint tail — and its WAL has already been truncated to it.
// BM_CheckpointPause prices one CheckpointNow() call as a function of the
// number of dirty pages it must flush (the arg).
//
// Regenerate the committed results with
//   ./build/bench/bench_checkpoint --benchmark_out=BENCH_checkpoint.json
//       --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "db/database.h"
#include "storage/disk_manager.h"
#include "storage/segmented_log.h"

namespace tendax {
namespace {

Schema BenchSchema() {
  return Schema({{"id", ColumnType::kUint64}, {"body", ColumnType::kString}});
}

Result<std::unique_ptr<Database>> OpenBenchDb(
    std::shared_ptr<InMemoryDiskManager> disk,
    std::shared_ptr<SegmentedLogStorage> log) {
  DatabaseOptions options;
  options.buffer_pool_pages = 512;
  options.disk = std::move(disk);
  options.log_storage = std::move(log);
  options.wal_segment_bytes = 16 * 1024;
  return Database::Open(std::move(options));
}

Status InsertRows(Database* db, HeapTable* table, uint64_t base, uint64_t n) {
  return db->txns()->RunInTxn(UserId(1), [&](Transaction* txn) -> Status {
    for (uint64_t i = 0; i < n; ++i) {
      auto r = table->Insert(
          txn, Record({base + i, std::string(64, 'x')}));
      if (!r.ok()) return r.status();
    }
    return Status::OK();
  });
}

// Crash-recovery latency over a 40k-row history. arg=0: no checkpoint, the
// reopen replays everything. arg=1: a fuzzy checkpoint ran after row 39800,
// so analysis anchors on its end record and replays only the tail.
void BM_RecoveryReplay(benchmark::State& state) {
  const bool with_checkpoint = state.range(0) != 0;
  auto disk = std::make_shared<InMemoryDiskManager>();
  auto log = SegmentedLogStorage::InMemory();
  {
    auto db = OpenBenchDb(disk, log);
    if (!db.ok()) {
      state.SkipWithError(db.status().ToString().c_str());
      return;
    }
    auto table = (*db)->CreateTable("bench", BenchSchema());
    if (!table.ok()) {
      state.SkipWithError(table.status().ToString().c_str());
      return;
    }
    for (uint64_t chunk = 0; chunk < 199; ++chunk) {
      (void)InsertRows(db->get(), *table, chunk * 200, 200);
    }
    if (with_checkpoint) (void)(*db)->CheckpointNow();
    (void)InsertRows(db->get(), *table, 39800, 200);
    (*db)->SimulateCrash();
  }
  // Recovery is idempotent, so every iteration reopens the same crashed
  // image. Open() includes analysis + redo + undo + catalog reload.
  for (auto _ : state) {
    auto db = OpenBenchDb(disk, log);
    if (!db.ok()) state.SkipWithError(db.status().ToString().c_str());
    benchmark::DoNotOptimize(db);
    state.PauseTiming();
    db->reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecoveryReplay)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Cost of one CheckpointNow() that must flush `arg` freshly dirtied pages:
// begin record + ATT/DPT snapshot + idle-page flush loop + end record +
// segment rotation and truncation.
void BM_CheckpointPause(benchmark::State& state) {
  const uint64_t dirty_rows = static_cast<uint64_t>(state.range(0));
  auto disk = std::make_shared<InMemoryDiskManager>();
  auto log = SegmentedLogStorage::InMemory();
  auto db = OpenBenchDb(disk, log);
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  auto table = (*db)->CreateTable("bench", BenchSchema());
  if (!table.ok()) {
    state.SkipWithError(table.status().ToString().c_str());
    return;
  }
  uint64_t next = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Status st = InsertRows(db->get(), *table, next, dirty_rows);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    next += dirty_rows;
    state.ResumeTiming();
    st = (*db)->CheckpointNow();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckpointPause)->Arg(16)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace tendax

BENCHMARK_MAIN();

// E8 / Fig. 2 — the visual-mining overview of the document space.
// Regenerates the figure (ASCII below; SVG in artifacts/fig2_mining.svg)
// over a clustered corpus, then benchmarks vector building, similarity and
// the 2-D projection against corpus size.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <map>

#include "core/tendax.h"
#include "workload/generators.h"

namespace tendax {
namespace {



struct MiningEnv {
  std::unique_ptr<TendaxServer> server;
  UserId writer, reader;
  std::vector<DocumentId> docs;

  static MiningEnv* Get(const std::string& family) {
    static auto* envs = new std::map<std::string, MiningEnv*>();
    auto it = envs->find(family);
    if (it == envs->end()) {
      auto* e = new MiningEnv();
      TendaxOptions options;
      options.db.buffer_pool_pages = 32768;
      e->server = *TendaxServer::Open(std::move(options));
      e->writer = *e->server->accounts()->CreateUser("writer");
      e->reader = *e->server->accounts()->CreateUser("reader");
      it = envs->emplace(family, e).first;
    }
    return it->second;
  }

  /// Corpus in `clusters` topical clusters (disjoint vocabularies).
  void EnsureCorpus(int n, int clusters = 4) {
    Random rng(41);
    for (int i = static_cast<int>(docs.size()); i < n; ++i) {
      int cluster = i % clusters;
      CorpusGenerator corpus(100 + cluster);  // one vocabulary per cluster
      auto doc = server->text()->CreateDocument(
          writer, "c" + std::to_string(cluster) + "-doc" + std::to_string(i));
      (void)server->text()->InsertText(writer, *doc, 0,
                                       corpus.Document(40 + rng.Uniform(40)));
      if (rng.OneIn(3)) (void)server->meta()->RecordRead(reader, *doc);
      docs.push_back(*doc);
    }
  }
};

void EmitFigure2() {
  MiningEnv* env = MiningEnv::Get("figure2");
  env->EnsureCorpus(48, 4);
  auto points = *env->server->visual_miner()->Project(60);

  std::printf("=== Figure 2: visual mining, %zu documents in 4 clusters ===\n",
              points.size());
  std::printf("%s\n",
              env->server->visual_miner()->RenderAscii(points).c_str());
  std::printf("dimension navigation (size vs age):\n%s\n",
              env->server->visual_miner()
                  ->RenderAscii(points, MiningAxis::kSize, MiningAxis::kAge)
                  .c_str());
  std::filesystem::create_directories("artifacts");
  std::ofstream("artifacts/fig2_mining.svg")
      << env->server->visual_miner()->RenderSvg(points);
  std::printf("(SVG written to artifacts/fig2_mining.svg)\n\n");
}

// tf-idf vector construction over the corpus.
void BM_BuildVectors(benchmark::State& state) {
  MiningEnv* env = MiningEnv::Get(__func__);
  env->EnsureCorpus(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto st = env->server->text_miner()->BuildVectors();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildVectors)->Arg(32)->Arg(128)->Arg(512);

// Pairwise similarity of two documents.
void BM_PairSimilarity(benchmark::State& state) {
  MiningEnv* env = MiningEnv::Get(__func__);
  env->EnsureCorpus(128);
  (void)env->server->text_miner()->BuildVectors();
  for (auto _ : state) {
    auto sim = env->server->text_miner()->Similarity(env->docs[0],
                                                     env->docs[1]);
    if (!sim.ok()) state.SkipWithError(sim.status().ToString().c_str());
    benchmark::DoNotOptimize(*sim);
  }
}
BENCHMARK(BM_PairSimilarity);

// Keyword extraction and nearest-neighbour queries.
void BM_Keywords(benchmark::State& state) {
  MiningEnv* env = MiningEnv::Get(__func__);
  env->EnsureCorpus(128);
  (void)env->server->text_miner()->BuildVectors();
  for (auto _ : state) {
    auto kw = env->server->text_miner()->Keywords(env->docs[0], 5);
    if (!kw.ok()) state.SkipWithError(kw.status().ToString().c_str());
  }
}
BENCHMARK(BM_Keywords);

void BM_NearestNeighbours(benchmark::State& state) {
  MiningEnv* env = MiningEnv::Get(__func__);
  env->EnsureCorpus(static_cast<int>(state.range(0)));
  (void)env->server->text_miner()->BuildVectors();
  for (auto _ : state) {
    auto nn = env->server->text_miner()->Nearest(env->docs[0], 5);
    if (!nn.ok()) state.SkipWithError(nn.status().ToString().c_str());
  }
}
BENCHMARK(BM_NearestNeighbours)->Arg(32)->Arg(128);

// The full Fig. 2 pipeline: vectors + O(n^2) similarities + force layout.
void BM_ProjectDocumentSpace(benchmark::State& state) {
  MiningEnv* env = MiningEnv::Get(__func__);
  env->EnsureCorpus(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto points = env->server->visual_miner()->Project(30);
    if (!points.ok()) state.SkipWithError(points.status().ToString().c_str());
    benchmark::DoNotOptimize(points->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProjectDocumentSpace)->Arg(16)->Arg(64)->Arg(128);

// Rendering only.
void BM_RenderScatter(benchmark::State& state) {
  MiningEnv* env = MiningEnv::Get(__func__);
  env->EnsureCorpus(128);
  auto points = *env->server->visual_miner()->Project(20);
  for (auto _ : state) {
    std::string svg = env->server->visual_miner()->RenderSvg(points);
    std::string ascii = env->server->visual_miner()->RenderAscii(points);
    benchmark::DoNotOptimize(svg.size() + ascii.size());
  }
}
BENCHMARK(BM_RenderScatter);

}  // namespace
}  // namespace tendax

int main(int argc, char** argv) {
  tendax::EmitFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Tests for sessions, awareness, change propagation, editors, and
// local/global undo/redo.

#include <gtest/gtest.h>

#include <thread>

#include "server_fixture.h"

namespace tendax {
namespace {

class CollabTest : public ServerTest {};

TEST_F(CollabTest, SessionLifecycleAndAwareness) {
  SessionManager* sm = server_->sessions();
  auto s1 = sm->Connect(alice_, "editor-linux");
  auto s2 = sm->Connect(bob_, "editor-macos");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(sm->OnlineSessions().size(), 2u);

  DocumentId doc = MakeDoc(alice_, "shared", "hello");
  ASSERT_TRUE(sm->OpenDocument(*s1, doc).ok());
  ASSERT_TRUE(sm->OpenDocument(*s2, doc).ok());
  auto viewing = sm->SessionsViewing(doc);
  ASSERT_EQ(viewing.size(), 2u);

  ASSERT_TRUE(sm->SetCursor(*s1, doc, 3).ok());
  ASSERT_TRUE(sm->SetCursor(*s2, doc, 5).ok());
  auto cursors = sm->CursorsFor(doc);
  ASSERT_EQ(cursors.size(), 2u);

  ASSERT_TRUE(sm->Disconnect(*s2).ok());
  EXPECT_EQ(sm->OnlineSessions().size(), 1u);
  EXPECT_TRUE(sm->SetCursor(*s2, doc, 0).IsNotFound());
}

TEST_F(CollabTest, OpeningADocumentRecordsARead) {
  DocumentId doc = MakeDoc(alice_, "audited", "x");
  auto session = server_->sessions()->Connect(bob_, "editor");
  ASSERT_TRUE(server_->sessions()->OpenDocument(*session, doc).ok());
  EXPECT_TRUE(server_->meta()->Meta(doc).readers.count(bob_));
}

TEST_F(CollabTest, CommittedEditsReachOtherSessions) {
  DocumentId doc = MakeDoc(alice_, "live", "");
  auto watcher = server_->AttachEditor(bob_, "watcher");
  ASSERT_TRUE(watcher.ok());
  ASSERT_TRUE((*watcher)->Open(doc).ok());
  // Drain the read event backlog.
  ASSERT_TRUE((*watcher)->PollEvents().ok());

  auto typist = server_->AttachEditor(alice_, "typist");
  ASSERT_TRUE((*typist)->Open(doc).ok());
  ASSERT_TRUE((*typist)->Type(doc, 0, "hi there").ok());

  auto events = (*watcher)->PollEvents();
  ASSERT_TRUE(events.ok());
  bool saw_insert = false;
  for (const ChangeEvent& ev : *events) {
    if (ev.kind == ChangeKind::kTextInserted && ev.doc == doc) {
      saw_insert = true;
      EXPECT_EQ(ev.user, alice_);
      EXPECT_EQ(ev.count, 8u);
    }
  }
  EXPECT_TRUE(saw_insert);
  // The watcher sees the committed text immediately.
  EXPECT_EQ(*(*watcher)->Text(doc), "hi there");
}

TEST_F(CollabTest, EventsNotDeliveredForUnopenedDocs) {
  DocumentId doc = MakeDoc(alice_, "quiet", "");
  auto watcher = server_->AttachEditor(bob_, "watcher");
  // Never opens `doc`.
  ASSERT_TRUE(server_->text()->InsertText(alice_, doc, 0, "noise").ok());
  auto events = (*watcher)->PollEvents();
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->empty());
}

TEST_F(CollabTest, LocalUndoRedoRoundTrip) {
  DocumentId doc = MakeDoc(alice_, "undoable", "");
  auto editor = server_->AttachEditor(alice_, "editor");
  ASSERT_TRUE((*editor)->Open(doc).ok());
  ASSERT_TRUE((*editor)->Type(doc, 0, "hello").ok());
  ASSERT_TRUE((*editor)->Type(doc, 5, " world").ok());
  EXPECT_EQ(*(*editor)->Text(doc), "hello world");

  ASSERT_TRUE((*editor)->Undo(doc).ok());
  EXPECT_EQ(*(*editor)->Text(doc), "hello");
  ASSERT_TRUE((*editor)->Undo(doc).ok());
  EXPECT_EQ(*(*editor)->Text(doc), "");
  EXPECT_TRUE((*editor)->Undo(doc).IsNotFound());  // nothing left

  ASSERT_TRUE((*editor)->Redo(doc).ok());
  EXPECT_EQ(*(*editor)->Text(doc), "hello");
  ASSERT_TRUE((*editor)->Redo(doc).ok());
  EXPECT_EQ(*(*editor)->Text(doc), "hello world");
  EXPECT_TRUE((*editor)->Redo(doc).IsNotFound());
}

TEST_F(CollabTest, UndoOfDeleteResurrects) {
  DocumentId doc = MakeDoc(alice_, "resurrect", "");
  auto editor = server_->AttachEditor(alice_, "editor");
  ASSERT_TRUE((*editor)->Type(doc, 0, "keep this text").ok());
  ASSERT_TRUE((*editor)->Erase(doc, 4, 5).ok());
  EXPECT_EQ(*(*editor)->Text(doc), "keep text");
  ASSERT_TRUE((*editor)->Undo(doc).ok());
  EXPECT_EQ(*(*editor)->Text(doc), "keep this text");
  ASSERT_TRUE((*editor)->Redo(doc).ok());
  EXPECT_EQ(*(*editor)->Text(doc), "keep text");
}

TEST_F(CollabTest, LocalUndoOnlyTouchesOwnOps) {
  DocumentId doc = MakeDoc(alice_, "mine-yours", "");
  auto alice_ed = server_->AttachEditor(alice_, "a");
  auto bob_ed = server_->AttachEditor(bob_, "b");
  ASSERT_TRUE((*alice_ed)->Type(doc, 0, "alice ").ok());
  ASSERT_TRUE((*bob_ed)->Type(doc, 6, "bob").ok());
  // Alice's local undo removes her text, not bob's (which came later).
  ASSERT_TRUE((*alice_ed)->Undo(doc).ok());
  EXPECT_EQ(*(*alice_ed)->Text(doc), "bob");
  // Bob still has his op to undo.
  ASSERT_TRUE((*bob_ed)->Undo(doc).ok());
  EXPECT_EQ(*(*bob_ed)->Text(doc), "");
}

TEST_F(CollabTest, GlobalUndoRevertsAnyones) {
  DocumentId doc = MakeDoc(alice_, "global", "");
  auto alice_ed = server_->AttachEditor(alice_, "a");
  auto bob_ed = server_->AttachEditor(bob_, "b");
  ASSERT_TRUE((*alice_ed)->Type(doc, 0, "first ").ok());
  ASSERT_TRUE((*bob_ed)->Type(doc, 6, "second").ok());
  // Alice globally undoes bob's edit.
  ASSERT_TRUE((*alice_ed)->UndoAnyone(doc).ok());
  EXPECT_EQ(*(*alice_ed)->Text(doc), "first ");
  ASSERT_TRUE((*alice_ed)->RedoAnyone(doc).ok());
  EXPECT_EQ(*(*alice_ed)->Text(doc), "first second");
}

TEST_F(CollabTest, UndoInterleavedWithLaterEditsIsSafe) {
  DocumentId doc = MakeDoc(alice_, "interleaved", "");
  auto alice_ed = server_->AttachEditor(alice_, "a");
  auto bob_ed = server_->AttachEditor(bob_, "b");
  ASSERT_TRUE((*alice_ed)->Type(doc, 0, "AAAA").ok());
  ASSERT_TRUE((*bob_ed)->Type(doc, 2, "BB").ok());  // AA BB AA
  EXPECT_EQ(*(*alice_ed)->Text(doc), "AABBAA");
  // Undoing alice's earlier insert must remove exactly the A's.
  ASSERT_TRUE((*alice_ed)->Undo(doc).ok());
  EXPECT_EQ(*(*alice_ed)->Text(doc), "BB");
  ASSERT_TRUE((*alice_ed)->Redo(doc).ok());
  EXPECT_EQ(*(*alice_ed)->Text(doc), "AABBAA");
}

TEST_F(CollabTest, CopyPasteThroughEditors) {
  DocumentId src = MakeDoc(alice_, "clip-src", "important phrase here");
  DocumentId dst = MakeDoc(bob_, "clip-dst", "");
  auto editor = server_->AttachEditor(bob_, "b");
  ASSERT_TRUE((*editor)->Open(src).ok());
  auto clip = (*editor)->CopyRange(src, 10, 6);
  ASSERT_TRUE(clip.ok());
  ASSERT_TRUE((*editor)->PasteAt(dst, 0, *clip).ok());
  EXPECT_EQ(*(*editor)->Text(dst), "phrase");
  // Paste is undoable like typing.
  ASSERT_TRUE((*editor)->Undo(dst).ok());
  EXPECT_EQ(*(*editor)->Text(dst), "");
}

TEST_F(CollabTest, OpHistoryTracksUndoState) {
  DocumentId doc = MakeDoc(alice_, "history", "");
  auto editor = server_->AttachEditor(alice_, "a");
  ASSERT_TRUE((*editor)->Type(doc, 0, "x").ok());
  ASSERT_TRUE((*editor)->Undo(doc).ok());
  auto history = server_->undo()->History(doc);
  ASSERT_EQ(history.size(), 1u);
  EXPECT_TRUE(history[0].undone);
  EXPECT_EQ(history[0].kind, OpKind::kInsert);
  EXPECT_EQ(history[0].text, "x");
}

// Ghost-awareness regression: once a session is gone — explicit Disconnect
// or lease expiry — awareness must never report its cursors or open
// documents again.
TEST_F(CollabTest, DisconnectDropsAwarenessState) {
  SessionManager* sm = server_->sessions();
  DocumentId doc = MakeDoc(alice_, "haunted", "boo");
  auto s1 = sm->Connect(alice_, "editor-linux");
  auto s2 = sm->Connect(bob_, "editor-macos");
  ASSERT_TRUE(sm->OpenDocument(*s1, doc).ok());
  ASSERT_TRUE(sm->OpenDocument(*s2, doc).ok());
  ASSERT_TRUE(sm->SetCursor(*s1, doc, 1).ok());
  ASSERT_TRUE(sm->SetCursor(*s2, doc, 2).ok());
  ASSERT_EQ(sm->CursorsFor(doc).size(), 2u);

  ASSERT_TRUE(sm->Disconnect(*s1).ok());
  auto cursors = sm->CursorsFor(doc);
  ASSERT_EQ(cursors.size(), 1u);
  EXPECT_EQ(cursors[0].session, *s2);
  auto viewing = sm->SessionsViewing(doc);
  ASSERT_EQ(viewing.size(), 1u);
  EXPECT_EQ(viewing[0].id, *s2);

  ASSERT_TRUE(sm->Disconnect(*s2).ok());
  EXPECT_TRUE(sm->CursorsFor(doc).empty());
  EXPECT_TRUE(sm->SessionsViewing(doc).empty());
  EXPECT_TRUE(sm->OnlineSessions().empty());
}

TEST_F(CollabTest, LeaseExpiryReapsSessionAndAwareness) {
  // Leases need their own server: the fixture's sessions are immortal.
  TendaxOptions options;
  auto clock = std::make_shared<ManualClock>(1'000'000'000, /*tick=*/1000);
  options.db.clock = clock;
  options.session.lease_ttl_micros = 5'000'000;  // 5s
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok());
  auto user = (*server)->accounts()->CreateUser("mortal");
  ASSERT_TRUE(user.ok());
  SessionManager* sm = (*server)->sessions();
  auto doc = (*server)->text()->CreateDocument(*user, "doc");
  ASSERT_TRUE(doc.ok());

  auto dead = sm->Connect(*user, "wedged-editor");
  auto live = sm->Connect(*user, "healthy-editor");
  ASSERT_TRUE(dead.ok());
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(sm->OpenDocument(*dead, *doc).ok());
  ASSERT_TRUE(sm->SetCursor(*dead, *doc, 1).ok());
  ASSERT_TRUE(sm->OpenDocument(*live, *doc).ok());

  // The healthy editor heartbeats across the TTL; the wedged one goes
  // silent and its lease lapses.
  clock->Advance(4'000'000);
  ASSERT_TRUE(sm->Heartbeat(*live).ok());
  clock->Advance(4'000'000);
  EXPECT_EQ(sm->ReapExpired(), 1u);

  EXPECT_TRUE(sm->Heartbeat(*dead).IsNotFound());
  EXPECT_TRUE(sm->Heartbeat(*live).ok());
  auto viewing = sm->SessionsViewing(*doc);
  ASSERT_EQ(viewing.size(), 1u);
  EXPECT_EQ(viewing[0].id, *live);
  EXPECT_TRUE(sm->CursorsFor(*doc).empty());  // only `dead` had a cursor
  EXPECT_EQ(sm->sessions_reaped(), 1u);
}

TEST_F(CollabTest, ConcurrentEditorsConvergeThroughTheDatabase) {
  DocumentId doc = MakeDoc(alice_, "lan-party", "");
  constexpr int kEditors = 4;
  constexpr int kEdits = 20;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kEditors; ++t) {
    threads.emplace_back([&, t] {
      UserId user = t % 2 == 0 ? alice_ : bob_;
      auto editor = server_->AttachEditor(user, "thread-" + std::to_string(t));
      if (!editor.ok() || !(*editor)->Open(doc).ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kEdits; ++i) {
        if (!(*editor)->Type(doc, 0, std::string(1, 'a' + t)).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(*server_->text()->Length(doc),
            static_cast<uint64_t>(kEditors * kEdits));
  EXPECT_GT(server_->sessions()->events_delivered(), 0u);
}

}  // namespace
}  // namespace tendax

#ifndef TENDAX_TESTS_SERVER_FIXTURE_H_
#define TENDAX_TESTS_SERVER_FIXTURE_H_

#include <gtest/gtest.h>

#include <memory>

#include "core/tendax.h"

namespace tendax {

/// Opens an in-memory TeNDaX server with a deterministic manual clock and
/// two users (alice, bob) for module tests above the storage layer.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TendaxOptions options;
    clock_ = std::make_shared<ManualClock>(/*start=*/1'000'000'000,
                                           /*tick=*/1000);
    options.db.clock = clock_;
    options.db.buffer_pool_pages = 1024;
    auto server = TendaxServer::Open(std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);

    auto alice = server_->accounts()->CreateUser("alice");
    auto bob = server_->accounts()->CreateUser("bob");
    ASSERT_TRUE(alice.ok());
    ASSERT_TRUE(bob.ok());
    alice_ = *alice;
    bob_ = *bob;
  }

  /// Creates a document owned by `user` with `content` typed into it.
  DocumentId MakeDoc(UserId user, const std::string& name,
                     const std::string& content) {
    auto doc = server_->text()->CreateDocument(user, name);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    if (!content.empty()) {
      auto r = server_->text()->InsertText(user, *doc, 0, content);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    }
    return *doc;
  }

  std::shared_ptr<ManualClock> clock_;
  std::unique_ptr<TendaxServer> server_;
  UserId alice_;
  UserId bob_;
};

}  // namespace tendax

#endif  // TENDAX_TESTS_SERVER_FIXTURE_H_

// Tests for users, roles, and document/range access control.

#include <gtest/gtest.h>

#include "server_fixture.h"

namespace tendax {
namespace {

class SecurityTest : public ServerTest {};

TEST_F(SecurityTest, UserAndRoleLifecycle) {
  AccessControl* acl = server_->accounts();
  EXPECT_EQ(*acl->UserName(alice_), "alice");
  EXPECT_TRUE(acl->CreateUser("alice").status().IsAlreadyExists());
  EXPECT_EQ(*acl->FindUser("bob"), bob_);
  EXPECT_TRUE(acl->FindUser("nobody").status().IsNotFound());

  auto editors = acl->CreateRole("editors");
  ASSERT_TRUE(editors.ok());
  ASSERT_TRUE(acl->AssignRole(bob_, *editors).ok());
  EXPECT_TRUE(acl->RolesOf(bob_).count(*editors));
  auto members = acl->UsersInRole(*editors);
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(members[0], bob_);
  ASSERT_TRUE(acl->RevokeRole(bob_, *editors).ok());
  EXPECT_TRUE(acl->RolesOf(bob_).empty());
}

TEST_F(SecurityTest, DefaultOpenPolicyAndCreatorRights) {
  DocumentId doc = MakeDoc(alice_, "open-doc", "text");
  AccessControl* acl = server_->accounts();
  // Default open: everyone may read & write.
  EXPECT_TRUE(*acl->Check(bob_, doc, Right::kRead));
  EXPECT_TRUE(*acl->Check(bob_, doc, Right::kWrite));
  // Creators always keep all rights.
  EXPECT_TRUE(*acl->Check(alice_, doc, Right::kGrant));
}

TEST_F(SecurityTest, ExplicitDenyBeatsDefault) {
  DocumentId doc = MakeDoc(alice_, "guarded", "secret");
  AccessControl* acl = server_->accounts();
  ASSERT_TRUE(acl->GrantUser(alice_, doc, bob_, Right::kWrite,
                             /*allow=*/false)
                  .ok());
  EXPECT_FALSE(*acl->Check(bob_, doc, Right::kWrite));
  EXPECT_TRUE(*acl->Check(bob_, doc, Right::kRead));  // read untouched
  EXPECT_TRUE(acl->Require(bob_, doc, Right::kWrite).IsPermissionDenied());
}

TEST_F(SecurityTest, GrantsCloseTheWorldForThatRight) {
  DocumentId doc = MakeDoc(alice_, "invite-only", "x");
  AccessControl* acl = server_->accounts();
  auto carol = acl->CreateUser("carol");
  ASSERT_TRUE(carol.ok());
  // Granting bob write closes default write access for carol.
  ASSERT_TRUE(acl->GrantUser(alice_, doc, bob_, Right::kWrite).ok());
  EXPECT_TRUE(*acl->Check(bob_, doc, Right::kWrite));
  EXPECT_FALSE(*acl->Check(*carol, doc, Right::kWrite));
  // Read (no grants) still defaults open.
  EXPECT_TRUE(*acl->Check(*carol, doc, Right::kRead));
}

TEST_F(SecurityTest, RoleGrantsApplyToMembers) {
  DocumentId doc = MakeDoc(alice_, "role-doc", "x");
  AccessControl* acl = server_->accounts();
  auto reviewers = acl->CreateRole("reviewers");
  ASSERT_TRUE(reviewers.ok());
  ASSERT_TRUE(acl->GrantRole(alice_, doc, *reviewers, Right::kLayout).ok());
  EXPECT_FALSE(*acl->Check(bob_, doc, Right::kLayout));
  ASSERT_TRUE(acl->AssignRole(bob_, *reviewers).ok());
  EXPECT_TRUE(*acl->Check(bob_, doc, Right::kLayout));
}

TEST_F(SecurityTest, OnlyGrantHoldersMayChangeRights) {
  DocumentId doc = MakeDoc(alice_, "locked", "x");
  AccessControl* acl = server_->accounts();
  auto carol = acl->CreateUser("carol");
  // Close the grant right to alice only.
  ASSERT_TRUE(acl->GrantUser(alice_, doc, alice_, Right::kGrant).ok());
  Status st = acl->GrantUser(bob_, doc, *carol, Right::kWrite);
  EXPECT_TRUE(st.IsPermissionDenied()) << st.ToString();
}

TEST_F(SecurityTest, CharacterRangeScopedRights) {
  DocumentId doc = MakeDoc(alice_, "ranged", "public SECRET public");
  AccessControl* acl = server_->accounts();
  // Deny bob write on "SECRET" (positions 7..12) only.
  ASSERT_TRUE(acl->GrantUserRange(alice_, doc, bob_, Right::kWrite, 7, 6,
                                  /*allow=*/false)
                  .ok());
  EXPECT_FALSE(*acl->CheckAt(bob_, doc, Right::kWrite, 9));
  EXPECT_TRUE(*acl->CheckAt(bob_, doc, Right::kWrite, 0));
  EXPECT_TRUE(*acl->CheckAt(bob_, doc, Right::kWrite, 15));
  // Document-level check is unaffected by the range entry.
  EXPECT_TRUE(*acl->Check(bob_, doc, Right::kWrite));
}

TEST_F(SecurityTest, RangeScopeSurvivesSurroundingEdits) {
  DocumentId doc = MakeDoc(alice_, "moving", "abcSECRETxyz");
  AccessControl* acl = server_->accounts();
  ASSERT_TRUE(acl->GrantUserRange(alice_, doc, bob_, Right::kWrite, 3, 6,
                                  /*allow=*/false)
                  .ok());
  // Insert text before the protected range: its positions shift.
  ASSERT_TRUE(server_->text()->InsertText(alice_, doc, 0, ">>>>").ok());
  // "SECRET" now spans positions 7..12.
  EXPECT_FALSE(*acl->CheckAt(bob_, doc, Right::kWrite, 8));
  EXPECT_TRUE(*acl->CheckAt(bob_, doc, Right::kWrite, 1));
}

TEST_F(SecurityTest, EditorEnforcesRights) {
  DocumentId doc = MakeDoc(alice_, "enforced", "hands off");
  ASSERT_TRUE(server_->accounts()
                  ->GrantUser(alice_, doc, bob_, Right::kWrite,
                              /*allow=*/false)
                  .ok());
  auto editor = server_->AttachEditor(bob_, "test-editor");
  ASSERT_TRUE(editor.ok());
  ASSERT_TRUE((*editor)->Open(doc).ok());  // read is allowed
  EXPECT_TRUE((*editor)->Type(doc, 0, "!").IsPermissionDenied());
  EXPECT_TRUE((*editor)->Erase(doc, 0, 1).IsPermissionDenied());
  EXPECT_TRUE((*editor)->Text(doc).ok());
  // The document was not modified.
  EXPECT_EQ(*server_->text()->Text(doc), "hands off");
}

TEST_F(SecurityTest, AclEntriesPersisted) {
  DocumentId doc = MakeDoc(alice_, "persisted-acl", "x");
  ASSERT_TRUE(server_->accounts()
                  ->GrantUser(alice_, doc, bob_, Right::kRead, false)
                  .ok());
  auto entries = server_->accounts()->EntriesFor(doc);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].subject, bob_.value);
  EXPECT_FALSE(entries[0].allow);
  EXPECT_EQ(entries[0].granted_by, alice_);
}

}  // namespace
}  // namespace tendax

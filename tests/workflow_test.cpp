// Tests for in-document business processes: routing, dynamic changes,
// role assignment, rejection/reroute.

#include <gtest/gtest.h>

#include "server_fixture.h"

namespace tendax {
namespace {

class WorkflowTest : public ServerTest {
 protected:
  void SetUp() override {
    ServerTest::SetUp();
    doc_ = MakeDoc(alice_, "contract.txt",
                   "This agreement shall be translated and verified.");
    auto proc = server_->workflows()->DefineProcess(alice_, doc_, "review");
    ASSERT_TRUE(proc.ok()) << proc.status().ToString();
    proc_ = *proc;
  }
  DocumentId doc_;
  ProcessId proc_;
};

TEST_F(WorkflowTest, SequentialRouting) {
  WorkflowEngine* wf = server_->workflows();
  auto t1 = wf->AddTask(alice_, proc_, "translate", "to German",
                        Assignee::User(bob_));
  auto t2 = wf->AddTask(alice_, proc_, "verify", "check translation",
                        Assignee::User(alice_));
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());

  // Task 1 is ready, task 2 pending.
  EXPECT_EQ(wf->GetTask(*t1)->state, TaskState::kReady);
  EXPECT_EQ(wf->GetTask(*t2)->state, TaskState::kPending);

  // Bob sees exactly his ready task.
  auto worklist = wf->Worklist(bob_);
  ASSERT_EQ(worklist.size(), 1u);
  EXPECT_EQ(worklist[0].id, *t1);
  EXPECT_TRUE(wf->Worklist(alice_).empty());

  // Completing task 1 readies task 2.
  ASSERT_TRUE(wf->Complete(bob_, *t1).ok());
  EXPECT_EQ(wf->GetTask(*t2)->state, TaskState::kReady);
  ASSERT_TRUE(wf->Complete(alice_, *t2).ok());
  EXPECT_EQ(wf->GetProcess(proc_)->state, "finished");
}

TEST_F(WorkflowTest, OnlyAssigneeMayComplete) {
  WorkflowEngine* wf = server_->workflows();
  auto task = wf->AddTask(alice_, proc_, "translate", "", Assignee::User(bob_));
  EXPECT_TRUE(wf->Complete(alice_, *task).IsPermissionDenied());
  EXPECT_TRUE(wf->Complete(bob_, *task).ok());
  // Completing twice fails.
  EXPECT_TRUE(wf->Complete(bob_, *task).IsFailedPrecondition());
}

TEST_F(WorkflowTest, RoleAssignment) {
  WorkflowEngine* wf = server_->workflows();
  auto translators = server_->accounts()->CreateRole("translators");
  ASSERT_TRUE(translators.ok());
  auto task = wf->AddTask(alice_, proc_, "translate", "",
                          Assignee::Role(*translators));
  EXPECT_TRUE(wf->Complete(bob_, *task).IsPermissionDenied());
  ASSERT_TRUE(server_->accounts()->AssignRole(bob_, *translators).ok());
  EXPECT_EQ(wf->Worklist(bob_).size(), 1u);
  EXPECT_TRUE(wf->Complete(bob_, *task).ok());
}

TEST_F(WorkflowTest, DynamicTaskInsertionAtRunTime) {
  WorkflowEngine* wf = server_->workflows();
  auto t1 = wf->AddTask(alice_, proc_, "draft", "", Assignee::User(alice_));
  auto t3 = wf->AddTask(alice_, proc_, "publish", "", Assignee::User(alice_));
  ASSERT_TRUE(wf->Complete(alice_, *t1).ok());
  // While the route runs, squeeze a review in before publish.
  auto t2 = wf->InsertTaskAfter(alice_, *t1, "review", "new step",
                                Assignee::User(bob_));
  ASSERT_TRUE(t2.ok());
  auto route = wf->Route(proc_);
  ASSERT_EQ(route.size(), 3u);
  EXPECT_EQ(route[0].id, *t1);
  EXPECT_EQ(route[1].id, *t2);
  EXPECT_EQ(route[2].id, *t3);
  // The inserted task becomes the ready one; publish is pushed back.
  EXPECT_EQ(wf->GetTask(*t2)->state, TaskState::kReady);
  EXPECT_EQ(wf->GetTask(*t3)->state, TaskState::kPending);
}

TEST_F(WorkflowTest, ReassignAndSkip) {
  WorkflowEngine* wf = server_->workflows();
  auto t1 = wf->AddTask(alice_, proc_, "translate", "", Assignee::User(bob_));
  auto t2 = wf->AddTask(alice_, proc_, "verify", "", Assignee::User(bob_));
  ASSERT_TRUE(wf->Reassign(alice_, *t1, Assignee::User(alice_)).ok());
  EXPECT_TRUE(wf->Complete(bob_, *t1).IsPermissionDenied());
  ASSERT_TRUE(wf->Complete(alice_, *t1).ok());
  // Skip the second step entirely.
  ASSERT_TRUE(wf->SkipTask(alice_, *t2).ok());
  EXPECT_EQ(wf->GetProcess(proc_)->state, "finished");
}

TEST_F(WorkflowTest, RejectStallsUntilReroute) {
  WorkflowEngine* wf = server_->workflows();
  auto t1 = wf->AddTask(alice_, proc_, "translate", "", Assignee::User(bob_));
  auto t2 = wf->AddTask(alice_, proc_, "verify", "", Assignee::User(alice_));
  ASSERT_TRUE(wf->Reject(bob_, *t1, "source text is garbled").ok());
  EXPECT_EQ(wf->GetProcess(proc_)->state, "rejected");
  EXPECT_EQ(wf->GetTask(*t2)->state, TaskState::kPending);  // stalled
  // Owner reroutes to themselves; the process resumes.
  ASSERT_TRUE(wf->Reroute(alice_, *t1, Assignee::User(alice_)).ok());
  EXPECT_EQ(wf->GetProcess(proc_)->state, "running");
  EXPECT_EQ(wf->GetTask(*t1)->state, TaskState::kReady);
  ASSERT_TRUE(wf->Complete(alice_, *t1).ok());
  EXPECT_EQ(wf->GetTask(*t2)->state, TaskState::kReady);
}

TEST_F(WorkflowTest, TasksAnchorToDocumentRanges) {
  WorkflowEngine* wf = server_->workflows();
  auto task = wf->AddTask(alice_, proc_, "translate", "this range",
                          Assignee::User(bob_), 5, 9);
  ASSERT_TRUE(task.ok());
  auto info = wf->GetTask(*task);
  EXPECT_TRUE(info->anchor_start.valid());
  EXPECT_TRUE(info->anchor_end.valid());
}

TEST_F(WorkflowTest, WorkflowRequiresRight) {
  WorkflowEngine* wf = server_->workflows();
  // Close the workflow right to alice only.
  ASSERT_TRUE(server_->accounts()
                  ->GrantUser(alice_, doc_, alice_, Right::kWorkflow)
                  .ok());
  EXPECT_TRUE(
      wf->DefineProcess(bob_, doc_, "rogue").status().IsPermissionDenied());
  EXPECT_TRUE(wf->AddTask(bob_, proc_, "rogue-task", "",
                          Assignee::User(bob_))
                  .status()
                  .IsPermissionDenied());
}

TEST_F(WorkflowTest, ProcessesInDocument) {
  auto second = server_->workflows()->DefineProcess(alice_, doc_, "second");
  ASSERT_TRUE(second.ok());
  auto procs = server_->workflows()->ProcessesIn(doc_);
  EXPECT_EQ(procs.size(), 2u);
}

TEST_F(WorkflowTest, AddingWorkToFinishedProcessReopensIt) {
  WorkflowEngine* wf = server_->workflows();
  auto t1 = wf->AddTask(alice_, proc_, "only", "", Assignee::User(alice_));
  ASSERT_TRUE(wf->Complete(alice_, *t1).ok());
  EXPECT_EQ(wf->GetProcess(proc_)->state, "finished");
  auto t2 = wf->AddTask(alice_, proc_, "more", "", Assignee::User(bob_));
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(wf->GetProcess(proc_)->state, "running");
  EXPECT_EQ(wf->GetTask(*t2)->state, TaskState::kReady);
}

}  // namespace
}  // namespace tendax

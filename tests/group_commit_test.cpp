// Group-commit pipeline tests: deterministic interleavings forced by the
// seeded ScheduleController (pause/release the flusher at chosen flush
// indices) combined with FaultPlan's op-index fault machinery, plus the
// durability-ordering property under a crash-point sweep.
//
// Scale knobs (shared with the other torture suites):
//   TENDAX_TORTURE_SEED    schedule + fault seed          (default 7)
//   TENDAX_TORTURE_POINTS  sweep crash-point budget       (default 120)

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"
#include "testing/fault_injection.h"
#include "testing/fault_plan.h"
#include "testing/schedule_controller.h"
#include "txn/lock_manager.h"

namespace tendax {
namespace {

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::strtoull(v, nullptr, 10);
}

Schema ValueSchema() { return Schema({{"value", ColumnType::kUint64}}); }

// Everything a group-commit test needs in one bundle: a Database whose
// storage goes through fault injectors, the inner backends (kept to survive
// a simulated crash), the fault plan and the schedule controller.
struct Rig {
  std::shared_ptr<InMemoryDiskManager> disk;
  std::shared_ptr<InMemoryLogStorage> log;
  std::shared_ptr<FaultPlan> plan;
  std::shared_ptr<ScheduleController> sched;
  std::unique_ptr<Database> db;
  std::vector<HeapTable*> tables;  // t0..t{k-1}, schema {value: uint64}
};

Rig OpenRig(CommitFlushMode mode, size_t num_tables, uint64_t seed,
            bool early_lock_release = true) {
  Rig rig;
  rig.disk = std::make_shared<InMemoryDiskManager>();
  rig.log = std::make_shared<InMemoryLogStorage>();
  rig.plan = std::make_shared<FaultPlan>(seed);
  rig.sched = std::make_shared<ScheduleController>(seed);

  DatabaseOptions options;
  options.buffer_pool_pages = 64;
  options.disk = std::make_shared<FaultInjectingDiskManager>(rig.disk, rig.plan);
  options.log_storage =
      std::make_shared<FaultInjectingLogStorage>(rig.log, rig.plan);
  options.group_commit.mode = mode;
  options.group_commit.flush_interval = std::chrono::microseconds(0);
  options.group_commit.early_lock_release = early_lock_release;
  options.group_commit.hooks = rig.sched;
  auto db = Database::Open(std::move(options));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  if (!db.ok()) return rig;
  rig.db = std::move(*db);
  for (size_t i = 0; i < num_tables; ++i) {
    auto table = rig.db->CreateTable("t" + std::to_string(i), ValueSchema());
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    if (!table.ok()) return rig;
    rig.tables.push_back(*table);
  }
  return rig;
}

// Decodes the surviving (inner) log and returns the set of transaction ids
// with a durable commit record. Because decoding stops at the first torn or
// LSN-discontiguous record, this set is by construction a prefix of the
// commit-LSN order — the durability-ordering property is that the recovered
// table contents match it exactly, never a subset with holes.
std::set<uint64_t> DurableCommits(
    const std::shared_ptr<InMemoryLogStorage>& log) {
  std::string buffer;
  EXPECT_TRUE(log->ReadAll(&buffer).ok());
  std::vector<LogRecord> records;
  Wal::DecodeLogBuffer(buffer, &records);
  std::set<uint64_t> commits;
  for (const LogRecord& rec : records) {
    if (rec.type == LogType::kCommit) commits.insert(rec.txn.value);
  }
  return commits;
}

// Scans a table into the set of its uint64 values.
std::set<uint64_t> TableValues(HeapTable* table) {
  std::set<uint64_t> values;
  EXPECT_TRUE(table
                  ->Scan([&](RecordId, const Record& rec) {
                    values.insert(rec.GetUint(0));
                    return true;
                  })
                  .ok());
  return values;
}

// One committing thread's bookkeeping.
struct CommitAttempt {
  uint64_t txn_id = 0;
  Status status;
};

// Runs K threads, each inserting `base + i` into its own table inside a
// manually driven transaction, committing concurrently so the commits pile
// up into one group. Returns per-thread outcomes.
std::vector<CommitAttempt> CommitConcurrently(Rig& rig, size_t k,
                                              uint64_t base) {
  std::vector<CommitAttempt> attempts(k);
  std::vector<std::thread> threads;
  threads.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    threads.emplace_back([&rig, &attempts, i, base] {
      TxnManager* txns = rig.db->txns();
      Transaction* txn = txns->Begin(UserId(100 + i));
      attempts[i].txn_id = txn->id().value;
      Status st = rig.db->locks()->Acquire(
          txn->id(), MakeResource(ResourceKind::kDocument, 1 + i),
          LockMode::kX);
      if (st.ok()) {
        st = rig.tables[i]
                 ->Insert(txn, Record({base + static_cast<uint64_t>(i)}))
                 .status();
      }
      if (st.ok()) {
        attempts[i].status = txns->Commit(txn);
      } else {
        // The insert failure is the interesting status; a failed abort of
        // an already-doomed txn would only mask it.
        (void)txns->Abort(txn);
        attempts[i].status = st;
      }
    });
  }
  for (auto& th : threads) th.join();
  return attempts;
}

// K concurrent commits gated behind one paused flush must be made durable
// by a single coalesced Append+Sync.
TEST(GroupCommitTest, BatchesConcurrentCommitsIntoOneSync) {
  const uint64_t seed = EnvU64("TENDAX_TORTURE_SEED", 7);
  const size_t kWriters = 6;
  Rig rig = OpenRig(CommitFlushMode::kFlusherThread, kWriters, seed);
  ASSERT_NE(rig.db, nullptr);

  const WalGroupCommitStats before = rig.db->wal()->group_commit_stats();
  rig.sched->PauseAtFlush(rig.sched->flushes_finished() + 1);

  std::vector<CommitAttempt> attempts;
  std::thread runner(
      [&] { attempts = CommitConcurrently(rig, kWriters, 1000); });
  ASSERT_TRUE(rig.sched->WaitUntilPaused()) << rig.sched->Describe();
  ASSERT_TRUE(rig.sched->WaitForWaiters(kWriters)) << rig.sched->Describe();
  rig.sched->ReleaseFlush();
  runner.join();

  for (size_t i = 0; i < kWriters; ++i) {
    EXPECT_TRUE(attempts[i].status.ok())
        << "writer " << i << ": " << attempts[i].status.ToString();
  }
  const WalGroupCommitStats after = rig.db->wal()->group_commit_stats();
  // The core claim: six durable commits, one fsync. (The flusher may run a
  // trailing no-op attempt if it observes the already-covered waiters before
  // they exit, so group_flushes is >= 1, but a no-op never syncs.)
  EXPECT_EQ(after.syncs - before.syncs, 1u) << rig.sched->Describe();
  EXPECT_GE(after.group_flushes - before.group_flushes, 1u);
  EXPECT_EQ(after.max_batch, kWriters);
  EXPECT_EQ(after.commits - before.commits, kWriters);
  EXPECT_EQ(rig.db->txns()->ActiveCount(), 0u);
  for (size_t i = 0; i < kWriters; ++i) {
    EXPECT_EQ(TableValues(rig.tables[i]), std::set<uint64_t>{1000 + i});
  }
}

// Satellite regression: a failed shared flush must fan its error out to
// every waiter of the batch — all K commits return the error, every
// transaction is rolled back, no locks leak, and the TxnManager's books
// balance. The fault is transient, so the engine stays usable. Strict lock
// retention (early_lock_release off) is what makes the in-place rollback
// sound; the early-release flavour of this contract is fail-stop and is
// covered by EarlyReleaseFlushErrorFailsStop below.
TEST(GroupCommitTest, FlushErrorFansOutToAllWaiters) {
  const uint64_t seed = EnvU64("TENDAX_TORTURE_SEED", 7);
  const size_t kWriters = 8;
  Rig rig = OpenRig(CommitFlushMode::kFlusherThread, kWriters, seed,
                    /*early_lock_release=*/false);
  ASSERT_NE(rig.db, nullptr);

  const TxnManagerStats txn_before = rig.db->txns()->stats();
  rig.sched->PauseAtFlush(rig.sched->flushes_finished() + 1);

  std::vector<CommitAttempt> attempts;
  std::thread runner(
      [&] { attempts = CommitConcurrently(rig, kWriters, 2000); });
  ASSERT_TRUE(rig.sched->WaitUntilPaused()) << rig.sched->Describe();
  ASSERT_TRUE(rig.sched->WaitForWaiters(kWriters)) << rig.sched->Describe();
  // All K are enqueued behind the gate; the very next sync is the shared
  // group flush. Fail it.
  rig.plan->FailNthSync(rig.plan->syncs_seen() + 1);
  rig.sched->ReleaseFlush();
  runner.join();

  for (size_t i = 0; i < kWriters; ++i) {
    EXPECT_TRUE(attempts[i].status.IsIOError())
        << "writer " << i << " got: " << attempts[i].status.ToString() << " "
        << rig.plan->Describe();
  }
  // Books balance: K more begun, K more aborted, none committed, nothing
  // active, no lock leaked.
  const TxnManagerStats txn_after = rig.db->txns()->stats();
  EXPECT_EQ(txn_after.begun, txn_before.begun + kWriters);
  EXPECT_EQ(txn_after.aborted, txn_before.aborted + kWriters);
  EXPECT_EQ(txn_after.committed, txn_before.committed);
  EXPECT_EQ(rig.db->txns()->ActiveCount(), 0u);
  EXPECT_EQ(rig.db->locks()->LockedResourceCount(), 0u);
  const WalGroupCommitStats wal_stats = rig.db->wal()->group_commit_stats();
  EXPECT_GE(wal_stats.failed_flushes, 1u);
  EXPECT_EQ(wal_stats.max_batch, kWriters);

  // The sync failure was transient: the same rows commit on retry.
  auto retry = CommitConcurrently(rig, kWriters, 3000);
  for (size_t i = 0; i < kWriters; ++i) {
    EXPECT_TRUE(retry[i].status.ok()) << retry[i].status.ToString();
    EXPECT_EQ(TableValues(rig.tables[i]), std::set<uint64_t>{3000 + i});
  }

  // End to end: reopen over the surviving log. The failed batch's commit
  // records did reach storage (only their sync failed) and were followed by
  // durable CLR + abort records from the rollbacks; recovery must net them
  // out to the same state the live engine converged to — one retry row per
  // table.
  rig.db.reset();
  rig.plan->Disarm();
  DatabaseOptions reopen;
  reopen.buffer_pool_pages = 64;
  reopen.disk = rig.disk;
  reopen.log_storage = rig.log;
  auto db2 = Database::Open(std::move(reopen));
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();
  ASSERT_TRUE((*db2)->CheckIntegrity().ok());
  for (size_t i = 0; i < kWriters; ++i) {
    auto table = (*db2)->GetTable("t" + std::to_string(i));
    ASSERT_TRUE(table.ok());
    EXPECT_EQ(TableValues(*table), std::set<uint64_t>{3000 + i})
        << "table t" << i << " after recovery";
  }
}

// Same fan-out contract in leader mode, where one of the committers itself
// runs the shared flush: the leader and every follower get the error.
TEST(GroupCommitTest, LeaderModeFansOutFlushError) {
  const uint64_t seed = EnvU64("TENDAX_TORTURE_SEED", 7);
  const size_t kWriters = 4;
  Rig rig = OpenRig(CommitFlushMode::kLeader, kWriters, seed,
                    /*early_lock_release=*/false);
  ASSERT_NE(rig.db, nullptr);

  rig.sched->PauseAtFlush(rig.sched->flushes_finished() + 1);
  std::vector<CommitAttempt> attempts;
  std::thread runner(
      [&] { attempts = CommitConcurrently(rig, kWriters, 4000); });
  ASSERT_TRUE(rig.sched->WaitUntilPaused()) << rig.sched->Describe();
  ASSERT_TRUE(rig.sched->WaitForWaiters(kWriters)) << rig.sched->Describe();
  rig.plan->FailNthSync(rig.plan->syncs_seen() + 1);
  rig.sched->ReleaseFlush();
  runner.join();

  for (size_t i = 0; i < kWriters; ++i) {
    EXPECT_TRUE(attempts[i].status.IsIOError())
        << "writer " << i << " got: " << attempts[i].status.ToString();
  }
  EXPECT_EQ(rig.db->txns()->ActiveCount(), 0u);
  EXPECT_EQ(rig.db->locks()->LockedResourceCount(), 0u);
}

// Under early lock release (the default for the batching modes) a failed
// shared flush cannot roll its batch back in place — other transactions may
// already have built on the released writes. The contract is fail-stop:
// every waiter gets the error, no locks or transaction slots leak, the Wal
// poisons itself so every later commit fails with the same error, and a
// reopen recovers exactly what the surviving log says.
TEST(GroupCommitTest, EarlyReleaseFlushErrorFailsStop) {
  const uint64_t seed = EnvU64("TENDAX_TORTURE_SEED", 7);
  const size_t kWriters = 8;
  Rig rig = OpenRig(CommitFlushMode::kFlusherThread, kWriters, seed);
  ASSERT_NE(rig.db, nullptr);

  const TxnManagerStats txn_before = rig.db->txns()->stats();
  rig.sched->PauseAtFlush(rig.sched->flushes_finished() + 1);

  std::vector<CommitAttempt> attempts;
  std::thread runner(
      [&] { attempts = CommitConcurrently(rig, kWriters, 7000); });
  ASSERT_TRUE(rig.sched->WaitUntilPaused()) << rig.sched->Describe();
  ASSERT_TRUE(rig.sched->WaitForWaiters(kWriters)) << rig.sched->Describe();
  rig.plan->FailNthSync(rig.plan->syncs_seen() + 1);
  rig.sched->ReleaseFlush();
  runner.join();

  for (size_t i = 0; i < kWriters; ++i) {
    EXPECT_TRUE(attempts[i].status.IsIOError())
        << "writer " << i << " got: " << attempts[i].status.ToString();
  }
  const TxnManagerStats txn_after = rig.db->txns()->stats();
  EXPECT_EQ(txn_after.begun, txn_before.begun + kWriters);
  EXPECT_EQ(txn_after.aborted, txn_before.aborted + kWriters);
  EXPECT_EQ(txn_after.committed, txn_before.committed);
  EXPECT_EQ(rig.db->txns()->ActiveCount(), 0u);
  EXPECT_EQ(rig.db->locks()->LockedResourceCount(), 0u);
  EXPECT_TRUE(rig.db->wal()->poison_status().IsIOError());

  // Fail-stopped: a later commit attempt must fail fast with the same
  // error, even though the injected fault was one-shot.
  rig.plan->Disarm();
  auto late = CommitConcurrently(rig, 1, 8000);
  EXPECT_TRUE(late[0].status.IsIOError()) << late[0].status.ToString();

  // Reopen over the surviving log. The failed batch's commit records did
  // reach storage (only their sync failed, and the in-memory backend keeps
  // appended bytes), so recovery replays them as committed — "commit
  // returned an error" under fail-stop means durability-unknown, and the
  // log is the arbiter. Exactness: recovered contents match the decoded
  // commit set, whatever it is.
  std::vector<uint64_t> txn_ids;
  for (const auto& a : attempts) txn_ids.push_back(a.txn_id);
  rig.db.reset();
  std::set<uint64_t> durable = DurableCommits(rig.log);
  DatabaseOptions reopen;
  reopen.buffer_pool_pages = 64;
  reopen.disk = rig.disk;
  reopen.log_storage = rig.log;
  auto db2 = Database::Open(std::move(reopen));
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();
  ASSERT_TRUE((*db2)->CheckIntegrity().ok());
  for (size_t i = 0; i < kWriters; ++i) {
    auto table = (*db2)->GetTable("t" + std::to_string(i));
    ASSERT_TRUE(table.ok());
    std::set<uint64_t> expected;
    if (durable.count(txn_ids[i]) != 0) expected.insert(7000 + i);
    EXPECT_EQ(TableValues(*table), expected) << "table t" << i;
  }
}

// "Commit waiting when the crash fires": K commits are parked behind the
// gated flush when the machine dies. None of their bytes reached storage,
// so recovery must come back without any of them — and with everything
// durable before the crash intact.
TEST(GroupCommitTest, CrashWhileCommitsWaitingRecoversCleanly) {
  const uint64_t seed = EnvU64("TENDAX_TORTURE_SEED", 7);
  const size_t kWriters = 4;
  Rig rig = OpenRig(CommitFlushMode::kFlusherThread, kWriters, seed);
  ASSERT_NE(rig.db, nullptr);

  rig.sched->PauseAtFlush(rig.sched->flushes_finished() + 1);
  std::vector<CommitAttempt> attempts;
  std::thread runner(
      [&] { attempts = CommitConcurrently(rig, kWriters, 5000); });
  ASSERT_TRUE(rig.sched->WaitUntilPaused()) << rig.sched->Describe();
  ASSERT_TRUE(rig.sched->WaitForWaiters(kWriters)) << rig.sched->Describe();
  // Power cut: every I/O from the gated flush on fails.
  rig.plan->CrashAtOp(rig.plan->ops_seen() + 1);
  rig.sched->ReleaseFlush();
  runner.join();

  for (size_t i = 0; i < kWriters; ++i) {
    EXPECT_FALSE(attempts[i].status.ok()) << "writer " << i;
  }
  EXPECT_EQ(rig.db->txns()->ActiveCount(), 0u);
  std::string context = rig.plan->Describe() + " " + rig.sched->Describe();

  std::vector<uint64_t> txn_ids;
  for (const auto& a : attempts) txn_ids.push_back(a.txn_id);
  rig.db.reset();  // process dies; buffered bytes are gone
  rig.plan->Disarm();

  std::set<uint64_t> durable = DurableCommits(rig.log);
  for (uint64_t id : txn_ids) {
    EXPECT_EQ(durable.count(id), 0u)
        << context << ": txn " << id << " was parked at the crash but has a "
        << "durable commit record";
  }
  DatabaseOptions reopen;
  reopen.buffer_pool_pages = 64;
  reopen.disk = rig.disk;
  reopen.log_storage = rig.log;
  auto db2 = Database::Open(std::move(reopen));
  ASSERT_TRUE(db2.ok()) << context << ": " << db2.status().ToString();
  ASSERT_TRUE((*db2)->CheckIntegrity().ok()) << context;
  for (size_t i = 0; i < kWriters; ++i) {
    auto table = (*db2)->GetTable("t" + std::to_string(i));
    ASSERT_TRUE(table.ok()) << context;
    EXPECT_EQ(TableValues(*table), std::set<uint64_t>{})
        << context << " table t" << i;
  }
}

// "Batch torn mid-append": the coalesced append persists only a prefix of
// the batch. Recovery must come back with exactly the transactions whose
// commit record survived in that prefix — a prefix of the commit-LSN
// order, never a subset with holes.
TEST(GroupCommitTest, TornBatchAppendRecoversLsnPrefix) {
  const uint64_t seed = EnvU64("TENDAX_TORTURE_SEED", 7);
  const size_t kWriters = 4;
  size_t round = 0;
  for (size_t keep : {size_t{0}, size_t{9}, size_t{40}, size_t{120},
                      FaultPlan::kAutoTear}) {
    Rig rig =
        OpenRig(CommitFlushMode::kFlusherThread, kWriters, seed + round++);
    ASSERT_NE(rig.db, nullptr);

    rig.sched->PauseAtFlush(rig.sched->flushes_finished() + 1);
    std::vector<CommitAttempt> attempts;
    std::thread runner(
        [&] { attempts = CommitConcurrently(rig, kWriters, 6000); });
    ASSERT_TRUE(rig.sched->WaitUntilPaused()) << rig.sched->Describe();
    ASSERT_TRUE(rig.sched->WaitForWaiters(kWriters)) << rig.sched->Describe();
    // The gated flush's Append is the next log append; tear it mid-batch.
    rig.plan->TearNthLogAppend(rig.plan->appends_seen() + 1, keep);
    rig.sched->ReleaseFlush();
    runner.join();

    for (size_t i = 0; i < kWriters; ++i) {
      EXPECT_FALSE(attempts[i].status.ok()) << "writer " << i;
    }
    EXPECT_TRUE(rig.plan->crashed());
    EXPECT_EQ(rig.db->txns()->ActiveCount(), 0u);
    std::string context = rig.plan->Describe() + " " + rig.sched->Describe();

    std::vector<uint64_t> txn_ids;
    for (const auto& a : attempts) txn_ids.push_back(a.txn_id);
    rig.db.reset();
    rig.plan->Disarm();

    // DurableCommits decodes the surviving prefix, so `durable` is by
    // construction hole-free in LSN order; the recovered tables must match
    // it exactly.
    std::set<uint64_t> durable = DurableCommits(rig.log);
    DatabaseOptions reopen;
    reopen.buffer_pool_pages = 64;
    reopen.disk = rig.disk;
    reopen.log_storage = rig.log;
    auto db2 = Database::Open(std::move(reopen));
    ASSERT_TRUE(db2.ok()) << context << ": " << db2.status().ToString();
    ASSERT_TRUE((*db2)->CheckIntegrity().ok()) << context;
    for (size_t i = 0; i < kWriters; ++i) {
      auto table = (*db2)->GetTable("t" + std::to_string(i));
      ASSERT_TRUE(table.ok()) << context;
      std::set<uint64_t> expected;
      if (durable.count(txn_ids[i]) != 0) expected.insert(6000 + i);
      EXPECT_EQ(TableValues(*table), expected) << context << " table t" << i;
    }
    if (::testing::Test::HasFailure()) return;
  }
}

// Durability-ordering property sweep: crash a multi-writer group-commit
// workload at strided I/O points. After every crash, the recovered state
// must contain exactly the transactions whose commit record survives in
// the log prefix — never a commit reported OK missing, never a torn-off
// commit present.
TEST(GroupCommitTest, DurabilityPrefixHoldsAtEveryCrashPoint) {
  const uint64_t seed = EnvU64("TENDAX_TORTURE_SEED", 7);
  const uint64_t points =
      std::max<uint64_t>(10, EnvU64("TENDAX_TORTURE_POINTS", 120) / 4);
  const size_t kWriters = 3;
  const size_t kCommitsPerWriter = 4;

  // The sweep workload: kWriters threads, kCommitsPerWriter transactions
  // each, all into the thread's own table. Threads keep going after a
  // failure — the engine must stay usable until the process "dies".
  auto run_workload = [&](Rig& rig,
                          std::vector<std::vector<CommitAttempt>>& outcomes) {
    outcomes.assign(kWriters,
                    std::vector<CommitAttempt>(kCommitsPerWriter));
    std::vector<std::thread> threads;
    for (size_t i = 0; i < kWriters; ++i) {
      threads.emplace_back([&, i] {
        TxnManager* txns = rig.db->txns();
        for (size_t j = 0; j < kCommitsPerWriter; ++j) {
          Transaction* txn = txns->Begin(UserId(100 + i));
          outcomes[i][j].txn_id = txn->id().value;
          Status st =
              rig.tables[i]
                  ->Insert(txn, Record({uint64_t(1000 + i * 100 + j)}))
                  .status();
          if (st.ok()) {
            outcomes[i][j].status = txns->Commit(txn);
          } else {
            // Keep the insert failure; the cleanup abort's status is noise.
            (void)txns->Abort(txn);
            outcomes[i][j].status = st;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  };

  // Profile a fault-free run to learn the workload's op space (measured
  // relative to the end of table setup, which is identical in every run).
  uint64_t workload_ops = 0;
  {
    Rig rig = OpenRig(CommitFlushMode::kFlusherThread, kWriters, seed);
    ASSERT_NE(rig.db, nullptr);
    const uint64_t base = rig.plan->ops_seen();
    std::vector<std::vector<CommitAttempt>> outcomes;
    run_workload(rig, outcomes);
    for (const auto& per_thread : outcomes) {
      for (const auto& a : per_thread) {
        ASSERT_TRUE(a.status.ok()) << a.status.ToString();
      }
    }
    rig.db.reset();  // close I/O (dirty page writeback) is sweep space too
    workload_ops = rig.plan->ops_seen() - base;
  }
  ASSERT_GT(workload_ops, 0u);

  const uint64_t stride = std::max<uint64_t>(1, workload_ops / points);
  for (uint64_t k = 1; k <= workload_ops; k += stride) {
    Rig rig = OpenRig(CommitFlushMode::kFlusherThread, kWriters, seed + k);
    ASSERT_NE(rig.db, nullptr);
    // Crash k ops into the workload proper (setup is already behind us).
    rig.plan->CrashAtOp(rig.plan->ops_seen() + k);

    std::vector<std::vector<CommitAttempt>> outcomes;
    run_workload(rig, outcomes);
    EXPECT_EQ(rig.db->txns()->ActiveCount(), 0u);
    std::string context = "crash@+" + std::to_string(k) + " " +
                          rig.plan->Describe() +
                          " seed=" + std::to_string(seed + k);
    rig.db.reset();
    rig.plan->Disarm();

    std::set<uint64_t> durable = DurableCommits(rig.log);
    DatabaseOptions reopen;
    reopen.buffer_pool_pages = 64;
    reopen.disk = rig.disk;
    reopen.log_storage = rig.log;
    auto db2 = Database::Open(std::move(reopen));
    ASSERT_TRUE(db2.ok()) << context << ": " << db2.status().ToString();
    ASSERT_TRUE((*db2)->CheckIntegrity().ok()) << context;
    for (size_t i = 0; i < kWriters; ++i) {
      auto table = (*db2)->GetTable("t" + std::to_string(i));
      ASSERT_TRUE(table.ok()) << context;
      std::set<uint64_t> values = TableValues(*table);
      for (size_t j = 0; j < kCommitsPerWriter; ++j) {
        const uint64_t value = 1000 + i * 100 + j;
        const bool present = values.count(value) != 0;
        const bool in_log = durable.count(outcomes[i][j].txn_id) != 0;
        // Durability: a commit reported OK must survive. (The converse is
        // allowed — a commit whose fsync died mid-call may still be
        // durable; the log decides.)
        if (outcomes[i][j].status.ok()) {
          EXPECT_TRUE(present)
              << context << ": committed value " << value << " lost";
        }
        // Exactness: recovered contents == the durable commit prefix.
        EXPECT_EQ(present, in_log)
            << context << ": value " << value << " present=" << present
            << " but commit record durable=" << in_log;
      }
    }
    if (::testing::Test::HasFailure()) return;
  }
}

}  // namespace
}  // namespace tendax

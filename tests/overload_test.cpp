// Overload-protection coverage: priority classification, the bounded
// admission queue (block / displace / shed, retry-after hints), degradation
// under dirty-page pressure, deadline propagation (dispatch rejection, lock
// waits, long scans), the client-side circuit breaker, and the seeded
// 64-client overload storm from the acceptance criteria.
//
// Scale knobs (env):
//   TENDAX_OVERLOAD_EDITORS  storm editor threads (default 60; +4 keepers)
//   TENDAX_OVERLOAD_OPS      inserts per editor in the storm (default 6)
//   TENDAX_OVERLOAD_SEED     storm seed (default 1)

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "collab/admission.h"
#include "collab/retrying_client.h"
#include "collab/wire.h"
#include "server_fixture.h"
#include "testing/flaky_transport.h"
#include "testing/schedule_controller.h"
#include "txn/lock_manager.h"
#include "util/deadline.h"

namespace tendax {
namespace {

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return def;
  return std::strtoull(value, nullptr, 10);
}

void SpinFor(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

// --- priority classification ---

TEST(PriorityClassTest, ClassifyCommandMapsEveryKind) {
  for (uint8_t k = 1; k <= kCommandKindMax; ++k) {
    const auto kind = static_cast<CommandKind>(k);
    const PriorityClass cls = ClassifyCommand(kind);
    if (kind == CommandKind::kHeartbeat || kind == CommandKind::kResume) {
      EXPECT_EQ(cls, PriorityClass::kCritical) << CommandKindName(kind);
    } else if (kind == CommandKind::kStats) {
      EXPECT_EQ(cls, PriorityClass::kBackground) << CommandKindName(kind);
    } else {
      EXPECT_EQ(cls, PriorityClass::kNormal) << CommandKindName(kind);
    }
  }
  EXPECT_STREQ(PriorityClassName(PriorityClass::kCritical), "critical");
  EXPECT_STREQ(PriorityClassName(PriorityClass::kNormal), "normal");
  EXPECT_STREQ(PriorityClassName(PriorityClass::kBackground), "background");
}

// --- backoff overflow satellite ---

TEST(BackoffWindowTest, SaturatesInsteadOfWrapping) {
  EXPECT_EQ(BackoffWindowMicros(200, 0, UINT64_MAX), 200u);
  EXPECT_EQ(BackoffWindowMicros(200, 1, UINT64_MAX), 400u);
  EXPECT_EQ(BackoffWindowMicros(200, 4, UINT64_MAX), 3200u);
  EXPECT_EQ(BackoffWindowMicros(200, 3, 1000), 1000u);  // capped
  // The overflow regression: base * 2^attempt for attempt >= 64 used to
  // wrap to 0 (or worse, a tiny value). It must clamp to the cap.
  EXPECT_EQ(BackoffWindowMicros(200, 64, 50'000), 50'000u);
  EXPECT_EQ(BackoffWindowMicros(200, 100, 50'000), 50'000u);
  EXPECT_EQ(BackoffWindowMicros(1, 1000, 50'000), 50'000u);
  EXPECT_EQ(BackoffWindowMicros(1ULL << 62, 5, UINT64_MAX), UINT64_MAX);
  EXPECT_EQ(BackoffWindowMicros(0, 64, 50'000), 0u);
  EXPECT_EQ(BackoffWindowMicros(200, -3, 50'000), 200u);
}

// --- ambient deadline plumbing ---

TEST(RequestDeadlineTest, ScopedArmAndRestore) {
  EXPECT_FALSE(RequestDeadline::Armed());
  EXPECT_FALSE(RequestDeadline::Expired());
  {
    ScopedRequestDeadline outer(100'000);
    EXPECT_TRUE(RequestDeadline::Armed());
    EXPECT_FALSE(RequestDeadline::Expired());
    EXPECT_GT(RequestDeadline::RemainingMicros(), 0u);
    const auto outer_deadline = RequestDeadline::Deadline();
    {
      // An inner guard can only tighten: a looser inner budget keeps the
      // outer (earlier) deadline.
      ScopedRequestDeadline inner(10'000'000);
      EXPECT_EQ(RequestDeadline::Deadline(), outer_deadline);
      ScopedRequestDeadline tighter(1'000);
      EXPECT_LT(RequestDeadline::Deadline(), outer_deadline);
    }
    EXPECT_EQ(RequestDeadline::Deadline(), outer_deadline);
  }
  EXPECT_FALSE(RequestDeadline::Armed());
  {
    ScopedRequestDeadline noop(0);  // zero budget = no deadline
    EXPECT_FALSE(RequestDeadline::Armed());
  }
  {
    ScopedRequestDeadline tiny(1);
    SpinFor(std::chrono::microseconds(100));
    EXPECT_TRUE(RequestDeadline::Expired());
    EXPECT_EQ(RequestDeadline::RemainingMicros(), 0u);
  }
}

// --- admission controller unit coverage ---

TEST(AdmissionControllerTest, DisabledByDefaultAdmitsEverything) {
  AdmissionController gate(AdmissionOptions{}, nullptr);
  EXPECT_FALSE(gate.enabled());
  for (int i = 0; i < 100; ++i) {
    auto t = gate.Admit(PriorityClass::kBackground);
    EXPECT_TRUE(t.status.ok());
    gate.Release();
  }
  EXPECT_TRUE(gate.AdmitNewSession().ok());
}

TEST(AdmissionControllerTest, BoundedInflightBlocksUntilRelease) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.queue_depth = 4;
  AdmissionController gate(options, nullptr);

  auto first = gate.Admit(PriorityClass::kNormal);
  ASSERT_TRUE(first.status.ok());

  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    auto t = gate.Admit(PriorityClass::kNormal);
    EXPECT_TRUE(t.status.ok());
    granted.store(true);
    gate.Release();
  });
  while (gate.Stats().queued == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(granted.load());
  gate.Release();
  waiter.join();
  EXPECT_TRUE(granted.load());

  const auto stats = gate.Stats();
  EXPECT_EQ(stats.admitted[static_cast<size_t>(PriorityClass::kNormal)], 2u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST(AdmissionControllerTest, FullQueueShedsArrivalOfLowestClass) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.queue_depth = 1;
  options.retry_after_base_micros = 500;
  AdmissionController gate(options, nullptr);

  auto slot = gate.Admit(PriorityClass::kNormal);
  ASSERT_TRUE(slot.status.ok());

  std::thread queued([&] {
    auto t = gate.Admit(PriorityClass::kNormal);
    EXPECT_TRUE(t.status.ok());
    gate.Release();
  });
  while (gate.Stats().queued == 0) {
    std::this_thread::yield();
  }

  // Queue full of normals: an equal-class arrival is shed, typed, with a
  // nonzero retry-after hint...
  auto same = gate.Admit(PriorityClass::kNormal);
  EXPECT_TRUE(same.status.IsUnavailable()) << same.status.ToString();
  EXPECT_GT(same.retry_after_micros, 0u);
  // ...and a lower-class arrival likewise.
  auto lower = gate.Admit(PriorityClass::kBackground);
  EXPECT_TRUE(lower.status.IsUnavailable());
  EXPECT_GT(lower.retry_after_micros, 0u);

  gate.Release();
  queued.join();

  const auto stats = gate.Stats();
  EXPECT_EQ(stats.shed[static_cast<size_t>(PriorityClass::kNormal)], 1u);
  EXPECT_EQ(stats.shed[static_cast<size_t>(PriorityClass::kBackground)], 1u);
  EXPECT_EQ(stats.shed[static_cast<size_t>(PriorityClass::kCritical)], 0u);
}

TEST(AdmissionControllerTest, HigherClassArrivalDisplacesLowestWaiter) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.queue_depth = 1;
  AdmissionController gate(options, nullptr);

  auto slot = gate.Admit(PriorityClass::kNormal);
  ASSERT_TRUE(slot.status.ok());

  AdmissionController::Ticket background_ticket;
  std::thread background([&] {
    background_ticket = gate.Admit(PriorityClass::kBackground);
    if (background_ticket.status.ok()) gate.Release();
  });
  while (gate.Stats().queued == 0) {
    std::this_thread::yield();
  }

  AdmissionController::Ticket critical_ticket;
  std::thread critical([&] {
    critical_ticket = gate.Admit(PriorityClass::kCritical);
    if (critical_ticket.status.ok()) gate.Release();
  });
  // The critical arrival displaces the queued background waiter, which
  // comes back typed kUnavailable with a hint.
  background.join();
  EXPECT_TRUE(background_ticket.status.IsUnavailable())
      << background_ticket.status.ToString();
  EXPECT_GT(background_ticket.retry_after_micros, 0u);

  gate.Release();
  critical.join();
  EXPECT_TRUE(critical_ticket.status.ok())
      << critical_ticket.status.ToString();

  const auto stats = gate.Stats();
  EXPECT_EQ(stats.shed[static_cast<size_t>(PriorityClass::kBackground)], 1u);
  EXPECT_EQ(stats.shed[static_cast<size_t>(PriorityClass::kCritical)], 0u);
  EXPECT_EQ(stats.admitted[static_cast<size_t>(PriorityClass::kCritical)],
            1u);
}

TEST(AdmissionControllerTest, ReleaseGrantsHighestPriorityWaiterFirst) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.queue_depth = 4;
  AdmissionController gate(options, nullptr);

  auto slot = gate.Admit(PriorityClass::kNormal);
  ASSERT_TRUE(slot.status.ok());

  std::atomic<int> grant_counter{0};
  int normal_rank = 0, critical_rank = 0;
  std::thread normal([&] {
    auto t = gate.Admit(PriorityClass::kNormal);
    EXPECT_TRUE(t.status.ok());
    normal_rank = ++grant_counter;
    gate.Release();
  });
  while (gate.Stats().queued < 1) {
    std::this_thread::yield();
  }
  std::thread critical([&] {
    auto t = gate.Admit(PriorityClass::kCritical);
    EXPECT_TRUE(t.status.ok());
    critical_rank = ++grant_counter;
    gate.Release();
  });
  while (gate.Stats().queued < 2) {
    std::this_thread::yield();
  }

  gate.Release();
  normal.join();
  critical.join();
  // The critical waiter arrived second but is granted first.
  EXPECT_EQ(critical_rank, 1);
  EXPECT_EQ(normal_rank, 2);
}

TEST(AdmissionControllerTest, QueueWaitCapSheds) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.queue_depth = 2;
  options.max_queue_wait_micros = 20'000;
  AdmissionController gate(options, nullptr);

  auto slot = gate.Admit(PriorityClass::kNormal);
  ASSERT_TRUE(slot.status.ok());

  const auto t0 = std::chrono::steady_clock::now();
  auto waited = gate.Admit(PriorityClass::kNormal);  // queues, then times out
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_TRUE(waited.status.IsUnavailable()) << waited.status.ToString();
  EXPECT_GT(waited.retry_after_micros, 0u);
  EXPECT_GE(elapsed.count(), 20'000);
  gate.Release();

  const auto stats = gate.Stats();
  EXPECT_EQ(stats.shed[static_cast<size_t>(PriorityClass::kNormal)], 1u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST(AdmissionControllerTest, RequestDeadlineBoundsQueueWait) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.queue_depth = 2;
  options.max_queue_wait_micros = 10'000'000;  // the deadline must win
  AdmissionController gate(options, nullptr);

  auto slot = gate.Admit(PriorityClass::kNormal);
  ASSERT_TRUE(slot.status.ok());

  ScopedRequestDeadline deadline(20'000);
  const auto t0 = std::chrono::steady_clock::now();
  auto waited = gate.Admit(PriorityClass::kNormal);
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_TRUE(waited.status.IsDeadlineExceeded())
      << waited.status.ToString();
  EXPECT_LT(elapsed.count(), 5'000'000);
  gate.Release();

  const auto stats = gate.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.shed[static_cast<size_t>(PriorityClass::kNormal)], 0u);
}

TEST(AdmissionControllerTest, RetryAfterScalesWithBacklogAndClamps) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.queue_depth = 0;  // every overflow sheds immediately
  options.retry_after_base_micros = 1'000;
  options.retry_after_max_micros = 2'500;
  AdmissionController gate(options, nullptr);

  auto slot = gate.Admit(PriorityClass::kNormal);
  ASSERT_TRUE(slot.status.ok());
  auto shed = gate.Admit(PriorityClass::kNormal);
  EXPECT_TRUE(shed.status.IsUnavailable());
  // Empty queue: hint = base * (1 + 0), below the clamp.
  EXPECT_EQ(shed.retry_after_micros, 1'000u);
  gate.Release();

  // With a deeper backlog the hint grows but stays clamped.
  options.queue_depth = 3;
  AdmissionController gate2(options, nullptr);
  ASSERT_TRUE(gate2.Admit(PriorityClass::kNormal).status.ok());
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      auto t = gate2.Admit(PriorityClass::kNormal);
      if (t.status.ok()) gate2.Release();
    });
  }
  while (gate2.Stats().queued < 3) {
    std::this_thread::yield();
  }
  auto shed2 = gate2.Admit(PriorityClass::kNormal);
  EXPECT_TRUE(shed2.status.IsUnavailable());
  EXPECT_EQ(shed2.retry_after_micros, 2'500u);  // 1000*(1+3) clamped
  gate2.Release();
  for (auto& t : waiters) t.join();
}

TEST(AdmissionControllerTest, DegradedModeShedsBackgroundAndNewSessions) {
  AdmissionOptions options;
  options.max_inflight = 4;
  AdmissionController gate(options, nullptr);
  std::atomic<bool> pressure{false};
  gate.SetPressureProbe([&] { return pressure.load(); });

  auto bg = gate.Admit(PriorityClass::kBackground);
  EXPECT_TRUE(bg.status.ok());
  gate.Release();
  EXPECT_TRUE(gate.AdmitNewSession().ok());

  pressure.store(true);
  auto shed = gate.Admit(PriorityClass::kBackground);
  EXPECT_TRUE(shed.status.IsUnavailable()) << shed.status.ToString();
  EXPECT_GT(shed.retry_after_micros, 0u);
  // Normal and critical traffic still flows while degraded.
  auto normal = gate.Admit(PriorityClass::kNormal);
  EXPECT_TRUE(normal.status.ok());
  gate.Release();
  auto critical = gate.Admit(PriorityClass::kCritical);
  EXPECT_TRUE(critical.status.ok());
  gate.Release();
  // New sessions are refused before existing ones are harmed.
  auto refused = gate.AdmitNewSession();
  EXPECT_TRUE(refused.IsUnavailable());

  pressure.store(false);
  EXPECT_TRUE(gate.Admit(PriorityClass::kBackground).status.ok());
  gate.Release();
  EXPECT_TRUE(gate.AdmitNewSession().ok());

  const auto stats = gate.Stats();
  EXPECT_EQ(stats.shed[static_cast<size_t>(PriorityClass::kBackground)], 1u);
  EXPECT_EQ(stats.sessions_refused, 1u);
}

// --- deadline propagation into the engine ---

TEST(LockManagerDeadlineTest, RequestDeadlineCapsLockWait) {
  LockManager lm(std::chrono::milliseconds(2000));
  const uint64_t resource = MakeResource(ResourceKind::kDocument, 7);

  std::atomic<bool> locked{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    ASSERT_TRUE(lm.Acquire(TxnId(1), resource, LockMode::kX).ok());
    locked.store(true);
    while (!release.load()) {
      std::this_thread::yield();
    }
    lm.ReleaseAll(TxnId(1));
  });
  while (!locked.load()) {
    std::this_thread::yield();
  }

  // Without a deadline this wait would block the full 2s lock_timeout and
  // return Conflict. With a 30ms request budget it must come back early
  // and typed.
  const auto t0 = std::chrono::steady_clock::now();
  Status st;
  {
    ScopedRequestDeadline deadline(30'000);
    st = lm.Acquire(TxnId(2), resource, LockMode::kX);
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_GE(elapsed.count(), 25);
  EXPECT_LT(elapsed.count(), 1500);  // far below lock_timeout
  EXPECT_EQ(lm.stats().deadline_exceeded, 1u);
  EXPECT_EQ(lm.stats().timeouts, 0u);

  // Without an ambient deadline the classic timeout path is untouched.
  LockManager fast(std::chrono::milliseconds(20));
  ASSERT_TRUE(fast.Acquire(TxnId(1), resource, LockMode::kX).ok());
  std::thread blocked([&] {
    Status conflict = fast.Acquire(TxnId(2), resource, LockMode::kX);
    EXPECT_TRUE(conflict.IsConflict()) << conflict.ToString();
  });
  blocked.join();
  EXPECT_EQ(fast.stats().timeouts, 1u);
  EXPECT_EQ(fast.stats().deadline_exceeded, 0u);
  fast.ReleaseAll(TxnId(1));

  release.store(true);
  holder.join();
}

class OverloadServerTest : public ServerTest {};

TEST_F(OverloadServerTest, ExpiredDeadlineRejectedAtDispatchWithoutWork) {
  DocumentId doc = MakeDoc(alice_, "deadline", "seed");
  auto editor = server_->AttachEditor(alice_, "deadline-editor");
  ASSERT_TRUE(editor.ok());
  RemoteEditorEndpoint endpoint(editor->get());

  EditCommand cmd;
  cmd.kind = CommandKind::kType;
  cmd.doc = doc;
  cmd.pos = 0;
  cmd.text = "X";
  cmd.request_id = 1234;
  cmd.deadline_micros = 1;  // hopelessly in the past of the manual clock
  auto response = DecodeResponse(endpoint.Handle(EncodeCommand(cmd)));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(endpoint.deadline_rejected(), 1u);

  // The command did not execute and was not cached: the document is
  // untouched and a re-send with a future deadline executes normally.
  auto text = server_->text()->Text(doc);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "seed");

  cmd.deadline_micros = clock_->NowMicros() + 60'000'000;
  auto retry = DecodeResponse(endpoint.Handle(EncodeCommand(cmd)));
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->code, StatusCode::kOk);
  text = server_->text()->Text(doc);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "Xseed");
  EXPECT_EQ(endpoint.deadline_rejected(), 1u);
}

TEST_F(OverloadServerTest, SearchScanHonorsRequestDeadline) {
  MakeDoc(alice_, "scan-a", "alpha beta gamma");
  MakeDoc(alice_, "scan-b", "alpha delta");
  auto fresh = server_->search()->Search("alpha");
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh->size(), 2u);

  ScopedRequestDeadline deadline(1);
  SpinFor(std::chrono::microseconds(200));
  auto expired = server_->search()->Search("alpha");
  EXPECT_TRUE(expired.status().IsDeadlineExceeded())
      << expired.status().ToString();
}

TEST(DegradedServerTest, RefusesNewSessionsOnly) {
  TendaxOptions options;
  options.admission.max_inflight = 16;  // gate enabled, far from saturation
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto user = (*server)->accounts()->CreateUser("pressured");
  ASSERT_TRUE(user.ok());

  std::atomic<bool> pressure{false};
  // Stand-in for the dirty-page probe wired by TendaxServer::Open; the
  // buffer-pool-backed probe itself uses the same SetPressureProbe path.
  (*server)->admission()->SetPressureProbe([&] { return pressure.load(); });

  auto before = (*server)->AttachEditor(*user, "before-pressure");
  ASSERT_TRUE(before.ok());

  pressure.store(true);
  auto refused = (*server)->AttachEditor(*user, "during-pressure");
  EXPECT_TRUE(refused.status().IsUnavailable())
      << refused.status().ToString();
  EXPECT_EQ((*server)->admission()->Stats().sessions_refused, 1u);

  // The existing session keeps working at full rights while degraded.
  auto doc = (*before)->CreateDocument("degraded-doc");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE((*before)->Open(*doc).ok());
  EXPECT_TRUE((*before)->Type(*doc, 0, "still-works").ok());
  EXPECT_TRUE((*before)->Heartbeat().ok());

  pressure.store(false);
  auto after = (*server)->AttachEditor(*user, "after-pressure");
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

// --- client side: retry-after honoring and the circuit breaker ---

/// A transport whose server sheds the first `shed_remaining` requests with
/// kUnavailable (+ optional hint), then answers OK.
class CannedShedTransport : public WireTransport {
 public:
  Result<std::string> RoundTrip(const std::string& request) override {
    auto body = OpenFrame(request);
    if (!body.ok()) return body.status();
    ++calls;
    WireResponse response;
    if (shed_remaining > 0) {
      --shed_remaining;
      response.code = StatusCode::kUnavailable;
      response.message = "canned shed";
      response.retry_after_micros = hint_micros;
    }
    return SealFrame(EncodeResponse(response));
  }

  int shed_remaining = 0;
  uint64_t hint_micros = 0;
  int calls = 0;
};

EditCommand Gesture(CommandKind kind = CommandKind::kGetText) {
  EditCommand cmd;
  cmd.kind = kind;
  cmd.doc = DocumentId(1);
  return cmd;
}

TEST(RetryingClientOverloadTest, RetryAfterHintOverridesBackoff) {
  CannedShedTransport transport;
  transport.shed_remaining = 3;
  transport.hint_micros = 7'777;

  std::vector<uint64_t> waits;
  RetryOptions options;
  options.seed = 5;
  options.sleep_fn = [&](uint64_t micros) { waits.push_back(micros); };
  RetryingClient client(&transport, options);

  auto response = client.Call(Gesture());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kOk);
  EXPECT_EQ(transport.calls, 4);
  ASSERT_EQ(waits.size(), 3u);
  for (uint64_t w : waits) EXPECT_EQ(w, 7'777u);  // hint, not jitter
  EXPECT_EQ(client.stats().unavailable, 3u);
  EXPECT_EQ(client.stats().retry_after_honored, 3u);
  EXPECT_EQ(client.stats().unavailable_without_hint, 0u);
}

TEST(RetryingClientOverloadTest, HintlessShedFallsBackToJitteredBackoff) {
  CannedShedTransport transport;
  transport.shed_remaining = 2;
  transport.hint_micros = 0;

  std::vector<uint64_t> waits;
  RetryOptions options;
  options.seed = 5;
  options.base_backoff_micros = 200;
  options.max_backoff_micros = 50'000;
  options.sleep_fn = [&](uint64_t micros) { waits.push_back(micros); };
  RetryingClient client(&transport, options);

  auto response = client.Call(Gesture());
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(waits.size(), 2u);
  EXPECT_GE(waits[0], 1u);
  EXPECT_LE(waits[0], 200u);  // jittered slice of the base window
  EXPECT_LE(waits[1], 400u);
  EXPECT_EQ(client.stats().unavailable_without_hint, 2u);
  EXPECT_EQ(client.stats().retry_after_honored, 0u);
}

TEST(RetryingClientOverloadTest, ShedResponsesStopAfterMaxAttempts) {
  CannedShedTransport transport;
  transport.shed_remaining = 1'000'000;
  transport.hint_micros = 5;
  RetryOptions options;
  options.max_attempts = 4;
  RetryingClient client(&transport, options);

  auto response = client.Call(Gesture());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kUnavailable);
  EXPECT_EQ(transport.calls, 4);  // bounded, no infinite shed loop
}

TEST(RetryingClientOverloadTest, CircuitBreakerOpensHalfOpensAndCloses) {
  auto clock = std::make_shared<ManualClock>(/*start=*/1'000'000,
                                             /*tick=*/0);
  CannedShedTransport transport;
  transport.shed_remaining = 1'000'000;
  transport.hint_micros = 50;

  RetryOptions options;
  options.max_attempts = 10;
  options.breaker_threshold = 3;
  options.breaker_cooldown_micros = 40'000;
  options.clock = clock.get();
  RetryingClient client(&transport, options);

  // Three consecutive sheds open the breaker mid-call.
  auto first = client.Call(Gesture());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->code, StatusCode::kUnavailable);
  EXPECT_EQ(transport.calls, 3);
  EXPECT_TRUE(client.breaker_open());
  EXPECT_EQ(client.stats().breaker_opens, 1u);

  // While open, calls fail fast without touching the wire, and the local
  // retry-after mirrors the remaining cooldown.
  auto blocked = client.Call(Gesture());
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked->code, StatusCode::kUnavailable);
  EXPECT_GT(blocked->retry_after_micros, 0u);
  EXPECT_EQ(transport.calls, 3);
  EXPECT_EQ(client.stats().breaker_short_circuits, 1u);

  // After the cooldown the next call is a half-open probe; the server is
  // still shedding, so the breaker re-opens after one attempt.
  clock->Advance(50'000);
  auto probe = client.Call(Gesture());
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->code, StatusCode::kUnavailable);
  EXPECT_EQ(transport.calls, 4);
  EXPECT_TRUE(client.breaker_open());
  EXPECT_EQ(client.stats().breaker_opens, 2u);

  // Once the server recovers, the probe succeeds and the breaker closes.
  transport.shed_remaining = 0;
  clock->Advance(50'000);
  auto recovered = client.Call(Gesture());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->code, StatusCode::kOk);
  EXPECT_FALSE(client.breaker_open());
  auto steady = client.Call(Gesture());
  ASSERT_TRUE(steady.ok());
  EXPECT_EQ(steady->code, StatusCode::kOk);
  EXPECT_EQ(transport.calls, 6);
}

// --- the overload storm (acceptance) ---
//
// 64 clients against a server whose admission gate is tiny: 60 editor
// threads hammer one shared document while 4 keeper sessions depend purely
// on heartbeats to stay alive, and the group-commit flusher is frozen
// mid-storm (ScheduleController) to spike the backlog. The storm must end
// with every editor's writes applied, all replicas identical, zero reaped
// sessions, normal-class sheds observed as typed kUnavailable with nonzero
// retry-after hints, and zero critical-class sheds.
TEST(OverloadStormTest, SeededStormConvergesWhileShedding) {
  const size_t kEditors = EnvU64("TENDAX_OVERLOAD_EDITORS", 60);
  const size_t kKeepers = 4;
  const size_t kOps = EnvU64("TENDAX_OVERLOAD_OPS", 6);
  const uint64_t kSeed = EnvU64("TENDAX_OVERLOAD_SEED", 1);

  auto sched = std::make_shared<ScheduleController>(kSeed);
  TendaxOptions options;
  options.db.group_commit.mode = CommitFlushMode::kFlusherThread;
  options.db.group_commit.hooks = sched;
  options.session.lease_ttl_micros = 10'000'000;  // 10s, SystemClock domain
  options.admission.max_inflight = 2;
  options.admission.queue_depth = 8;
  options.admission.retry_after_base_micros = 200;
  options.admission.retry_after_max_micros = 5'000;
  // Sheds must come from displacement/arrival overflow (class-ordered),
  // not from wait timeouts that could hit a critical during the flusher
  // freeze.
  options.admission.max_queue_wait_micros = 60'000'000;
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto user = (*server)->accounts()->CreateUser("storm");
  ASSERT_TRUE(user.ok());
  auto owner = (*server)->AttachEditor(*user, "owner");
  ASSERT_TRUE(owner.ok());
  auto doc = (*owner)->CreateDocument("storm.txt");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  struct Client {
    std::unique_ptr<Editor> editor;
    std::unique_ptr<RemoteEditorEndpoint> endpoint;
    std::unique_ptr<FlakyTransport> transport;
    std::unique_ptr<RetryingClient> client;
  };
  auto make_client = [&](const std::string& name, uint64_t seed) {
    auto c = std::make_unique<Client>();
    auto editor = (*server)->AttachEditor(*user, name);
    EXPECT_TRUE(editor.ok()) << editor.status().ToString();
    c->editor = std::move(*editor);
    c->endpoint = std::make_unique<RemoteEditorEndpoint>(c->editor.get());
    c->transport = std::make_unique<FlakyTransport>(
        c->endpoint.get(), NetFaultOptions::Uniform(seed, 0.0));
    RetryOptions retry;
    retry.seed = seed;
    retry.max_attempts = 10'000;  // rely on retry-after, not give-up
    retry.base_backoff_micros = 100;
    retry.max_backoff_micros = 5'000;
    retry.sleep_fn = [](uint64_t micros) {
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
    };
    c->client = std::make_unique<RetryingClient>(c->transport.get(), retry);
    return c;
  };

  std::vector<std::unique_ptr<Client>> editors;
  for (size_t i = 0; i < kEditors; ++i) {
    editors.push_back(make_client("editor-" + std::to_string(i),
                                  kSeed * 1000 + i));
  }
  std::vector<std::unique_ptr<Client>> keepers;
  for (size_t i = 0; i < kKeepers; ++i) {
    keepers.push_back(make_client("keeper-" + std::to_string(i),
                                  kSeed * 5000 + i));
  }

  std::atomic<bool> stop_keepers{false};
  std::atomic<uint64_t> heartbeats_ok{0};
  std::vector<std::thread> keeper_threads;
  for (size_t i = 0; i < kKeepers; ++i) {
    keeper_threads.emplace_back([&, i] {
      while (!stop_keepers.load()) {
        // Keeper sessions live or die by their heartbeats: a single shed
        // streak outlasting the lease would reap them.
        if (keepers[i]->client->Heartbeat().ok()) {
          heartbeats_ok.fetch_add(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  std::atomic<uint64_t> ops_applied{0};
  std::vector<std::thread> editor_threads;
  for (size_t i = 0; i < kEditors; ++i) {
    editor_threads.emplace_back([&, i] {
      Client& me = *editors[i];
      while (!me.client->Open(*doc).ok()) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
      for (size_t op = 0; op < kOps; ++op) {
        // The client retries sheds internally (honoring retry-after); a
        // lock conflict aborts the transaction server-side, so re-running
        // the edit under a fresh request id is safe and applies once.
        Status st = me.client->Type(*doc, 0, "x");
        while (st.IsRetryable()) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          st = me.client->Type(*doc, 0, "x");
        }
        EXPECT_TRUE(st.ok()) << "editor " << i << ": " << st.ToString();
        if (st.ok()) ops_applied.fetch_add(1);
      }
    });
  }

  // Mid-storm: freeze the group-commit flusher so every editing request
  // stalls in commit while heartbeats (no commit) keep flowing, then
  // release. This spikes the admission backlog deterministically.
  sched->PauseAtFlush(sched->flushes_finished() + 1);
  if (sched->WaitUntilPaused(std::chrono::milliseconds(5000))) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  sched->ReleaseFlush();

  for (auto& t : editor_threads) t.join();
  stop_keepers.store(true);
  for (auto& t : keeper_threads) t.join();

  EXPECT_EQ(ops_applied.load(), kEditors * kOps);
  EXPECT_GT(heartbeats_ok.load(), 0u);

  // Zero ghost sessions: nothing was reaped during the storm, and an
  // explicit sweep right after it finds every lease renewed.
  EXPECT_EQ((*server)->sessions()->ReapExpired(), 0u);
  EXPECT_EQ((*server)->sessions()->sessions_reaped(), 0u);

  // All surviving clients converge to the identical document.
  auto reference = (*owner)->Text(*doc);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->size(), kEditors * kOps);
  for (auto& c : editors) {
    auto text = c->client->GetText(*doc);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    EXPECT_EQ(*text, *reference);
  }

  // Shedding happened, was class-ordered, and every shed carried a hint.
  const auto admission = (*server)->admission()->Stats();
  EXPECT_GT(admission.shed[static_cast<size_t>(PriorityClass::kNormal)], 0u)
      << sched->Describe();
  EXPECT_EQ(admission.shed[static_cast<size_t>(PriorityClass::kCritical)],
            0u);
  uint64_t client_unavailable = 0, hintless = 0;
  for (auto& c : editors) {
    client_unavailable += c->client->stats().unavailable;
    hintless += c->client->stats().unavailable_without_hint;
  }
  for (auto& c : keepers) {
    client_unavailable += c->client->stats().unavailable;
    hintless += c->client->stats().unavailable_without_hint;
  }
  EXPECT_GT(client_unavailable, 0u);
  EXPECT_EQ(hintless, 0u);

  // The admission family is part of every kStats snapshot.
  auto snapshot = (*owner)->ServerStats();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->CounterValue("admission.shed.normal"),
            admission.shed[static_cast<size_t>(PriorityClass::kNormal)]);
  EXPECT_EQ(snapshot->CounterValue("admission.shed.critical"), 0u);
  EXPECT_GT(snapshot->CounterValue("admission.admitted.critical"), 0u);
  EXPECT_GE(snapshot->GaugeValue("admission.inflight"), 0);
}

}  // namespace
}  // namespace tendax

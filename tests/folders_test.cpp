// Tests for static folders and metadata-driven dynamic folders.

#include <gtest/gtest.h>

#include "server_fixture.h"

namespace tendax {
namespace {

constexpr Timestamp kWeek = 7ULL * 24 * 3600 * 1'000'000;

class FoldersTest : public ServerTest {};

TEST_F(FoldersTest, StaticFolderHierarchy) {
  FolderManager* fm = server_->folders();
  auto root = fm->CreateFolder(alice_, FolderId(), "projects");
  auto sub = fm->CreateFolder(alice_, *root, "tendax");
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(sub.ok());
  auto folders = fm->Folders();
  ASSERT_EQ(folders.size(), 2u);

  DocumentId doc = MakeDoc(alice_, "placed", "x");
  ASSERT_TRUE(fm->PlaceDocument(alice_, *sub, doc).ok());
  EXPECT_TRUE(fm->PlaceDocument(alice_, *sub, doc).IsAlreadyExists());
  auto contents = fm->FolderContents(*sub);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->size(), 1u);
  EXPECT_EQ((*contents)[0], doc);
  auto placements = fm->PlacementsOf(doc);
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_EQ(placements[0], *sub);

  ASSERT_TRUE(fm->RemoveDocument(alice_, *sub, doc).ok());
  EXPECT_TRUE(fm->FolderContents(*sub)->empty());
  EXPECT_TRUE(fm->RemoveDocument(alice_, *sub, doc).IsNotFound());
}

TEST_F(FoldersTest, DynamicFolderReadByLastWeek) {
  // The paper's example: "all documents a certain user has read within the
  // last week".
  DocumentId old_doc = MakeDoc(alice_, "old", "a");
  ASSERT_TRUE(server_->meta()->RecordRead(bob_, old_doc).ok());
  clock_->Advance(2 * kWeek);  // the read ages out

  auto folder = server_->folders()->CreateDynamicFolder(
      "bob-read-last-week", FolderQuery::ReadBy(bob_, kWeek));
  ASSERT_TRUE(folder.ok());
  EXPECT_TRUE(server_->folders()->DynamicContents(*folder)->empty());

  DocumentId fresh = MakeDoc(alice_, "fresh", "b");
  ASSERT_TRUE(server_->meta()->RecordRead(bob_, fresh).ok());
  // Membership updated incrementally by the read event — no manual refresh.
  auto contents = server_->folders()->DynamicContents(*folder);
  ASSERT_EQ(contents->size(), 1u);
  EXPECT_TRUE(contents->count(fresh));
}

TEST_F(FoldersTest, MembershipFluentAsContentChanges) {
  auto folder = server_->folders()->CreateDynamicFolder(
      "big-docs", FolderQuery::SizeAtLeast(10));
  ASSERT_TRUE(folder.ok());
  DocumentId doc = MakeDoc(alice_, "growing", "short");
  EXPECT_FALSE(server_->folders()->DynamicContents(*folder)->count(doc));
  // Grows past the threshold: the edit event re-evaluates the document.
  ASSERT_TRUE(
      server_->text()->InsertText(alice_, doc, 5, " and longer now").ok());
  EXPECT_TRUE(server_->folders()->DynamicContents(*folder)->count(doc));
  // Shrinks again: drops out.
  ASSERT_TRUE(server_->text()->DeleteRange(alice_, doc, 0, 15).ok());
  EXPECT_FALSE(server_->folders()->DynamicContents(*folder)->count(doc));
}

TEST_F(FoldersTest, CompositeQueries) {
  DocumentId alice_draft = MakeDoc(alice_, "alice-draft", "text");
  DocumentId alice_final = MakeDoc(alice_, "alice-final", "text");
  ASSERT_TRUE(server_->text()
                  ->SetDocumentState(alice_, alice_final, "published")
                  .ok());
  DocumentId bob_draft = MakeDoc(bob_, "bob-draft", "text");

  std::vector<std::unique_ptr<FolderQuery>> parts;
  parts.push_back(FolderQuery::CreatedBy(alice_));
  parts.push_back(FolderQuery::Not(FolderQuery::StateIs("published")));
  auto folder = server_->folders()->CreateDynamicFolder(
      "alice-unpublished", FolderQuery::And(std::move(parts)));
  ASSERT_TRUE(folder.ok());
  auto contents = server_->folders()->DynamicContents(*folder);
  EXPECT_TRUE(contents->count(alice_draft));
  EXPECT_FALSE(contents->count(alice_final));
  EXPECT_FALSE(contents->count(bob_draft));
}

TEST_F(FoldersTest, NameAndPropertyQueries) {
  DocumentId report = MakeDoc(alice_, "q3-report.doc", "numbers");
  DocumentId notes = MakeDoc(alice_, "meeting-notes", "words");
  ASSERT_TRUE(
      server_->meta()->SetProperty(alice_, notes, "team", "db-group").ok());

  auto by_name = server_->folders()->CreateDynamicFolder(
      "reports", FolderQuery::NameContains("report"));
  EXPECT_TRUE(server_->folders()->DynamicContents(*by_name)->count(report));
  EXPECT_FALSE(server_->folders()->DynamicContents(*by_name)->count(notes));

  auto by_prop = server_->folders()->CreateDynamicFolder(
      "db-group-docs", FolderQuery::PropertyIs("team", "db-group"));
  EXPECT_TRUE(server_->folders()->DynamicContents(*by_prop)->count(notes));
  EXPECT_FALSE(server_->folders()->DynamicContents(*by_prop)->count(report));
}

TEST_F(FoldersTest, OrQueryAndDescriptions) {
  std::vector<std::unique_ptr<FolderQuery>> parts;
  parts.push_back(FolderQuery::CreatedBy(alice_));
  parts.push_back(FolderQuery::CreatedBy(bob_));
  auto query = FolderQuery::Or(std::move(parts));
  EXPECT_NE(query->Describe().find("or("), std::string::npos);

  auto folder = server_->folders()->CreateDynamicFolder("either",
                                                        std::move(query));
  DocumentId a = MakeDoc(alice_, "a", "1");
  DocumentId b = MakeDoc(bob_, "b", "2");
  auto contents = server_->folders()->DynamicContents(*folder);
  EXPECT_TRUE(contents->count(a));
  EXPECT_TRUE(contents->count(b));
}

TEST_F(FoldersTest, IncrementalMaintenanceStats) {
  auto folder = server_->folders()->CreateDynamicFolder(
      "edited-by-alice", FolderQuery::EditedBy(alice_, 0));
  ASSERT_TRUE(folder.ok());
  auto before = server_->folders()->stats();
  MakeDoc(alice_, "new-doc", "content");
  auto after = server_->folders()->stats();
  // The create/edit events triggered incremental refreshes, not full ones.
  EXPECT_GT(after.incremental_refreshes, before.incremental_refreshes);
  EXPECT_EQ(after.full_refreshes, before.full_refreshes);
  EXPECT_GT(after.membership_changes, before.membership_changes);
}

TEST_F(FoldersTest, FullRefreshMatchesIncremental) {
  auto folder = server_->folders()->CreateDynamicFolder(
      "sized", FolderQuery::SizeAtLeast(3));
  MakeDoc(alice_, "one", "abcd");
  MakeDoc(alice_, "two", "ab");
  auto incremental = *server_->folders()->DynamicContents(*folder);
  ASSERT_TRUE(server_->folders()->FullRefresh(*folder).ok());
  auto full = *server_->folders()->DynamicContents(*folder);
  EXPECT_EQ(incremental, full);
}

}  // namespace
}  // namespace tendax

// Session-resilience coverage: idempotent retries over a fault-injected
// transport, resumable change streams, slow-consumer backpressure, and the
// seeded schedule sweep from the acceptance criteria.
//
// Scale knobs (env):
//   TENDAX_RESILIENCE_SCHEDULES  seeded fault schedules in the sweep
//                                (default 100)
//   TENDAX_RESILIENCE_OPS        inserts per client per schedule (default 6)

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "collab/retrying_client.h"
#include "collab/wire.h"
#include "server_fixture.h"
#include "testing/flaky_transport.h"

namespace tendax {
namespace {

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return def;
  return std::strtoull(value, nullptr, 10);
}

class ResilienceTest : public ServerTest {
 protected:
  /// A remote editor: session + endpoint + (possibly flaky) transport +
  /// retrying client, wired together in destruction-safe order.
  struct Remote {
    std::unique_ptr<Editor> editor;
    std::unique_ptr<RemoteEditorEndpoint> endpoint;
    std::unique_ptr<FlakyTransport> transport;
    std::unique_ptr<RetryingClient> client;
  };

  Remote MakeRemote(UserId user, const std::string& name,
                    NetFaultOptions faults, RetryOptions retry = {}) {
    Remote r;
    auto editor = server_->AttachEditor(user, name);
    EXPECT_TRUE(editor.ok()) << editor.status().ToString();
    r.editor = std::move(*editor);
    r.endpoint = std::make_unique<RemoteEditorEndpoint>(r.editor.get());
    r.transport =
        std::make_unique<FlakyTransport>(r.endpoint.get(), faults);
    r.client = std::make_unique<RetryingClient>(r.transport.get(), retry);
    return r;
  }

  static NetFaultOptions NoFaults(uint64_t seed = 1) {
    return NetFaultOptions::Uniform(seed, 0.0);
  }
};

// --- fault-injection determinism ---

TEST_F(ResilienceTest, FlakyScheduleIsDeterministic) {
  DocumentId doc = MakeDoc(alice_, "det", "");
  auto run = [&](const std::string& tag) {
    RetryOptions retry;
    retry.max_attempts = 32;
    retry.seed = 9;
    Remote r = MakeRemote(alice_, "det-" + tag,
                          NetFaultOptions::Uniform(/*seed=*/42, 0.15), retry);
    EXPECT_TRUE(r.client->Open(doc).ok());
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(r.client->Type(doc, 0, "x").ok());
    }
    r.transport->Disarm();
    return r.transport->stats();
  };
  const auto a = run("a");
  const auto b = run("b");
  EXPECT_EQ(a.round_trips, b.round_trips);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.delayed, b.delayed);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.late_deliveries, b.late_deliveries);
  // The seed actually produced faults (rate 0.15 over ~30+ round trips).
  EXPECT_GT(a.dropped + a.duplicated + a.delayed + a.corrupted, 0u);
}

// --- idempotency: at-most-once execution under at-least-once delivery ---

TEST_F(ResilienceTest, DuplicatedRequestExecutesOnce) {
  DocumentId doc = MakeDoc(alice_, "dup", "");
  Remote r = MakeRemote(alice_, "dup-editor", NoFaults());
  ASSERT_TRUE(r.client->Open(doc).ok());
  r.transport->Force(2, NetFault::kDupRequest);  // round trip 2 = the Type
  ASSERT_TRUE(r.client->Type(doc, 0, "a").ok());
  auto text = r.client->GetText(doc);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(*text, "a") << r.transport->Describe();
  EXPECT_EQ(r.endpoint->dedup_hits(), 1u);
}

TEST_F(ResilienceTest, LostResponseRetryIsServedFromDedupCache) {
  DocumentId doc = MakeDoc(alice_, "lost-resp", "");
  Remote r = MakeRemote(alice_, "lr-editor", NoFaults());
  ASSERT_TRUE(r.client->Open(doc).ok());
  // The command executes, the reply evaporates; the retry must not
  // execute again but must still return the original (cached) response.
  r.transport->Force(2, NetFault::kDropResponse);
  ASSERT_TRUE(r.client->Type(doc, 0, "a").ok());
  auto text = r.client->GetText(doc);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "a") << r.transport->Describe();
  EXPECT_EQ(r.endpoint->dedup_hits(), 1u);
  EXPECT_EQ(r.client->stats().timeouts, 1u);
}

TEST_F(ResilienceTest, StaleDelayedRetryIsAbsorbedByDedup) {
  DocumentId doc = MakeDoc(alice_, "stale", "");
  Remote r = MakeRemote(alice_, "stale-editor", NoFaults());
  ASSERT_TRUE(r.client->Open(doc).ok());
  // The first delivery of the Type is held back in the network and lands
  // *after* later commands — a stale retry out of order with newer writes.
  r.transport->Force(2, NetFault::kDelayRequest);
  ASSERT_TRUE(r.client->Type(doc, 0, "a").ok());
  ASSERT_TRUE(r.client->Type(doc, 1, "b").ok());
  ASSERT_TRUE(r.client->Type(doc, 2, "c").ok());
  r.transport->Disarm();  // flush anything still in flight
  auto text = r.client->GetText(doc);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "abc") << r.transport->Describe();
  EXPECT_EQ(r.transport->stats().late_deliveries, 1u);
  EXPECT_GE(r.endpoint->dedup_hits(), 1u);
}

TEST_F(ResilienceTest, CorruptFramesAreTreatedAsLossNotAsCommands) {
  DocumentId doc = MakeDoc(alice_, "corrupt", "seed");
  Remote r = MakeRemote(alice_, "c-editor", NoFaults());
  ASSERT_TRUE(r.client->Open(doc).ok());
  r.transport->Force(2, NetFault::kCorruptRequest);
  r.transport->Force(3, NetFault::kCorruptResponse);
  // Round trip 2: damaged request -> server checksum rejects -> timeout ->
  // retry (3) succeeds but its response is damaged -> client checksum
  // rejects -> retry (4) succeeds cleanly.
  ASSERT_TRUE(r.client->Type(doc, 0, "!").ok());
  auto text = r.client->GetText(doc);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "!seed") << r.transport->Describe();
  EXPECT_EQ(r.transport->stats().corrupted, 2u);
  EXPECT_GE(r.client->stats().timeouts + r.client->stats().wire_errors, 2u);
}

TEST_F(ResilienceTest, ExhaustedRetriesSurfaceTheLastTransportError) {
  DocumentId doc = MakeDoc(alice_, "dead", "");
  NetFaultOptions faults;
  faults.drop_request = 1.0;  // the network is a black hole
  RetryOptions retry;
  retry.max_attempts = 3;
  Remote r = MakeRemote(alice_, "dead-editor", faults, retry);
  Status s = r.client->Open(doc);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(r.client->stats().attempts, 3u);
  EXPECT_EQ(r.client->stats().exhausted, 1u);
}

TEST_F(ResilienceTest, CleanServerErrorsAreNotRetried) {
  DocumentId doc = MakeDoc(alice_, "app-error", "ab");
  Remote r = MakeRemote(alice_, "ae-editor", NoFaults());
  ASSERT_TRUE(r.client->Open(doc).ok());
  const uint64_t before = r.client->stats().attempts;
  // An erase far past the end is an application-level error, not a
  // transport fault: it must come back on the first attempt, unretried.
  Status s = r.client->Erase(doc, 1000, 5);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(r.client->stats().attempts, before + 1);
  EXPECT_EQ(r.client->stats().exhausted, 0u);
}

// --- resumable change streams ---

TEST_F(ResilienceTest, ChangeStreamResumesAcrossLostResponses) {
  DocumentId doc = MakeDoc(alice_, "stream", "");
  Remote watcher = MakeRemote(bob_, "watcher", NoFaults());
  ASSERT_TRUE(watcher.client->Open(doc).ok());

  auto typist = server_->AttachEditor(alice_, "typist");
  ASSERT_TRUE(typist.ok());
  ASSERT_TRUE((*typist)->Open(doc).ok());
  ASSERT_TRUE((*typist)->Type(doc, 0, "h").ok());
  ASSERT_TRUE((*typist)->Type(doc, 1, "i").ok());

  // First resume delivers the inserts (plus awareness noise) in order.
  auto first = watcher.client->PollChanges();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->resync_required);
  size_t inserts = 0;
  for (const auto& ev : first->events) {
    if (ev.kind == ChangeKind::kTextInserted) ++inserts;
  }
  EXPECT_EQ(inserts, 2u);
  const uint64_t cursor = watcher.client->last_seq();
  EXPECT_GT(cursor, 0u);

  // A poll whose response frame is lost costs nothing: the events stay
  // buffered server-side until a later resume acknowledges them.
  ASSERT_TRUE((*typist)->Type(doc, 2, "!").ok());
  watcher.transport->Force(watcher.transport->stats().round_trips + 1,
                           NetFault::kDropResponse);
  auto second = watcher.client->PollChanges();
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->resync_required);
  inserts = 0;
  for (const auto& ev : second->events) {
    if (ev.kind == ChangeKind::kTextInserted) ++inserts;
  }
  EXPECT_EQ(inserts, 1u) << "lost response must not lose or repeat events";
  EXPECT_GT(watcher.client->last_seq(), cursor);
}

TEST_F(ResilienceTest, ReconnectResumesFromCarriedCursor) {
  DocumentId doc = MakeDoc(alice_, "reconnect", "");
  Remote watcher = MakeRemote(bob_, "watcher", NoFaults());
  ASSERT_TRUE(watcher.client->Open(doc).ok());

  auto typist = server_->AttachEditor(alice_, "typist");
  ASSERT_TRUE(typist.ok());
  ASSERT_TRUE((*typist)->Open(doc).ok());
  ASSERT_TRUE((*typist)->Type(doc, 0, "a").ok());
  auto drained = watcher.client->PollChanges();
  ASSERT_TRUE(drained.ok());
  const uint64_t cursor = watcher.client->last_seq();

  // The connection dies; the session survives. Events keep accumulating.
  ASSERT_TRUE((*typist)->Type(doc, 1, "b").ok());
  ASSERT_TRUE((*typist)->Type(doc, 2, "c").ok());

  // Fresh endpoint + transport + client over the same session; the only
  // state carried across is the change-stream cursor.
  auto endpoint2 =
      std::make_unique<RemoteEditorEndpoint>(watcher.editor.get());
  DirectTransport transport2(endpoint2.get());
  RetryOptions retry2;
  retry2.seed = 77;
  RetryingClient client2(&transport2, retry2);
  client2.set_last_seq(cursor);
  auto resumed = client2.PollChanges();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->resync_required);
  size_t inserts = 0;
  for (const auto& ev : resumed->events) {
    if (ev.kind == ChangeKind::kTextInserted) ++inserts;
  }
  EXPECT_EQ(inserts, 2u) << "exactly the missed suffix, no repeats";
}

TEST_F(ResilienceTest, SlowConsumerGetsOneResyncMarkerNotUnboundedBacklog) {
  // A dedicated server with a tiny per-session inbox.
  TendaxOptions options;
  options.db.clock = std::make_shared<ManualClock>(1'000'000'000, 1000);
  options.session.max_inbox_events = 4;
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok());
  auto user = (*server)->accounts()->CreateUser("slow");
  ASSERT_TRUE(user.ok());
  auto doc = (*server)->text()->CreateDocument(*user, "firehose");
  ASSERT_TRUE(doc.ok());

  auto watcher = (*server)->AttachEditor(*user, "sleepy-watcher");
  ASSERT_TRUE(watcher.ok());
  RemoteEditorEndpoint endpoint(watcher->get());
  DirectTransport transport(&endpoint);
  RetryingClient client(&transport);
  ASSERT_TRUE(client.Open(*doc).ok());

  auto typist = (*server)->AttachEditor(*user, "typist");
  ASSERT_TRUE(typist.ok());
  ASSERT_TRUE((*typist)->Open(*doc).ok());
  std::string expected;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*typist)->Type(*doc, expected.size(), "x").ok());
    expected += "x";
  }

  SessionManager* sm = (*server)->sessions();
  auto pending = sm->PendingCount((*watcher)->session());
  ASSERT_TRUE(pending.ok());
  EXPECT_LE(*pending, (*server)->sessions()->options().max_inbox_events)
      << "outbox must stay bounded for a consumer that never polls";
  EXPECT_GE(sm->resyncs_emitted(), 1u);

  // The client learns its replica is stale and re-reads a snapshot.
  auto changes = client.PollChanges();
  ASSERT_TRUE(changes.ok());
  EXPECT_TRUE(changes->resync_required);
  // A second poll acknowledges the delivered marker/tail, draining the
  // retained outbox (events are only dropped once a later resume acks
  // them — that is what makes a lost response free).
  ASSERT_TRUE(client.PollChanges().ok());
  auto snapshot = client.GetText(*doc);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(*snapshot, expected);

  // Once caught up, the stream is clean again.
  ASSERT_TRUE((*typist)->Type(*doc, 0, "y").ok());
  auto after = client.PollChanges();
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->resync_required);
}

TEST_F(ResilienceTest, StaleResumeCursorForcesResync) {
  DocumentId doc = MakeDoc(alice_, "rewind", "");
  auto watcher = server_->AttachEditor(bob_, "watcher");
  ASSERT_TRUE(watcher.ok());
  ASSERT_TRUE((*watcher)->Open(doc).ok());
  ASSERT_TRUE(server_->text()->InsertText(alice_, doc, 0, "abc").ok());

  SessionManager* sm = server_->sessions();
  auto first = sm->Resume((*watcher)->session(), 0);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->empty());
  const uint64_t high = first->back().seq;
  // Acknowledge everything...
  ASSERT_TRUE(sm->Resume((*watcher)->session(), high).ok());
  // ...then come back with a cursor from before the ack horizon. Those
  // events are gone; the only honest answer is a resync marker.
  auto stale = sm->Resume((*watcher)->session(), 0);
  ASSERT_TRUE(stale.ok());
  ASSERT_EQ(stale->size(), 1u);
  EXPECT_EQ(stale->front().event.kind, ChangeKind::kResync);
  // And the marker itself survives a retried (identical) resume.
  auto retried = sm->Resume((*watcher)->session(), 0);
  ASSERT_TRUE(retried.ok());
  ASSERT_EQ(retried->size(), 1u);
  EXPECT_EQ(retried->front().event.kind, ChangeKind::kResync);

  // A resume from the future is a protocol violation, not a resync.
  auto future = sm->Resume((*watcher)->session(), 1'000'000);
  EXPECT_TRUE(future.status().IsInvalidArgument());
}

// --- leases over the wire ---

TEST_F(ResilienceTest, HeartbeatsKeepALeasedSessionAliveOverTheWire) {
  TendaxOptions options;
  auto clock = std::make_shared<ManualClock>(1'000'000'000, 1000);
  options.db.clock = clock;
  options.session.lease_ttl_micros = 2'000'000;
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok());
  auto user = (*server)->accounts()->CreateUser("beat");
  ASSERT_TRUE(user.ok());
  auto doc = (*server)->text()->CreateDocument(*user, "doc");
  ASSERT_TRUE(doc.ok());

  auto editor = (*server)->AttachEditor(*user, "remote");
  ASSERT_TRUE(editor.ok());
  RemoteEditorEndpoint endpoint(editor->get());
  DirectTransport transport(&endpoint);
  RetryingClient client(&transport);
  ASSERT_TRUE(client.Open(*doc).ok());

  for (int i = 0; i < 5; ++i) {
    clock->Advance(1'500'000);  // would expire without the heartbeat
    ASSERT_TRUE(client.Heartbeat().ok()) << "iteration " << i;
  }
  EXPECT_EQ((*server)->sessions()->ReapExpired(), 0u);

  clock->Advance(3'000'000);  // now let it lapse for real
  EXPECT_EQ((*server)->sessions()->ReapExpired(), 1u);
  Status s = client.Heartbeat();
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
}

// Priority-starvation regression: with the admission gate saturated by
// normal-class edit traffic (tiny inflight/queue bounds, constant sheds), a
// leased session that lives purely on kHeartbeat frames must keep renewing —
// heartbeats ride the critical class, which is never shed before normals,
// so mid-storm ReapExpired sweeps find nothing to reap.
TEST_F(ResilienceTest, HeartbeatsSurviveNormalClassSaturation) {
  constexpr size_t kStormers = 8;

  TendaxOptions options;
  options.session.lease_ttl_micros = 5'000'000;  // SystemClock domain
  options.admission.max_inflight = 1;
  options.admission.queue_depth = 2;
  options.admission.retry_after_base_micros = 100;
  options.admission.retry_after_max_micros = 2'000;
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto user = (*server)->accounts()->CreateUser("storm");
  ASSERT_TRUE(user.ok());
  auto doc = (*server)->text()->CreateDocument(*user, "saturated");
  ASSERT_TRUE(doc.ok());

  struct Conn {
    std::unique_ptr<Editor> editor;
    std::unique_ptr<RemoteEditorEndpoint> endpoint;
    std::unique_ptr<FlakyTransport> transport;
    std::unique_ptr<RetryingClient> client;
  };
  auto connect = [&](const std::string& name, uint64_t seed) {
    auto c = std::make_unique<Conn>();
    auto editor = (*server)->AttachEditor(*user, name);
    EXPECT_TRUE(editor.ok()) << editor.status().ToString();
    c->editor = std::move(*editor);
    c->endpoint = std::make_unique<RemoteEditorEndpoint>(c->editor.get());
    c->transport = std::make_unique<FlakyTransport>(
        c->endpoint.get(), NetFaultOptions::Uniform(seed, 0.0));
    RetryOptions retry;
    retry.seed = seed;
    retry.max_attempts = 10'000;
    retry.base_backoff_micros = 50;
    retry.max_backoff_micros = 2'000;
    retry.sleep_fn = [](uint64_t micros) {
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
    };
    c->client = std::make_unique<RetryingClient>(c->transport.get(), retry);
    return c;
  };

  std::vector<std::unique_ptr<Conn>> stormers;
  for (size_t i = 0; i < kStormers; ++i) {
    stormers.push_back(connect("stormer-" + std::to_string(i), 100 + i));
  }
  auto keeper = connect("lease-keeper", 7);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kStormers; ++i) {
    threads.emplace_back([&, i] {
      while (!stop.load()) {
        Status st = stormers[i]->client->Type(*doc, 0, "x");
        EXPECT_TRUE(st.ok() || st.IsRetryable()) << st.ToString();
      }
    });
  }

  uint64_t heartbeats_ok = 0;
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  while (std::chrono::steady_clock::now() < until) {
    ASSERT_TRUE(keeper->client->Heartbeat().ok());
    ++heartbeats_ok;
    // Mid-storm reap sweeps must find every lease current.
    EXPECT_EQ((*server)->sessions()->ReapExpired(), 0u);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& t : threads) t.join();

  EXPECT_GT(heartbeats_ok, 0u);
  EXPECT_EQ((*server)->sessions()->sessions_reaped(), 0u);
  const auto admission = (*server)->admission()->Stats();
  EXPECT_GT(admission.shed[static_cast<size_t>(PriorityClass::kNormal)], 0u);
  EXPECT_EQ(admission.shed[static_cast<size_t>(PriorityClass::kCritical)],
            0u);
}

// --- the acceptance sweep ---

// >=100 seeded fault schedules; 4 concurrent clients, each typing its own
// letter through its own FlakyTransport; client 0 churns its connection.
// Every schedule must end with byte-identical text on all clients and
// exactly `ops` occurrences of each letter (at-most-once execution).
TEST_F(ResilienceTest, SeededScheduleSweepConverges) {
  const uint64_t kSchedules = EnvU64("TENDAX_RESILIENCE_SCHEDULES", 100);
  const uint64_t kOps = EnvU64("TENDAX_RESILIENCE_OPS", 6);
  constexpr size_t kClients = 4;
  const char kLetters[kClients] = {'a', 'b', 'c', 'd'};

  for (uint64_t schedule = 0; schedule < kSchedules; ++schedule) {
    const uint64_t base_seed = 0xC0FFEE + schedule * 7919;
    DocumentId doc =
        MakeDoc(alice_, "sweep-" + std::to_string(schedule), "");

    // Declared before the per-client connection state so sessions outlive
    // endpoints/transports and delayed frames can flush on Disarm.
    std::vector<std::unique_ptr<Editor>> editors;
    std::vector<std::unique_ptr<RemoteEditorEndpoint>> endpoints;
    std::vector<std::unique_ptr<FlakyTransport>> transports;
    std::vector<std::unique_ptr<RetryingClient>> clients;
    // Index of each client's *current* connection in the vectors above
    // (client 0 churns, so its slot moves).
    size_t current[kClients];

    auto connect = [&](size_t c, uint64_t incarnation) {
      auto faults = NetFaultOptions::Uniform(
          base_seed + c * 131 + incarnation * 17, 0.04);
      endpoints.push_back(std::make_unique<RemoteEditorEndpoint>(
          editors[c].get()));
      transports.push_back(std::make_unique<FlakyTransport>(
          endpoints.back().get(), faults));
      RetryOptions retry;
      retry.max_attempts = 16;
      retry.seed = base_seed ^ (c * 997 + incarnation);
      clients.push_back(std::make_unique<RetryingClient>(
          transports.back().get(), retry));
      current[c] = clients.size() - 1;
    };

    for (size_t c = 0; c < kClients; ++c) {
      auto editor =
          server_->AttachEditor(c % 2 == 0 ? alice_ : bob_,
                                "sweep-client-" + std::to_string(c));
      ASSERT_TRUE(editor.ok());
      editors.push_back(std::move(*editor));
      connect(c, 0);
      ASSERT_TRUE(clients[current[c]]->Open(doc).ok())
          << "schedule " << schedule << " client " << c << ": "
          << transports[current[c]]->Describe();
    }

    uint64_t churn = 0;
    for (uint64_t op = 0; op < kOps; ++op) {
      for (size_t c = 0; c < kClients; ++c) {
        RetryingClient* client = clients[current[c]].get();
        Status s = client->Type(doc, 0, std::string(1, kLetters[c]));
        ASSERT_TRUE(s.ok())
            << "schedule " << schedule << " client " << c << " op " << op
            << ": " << s.ToString() << " via "
            << transports[current[c]]->Describe();
      }
      // Client 0's connection dies every other round; the session and the
      // change-stream cursor survive into the new connection.
      if (op % 2 == 1) {
        const uint64_t cursor = clients[current[0]]->last_seq();
        connect(0, ++churn);
        clients[current[0]]->set_last_seq(cursor);
        auto changes = clients[current[0]]->PollChanges();
        ASSERT_TRUE(changes.ok()) << changes.status().ToString();
        EXPECT_FALSE(changes->resync_required)
            << "schedule " << schedule
            << ": default inbox must not overflow at this event volume";
      }
    }

    // Quiesce: faithful delivery from here on, stale frames flushed.
    for (auto& transport : transports) transport->Disarm();

    std::string reference;
    for (size_t c = 0; c < kClients; ++c) {
      auto text = clients[current[c]]->GetText(doc);
      ASSERT_TRUE(text.ok())
          << "schedule " << schedule << " client " << c << ": "
          << text.status().ToString();
      if (c == 0) {
        reference = *text;
      } else {
        EXPECT_EQ(*text, reference)
            << "schedule " << schedule << ": divergent replicas";
      }
    }
    ASSERT_EQ(reference.size(), kClients * kOps)
        << "schedule " << schedule << ": " << reference;
    std::map<char, uint64_t> counts;
    for (char ch : reference) ++counts[ch];
    for (size_t c = 0; c < kClients; ++c) {
      EXPECT_EQ(counts[kLetters[c]], kOps)
          << "schedule " << schedule << " client " << c
          << ": duplicated or lost edits in " << reference << " via "
          << transports[current[c]]->Describe();
    }

    if (schedule % 20 == 19) {
      ASSERT_TRUE(server_->CheckIntegrity().ok());
    }
  }
  ASSERT_TRUE(server_->CheckIntegrity().ok());
}

}  // namespace
}  // namespace tendax

// Edge cases and failure injection across the stack: empty inputs, dormant
// layout runs, checkpoint preconditions, lock-manager stress, inbox caps.

#include <gtest/gtest.h>

#include <thread>

#include "server_fixture.h"
#include "util/random.h"

namespace tendax {
namespace {

class RobustnessTest : public ServerTest {};

TEST_F(RobustnessTest, EmptyAndDegenerateTextOps) {
  DocumentId doc = MakeDoc(alice_, "edge", "");
  // Empty insert commits a (trivial) transaction and bumps the version.
  auto r = server_->text()->InsertText(alice_, doc, 0, "");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->chars.empty());
  // Zero-length operations.
  ASSERT_TRUE(server_->text()->InsertText(alice_, doc, 0, "abc").ok());
  auto copy = server_->text()->Copy(alice_, doc, 1, 0);
  ASSERT_TRUE(copy.ok());
  EXPECT_TRUE(copy->empty());
  auto del = server_->text()->DeleteRange(alice_, doc, 1, 0);
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(*server_->text()->Text(doc), "abc");
  // Pasting an empty clipboard.
  ASSERT_TRUE(server_->text()->Paste(alice_, doc, 0, {}).ok());
  EXPECT_EQ(*server_->text()->Text(doc), "abc");
}

TEST_F(RobustnessTest, OperationsOnUnknownDocumentFail) {
  DocumentId ghost(424242);
  EXPECT_TRUE(server_->text()->Text(ghost).status().IsNotFound());
  EXPECT_TRUE(
      server_->text()->InsertText(alice_, ghost, 0, "x").status()
          .IsNotFound());
  EXPECT_TRUE(server_->text()->GetDocumentInfo(ghost).status().IsNotFound());
  EXPECT_TRUE(server_->diff()->Between(ghost, 0, 1).status().IsNotFound());
}

TEST_F(RobustnessTest, DormantLayoutRunsAreSkipped) {
  DocumentId doc = MakeDoc(alice_, "dormant", "style this text");
  ASSERT_TRUE(server_->documents()
                  ->ApplyLayout(alice_, doc, 6, 4, "bold", "true")
                  .ok());
  // Delete the styled range: the run's anchors are tombstones now.
  ASSERT_TRUE(server_->text()->DeleteRange(alice_, doc, 6, 4).ok());
  auto spans = server_->documents()->ComputeSpans(doc);
  ASSERT_TRUE(spans.ok());
  for (const LayoutSpan& span : *spans) {
    EXPECT_TRUE(span.attrs.empty());  // dormant run contributes nothing
  }
  // Markup renders the remaining text cleanly.
  EXPECT_EQ(*server_->documents()->RenderMarkup(doc), "style  text");
}

TEST_F(RobustnessTest, CheckpointRequiresQuiescence) {
  Transaction* txn = server_->db()->txns()->Begin(alice_);
  EXPECT_TRUE(server_->db()->Checkpoint().IsFailedPrecondition());
  ASSERT_TRUE(server_->db()->txns()->Abort(txn).ok());
  EXPECT_TRUE(server_->db()->Checkpoint().ok());
  // After a checkpoint the system keeps working.
  DocumentId doc = MakeDoc(alice_, "post-checkpoint", "still alive");
  EXPECT_EQ(*server_->text()->Text(doc), "still alive");
}

TEST_F(RobustnessTest, SessionInboxIsBounded) {
  DocumentId doc = MakeDoc(alice_, "firehose", "");
  auto session = server_->sessions()->Connect(bob_, "slowpoke");
  ASSERT_TRUE(server_->sessions()->OpenDocument(*session, doc).ok());
  // Never polls while 12k events stream past (cap is 10k). On overflow the
  // backlog coalesces into a single kResync marker — the consumer is told
  // its replica is stale instead of silently losing the stream head.
  for (int i = 0; i < 12000; ++i) {
    ASSERT_TRUE(server_->text()->InsertText(alice_, doc, 0, "x").ok());
  }
  auto pending = server_->sessions()->PendingCount(*session);
  ASSERT_TRUE(pending.ok());
  EXPECT_LE(*pending, 10000u);
  EXPECT_GE(server_->sessions()->resyncs_emitted(), 1u);
  // Draining returns the retained tail — led by the resync marker — and
  // resets the queue.
  auto events = server_->sessions()->Poll(*session);
  ASSERT_TRUE(events.ok());
  ASSERT_FALSE(events->empty());
  EXPECT_EQ(events->front().kind, ChangeKind::kResync);
  EXPECT_EQ(*server_->sessions()->PendingCount(*session), 0u);
}

TEST_F(RobustnessTest, LockManagerStress) {
  LockManager* lm = server_->db()->locks();
  constexpr int kThreads = 6;
  constexpr int kRounds = 300;
  std::atomic<int> hard_failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(t + 1);
      for (int i = 0; i < kRounds; ++i) {
        TxnId txn(100000 + t * kRounds + i);
        int locks_taken = 0;
        for (int k = 0; k < 3; ++k) {
          uint64_t res = MakeResource(ResourceKind::kDocument,
                                      1 + rng.Uniform(8));
          LockMode mode = rng.OneIn(3) ? LockMode::kX : LockMode::kS;
          Status st = lm->Acquire(txn, res, mode);
          if (st.ok()) {
            ++locks_taken;
          } else if (!st.IsRetryable()) {
            ++hard_failures;
          } else {
            break;  // victim: release and move on
          }
        }
        lm->ReleaseAll(txn);
        (void)locks_taken;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hard_failures.load(), 0);
  EXPECT_EQ(lm->LockedResourceCount(), 0u);  // everything released
}

TEST_F(RobustnessTest, BufferPoolStatsTrackWritebacks) {
  auto stats_before = server_->db()->buffer_pool()->stats();
  MakeDoc(alice_, "dirty-doc", std::string(5000, 'd'));
  ASSERT_TRUE(server_->db()->buffer_pool()->FlushAll().ok());
  auto stats_after = server_->db()->buffer_pool()->stats();
  EXPECT_GT(stats_after.dirty_writebacks, stats_before.dirty_writebacks);
}

TEST_F(RobustnessTest, LayoutOnEmptyRangeRejected) {
  DocumentId doc = MakeDoc(alice_, "no-range", "abc");
  EXPECT_TRUE(server_->documents()
                  ->ApplyLayout(alice_, doc, 0, 0, "bold", "true")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(server_->documents()
                  ->ApplyLayout(alice_, doc, 2, 5, "bold", "true")
                  .status()
                  .IsOutOfRange());
}

TEST_F(RobustnessTest, WorkflowOnUnknownEntitiesFails) {
  EXPECT_TRUE(server_->workflows()
                  ->AddTask(alice_, ProcessId(999), "t", "",
                            Assignee::User(bob_))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(server_->workflows()->Complete(alice_, TaskId(999))
                  .IsNotFound());
  EXPECT_TRUE(server_->workflows()->GetProcess(ProcessId(999)).status()
                  .IsNotFound());
}

TEST_F(RobustnessTest, UndoAcrossPurgedHistoryFailsCleanly) {
  DocumentId doc = MakeDoc(alice_, "purged-undo", "");
  auto editor = server_->AttachEditor(alice_, "e");
  ASSERT_TRUE((*editor)->Type(doc, 0, "text").ok());
  ASSERT_TRUE((*editor)->Erase(doc, 0, 2).ok());
  // Purge the tombstones out from under the undo log.
  ASSERT_TRUE(server_->text()->PurgeHistory(alice_, doc, kVersionMax).ok());
  // Undoing the erase would resurrect purged characters: a clean error,
  // not corruption.
  Status st = (*editor)->Undo(doc);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(*server_->text()->Text(doc), "xt");
  // The document remains fully usable.
  ASSERT_TRUE((*editor)->Type(doc, 0, "ne").ok());
  EXPECT_EQ(*server_->text()->Text(doc), "next");
}

TEST_F(RobustnessTest, RangeInfoOnEmptyDocument) {
  DocumentId doc = MakeDoc(alice_, "empty-info", "");
  auto info = server_->text()->RangeInfo(doc, 0, 0);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->empty());
  EXPECT_TRUE(server_->text()->CharAt(doc, 0).status().IsOutOfRange());
  EXPECT_TRUE(server_->text()->FullChain(doc)->empty());
}

TEST_F(RobustnessTest, ManyDocumentsManyHandles) {
  // Handle-cache hygiene across a larger document population.
  std::vector<DocumentId> docs;
  for (int i = 0; i < 200; ++i) {
    docs.push_back(MakeDoc(alice_, "bulk" + std::to_string(i),
                           "doc number " + std::to_string(i)));
  }
  for (int i = 0; i < 200; i += 17) {
    server_->text()->InvalidateHandle(docs[i]);
  }
  for (int i = 0; i < 200; i += 11) {
    EXPECT_EQ(*server_->text()->Text(docs[i]),
              "doc number " + std::to_string(i));
  }
  EXPECT_EQ(server_->text()->ListDocuments().size(), 200u);
}

}  // namespace
}  // namespace tendax

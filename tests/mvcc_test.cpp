#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tendax.h"
#include "server_fixture.h"
#include "storage/wal.h"
#include "testing/schedule_controller.h"
#include "util/random.h"

namespace tendax {
namespace {

// MVCC snapshot reads: deterministic unit coverage for the lock-free read
// path (publication, immutability, purge floor, reclamation accounting)
// plus a seeded snapshot-consistency property harness.
//
// Scale knobs (bounded defaults for tier-1):
//   TENDAX_MVCC_SCHEDULES   seeded schedules in the property harness (4)
//   TENDAX_MVCC_OPS         writer operations per schedule (120)

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::strtoull(v, nullptr, 10);
}

class MvccTest : public ServerTest {};

// A snapshot is a stable view of one committed version: later edits never
// leak into it, while a fresh acquire sees them.
TEST_F(MvccTest, SnapshotIsImmutableAcrossLaterEdits) {
  DocumentId doc = MakeDoc(alice_, "stable", "hello");
  auto snap = server_->text()->AcquireSnapshot(doc);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  const Version v = (*snap)->version();
  EXPECT_EQ((*snap)->Text(), "hello");
  EXPECT_EQ((*snap)->length(), 5u);

  ASSERT_TRUE(server_->text()->InsertText(alice_, doc, 5, ", world").ok());
  ASSERT_TRUE(server_->text()->DeleteRange(alice_, doc, 0, 1).ok());

  // The old snapshot is bit-stable.
  EXPECT_EQ((*snap)->Text(), "hello");
  EXPECT_EQ((*snap)->version(), v);
  EXPECT_EQ((*snap)->length(), 5u);

  // A fresh acquire serves the newest committed state.
  auto fresh = server_->text()->AcquireSnapshot(doc);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*fresh)->Text(), "ello, world");
  EXPECT_EQ((*fresh)->version(), v + 2);
  // And the routed read paths agree with it.
  EXPECT_EQ(*server_->text()->Text(doc), "ello, world");
  EXPECT_EQ(*server_->text()->Length(doc), 11u);
}

// Snapshot time travel matches the legacy record-walking reconstruction at
// every version.
TEST_F(MvccTest, TextAtVersionMatchesEveryCommittedVersion) {
  DocumentId doc = MakeDoc(alice_, "history", "abc");     // v1
  ASSERT_TRUE(server_->text()->InsertText(alice_, doc, 3, "def").ok());  // v2
  ASSERT_TRUE(server_->text()->DeleteRange(alice_, doc, 1, 2).ok());    // v3
  ASSERT_TRUE(server_->text()->InsertText(alice_, doc, 1, "XY").ok());  // v4

  const std::vector<std::string> expected = {"abc", "abcdef", "adef",
                                             "aXYdef"};
  for (Version v = 1; v <= 4; ++v) {
    auto mvcc = server_->text()->TextAtVersion(doc, v);
    ASSERT_TRUE(mvcc.ok()) << mvcc.status().ToString();
    EXPECT_EQ(*mvcc, expected[v - 1]) << "version " << v;
  }
  // The same answers come from the legacy path.
  server_->text()->SetSnapshotsEnabled(false);
  for (Version v = 1; v <= 4; ++v) {
    auto legacy = server_->text()->TextAtVersion(doc, v);
    ASSERT_TRUE(legacy.ok());
    EXPECT_EQ(*legacy, expected[v - 1]) << "legacy version " << v;
  }
}

// The headline property: while a writer's commit is parked inside the
// group-commit flush still holding its X document lock (early lock release
// off), snapshot reads proceed immediately at the previous version with no
// lock acquisition — and the lock-based paths demonstrably do not.
TEST(MvccContrastTest, SnapshotReadsDoNotStallBehindPausedCommit) {
  auto sched = std::make_shared<ScheduleController>(/*seed=*/11);
  TendaxOptions options;
  options.db.buffer_pool_pages = 1024;
  options.db.group_commit.mode = CommitFlushMode::kFlusherThread;
  options.db.group_commit.early_lock_release = false;
  options.db.group_commit.hooks = sched;
  // Short lock timeout so the negative (lock-based) probe fails fast.
  options.db.lock_timeout = std::chrono::milliseconds(20);
  auto server_res = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server_res.ok()) << server_res.status().ToString();
  TendaxServer* server = server_res->get();

  auto user = server->accounts()->CreateUser("writer");
  ASSERT_TRUE(user.ok());
  auto doc = server->text()->CreateDocument(*user, "contended");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(server->text()->InsertText(*user, *doc, 0, "base").ok());
  const Version committed = *server->text()->CurrentVersion(*doc);

  // Gate the next coalesced flush, then start a writer that will block in
  // CommitFlush holding the document's X lock.
  const uint64_t next_flush =
      server->db()->wal()->group_commit_stats().group_flushes + 1;
  sched->PauseAtFlush(next_flush);
  std::thread writer([&] {
    auto r = server->text()->InsertText(*user, *doc, 4, "+more");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  ASSERT_TRUE(sched->WaitUntilPaused()) << sched->Describe();

  // Snapshot reads serve the previous committed version instantly.
  auto snap = server->text()->AcquireSnapshot(*doc);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ((*snap)->version(), committed);
  EXPECT_EQ((*snap)->Text(), "base");
  EXPECT_EQ(*server->text()->Text(*doc), "base");
  auto clip = server->text()->Copy(*user, *doc, 0, 4);
  ASSERT_TRUE(clip.ok()) << clip.status().ToString();
  EXPECT_EQ(clip->size(), 4u);

  // Contrast: with snapshots disabled, Copy needs a shared document lock
  // and times out against the parked writer's X lock.
  server->text()->SetSnapshotsEnabled(false);
  auto blocked = server->text()->Copy(*user, *doc, 0, 4);
  ASSERT_FALSE(blocked.ok());
  EXPECT_TRUE(blocked.status().IsConflict() ||
              blocked.status().IsDeadlineExceeded())
      << blocked.status().ToString();
  server->text()->SetSnapshotsEnabled(true);

  sched->ReleaseFlush();
  writer.join();
  auto after = server->text()->AcquireSnapshot(*doc);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->version(), committed + 1);
  EXPECT_EQ((*after)->Text(), "base+more");
}

// Purge raises the floor: below it reads fail typed (snapshot and legacy
// path alike); at/above it they stay exact; the floor survives cache
// invalidation and eviction because it is persisted with the document.
TEST_F(MvccTest, PurgeFloorFailsTypedAndSurvivesEviction) {
  DocumentId doc = MakeDoc(alice_, "purged", "abcdef");             // v1
  ASSERT_TRUE(server_->text()->DeleteRange(alice_, doc, 1, 2).ok());  // v2
  ASSERT_TRUE(server_->text()->DeleteRange(alice_, doc, 2, 1).ok());  // v3
  auto purged = server_->text()->PurgeHistory(alice_, doc, 2);
  ASSERT_TRUE(purged.ok());
  EXPECT_EQ(*purged, 2u);

  auto check_floor = [&] {
    auto below = server_->text()->TextAtVersion(doc, 1);
    ASSERT_FALSE(below.ok());
    EXPECT_TRUE(below.status().IsFailedPrecondition())
        << below.status().ToString();
    EXPECT_EQ(*server_->text()->TextAtVersion(doc, 2), "adef");
    EXPECT_EQ(*server_->text()->TextAtVersion(doc, 3), "adf");
  };
  check_floor();

  // Persisted: a dropped cache and a full eviction both reload floor = 2.
  server_->text()->InvalidateHandle(doc);
  check_floor();
  ASSERT_TRUE(server_->text()->EvictDocument(doc));
  check_floor();

  // The legacy path enforces the same floor.
  server_->text()->SetSnapshotsEnabled(false);
  auto below = server_->text()->TextAtVersion(doc, 1);
  ASSERT_FALSE(below.ok());
  EXPECT_TRUE(below.status().IsFailedPrecondition());
}

// The purge floor is durable across a real close + reopen of a file-backed
// server, not just across cache eviction.
TEST(MvccDurabilityTest, PurgeFloorSurvivesReopen) {
  const std::string dir = ::testing::TempDir() + "tendax_mvcc_floor";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/db";
  UserId user;
  DocumentId doc;
  {
    TendaxOptions options;
    options.db.path = path;
    auto server = TendaxServer::Open(std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    auto u = (*server)->accounts()->CreateUser("alice");
    ASSERT_TRUE(u.ok());
    user = *u;
    auto d = (*server)->text()->CreateDocument(user, "durable");
    ASSERT_TRUE(d.ok());
    doc = *d;
    ASSERT_TRUE((*server)->text()->InsertText(user, doc, 0, "abcdef").ok());
    ASSERT_TRUE((*server)->text()->DeleteRange(user, doc, 1, 2).ok());
    auto purged = (*server)->text()->PurgeHistory(user, doc, 2);
    ASSERT_TRUE(purged.ok());
    EXPECT_EQ(*purged, 2u);
  }
  {
    TendaxOptions options;
    options.db.path = path;
    auto server = TendaxServer::Open(std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    EXPECT_EQ(*(*server)->text()->Text(doc), "adef");
    auto below = (*server)->text()->TextAtVersion(doc, 1);
    ASSERT_FALSE(below.ok());
    EXPECT_TRUE(below.status().IsFailedPrecondition())
        << below.status().ToString();
    EXPECT_EQ(*(*server)->text()->TextAtVersion(doc, 2), "adef");
  }
  std::filesystem::remove_all(dir);
}

// A reader holding a snapshot keeps its full pre-purge history readable even
// after PurgeHistory physically deletes the tombstones and the document is
// evicted from the cache: reclamation is by refcount, never by overwrite.
TEST_F(MvccTest, InFlightReaderSurvivesPurgeAndEviction) {
  DocumentId doc = MakeDoc(alice_, "raced", "abcdef");              // v1
  ASSERT_TRUE(server_->text()->DeleteRange(alice_, doc, 1, 2).ok());  // v2

  auto held = server_->text()->AcquireSnapshot(doc);
  ASSERT_TRUE(held.ok());
  ASSERT_EQ((*held)->purge_floor(), 0u);

  ASSERT_TRUE(server_->text()->PurgeHistory(alice_, doc, 2).ok());
  ASSERT_TRUE(server_->text()->EvictDocument(doc));

  // The held snapshot predates the purge: its floor is still 0 and its
  // tombstones are intact, so v1 reconstructs exactly.
  EXPECT_EQ((*held)->Text(), "adef");
  auto v1 = (*held)->TextAtVersion(1);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(*v1, "abcdef");
  // While the store itself now refuses v1.
  auto refused = server_->text()->TextAtVersion(doc, 1);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsFailedPrecondition());
}

// Reclamation accounting: published == reclaimed + live at any quiescent
// point, and dropping the last reference reclaims.
TEST_F(MvccTest, TrackerBalancesPublishedAndReclaimed) {
  MetricsRegistry* metrics = server_->metrics();
  Counter* published = metrics->counter("mvcc.snapshots_published");
  Counter* reclaimed = metrics->counter("mvcc.snapshots_reclaimed");
  Counter* acquired = metrics->counter("mvcc.snapshots_acquired");
  const auto& tracker = server_->text()->snapshot_tracker();

  DocumentId doc = MakeDoc(alice_, "tracked", "x");
  {
    auto a = server_->text()->AcquireSnapshot(doc);
    auto b = server_->text()->AcquireSnapshot(doc);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);  // same published snapshot, two acquisitions
    EXPECT_EQ(published->Value(), reclaimed->Value() + tracker->live());
    EXPECT_GE(acquired->Value(), 2u);
    // Edits publish fresh snapshots; the superseded one is reclaimed once
    // `a`/`b` (the last holders) drop.
    ASSERT_TRUE(server_->text()->InsertText(alice_, doc, 0, "y").ok());
    EXPECT_EQ(published->Value(), reclaimed->Value() + tracker->live());
  }
  // Evict to drop the store's own reference too: everything ever published
  // for this (only) document must now be reclaimed.
  ASSERT_TRUE(server_->text()->EvictDocument(doc));
  EXPECT_EQ(published->Value(), reclaimed->Value());
  EXPECT_EQ(tracker->live(), 0u);

  // The stats scrape path folds the gauges in.
  server_->text()->RefreshMvccGauges();
  EXPECT_EQ(metrics->gauge("mvcc.live_snapshots")->Value(), 0);
}

// The ablation knob: with snapshots disabled, AcquireSnapshot refuses typed
// and every read still works through the legacy path.
TEST(MvccKnobTest, DisabledSnapshotsFallBackToLockedReads) {
  TendaxOptions options;
  options.mvcc_snapshots = false;
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto user = (*server)->accounts()->CreateUser("alice");
  ASSERT_TRUE(user.ok());
  auto doc = (*server)->text()->CreateDocument(*user, "legacy");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE((*server)->text()->InsertText(*user, *doc, 0, "plain").ok());

  EXPECT_FALSE((*server)->text()->snapshots_enabled());
  auto snap = (*server)->text()->AcquireSnapshot(*doc);
  ASSERT_FALSE(snap.ok());
  EXPECT_TRUE(snap.status().IsFailedPrecondition());

  EXPECT_EQ(*(*server)->text()->Text(*doc), "plain");
  EXPECT_EQ(*(*server)->text()->Length(*doc), 5u);
  auto clip = (*server)->text()->Copy(*user, *doc, 0, 5);
  ASSERT_TRUE(clip.ok());
  EXPECT_EQ(clip->size(), 5u);
}

// Snapshot-read transactions are observation-only: no WAL records, no ATT
// entry (they must not pin log truncation), and LogUpdate refuses typed.
TEST_F(MvccTest, SnapshotReadTxnIsInvisibleToWalAndRefusesWrites) {
  TxnManager* txns = server_->db()->txns();
  Status st = txns->RunSnapshotRead(alice_, [&](Transaction* txn) -> Status {
    EXPECT_TRUE(txn->is_snapshot_read());
    // Not in the active-transaction table a fuzzy checkpoint would log.
    for (const CheckpointTxnEntry& e : txns->ActiveTxnTable()) {
      EXPECT_NE(e.txn, txn->id().value);
    }
    auto logged = txns->LogUpdate(txn, UpdateOp::kInsert, /*table_id=*/1,
                                  /*rid=*/1, "", "x");
    EXPECT_FALSE(logged.ok());
    EXPECT_TRUE(logged.status().IsFailedPrecondition());
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE(server_->metrics()->counter("txn.snapshot_reads")->Value(), 1u);
}

// --- seeded snapshot-consistency property harness ---
//
// One writer applies a deterministic random edit stream; every version's
// expected text is recorded in a shadow model *before* the edit commits.
// Concurrent readers continuously acquire snapshots and assert:
//   (1) the snapshot's text equals the shadow model at the snapshot's
//       version — reads are always of SOME committed version, never a blend;
//   (2) versions are monotone per reader;
//   (3) the version is >= the newest commit the reader had observed before
//       acquiring — snapshots never travel backwards past the acquire point.
// A ScheduleController (seeded per schedule) parks one coalesced group
// flush mid-stream so part of the validation runs against a writer frozen
// inside its commit.
TEST(MvccPropertyTest, SeededSnapshotConsistency) {
  const uint64_t kSchedules = EnvU64("TENDAX_MVCC_SCHEDULES", 4);
  const uint64_t kOps = EnvU64("TENDAX_MVCC_OPS", 120);
  const size_t kReaders = 4;

  for (uint64_t schedule = 1; schedule <= kSchedules; ++schedule) {
    SCOPED_TRACE("schedule seed " + std::to_string(schedule));
    auto sched = std::make_shared<ScheduleController>(schedule);
    TendaxOptions options;
    options.db.buffer_pool_pages = 2048;
    options.db.group_commit.mode = CommitFlushMode::kFlusherThread;
    options.db.group_commit.hooks = sched;
    auto server_res = TendaxServer::Open(std::move(options));
    ASSERT_TRUE(server_res.ok()) << server_res.status().ToString();
    TendaxServer* server = server_res->get();

    auto user = server->accounts()->CreateUser("writer");
    ASSERT_TRUE(user.ok());
    auto doc = server->text()->CreateDocument(*user, "property");
    ASSERT_TRUE(doc.ok());

    // Shadow model: version -> expected full text. Entries are recorded
    // before the edit that creates them commits, so a reader can never see
    // a published version that is missing from the shadow.
    Mutex shadow_mu{"test.shadow", lockorder::kRankLeaf};
    std::map<Version, std::string> shadow;
    std::string model;
    {
      MutexLock lock(shadow_mu);
      shadow[0] = "";
    }
    std::atomic<Version> last_committed{0};
    std::atomic<bool> done{false};
    std::atomic<uint64_t> reads{0};

    // Park one group flush somewhere in the first half of the stream so
    // readers validate against a writer frozen mid-commit. The gate index
    // is relative to the flushes already spent on setup commits.
    const uint64_t base = server->db()->wal()->group_commit_stats().group_flushes;
    const uint64_t gate = base + sched->PickFlush(2, kOps / 2 + 2);
    sched->PauseAtFlush(gate);

    std::vector<std::thread> readers;
    for (size_t r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        Version prev = 0;
        while (!done.load(std::memory_order_acquire)) {
          const Version floor = last_committed.load(std::memory_order_acquire);
          auto snap = server->text()->AcquireSnapshot(*doc);
          if (!snap.ok()) {
            ADD_FAILURE() << "reader " << r << ": "
                          << snap.status().ToString();
            return;
          }
          const Version v = (*snap)->version();
          EXPECT_GE(v, floor) << "reader " << r << " went backwards";
          EXPECT_GE(v, prev) << "reader " << r << " non-monotone";
          prev = v;
          std::string expected;
          {
            MutexLock lock(shadow_mu);
            auto it = shadow.find(v);
            if (it == shadow.end()) {
              ADD_FAILURE() << "reader " << r << " saw unknown version " << v;
              return;
            }
            expected = it->second;
          }
          EXPECT_EQ((*snap)->Text(), expected)
              << "reader " << r << " at version " << v;
          EXPECT_EQ((*snap)->length(), expected.size());
          ++reads;
        }
      });
    }

    std::thread writer([&] {
      Random rng(/*seed=*/schedule * 7919);
      Version version = 0;
      for (uint64_t i = 0; i < kOps; ++i) {
        const bool insert = model.empty() || rng.Uniform(3) != 0;
        if (insert) {
          const size_t pos = rng.Uniform(model.size() + 1);
          std::string text;
          const size_t n = 1 + rng.Uniform(5);
          for (size_t c = 0; c < n; ++c) {
            text.push_back(static_cast<char>('a' + rng.Uniform(26)));
          }
          model.insert(pos, text);
          ++version;
          {
            MutexLock lock(shadow_mu);
            shadow[version] = model;
          }
          auto r = server->text()->InsertText(*user, *doc, pos, text);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          ASSERT_EQ(r->version, version);
        } else {
          const size_t pos = rng.Uniform(model.size());
          const size_t len = 1 + rng.Uniform(model.size() - pos);
          model.erase(pos, len);
          ++version;
          {
            MutexLock lock(shadow_mu);
            shadow[version] = model;
          }
          auto r = server->text()->DeleteRange(*user, *doc, pos, len);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          ASSERT_EQ(r->version, version);
        }
        last_committed.store(version, std::memory_order_release);
      }
    });

    // Let readers exercise the parked-commit window, then release it. The
    // writer may finish without ever reaching the gate on tiny op counts —
    // release regardless so nothing hangs.
    (void)sched->WaitUntilPaused(std::chrono::milliseconds(2000));
    sched->ReleaseFlush();

    writer.join();
    done.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();

    EXPECT_GT(reads.load(), 0u) << sched->Describe();
    auto final_snap = server->text()->AcquireSnapshot(*doc);
    ASSERT_TRUE(final_snap.ok());
    EXPECT_EQ((*final_snap)->Text(), model) << sched->Describe();
    EXPECT_EQ((*final_snap)->version(),
              last_committed.load(std::memory_order_acquire));
    EXPECT_EQ(server->db()->txns()->ActiveCount(), 0u);
    Status integrity = server->CheckIntegrity();
    EXPECT_TRUE(integrity.ok()) << integrity.ToString();
  }
}

}  // namespace
}  // namespace tendax

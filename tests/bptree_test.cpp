// Unit and property tests for the page-based B+tree index.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "db/bptree.h"
#include "storage/disk_manager.h"
#include "util/random.h"

namespace tendax {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<InMemoryDiskManager>();
    pool_ = std::make_unique<BufferPool>(256, disk_.get());
    auto tree = BPlusTree::Create(1, "test_index", pool_.get());
    ASSERT_TRUE(tree.ok());
    tree_ = std::move(*tree);
  }

  std::unique_ptr<InMemoryDiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BPlusTree> tree_;
};

TEST_F(BPlusTreeTest, EmptyTreeBehaves) {
  EXPECT_TRUE(tree_->GetFirst(1).status().IsNotFound());
  EXPECT_FALSE(tree_->Contains(1, 1));
  EXPECT_EQ(*tree_->Count(), 0u);
  EXPECT_TRUE(tree_->Delete(1, 1).IsNotFound());
}

TEST_F(BPlusTreeTest, InsertAndPointLookup) {
  ASSERT_TRUE(tree_->Insert(10, 100).ok());
  ASSERT_TRUE(tree_->Insert(20, 200).ok());
  EXPECT_EQ(*tree_->GetFirst(10), 100u);
  EXPECT_EQ(*tree_->GetFirst(20), 200u);
  EXPECT_TRUE(tree_->GetFirst(15).status().IsNotFound());
  EXPECT_TRUE(tree_->Contains(10, 100));
  EXPECT_FALSE(tree_->Contains(10, 999));
}

TEST_F(BPlusTreeTest, DuplicatePairRejectedDuplicateKeyAllowed) {
  ASSERT_TRUE(tree_->Insert(5, 1).ok());
  EXPECT_TRUE(tree_->Insert(5, 1).IsAlreadyExists());
  ASSERT_TRUE(tree_->Insert(5, 2).ok());
  std::vector<uint64_t> vals;
  ASSERT_TRUE(tree_->ScanRange(5, 5, [&](uint64_t, uint64_t v) {
    vals.push_back(v);
    return true;
  }).ok());
  EXPECT_EQ(vals, (std::vector<uint64_t>{1, 2}));
}

TEST_F(BPlusTreeTest, SplitsUnderSequentialLoad) {
  constexpr uint64_t kN = 2000;  // forces multiple leaf + internal splits
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree_->Insert(i, i * 7).ok()) << i;
  }
  EXPECT_EQ(*tree_->Count(), kN);
  EXPECT_GT(tree_->stats().splits, 4u);
  EXPECT_GE(tree_->stats().height, 2u);
  for (uint64_t i = 0; i < kN; i += 97) {
    EXPECT_EQ(*tree_->GetFirst(i), i * 7);
  }
}

TEST_F(BPlusTreeTest, ReverseAndRandomInsertOrdersAgree) {
  // Property: final scan order is independent of insertion order.
  std::vector<uint64_t> keys(1500);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  Random rng(99);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Uniform(i)]);
  }
  for (uint64_t k : keys) ASSERT_TRUE(tree_->Insert(k, k + 1).ok());
  uint64_t expected = 0;
  ASSERT_TRUE(tree_->ScanRange(0, UINT64_MAX, [&](uint64_t k, uint64_t v) {
    EXPECT_EQ(k, expected);
    EXPECT_EQ(v, k + 1);
    ++expected;
    return true;
  }).ok());
  EXPECT_EQ(expected, keys.size());
}

TEST_F(BPlusTreeTest, RangeScanBoundsInclusive) {
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(tree_->Insert(i, i).ok());
  std::vector<uint64_t> got;
  ASSERT_TRUE(tree_->ScanRange(10, 20, [&](uint64_t k, uint64_t) {
    got.push_back(k);
    return true;
  }).ok());
  ASSERT_EQ(got.size(), 11u);
  EXPECT_EQ(got.front(), 10u);
  EXPECT_EQ(got.back(), 20u);
}

TEST_F(BPlusTreeTest, ScanEarlyStop) {
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(tree_->Insert(i, i).ok());
  int visits = 0;
  ASSERT_TRUE(tree_->ScanRange(0, UINT64_MAX, [&](uint64_t, uint64_t) {
    return ++visits < 5;
  }).ok());
  EXPECT_EQ(visits, 5);
}

TEST_F(BPlusTreeTest, DeleteRemovesOnlyTargetPair) {
  ASSERT_TRUE(tree_->Insert(1, 10).ok());
  ASSERT_TRUE(tree_->Insert(1, 11).ok());
  ASSERT_TRUE(tree_->Delete(1, 10).ok());
  EXPECT_FALSE(tree_->Contains(1, 10));
  EXPECT_TRUE(tree_->Contains(1, 11));
  EXPECT_TRUE(tree_->Delete(1, 10).IsNotFound());
}

TEST_F(BPlusTreeTest, MixedWorkloadMatchesReferenceModel) {
  // Property test: the tree behaves exactly like a std::set of pairs.
  Random rng(7);
  std::set<std::pair<uint64_t, uint64_t>> model;
  for (int step = 0; step < 20000; ++step) {
    uint64_t key = rng.Uniform(500);
    uint64_t val = rng.Uniform(8);
    if (rng.OneIn(3) && !model.empty()) {
      // Delete either an existing or a random pair.
      std::pair<uint64_t, uint64_t> target{key, val};
      bool exists = model.count(target) > 0;
      Status st = tree_->Delete(key, val);
      EXPECT_EQ(st.ok(), exists) << st.ToString();
      model.erase(target);
    } else {
      bool fresh = model.emplace(key, val).second;
      Status st = tree_->Insert(key, val);
      EXPECT_EQ(st.ok(), fresh) << st.ToString();
    }
  }
  // Full-order comparison.
  auto it = model.begin();
  uint64_t seen = 0;
  ASSERT_TRUE(tree_->ScanRange(0, UINT64_MAX, [&](uint64_t k, uint64_t v) {
    EXPECT_NE(it, model.end());
    if (it == model.end()) return false;
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    ++seen;
    return true;
  }).ok());
  EXPECT_EQ(seen, model.size());
}

TEST_F(BPlusTreeTest, LargeKeysNearLimits) {
  std::vector<uint64_t> keys = {0, 1, UINT64_MAX - 1, UINT64_MAX,
                                1ULL << 63, (1ULL << 63) - 1};
  for (uint64_t k : keys) ASSERT_TRUE(tree_->Insert(k, k ^ 0xFF).ok());
  for (uint64_t k : keys) EXPECT_EQ(*tree_->GetFirst(k), k ^ 0xFF);
}

}  // namespace
}  // namespace tendax

// Tests for structure elements, layout runs, notes and embedded objects.

#include <gtest/gtest.h>

#include "server_fixture.h"
#include "text/utf8.h"

namespace tendax {
namespace {

class DocumentModelTest : public ServerTest {};

TEST_F(DocumentModelTest, StructureTreeWithAnchors) {
  DocumentId doc = MakeDoc(alice_, "structured",
                           "Title\nIntro paragraph.\nBody paragraph.");
  DocumentModel* model = server_->documents();
  auto title = model->CreateElement(alice_, doc, ElementId(), "title", "t",
                                    0, 5);
  ASSERT_TRUE(title.ok());
  auto section = model->CreateElement(alice_, doc, ElementId(), "section",
                                      "intro", 6, 16);
  ASSERT_TRUE(section.ok());
  auto para = model->CreateElement(alice_, doc, *section, "paragraph", "p1",
                                   6, 16);
  ASSERT_TRUE(para.ok());

  auto tree = model->ElementTree(doc);
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->size(), 3u);
  // Top-level first (invalid parent sorts first), then children.
  EXPECT_EQ((*tree)[0].type, "title");
  EXPECT_EQ((*tree)[1].type, "section");
  EXPECT_EQ((*tree)[2].parent, *section);
  EXPECT_EQ(*(*tree)[0].start_pos, 0u);
  EXPECT_EQ(*(*tree)[0].end_pos, 4u);
}

TEST_F(DocumentModelTest, AnchorsShiftWithEdits) {
  DocumentId doc = MakeDoc(alice_, "shifting", "hello world");
  DocumentModel* model = server_->documents();
  auto elem = model->CreateElement(alice_, doc, ElementId(), "section",
                                   "world", 6, 5);
  ASSERT_TRUE(elem.ok());
  ASSERT_TRUE(server_->text()->InsertText(bob_, doc, 0, "<<< ").ok());
  auto tree = model->ElementTree(doc);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(*(*tree)[0].start_pos, 10u);
  EXPECT_EQ(*(*tree)[0].end_pos, 14u);
}

TEST_F(DocumentModelTest, RelabelAndDelete) {
  DocumentId doc = MakeDoc(alice_, "relabel", "content");
  DocumentModel* model = server_->documents();
  auto elem = model->CreateElement(alice_, doc, ElementId(), "section", "old",
                                   0, 7);
  ASSERT_TRUE(elem.ok());
  ASSERT_TRUE(model->RelabelElement(alice_, *elem, "new").ok());
  auto tree = model->ElementTree(doc);
  EXPECT_EQ((*tree)[0].label, "new");
  ASSERT_TRUE(model->DeleteElement(alice_, *elem).ok());
  tree = model->ElementTree(doc);
  EXPECT_TRUE(tree->empty());
  EXPECT_TRUE(model->DeleteElement(alice_, *elem).IsNotFound());
}

TEST_F(DocumentModelTest, LayoutSpansResolve) {
  DocumentId doc = MakeDoc(alice_, "styled", "plain bold italic");
  DocumentModel* model = server_->documents();
  ASSERT_TRUE(model->ApplyLayout(alice_, doc, 6, 4, "bold", "true").ok());
  ASSERT_TRUE(model->ApplyLayout(alice_, doc, 11, 6, "italic", "true").ok());

  auto spans = model->ComputeSpans(doc);
  ASSERT_TRUE(spans.ok());
  // Expect: [0,6) plain, [6,10) bold, [10,11) plain, [11,17) italic.
  ASSERT_EQ(spans->size(), 4u);
  EXPECT_TRUE((*spans)[0].attrs.empty());
  EXPECT_EQ((*spans)[1].attrs.at("bold"), "true");
  EXPECT_TRUE((*spans)[2].attrs.empty());
  EXPECT_EQ((*spans)[3].attrs.at("italic"), "true");
}

TEST_F(DocumentModelTest, OverlappingRunsLastWriterWins) {
  DocumentId doc = MakeDoc(alice_, "overlap", "abcdef");
  DocumentModel* model = server_->documents();
  ASSERT_TRUE(model->ApplyLayout(alice_, doc, 0, 6, "size", "10").ok());
  ASSERT_TRUE(model->ApplyLayout(bob_, doc, 2, 2, "size", "14").ok());
  auto spans = model->ComputeSpans(doc);
  ASSERT_TRUE(spans.ok());
  ASSERT_EQ(spans->size(), 3u);
  EXPECT_EQ((*spans)[0].attrs.at("size"), "10");
  EXPECT_EQ((*spans)[1].attrs.at("size"), "14");  // bob's later run wins
  EXPECT_EQ((*spans)[2].attrs.at("size"), "10");
}

TEST_F(DocumentModelTest, RenderMarkup) {
  DocumentId doc = MakeDoc(alice_, "markup", "say loud");
  ASSERT_TRUE(server_->documents()
                  ->ApplyLayout(alice_, doc, 4, 4, "bold", "true")
                  .ok());
  auto markup = server_->documents()->RenderMarkup(doc);
  ASSERT_TRUE(markup.ok());
  EXPECT_EQ(*markup, "say [bold=true]loud[/bold]");
}

TEST_F(DocumentModelTest, LayoutAnchorsTrackEdits) {
  DocumentId doc = MakeDoc(alice_, "track", "make this bold");
  ASSERT_TRUE(server_->documents()
                  ->ApplyLayout(alice_, doc, 10, 4, "bold", "true")
                  .ok());
  ASSERT_TRUE(server_->text()->InsertText(bob_, doc, 0, "please ").ok());
  auto markup = server_->documents()->RenderMarkup(doc);
  ASSERT_TRUE(markup.ok());
  EXPECT_EQ(*markup, "please make this [bold=true]bold[/bold]");
}

TEST_F(DocumentModelTest, NotesAnchorToCharacters) {
  DocumentId doc = MakeDoc(alice_, "notes", "review this sentence");
  auto note = server_->documents()->AddNote(bob_, doc, 7, "is 'this' right?");
  ASSERT_TRUE(note.ok());
  auto notes = server_->documents()->Notes(doc);
  ASSERT_TRUE(notes.ok());
  ASSERT_EQ(notes->size(), 1u);
  EXPECT_EQ((*notes)[0].author, bob_);
  EXPECT_EQ(*(*notes)[0].pos, 7u);
  // Anchor follows edits.
  ASSERT_TRUE(server_->text()->InsertText(alice_, doc, 0, "TODO ").ok());
  notes = server_->documents()->Notes(doc);
  EXPECT_EQ(*(*notes)[0].pos, 12u);
}

TEST_F(DocumentModelTest, ImageRoundTripWithAnchorInText) {
  DocumentId doc = MakeDoc(alice_, "illustrated", "before after");
  std::string png(10000, '\0');
  for (size_t i = 0; i < png.size(); ++i) {
    png[i] = static_cast<char>(i * 31 % 251);
  }
  auto obj = server_->documents()->EmbedImage(alice_, doc, 7, "figure.png",
                                              png);
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  // The anchor char sits in the text flow.
  auto info = server_->text()->CharAt(doc, 7);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->cp, DocumentModel::kObjectAnchorCp);
  // Blob round-trips exactly (chunked across records).
  auto back = server_->documents()->GetImage(*obj);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, png);
  auto objects = server_->documents()->Objects(doc);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].kind, "image");
  EXPECT_EQ(objects[0].name, "figure.png");
}

TEST_F(DocumentModelTest, TableCells) {
  DocumentId doc = MakeDoc(alice_, "tabular", "data:");
  auto table =
      server_->documents()->InsertTable(alice_, doc, 5, "results", 2, 3);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(server_->documents()->TableDims(*table)->first, 2u);
  ASSERT_TRUE(
      server_->documents()->SetCell(alice_, *table, 0, 0, "header").ok());
  ASSERT_TRUE(
      server_->documents()->SetCell(bob_, *table, 1, 2, "42").ok());
  EXPECT_EQ(*server_->documents()->GetCell(*table, 0, 0), "header");
  EXPECT_EQ(*server_->documents()->GetCell(*table, 1, 2), "42");
  EXPECT_EQ(*server_->documents()->GetCell(*table, 0, 1), "");  // empty cell
  EXPECT_TRUE(server_->documents()
                  ->SetCell(alice_, *table, 5, 0, "x")
                  .IsOutOfRange());
  // Overwrite.
  ASSERT_TRUE(
      server_->documents()->SetCell(bob_, *table, 0, 0, "HEADER").ok());
  EXPECT_EQ(*server_->documents()->GetCell(*table, 0, 0), "HEADER");
}

TEST_F(DocumentModelTest, EmptyDocumentPointAnchors) {
  DocumentId doc = MakeDoc(alice_, "empty", "");
  auto note = server_->documents()->AddNote(alice_, doc, 0, "doc-level note");
  ASSERT_TRUE(note.ok());
  auto notes = server_->documents()->Notes(doc);
  ASSERT_EQ(notes->size(), 1u);
  EXPECT_FALSE((*notes)[0].pos.has_value());  // no anchor char
}

}  // namespace
}  // namespace tendax

// End-to-end scenarios across every subsystem, including whole-server
// persistence across a simulated crash.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "server_fixture.h"

namespace tendax {
namespace {

class IntegrationTest : public ServerTest {};

// The paper's demo script in one test: collaborative editing with layout,
// undo, workflow, dynamic folders, lineage, search and mining all driven
// through editor clients.
TEST_F(IntegrationTest, WordProcessingLanParty) {
  auto alice_ed = server_->AttachEditor(alice_, "editor-windows");
  auto bob_ed = server_->AttachEditor(bob_, "editor-linux");
  ASSERT_TRUE(alice_ed.ok());
  ASSERT_TRUE(bob_ed.ok());

  // 1. Collaborative editing.
  auto doc = (*alice_ed)->CreateDocument("demo-paper.txt");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE((*bob_ed)->Open(*doc).ok());
  ASSERT_TRUE((*alice_ed)->Type(*doc, 0, "TeNDaX stores text natively. ").ok());
  ASSERT_TRUE((*bob_ed)->Type(*doc, 29, "Every keystroke is a transaction.")
                  .ok());
  EXPECT_EQ(*(*bob_ed)->Text(*doc),
            "TeNDaX stores text natively. Every keystroke is a transaction.");

  // Awareness: both sessions visible on the document.
  EXPECT_EQ(server_->sessions()->SessionsViewing(*doc).size(), 2u);
  ASSERT_TRUE((*alice_ed)->SetCursor(*doc, 10).ok());
  EXPECT_EQ(server_->sessions()->CursorsFor(*doc).size(), 1u);

  // 2. Collaborative layout.
  ASSERT_TRUE((*alice_ed)->ApplyLayout(*doc, 0, 6, "bold", "true").ok());
  auto markup = (*alice_ed)->RenderMarkup(*doc);
  ASSERT_TRUE(markup.ok());
  EXPECT_EQ(markup->substr(0, 23), "[bold=true]TeNDaX[/bold");

  // 3. Global undo: alice reverts bob's sentence.
  ASSERT_TRUE((*alice_ed)->UndoAnyone(*doc).ok());
  EXPECT_EQ(*(*alice_ed)->Text(*doc), "TeNDaX stores text natively. ");
  ASSERT_TRUE((*alice_ed)->RedoAnyone(*doc).ok());

  // 4. Business process inside the document.
  auto process = server_->workflows()->DefineProcess(alice_, *doc, "review");
  ASSERT_TRUE(process.ok());
  auto task = server_->workflows()->AddTask(alice_, *process, "verify",
                                            "check the claims",
                                            Assignee::User(bob_), 0, 6);
  ASSERT_TRUE(task.ok());
  ASSERT_EQ(server_->workflows()->Worklist(bob_).size(), 1u);
  ASSERT_TRUE(server_->workflows()->Complete(bob_, *task).ok());
  EXPECT_EQ(server_->workflows()->GetProcess(*process)->state, "finished");

  // 5. Dynamic folder picks the document up from bob's read.
  auto folder = server_->folders()->CreateDynamicFolder(
      "bob-read", FolderQuery::ReadBy(bob_, 0));
  ASSERT_TRUE(folder.ok());
  EXPECT_TRUE(server_->folders()->DynamicContents(*folder)->count(*doc));

  // 6. Lineage: bob quotes the document elsewhere.
  auto quote_doc = (*bob_ed)->CreateDocument("quotes.txt");
  ASSERT_TRUE(quote_doc.ok());
  auto clip = (*bob_ed)->CopyRange(*doc, 0, 6);
  ASSERT_TRUE(clip.ok());
  ASSERT_TRUE((*bob_ed)->PasteAt(*quote_doc, 0, *clip).ok());
  EXPECT_EQ(*server_->lineage()->CitationCount(*doc), 1u);

  // 7. Search with ranking.
  auto results = server_->search()->Search("keystroke", Ranking::kNewest);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].doc, *doc);

  // 8. Visual mining over the document space.
  auto points = server_->visual_miner()->Project(10);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points->size(), 2u);
}

TEST_F(IntegrationTest, EverySubsystemAuditsIntoMetadata) {
  DocumentId doc = MakeDoc(alice_, "audit-all", "content for everyone");
  ASSERT_TRUE(server_->documents()
                  ->ApplyLayout(alice_, doc, 0, 7, "font", "serif")
                  .ok());
  ASSERT_TRUE(server_->documents()
                  ->CreateElement(alice_, doc, ElementId(), "section", "s",
                                  0, 7)
                  .ok());
  ASSERT_TRUE(
      server_->accounts()->GrantUser(alice_, doc, bob_, Right::kRead).ok());
  ASSERT_TRUE(server_->workflows()->DefineProcess(alice_, doc, "p").ok());
  ASSERT_TRUE(server_->text()->RenameDocument(alice_, doc, "renamed").ok());

  std::set<AuditKind> kinds;
  ASSERT_TRUE(server_->meta()
                  ->VisitAudit([&](const AuditEntry& e) {
                    if (e.doc == doc) kinds.insert(e.kind);
                    return true;
                  })
                  .ok());
  EXPECT_TRUE(kinds.count(AuditKind::kCreate));
  EXPECT_TRUE(kinds.count(AuditKind::kEdit));
  EXPECT_TRUE(kinds.count(AuditKind::kLayout));
  EXPECT_TRUE(kinds.count(AuditKind::kStructure));
  EXPECT_TRUE(kinds.count(AuditKind::kSecurity));
  EXPECT_TRUE(kinds.count(AuditKind::kWorkflow));
  EXPECT_TRUE(kinds.count(AuditKind::kRename));
}

// Whole-server crash test: every subsystem's persisted state must survive
// a crash (dirty pages dropped, WAL replayed) and derived state must be
// rebuilt at reopen.
TEST(ServerRecoveryTest, FullServerStateSurvivesCrash) {
  auto disk = std::make_shared<InMemoryDiskManager>();
  auto log = std::make_shared<InMemoryLogStorage>();
  auto clock = std::make_shared<ManualClock>(1'000'000'000, 1000);

  UserId alice, bob;
  DocumentId doc, quote_doc;
  std::string expected_text;
  {
    TendaxOptions options;
    options.db.disk = disk;
    options.db.log_storage = log;
    options.db.clock = clock;
    auto server = TendaxServer::Open(std::move(options));
    ASSERT_TRUE(server.ok());
    alice = *(*server)->accounts()->CreateUser("alice");
    bob = *(*server)->accounts()->CreateUser("bob");

    doc = *(*server)->text()->CreateDocument(alice, "survivor.txt");
    ASSERT_TRUE((*server)
                    ->text()
                    ->InsertText(alice, doc, 0, "persistent collaborative text")
                    .ok());
    ASSERT_TRUE((*server)->text()->DeleteRange(alice, doc, 10, 14).ok());
    expected_text = *(*server)->text()->Text(doc);

    // Layout, structure, notes, security, workflow, folders, properties.
    ASSERT_TRUE((*server)
                    ->documents()
                    ->ApplyLayout(alice, doc, 0, 10, "bold", "true")
                    .ok());
    ASSERT_TRUE((*server)
                    ->documents()
                    ->AddNote(bob, doc, 3, "nice word")
                    .ok());
    ASSERT_TRUE((*server)
                    ->accounts()
                    ->GrantUser(alice, doc, bob, Right::kWrite, false)
                    .ok());
    auto process = (*server)->workflows()->DefineProcess(alice, doc, "wf");
    ASSERT_TRUE((*server)
                    ->workflows()
                    ->AddTask(alice, *process, "t1", "", Assignee::User(bob))
                    .ok());
    auto folder =
        (*server)->folders()->CreateFolder(alice, FolderId(), "keep");
    ASSERT_TRUE((*server)->folders()->PlaceDocument(alice, *folder, doc).ok());
    ASSERT_TRUE(
        (*server)->meta()->SetProperty(alice, doc, "k", "v").ok());
    ASSERT_TRUE((*server)->meta()->RecordRead(bob, doc).ok());

    quote_doc = *(*server)->text()->CreateDocument(bob, "quoter.txt");
    auto clip = (*server)->text()->Copy(bob, doc, 0, 10);
    ASSERT_TRUE((*server)->text()->Paste(bob, quote_doc, 0, *clip).ok());

    (*server)->db()->SimulateCrash();
  }

  TendaxOptions options;
  options.db.disk = disk;
  options.db.log_storage = log;
  options.db.clock = clock;
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Text and document metadata.
  EXPECT_EQ(*(*server)->text()->Text(doc), expected_text);
  EXPECT_EQ((*server)->text()->GetDocumentInfo(doc)->name, "survivor.txt");
  // Users and ACL.
  EXPECT_EQ(*(*server)->accounts()->FindUser("alice"), alice);
  EXPECT_FALSE(*(*server)->accounts()->Check(bob, doc, Right::kWrite));
  // Layout resolves against the recovered text.
  auto markup = (*server)->documents()->RenderMarkup(doc);
  ASSERT_TRUE(markup.ok());
  EXPECT_NE(markup->find("[bold=true]"), std::string::npos);
  // Notes.
  EXPECT_EQ((*server)->documents()->Notes(doc)->size(), 1u);
  // Workflow.
  auto procs = (*server)->workflows()->ProcessesIn(doc);
  ASSERT_EQ(procs.size(), 1u);
  EXPECT_EQ((*server)->workflows()->Worklist(bob).size(), 1u);
  // Folders and properties.
  auto placements = (*server)->folders()->PlacementsOf(doc);
  EXPECT_EQ(placements.size(), 1u);
  EXPECT_EQ(*(*server)->meta()->GetProperty(doc, "k"), "v");
  // Audit aggregates (readers) rebuilt from the persisted trail.
  EXPECT_TRUE((*server)->meta()->Meta(doc).readers.count(bob));
  // Lineage rebuilt from character provenance.
  EXPECT_EQ(*(*server)->lineage()->CitationCount(doc), 1u);
  // Search index rebuilt (both the original and the pasted quote match).
  auto results = (*server)->search()->Search("persistent");
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 2u);
  bool found_original = false;
  for (const SearchResult& r : *results) {
    if (r.doc == doc) found_original = true;
  }
  EXPECT_TRUE(found_original);
}

TEST(ServerRecoveryTest, FileBackedServerReopens) {
  auto dir = std::filesystem::temp_directory_path() / "tendax_it";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = (dir / "tendax.db").string();

  DocumentId doc;
  {
    TendaxOptions options;
    options.db.path = path;
    auto server = TendaxServer::Open(std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    auto alice = (*server)->accounts()->CreateUser("alice");
    doc = *(*server)->text()->CreateDocument(*alice, "on-disk");
    ASSERT_TRUE(
        (*server)->text()->InsertText(*alice, doc, 0, "bytes on disk").ok());
    ASSERT_TRUE((*server)->Checkpoint().ok());
  }
  TendaxOptions options;
  options.db.path = path;
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_EQ(*(*server)->text()->Text(doc), "bytes on disk");
  std::filesystem::remove_all(dir);
}

TEST_F(IntegrationTest, ConcurrentMixedWorkloadStaysConsistent) {
  DocumentId shared = MakeDoc(alice_, "shared-doc", "seed text here");
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;

  // Two writers, one reader, one folder/searcher.
  threads.emplace_back([&] {
    for (int i = 0; i < 15; ++i) {
      if (!server_->text()->InsertText(alice_, shared, 0, "a").ok()) {
        ++failures;
      }
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 15; ++i) {
      auto len = server_->text()->Length(shared);
      if (!len.ok()) {
        ++failures;
        continue;
      }
      if (!server_->text()
               ->InsertText(bob_, shared, static_cast<size_t>(*len), "b")
               .ok()) {
        ++failures;
      }
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 30; ++i) {
      if (!server_->text()->Text(shared).ok()) ++failures;
      if (!server_->lineage()->ForDocument(shared).ok()) ++failures;
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 10; ++i) {
      if (!server_->meta()->RecordRead(bob_, shared).ok()) ++failures;
      if (!server_->search()->Search("seed").ok()) ++failures;
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(*server_->text()->Length(shared), 14u + 30u);

  // The cache agrees with a cold reload from the database.
  std::string cached = *server_->text()->Text(shared);
  server_->text()->InvalidateHandle(shared);
  EXPECT_EQ(*server_->text()->Text(shared), cached);
}

}  // namespace
}  // namespace tendax

// Tests for the core TeNDaX contribution: text as a native database type.

#include <gtest/gtest.h>

#include <thread>

#include "text/char_list.h"
#include "text/text_store.h"
#include "text/utf8.h"

namespace tendax {
namespace {

// ---------- UTF-8 ----------

TEST(Utf8Test, RoundTripAsciiAndMultibyte) {
  std::string text = "a\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80z";  // aé€😀z
  auto cps = DecodeUtf8(text);
  ASSERT_EQ(cps.size(), 5u);
  EXPECT_EQ(cps[0], 'a');
  EXPECT_EQ(cps[1], 0xE9u);
  EXPECT_EQ(cps[2], 0x20ACu);
  EXPECT_EQ(cps[3], 0x1F600u);
  EXPECT_EQ(cps[4], 'z');
  EXPECT_EQ(EncodeUtf8(cps), text);
}

TEST(Utf8Test, InvalidBytesBecomeReplacement) {
  std::string bad = "a\xFFz";
  auto cps = DecodeUtf8(bad);
  ASSERT_EQ(cps.size(), 3u);
  EXPECT_EQ(cps[1], 0xFFFDu);
  // Truncated multi-byte at end.
  auto cps2 = DecodeUtf8("ab\xE2\x82");
  ASSERT_EQ(cps2.size(), 3u);
  EXPECT_EQ(cps2[2], 0xFFFDu);
  // Overlong encoding rejected.
  auto cps3 = DecodeUtf8("\xC0\x80");
  EXPECT_EQ(cps3[0], 0xFFFDu);
}

// ---------- CharList ----------

TEST(CharListTest, InsertEraseAndText) {
  CharList list;
  EXPECT_TRUE(list.empty());
  list.Insert(0, {1, 'b'});
  list.Insert(0, {2, 'a'});
  list.Insert(2, {3, 'c'});
  EXPECT_EQ(list.Text(), "abc");
  EXPECT_EQ(list.At(1).id, 1u);
  list.Erase(1);
  EXPECT_EQ(list.Text(), "ac");
  EXPECT_EQ(list.size(), 2u);
}

TEST(CharListTest, FindById) {
  CharList list;
  for (uint32_t i = 0; i < 100; ++i) {
    list.Insert(i, {i + 1, 'a' + (i % 26)});
  }
  EXPECT_EQ(*list.FindById(1), 0u);
  EXPECT_EQ(*list.FindById(50), 49u);
  EXPECT_EQ(*list.FindById(100), 99u);
  EXPECT_FALSE(list.FindById(999).has_value());
}

TEST(CharListTest, BlockSplitsPreserveOrder) {
  CharList list;
  const size_t n = CharList::kBlockSize * 5 + 37;
  for (size_t i = 0; i < n; ++i) {
    list.Insert(list.size(), {i + 1, static_cast<uint32_t>('a' + (i % 26))});
  }
  EXPECT_EQ(list.size(), n);
  for (size_t i = 0; i < n; i += 977) {
    EXPECT_EQ(list.At(i).id, i + 1);
  }
  // Middle insert after splits.
  list.Insert(n / 2, {999999, 'X'});
  EXPECT_EQ(list.At(n / 2).id, 999999u);
  EXPECT_EQ(list.size(), n + 1);
}

TEST(CharListTest, EraseRangeAcrossBlocks) {
  CharList list;
  const size_t n = CharList::kBlockSize * 3;
  for (size_t i = 0; i < n; ++i) {
    list.Insert(list.size(), {i + 1, 'x'});
  }
  list.EraseRange(100, CharList::kBlockSize * 2);
  EXPECT_EQ(list.size(), n - CharList::kBlockSize * 2);
  EXPECT_EQ(list.At(99).id, 100u);
  EXPECT_EQ(list.At(100).id, 100u + CharList::kBlockSize * 2 + 1);
}

TEST(CharListTest, TextRangeWindows) {
  CharList list;
  std::string alphabet = "abcdefghijklmnopqrstuvwxyz";
  for (size_t i = 0; i < alphabet.size(); ++i) {
    list.Insert(i, {i + 1, static_cast<uint32_t>(alphabet[i])});
  }
  EXPECT_EQ(list.TextRange(0, 3), "abc");
  EXPECT_EQ(list.TextRange(23, 3), "xyz");
  EXPECT_EQ(list.TextRange(5, 0), "");
}

// ---------- TextStore ----------

class TextStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.buffer_pool_pages = 512;
    options.clock = std::make_shared<ManualClock>();
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    store_ = std::make_unique<TextStore>(db_.get());
    ASSERT_TRUE(store_->Init().ok());
    auto doc = store_->CreateDocument(alice_, "draft.txt");
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    doc_ = *doc;
  }

  UserId alice_{1};
  UserId bob_{2};
  std::unique_ptr<Database> db_;
  std::unique_ptr<TextStore> store_;
  DocumentId doc_;
};

TEST_F(TextStoreTest, EmptyDocument) {
  EXPECT_EQ(*store_->Text(doc_), "");
  EXPECT_EQ(*store_->Length(doc_), 0u);
  EXPECT_EQ(*store_->CurrentVersion(doc_), 0u);
}

TEST_F(TextStoreTest, TypeAndRead) {
  auto r = store_->InsertText(alice_, doc_, 0, "hello world");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->version, 1u);
  EXPECT_EQ(r->chars.size(), 11u);
  EXPECT_EQ(*store_->Text(doc_), "hello world");
  EXPECT_EQ(*store_->Length(doc_), 11u);
}

TEST_F(TextStoreTest, InsertAtPositions) {
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 0, "ad").ok());
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 1, "bc").ok());
  EXPECT_EQ(*store_->Text(doc_), "abcd");
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 0, ">>").ok());
  EXPECT_EQ(*store_->Text(doc_), ">>abcd");
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 6, "<<").ok());
  EXPECT_EQ(*store_->Text(doc_), ">>abcd<<");
}

TEST_F(TextStoreTest, InsertBeyondEndRejected) {
  auto r = store_->InsertText(alice_, doc_, 5, "x");
  EXPECT_TRUE(r.status().IsOutOfRange());
  EXPECT_EQ(*store_->CurrentVersion(doc_), 0u);  // nothing committed
}

TEST_F(TextStoreTest, DeleteRange) {
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 0, "hello cruel world").ok());
  auto r = store_->DeleteRange(alice_, doc_, 5, 6);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*store_->Text(doc_), "hello world");
  EXPECT_EQ(*store_->Length(doc_), 11u);
  // Deleting past the end fails and changes nothing.
  EXPECT_TRUE(store_->DeleteRange(alice_, doc_, 8, 10).status()
                  .IsOutOfRange());
  EXPECT_EQ(*store_->Text(doc_), "hello world");
}

TEST_F(TextStoreTest, MultibyteTextSurvives) {
  std::string text = "gr\xC3\xBC\xC3\x9F dich \xF0\x9F\x98\x80";
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 0, text).ok());
  EXPECT_EQ(*store_->Text(doc_), text);
  // Position arithmetic is in code points, not bytes.
  EXPECT_EQ(*store_->Length(doc_), DecodeUtf8(text).size());
}

TEST_F(TextStoreTest, CharLevelMetadataCaptured) {
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 0, "ab").ok());
  ASSERT_TRUE(store_->InsertText(bob_, doc_, 2, "cd").ok());
  auto a = store_->CharAt(doc_, 0);
  auto c = store_->CharAt(doc_, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->author, alice_);
  EXPECT_EQ(c->author, bob_);
  EXPECT_EQ(a->inserted_version, 1u);
  EXPECT_EQ(c->inserted_version, 2u);
  EXPECT_EQ(a->deleted_version, 0u);
  EXPECT_GT(a->created, 0u);
  EXPECT_FALSE(a->src_doc.valid());  // typed, not pasted
}

TEST_F(TextStoreTest, DeletedCharsKeepTombstoneMetadata) {
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 0, "abc").ok());
  auto del = store_->DeleteRange(bob_, doc_, 1, 1);
  ASSERT_TRUE(del.ok());
  auto info = store_->GetChar(doc_, del->chars[0]);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->deleted_version, 2u);
  EXPECT_EQ(info->deleted_by, bob_);
  EXPECT_EQ(info->cp, static_cast<uint32_t>('b'));
}

TEST_F(TextStoreTest, CopyPasteRecordsProvenance) {
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 0, "source text").ok());
  auto other = store_->CreateDocument(bob_, "target.txt");
  ASSERT_TRUE(other.ok());

  auto copied = store_->Copy(bob_, doc_, 0, 6);
  ASSERT_TRUE(copied.ok());
  ASSERT_EQ(copied->size(), 6u);
  auto pasted = store_->Paste(bob_, *other, 0, *copied);
  ASSERT_TRUE(pasted.ok());
  EXPECT_EQ(*store_->Text(*other), "source");

  auto info = store_->CharAt(*other, 0);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->src_doc, doc_);
  EXPECT_TRUE(info->src_char.valid());
  // The source points at the original character in doc_.
  auto original = store_->GetChar(doc_, info->src_char);
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(original->cp, static_cast<uint32_t>('s'));
}

TEST_F(TextStoreTest, TransitiveCopyKeepsOriginalSource) {
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 0, "xy").ok());
  auto doc2 = store_->CreateDocument(bob_, "two");
  auto doc3 = store_->CreateDocument(bob_, "three");
  auto c1 = store_->Copy(bob_, doc_, 0, 2);
  ASSERT_TRUE(store_->Paste(bob_, *doc2, 0, *c1).ok());
  auto c2 = store_->Copy(bob_, *doc2, 0, 2);
  ASSERT_TRUE(store_->Paste(bob_, *doc3, 0, *c2).ok());
  // doc3's chars point at doc_ (the origin), not doc2.
  auto info = store_->CharAt(*doc3, 0);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->src_doc, doc_);
}

TEST_F(TextStoreTest, ExternalSourceTracked) {
  ASSERT_TRUE(store_
                  ->InsertText(alice_, doc_, 0, "imported",
                               "file://report.doc")
                  .ok());
  auto info = store_->CharAt(doc_, 3);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->src_external, "file://report.doc");
}

TEST_F(TextStoreTest, TimeTravelReadsEveryVersion) {
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 0, "abc").ok());   // v1
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 3, "def").ok());   // v2
  ASSERT_TRUE(store_->DeleteRange(alice_, doc_, 1, 2).ok());      // v3: a def
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 1, "X").ok());     // v4

  EXPECT_EQ(*store_->TextAtVersion(doc_, 0), "");
  EXPECT_EQ(*store_->TextAtVersion(doc_, 1), "abc");
  EXPECT_EQ(*store_->TextAtVersion(doc_, 2), "abcdef");
  EXPECT_EQ(*store_->TextAtVersion(doc_, 3), "adef");
  EXPECT_EQ(*store_->TextAtVersion(doc_, 4), "aXdef");
  EXPECT_EQ(*store_->TextAtVersion(doc_, 99), *store_->Text(doc_));
}

TEST_F(TextStoreTest, DeleteCharsAndResurrect) {
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 0, "undo me").ok());
  auto del = store_->DeleteRange(alice_, doc_, 0, 4);
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(*store_->Text(doc_), " me");
  auto res = store_->ResurrectChars(alice_, doc_, del->chars);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*store_->Text(doc_), "undo me");
  // Resurrected chars are live again at their original positions.
  auto info = store_->CharAt(doc_, 0);
  EXPECT_EQ(info->deleted_version, 0u);
}

TEST_F(TextStoreTest, DeleteCharsById) {
  auto ins = store_->InsertText(alice_, doc_, 0, "abcdef");
  ASSERT_TRUE(ins.ok());
  // Delete chars 'b', 'd', 'f' by id (an undo of three scattered inserts).
  std::vector<CharId> victims = {ins->chars[1], ins->chars[3], ins->chars[5]};
  auto del = store_->DeleteChars(alice_, doc_, victims);
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(*store_->Text(doc_), "ace");
  // Deleting the same ids again is a no-op (already tombstoned).
  auto again = store_->DeleteChars(alice_, doc_, victims);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->chars.empty());
  EXPECT_EQ(*store_->Text(doc_), "ace");
}

TEST_F(TextStoreTest, TextRangeAndRangeInfo) {
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 0, "0123456789").ok());
  EXPECT_EQ(*store_->TextRange(doc_, 2, 5), "23456");
  auto info = store_->RangeInfo(doc_, 2, 3);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->size(), 3u);
  EXPECT_EQ((*info)[0].cp, static_cast<uint32_t>('2'));
  EXPECT_TRUE(store_->TextRange(doc_, 8, 5).status().IsOutOfRange());
}

TEST_F(TextStoreTest, DocumentInfoAndRename) {
  auto info = store_->GetDocumentInfo(doc_);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->name, "draft.txt");
  EXPECT_EQ(info->creator, alice_);
  EXPECT_EQ(info->state, "draft");

  ASSERT_TRUE(store_->RenameDocument(alice_, doc_, "final.txt").ok());
  ASSERT_TRUE(store_->SetDocumentState(alice_, doc_, "published").ok());
  info = store_->GetDocumentInfo(doc_);
  EXPECT_EQ(info->name, "final.txt");
  EXPECT_EQ(info->state, "published");
  EXPECT_EQ(*store_->FindDocumentByName("final.txt"), doc_);
  EXPECT_TRUE(store_->FindDocumentByName("draft.txt").status().IsNotFound());
}

TEST_F(TextStoreTest, ListDocuments) {
  auto d2 = store_->CreateDocument(bob_, "b");
  auto d3 = store_->CreateDocument(bob_, "c");
  ASSERT_TRUE(d2.ok());
  ASSERT_TRUE(d3.ok());
  auto docs = store_->ListDocuments();
  EXPECT_EQ(docs.size(), 3u);
  EXPECT_EQ(docs[0], doc_);
}

TEST_F(TextStoreTest, VersionsAdvancePerEditTransaction) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store_->InsertText(alice_, doc_, 0, "x").ok());
  }
  EXPECT_EQ(*store_->CurrentVersion(doc_), 5u);
}

TEST_F(TextStoreTest, HandleReloadMatchesCache) {
  ASSERT_TRUE(store_->InsertText(alice_, doc_, 0, "persistent text").ok());
  ASSERT_TRUE(store_->DeleteRange(alice_, doc_, 4, 6).ok());
  std::string before = *store_->Text(doc_);
  store_->InvalidateHandle(doc_);
  EXPECT_EQ(*store_->Text(doc_), before);
  EXPECT_EQ(*store_->Length(doc_), before.size());
}

TEST_F(TextStoreTest, ConcurrentEditorsOnSameDocumentSerialize) {
  constexpr int kThreads = 4;
  constexpr int kEditsPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      UserId user(100 + t);
      for (int i = 0; i < kEditsPerThread; ++i) {
        auto r = store_->InsertText(user, doc_, 0, "a");
        if (!r.ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(*store_->Length(doc_),
            static_cast<uint64_t>(kThreads * kEditsPerThread));
  EXPECT_EQ(*store_->CurrentVersion(doc_),
            static_cast<uint64_t>(kThreads * kEditsPerThread));
}

TEST_F(TextStoreTest, ConcurrentEditorsOnDistinctDocuments) {
  constexpr int kThreads = 4;
  constexpr int kEdits = 30;
  std::vector<DocumentId> docs;
  for (int t = 0; t < kThreads; ++t) {
    auto d = store_->CreateDocument(UserId(200 + t),
                                    "doc" + std::to_string(t));
    ASSERT_TRUE(d.ok());
    docs.push_back(*d);
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEdits; ++i) {
        auto r = store_->InsertText(UserId(200 + t), docs[t],
                                    i, std::string(1, 'a' + t));
        if (!r.ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(*store_->Text(docs[t]), std::string(kEdits, 'a' + t));
  }
}

// ---------- persistence across crash ----------

TEST(TextStoreRecoveryTest, DocumentsSurviveCrash) {
  auto disk = std::make_shared<InMemoryDiskManager>();
  auto log = std::make_shared<InMemoryLogStorage>();
  DocumentId doc;
  std::string expected;
  {
    DatabaseOptions options;
    options.disk = disk;
    options.log_storage = log;
    options.buffer_pool_pages = 256;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    TextStore store(db->get());
    ASSERT_TRUE(store.Init().ok());
    auto d = store.CreateDocument(UserId(1), "crashdoc");
    ASSERT_TRUE(d.ok());
    doc = *d;
    ASSERT_TRUE(store.InsertText(UserId(1), doc, 0, "hello world").ok());
    ASSERT_TRUE(store.DeleteRange(UserId(1), doc, 0, 6).ok());
    ASSERT_TRUE(store.InsertText(UserId(1), doc, 5, "!").ok());
    expected = *store.Text(doc);
    (*db)->SimulateCrash();
  }
  DatabaseOptions options;
  options.disk = disk;
  options.log_storage = log;
  options.buffer_pool_pages = 256;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  TextStore store(db->get());
  ASSERT_TRUE(store.Init().ok());
  EXPECT_EQ(*store.Text(doc), expected);
  EXPECT_EQ(expected, "world!");
  // Metadata survived too.
  auto info = store.GetDocumentInfo(doc);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->name, "crashdoc");
  EXPECT_EQ(info->version, 3u);
}

}  // namespace
}  // namespace tendax

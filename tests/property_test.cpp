// Property-based tests: randomized operation sequences checked against
// simple reference models (a std::string for documents, a std::map for
// pages), parameterized over seeds.

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "core/tendax.h"
#include "db/slotted_page.h"
#include "text/utf8.h"
#include "workload/generators.h"

namespace tendax {
namespace {

// ---------- text editing vs a reference string ----------

class TextEditingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TextEditingProperty, RandomEditsMatchReferenceString) {
  TendaxOptions options;
  options.db.buffer_pool_pages = 4096;
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok());
  UserId user = *(*server)->accounts()->CreateUser("prop");
  DocumentId doc = *(*server)->text()->CreateDocument(user, "prop-doc");

  Random rng(GetParam());
  std::string reference;  // ASCII model (positions == bytes)
  std::vector<std::string> history = {""};

  for (int step = 0; step < 400; ++step) {
    if (reference.empty() || rng.NextDouble() < 0.7) {
      size_t pos = rng.Uniform(reference.size() + 1);
      std::string text = rng.Word(1, 6);
      ASSERT_TRUE((*server)->text()->InsertText(user, doc, pos, text).ok());
      reference.insert(pos, text);
    } else {
      size_t pos = rng.Uniform(reference.size());
      size_t len =
          std::min<size_t>(1 + rng.Uniform(5), reference.size() - pos);
      ASSERT_TRUE((*server)->text()->DeleteRange(user, doc, pos, len).ok());
      reference.erase(pos, len);
    }
    history.push_back(reference);
    if (step % 50 == 0) {
      ASSERT_EQ(*(*server)->text()->Text(doc), reference) << "step " << step;
    }
  }
  EXPECT_EQ(*(*server)->text()->Text(doc), reference);

  // The cache is just a cache: a cold reload from the records agrees.
  (*server)->text()->InvalidateHandle(doc);
  EXPECT_EQ(*(*server)->text()->Text(doc), reference);

  // Time travel reproduces every recorded version exactly.
  for (size_t v = 0; v < history.size(); v += 37) {
    EXPECT_EQ(*(*server)->text()->TextAtVersion(doc, v), history[v])
        << "version " << v;
  }
  EXPECT_EQ(*(*server)->text()->Length(doc), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextEditingProperty,
                         ::testing::Values(1, 7, 42, 1234, 99999));

// ---------- undo/redo round trips ----------

class UndoProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UndoProperty, UndoAllThenRedoAllRestoresText) {
  auto server = TendaxServer::Open({});
  ASSERT_TRUE(server.ok());
  UserId user = *(*server)->accounts()->CreateUser("u");
  auto editor = *(*server)->AttachEditor(user, "prop");
  DocumentId doc = *editor->CreateDocument("undo-prop");

  Random rng(GetParam());
  size_t len = 0;
  int ops = 0;
  for (int step = 0; step < 60; ++step) {
    if (len == 0 || rng.NextDouble() < 0.75) {
      size_t pos = rng.Uniform(len + 1);
      std::string text = rng.Word(1, 5);
      ASSERT_TRUE(editor->Type(doc, pos, text).ok());
      len += text.size();
    } else {
      size_t pos = rng.Uniform(len);
      size_t delete_len = std::min<size_t>(1 + rng.Uniform(4), len - pos);
      ASSERT_TRUE(editor->Erase(doc, pos, delete_len).ok());
      len -= delete_len;
    }
    ++ops;
  }
  std::string full = *editor->Text(doc);

  // Undo everything (global order), text must return to empty.
  for (int i = 0; i < ops; ++i) {
    ASSERT_TRUE(editor->UndoAnyone(doc).ok()) << "undo " << i;
  }
  EXPECT_EQ(*editor->Text(doc), "");
  // Redo everything, text must return to the final state.
  for (int i = 0; i < ops; ++i) {
    ASSERT_TRUE(editor->RedoAnyone(doc).ok()) << "redo " << i;
  }
  EXPECT_EQ(*editor->Text(doc), full);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UndoProperty,
                         ::testing::Values(3, 17, 2026));

// ---------- crash recovery: committed state always survives ----------

class RecoveryProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoveryProperty, CommittedEditsSurviveCrashAtAnyPoint) {
  auto disk = std::make_shared<InMemoryDiskManager>();
  auto log = std::make_shared<InMemoryLogStorage>();
  Random rng(GetParam());

  DocumentId doc;
  std::string reference;
  UserId user;
  // Three sessions, each ending in a crash at a random point.
  for (int session = 0; session < 3; ++session) {
    TendaxOptions options;
    options.db.disk = disk;
    options.db.log_storage = log;
    auto server = TendaxServer::Open(std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    if (session == 0) {
      user = *(*server)->accounts()->CreateUser("crashy");
      doc = *(*server)->text()->CreateDocument(user, "crash-prop");
    } else {
      // Everything committed before the last crash must still be there.
      ASSERT_EQ(*(*server)->text()->Text(doc), reference)
          << "session " << session;
    }
    int edits = 5 + static_cast<int>(rng.Uniform(25));
    for (int i = 0; i < edits; ++i) {
      if (reference.empty() || rng.NextDouble() < 0.7) {
        size_t pos = rng.Uniform(reference.size() + 1);
        std::string text = rng.Word(1, 5);
        ASSERT_TRUE(
            (*server)->text()->InsertText(user, doc, pos, text).ok());
        reference.insert(pos, text);
      } else {
        size_t pos = rng.Uniform(reference.size());
        size_t len =
            std::min<size_t>(1 + rng.Uniform(4), reference.size() - pos);
        ASSERT_TRUE((*server)->text()->DeleteRange(user, doc, pos, len).ok());
        reference.erase(pos, len);
      }
    }
    (*server)->db()->SimulateCrash();
  }
  // Final verification after the last crash.
  TendaxOptions options;
  options.db.disk = disk;
  options.db.log_storage = log;
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(*(*server)->text()->Text(doc), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryProperty,
                         ::testing::Values(11, 222, 3333));

// ---------- slotted page vs a reference map ----------

class SlottedPageProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlottedPageProperty, RandomOpsMatchReferenceMap) {
  Page page;
  SlottedPage sp(&page);
  sp.Init(1);
  Random rng(GetParam());
  std::map<SlotId, std::string> model;

  for (int step = 0; step < 3000; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      std::string data = rng.Word(1, 120);
      auto slot = sp.Insert(data);
      if (slot.ok()) {
        ASSERT_EQ(model.count(*slot), 0u);
        model[*slot] = data;
      } else {
        ASSERT_TRUE(slot.status().IsOutOfRange());  // page genuinely full
      }
    } else if (dice < 0.75 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(sp.Delete(it->first).ok());
      model.erase(it);
    } else if (!model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      std::string data = rng.Word(1, 120);
      Status st = sp.Update(it->first, data);
      if (st.ok()) {
        it->second = data;
      } else {
        ASSERT_TRUE(st.IsOutOfRange());
        model.erase(it);  // Update frees the slot when it cannot fit
      }
    }
    if (step % 250 == 0) {
      for (const auto& [slot, data] : model) {
        auto got = sp.Get(slot);
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(got->ToString(), data);
      }
    }
  }
  // Final full comparison including liveness of unknown slots.
  for (SlotId s = 0; s < sp.num_slots(); ++s) {
    ASSERT_EQ(sp.IsLive(s), model.count(s) > 0) << "slot " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlottedPageProperty,
                         ::testing::Values(5, 55, 555));

// ---------- concurrent editing converges ----------

class ConcurrencyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConcurrencyProperty, ConcurrentTracesPreserveEveryCommit) {
  auto server = TendaxServer::Open({});
  ASSERT_TRUE(server.ok());
  UserId creator = *(*server)->accounts()->CreateUser("creator");
  DocumentId doc = *(*server)->text()->CreateDocument(creator, "chaos");

  constexpr int kThreads = 4;
  constexpr int kOps = 40;
  std::atomic<long> inserted{0}, deleted{0}, failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(GetParam() * 31 + t);
      UserId user(creator.value);  // same user, different threads
      for (int i = 0; i < kOps; ++i) {
        auto len_res = (*server)->text()->Length(doc);
        if (!len_res.ok()) {
          ++failed;
          continue;
        }
        size_t len = static_cast<size_t>(*len_res);
        if (len < 4 || rng.NextDouble() < 0.7) {
          auto r = (*server)->text()->InsertText(
              user, doc, rng.Uniform(len + 1), "ab");
          if (r.ok()) {
            inserted += 2;
          } else if (!r.status().IsOutOfRange()) {
            ++failed;
          }
        } else {
          // Length may have shrunk since we read it; OutOfRange is an
          // acceptable (non-lost) outcome under concurrency.
          auto r = (*server)->text()->DeleteRange(user, doc,
                                                  rng.Uniform(len - 1), 1);
          if (r.ok()) {
            deleted += 1;
          } else if (!r.status().IsOutOfRange()) {
            ++failed;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failed.load(), 0);
  // Conservation: final length equals successful inserts minus deletes.
  EXPECT_EQ(*(*server)->text()->Length(doc),
            static_cast<uint64_t>(inserted.load() - deleted.load()));
  // And the database agrees with the cache after a cold reload.
  std::string cached = *(*server)->text()->Text(doc);
  (*server)->text()->InvalidateHandle(doc);
  EXPECT_EQ(*(*server)->text()->Text(doc), cached);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrencyProperty,
                         ::testing::Values(2, 13));

}  // namespace
}  // namespace tendax

// Unit tests for the util layer: Status/Result, Slice, coding, ids, clocks.

#include <gtest/gtest.h>

#include "util/clock.h"
#include "util/coding.h"
#include "util/ids.h"
#include "util/random.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace tendax {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status st = Status::NotFound("missing doc");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: missing doc");
}

TEST(StatusTest, RetryableClassification) {
  EXPECT_TRUE(Status::Conflict("x").IsRetryable());
  EXPECT_TRUE(Status::Deadlock("x").IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::Corruption("x").IsRetryable());
}

TEST(StatusTest, EveryCodeHasAName) {
  // Coverage runs to kStatusCodeMax so adding an enum value without a
  // StatusCodeName entry fails here instead of shipping "Unknown".
  for (int c = 0; c <= static_cast<int>(kStatusCodeMax); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown")
        << "StatusCode " << c << " has no name";
  }
  EXPECT_STREQ(StatusCodeName(static_cast<StatusCode>(
                   static_cast<int>(kStatusCodeMax) + 1)),
               "Unknown");
}

TEST(StatusTest, OverloadCodes) {
  Status expired = Status::DeadlineExceeded("too late");
  EXPECT_TRUE(expired.IsDeadlineExceeded());
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(expired.ToString(), "DeadlineExceeded: too late");

  Status shed = Status::Unavailable("queue full");
  EXPECT_TRUE(shed.IsUnavailable());
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(shed.ToString(), "Unavailable: queue full");

  // Overload refusals are not transaction-retryable: the caller must wait
  // (retry-after / breaker), not immediately re-run the transaction.
  EXPECT_FALSE(expired.IsRetryable());
  EXPECT_FALSE(shed.IsRetryable());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(SliceTest, BasicOps) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
  EXPECT_TRUE(Slice("abc").starts_with(Slice("ab")));
  EXPECT_FALSE(Slice("abc").starts_with(Slice("bc")));
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abcd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  Slice in(buf);
  uint16_t a;
  uint32_t b;
  uint64_t c;
  ASSERT_TRUE(GetFixed16(&in, &a));
  ASSERT_TRUE(GetFixed32(&in, &b));
  ASSERT_TRUE(GetFixed64(&in, &c));
  EXPECT_EQ(a, 0xBEEF);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, 0x0123456789ABCDEFULL);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTripSweep) {
  // Property: Put/Get are inverses across magnitudes incl. boundaries.
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  UINT32_MAX, (1ULL << 56) - 1, UINT64_MAX};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
    Slice in(buf);
    uint64_t out;
    ASSERT_TRUE(GetVarint64(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, UINT64_MAX);
  buf.resize(buf.size() - 1);
  Slice in(buf);
  uint64_t out;
  EXPECT_FALSE(GetVarint64(&in, &out));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("alpha"));
  PutLengthPrefixed(&buf, Slice(""));
  PutLengthPrefixed(&buf, Slice("bravo"));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a.ToString(), "alpha");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.ToString(), "bravo");
}

TEST(CodingTest, LengthPrefixedTruncatedFails) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("payload"));
  buf.resize(buf.size() - 3);
  Slice in(buf);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

TEST(IdsTest, StrongTypingAndValidity) {
  DocumentId d(7);
  EXPECT_TRUE(d.valid());
  EXPECT_FALSE(DocumentId().valid());
  EXPECT_EQ(d.ToString(), "doc:7");
  EXPECT_EQ(DocumentId(7), DocumentId(7));
  EXPECT_LT(DocumentId(3), DocumentId(9));
  // Different tags are different types: hash usable in containers.
  std::hash<DocumentId> h;
  EXPECT_EQ(h(DocumentId(7)), h(DocumentId(7)));
}

TEST(ClockTest, ManualClockMonotoneAndSettable) {
  ManualClock clock(1000, 1);
  Timestamp a = clock.NowMicros();
  Timestamp b = clock.NowMicros();
  EXPECT_LT(a, b);
  clock.Advance(500);
  EXPECT_GE(clock.NowMicros(), a + 500);
  clock.Set(42);
  EXPECT_EQ(clock.NowMicros(), 42u);
}

TEST(ClockTest, SystemClockPlausible) {
  SystemClock clock;
  Timestamp t = clock.NowMicros();
  // After 2020-01-01 in microseconds.
  EXPECT_GT(t, 1577836800ULL * 1000000ULL);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, WordShape) {
  Random r(7);
  for (int i = 0; i < 100; ++i) {
    std::string w = r.Word(3, 8);
    EXPECT_GE(w.size(), 3u);
    EXPECT_LE(w.size(), 8u);
    for (char c : w) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

}  // namespace
}  // namespace tendax

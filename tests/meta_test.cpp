// Tests for automatic metadata capture, the audit trail, and properties.

#include <gtest/gtest.h>

#include "server_fixture.h"

namespace tendax {
namespace {

class MetaTest : public ServerTest {};

TEST_F(MetaTest, EditsAreCapturedAutomatically) {
  DocumentId doc = MakeDoc(alice_, "paper.txt", "abstract");
  ASSERT_TRUE(server_->text()->InsertText(bob_, doc, 8, " body").ok());

  DocumentMeta meta = server_->meta()->Meta(doc);
  EXPECT_TRUE(meta.authors.count(alice_));
  EXPECT_TRUE(meta.authors.count(bob_));
  // create + 2 inserts
  EXPECT_EQ(meta.total_edits, 3u);
  EXPECT_EQ(meta.last_edit_by, bob_);
  EXPECT_GT(meta.last_edit_at, 0u);
}

TEST_F(MetaTest, ReadsAreRecordedExplicitly) {
  DocumentId doc = MakeDoc(alice_, "read-me", "x");
  ASSERT_TRUE(server_->meta()->RecordRead(bob_, doc).ok());
  ASSERT_TRUE(server_->meta()->RecordRead(bob_, doc).ok());

  DocumentMeta meta = server_->meta()->Meta(doc);
  EXPECT_TRUE(meta.readers.count(bob_));
  EXPECT_FALSE(meta.authors.count(bob_));
  EXPECT_EQ(meta.total_reads, 2u);
  EXPECT_EQ(meta.by_user.at(bob_).reads, 2u);
}

TEST_F(MetaTest, ReadByAndEditedByWindows) {
  DocumentId early = MakeDoc(alice_, "early", "a");
  ASSERT_TRUE(server_->meta()->RecordRead(bob_, early).ok());
  Timestamp cutoff = clock_->NowMicros();
  clock_->Advance(1'000'000);
  DocumentId late = MakeDoc(alice_, "late", "b");
  ASSERT_TRUE(server_->meta()->RecordRead(bob_, late).ok());

  auto recent_reads = server_->meta()->ReadBy(bob_, cutoff);
  ASSERT_EQ(recent_reads.size(), 1u);
  EXPECT_EQ(recent_reads[0], late);
  auto all_reads = server_->meta()->ReadBy(bob_, 0);
  EXPECT_EQ(all_reads.size(), 2u);

  auto edited = server_->meta()->EditedBy(alice_, cutoff);
  ASSERT_EQ(edited.size(), 1u);
  EXPECT_EQ(edited[0], late);
}

TEST_F(MetaTest, AuditTrailIsPersistentAndOrdered) {
  DocumentId doc = MakeDoc(alice_, "trail", "one");
  ASSERT_TRUE(server_->meta()->RecordRead(bob_, doc).ok());
  ASSERT_TRUE(server_->text()->DeleteRange(alice_, doc, 0, 1).ok());

  std::vector<AuditEntry> entries;
  ASSERT_TRUE(server_->meta()
                  ->VisitAudit([&](const AuditEntry& e) {
                    if (e.doc == doc) entries.push_back(e);
                    return true;
                  })
                  .ok());
  ASSERT_GE(entries.size(), 4u);  // create, edit, read, edit
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GT(entries[i].seq, entries[i - 1].seq);
  }
  EXPECT_EQ(entries[0].kind, AuditKind::kCreate);
}

TEST_F(MetaTest, LayoutAndWorkflowEventsAudited) {
  DocumentId doc = MakeDoc(alice_, "styled", "some text here");
  ASSERT_TRUE(server_->documents()
                  ->ApplyLayout(alice_, doc, 0, 4, "bold", "true")
                  .ok());
  ASSERT_TRUE(server_->workflows()->DefineProcess(alice_, doc, "review").ok());

  bool saw_layout = false, saw_workflow = false;
  ASSERT_TRUE(server_->meta()
                  ->VisitAudit([&](const AuditEntry& e) {
                    if (e.doc != doc) return true;
                    if (e.kind == AuditKind::kLayout) saw_layout = true;
                    if (e.kind == AuditKind::kWorkflow) saw_workflow = true;
                    return true;
                  })
                  .ok());
  EXPECT_TRUE(saw_layout);
  EXPECT_TRUE(saw_workflow);
}

TEST_F(MetaTest, PropertiesRoundTrip) {
  DocumentId doc = MakeDoc(alice_, "props", "");
  ASSERT_TRUE(
      server_->meta()->SetProperty(alice_, doc, "project", "tendax").ok());
  ASSERT_TRUE(
      server_->meta()->SetProperty(alice_, doc, "priority", "high").ok());
  EXPECT_EQ(*server_->meta()->GetProperty(doc, "project"), "tendax");
  // Overwrite.
  ASSERT_TRUE(
      server_->meta()->SetProperty(alice_, doc, "priority", "low").ok());
  EXPECT_EQ(*server_->meta()->GetProperty(doc, "priority"), "low");
  EXPECT_TRUE(
      server_->meta()->GetProperty(doc, "missing").status().IsNotFound());
  auto all = server_->meta()->Properties(doc);
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(all["project"], "tendax");
}

TEST_F(MetaTest, AuditListenerFires) {
  int fired = 0;
  server_->meta()->AddAuditListener(
      [&](const AuditEntry&) { ++fired; });
  DocumentId doc = MakeDoc(alice_, "listener", "x");
  ASSERT_TRUE(server_->meta()->RecordRead(bob_, doc).ok());
  EXPECT_GE(fired, 3);  // create + edit + read
}

TEST_F(MetaTest, TouchedDocumentsListsEverything) {
  DocumentId a = MakeDoc(alice_, "a", "1");
  DocumentId b = MakeDoc(bob_, "b", "2");
  auto touched = server_->meta()->TouchedDocuments();
  EXPECT_GE(touched.size(), 2u);
  EXPECT_TRUE(std::find(touched.begin(), touched.end(), a) != touched.end());
  EXPECT_TRUE(std::find(touched.begin(), touched.end(), b) != touched.end());
}

}  // namespace
}  // namespace tendax

// Tests for data lineage: provenance segments, the copy graph, citation
// counts, and the Fig. 1 renderings.

#include <gtest/gtest.h>

#include "server_fixture.h"

namespace tendax {
namespace {

class LineageTest : public ServerTest {};

TEST_F(LineageTest, TypedTextIsOneSegment) {
  DocumentId doc = MakeDoc(alice_, "typed", "all my own words");
  auto segments = server_->lineage()->ForDocument(doc);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  EXPECT_EQ((*segments)[0].kind, SourceKind::kTyped);
  EXPECT_EQ((*segments)[0].author, alice_);
  EXPECT_EQ((*segments)[0].len, 16u);
}

TEST_F(LineageTest, PasteCreatesInternalSegment) {
  DocumentId src = MakeDoc(alice_, "origin", "reusable paragraph");
  DocumentId dst = MakeDoc(bob_, "report", "intro ");
  auto clip = server_->text()->Copy(bob_, src, 0, 8);
  ASSERT_TRUE(clip.ok());
  ASSERT_TRUE(server_->text()->Paste(bob_, dst, 6, *clip).ok());
  ASSERT_TRUE(server_->text()->InsertText(bob_, dst, 14, " outro").ok());

  auto segments = server_->lineage()->ForDocument(dst);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 3u);
  EXPECT_EQ((*segments)[0].kind, SourceKind::kTyped);
  EXPECT_EQ((*segments)[1].kind, SourceKind::kInternal);
  EXPECT_EQ((*segments)[1].src_doc, src);
  EXPECT_EQ((*segments)[1].text, "reusable");
  EXPECT_EQ((*segments)[2].kind, SourceKind::kTyped);
}

TEST_F(LineageTest, ExternalImportTracked) {
  DocumentId doc = MakeDoc(alice_, "imported", "");
  ASSERT_TRUE(server_->text()
                  ->InsertText(alice_, doc, 0, "quoted text",
                               "https://example.org/spec")
                  .ok());
  auto segments = server_->lineage()->ForDocument(doc);
  ASSERT_EQ(segments->size(), 1u);
  EXPECT_EQ((*segments)[0].kind, SourceKind::kExternal);
  EXPECT_EQ((*segments)[0].src_external, "https://example.org/spec");
}

TEST_F(LineageTest, GraphAggregatesEdges) {
  DocumentId a = MakeDoc(alice_, "a", "source material one");
  DocumentId b = MakeDoc(alice_, "b", "second source");
  DocumentId c = MakeDoc(bob_, "c", "");
  auto clip_a = server_->text()->Copy(bob_, a, 0, 6);
  auto clip_b = server_->text()->Copy(bob_, b, 0, 6);
  ASSERT_TRUE(server_->text()->Paste(bob_, c, 0, *clip_a).ok());
  ASSERT_TRUE(server_->text()->Paste(bob_, c, 6, *clip_b).ok());

  auto graph = server_->lineage()->BuildGraph();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->internal_edges.at({a.value, c.value}), 6u);
  EXPECT_EQ(graph->internal_edges.at({b.value, c.value}), 6u);
  EXPECT_EQ(graph->EdgeCount(), 2u);
}

TEST_F(LineageTest, TransitiveCopiesCreditTheOrigin) {
  DocumentId origin = MakeDoc(alice_, "origin", "canonical text");
  DocumentId mid = MakeDoc(bob_, "middle", "");
  DocumentId leaf = MakeDoc(bob_, "leaf", "");
  auto c1 = server_->text()->Copy(bob_, origin, 0, 9);
  ASSERT_TRUE(server_->text()->Paste(bob_, mid, 0, *c1).ok());
  auto c2 = server_->text()->Copy(bob_, mid, 0, 9);
  ASSERT_TRUE(server_->text()->Paste(bob_, leaf, 0, *c2).ok());

  auto graph = server_->lineage()->BuildGraph();
  ASSERT_TRUE(graph.ok());
  // Both mid and leaf cite origin; leaf does NOT cite mid.
  EXPECT_TRUE(graph->internal_edges.count({origin.value, mid.value}));
  EXPECT_TRUE(graph->internal_edges.count({origin.value, leaf.value}));
  EXPECT_FALSE(graph->internal_edges.count({mid.value, leaf.value}));
  EXPECT_EQ(*server_->lineage()->CitationCount(origin), 2u);
  EXPECT_EQ(*server_->lineage()->CitationCount(mid), 0u);
}

TEST_F(LineageTest, SelfPasteIsNotAnEdge) {
  DocumentId doc = MakeDoc(alice_, "self", "repeat ");
  auto clip = server_->text()->Copy(alice_, doc, 0, 6);
  ASSERT_TRUE(server_->text()->Paste(alice_, doc, 7, *clip).ok());
  auto graph = server_->lineage()->BuildGraph();
  EXPECT_FALSE(graph->internal_edges.count({doc.value, doc.value}));
}

TEST_F(LineageTest, DeletedSourceCharsStillProvideLineage) {
  DocumentId src = MakeDoc(alice_, "vanishing", "ephemeral words");
  DocumentId dst = MakeDoc(bob_, "keeper", "");
  auto clip = server_->text()->Copy(bob_, src, 0, 9);
  ASSERT_TRUE(server_->text()->Paste(bob_, dst, 0, *clip).ok());
  // Source text gets deleted afterwards; provenance must survive (the
  // tombstoned characters still exist in the database).
  ASSERT_TRUE(server_->text()->DeleteRange(alice_, src, 0, 15).ok());
  auto segments = server_->lineage()->ForDocument(dst);
  ASSERT_EQ(segments->size(), 1u);
  EXPECT_EQ((*segments)[0].kind, SourceKind::kInternal);
  EXPECT_EQ((*segments)[0].src_doc, src);
}

TEST_F(LineageTest, DotAndAsciiRenderings) {
  DocumentId src = MakeDoc(alice_, "source.txt", "copy me");
  DocumentId dst = MakeDoc(bob_, "dest.txt", "");
  auto clip = server_->text()->Copy(bob_, src, 0, 7);
  ASSERT_TRUE(server_->text()->Paste(bob_, dst, 0, *clip).ok());
  ASSERT_TRUE(server_->text()
                  ->InsertText(bob_, dst, 7, " quoted", "file://notes.doc")
                  .ok());

  auto graph = server_->lineage()->BuildGraph();
  std::string dot = server_->lineage()->RenderDot(*graph);
  EXPECT_NE(dot.find("digraph lineage"), std::string::npos);
  EXPECT_NE(dot.find("source.txt"), std::string::npos);
  EXPECT_NE(dot.find("file://notes.doc"), std::string::npos);
  EXPECT_NE(dot.find("7 chars"), std::string::npos);

  std::string ascii = server_->lineage()->RenderAscii(*graph);
  EXPECT_NE(ascii.find("source.txt --[7 chars]--> dest.txt"),
            std::string::npos);

  auto detail = server_->lineage()->RenderDocumentLineage(dst);
  ASSERT_TRUE(detail.ok());
  EXPECT_NE(detail->find("copied from 'source.txt'"), std::string::npos);
  EXPECT_NE(detail->find("imported from <file://notes.doc>"),
            std::string::npos);
}

}  // namespace
}  // namespace tendax

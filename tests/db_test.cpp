// Unit tests for the relational substrate: records, slotted pages, heap
// tables, catalog and the Database facade.

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/record.h"
#include "db/slotted_page.h"
#include "util/random.h"

namespace tendax {
namespace {

Schema TestSchema() {
  return Schema({{"id", ColumnType::kUint64},
                 {"name", ColumnType::kString},
                 {"score", ColumnType::kDouble},
                 {"active", ColumnType::kBool}});
}

// ---------- Record ----------

TEST(RecordTest, EncodeDecodeRoundTrip) {
  Record rec({uint64_t{7}, std::string("tendax"), 2.5, true,
              int64_t{-12}, std::monostate{}});
  auto decoded = Record::Decode(rec.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rec);
}

TEST(RecordTest, AccessorsAndToString) {
  Record rec({uint64_t{7}, std::string("x"), 1.0, false});
  EXPECT_EQ(rec.GetUint(0), 7u);
  EXPECT_EQ(rec.GetString(1), "x");
  EXPECT_DOUBLE_EQ(rec.GetDouble(2), 1.0);
  EXPECT_FALSE(rec.GetBool(3));
  EXPECT_EQ(rec.ToString(), "[7, 'x', 1.000000, false]");
}

TEST(RecordTest, SchemaConformance) {
  Schema schema = TestSchema();
  Record good({uint64_t{1}, std::string("a"), 0.5, true});
  EXPECT_TRUE(good.ConformsTo(schema).ok());
  Record nulls({std::monostate{}, std::monostate{}, std::monostate{},
                std::monostate{}});
  EXPECT_TRUE(nulls.ConformsTo(schema).ok());
  Record wrong_arity({uint64_t{1}});
  EXPECT_TRUE(wrong_arity.ConformsTo(schema).IsInvalidArgument());
  Record wrong_type({std::string("a"), std::string("a"), 0.5, true});
  EXPECT_TRUE(wrong_type.ConformsTo(schema).IsInvalidArgument());
}

TEST(RecordTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Record::Decode(Slice("\x05garbage")).ok());
  // Unknown tag.
  std::string buf;
  buf.push_back(1);
  buf.push_back(99);
  EXPECT_FALSE(Record::Decode(buf).ok());
}

TEST(RecordTest, NegativeAndExtremeInts) {
  Record rec({int64_t{INT64_MIN}, int64_t{INT64_MAX}, int64_t{-1},
              uint64_t{UINT64_MAX}});
  auto decoded = Record::Decode(rec.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rec);
}

// ---------- SlottedPage ----------

class SlottedPageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sp_ = std::make_unique<SlottedPage>(&page_);
    sp_->Init(42);
  }
  Page page_;
  std::unique_ptr<SlottedPage> sp_;
};

TEST_F(SlottedPageTest, InitAndIdentity) {
  EXPECT_TRUE(sp_->IsInitialized());
  EXPECT_EQ(sp_->table_id(), 42u);
  EXPECT_EQ(sp_->num_slots(), 0u);
  Page fresh;
  EXPECT_FALSE(SlottedPage(&fresh).IsInitialized());
}

TEST_F(SlottedPageTest, InsertGetDelete) {
  auto s0 = sp_->Insert(Slice("alpha"));
  auto s1 = sp_->Insert(Slice("bravo"));
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s1.ok());
  EXPECT_NE(*s0, *s1);
  EXPECT_EQ(sp_->Get(*s0)->ToString(), "alpha");
  EXPECT_EQ(sp_->Get(*s1)->ToString(), "bravo");
  ASSERT_TRUE(sp_->Delete(*s0).ok());
  EXPECT_TRUE(sp_->Get(*s0).status().IsNotFound());
  EXPECT_FALSE(sp_->IsLive(*s0));
  EXPECT_TRUE(sp_->IsLive(*s1));
  // Deleting twice fails.
  EXPECT_TRUE(sp_->Delete(*s0).IsNotFound());
}

TEST_F(SlottedPageTest, SlotReuseAfterDelete) {
  auto s0 = sp_->Insert(Slice("one"));
  ASSERT_TRUE(sp_->Delete(*s0).ok());
  auto s1 = sp_->Insert(Slice("two"));
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(*s1, *s0);  // slot id recycled
}

TEST_F(SlottedPageTest, UpdateInPlaceAndGrow) {
  auto s = sp_->Insert(Slice("0123456789"));
  ASSERT_TRUE(sp_->Update(*s, Slice("short")).ok());
  EXPECT_EQ(sp_->Get(*s)->ToString(), "short");
  ASSERT_TRUE(sp_->Update(*s, Slice("a much longer payload")).ok());
  EXPECT_EQ(sp_->Get(*s)->ToString(), "a much longer payload");
}

TEST_F(SlottedPageTest, FillsUpAndCompacts) {
  std::string payload(100, 'x');
  std::vector<SlotId> slots;
  while (true) {
    auto s = sp_->Insert(payload);
    if (!s.ok()) {
      EXPECT_TRUE(s.status().IsOutOfRange());
      break;
    }
    slots.push_back(*s);
  }
  EXPECT_GT(slots.size(), 30u);
  // Delete every other record, then a larger record must fit again thanks
  // to compaction.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(sp_->Delete(slots[i]).ok());
  }
  std::string bigger(150, 'y');
  auto s = sp_->Insert(bigger);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(sp_->Get(*s)->ToString(), bigger);
  // Survivors intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_EQ(sp_->Get(slots[i])->ToString(), payload);
  }
}

TEST_F(SlottedPageTest, InsertAtExactSlotForReplay) {
  ASSERT_TRUE(sp_->InsertAt(5, Slice("replayed")).ok());
  EXPECT_EQ(sp_->num_slots(), 6u);
  EXPECT_EQ(sp_->Get(5)->ToString(), "replayed");
  for (SlotId s = 0; s < 5; ++s) EXPECT_FALSE(sp_->IsLive(s));
  // Occupied slot is rejected.
  EXPECT_TRUE(sp_->InsertAt(5, Slice("again")).IsAlreadyExists());
  // Earlier holes are usable.
  ASSERT_TRUE(sp_->InsertAt(2, Slice("hole")).ok());
  EXPECT_EQ(sp_->Get(2)->ToString(), "hole");
}

TEST_F(SlottedPageTest, RejectsOversizeRecord) {
  std::string huge(SlottedPage::kMaxRecordSize + 1, 'z');
  EXPECT_TRUE(sp_->Insert(huge).status().IsInvalidArgument());
}

// ---------- HeapTable via Database ----------

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.buffer_pool_pages = 64;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  Record Row(uint64_t id, const std::string& name) {
    return Record({id, name, 0.5, true});
  }

  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, CreateAndLookupTables) {
  auto t = db_->CreateTable("docs", TestSchema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ((*t)->name(), "docs");
  EXPECT_TRUE(db_->CreateTable("docs", TestSchema()).status()
                  .IsAlreadyExists());
  EXPECT_TRUE(db_->GetTable("docs").ok());
  EXPECT_TRUE(db_->GetTable("nope").status().IsNotFound());
  auto ensured = db_->EnsureTable("docs", TestSchema());
  ASSERT_TRUE(ensured.ok());
  EXPECT_EQ(*ensured, *t);
}

TEST_F(DatabaseTest, InsertGetUpdateDelete) {
  auto t = db_->CreateTable("docs", TestSchema());
  ASSERT_TRUE(t.ok());
  HeapTable* table = *t;

  RecordId rid;
  ASSERT_TRUE(db_->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) -> Status {
                               auto r = table->Insert(txn, Row(1, "a"));
                               if (!r.ok()) return r.status();
                               rid = *r;
                               return Status::OK();
                             })
                  .ok());
  auto got = table->Get(rid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->GetString(1), "a");

  ASSERT_TRUE(db_->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) -> Status {
                               auto r = table->Update(txn, rid, Row(1, "b"));
                               if (!r.ok()) return r.status();
                               rid = *r;
                               return Status::OK();
                             })
                  .ok());
  EXPECT_EQ(table->Get(rid)->GetString(1), "b");

  ASSERT_TRUE(db_->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) {
                               return table->Delete(txn, rid);
                             })
                  .ok());
  EXPECT_TRUE(table->Get(rid).status().IsNotFound());
}

TEST_F(DatabaseTest, ScanVisitsAllRowsInOrder) {
  auto t = db_->CreateTable("docs", TestSchema());
  HeapTable* table = *t;
  constexpr int kRows = 500;  // spans multiple pages
  ASSERT_TRUE(db_->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) -> Status {
                               for (int i = 0; i < kRows; ++i) {
                                 auto r = table->Insert(
                                     txn, Row(i, "row" + std::to_string(i)));
                                 if (!r.ok()) return r.status();
                               }
                               return Status::OK();
                             })
                  .ok());
  uint64_t seen = 0;
  ASSERT_TRUE(table
                  ->Scan([&](RecordId, const Record& rec) {
                    EXPECT_EQ(rec.GetString(1),
                              "row" + std::to_string(rec.GetUint(0)));
                    ++seen;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen, static_cast<uint64_t>(kRows));
  EXPECT_EQ(*table->Count(), static_cast<uint64_t>(kRows));
  EXPECT_GT(table->pages().size(), 1u);
}

TEST_F(DatabaseTest, AbortRollsBackAllOps) {
  auto t = db_->CreateTable("docs", TestSchema());
  HeapTable* table = *t;
  RecordId keep;
  ASSERT_TRUE(db_->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) -> Status {
                               auto r = table->Insert(txn, Row(1, "keep"));
                               if (!r.ok()) return r.status();
                               keep = *r;
                               return Status::OK();
                             })
                  .ok());

  Transaction* txn = db_->txns()->Begin(UserId(2));
  ASSERT_TRUE(table->Insert(txn, Row(2, "junk")).ok());
  ASSERT_TRUE(table->Update(txn, keep, Row(1, "mutated")).ok());
  ASSERT_TRUE(db_->txns()->Abort(txn).ok());

  EXPECT_EQ(*table->Count(), 1u);
  EXPECT_EQ(table->Get(keep)->GetString(1), "keep");
}

TEST_F(DatabaseTest, AbortRestoresDeletedRow) {
  auto t = db_->CreateTable("docs", TestSchema());
  HeapTable* table = *t;
  RecordId rid;
  ASSERT_TRUE(db_->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) -> Status {
                               auto r = table->Insert(txn, Row(9, "victim"));
                               if (!r.ok()) return r.status();
                               rid = *r;
                               return Status::OK();
                             })
                  .ok());
  Transaction* txn = db_->txns()->Begin(UserId(2));
  ASSERT_TRUE(table->Delete(txn, rid).ok());
  EXPECT_TRUE(table->Get(rid).status().IsNotFound());
  ASSERT_TRUE(db_->txns()->Abort(txn).ok());
  EXPECT_EQ(table->Get(rid)->GetString(1), "victim");
}

TEST_F(DatabaseTest, RecordMovesWhenItOutgrowsItsPage) {
  auto t = db_->CreateTable("docs", TestSchema());
  HeapTable* table = *t;
  // Fill one page nearly full, then grow one record beyond its page.
  std::vector<RecordId> rids;
  ASSERT_TRUE(db_->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) -> Status {
                               for (int i = 0; i < 30; ++i) {
                                 auto r = table->Insert(
                                     txn, Record({uint64_t{0}, std::string(100, 'x'),
                                                  0.0, false}));
                                 if (!r.ok()) return r.status();
                                 rids.push_back(*r);
                               }
                               return Status::OK();
                             })
                  .ok());
  RecordId rid = rids[0];
  Record grown({uint64_t{0}, std::string(3000, 'y'), 0.0, false});
  RecordId new_rid;
  ASSERT_TRUE(db_->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) -> Status {
                               auto r = table->Update(txn, rid, grown);
                               if (!r.ok()) return r.status();
                               new_rid = *r;
                               return Status::OK();
                             })
                  .ok());
  EXPECT_NE(new_rid.Pack(), rid.Pack());
  EXPECT_EQ(table->Get(new_rid)->GetString(1), std::string(3000, 'y'));
  EXPECT_TRUE(table->Get(rid).status().IsNotFound());
}

// ---------- Crash recovery ----------

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_shared<InMemoryDiskManager>();
    log_ = std::make_shared<InMemoryLogStorage>();
    OpenDb();
  }

  void OpenDb() {
    DatabaseOptions options;
    options.buffer_pool_pages = 64;
    options.disk = disk_;
    options.log_storage = log_;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  void CrashAndReopen() {
    db_->SimulateCrash();
    db_.reset();  // note: destructor flushes nothing useful; pages dropped
    OpenDb();
  }

  std::shared_ptr<InMemoryDiskManager> disk_;
  std::shared_ptr<InMemoryLogStorage> log_;
  std::unique_ptr<Database> db_;
};

TEST_F(RecoveryTest, CommittedDataSurvivesCrash) {
  auto t = db_->CreateTable("docs", TestSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(db_->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) -> Status {
                               for (int i = 0; i < 100; ++i) {
                                 auto r = (*t)->Insert(
                                     txn, Record({uint64_t(i),
                                                  "doc" + std::to_string(i),
                                                  1.0, true}));
                                 if (!r.ok()) return r.status();
                               }
                               return Status::OK();
                             })
                  .ok());
  CrashAndReopen();

  auto table = db_->GetTable("docs");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(*(*table)->Count(), 100u);
  EXPECT_GE(db_->recovery_stats().winners, 1u);
}

TEST_F(RecoveryTest, UncommittedDataRolledBackAfterCrash) {
  auto t = db_->CreateTable("docs", TestSchema());
  ASSERT_TRUE(db_->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) {
                               return (*t)
                                   ->Insert(txn, Record({uint64_t{1},
                                                         std::string("committed"),
                                                         1.0, true}))
                                   .status();
                             })
                  .ok());
  // A transaction that never commits before the crash.
  Transaction* loser = db_->txns()->Begin(UserId(2));
  ASSERT_TRUE((*t)->Insert(loser, Record({uint64_t{2}, std::string("lost"),
                                          0.0, false}))
                  .ok());
  ASSERT_TRUE(db_->wal()->FlushAll().ok());  // loser's updates are durable

  CrashAndReopen();

  auto table = db_->GetTable("docs");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*(*table)->Count(), 1u);
  EXPECT_EQ(db_->recovery_stats().losers, 1u);
  EXPECT_GE(db_->recovery_stats().undo_applied, 1u);
  bool found_lost = false;
  ASSERT_TRUE((*table)
                  ->Scan([&](RecordId, const Record& rec) {
                    if (rec.GetString(1) == "lost") found_lost = true;
                    return true;
                  })
                  .ok());
  EXPECT_FALSE(found_lost);
}

TEST_F(RecoveryTest, UpdatesAndDeletesReplayCorrectly) {
  auto t = db_->CreateTable("docs", TestSchema());
  RecordId a, b;
  ASSERT_TRUE(db_->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) -> Status {
                               auto ra = (*t)->Insert(
                                   txn, Record({uint64_t{1}, std::string("a"),
                                                1.0, true}));
                               auto rb = (*t)->Insert(
                                   txn, Record({uint64_t{2}, std::string("b"),
                                                1.0, true}));
                               if (!ra.ok()) return ra.status();
                               if (!rb.ok()) return rb.status();
                               a = *ra;
                               b = *rb;
                               return Status::OK();
                             })
                  .ok());
  ASSERT_TRUE(db_->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) -> Status {
                               auto r = (*t)->Update(
                                   txn, a, Record({uint64_t{1},
                                                   std::string("a2"), 2.0,
                                                   false}));
                               if (!r.ok()) return r.status();
                               return (*t)->Delete(txn, b);
                             })
                  .ok());
  CrashAndReopen();

  auto table = db_->GetTable("docs");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*(*table)->Count(), 1u);
  auto got = (*table)->Get(a);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->GetString(1), "a2");
}

TEST_F(RecoveryTest, CheckpointTruncatesLogAndPreservesData) {
  auto t = db_->CreateTable("docs", TestSchema());
  ASSERT_TRUE(db_->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) {
                               return (*t)
                                   ->Insert(txn,
                                            Record({uint64_t{1},
                                                    std::string("persisted"),
                                                    1.0, true}))
                                   .status();
                             })
                  .ok());
  ASSERT_TRUE(db_->Checkpoint().ok());
  std::string log_bytes;
  ASSERT_TRUE(log_->ReadAll(&log_bytes).ok());
  EXPECT_LT(log_bytes.size(), 100u);  // only the checkpoint marker remains

  CrashAndReopen();
  auto table = db_->GetTable("docs");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*(*table)->Count(), 1u);
}

TEST_F(RecoveryTest, RepeatedCrashesAreIdempotent) {
  auto t = db_->CreateTable("docs", TestSchema());
  ASSERT_TRUE(db_->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) {
                               return (*t)
                                   ->Insert(txn, Record({uint64_t{1},
                                                         std::string("x"),
                                                         1.0, true}))
                                   .status();
                             })
                  .ok());
  for (int i = 0; i < 3; ++i) {
    CrashAndReopen();
    auto table = db_->GetTable("docs");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ(*(*table)->Count(), 1u) << "crash iteration " << i;
  }
}

}  // namespace
}  // namespace tendax

// Tests for version diffs, contributions, history purging, the query
// layer, page checksums, and document templates.

#include <gtest/gtest.h>

#include "db/query.h"
#include "server_fixture.h"

namespace tendax {
namespace {

class DiffTest : public ServerTest {};

TEST_F(DiffTest, ExactHunksBetweenVersions) {
  DocumentId doc = MakeDoc(alice_, "diffed", "hello world");   // v1
  ASSERT_TRUE(server_->text()->DeleteRange(bob_, doc, 5, 6).ok());   // v2
  ASSERT_TRUE(server_->text()->InsertText(bob_, doc, 5, ", db").ok());  // v3

  auto hunks = server_->diff()->Between(doc, 1, 3);
  ASSERT_TRUE(hunks.ok());
  // "hello" equal, " world" deleted by bob, ", db" inserted by bob.
  ASSERT_EQ(hunks->size(), 3u);
  EXPECT_EQ((*hunks)[0].kind, DiffHunk::Kind::kEqual);
  EXPECT_EQ((*hunks)[0].text, "hello");
  // The insert physically lands right after "hello"; deletion follows.
  bool saw_insert = false, saw_delete = false;
  for (const DiffHunk& h : *hunks) {
    if (h.kind == DiffHunk::Kind::kInserted) {
      EXPECT_EQ(h.text, ", db");
      EXPECT_EQ(h.author, bob_);
      saw_insert = true;
    }
    if (h.kind == DiffHunk::Kind::kDeleted) {
      EXPECT_EQ(h.text, " world");
      EXPECT_EQ(h.author, bob_);
      saw_delete = true;
    }
  }
  EXPECT_TRUE(saw_insert);
  EXPECT_TRUE(saw_delete);
}

TEST_F(DiffTest, IdenticalVersionsDiffToOneEqualHunk) {
  DocumentId doc = MakeDoc(alice_, "same", "stable");
  auto hunks = server_->diff()->Between(doc, 1, 1);
  ASSERT_TRUE(hunks.ok());
  ASSERT_EQ(hunks->size(), 1u);
  EXPECT_EQ((*hunks)[0].kind, DiffHunk::Kind::kEqual);
  EXPECT_TRUE(server_->diff()->Between(doc, 2, 1).status()
                  .IsInvalidArgument());
}

TEST_F(DiffTest, RenderAndContributions) {
  DocumentId doc = MakeDoc(alice_, "contrib", "alice wrote this. ");
  ASSERT_TRUE(
      server_->text()->InsertText(bob_, doc, 18, "bob added that.").ok());
  auto rendered = server_->diff()->Render(doc, 0, 2);
  ASSERT_TRUE(rendered.ok());
  EXPECT_NE(rendered->find("+ alice wrote this. "), std::string::npos);
  EXPECT_NE(rendered->find("+ bob added that."), std::string::npos);

  auto contributions = server_->diff()->Contributions(doc, 0, 2);
  ASSERT_TRUE(contributions.ok());
  EXPECT_EQ((*contributions)[alice_], 18u);
  EXPECT_EQ((*contributions)[bob_], 15u);
}

TEST_F(DiffTest, DiffAcrossUndo) {
  DocumentId doc = MakeDoc(alice_, "undone", "keep ");
  auto editor = server_->AttachEditor(bob_, "e");
  ASSERT_TRUE((*editor)->Type(doc, 5, "remove").ok());  // v2
  ASSERT_TRUE((*editor)->Undo(doc).ok());               // v3 tombstones
  auto hunks = server_->diff()->Between(doc, 2, 3);
  ASSERT_TRUE(hunks.ok());
  bool saw_delete = false;
  for (const DiffHunk& h : *hunks) {
    if (h.kind == DiffHunk::Kind::kDeleted) {
      EXPECT_EQ(h.text, "remove");
      saw_delete = true;
    }
  }
  EXPECT_TRUE(saw_delete);
}

// ---------- history purging ----------

class PurgeTest : public ServerTest {};

TEST_F(PurgeTest, PurgeRemovesOldTombstonesOnly) {
  DocumentId doc = MakeDoc(alice_, "purged", "abcdef");      // v1
  ASSERT_TRUE(server_->text()->DeleteRange(alice_, doc, 1, 2).ok());  // v2
  ASSERT_TRUE(server_->text()->DeleteRange(alice_, doc, 2, 1).ok());  // v3
  // Chain: a [b c](v2) d [e](v3) f  -> live "adf"
  ASSERT_EQ(*server_->text()->Text(doc), "adf");
  ASSERT_EQ(server_->text()->FullChain(doc)->size(), 6u);

  // Purge history up to v2: b and c go away physically; e stays.
  auto purged = server_->text()->PurgeHistory(alice_, doc, 2);
  ASSERT_TRUE(purged.ok()) << purged.status().ToString();
  EXPECT_EQ(*purged, 2u);
  EXPECT_EQ(*server_->text()->Text(doc), "adf");
  EXPECT_EQ(server_->text()->FullChain(doc)->size(), 4u);

  // Time travel at or above the purge floor still works exactly.
  EXPECT_EQ(*server_->text()->TextAtVersion(doc, 3), "adf");
  EXPECT_EQ(*server_->text()->TextAtVersion(doc, 2), "adef");
  // Below the floor the purged tombstones are gone, so instead of silently
  // wrong text the read fails typed.
  auto below = server_->text()->TextAtVersion(doc, 1);
  ASSERT_FALSE(below.ok());
  EXPECT_TRUE(below.status().IsFailedPrecondition())
      << below.status().ToString();

  // The cache survives a cold reload (chain relinked correctly).
  server_->text()->InvalidateHandle(doc);
  EXPECT_EQ(*server_->text()->Text(doc), "adf");
  EXPECT_EQ(server_->text()->FullChain(doc)->size(), 4u);
}

TEST_F(PurgeTest, PurgeEverythingFromEmptiedDocument) {
  DocumentId doc = MakeDoc(alice_, "emptied", "all gone");
  ASSERT_TRUE(server_->text()->DeleteRange(alice_, doc, 0, 8).ok());
  auto purged = server_->text()->PurgeHistory(alice_, doc, kVersionMax);
  ASSERT_TRUE(purged.ok());
  EXPECT_EQ(*purged, 8u);
  EXPECT_EQ(*server_->text()->Text(doc), "");
  EXPECT_TRUE(server_->text()->FullChain(doc)->empty());
  // The document remains editable afterwards.
  ASSERT_TRUE(server_->text()->InsertText(alice_, doc, 0, "reborn").ok());
  EXPECT_EQ(*server_->text()->Text(doc), "reborn");
}

TEST_F(PurgeTest, PurgeIsDurable) {
  DocumentId doc = MakeDoc(alice_, "durable-purge", "xyz");
  ASSERT_TRUE(server_->text()->DeleteRange(alice_, doc, 0, 1).ok());
  ASSERT_TRUE(server_->text()->PurgeHistory(alice_, doc, kVersionMax).ok());
  server_->text()->InvalidateHandle(doc);
  EXPECT_EQ(*server_->text()->Text(doc), "yz");
  EXPECT_EQ(server_->text()->FullChain(doc)->size(), 2u);
}

// ---------- query layer ----------

class QueryTest : public ServerTest {};

TEST_F(QueryTest, FilterProjectLimit) {
  // Query the real character table of a document.
  DocumentId doc = MakeDoc(alice_, "queried", "aabb");
  ASSERT_TRUE(server_->text()->InsertText(bob_, doc, 4, "cc").ok());
  auto table = server_->db()->GetTable("tendax_chars");
  ASSERT_TRUE(table.ok());

  // All of bob's characters in this document.
  auto rows = TableQuery(*table)
                  .Where("doc_id", CompareOp::kEq, doc.value)
                  .Where("author", CompareOp::kEq, bob_.value)
                  .Select({"codepoint"})
                  .Run();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].GetUint(0), static_cast<uint64_t>('c'));
  EXPECT_EQ((*rows)[0].size(), 1u);  // projected to one column

  // Count with a different operator.
  auto count = TableQuery(*table)
                   .Where("doc_id", CompareOp::kEq, doc.value)
                   .Where("codepoint", CompareOp::kNe,
                          uint64_t{'c'})
                   .Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 4u);

  // Limit.
  auto limited = TableQuery(*table)
                     .Where("doc_id", CompareOp::kEq, doc.value)
                     .Limit(3)
                     .Run();
  EXPECT_EQ(limited->size(), 3u);
}

TEST_F(QueryTest, StringContainsAndErrors) {
  auto table = server_->db()->GetTable("tendax_docs");
  MakeDoc(alice_, "project-alpha", "");
  MakeDoc(alice_, "project-beta", "");
  MakeDoc(alice_, "misc", "");
  auto rows = TableQuery(*table)
                  .Where("name", CompareOp::kContains, std::string("project"))
                  .Run();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  // Unknown column surfaces at run time.
  EXPECT_TRUE(TableQuery(*table)
                  .Where("nope", CompareOp::kEq, uint64_t{1})
                  .Run()
                  .status()
                  .IsNotFound());
}

TEST_F(QueryTest, CompareSemantics) {
  EXPECT_TRUE(EvaluateCompare(uint64_t{5}, CompareOp::kLt, uint64_t{7}));
  EXPECT_TRUE(EvaluateCompare(int64_t{-2}, CompareOp::kLt, uint64_t{3}));
  EXPECT_TRUE(EvaluateCompare(2.5, CompareOp::kGe, uint64_t{2}));
  EXPECT_FALSE(EvaluateCompare(Value{std::monostate{}}, CompareOp::kEq,
                               uint64_t{0}));  // NULL never matches
  EXPECT_FALSE(EvaluateCompare(std::string("x"), CompareOp::kLt,
                               uint64_t{1}));  // incomparable types
  EXPECT_TRUE(EvaluateCompare(std::string("abc"), CompareOp::kContains,
                              std::string("bc")));
}

TEST_F(QueryTest, TransactionalDelete) {
  auto table = server_->db()->EnsureTable(
      "bench_rows", Schema({{"k", ColumnType::kUint64},
                            {"tag", ColumnType::kString}}));
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(server_->db()
                  ->txns()
                  ->RunInTxn(alice_,
                             [&](Transaction* txn) -> Status {
                               for (uint64_t k = 0; k < 10; ++k) {
                                 auto r = (*table)->Insert(
                                     txn, Record({k, std::string(
                                                         k % 2 ? "odd"
                                                               : "even")}));
                                 if (!r.ok()) return r.status();
                               }
                               return Status::OK();
                             })
                  .ok());
  uint64_t removed = 0;
  ASSERT_TRUE(server_->db()
                  ->txns()
                  ->RunInTxn(alice_,
                             [&](Transaction* txn) -> Status {
                               auto n = TableQuery(*table)
                                            .Where("tag", CompareOp::kEq,
                                                   std::string("odd"))
                                            .Delete(txn);
                               if (!n.ok()) return n.status();
                               removed = *n;
                               return Status::OK();
                             })
                  .ok());
  EXPECT_EQ(removed, 5u);
  EXPECT_EQ(*TableQuery(*table).Count(), 5u);
}

// ---------- page checksums ----------

TEST(ChecksumTest, CorruptedPageDetectedOnRead) {
  auto disk = std::make_shared<InMemoryDiskManager>();
  PageId pid;
  {
    BufferPool pool(8, disk.get());
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    pid = (*page)->id();
    strcpy((*page)->payload(), "precious data");
    pool.Unpin(*page, true);
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  // Flip a payload byte behind the pool's back.
  char raw[kPageSize];
  ASSERT_TRUE(disk->ReadPage(pid, raw).ok());
  raw[kPageHeaderSize + 3] ^= 0x40;
  ASSERT_TRUE(disk->WritePage(pid, raw).ok());

  BufferPool pool(8, disk.get());
  auto page = pool.FetchPage(pid);
  ASSERT_FALSE(page.ok());
  EXPECT_TRUE(page.status().IsCorruption()) << page.status().ToString();
}

TEST(ChecksumTest, CleanRoundTripVerifies) {
  auto disk = std::make_shared<InMemoryDiskManager>();
  PageId pid;
  {
    BufferPool pool(8, disk.get());
    auto page = pool.NewPage();
    pid = (*page)->id();
    strcpy((*page)->payload(), "intact");
    pool.Unpin(*page, true);
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  BufferPool pool(8, disk.get());
  auto page = pool.FetchPage(pid);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_STREQ((*page)->payload(), "intact");
  pool.Unpin(*page, false);
}

// ---------- templates ----------

class TemplateTest : public ServerTest {};

std::vector<TemplateSection> ReportTemplate() {
  TemplateSection title;
  title.type = "title";
  title.label = "title";
  title.placeholder = "<<Report Title>>";
  title.layout["bold"] = "true";
  TemplateSection body;
  body.type = "section";
  body.label = "summary";
  body.placeholder = "<<Executive summary.>>";
  std::vector<TemplateSection> sections;
  sections.push_back(std::move(title));
  sections.push_back(std::move(body));
  return sections;
}

TEST_F(TemplateTest, DefineAndInstantiate) {
  auto id = server_->templates()->Define(alice_, "report", ReportTemplate());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(server_->templates()
                  ->Define(alice_, "report", ReportTemplate())
                  .status()
                  .IsAlreadyExists());
  EXPECT_EQ(server_->templates()->TemplateNames().size(), 1u);

  auto doc = server_->templates()->Instantiate(bob_, "report", "q3.doc");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  auto text = server_->text()->Text(*doc);
  EXPECT_EQ(*text, "<<Report Title>>\n<<Executive summary.>>\n");
  // Structure elements anchored per section.
  auto tree = server_->documents()->ElementTree(*doc);
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->size(), 2u);
  // Layout applied to the title.
  auto markup = server_->documents()->RenderMarkup(*doc);
  EXPECT_NE(markup->find("[bold=true]<<Report Title>>"), std::string::npos);
  EXPECT_TRUE(server_->templates()
                  ->Instantiate(bob_, "missing", "x")
                  .status()
                  .IsNotFound());
}

TEST_F(TemplateTest, TemplatesArePersistent) {
  ASSERT_TRUE(
      server_->templates()->Define(alice_, "memo", ReportTemplate()).ok());
  // A second store over the same database sees the definition.
  TemplateStore reloaded(server_->db(), server_->text(),
                         server_->documents());
  ASSERT_TRUE(reloaded.Init().ok());
  auto info = reloaded.Get("memo");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->sections.size(), 2u);
  EXPECT_EQ(info->sections[0].layout.at("bold"), "true");
}

}  // namespace
}  // namespace tendax

// Fuzzy checkpointing + WAL segment truncation coverage:
//
//  - SegmentedLogStorage unit tests (rotation, deletion, reopen scan)
//  - Wal-level segmentation (size-based rotation, truncation bounds)
//  - the typed quiescence error on Database::Checkpoint (satellite)
//  - bounded recovery: analysis/redo start at the last complete checkpoint,
//    asserted through RecoveryStats (records_skipped / checkpoint_lsn)
//  - WAL disk usage stays bounded across >= 3 truncation cycles
//  - property test: truncated-log recovery == full-log recovery
//  - ScheduleController interleavings (commit lands mid-checkpoint)
//  - the tentpole crash sweep: power loss at EVERY storage I/O point inside
//    a fuzzy checkpoint, recovered state checked against a shadow model
//
// Scale knobs (bounded defaults for tier-1):
//   TENDAX_CHECKPOINT_SEED   workload + fault seed   (default 7)
//   TENDAX_CHECKPOINT_OPS    edits per sweep run     (default 70)

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/tendax.h"
#include "db/database.h"
#include "storage/disk_manager.h"
#include "storage/segmented_log.h"
#include "storage/wal.h"
#include "testing/fault_injection.h"
#include "testing/fault_plan.h"
#include "testing/schedule_controller.h"
#include "util/clock.h"
#include "workload/generators.h"

namespace tendax {
namespace {

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::strtoull(v, nullptr, 10);
}

Schema TestSchema() {
  return Schema({{"id", ColumnType::kUint64},
                 {"name", ColumnType::kString},
                 {"score", ColumnType::kDouble},
                 {"active", ColumnType::kBool}});
}

// ---------- SegmentedLogStorage ----------

TEST(SegmentedLogTest, AppendRotateDropRoundTrip) {
  auto log = SegmentedLogStorage::InMemory();
  EXPECT_TRUE(log->segmented());
  EXPECT_EQ(log->current_segment(), 1u);
  ASSERT_TRUE(log->Append(Slice("aaaa")).ok());

  uint64_t second = 0;
  ASSERT_TRUE(log->RotateSegment(&second).ok());
  EXPECT_EQ(second, 2u);
  EXPECT_EQ(log->current_segment(), 2u);
  ASSERT_TRUE(log->Append(Slice("bb")).ok());

  // ReadAll concatenates the segments in id order.
  std::string all;
  ASSERT_TRUE(log->ReadAll(&all).ok());
  EXPECT_EQ(all, "aaaabb");
  EXPECT_EQ(log->SegmentBytes(1), 4u);
  EXPECT_EQ(log->SegmentBytes(2), 2u);
  EXPECT_EQ(log->TotalBytes(), 6u);

  uint64_t freed = 0;
  ASSERT_TRUE(log->DropSegment(1, &freed).ok());
  EXPECT_EQ(freed, 4u);
  ASSERT_TRUE(log->ReadAll(&all).ok());
  EXPECT_EQ(all, "bb");
  EXPECT_EQ(log->SegmentIds(), (std::vector<uint64_t>{2}));
}

TEST(SegmentedLogTest, DropRefusesCurrentSegment) {
  auto log = SegmentedLogStorage::InMemory();
  ASSERT_TRUE(log->Append(Slice("x")).ok());
  uint64_t freed = 0;
  EXPECT_FALSE(log->DropSegment(log->current_segment(), &freed).ok());
  // Truncate restarts the log but never reuses a segment id.
  ASSERT_TRUE(log->Truncate().ok());
  EXPECT_GT(log->current_segment(), 1u);
  std::string all;
  ASSERT_TRUE(log->ReadAll(&all).ok());
  EXPECT_TRUE(all.empty());
}

TEST(SegmentedLogTest, FileBackedSurvivesReopen) {
  const std::string prefix =
      ::testing::TempDir() + "/tendax_seg_reopen_test.wal";
  // Segment ids are never reused, so files from a previous run would shift
  // the expected ids; start from a clean slate.
  for (const auto& entry :
       std::filesystem::directory_iterator(::testing::TempDir())) {
    if (entry.path().filename().string().rfind("tendax_seg_reopen_test.wal",
                                               0) == 0) {
      std::filesystem::remove(entry.path());
    }
  }
  {
    auto log = SegmentedLogStorage::OpenFiles(prefix);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    ASSERT_TRUE((*log)->Append(Slice("first")).ok());
    uint64_t id = 0;
    ASSERT_TRUE((*log)->RotateSegment(&id).ok());
    ASSERT_TRUE((*log)->Append(Slice("second")).ok());
    ASSERT_TRUE((*log)->Sync().ok());
  }
  {
    auto log = SegmentedLogStorage::OpenFiles(prefix);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    EXPECT_EQ((*log)->SegmentIds(), (std::vector<uint64_t>{1, 2}));
    EXPECT_EQ((*log)->current_segment(), 2u);
    std::string all;
    ASSERT_TRUE((*log)->ReadAll(&all).ok());
    EXPECT_EQ(all, "firstsecond");
    // Dropping the old segment survives another reopen.
    uint64_t freed = 0;
    ASSERT_TRUE((*log)->DropSegment(1, &freed).ok());
    EXPECT_EQ(freed, 5u);
  }
  {
    auto log = SegmentedLogStorage::OpenFiles(prefix);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    EXPECT_EQ((*log)->SegmentIds(), (std::vector<uint64_t>{2}));
    std::string all;
    ASSERT_TRUE((*log)->ReadAll(&all).ok());
    EXPECT_EQ(all, "second");
    ASSERT_TRUE((*log)->Truncate().ok());  // clean up the temp files
  }
}

// ---------- Wal over a segmented storage ----------

LogRecord UpdateRecord(uint64_t txn, const std::string& payload) {
  LogRecord rec;
  rec.type = LogType::kUpdate;
  rec.txn = TxnId(txn);
  rec.op = UpdateOp::kInsert;
  rec.table_id = 1;
  rec.rid = txn;
  rec.after = payload;
  return rec;
}

TEST(WalSegmentationTest, SizeBasedRotationKeepsAllRecordsReadable) {
  auto storage = SegmentedLogStorage::InMemory();
  Wal wal(storage, GroupCommitOptions{}, nullptr, /*segment_bytes=*/256);
  for (int i = 0; i < 40; ++i) {
    LogRecord rec = UpdateRecord(1, std::string(32, 'a' + i % 26));
    auto lsn = wal.Append(&rec);
    ASSERT_TRUE(lsn.ok());
    ASSERT_TRUE(wal.Flush(*lsn).ok());
  }
  EXPECT_GT(wal.SegmentCount(), 2u) << "size-based rotation never fired";
  std::vector<LogRecord> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 40u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, static_cast<Lsn>(i + 1));
  }
}

TEST(WalSegmentationTest, TruncateDropsOnlyWholeSegmentsBelowBound) {
  auto storage = SegmentedLogStorage::InMemory();
  Wal wal(storage, GroupCommitOptions{}, nullptr, /*segment_bytes=*/0);
  // Three segments of 5 records each: [1..5][6..10][11..] (last current).
  for (int seg = 0; seg < 3; ++seg) {
    for (int i = 0; i < 5; ++i) {
      LogRecord rec = UpdateRecord(1, "payload");
      ASSERT_TRUE(wal.Append(&rec).ok());
    }
    ASSERT_TRUE(wal.FlushAll().ok());
    if (seg < 2) {
      ASSERT_TRUE(wal.RotateSegmentNow().ok());
    }
  }
  ASSERT_EQ(wal.SegmentCount(), 3u);

  // Bound inside the second segment: only the first may go.
  auto freed = wal.TruncateSegmentsBelow(8);
  ASSERT_TRUE(freed.ok());
  EXPECT_GT(*freed, 0u);
  EXPECT_EQ(wal.SegmentCount(), 2u);
  std::vector<LogRecord> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 10u);
  EXPECT_EQ(records.front().lsn, 6u) << "suffix must start at segment 2";
  EXPECT_EQ(records.back().lsn, 15u);

  // A bound above everything never deletes the current segment.
  freed = wal.TruncateSegmentsBelow(1000);
  ASSERT_TRUE(freed.ok());
  EXPECT_EQ(wal.SegmentCount(), 1u);
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records.front().lsn, 11u);
}

TEST(WalSegmentationTest, ReopenToleratesTornTailInCurrentSegmentOnly) {
  auto storage = SegmentedLogStorage::InMemory();
  {
    Wal wal(storage, GroupCommitOptions{}, nullptr, 0);
    for (int i = 0; i < 4; ++i) {
      LogRecord rec = UpdateRecord(1, "payload");
      ASSERT_TRUE(wal.Append(&rec).ok());
    }
    ASSERT_TRUE(wal.FlushAll().ok());
    ASSERT_TRUE(wal.RotateSegmentNow().ok());
    for (int i = 0; i < 4; ++i) {
      LogRecord rec = UpdateRecord(1, "payload");
      ASSERT_TRUE(wal.Append(&rec).ok());
    }
    ASSERT_TRUE(wal.FlushAll().ok());
  }
  // Tear the current segment's tail: chop 3 bytes off its last record.
  storage->CorruptTail(storage->SegmentBytes(storage->current_segment()) - 3);
  Wal reopened(storage, GroupCommitOptions{}, nullptr, 0);
  std::vector<LogRecord> records;
  ASSERT_TRUE(reopened.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 7u) << "exactly the torn record is dropped";
  EXPECT_EQ(reopened.next_lsn(), 8u);
  // Appending after the reopen continues the sequence cleanly.
  LogRecord after = UpdateRecord(2, "after");
  auto lsn = reopened.Append(&after);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 8u);
}

// ---------- Database-level checkpoint fixtures ----------

class CheckpointDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_shared<InMemoryDiskManager>();
    log_ = SegmentedLogStorage::InMemory();
    OpenDb();
  }

  void OpenDb(uint64_t segment_bytes = 1024) {
    DatabaseOptions options;
    options.buffer_pool_pages = 64;
    options.disk = disk_;
    options.log_storage = log_;
    options.wal_segment_bytes = segment_bytes;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  void CrashAndReopen() {
    db_->SimulateCrash();
    db_.reset();
    OpenDb();
  }

  // One committed transaction inserting rows [base, base+n).
  void InsertRows(HeapTable* table, uint64_t base, uint64_t n) {
    ASSERT_TRUE(db_->txns()
                    ->RunInTxn(UserId(1),
                               [&](Transaction* txn) -> Status {
                                 for (uint64_t i = 0; i < n; ++i) {
                                   auto r = table->Insert(
                                       txn,
                                       Record({base + i,
                                               "row" + std::to_string(base + i),
                                               1.0, true}));
                                   if (!r.ok()) return r.status();
                                 }
                                 return Status::OK();
                               })
                    .ok());
  }

  std::shared_ptr<InMemoryDiskManager> disk_;
  std::shared_ptr<SegmentedLogStorage> log_;
  std::unique_ptr<Database> db_;
};

// Satellite: the quiescent checkpoint's contract under active transactions
// is a typed, documented error — not a hang, not success.
TEST_F(CheckpointDbTest, QuiescentCheckpointFailsTypedUnderActiveTxn) {
  auto t = db_->CreateTable("docs", TestSchema());
  ASSERT_TRUE(t.ok());
  Transaction* active = db_->txns()->Begin(UserId(1));
  ASSERT_TRUE(
      (*t)->Insert(active, Record({uint64_t{1}, std::string("x"), 1.0, true}))
          .ok());

  Status st = db_->Checkpoint();
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
  EXPECT_NE(st.ToString().find("quiescent"), std::string::npos)
      << "error must explain the quiescence requirement: " << st.ToString();

  // The fuzzy path has no such requirement.
  EXPECT_TRUE(db_->CheckpointNow().ok());

  ASSERT_TRUE(db_->txns()->Commit(active).ok());
  EXPECT_TRUE(db_->Checkpoint().ok()) << "quiescent now, must succeed";
}

// Acceptance: with checkpoints running under continuous editing, recovery
// replays only records at/after the last complete checkpoint.
TEST_F(CheckpointDbTest, FuzzyCheckpointBoundsRecovery) {
  auto t = db_->CreateTable("docs", TestSchema());
  ASSERT_TRUE(t.ok());
  InsertRows(*t, 0, 60);

  // Size of the full history before the checkpoint: a recovery without the
  // checkpoint would have to visit at least this many records.
  std::vector<LogRecord> log_records;
  ASSERT_TRUE(db_->wal()->ReadAll(&log_records).ok());
  const size_t pre_checkpoint = log_records.size();
  ASSERT_GE(pre_checkpoint, 60u);

  ASSERT_TRUE(db_->CheckpointNow().ok());
  InsertRows(*t, 60, 20);  // the only records recovery should visit

  // Count the records that survive to the crash point. The checkpoint's
  // segment truncation already deleted the bulk of the pre-checkpoint
  // history, so the surviving log is itself much smaller than the history.
  ASSERT_TRUE(db_->wal()->FlushAll().ok());
  ASSERT_TRUE(db_->wal()->ReadAll(&log_records).ok());
  const size_t total = log_records.size();
  EXPECT_LT(total, pre_checkpoint)
      << "truncation must delete segments below the redo LSN";

  CrashAndReopen();

  const RecoveryStats& stats = db_->recovery_stats();
  EXPECT_NE(stats.checkpoint_lsn, kInvalidLsn)
      << "analysis must anchor on the checkpoint end record";
  EXPECT_EQ(stats.records_scanned + stats.records_skipped, total);
  EXPECT_LT(stats.records_scanned, pre_checkpoint / 2)
      << "recovery work must be bounded by the post-checkpoint tail, "
         "not the full history";
  EXPECT_EQ(stats.losers, 0u);

  auto table = db_->GetTable("docs");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*(*table)->Count(), 80u) << "no committed row may be lost";
}

// Acceptance: the WAL's disk footprint stays bounded across >= 3
// checkpoint/truncation cycles instead of growing with history.
TEST_F(CheckpointDbTest, WalStaysBoundedAcrossTruncationCycles) {
  auto t = db_->CreateTable("docs", TestSchema());
  ASSERT_TRUE(t.ok());

  constexpr int kCycles = 4;
  constexpr uint64_t kRowsPerCycle = 80;
  uint64_t truncated_after_first = 0;
  std::vector<uint64_t> footprint;
  for (int c = 0; c < kCycles; ++c) {
    InsertRows(*t, c * kRowsPerCycle, kRowsPerCycle);
    ASSERT_TRUE(db_->CheckpointNow().ok()) << "cycle " << c;
    footprint.push_back(log_->TotalBytes());
    if (c == 0) {
      truncated_after_first = db_->checkpointer()->stats().bytes_truncated;
    }
  }

  // Every cycle after the first must actually delete segments.
  const CheckpointerStats stats = db_->checkpointer()->stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kCycles));
  EXPECT_GT(stats.bytes_truncated, truncated_after_first)
      << "later cycles truncated nothing";

  // Bounded: the footprint after the last cycle is no bigger than a small
  // multiple of the first cycle's — O(working set), not O(cycles).
  ASSERT_EQ(footprint.size(), static_cast<size_t>(kCycles));
  EXPECT_LE(footprint.back(), footprint.front() * 2)
      << "WAL grew across cycles: first=" << footprint.front()
      << " last=" << footprint.back();
  EXPECT_LE(db_->wal()->SegmentCount(), 3u);

  // The kStats-visible gauges moved with it.
  MetricsSnapshot snap = db_->metrics()->Snapshot();
  EXPECT_GT(snap.GaugeValue("wal.truncated_bytes"), 0);
  EXPECT_GE(snap.GaugeValue("wal.segments"), 1);
  EXPECT_EQ(snap.CounterValue("checkpoint.completed"),
            static_cast<uint64_t>(kCycles));
  EXPECT_GT(snap.CounterValue("wal.rotations"), 0u);
}

// A transaction active across the checkpoint holds truncation back (its
// undo chain must survive) and is rolled back as a loser after the crash.
TEST_F(CheckpointDbTest, ActiveTxnHoldsTruncationAndRecoversAsLoser) {
  auto t = db_->CreateTable("docs", TestSchema());
  ASSERT_TRUE(t.ok());

  Transaction* loser = db_->txns()->Begin(UserId(9));
  ASSERT_TRUE(
      (*t)->Insert(loser, Record({uint64_t{999}, std::string("lost"), 0.0,
                                  false}))
          .ok());
  InsertRows(*t, 0, 50);
  ASSERT_TRUE(db_->wal()->FlushAll().ok());  // loser's update is durable

  const size_t segments_before = db_->wal()->SegmentCount();
  ASSERT_TRUE(db_->CheckpointNow().ok());
  // The loser's first record pins the truncation bound near the log start:
  // nothing may have been deleted.
  EXPECT_EQ(db_->checkpointer()->stats().bytes_truncated, 0u);
  EXPECT_GE(db_->wal()->SegmentCount(), segments_before);

  CrashAndReopen();

  const RecoveryStats& stats = db_->recovery_stats();
  EXPECT_EQ(stats.losers, 1u);
  EXPECT_GE(stats.undo_applied, 1u);
  EXPECT_NE(stats.checkpoint_lsn, kInvalidLsn);
  auto table = db_->GetTable("docs");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*(*table)->Count(), 50u) << "the loser's row must be undone";
  bool found_lost = false;
  ASSERT_TRUE((*table)
                  ->Scan([&](RecordId, const Record& rec) {
                    if (rec.GetString(1) == "lost") found_lost = true;
                    return true;
                  })
                  .ok());
  EXPECT_FALSE(found_lost);
}

// ---------- Property: truncated-log recovery == full-log recovery ----------

// Runs a deterministic mixed workload (inserts, updates, deletes, one
// in-flight loser at the end), crashes, reopens, and returns the sorted
// recovered rows.
std::vector<std::string> RecoveredRowsAfterWorkload(bool with_checkpoints,
                                                    size_t* records_scanned) {
  auto disk = std::make_shared<InMemoryDiskManager>();
  auto log = SegmentedLogStorage::InMemory();

  DatabaseOptions options;
  options.buffer_pool_pages = 64;
  options.disk = disk;
  options.log_storage = log;
  options.wal_segment_bytes = with_checkpoints ? 512 : (64u << 20);
  auto opened = Database::Open(options);
  EXPECT_TRUE(opened.ok());
  if (!opened.ok()) return {};
  std::unique_ptr<Database> db = std::move(*opened);

  auto t = db->CreateTable("docs", TestSchema());
  EXPECT_TRUE(t.ok());
  std::vector<RecordId> rids;
  for (uint64_t round = 0; round < 12; ++round) {
    Status st = db->txns()->RunInTxn(
        UserId(1), [&](Transaction* txn) -> Status {
          for (uint64_t i = 0; i < 8; ++i) {
            auto r = (*t)->Insert(
                txn, Record({round * 100 + i,
                             "r" + std::to_string(round * 100 + i), 0.5,
                             true}));
            if (!r.ok()) return r.status();
            rids.push_back(*r);
          }
          // Mutate and delete earlier rows so redo covers all three ops.
          if (rids.size() > 20) {
            auto upd = (*t)->Update(
                txn, rids[round],
                Record({round, "updated" + std::to_string(round), 2.0,
                        false}));
            if (!upd.ok()) return upd.status();
            Status del = (*t)->Delete(txn, rids[rids.size() - 10]);
            if (!del.ok()) return del;
            rids.erase(rids.end() - 10);
          }
          return Status::OK();
        });
    EXPECT_TRUE(st.ok()) << st.ToString();
    if (with_checkpoints && round % 3 == 2) {
      EXPECT_TRUE(db->CheckpointNow().ok());
    }
  }
  // One loser in flight at the crash, identical on both sides.
  Transaction* loser = db->txns()->Begin(UserId(2));
  EXPECT_TRUE(
      (*t)->Insert(loser, Record({uint64_t{424242}, std::string("in-flight"),
                                  0.0, false}))
          .ok());
  EXPECT_TRUE(db->wal()->FlushAll().ok());

  db->SimulateCrash();
  db.reset();

  DatabaseOptions reopen;
  reopen.buffer_pool_pages = 64;
  reopen.disk = disk;
  reopen.log_storage = log;
  auto recovered = Database::Open(reopen);
  EXPECT_TRUE(recovered.ok());
  if (!recovered.ok()) return {};
  *records_scanned = (*recovered)->recovery_stats().records_scanned;

  auto table = (*recovered)->GetTable("docs");
  EXPECT_TRUE(table.ok());
  if (!table.ok()) return {};
  std::vector<std::string> rows;
  EXPECT_TRUE((*table)
                  ->Scan([&](RecordId, const Record& rec) {
                    rows.push_back(rec.ToString());
                    return true;
                  })
                  .ok());
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(CheckpointPropertyTest, TruncatedLogRecoveryMatchesFullLogRecovery) {
  size_t scanned_truncated = 0;
  size_t scanned_full = 0;
  std::vector<std::string> truncated =
      RecoveredRowsAfterWorkload(true, &scanned_truncated);
  std::vector<std::string> full =
      RecoveredRowsAfterWorkload(false, &scanned_full);
  ASSERT_FALSE(::testing::Test::HasFailure());
  ASSERT_FALSE(full.empty());
  EXPECT_EQ(truncated, full)
      << "recovering from the truncated log diverged from full-log replay";
  EXPECT_LT(scanned_truncated, scanned_full)
      << "checkpointing must shrink the analysis scan (truncated="
      << scanned_truncated << " full=" << scanned_full << ")";
}

// ---------- ScheduleController interleavings ----------

// A transaction that begins and commits while the checkpointer is frozen
// between its ATT/DPT snapshot and the end record must survive recovery:
// its records land above the begin LSN, which redo rescans.
TEST(CheckpointScheduleTest, CommitLandingMidCheckpointSurvivesCrash) {
  auto disk = std::make_shared<InMemoryDiskManager>();
  auto log = SegmentedLogStorage::InMemory();
  auto sched = std::make_shared<ScheduleController>(7);

  DatabaseOptions options;
  options.buffer_pool_pages = 64;
  options.disk = disk;
  options.log_storage = log;
  options.wal_segment_bytes = 1024;
  options.checkpoint_hooks = sched;
  auto opened = Database::Open(options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<Database> db = std::move(*opened);

  auto t = db->CreateTable("docs", TestSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(db->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) {
                               return (*t)
                                   ->Insert(txn, Record({uint64_t{1},
                                                         std::string("early"),
                                                         1.0, true}))
                                   .status();
                             })
                  .ok());

  sched->PauseAtCheckpoint(1, CheckpointPhase::kAfterBeginRecord);
  Status ckpt_status;
  std::thread checkpointer([&] { ckpt_status = db->CheckpointNow(); });
  ASSERT_TRUE(sched->WaitUntilCheckpointPaused());

  // The checkpointer is parked after snapshotting an ATT that does not
  // contain this transaction.
  ASSERT_TRUE(db->txns()
                  ->RunInTxn(UserId(2),
                             [&](Transaction* txn) {
                               return (*t)
                                   ->Insert(txn, Record({uint64_t{2},
                                                         std::string("mid"),
                                                         2.0, true}))
                                   .status();
                             })
                  .ok());

  sched->ReleaseCheckpoint();
  checkpointer.join();
  ASSERT_TRUE(ckpt_status.ok()) << ckpt_status.ToString();

  db->SimulateCrash();
  db.reset();
  DatabaseOptions reopen;
  reopen.buffer_pool_pages = 64;
  reopen.disk = disk;
  reopen.log_storage = log;
  auto recovered = Database::Open(reopen);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_NE((*recovered)->recovery_stats().checkpoint_lsn, kInvalidLsn);
  auto table = (*recovered)->GetTable("docs");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*(*table)->Count(), 2u)
      << "the commit that landed mid-checkpoint was lost";
}

// ---------- The tentpole crash sweep ----------

constexpr size_t kSweepPoolPages = 64;
constexpr size_t kSweepCheckpointEvery = 20;
constexpr const char* kSweepDocName = "checkpointed.txt";

struct SweepOutcome {
  bool setup_ok = false;
  std::string committed;
  bool has_ambiguous = false;
  std::string with_ambiguous;
};

std::string ApplyToShadow(const std::string& text, const TypingAction& a) {
  std::string next = text;
  if (a.kind == TypingAction::Kind::kInsert) {
    next.insert(std::min(a.pos, next.size()), a.text);
  } else {
    size_t pos = std::min(a.pos, next.size());
    next.erase(pos, std::min(a.len, next.size() - pos));
  }
  return next;
}

// Records the global I/O-op range covered by each fuzzy checkpoint, so the
// sweep can aim power loss at exactly the ops a checkpoint issues.
class CheckpointOpRangeRecorder : public CheckpointHooks {
 public:
  explicit CheckpointOpRangeRecorder(std::shared_ptr<FaultPlan> plan)
      : plan_(std::move(plan)) {}

  void OnCheckpointPhase(uint64_t index, CheckpointPhase phase) override {
    (void)index;
    if (phase == CheckpointPhase::kBeforeBegin) {
      pending_ = plan_->ops_seen() + 1;
    } else if (phase == CheckpointPhase::kAfterTruncate) {
      ranges_.emplace_back(pending_, plan_->ops_seen());
    }
  }

  const std::vector<std::pair<uint64_t, uint64_t>>& ranges() const {
    return ranges_;
  }

 private:
  std::shared_ptr<FaultPlan> plan_;
  uint64_t pending_ = 0;
  std::vector<std::pair<uint64_t, uint64_t>> ranges_;  // [first_op, last_op]
};

// Runs the deterministic editing workload with fuzzy checkpoints every
// kSweepCheckpointEvery edits over fault-injected segmented storage.
SweepOutcome RunCheckpointWorkload(
    const std::shared_ptr<DiskManager>& disk,
    const std::shared_ptr<LogStorage>& log,
    const std::shared_ptr<FaultPlan>& plan, uint64_t seed, size_t num_ops,
    const std::shared_ptr<CheckpointHooks>& hooks = nullptr) {
  SweepOutcome out;
  TendaxOptions options;
  options.db.disk = std::make_shared<FaultInjectingDiskManager>(disk, plan);
  options.db.log_storage =
      std::make_shared<FaultInjectingLogStorage>(log, plan);
  options.db.buffer_pool_pages = kSweepPoolPages;
  options.db.wal_segment_bytes = 2048;
  options.db.checkpoint_hooks = hooks;
  options.db.clock = std::make_shared<ManualClock>(1'000'000'000, 1000);
  auto server = TendaxServer::Open(std::move(options));
  if (!server.ok()) return out;  // crashed during open/recovery
  auto user = (*server)->accounts()->CreateUser("sweep");
  if (!user.ok()) return out;
  auto doc = (*server)->text()->CreateDocument(*user, kSweepDocName);
  if (!doc.ok()) return out;
  out.setup_ok = true;

  TypingTraceGenerator gen(seed);
  std::string shadow;
  for (size_t i = 0; i < num_ops; ++i) {
    TypingAction a = gen.Next(shadow.size());
    std::string next = ApplyToShadow(shadow, a);
    Status st = a.kind == TypingAction::Kind::kInsert
                    ? (*server)
                          ->text()
                          ->InsertText(*user, *doc, a.pos, a.text)
                          .status()
                    : (*server)
                          ->text()
                          ->DeleteRange(*user, *doc, a.pos, a.len)
                          .status();
    if (!st.ok()) {
      out.has_ambiguous = true;
      out.with_ambiguous = next;
      break;
    }
    shadow = next;
    if ((i + 1) % kSweepCheckpointEvery == 0) {
      (void)(*server)->CheckpointNow();  // may fail under injection
    }
  }
  out.committed = shadow;
  return out;
}

// Reopens over the surviving bytes and checks the recovered document
// against the shadow model. Mirrors crash_recovery_test's verifier.
void VerifySweepRecovered(const std::shared_ptr<DiskManager>& disk,
                          const std::shared_ptr<LogStorage>& log,
                          const SweepOutcome& run,
                          const std::string& context) {
  TendaxOptions options;
  options.db.disk = disk;
  options.db.log_storage = log;
  options.db.buffer_pool_pages = kSweepPoolPages;
  options.db.wal_segment_bytes = 2048;
  options.db.clock = std::make_shared<ManualClock>(2'000'000'000, 1000);
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok())
      << context << ": reopen failed: " << server.status().ToString();
  Status integrity = (*server)->CheckIntegrity();
  ASSERT_TRUE(integrity.ok())
      << context << ": integrity check failed: " << integrity.ToString();
  auto doc = (*server)->text()->FindDocumentByName(kSweepDocName);
  if (!doc.ok()) {
    EXPECT_TRUE(run.committed.empty())
        << context << ": document lost but " << run.committed.size()
        << " committed bytes expected";
    return;
  }
  auto text = (*server)->text()->Text(*doc);
  ASSERT_TRUE(text.ok())
      << context << ": text read failed: " << text.status().ToString();
  bool matches = *text == run.committed ||
                 (run.has_ambiguous && *text == run.with_ambiguous);
  EXPECT_TRUE(matches) << context << "\nrecovered: \"" << *text
                       << "\"\ncommitted: \"" << run.committed << "\""
                       << (run.has_ambiguous
                               ? "\nwith in-flight edit: \"" +
                                     run.with_ambiguous + "\""
                               : "");
}

// The tentpole: crash at EVERY storage I/O op issued inside a fuzzy
// checkpoint (log appends, page write-backs, syncs, segment rotation and
// deletion) and verify the recovered state against the shadow model —
// zero divergences allowed.
TEST(CheckpointCrashSweepTest, EveryFaultPointDuringCheckpointRecovers) {
  const uint64_t seed = EnvU64("TENDAX_CHECKPOINT_SEED", 7);
  const size_t num_ops =
      static_cast<size_t>(EnvU64("TENDAX_CHECKPOINT_OPS", 70));

  // Profile the fault-free run: where do the checkpoints' I/O ops live?
  auto profile_plan = std::make_shared<FaultPlan>(seed);
  auto recorder = std::make_shared<CheckpointOpRangeRecorder>(profile_plan);
  {
    auto disk = std::make_shared<InMemoryDiskManager>();
    auto log = SegmentedLogStorage::InMemory();
    SweepOutcome probe = RunCheckpointWorkload(disk, log, profile_plan, seed,
                                               num_ops, recorder);
    ASSERT_TRUE(probe.setup_ok);
    ASSERT_FALSE(probe.has_ambiguous) << "fault-free run must not fail";
    VerifySweepRecovered(disk, log, probe, "fault-free baseline");
    ASSERT_FALSE(::testing::Test::HasFailure());
  }
  ASSERT_GE(recorder->ranges().size(), 2u)
      << "workload too small: fewer than two checkpoints ran";

  size_t points = 0;
  for (const auto& [first_op, last_op] : recorder->ranges()) {
    ASSERT_LE(first_op, last_op);
    // +1: also cover the first op after the checkpoint returns.
    for (uint64_t k = first_op; k <= last_op + 1; ++k) {
      auto disk = std::make_shared<InMemoryDiskManager>();
      auto log = SegmentedLogStorage::InMemory();
      auto plan = std::make_shared<FaultPlan>(seed);
      plan->CrashAtOp(k);
      SweepOutcome run = RunCheckpointWorkload(disk, log, plan, seed, num_ops);
      std::string context = "checkpoint crash@" + std::to_string(k) + " " +
                            plan->Describe() +
                            " workload_seed=" + std::to_string(seed);
      VerifySweepRecovered(disk, log, run, context);
      ++points;
      if (::testing::Test::HasFailure()) {
        FAIL() << "first divergence at " << context;
      }
    }
  }
  EXPECT_GE(points, 20u) << "sweep covered suspiciously few I/O points";
}

}  // namespace
}  // namespace tendax

// Tests for text mining (vectors, similarity, keywords) and the visual
// mining projection (Fig. 2).

#include <gtest/gtest.h>

#include <cmath>

#include "server_fixture.h"

namespace tendax {
namespace {

class MiningTest : public ServerTest {};

TEST_F(MiningTest, SimilarityReflectsSharedVocabulary) {
  DocumentId a = MakeDoc(alice_, "a", "database transaction recovery logs");
  DocumentId b = MakeDoc(alice_, "b", "database transaction commit logs");
  DocumentId c = MakeDoc(alice_, "c", "gardening tulips watering soil");
  TextMiner* miner = server_->text_miner();
  ASSERT_TRUE(miner->BuildVectors().ok());
  EXPECT_EQ(miner->VectorCount(), 3u);

  double ab = *miner->Similarity(a, b);
  double ac = *miner->Similarity(a, c);
  EXPECT_GT(ab, ac);
  EXPECT_GT(ab, 0.2);
  EXPECT_LT(ac, 0.05);
  // Symmetric, and self-similarity is maximal.
  EXPECT_DOUBLE_EQ(ab, *miner->Similarity(b, a));
  EXPECT_NEAR(*miner->Similarity(a, a), 1.0, 1e-9);
}

TEST_F(MiningTest, KeywordsPickDistinctiveTerms) {
  MakeDoc(alice_, "noise1", "the quick brown fox");
  MakeDoc(alice_, "noise2", "the lazy brown dog");
  DocumentId doc =
      MakeDoc(alice_, "specific", "the zeppelin zeppelin flies high");
  TextMiner* miner = server_->text_miner();
  ASSERT_TRUE(miner->BuildVectors().ok());
  auto keywords = miner->Keywords(doc, 2);
  ASSERT_TRUE(keywords.ok());
  ASSERT_GE(keywords->size(), 1u);
  EXPECT_EQ((*keywords)[0].first, "zeppelin");
}

TEST_F(MiningTest, NearestNeighbours) {
  DocumentId a = MakeDoc(alice_, "a", "storage engine buffer pool pages");
  DocumentId b = MakeDoc(alice_, "b", "storage engine write ahead log");
  DocumentId c = MakeDoc(alice_, "c", "poetry rhymes verses stanzas");
  TextMiner* miner = server_->text_miner();
  ASSERT_TRUE(miner->BuildVectors().ok());
  auto nearest = miner->Nearest(a, 2);
  ASSERT_TRUE(nearest.ok());
  ASSERT_EQ(nearest->size(), 2u);
  EXPECT_EQ((*nearest)[0].first, b);
  EXPECT_EQ((*nearest)[1].first, c);
}

TEST_F(MiningTest, ProjectionProducesNormalizedDeterministicLayout) {
  for (int i = 0; i < 6; ++i) {
    MakeDoc(alice_, "doc" + std::to_string(i),
            i < 3 ? "cluster one shared words alpha beta"
                  : "cluster two different tokens gamma delta");
  }
  auto points1 = server_->visual_miner()->Project(30);
  ASSERT_TRUE(points1.ok());
  ASSERT_EQ(points1->size(), 6u);
  for (const DocPoint& p : *points1) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
    EXPECT_GT(p.size, 0u);
  }
  // Deterministic: same layout on re-run.
  auto points2 = server_->visual_miner()->Project(30);
  ASSERT_TRUE(points2.ok());
  for (size_t i = 0; i < points1->size(); ++i) {
    EXPECT_DOUBLE_EQ((*points1)[i].x, (*points2)[i].x);
    EXPECT_DOUBLE_EQ((*points1)[i].y, (*points2)[i].y);
  }
}

TEST_F(MiningTest, ProjectionPlacesSimilarDocsCloser) {
  // Two tight clusters with disjoint vocabulary.
  std::vector<DocumentId> cluster1, cluster2;
  for (int i = 0; i < 3; ++i) {
    cluster1.push_back(MakeDoc(alice_, "db" + std::to_string(i),
                               "database index transaction page buffer"));
    cluster2.push_back(MakeDoc(alice_, "art" + std::to_string(i),
                               "painting sculpture gallery museum canvas"));
  }
  auto points = server_->visual_miner()->Project(80);
  ASSERT_TRUE(points.ok());
  auto find = [&](DocumentId doc) {
    for (const DocPoint& p : *points) {
      if (p.doc == doc) return p;
    }
    return DocPoint{};
  };
  auto dist = [](const DocPoint& a, const DocPoint& b) {
    double dx = a.x - b.x, dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
  };
  double intra = dist(find(cluster1[0]), find(cluster1[1]));
  double inter = dist(find(cluster1[0]), find(cluster2[0]));
  EXPECT_LT(intra, inter);
}

TEST_F(MiningTest, PointsCarryMetadataDimensions) {
  DocumentId doc = MakeDoc(alice_, "decorated", "some sizeable content here");
  ASSERT_TRUE(server_->meta()->RecordRead(bob_, doc).ok());
  DocumentId citer = MakeDoc(bob_, "citer", "");
  auto clip = server_->text()->Copy(bob_, doc, 0, 4);
  ASSERT_TRUE(server_->text()->Paste(bob_, citer, 0, *clip).ok());

  auto points = server_->visual_miner()->Project(10);
  ASSERT_TRUE(points.ok());
  const DocPoint* p = nullptr;
  for (const DocPoint& candidate : *points) {
    if (candidate.doc == doc) p = &candidate;
  }
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->size, 26u);
  EXPECT_EQ(p->read_count, 1u);
  EXPECT_EQ(p->citation_count, 1u);
  EXPECT_GE(p->author_count, 1u);
}

TEST_F(MiningTest, SvgAndAsciiRenderings) {
  for (int i = 0; i < 4; ++i) {
    MakeDoc(alice_, "r" + std::to_string(i), "render me " + std::to_string(i));
  }
  auto points = server_->visual_miner()->Project(10);
  ASSERT_TRUE(points.ok());

  std::string svg = server_->visual_miner()->RenderSvg(*points);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("TeNDaX visual mining"), std::string::npos);

  std::string ascii = server_->visual_miner()->RenderAscii(*points);
  EXPECT_NE(ascii.find("visual mining"), std::string::npos);
  EXPECT_NE(ascii.find('o'), std::string::npos);

  // Dimension navigation: size-vs-age axes render too.
  std::string by_size = server_->visual_miner()->RenderAscii(
      *points, MiningAxis::kSize, MiningAxis::kAge);
  EXPECT_NE(by_size.find("size"), std::string::npos);
}

}  // namespace
}  // namespace tendax

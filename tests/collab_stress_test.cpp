#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "collab/retrying_client.h"
#include "core/tendax.h"
#include "obs/metrics.h"
#include "storage/segmented_log.h"
#include "storage/wal.h"
#include "testing/flaky_transport.h"
#include "util/random.h"
#include "workload/generators.h"

namespace tendax {
namespace {

// Multi-threaded collaboration stress: N editor clients hammer one shared
// document through the full stack (access control, transactions, locking,
// session fan-out). Designed to run under TSAN (-DTENDAX_SANITIZE=thread):
// the assertions cover convergence, the sanitizer covers data races.
//
// Scale knobs (bounded defaults for tier-1):
//   TENDAX_STRESS_THREADS       concurrent editors  (default 4)
//   TENDAX_STRESS_OPS           edits per editor    (default 60)
//   TENDAX_STRESS_GROUP_COMMIT  group-commit case: 0 skip, 1 flusher
//                               thread (default), 2 leader mode
//   TENDAX_STRESS_OVERLOAD      overload-storm case: 0 skip, 1 run (default)
//   TENDAX_STRESS_MVCC          snapshot-reader storm: 0 skip, 1 run (default)
//   TENDAX_STRESS_MVCC_READERS  snapshot readers in that storm (default 16)

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::strtoull(v, nullptr, 10);
}

// The shared-document stress workload, parameterized by the commit-flush
// pipeline so the same convergence + integrity assertions (and the same
// TSAN coverage) apply to inline flushing and both group-commit flavors.
void RunSharedDocumentStress(const GroupCommitOptions& group_commit) {
  const size_t kThreads = static_cast<size_t>(EnvU64("TENDAX_STRESS_THREADS", 4));
  const size_t kOpsPerThread = static_cast<size_t>(EnvU64("TENDAX_STRESS_OPS", 60));

  TendaxOptions options;
  options.db.buffer_pool_pages = 1024;
  options.db.group_commit = group_commit;
  auto server_res = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server_res.ok()) << server_res.status().ToString();
  TendaxServer* server = server_res->get();

  auto owner = server->accounts()->CreateUser("owner");
  ASSERT_TRUE(owner.ok());
  auto doc = server->text()->CreateDocument(*owner, "shared.txt");
  ASSERT_TRUE(doc.ok());

  // One user + attached editor per thread; all open the same document so
  // every committed edit fans out to every session.
  std::vector<std::unique_ptr<Editor>> editors;
  for (size_t t = 0; t < kThreads; ++t) {
    auto user = server->accounts()->CreateUser("editor" + std::to_string(t));
    ASSERT_TRUE(user.ok());
    auto editor = server->AttachEditor(*user, "stress-client");
    ASSERT_TRUE(editor.ok()) << editor.status().ToString();
    ASSERT_TRUE((*editor)->Open(*doc).ok());
    editors.push_back(std::move(*editor));
  }

  std::atomic<size_t> applied{0};
  std::atomic<size_t> gave_up{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Editor* editor = editors[t].get();
      TypingTraceGenerator gen(/*seed=*/1000 + t);
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        // The document length moves under us; poll it fresh and clamp. A
        // concurrent edit can still race the position past the end, which
        // the engine must reject cleanly (kOutOfRange), not corrupt.
        auto len = server->text()->Length(*doc);
        if (!len.ok()) {
          ++gave_up;
          continue;
        }
        TypingAction a = gen.Next(static_cast<size_t>(*len));
        bool done = false;
        for (int attempt = 0; attempt < 8 && !done; ++attempt) {
          Status st = a.kind == TypingAction::Kind::kInsert
                          ? editor->Type(*doc, a.pos, a.text)
                          : editor->Erase(*doc, a.pos, a.len);
          if (st.ok()) {
            ++applied;
            done = true;
          } else if (st.IsOutOfRange()) {
            // Lost the race on the document length; skip this gesture.
            done = true;
          } else {
            ASSERT_TRUE(st.IsRetryable() || st.IsConflict())
                << "thread " << t << " op " << i << ": " << st.ToString();
            std::this_thread::yield();
          }
        }
        if (!done) ++gave_up;
        (void)editor->PollEvents();  // drain so inboxes never overflow
      }
    });
  }
  for (auto& th : threads) th.join();

  // Convergence: every editor reads the same final text, which matches the
  // server-side read, and at least some edits landed.
  EXPECT_GT(applied.load(), 0u);
  auto server_text = server->text()->Text(*doc);
  ASSERT_TRUE(server_text.ok()) << server_text.status().ToString();
  for (size_t t = 0; t < kThreads; ++t) {
    auto view = editors[t]->Text(*doc);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(*view, *server_text) << "editor " << t << " diverged";
  }

  // Nothing leaked: no active transactions, and the document still passes
  // the structural integrity sweep.
  EXPECT_EQ(server->db()->txns()->ActiveCount(), 0u);
  Status integrity = server->CheckIntegrity();
  EXPECT_TRUE(integrity.ok()) << integrity.ToString();

  if (group_commit.mode != CommitFlushMode::kInline) {
    // Every applied edit's commit went through the group pipeline.
    const WalGroupCommitStats stats =
        server->db()->wal()->group_commit_stats();
    EXPECT_GE(stats.commits, applied.load());
    EXPECT_EQ(stats.failed_flushes, 0u);
  }
}

TEST(CollabStressTest, ConcurrentEditorsConvergeOnSharedDocument) {
  RunSharedDocumentStress(GroupCommitOptions{});  // seed behavior: inline
}

// Satellite: the group-commit flusher under the full multi-writer stack —
// committers block on the flusher (or elect a leader) while other editors
// keep mutating the shared document. Run under TENDAX_SANITIZE=thread this
// is the race check for the pipeline's cross-thread handoffs.
TEST(CollabStressTest, GroupCommitFlusherUnderConcurrentEditors) {
  const uint64_t knob = EnvU64("TENDAX_STRESS_GROUP_COMMIT", 1);
  if (knob == 0) {
    GTEST_SKIP() << "disabled via TENDAX_STRESS_GROUP_COMMIT=0";
  }
  GroupCommitOptions gc;
  gc.mode = knob == 2 ? CommitFlushMode::kLeader
                      : CommitFlushMode::kFlusherThread;
  // A small nonzero window so concurrent commits actually coalesce instead
  // of racing one-commit flushes.
  gc.flush_interval = std::chrono::microseconds(50);
  RunSharedDocumentStress(gc);
}

// Satellite: reconnect churn over a flaky transport with leases enabled.
// Every editor drives the server through the wire protocol (idempotency
// keys, retries, resumable polls) while its connection objects are torn
// down and rebuilt mid-run, and a reaper thread sweeps leases concurrently
// with dispatch and heartbeats. Under TENDAX_SANITIZE=thread this is the
// race check for the session-resilience layer.
TEST(CollabStressTest, ReconnectChurnOverFlakyTransportConverges) {
  const size_t kThreads =
      static_cast<size_t>(EnvU64("TENDAX_STRESS_THREADS", 4));
  const size_t kOpsPerThread =
      static_cast<size_t>(EnvU64("TENDAX_STRESS_OPS", 60));

  TendaxOptions options;
  options.db.buffer_pool_pages = 1024;
  // Leases on, with a TTL far beyond the run so only the lease *machinery*
  // (touch-on-command, heartbeats, the reaper) is exercised — expiry
  // itself is covered deterministically in resilience_test.
  options.session.lease_ttl_micros = 60'000'000;
  auto server_res = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server_res.ok()) << server_res.status().ToString();
  TendaxServer* server = server_res->get();

  auto owner = server->accounts()->CreateUser("owner");
  ASSERT_TRUE(owner.ok());
  auto doc = server->text()->CreateDocument(*owner, "churned.txt");
  ASSERT_TRUE(doc.ok());

  // Per-thread connection state, owned by the main thread so the final
  // convergence read can happen after the workers join. Each worker only
  // touches its own rig; old connections are kept alive (their delayed
  // frames are still "in the network" until Disarm).
  struct Rig {
    std::unique_ptr<Editor> editor;
    std::vector<std::unique_ptr<RemoteEditorEndpoint>> endpoints;
    std::vector<std::unique_ptr<FlakyTransport>> transports;
    std::vector<std::unique_ptr<RetryingClient>> clients;
    uint64_t incarnations = 0;

    void Connect(uint64_t seed) {
      endpoints.push_back(
          std::make_unique<RemoteEditorEndpoint>(editor.get()));
      transports.push_back(std::make_unique<FlakyTransport>(
          endpoints.back().get(),
          NetFaultOptions::Uniform(seed + incarnations, 0.03)));
      RetryOptions retry;
      retry.max_attempts = 16;
      retry.seed = seed * 31 + incarnations;
      const uint64_t cursor =
          clients.empty() ? 0 : clients.back()->last_seq();
      clients.push_back(std::make_unique<RetryingClient>(
          transports.back().get(), retry));
      clients.back()->set_last_seq(cursor);
      ++incarnations;
    }
    RetryingClient* client() { return clients.back().get(); }
  };

  std::vector<Rig> rigs(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    auto user = server->accounts()->CreateUser("churn" + std::to_string(t));
    ASSERT_TRUE(user.ok());
    auto editor = server->AttachEditor(*user, "churn-client");
    ASSERT_TRUE(editor.ok()) << editor.status().ToString();
    rigs[t].editor = std::move(*editor);
    rigs[t].Connect(/*seed=*/5000 + t * 101);
    ASSERT_TRUE(rigs[t].client()->Open(*doc).ok());
  }

  std::atomic<size_t> applied{0};
  std::atomic<bool> stop_reaper{false};
  std::thread reaper([&] {
    while (!stop_reaper.load(std::memory_order_relaxed)) {
      (void)server->sessions()->ReapExpired();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rig& rig = rigs[t];
      TypingTraceGenerator gen(/*seed=*/7000 + t);
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        auto len = server->text()->Length(*doc);
        if (!len.ok()) continue;
        TypingAction a = gen.Next(static_cast<size_t>(*len));
        for (int attempt = 0; attempt < 8; ++attempt) {
          Status st = a.kind == TypingAction::Kind::kInsert
                          ? rig.client()->Type(*doc, a.pos, a.text)
                          : rig.client()->Erase(*doc, a.pos, a.len);
          if (st.ok()) {
            ++applied;
            break;
          }
          if (st.IsOutOfRange()) break;  // lost the length race; skip
          ASSERT_TRUE(st.IsRetryable() || st.IsConflict() || st.IsIOError())
              << "thread " << t << " op " << i << ": " << st.ToString();
          std::this_thread::yield();
        }
        if (i % 5 == 4) {
          ASSERT_TRUE(rig.client()->Heartbeat().ok());
        }
        if (i % 10 == 9) {
          // The connection dies mid-run; the session and cursor survive.
          rig.Connect(/*seed=*/5000 + t * 101);
          auto changes = rig.client()->PollChanges();
          ASSERT_TRUE(changes.ok()) << changes.status().ToString();
          if (changes->resync_required) {
            ASSERT_TRUE(rig.client()->GetText(*doc).ok());
          }
        } else {
          (void)rig.client()->PollChanges();  // keep the outbox draining
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  stop_reaper.store(true);
  reaper.join();

  // Quiesce the network, then check convergence through the wire.
  for (auto& rig : rigs) {
    for (auto& transport : rig.transports) transport->Disarm();
  }

  EXPECT_GT(applied.load(), 0u);
  auto server_text = server->text()->Text(*doc);
  ASSERT_TRUE(server_text.ok()) << server_text.status().ToString();
  for (size_t t = 0; t < kThreads; ++t) {
    auto view = rigs[t].client()->GetText(*doc);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(*view, *server_text) << "client " << t << " diverged";
  }

  EXPECT_EQ(server->db()->txns()->ActiveCount(), 0u);
  EXPECT_EQ(server->sessions()->sessions_reaped(), 0u)
      << "no lease should lapse under active traffic";
  Status integrity = server->CheckIntegrity();
  EXPECT_TRUE(integrity.ok()) << integrity.ToString();
}

// Satellite: the overload storm under TSAN. Editors hammer a shared
// document through a deliberately tiny admission gate (constant queueing,
// displacement, and shedding) while a heartbeat thread rides the critical
// class and a reaper sweeps leases — racing the admission queue's
// grant/displace/timeout paths against dispatch. Assertions cover
// convergence and integrity; the sanitizer covers the controller's locking.
// Disable via TENDAX_STRESS_OVERLOAD=0.
TEST(CollabStressTest, OverloadStormUnderTinyAdmissionGate) {
  if (EnvU64("TENDAX_STRESS_OVERLOAD", 1) == 0) {
    GTEST_SKIP() << "disabled via TENDAX_STRESS_OVERLOAD=0";
  }
  const size_t kThreads =
      static_cast<size_t>(EnvU64("TENDAX_STRESS_THREADS", 4));
  const size_t kOpsPerThread =
      static_cast<size_t>(EnvU64("TENDAX_STRESS_OPS", 60));

  TendaxOptions options;
  options.db.buffer_pool_pages = 1024;
  options.session.lease_ttl_micros = 60'000'000;
  options.admission.max_inflight = 1;
  options.admission.queue_depth = 1;
  options.admission.retry_after_base_micros = 100;
  options.admission.retry_after_max_micros = 2'000;
  auto server_res = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server_res.ok()) << server_res.status().ToString();
  TendaxServer* server = server_res->get();

  auto owner = server->accounts()->CreateUser("owner");
  ASSERT_TRUE(owner.ok());
  auto doc = server->text()->CreateDocument(*owner, "stormed.txt");
  ASSERT_TRUE(doc.ok());

  struct Rig {
    std::unique_ptr<Editor> editor;
    std::unique_ptr<RemoteEditorEndpoint> endpoint;
    std::unique_ptr<FlakyTransport> transport;
    std::unique_ptr<RetryingClient> client;
  };
  auto connect = [&](const std::string& name, uint64_t seed) {
    Rig rig;
    auto user = server->accounts()->CreateUser(name);
    EXPECT_TRUE(user.ok());
    auto editor = server->AttachEditor(*user, name);
    EXPECT_TRUE(editor.ok()) << editor.status().ToString();
    rig.editor = std::move(*editor);
    rig.endpoint = std::make_unique<RemoteEditorEndpoint>(rig.editor.get());
    rig.transport = std::make_unique<FlakyTransport>(
        rig.endpoint.get(), NetFaultOptions::Uniform(seed, 0.0));
    RetryOptions retry;
    retry.seed = seed;
    retry.max_attempts = 10'000;
    retry.base_backoff_micros = 50;
    retry.max_backoff_micros = 2'000;
    retry.sleep_fn = [](uint64_t micros) {
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
    };
    rig.client = std::make_unique<RetryingClient>(rig.transport.get(), retry);
    return rig;
  };

  std::vector<Rig> rigs;
  for (size_t t = 0; t < kThreads; ++t) {
    rigs.push_back(connect("storm" + std::to_string(t), 9000 + t * 17));
    ASSERT_TRUE(rigs[t].client->Open(*doc).ok());
  }
  Rig keeper = connect("storm-keeper", 777);

  std::atomic<bool> stop{false};
  std::thread reaper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)server->sessions()->ReapExpired();
      std::this_thread::yield();
    }
  });
  std::thread heartbeats([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(keeper.client->Heartbeat().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  std::atomic<size_t> applied{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // A fat payload keeps each admitted request inside the gate long
      // enough for the other editors to pile up behind it.
      const std::string payload(32, 'a' + static_cast<char>(t % 26));
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        Status st = rigs[t].client->Type(*doc, 0, payload);
        while (st.IsRetryable()) {
          std::this_thread::yield();
          st = rigs[t].client->Type(*doc, 0, payload);
        }
        ASSERT_TRUE(st.ok()) << "thread " << t << ": " << st.ToString();
        ++applied;
      }
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true);
  heartbeats.join();
  reaper.join();

  EXPECT_EQ(applied.load(), kThreads * kOpsPerThread);
  auto server_text = server->text()->Text(*doc);
  ASSERT_TRUE(server_text.ok()) << server_text.status().ToString();
  EXPECT_EQ(server_text->size(), kThreads * kOpsPerThread * 32);
  for (size_t t = 0; t < kThreads; ++t) {
    auto view = rigs[t].client->GetText(*doc);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(*view, *server_text) << "client " << t << " diverged";
  }

  const auto admission = server->admission()->Stats();
  EXPECT_EQ(admission.shed[static_cast<size_t>(PriorityClass::kCritical)],
            0u);
  if (kThreads > 2) {
    EXPECT_GT(admission.shed[static_cast<size_t>(PriorityClass::kNormal)],
              0u);
  }
  EXPECT_EQ(server->sessions()->sessions_reaped(), 0u);
  EXPECT_EQ(server->db()->txns()->ActiveCount(), 0u);
  Status integrity = server->CheckIntegrity();
  EXPECT_TRUE(integrity.ok()) << integrity.ToString();
}

// Satellite: metrics scrapes race the full editing stack. N editor threads
// mutate a shared document while M scraper threads snapshot the registry
// through Editor::ServerStats and push every snapshot through the wire
// codec. Assertions: snapshots always decode (never torn) and every
// counter / histogram count is monotone non-decreasing across successive
// scrapes; under TENDAX_SANITIZE=thread this is the race check for the
// striped metric primitives.
TEST(CollabStressTest, MetricsScrapesAreTornFreeAndMonotoneUnderLoad) {
  const size_t kThreads =
      static_cast<size_t>(EnvU64("TENDAX_STRESS_THREADS", 4));
  const size_t kOpsPerThread =
      static_cast<size_t>(EnvU64("TENDAX_STRESS_OPS", 60));
  constexpr size_t kScrapers = 2;

  TendaxOptions options;
  options.db.buffer_pool_pages = 1024;
  auto server_res = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server_res.ok()) << server_res.status().ToString();
  TendaxServer* server = server_res->get();

  auto owner = server->accounts()->CreateUser("owner");
  ASSERT_TRUE(owner.ok());
  auto doc = server->text()->CreateDocument(*owner, "scraped.txt");
  ASSERT_TRUE(doc.ok());

  std::vector<std::unique_ptr<Editor>> editors;
  for (size_t t = 0; t < kThreads + kScrapers; ++t) {
    auto user = server->accounts()->CreateUser("m" + std::to_string(t));
    ASSERT_TRUE(user.ok());
    auto editor = server->AttachEditor(*user, "metrics-client");
    ASSERT_TRUE(editor.ok()) << editor.status().ToString();
    if (t < kThreads) {
      ASSERT_TRUE((*editor)->Open(*doc).ok());
    }
    editors.push_back(std::move(*editor));
  }

  std::atomic<size_t> applied{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> scrapers;
  for (size_t s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([&, s] {
      Editor* probe = editors[kThreads + s].get();
      std::map<std::string, uint64_t> last_counters;
      std::map<std::string, uint64_t> last_hist_counts;
      size_t scrapes = 0;
      while (!stop.load(std::memory_order_relaxed) || scrapes == 0) {
        auto snap = probe->ServerStats();
        ASSERT_TRUE(snap.ok()) << snap.status().ToString();
        auto decoded = DecodeMetricsSnapshot(EncodeMetricsSnapshot(*snap));
        ASSERT_TRUE(decoded.ok())
            << "scrape " << scrapes << " torn: "
            << decoded.status().ToString();
        for (const auto& [name, value] : decoded->counters) {
          EXPECT_GE(value, last_counters[name])
              << "counter " << name << " went backwards at scrape "
              << scrapes;
          last_counters[name] = value;
        }
        for (const auto& [name, h] : decoded->histograms) {
          EXPECT_GE(h.count, last_hist_counts[name])
              << "histogram " << name << " count went backwards at scrape "
              << scrapes;
          last_hist_counts[name] = h.count;
        }
        ++scrapes;
        std::this_thread::yield();
      }
    });
  }

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Editor* editor = editors[t].get();
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        for (int attempt = 0; attempt < 8; ++attempt) {
          Status st = editor->Type(*doc, 0, "x");
          if (st.ok()) {
            ++applied;
            break;
          }
          ASSERT_TRUE(st.IsRetryable() || st.IsConflict())
              << "thread " << t << " op " << i << ": " << st.ToString();
          std::this_thread::yield();
        }
        (void)editor->PollEvents();  // drain so inboxes never overflow
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  for (auto& th : scrapers) th.join();

  EXPECT_GT(applied.load(), 0u);
  // After quiescing, the registry agrees with the legacy accessors.
  MetricsSnapshot snap = server->metrics()->Snapshot();
  EXPECT_EQ(snap.CounterValue("txn.committed"),
            server->db()->txns()->stats().committed);
  EXPECT_GE(snap.CounterValue("txn.committed"), applied.load());
  EXPECT_EQ(snap.CounterValue("session.events_delivered"),
            server->sessions()->events_delivered());
}

// Satellite: the background fuzzy checkpointer races the full editing stack
// while scraper threads snapshot the metrics registry. The checkpointer
// snapshots the active-transaction table and dirty-page table, writes pages
// back, and truncates WAL segments — all mid-edit. Run under
// TENDAX_SANITIZE=thread this is the race check for the checkpoint
// pipeline's cross-thread reads (Transaction::prev_lsn, Page::rec_lsn, the
// segment span map). Disable via TENDAX_STRESS_CHECKPOINT=0.
TEST(CollabStressTest, BackgroundCheckpointerUnderConcurrentEditors) {
  if (EnvU64("TENDAX_STRESS_CHECKPOINT", 1) == 0) {
    GTEST_SKIP() << "disabled via TENDAX_STRESS_CHECKPOINT=0";
  }
  const size_t kThreads =
      static_cast<size_t>(EnvU64("TENDAX_STRESS_THREADS", 4));
  const size_t kOpsPerThread =
      static_cast<size_t>(EnvU64("TENDAX_STRESS_OPS", 60));

  TendaxOptions options;
  options.db.buffer_pool_pages = 256;  // small pool: checkpoints matter
  options.db.log_storage = SegmentedLogStorage::InMemory();
  options.db.wal_segment_bytes = 4096;
  options.db.checkpoint_interval_micros = 300;  // hammer the pipeline
  auto server_res = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server_res.ok()) << server_res.status().ToString();
  TendaxServer* server = server_res->get();

  auto owner = server->accounts()->CreateUser("owner");
  ASSERT_TRUE(owner.ok());
  auto doc = server->text()->CreateDocument(*owner, "checkpointed.txt");
  ASSERT_TRUE(doc.ok());

  std::vector<std::unique_ptr<Editor>> editors;
  for (size_t t = 0; t < kThreads + 1; ++t) {
    auto user = server->accounts()->CreateUser("c" + std::to_string(t));
    ASSERT_TRUE(user.ok());
    auto editor = server->AttachEditor(*user, "checkpoint-client");
    ASSERT_TRUE(editor.ok()) << editor.status().ToString();
    if (t < kThreads) {
      ASSERT_TRUE((*editor)->Open(*doc).ok());
    }
    editors.push_back(std::move(*editor));
  }

  std::atomic<size_t> applied{0};
  std::atomic<bool> stop{false};
  // One scraper thread pulls kStats snapshots (including the checkpoint.*
  // and wal.segments/wal.truncated_bytes families) while everything runs.
  std::thread scraper([&] {
    Editor* probe = editors[kThreads].get();
    size_t scrapes = 0;
    while (!stop.load(std::memory_order_relaxed) || scrapes == 0) {
      auto snap = probe->ServerStats();
      ASSERT_TRUE(snap.ok()) << snap.status().ToString();
      EXPECT_GE(snap->GaugeValue("wal.segments"), 1);
      ++scrapes;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Editor* editor = editors[t].get();
      TypingTraceGenerator gen(/*seed=*/3000 + t);
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        auto len = server->text()->Length(*doc);
        if (!len.ok()) continue;
        TypingAction a = gen.Next(static_cast<size_t>(*len));
        for (int attempt = 0; attempt < 8; ++attempt) {
          Status st = a.kind == TypingAction::Kind::kInsert
                          ? editor->Type(*doc, a.pos, a.text)
                          : editor->Erase(*doc, a.pos, a.len);
          if (st.ok()) {
            ++applied;
            break;
          }
          if (st.IsOutOfRange()) break;  // lost the length race
          ASSERT_TRUE(st.IsRetryable() || st.IsConflict())
              << "thread " << t << " op " << i << ": " << st.ToString();
          std::this_thread::yield();
        }
        (void)editor->PollEvents();
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  scraper.join();

  EXPECT_GT(applied.load(), 0u);
  // The background thread actually checkpointed while edits ran, and the
  // surviving state is sound.
  EXPECT_GE(server->db()->checkpointer()->stats().completed, 1u);
  EXPECT_EQ(server->db()->txns()->ActiveCount(), 0u);
  Status integrity = server->CheckIntegrity();
  EXPECT_TRUE(integrity.ok()) << integrity.ToString();
  auto text = server->text()->Text(*doc);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  for (size_t t = 0; t < kThreads; ++t) {
    auto view = editors[t]->Text(*doc);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(*view, *text) << "editor " << t << " diverged";
  }
}

// Satellite: the MVCC snapshot read path under maximum interleaving — 16
// snapshot readers hammer AcquireSnapshot / GetText / time travel while a
// writer storm mutates the shared document, the background checkpointer
// truncates WAL segments, and a maintenance thread periodically purges
// history and evicts the document's cache (dropping the published
// snapshot). Run under TENDAX_SANITIZE=thread this is the race check for
// snapshot publication (atomic slot store vs lock-free load), copy-on-write
// segment sharing, and refcount reclamation racing eviction. Disable via
// TENDAX_STRESS_MVCC=0; scale readers via TENDAX_STRESS_MVCC_READERS.
TEST(CollabStressTest, SnapshotReadersUnderWriterStormPurgeAndEviction) {
  if (EnvU64("TENDAX_STRESS_MVCC", 1) == 0) {
    GTEST_SKIP() << "disabled via TENDAX_STRESS_MVCC=0";
  }
  const size_t kWriters =
      static_cast<size_t>(EnvU64("TENDAX_STRESS_THREADS", 4));
  const size_t kOpsPerWriter =
      static_cast<size_t>(EnvU64("TENDAX_STRESS_OPS", 60));
  const size_t kReaders =
      static_cast<size_t>(EnvU64("TENDAX_STRESS_MVCC_READERS", 16));

  TendaxOptions options;
  options.db.buffer_pool_pages = 256;
  options.db.log_storage = SegmentedLogStorage::InMemory();
  options.db.wal_segment_bytes = 4096;
  options.db.checkpoint_interval_micros = 300;  // checkpoints mid-storm
  auto server_res = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server_res.ok()) << server_res.status().ToString();
  TendaxServer* server = server_res->get();

  auto owner = server->accounts()->CreateUser("owner");
  ASSERT_TRUE(owner.ok());
  auto doc = server->text()->CreateDocument(*owner, "mvcc-storm.txt");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(server->text()->InsertText(*owner, *doc, 0, "seed text").ok());

  std::vector<std::unique_ptr<Editor>> editors;
  for (size_t t = 0; t < kWriters; ++t) {
    auto user = server->accounts()->CreateUser("m" + std::to_string(t));
    ASSERT_TRUE(user.ok());
    auto editor = server->AttachEditor(*user, "mvcc-client");
    ASSERT_TRUE(editor.ok()) << editor.status().ToString();
    ASSERT_TRUE((*editor)->Open(*doc).ok());
    editors.push_back(std::move(*editor));
  }

  std::atomic<size_t> applied{0};
  std::atomic<size_t> snapshot_reads{0};
  std::atomic<bool> stop{false};

  // Snapshot readers: lock-free acquires interleaved with routed reads.
  // Each asserts per-reader version monotonicity and that time travel to
  // the snapshot's own version reproduces its live text (chain scan and
  // live scan agree on the same immutable state).
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Version prev = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto snap = server->text()->AcquireSnapshot(*doc);
        ASSERT_TRUE(snap.ok()) << "reader " << r << ": "
                               << snap.status().ToString();
        const Version v = (*snap)->version();
        EXPECT_GE(v, prev) << "reader " << r << " non-monotone";
        prev = v;
        const std::string live = (*snap)->Text();
        EXPECT_EQ((*snap)->length(), live.size());
        auto travel = (*snap)->TextAtVersion(v);
        ASSERT_TRUE(travel.ok()) << travel.status().ToString();
        EXPECT_EQ(*travel, live) << "reader " << r << " at version " << v;
        // Routed reads share the same path; purged-history probes must
        // fail typed, never return garbage.
        auto old = server->text()->TextAtVersion(*doc, v > 2 ? v / 2 : v);
        EXPECT_TRUE(old.ok() || old.status().IsFailedPrecondition())
            << old.status().ToString();
        ++snapshot_reads;
      }
    });
  }

  // Maintenance: purge history below the current version and evict the
  // handle (with its published snapshot) while readers hold references.
  std::thread maintenance([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto version = server->text()->CurrentVersion(*doc);
      if (version.ok() && *version > 2) {
        (void)server->text()->PurgeHistory(*owner, *doc, *version / 2);
      }
      (void)server->text()->EvictDocument(*doc);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      Editor* editor = editors[t].get();
      TypingTraceGenerator gen(/*seed=*/5000 + t);
      for (size_t i = 0; i < kOpsPerWriter; ++i) {
        auto len = server->text()->Length(*doc);
        if (!len.ok()) continue;
        TypingAction a = gen.Next(static_cast<size_t>(*len));
        for (int attempt = 0; attempt < 8; ++attempt) {
          Status st = a.kind == TypingAction::Kind::kInsert
                          ? editor->Type(*doc, a.pos, a.text)
                          : editor->Erase(*doc, a.pos, a.len);
          if (st.ok()) {
            ++applied;
            break;
          }
          if (st.IsOutOfRange()) break;  // lost the length race
          ASSERT_TRUE(st.IsRetryable() || st.IsConflict())
              << "writer " << t << " op " << i << ": " << st.ToString();
          std::this_thread::yield();
        }
        (void)editor->PollEvents();
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  maintenance.join();

  EXPECT_GT(applied.load(), 0u);
  EXPECT_GT(snapshot_reads.load(), 0u);
  // Convergence: the final snapshot, the routed read, and every editor view
  // agree; accounting balances; structure is intact.
  auto final_snap = server->text()->AcquireSnapshot(*doc);
  ASSERT_TRUE(final_snap.ok());
  auto text = server->text()->Text(*doc);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ((*final_snap)->Text(), *text);
  for (size_t t = 0; t < kWriters; ++t) {
    auto view = editors[t]->Text(*doc);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(*view, *text) << "editor " << t << " diverged";
  }
  EXPECT_EQ(server->db()->txns()->ActiveCount(), 0u);
  Status integrity = server->CheckIntegrity();
  EXPECT_TRUE(integrity.ok()) << integrity.ToString();
}

}  // namespace
}  // namespace tendax

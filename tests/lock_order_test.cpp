#include "util/lock_order.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server_fixture.h"
#include "util/mutex.h"

namespace tendax {
namespace {

using lockorder::Violation;

/// Enables validation with a capturing handler (which suppresses both the
/// stderr report and the abort), and restores the default posture on exit.
/// Violations land in `violations_` in the order they fired.
class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockorder::ResetForTest();
    lockorder::SetEnabled(true);
    lockorder::SetViolationHandler(
        [this](const Violation& v) { violations_.push_back(v); });
  }

  void TearDown() override {
    lockorder::SetViolationHandler(nullptr);
    lockorder::SetEnabled(false);
    lockorder::ResetForTest();
  }

  std::vector<Violation> violations_;
};

TEST_F(LockOrderTest, RankInversionFiresOnFirstRunSingleThread) {
  // Ranks increase inward, so locking 90-then-40 is the inverted order. The
  // opposing thread (40-then-90) never needs to exist: the rank declaration
  // stands in for it, which is what makes detection single-run.
  Mutex inner("test.rank_inner", 90);
  Mutex outer("test.rank_outer", 40);

  inner.lock();
  outer.lock();  // 40 while holding 90 -> inversion
  outer.unlock();
  inner.unlock();

  ASSERT_EQ(violations_.size(), 1u);
  const Violation& v = violations_[0];
  EXPECT_EQ(v.kind, Violation::Kind::kRankInversion);
  EXPECT_EQ(v.acquiring, "test.rank_outer");
  ASSERT_EQ(v.held_stack, std::vector<std::string>{"test.rank_inner"});
  EXPECT_NE(v.message.find("rank inversion"), std::string::npos);
  EXPECT_NE(v.message.find("test.rank_outer"), std::string::npos);
  EXPECT_NE(v.message.find("test.rank_inner"), std::string::npos);
  EXPECT_EQ(lockorder::GetStats().rank_inversions, 1u);
  EXPECT_TRUE(lockorder::HasViolation());
}

TEST_F(LockOrderTest, SeededTwoThreadInversionClosesCycleWithoutDeadlock) {
  // The classic AB/BA deadlock, deterministically sequenced: thread one
  // takes a then b and fully unwinds before thread two takes b then a.
  // The locks themselves never contend — only the acquired-after graph
  // remembers thread one's ordering — so one run suffices and no schedule
  // luck (or TSAN) is required. Unranked mutexes exercise the pure cycle
  // detector rather than the rank check.
  Mutex a("test.cycle_a");
  Mutex b("test.cycle_b");

  std::thread first([&] {
    MutexLock la(a);
    MutexLock lb(b);  // records edge a -> b
  });
  first.join();

  std::thread second([&] {
    MutexLock lb(b);
    MutexLock la(a);  // edge b -> a closes the cycle
  });
  second.join();

  ASSERT_EQ(violations_.size(), 1u);
  const Violation& v = violations_[0];
  EXPECT_EQ(v.kind, Violation::Kind::kCycle);
  EXPECT_EQ(v.acquiring, "test.cycle_a");
  ASSERT_EQ(v.held_stack, std::vector<std::string>{"test.cycle_b"});
  std::vector<std::string> want_cycle{"test.cycle_a", "test.cycle_b",
                                      "test.cycle_a"};
  EXPECT_EQ(v.cycle, want_cycle);
  EXPECT_EQ(lockorder::GetStats().cycles, 1u);
}

TEST_F(LockOrderTest, SelfDeadlockReportedBeforeBlocking) {
  // Exercised through the raw hooks: re-locking a real std::mutex would
  // never return, and the whole point of OnAcquiring is to fire while the
  // thread still can.
  const lockorder::MutexNode* node = lockorder::Register("test.self", 10);
  int instance = 0;
  lockorder::OnAcquired(node, &instance);
  lockorder::OnAcquiring(node, &instance);
  lockorder::OnRelease(node, &instance);

  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].kind, Violation::Kind::kSelfDeadlock);
  EXPECT_EQ(violations_[0].acquiring, "test.self");
  EXPECT_EQ(lockorder::GetStats().self_deadlocks, 1u);
}

TEST_F(LockOrderTest, SameNamePeerInstancesNestWithoutEdges) {
  // Two documents lock their handles in some order today and the opposite
  // order tomorrow; instances of one subsystem are peers the name graph
  // cannot order, so nesting them must neither alarm nor record an edge.
  Mutex doc1("test.peer");
  Mutex doc2("test.peer");

  uint64_t edges_before = lockorder::GetStats().edges;
  {
    MutexLock l1(doc1);
    MutexLock l2(doc2);
  }
  {
    MutexLock l2(doc2);
    MutexLock l1(doc1);
  }

  EXPECT_TRUE(violations_.empty());
  EXPECT_EQ(lockorder::GetStats().edges, edges_before);
  EXPECT_FALSE(lockorder::HasViolation());
}

TEST_F(LockOrderTest, EqualRankNestingIsPermitted) {
  // The rank check demands strictly increasing ranks only across *different*
  // ranks: modules sharing a tier (document-layer caches at rank 40) may
  // nest; the cycle detector still covers a genuine inversion between them.
  Mutex left("test.tier_left", 40);
  Mutex right("test.tier_right", 40);

  MutexLock l(left);
  MutexLock r(right);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockOrderTest, HeldStackTracksNestingAndCondVarWaits) {
  Mutex outer("test.stack_outer", 10);
  Mutex inner("test.stack_inner", 20);

  MutexLock lo(outer);
  {
    MutexLock li(inner);
    std::vector<std::string> want{"test.stack_outer", "test.stack_inner"};
    EXPECT_EQ(lockorder::HeldStackForTest(), want);
  }
  EXPECT_EQ(lockorder::HeldStackForTest(),
            std::vector<std::string>{"test.stack_outer"});
}

TEST_F(LockOrderTest, ViolationSurfacesThroughMetrics) {
  Mutex high("test.pub_high", 90);
  Mutex low("test.pub_low", 40);
  high.lock();
  low.lock();
  low.unlock();
  high.unlock();
  ASSERT_EQ(violations_.size(), 1u);

  MetricsRegistry registry;
  lockorder::PublishTo(&registry);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.GaugeValue("lockorder.rank_inversions"), 1);
  EXPECT_EQ(snap.GaugeValue("lockorder.violations"), 1);
  EXPECT_EQ(snap.GaugeValue("lockorder.enabled"), 1);
  EXPECT_GT(snap.GaugeValue("lockorder.registered"), 0);
  EXPECT_GT(snap.GaugeValue("lockorder.tracked_acquires"), 0);

  // AsStatus lets non-aborting call sites propagate the report.
  Status st = violations_[0].AsStatus();
  EXPECT_TRUE(st.IsFailedPrecondition());
}

TEST_F(LockOrderTest, ReleaseOutOfStackOrderIsTolerated) {
  // MutexLock's mid-scope Unlock can release in non-LIFO order; the held
  // stack must drop the right entry, not the top one.
  Mutex a("test.ooo_a", 10);
  Mutex b("test.ooo_b", 20);
  a.lock();
  b.lock();
  a.unlock();  // out of stack order
  EXPECT_EQ(lockorder::HeldStackForTest(),
            std::vector<std::string>{"test.ooo_b"});
  b.unlock();
  EXPECT_TRUE(violations_.empty());
}

/// The empirical check on the repo-wide rank map: drive every concurrent
/// subsystem through a real server with validation on and assert the run is
/// violation-free. A wrong rank in any module fails here on the first run.
class LockOrderServerTest : public ServerTest {
 protected:
  void SetUp() override {
    lockorder::ResetForTest();
    lockorder::SetEnabled(true);
    lockorder::SetViolationHandler(
        [this](const Violation& v) { violations_.push_back(v); });
    ServerTest::SetUp();
  }

  void TearDown() override {
    ServerTest::TearDown();
    lockorder::SetViolationHandler(nullptr);
    lockorder::SetEnabled(false);
    lockorder::ResetForTest();
  }

  std::vector<Violation> violations_;
};

TEST_F(LockOrderServerTest, FullEditingWorkloadHoldsTheRankMap) {
  DocumentId doc = MakeDoc(alice_, "ranked", "hello world");

  // Sessions + awareness (session.mu around the document layer).
  auto sa = server_->sessions()->Connect(alice_, "editor-a");
  auto sb = server_->sessions()->Connect(bob_, "editor-b");
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  ASSERT_TRUE(server_->sessions()->OpenDocument(*sa, doc).ok());
  ASSERT_TRUE(server_->sessions()->OpenDocument(*sb, doc).ok());

  // Concurrent editing: the full durable path (doc handle -> heap tables ->
  // txn -> lock manager -> WAL -> disk) under contention from two writers.
  std::thread writer_a([&] {
    for (int i = 0; i < 20; ++i) {
      auto r = server_->text()->InsertText(alice_, doc, 0, "a");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  });
  std::thread writer_b([&] {
    for (int i = 0; i < 20; ++i) {
      auto r = server_->text()->InsertText(bob_, doc, 0, "b");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  });
  writer_a.join();
  writer_b.join();

  // Structure, layout, notes (docmodel.mu), metadata and properties
  // (metastore.mu), folders, search, undo — the remaining ranked modules.
  ASSERT_TRUE(server_->documents()
                  ->CreateElement(alice_, doc, ElementId(), "section", "s1",
                                  0, 5)
                  .ok());
  ASSERT_TRUE(server_->documents()
                  ->ApplyLayout(alice_, doc, 0, 4, "bold", "true")
                  .ok());
  ASSERT_TRUE(server_->meta()->SetProperty(alice_, doc, "lang", "en").ok());
  auto folder = server_->folders()->CreateFolder(alice_, FolderId(), "inbox");
  ASSERT_TRUE(folder.ok());
  ASSERT_TRUE(server_->folders()->PlaceDocument(alice_, *folder, doc).ok());
  auto hits = server_->search()->Search("hello");
  ASSERT_TRUE(hits.ok());
  // Undo is recorded at the editor layer, so feed the manager one op by
  // hand; UndoLocal then drives undo.mu -> textstore.doc -> storage.
  auto tail = server_->text()->InsertText(alice_, doc, 0, "undo-me");
  ASSERT_TRUE(tail.ok());
  server_->undo()->RecordInsert(alice_, doc, *tail, "undo-me");
  auto undone = server_->undo()->UndoLocal(alice_, doc);
  ASSERT_TRUE(undone.ok()) << undone.status().ToString();

  // Poll fan-out and the kStats snapshot path (metrics.mu, lockorder
  // publication) while the sessions are live.
  ASSERT_TRUE(server_->sessions()->Poll(*sa).ok());
  ASSERT_TRUE(server_->sessions()->Poll(*sb).ok());

  for (const Violation& v : violations_) {
    ADD_FAILURE() << "lock-order violation in server workload: " << v.message;
  }
  EXPECT_FALSE(lockorder::HasViolation());

  lockorder::Stats stats = lockorder::GetStats();
  EXPECT_GT(stats.tracked_acquires, 100u);  // the map was actually exercised
  EXPECT_GT(stats.edges, 0u);
  EXPECT_EQ(stats.violations(), 0u);
}

}  // namespace
}  // namespace tendax

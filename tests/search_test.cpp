// Tests for content/structure/metadata search and ranking options.

#include <gtest/gtest.h>

#include "server_fixture.h"

namespace tendax {
namespace {

class SearchTest : public ServerTest {};

TEST(TokenizeTest, SplitsAndLowercases) {
  auto tokens = Tokenize("Hello, World! 2nd-test\nDONE");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "2nd");
  EXPECT_EQ(tokens[3], "test");
  EXPECT_EQ(tokens[4], "done");
  EXPECT_TRUE(Tokenize("  ,,  ").empty());
}

TEST_F(SearchTest, FindsDocumentsByContent) {
  DocumentId a = MakeDoc(alice_, "db-paper", "database systems rule");
  MakeDoc(alice_, "other", "completely unrelated prose");
  auto results = server_->search()->Search("database");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].doc, a);
  EXPECT_EQ((*results)[0].name, "db-paper");
  EXPECT_FALSE((*results)[0].snippet.empty());
}

TEST_F(SearchTest, MultiTermIsConjunctive) {
  DocumentId both = MakeDoc(alice_, "both", "apples and oranges");
  MakeDoc(alice_, "one", "apples only here");
  auto results = server_->search()->Search("apples oranges");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].doc, both);
}

TEST_F(SearchTest, IndexFollowsEdits) {
  DocumentId doc = MakeDoc(alice_, "evolving", "first wording");
  ASSERT_EQ(server_->search()->Search("wording")->size(), 1u);
  ASSERT_TRUE(server_->text()->DeleteRange(alice_, doc, 0, 13).ok());
  ASSERT_TRUE(
      server_->text()->InsertText(alice_, doc, 0, "second phrasing").ok());
  EXPECT_TRUE(server_->search()->Search("wording")->empty());
  ASSERT_EQ(server_->search()->Search("phrasing")->size(), 1u);
}

TEST_F(SearchTest, PhraseSearchVerifiesAdjacency) {
  MakeDoc(alice_, "scattered", "red house, blue car");
  DocumentId exact = MakeDoc(alice_, "exact", "the blue house stands");
  auto results = server_->search()->SearchPhrase("blue house");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].doc, exact);
}

TEST_F(SearchTest, NewestRanking) {
  DocumentId older = MakeDoc(alice_, "older", "shared topic");
  clock_->Advance(10'000'000);
  DocumentId newer = MakeDoc(alice_, "newer", "shared topic");
  auto results = server_->search()->Search("topic", Ranking::kNewest);
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].doc, newer);
  EXPECT_EQ((*results)[1].doc, older);
}

TEST_F(SearchTest, MostCitedRanking) {
  DocumentId cited = MakeDoc(alice_, "cited", "citable topic sentence");
  DocumentId uncited = MakeDoc(alice_, "uncited", "same topic sentence");
  DocumentId quoter = MakeDoc(bob_, "quoter", "");
  auto clip = server_->text()->Copy(bob_, cited, 0, 7);
  ASSERT_TRUE(server_->text()->Paste(bob_, quoter, 0, *clip).ok());

  auto results = server_->search()->Search("topic", Ranking::kMostCited);
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].doc, cited);
  EXPECT_EQ((*results)[1].doc, uncited);
}

TEST_F(SearchTest, MostReadRanking) {
  DocumentId popular = MakeDoc(alice_, "popular", "common subject");
  DocumentId ignored = MakeDoc(alice_, "ignored", "common subject");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server_->meta()->RecordRead(bob_, popular).ok());
  }
  auto results = server_->search()->Search("subject", Ranking::kMostRead);
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].doc, popular);
  EXPECT_EQ((*results)[1].doc, ignored);
}

TEST_F(SearchTest, RelevanceRanksHigherTermDensity) {
  DocumentId dense = MakeDoc(alice_, "dense", "kiwi kiwi kiwi");
  DocumentId sparse =
      MakeDoc(alice_, "sparse",
              "kiwi among many many other longer words diluting the score");
  auto results = server_->search()->Search("kiwi", Ranking::kRelevance);
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].doc, dense);
  EXPECT_EQ((*results)[1].doc, sparse);
}

TEST_F(SearchTest, MetadataFilters) {
  DocumentId by_alice = MakeDoc(alice_, "a-doc", "filterable content");
  DocumentId by_bob = MakeDoc(bob_, "b-doc", "filterable content");
  ASSERT_TRUE(
      server_->text()->SetDocumentState(alice_, by_alice, "published").ok());

  SearchFilter author_filter;
  author_filter.author = bob_;
  auto results = server_->search()->Search("filterable",
                                           Ranking::kRelevance,
                                           author_filter);
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].doc, by_bob);

  SearchFilter state_filter;
  state_filter.state = "published";
  results = server_->search()->Search("filterable", Ranking::kRelevance,
                                      state_filter);
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].doc, by_alice);
}

TEST_F(SearchTest, StructureFilter) {
  DocumentId with_elem =
      MakeDoc(alice_, "structured", "abstract keyword body text");
  ASSERT_TRUE(server_->documents()
                  ->CreateElement(alice_, with_elem, ElementId(), "abstract",
                                  "abs", 0, 16)
                  .ok());
  MakeDoc(alice_, "flat", "keyword without structure");

  SearchFilter filter;
  filter.element_type = "abstract";
  auto results =
      server_->search()->Search("keyword", Ranking::kRelevance, filter);
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].doc, with_elem);
}

TEST_F(SearchTest, DocumentNamesAreSearchable) {
  DocumentId doc = MakeDoc(alice_, "quarterly-budget", "numbers inside");
  auto results = server_->search()->Search("budget");
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].doc, doc);
}

TEST_F(SearchTest, LimitAndEmptyQuery) {
  for (int i = 0; i < 8; ++i) {
    MakeDoc(alice_, "doc" + std::to_string(i), "pagination fodder");
  }
  auto results = server_->search()->Search("pagination", Ranking::kRelevance,
                                           {}, 3);
  EXPECT_EQ(results->size(), 3u);
  EXPECT_TRUE(
      server_->search()->Search("   ").status().IsInvalidArgument());
}

}  // namespace
}  // namespace tendax

// Unit tests for the storage engine: disk managers, buffer pool, WAL.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/wal.h"
#include "util/coding.h"
#include "util/random.h"

namespace tendax {
namespace {

std::string TempPath(const std::string& name) {
  auto dir = std::filesystem::temp_directory_path() / "tendax_storage_test";
  std::filesystem::create_directories(dir);
  auto path = dir / name;
  std::filesystem::remove(path);
  return path.string();
}

// ---------- DiskManager ----------

class DiskManagerTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      auto res = FileDiskManager::Open(TempPath("disk.db"));
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      disk_ = std::move(*res);
    } else {
      disk_ = std::make_unique<InMemoryDiskManager>();
    }
  }
  std::unique_ptr<DiskManager> disk_;
};

TEST_P(DiskManagerTest, AllocateReadWriteRoundTrip) {
  auto p0 = disk_->AllocatePage();
  auto p1 = disk_->AllocatePage();
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(disk_->NumPages(), 2u);

  char out[kPageSize];
  char in[kPageSize];
  memset(in, 0xAB, kPageSize);
  ASSERT_TRUE(disk_->WritePage(*p1, in).ok());
  ASSERT_TRUE(disk_->ReadPage(*p1, out).ok());
  EXPECT_EQ(memcmp(in, out, kPageSize), 0);

  // Fresh pages come back zeroed.
  ASSERT_TRUE(disk_->ReadPage(*p0, out).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(out[i], 0);
}

TEST_P(DiskManagerTest, OutOfRangeRejected) {
  char buf[kPageSize] = {0};
  EXPECT_TRUE(disk_->ReadPage(5, buf).IsOutOfRange());
  EXPECT_TRUE(disk_->WritePage(5, buf).IsOutOfRange());
}

INSTANTIATE_TEST_SUITE_P(Backends, DiskManagerTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "File" : "Memory";
                         });

TEST(FileDiskManagerTest, PersistsAcrossReopen) {
  std::string path = TempPath("persist.db");
  {
    auto disk = FileDiskManager::Open(path);
    ASSERT_TRUE(disk.ok());
    auto pid = (*disk)->AllocatePage();
    ASSERT_TRUE(pid.ok());
    char buf[kPageSize];
    memset(buf, 0x5C, kPageSize);
    ASSERT_TRUE((*disk)->WritePage(*pid, buf).ok());
    ASSERT_TRUE((*disk)->Sync().ok());
  }
  auto disk = FileDiskManager::Open(path);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->NumPages(), 1u);
  char out[kPageSize];
  ASSERT_TRUE((*disk)->ReadPage(0, out).ok());
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(out[i]), 0x5C);
  }
}

// ---------- BufferPool ----------

TEST(BufferPoolTest, NewFetchUnpinCycle) {
  InMemoryDiskManager disk;
  BufferPool pool(4, &disk);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageId pid = (*page)->id();
  strcpy((*page)->payload(), "hello");
  pool.Unpin(*page, /*dirty=*/true);

  auto again = pool.FetchPage(pid);
  ASSERT_TRUE(again.ok());
  EXPECT_STREQ((*again)->payload(), "hello");
  pool.Unpin(*again, false);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  InMemoryDiskManager disk;
  BufferPool pool(2, &disk);
  std::vector<PageId> pids;
  for (int i = 0; i < 5; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    (*page)->payload()[0] = static_cast<char>('A' + i);
    pids.push_back((*page)->id());
    pool.Unpin(*page, true);
  }
  // Capacity 2 but 5 pages touched: evictions must have happened.
  EXPECT_GE(pool.stats().evictions, 3u);
  // And every page's content survived.
  for (int i = 0; i < 5; ++i) {
    auto page = pool.FetchPage(pids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->payload()[0], static_cast<char>('A' + i));
    pool.Unpin(*page, false);
  }
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  InMemoryDiskManager disk;
  BufferPool pool(2, &disk);
  auto a = pool.NewPage();
  auto b = pool.NewPage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Both pinned; a third page cannot be placed.
  auto c = pool.NewPage();
  EXPECT_FALSE(c.ok());
  pool.Unpin(*a, false);
  pool.Unpin(*b, false);
  auto d = pool.NewPage();
  EXPECT_TRUE(d.ok());
  pool.Unpin(*d, false);
}

TEST(BufferPoolTest, LruPrefersColdPages) {
  InMemoryDiskManager disk;
  BufferPool pool(2, &disk);
  auto a = pool.NewPage();
  auto b = pool.NewPage();
  PageId pid_a = (*a)->id();
  PageId pid_b = (*b)->id();
  pool.Unpin(*a, true);
  pool.Unpin(*b, true);
  // Touch a so b becomes LRU.
  auto a2 = pool.FetchPage(pid_a);
  pool.Unpin(*a2, false);
  auto c = pool.NewPage();  // evicts b
  pool.Unpin(*c, false);
  // Fetching a is still a hit; b is a miss.
  uint64_t hits_before = pool.stats().hits;
  auto a3 = pool.FetchPage(pid_a);
  pool.Unpin(*a3, false);
  EXPECT_EQ(pool.stats().hits, hits_before + 1);
  auto b2 = pool.FetchPage(pid_b);
  pool.Unpin(*b2, false);
  EXPECT_GE(pool.stats().misses, 1u);
}

TEST(BufferPoolTest, FlushAllPersistsWithoutEviction) {
  InMemoryDiskManager disk;
  BufferPool pool(8, &disk);
  auto page = pool.NewPage();
  PageId pid = (*page)->id();
  strcpy((*page)->payload(), "durable");
  pool.Unpin(*page, true);
  ASSERT_TRUE(pool.FlushAll().ok());

  char raw[kPageSize];
  ASSERT_TRUE(disk.ReadPage(pid, raw).ok());
  EXPECT_STREQ(raw + kPageHeaderSize, "durable");
}

TEST(BufferPoolTest, WalFlushedBeforeDirtyWriteback) {
  // Write-ahead rule: evicting a dirty page forces the log up to page LSN.
  auto storage = std::make_shared<InMemoryLogStorage>();
  Wal wal(storage);
  InMemoryDiskManager disk;
  BufferPool pool(1, &disk);  // capacity 1 forces eviction
  BufferPool pool_with_wal(1, &disk, &wal);

  LogRecord rec;
  rec.type = LogType::kBegin;
  rec.txn = TxnId(1);
  auto lsn = wal.Append(&rec);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(wal.flushed_lsn(), 0u);

  auto page = pool_with_wal.NewPage();
  ASSERT_TRUE(page.ok());
  (*page)->set_lsn(*lsn);
  pool_with_wal.Unpin(*page, true);
  auto other = pool_with_wal.NewPage();  // evicts the dirty page
  ASSERT_TRUE(other.ok());
  pool_with_wal.Unpin(*other, false);
  EXPECT_GE(wal.flushed_lsn(), *lsn);
}

// ---------- WAL ----------

TEST(WalTest, AppendAssignsIncreasingLsns) {
  Wal wal(std::make_shared<InMemoryLogStorage>());
  LogRecord a, b;
  a.type = b.type = LogType::kBegin;
  auto la = wal.Append(&a);
  auto lb = wal.Append(&b);
  ASSERT_TRUE(la.ok());
  ASSERT_TRUE(lb.ok());
  EXPECT_EQ(*la, 1u);
  EXPECT_EQ(*lb, 2u);
}

LogRecord MakeUpdate(uint64_t txn, uint64_t table, uint64_t rid,
                     const std::string& before, const std::string& after) {
  LogRecord rec;
  rec.type = LogType::kUpdate;
  rec.txn = TxnId(txn);
  rec.op = UpdateOp::kUpdate;
  rec.table_id = table;
  rec.rid = rid;
  rec.before = before;
  rec.after = after;
  return rec;
}

TEST(WalTest, RoundTripsAllFields) {
  Wal wal(std::make_shared<InMemoryLogStorage>());
  LogRecord rec = MakeUpdate(9, 3, 0x70008, "old", "new");
  rec.undo_next_lsn = 17;
  ASSERT_TRUE(wal.Append(&rec).ok());
  ASSERT_TRUE(wal.FlushAll().ok());

  std::vector<LogRecord> out;
  ASSERT_TRUE(wal.ReadAll(&out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].lsn, rec.lsn);
  EXPECT_EQ(out[0].txn.value, 9u);
  EXPECT_EQ(out[0].table_id, 3u);
  EXPECT_EQ(out[0].rid, 0x70008u);
  EXPECT_EQ(out[0].before, "old");
  EXPECT_EQ(out[0].after, "new");
  EXPECT_EQ(out[0].undo_next_lsn, 17u);
}

TEST(WalTest, SurvivesReopenAndContinuesLsns) {
  auto storage = std::make_shared<InMemoryLogStorage>();
  {
    Wal wal(storage);
    LogRecord rec = MakeUpdate(1, 2, 3, "", "x");
    ASSERT_TRUE(wal.Append(&rec).ok());
    ASSERT_TRUE(wal.FlushAll().ok());
  }
  Wal wal2(storage);
  EXPECT_EQ(wal2.next_lsn(), 2u);
  std::vector<LogRecord> out;
  ASSERT_TRUE(wal2.ReadAll(&out).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(WalTest, ToleratesTornTail) {
  auto storage = std::make_shared<InMemoryLogStorage>();
  Wal wal(storage);
  LogRecord a = MakeUpdate(1, 1, 1, "", "aaaa");
  LogRecord b = MakeUpdate(1, 1, 2, "", "bbbb");
  ASSERT_TRUE(wal.Append(&a).ok());
  ASSERT_TRUE(wal.Append(&b).ok());
  ASSERT_TRUE(wal.FlushAll().ok());
  std::string full;
  ASSERT_TRUE(storage->ReadAll(&full).ok());
  storage->CorruptTail(full.size() - 5);  // chop into record b

  std::vector<LogRecord> out;
  Wal reopened(storage);
  ASSERT_TRUE(reopened.ReadAll(&out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rid, 1u);
}

TEST(WalTest, ResetClearsButKeepsNumbering) {
  Wal wal(std::make_shared<InMemoryLogStorage>());
  LogRecord a = MakeUpdate(1, 1, 1, "", "x");
  ASSERT_TRUE(wal.Append(&a).ok());
  ASSERT_TRUE(wal.FlushAll().ok());
  ASSERT_TRUE(wal.Reset().ok());
  std::vector<LogRecord> out;
  ASSERT_TRUE(wal.ReadAll(&out).ok());
  EXPECT_TRUE(out.empty());
  LogRecord b = MakeUpdate(1, 1, 2, "", "y");
  auto lsn = wal.Append(&b);
  ASSERT_TRUE(lsn.ok());
  EXPECT_GT(*lsn, a.lsn);
}

TEST(WalTest, FileBackedRoundTrip) {
  std::string path = TempPath("wal.log");
  {
    auto storage = FileLogStorage::Open(path);
    ASSERT_TRUE(storage.ok());
    Wal wal(std::shared_ptr<LogStorage>(std::move(*storage)));
    LogRecord rec = MakeUpdate(4, 5, 6, "before", "after");
    ASSERT_TRUE(wal.Append(&rec).ok());
    ASSERT_TRUE(wal.FlushAll().ok());
  }
  auto storage = FileLogStorage::Open(path);
  ASSERT_TRUE(storage.ok());
  Wal wal(std::shared_ptr<LogStorage>(std::move(*storage)));
  std::vector<LogRecord> out;
  ASSERT_TRUE(wal.ReadAll(&out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].before, "before");
  EXPECT_EQ(out[0].after, "after");
}

// --- log-record robustness fuzz ------------------------------------------

LogRecord RandomRecord(Random* rng) {
  LogRecord rec;
  switch (rng->Uniform(5)) {
    case 0:
      rec.type = LogType::kBegin;
      break;
    case 1:
      rec.type = LogType::kCommit;
      break;
    case 2:
      rec.type = LogType::kAbort;
      break;
    case 3:
      rec.type = LogType::kCompensation;
      rec.undo_next_lsn = rng->Next();
      break;
    default:
      rec.type = LogType::kUpdate;
      break;
  }
  rec.lsn = rng->Next();
  rec.prev_lsn = rng->Next();
  rec.txn = TxnId(rng->Next());
  switch (rng->Uniform(3)) {
    case 0:
      rec.op = UpdateOp::kInsert;
      break;
    case 1:
      rec.op = UpdateOp::kUpdate;
      break;
    default:
      rec.op = UpdateOp::kDelete;
      break;
  }
  // Payload fields only travel on update/CLR records (EncodeTo is
  // type-aware), so only populate them there.
  if (rec.type == LogType::kUpdate || rec.type == LogType::kCompensation) {
    rec.table_id = rng->Next();
    rec.rid = rng->Next();
    size_t before_len = rng->Uniform(40);
    size_t after_len = rng->Uniform(40);
    for (size_t i = 0; i < before_len; ++i) {
      rec.before.push_back(static_cast<char>(rng->Uniform(256)));
    }
    for (size_t i = 0; i < after_len; ++i) {
      rec.after.push_back(static_cast<char>(rng->Uniform(256)));
    }
  }
  return rec;
}

// DecodeFrom must reject every strict prefix of a valid encoding without
// reading out of bounds (ASAN-checked) or crashing, and accept the full
// encoding bit-for-bit.
TEST(LogRecordFuzzTest, EveryTruncationReturnsFalse) {
  Random rng(20260806);
  for (int i = 0; i < 50; ++i) {
    LogRecord rec = RandomRecord(&rng);
    std::string bytes;
    rec.EncodeTo(&bytes);
    LogRecord out;
    ASSERT_TRUE(LogRecord::DecodeFrom(Slice(bytes), &out)) << "iter " << i;
    EXPECT_EQ(out.lsn, rec.lsn);
    EXPECT_EQ(out.before, rec.before);
    EXPECT_EQ(out.after, rec.after);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      LogRecord truncated;
      // A prefix may happen to parse (trailing fields are optional in the
      // varint layout); it must never crash or over-read.
      (void)LogRecord::DecodeFrom(Slice(bytes.data(), cut), &truncated);
    }
  }
}

TEST(LogRecordFuzzTest, RandomCorruptionNeverCrashes) {
  Random rng(424242);
  for (int i = 0; i < 300; ++i) {
    LogRecord rec = RandomRecord(&rng);
    std::string bytes;
    rec.EncodeTo(&bytes);
    size_t flips = 1 + rng.Uniform(5);
    for (size_t f = 0; f < flips; ++f) {
      size_t pos = rng.Uniform(bytes.size());
      bytes[pos] = static_cast<char>(bytes[pos] ^ (1 << rng.Uniform(8)));
    }
    LogRecord out;
    (void)LogRecord::DecodeFrom(Slice(bytes), &out);
  }
}

// DecodeLogBuffer over every prefix of a multi-record framed log: only
// complete, checksum-valid records come back, and the torn tail never
// causes a crash or a phantom record.
TEST(LogRecordFuzzTest, DecodeLogBufferHandlesEveryPrefix) {
  auto storage = std::make_shared<InMemoryLogStorage>();
  Wal wal(storage);
  Random rng(7);
  constexpr int kRecords = 6;
  for (int i = 0; i < kRecords; ++i) {
    LogRecord rec = RandomRecord(&rng);
    ASSERT_TRUE(wal.Append(&rec).ok());
  }
  ASSERT_TRUE(wal.FlushAll().ok());
  std::string full;
  ASSERT_TRUE(storage->ReadAll(&full).ok());

  size_t max_decoded = 0;
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    std::vector<LogRecord> out;
    Wal::DecodeLogBuffer(full.substr(0, cut), &out);
    EXPECT_LE(out.size(), static_cast<size_t>(kRecords));
    EXPECT_GE(out.size(), max_decoded);  // prefixes only ever add records
    max_decoded = std::max(max_decoded, out.size());
    for (size_t r = 0; r < out.size(); ++r) {
      EXPECT_EQ(out[r].lsn, r + 1) << "cut=" << cut;
    }
  }
  EXPECT_EQ(max_decoded, static_cast<size_t>(kRecords));

  // Bit flips anywhere in the framed buffer must never crash the decoder.
  for (int i = 0; i < 200; ++i) {
    std::string corrupt = full;
    size_t flips = 1 + rng.Uniform(8);
    for (size_t f = 0; f < flips; ++f) {
      size_t pos = rng.Uniform(corrupt.size());
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << rng.Uniform(8)));
    }
    std::vector<LogRecord> out;
    Wal::DecodeLogBuffer(corrupt, &out);
    EXPECT_LE(out.size(), static_cast<size_t>(kRecords));
  }
}

// A record that passes framing and checksum but breaks LSN contiguity is a
// trashed tail: DecodeLogBuffer must stop there, not replay out-of-order
// history. A log *starting* at an arbitrary LSN is fine (Reset() truncates
// the bytes but keeps numbering).
TEST(LogRecordFuzzTest, DecodeLogBufferStopsAtLsnGap) {
  auto storage = std::make_shared<InMemoryLogStorage>();
  Wal wal(storage);
  Random rng(11);
  constexpr int kRecords = 4;
  for (int i = 0; i < kRecords; ++i) {
    LogRecord rec = RandomRecord(&rng);
    ASSERT_TRUE(wal.Append(&rec).ok());
  }
  ASSERT_TRUE(wal.FlushAll().ok());
  std::string full;
  ASSERT_TRUE(storage->ReadAll(&full).ok());

  // Split the buffer into its four frames (fixed32 len + fixed32 crc +
  // payload) so we can splice them back together in illegal orders.
  std::vector<std::string> frames;
  for (size_t off = 0; off < full.size();) {
    uint32_t len = DecodeFixed32(full.data() + off);
    frames.push_back(full.substr(off, 8 + len));
    off += 8 + len;
  }
  ASSERT_EQ(frames.size(), static_cast<size_t>(kRecords));

  // lsn 1 followed by lsn 3: decoding stops after the first record.
  {
    std::vector<LogRecord> out;
    Lsn next = Wal::DecodeLogBuffer(frames[0] + frames[2], &out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].lsn, 1u);
    EXPECT_EQ(next, 2u);
  }
  // lsn 3 followed by lsn 4: a post-Reset() log legitimately starts past 1.
  {
    std::vector<LogRecord> out;
    Lsn next = Wal::DecodeLogBuffer(frames[2] + frames[3], &out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].lsn, 3u);
    EXPECT_EQ(next, 5u);
  }
  // lsn 2 repeated: the duplicate is dropped along with everything after.
  {
    std::vector<LogRecord> out;
    Lsn next = Wal::DecodeLogBuffer(frames[1] + frames[1] + frames[2], &out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].lsn, 2u);
    EXPECT_EQ(next, 3u);
  }
}

}  // namespace
}  // namespace tendax

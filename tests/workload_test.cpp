// Tests for the synthetic workload generators.

#include <gtest/gtest.h>

#include <map>

#include "workload/generators.h"

namespace tendax {
namespace {

TEST(TypingTraceTest, DeterministicForSeed) {
  TypingTraceGenerator a(42), b(42);
  size_t len = 0;
  for (int i = 0; i < 200; ++i) {
    TypingAction x = a.Next(len);
    TypingAction y = b.Next(len);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.pos, y.pos);
    EXPECT_EQ(x.text, y.text);
    EXPECT_EQ(x.len, y.len);
    if (x.kind == TypingAction::Kind::kInsert) {
      len += x.text.size();
    } else {
      len -= x.len;
    }
  }
}

TEST(TypingTraceTest, ActionsAlwaysValidForDocLength) {
  TypingTraceGenerator gen(7);
  size_t len = 0;
  int inserts = 0, deletes = 0;
  for (int i = 0; i < 2000; ++i) {
    TypingAction action = gen.Next(len);
    if (action.kind == TypingAction::Kind::kInsert) {
      ASSERT_LE(action.pos, len);
      ASSERT_FALSE(action.text.empty());
      len += action.text.size();
      ++inserts;
    } else {
      ASSERT_LT(action.pos, len);
      ASSERT_GE(action.len, 1u);
      ASSERT_LE(action.pos + action.len, len);
      len -= action.len;
      ++deletes;
    }
  }
  // Roughly the configured mix.
  EXPECT_GT(inserts, deletes * 3);
  EXPECT_GT(deletes, 0);
}

TEST(TypingTraceTest, EmptyDocumentOnlyInserts) {
  TypingTraceGenerator gen(9);
  for (int i = 0; i < 50; ++i) {
    TypingAction action = gen.Next(0);
    EXPECT_EQ(action.kind, TypingAction::Kind::kInsert);
    EXPECT_EQ(action.pos, 0u);
    // Simulate rejecting the insert: doc stays empty.
  }
}

TEST(CorpusTest, DocumentsHaveSentencesAndParagraphs) {
  CorpusGenerator corpus(11);
  std::string doc = corpus.Document(300);
  EXPECT_GT(doc.size(), 1000u);
  EXPECT_NE(doc.find(". "), std::string::npos);
  EXPECT_NE(doc.find(".\n\n"), std::string::npos);
}

TEST(CorpusTest, VocabularyIsZipfSkewed) {
  CorpusGenerator corpus(13, /*vocabulary=*/500);
  std::map<std::string, int> counts;
  for (int i = 0; i < 20000; ++i) {
    ++counts[corpus.Word()];
  }
  // The most frequent word should dominate the median word massively.
  int max_count = 0;
  for (const auto& [word, count] : counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_GT(max_count, 1500);           // ~1/ln(500) of 20000 draws
  EXPECT_GT(counts.size(), 100u);       // but the tail is broad
}

TEST(CorpusTest, TitlesAreShortAndDeterministic) {
  CorpusGenerator a(17), b(17);
  for (int i = 0; i < 20; ++i) {
    std::string t1 = a.Title();
    std::string t2 = b.Title();
    EXPECT_EQ(t1, t2);
    EXPECT_LT(t1.size(), 60u);
    EXPECT_NE(t1.find('-'), std::string::npos);
  }
}

}  // namespace
}  // namespace tendax

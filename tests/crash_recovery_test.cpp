#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "core/tendax.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"
#include "testing/fault_injection.h"
#include "testing/fault_plan.h"
#include "util/clock.h"
#include "util/random.h"
#include "workload/generators.h"

namespace tendax {
namespace {

// Crash-torture harness: run a deterministic editing workload against a
// TendaxServer whose storage is wrapped in fault injectors, crash it at an
// injected I/O point, reopen over the surviving bytes, and check the
// recovered state against a shadow model of the committed edits.
//
// Every assertion message carries the FaultPlan description and the
// workload seed, so any failure is a one-line reproduction recipe.
//
// Defaults are bounded for tier-1 runs; scale up via environment:
//   TENDAX_TORTURE_SEED    workload + fault seed        (default 7)
//   TENDAX_TORTURE_POINTS  crash points in the sweep    (default 120)
//   TENDAX_TORTURE_OPS     edits per workload run       (default 90)
//   TENDAX_TORTURE_ITERS   randomized torture rounds    (default 8)

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::strtoull(v, nullptr, 10);
}

constexpr size_t kPoolPages = 64;        // small pool: force evictions
constexpr size_t kCheckpointEvery = 25;  // exercise FlushAll + log reset
constexpr const char* kDocName = "torture.txt";

// What the shadow model knows after a (possibly crashed) workload run.
struct RunOutcome {
  bool setup_ok = false;        // user + document creation succeeded
  std::string committed;        // text after the last successful edit
  bool has_ambiguous = false;   // an edit failed mid-flight
  std::string with_ambiguous;   // `committed` with the failed edit applied
};

// Applies one typing action to a shadow string, clamped the same way the
// generator clamps against the reported document length.
std::string ApplyToShadow(const std::string& text, const TypingAction& a) {
  std::string next = text;
  if (a.kind == TypingAction::Kind::kInsert) {
    next.insert(std::min(a.pos, next.size()), a.text);
  } else {
    size_t pos = std::min(a.pos, next.size());
    next.erase(pos, std::min(a.len, next.size() - pos));
  }
  return next;
}

// Runs the scripted workload against a server whose storage goes through
// fault-injecting wrappers around `disk`/`log`. Stops at the first failed
// edit (under a crash plan every later I/O fails anyway). The server is
// destroyed before returning, modeling the process dying.
//
// `mode` selects the commit-flush path, so the same sweep covers per-commit
// flushing and both group-commit flavors. The flusher only runs when
// commits wait and the batching window is zero, so the I/O op sequence of
// this single-writer workload stays deterministic in every mode.
RunOutcome RunWorkload(const std::shared_ptr<DiskManager>& disk,
                       const std::shared_ptr<LogStorage>& log,
                       const std::shared_ptr<FaultPlan>& plan,
                       uint64_t workload_seed, size_t num_ops,
                       CommitFlushMode mode = CommitFlushMode::kInline) {
  RunOutcome out;
  TendaxOptions options;
  options.db.disk = std::make_shared<FaultInjectingDiskManager>(disk, plan);
  options.db.log_storage =
      std::make_shared<FaultInjectingLogStorage>(log, plan);
  options.db.buffer_pool_pages = kPoolPages;
  options.db.clock = std::make_shared<ManualClock>(1'000'000'000, 1000);
  options.db.group_commit.mode = mode;
  options.db.group_commit.flush_interval = std::chrono::microseconds(0);
  auto server = TendaxServer::Open(std::move(options));
  if (!server.ok()) return out;  // crashed during open/recovery
  auto user = (*server)->accounts()->CreateUser("torture");
  if (!user.ok()) return out;
  auto doc = (*server)->text()->CreateDocument(*user, kDocName);
  if (!doc.ok()) return out;
  out.setup_ok = true;

  TypingTraceGenerator gen(workload_seed);
  std::string shadow;
  for (size_t i = 0; i < num_ops; ++i) {
    TypingAction a = gen.Next(shadow.size());
    std::string next = ApplyToShadow(shadow, a);
    Status st = a.kind == TypingAction::Kind::kInsert
                    ? (*server)
                          ->text()
                          ->InsertText(*user, *doc, a.pos, a.text)
                          .status()
                    : (*server)
                          ->text()
                          ->DeleteRange(*user, *doc, a.pos, a.len)
                          .status();
    if (!st.ok()) {
      // The edit failed mid-flight; whether its commit record reached
      // durable storage is ambiguous, so remember both outcomes.
      out.has_ambiguous = true;
      out.with_ambiguous = next;
      break;
    }
    shadow = next;
    if ((i + 1) % kCheckpointEvery == 0) {
      (void)(*server)->Checkpoint();  // may fail under injection
    }
  }
  out.committed = shadow;
  return out;  // ~TendaxServer: shutdown flushes fail silently post-crash
}

// Reopens the database over the raw (surviving) storage and checks the
// recovered state: open succeeds, the structural integrity sweep passes,
// and the document text matches the shadow model exactly — either the
// committed text, or (when an edit died mid-flight) the committed text
// with that one edit applied.
void VerifyRecovered(const std::shared_ptr<DiskManager>& disk,
                     const std::shared_ptr<LogStorage>& log,
                     const RunOutcome& run, const std::string& context) {
  TendaxOptions options;
  options.db.disk = disk;
  options.db.log_storage = log;
  options.db.buffer_pool_pages = kPoolPages;
  options.db.clock = std::make_shared<ManualClock>(2'000'000'000, 1000);
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok())
      << context << ": reopen failed: " << server.status().ToString();
  Status integrity = (*server)->CheckIntegrity();
  ASSERT_TRUE(integrity.ok())
      << context << ": integrity check failed: " << integrity.ToString();
  auto doc = (*server)->text()->FindDocumentByName(kDocName);
  if (!doc.ok()) {
    // The crash hit before the document creation became durable; no
    // committed edit may be lost with it.
    EXPECT_TRUE(run.committed.empty())
        << context << ": document lost but " << run.committed.size()
        << " committed bytes expected";
    return;
  }
  auto text = (*server)->text()->Text(*doc);
  ASSERT_TRUE(text.ok())
      << context << ": text read failed: " << text.status().ToString();
  bool matches = *text == run.committed ||
                 (run.has_ambiguous && *text == run.with_ambiguous);
  EXPECT_TRUE(matches) << context << "\nrecovered: \"" << *text
                       << "\"\ncommitted: \"" << run.committed << "\""
                       << (run.has_ambiguous
                               ? "\nwith in-flight edit: \"" +
                                     run.with_ambiguous + "\""
                               : "");
}

// Like VerifyRecovered, but for faults that may corrupt a page image (torn
// page writes): the engine has no full-page-write protection, so the
// requirement is "detected, never silent" — reopen either fails cleanly
// (checksum catches the tear) or succeeds with all invariants intact.
void VerifyRecoveredOrDetected(const std::shared_ptr<DiskManager>& disk,
                               const std::shared_ptr<LogStorage>& log,
                               const RunOutcome& run,
                               const std::string& context) {
  TendaxOptions options;
  options.db.disk = disk;
  options.db.log_storage = log;
  options.db.buffer_pool_pages = kPoolPages;
  options.db.clock = std::make_shared<ManualClock>(2'000'000'000, 1000);
  auto server = TendaxServer::Open(std::move(options));
  if (!server.ok()) {
    EXPECT_TRUE(server.status().IsCorruption() || server.status().IsIOError())
        << context
        << ": unexpected reopen error: " << server.status().ToString();
    return;
  }
  Status integrity = (*server)->CheckIntegrity();
  ASSERT_TRUE(integrity.ok())
      << context << ": opened but integrity failed: " << integrity.ToString();
  auto doc = (*server)->text()->FindDocumentByName(kDocName);
  if (!doc.ok()) {
    EXPECT_TRUE(run.committed.empty()) << context << ": document lost";
    return;
  }
  auto text = (*server)->text()->Text(*doc);
  ASSERT_TRUE(text.ok()) << context << ": " << text.status().ToString();
  bool matches = *text == run.committed ||
                 (run.has_ambiguous && *text == run.with_ambiguous);
  EXPECT_TRUE(matches) << context << "\nrecovered: \"" << *text
                       << "\"\ncommitted: \"" << run.committed << "\"";
}

// Profiles the fault-free workload: how many I/O ops, appends, page writes
// and syncs it issues, and that the shadow model agrees with the server.
struct Profile {
  uint64_t total_ops = 0;
  uint64_t appends = 0;
  uint64_t page_writes = 0;
  uint64_t syncs = 0;
};

Profile ProfileWorkload(uint64_t workload_seed, size_t num_ops,
                        CommitFlushMode mode = CommitFlushMode::kInline) {
  auto disk = std::make_shared<InMemoryDiskManager>();
  auto log = std::make_shared<InMemoryLogStorage>();
  auto plan = std::make_shared<FaultPlan>(workload_seed);
  RunOutcome probe = RunWorkload(disk, log, plan, workload_seed, num_ops, mode);
  EXPECT_TRUE(probe.setup_ok) << "fault-free setup failed";
  EXPECT_FALSE(probe.has_ambiguous) << "fault-free run must not fail";
  VerifyRecovered(disk, log, probe, "fault-free baseline");
  Profile p;
  p.total_ops = plan->ops_seen();
  p.appends = plan->appends_seen();
  p.page_writes = plan->page_writes_seen();
  p.syncs = plan->syncs_seen();
  return p;
}

TEST(CrashTortureTest, FaultPlanIsDeterministicAndDescribable) {
  FaultPlan plan(42);
  plan.CrashAtOp(3);
  plan.TearNthLogAppend(2, 5);
  EXPECT_EQ(plan.OnIo(IoOp::kLogAppend, 100).action, FaultAction::kProceed);
  FaultDecision tear = plan.OnIo(IoOp::kLogAppend, 100);
  EXPECT_EQ(tear.action, FaultAction::kTear);
  EXPECT_EQ(tear.keep_bytes, 5u);
  EXPECT_TRUE(plan.crashed());
  // After the tear the plan is crashed: everything fails, backend untouched.
  EXPECT_EQ(plan.OnIo(IoOp::kReadPage, 0).action, FaultAction::kCrashed);
  EXPECT_EQ(plan.ops_seen(), 3u);
  std::string desc = plan.Describe();
  EXPECT_NE(desc.find("seed=42"), std::string::npos) << desc;
  EXPECT_NE(desc.find("LogAppend@2"), std::string::npos) << desc;
  // Disarm models the restart: ops proceed again over the surviving bytes.
  plan.Disarm();
  EXPECT_EQ(plan.OnIo(IoOp::kLogRead, 0).action, FaultAction::kProceed);
}

TEST(CrashTortureTest, InjectedWrappersForwardAndFail) {
  auto disk = std::make_shared<InMemoryDiskManager>();
  auto plan = std::make_shared<FaultPlan>(1);
  FaultInjectingDiskManager injected(disk, plan);
  auto page = injected.AllocatePage();
  ASSERT_TRUE(page.ok());
  char buf[kPageSize] = {};
  buf[100] = 'x';
  ASSERT_TRUE(injected.WritePage(*page, buf).ok());
  plan->FailOp(plan->ops_seen() + 1);
  char read_buf[kPageSize];
  Status st = injected.ReadPage(*page, read_buf);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  // The failure is transient: the next read goes through.
  ASSERT_TRUE(injected.ReadPage(*page, read_buf).ok());
  EXPECT_EQ(read_buf[100], 'x');
}

// The tentpole sweep: crash at >= 100 distinct I/O points strided across
// the whole workload (open, setup, edits, checkpoints, shutdown flushes)
// and verify recovery invariants at every single one.
TEST(CrashTortureTest, CrashPointSweepRecoversEverywhere) {
  const uint64_t seed = EnvU64("TENDAX_TORTURE_SEED", 7);
  const uint64_t target_points = EnvU64("TENDAX_TORTURE_POINTS", 120);
  const size_t num_ops = static_cast<size_t>(EnvU64("TENDAX_TORTURE_OPS", 90));

  Profile profile = ProfileWorkload(seed, num_ops);
  ASSERT_FALSE(::testing::Test::HasFailure());
  ASSERT_GE(profile.total_ops, target_points)
      << "workload too small to yield " << target_points << " crash points";

  const uint64_t stride = std::max<uint64_t>(1, profile.total_ops / target_points);
  uint64_t tested = 0;
  for (uint64_t k = 1; k <= profile.total_ops; k += stride) {
    auto disk = std::make_shared<InMemoryDiskManager>();
    auto log = std::make_shared<InMemoryLogStorage>();
    auto plan = std::make_shared<FaultPlan>(seed);
    plan->CrashAtOp(k);
    RunOutcome run = RunWorkload(disk, log, plan, seed, num_ops);
    std::string context = "crash@" + std::to_string(k) + " " +
                          plan->Describe() +
                          " workload_seed=" + std::to_string(seed);
    VerifyRecovered(disk, log, run, context);
    ++tested;
    if (::testing::Test::HasFailure()) break;  // first failing point only
  }
  EXPECT_GE(tested, std::min<uint64_t>(100, target_points))
      << "sweep covered too few crash points";
}

// The same full crash-point sweep with group commit enabled: commits block
// on a coalesced flush (leader committer or background flusher thread)
// instead of flushing inline, and every crash point must still recover to
// the shadow model. This is the satellite requirement that the torture
// sweep runs with group commit on at >= 100 crash points.
void SweepWithMode(CommitFlushMode mode, const char* mode_name) {
  const uint64_t seed = EnvU64("TENDAX_TORTURE_SEED", 7);
  const uint64_t target_points = EnvU64("TENDAX_TORTURE_POINTS", 120);
  const size_t num_ops = static_cast<size_t>(EnvU64("TENDAX_TORTURE_OPS", 90));

  Profile profile = ProfileWorkload(seed, num_ops, mode);
  ASSERT_FALSE(::testing::Test::HasFailure());
  ASSERT_GE(profile.total_ops, target_points)
      << "workload too small to yield " << target_points << " crash points";

  const uint64_t stride =
      std::max<uint64_t>(1, profile.total_ops / target_points);
  uint64_t tested = 0;
  for (uint64_t k = 1; k <= profile.total_ops; k += stride) {
    auto disk = std::make_shared<InMemoryDiskManager>();
    auto log = std::make_shared<InMemoryLogStorage>();
    auto plan = std::make_shared<FaultPlan>(seed);
    plan->CrashAtOp(k);
    RunOutcome run = RunWorkload(disk, log, plan, seed, num_ops, mode);
    std::string context = std::string(mode_name) + " crash@" +
                          std::to_string(k) + " " + plan->Describe() +
                          " workload_seed=" + std::to_string(seed);
    VerifyRecovered(disk, log, run, context);
    ++tested;
    if (::testing::Test::HasFailure()) break;  // first failing point only
  }
  EXPECT_GE(tested, std::min<uint64_t>(100, target_points))
      << "sweep covered too few crash points";
}

TEST(CrashTortureTest, CrashPointSweepRecoversEverywhereLeaderGroupCommit) {
  SweepWithMode(CommitFlushMode::kLeader, "group-commit/leader");
}

TEST(CrashTortureTest, CrashPointSweepRecoversEverywhereFlusherGroupCommit) {
  SweepWithMode(CommitFlushMode::kFlusherThread, "group-commit/flusher");
}

// Randomized torture: seeded random fault flavors (hard crash, torn log
// append, torn page write) at seeded random points. Failures print the
// exact FaultPlan for deterministic replay.
TEST(CrashTortureTest, RandomizedTortureFlavors) {
  const uint64_t seed = EnvU64("TENDAX_TORTURE_SEED", 7);
  const uint64_t iters = EnvU64("TENDAX_TORTURE_ITERS", 8);
  const size_t num_ops = static_cast<size_t>(EnvU64("TENDAX_TORTURE_OPS", 90));

  Profile profile = ProfileWorkload(seed, num_ops);
  ASSERT_FALSE(::testing::Test::HasFailure());
  ASSERT_GT(profile.appends, 0u);
  ASSERT_GT(profile.page_writes, 0u);

  for (uint64_t iter = 0; iter < iters; ++iter) {
    Random rng(seed * 7919 + iter + 1);
    auto disk = std::make_shared<InMemoryDiskManager>();
    auto log = std::make_shared<InMemoryLogStorage>();
    auto plan = std::make_shared<FaultPlan>(seed + iter);
    uint32_t flavor = rng.Uniform(3);
    bool page_tear = false;
    switch (flavor) {
      case 0:
        plan->CrashAtOp(1 + rng.Uniform(static_cast<uint32_t>(profile.total_ops)));
        break;
      case 1:
        plan->TearNthLogAppend(
            1 + rng.Uniform(static_cast<uint32_t>(profile.appends)));
        break;
      default:
        plan->TearNthPageWrite(
            1 + rng.Uniform(static_cast<uint32_t>(profile.page_writes)));
        page_tear = true;
        break;
    }
    RunOutcome run = RunWorkload(disk, log, plan, seed, num_ops);
    std::string context = "iter=" + std::to_string(iter) + " " +
                          plan->Describe() +
                          " workload_seed=" + std::to_string(seed);
    if (page_tear) {
      VerifyRecoveredOrDetected(disk, log, run, context);
    } else {
      VerifyRecovered(disk, log, run, context);
    }
    if (::testing::Test::HasFailure()) break;
  }
}

// A torn tail record in the log is the normal crash signature and must be
// tolerated: recovery stops at the tear and replays the complete prefix.
TEST(CrashTortureTest, TornLogTailIsToleratedOnReopen) {
  const uint64_t seed = EnvU64("TENDAX_TORTURE_SEED", 7);
  const size_t num_ops = 40;
  Profile profile = ProfileWorkload(seed, num_ops);
  ASSERT_FALSE(::testing::Test::HasFailure());
  ASSERT_GT(profile.appends, 10u);

  // Tear appends at several depths, including a 3-byte stub (inside the
  // length prefix) and a near-complete record.
  for (uint64_t n : {profile.appends / 2, profile.appends - 3}) {
    for (size_t keep : {size_t{0}, size_t{3}, FaultPlan::kAutoTear}) {
      auto disk = std::make_shared<InMemoryDiskManager>();
      auto log = std::make_shared<InMemoryLogStorage>();
      auto plan = std::make_shared<FaultPlan>(seed);
      plan->TearNthLogAppend(n, keep);
      RunOutcome run = RunWorkload(disk, log, plan, seed, num_ops);
      std::string context = "torn tail " + plan->Describe() +
                            " workload_seed=" + std::to_string(seed);
      // Strict check: a torn log tail must never make reopen fail.
      VerifyRecovered(disk, log, run, context);
      if (::testing::Test::HasFailure()) return;
    }
  }
}

// A torn page write leaves a half-new half-old page image. The checksum
// must catch it: reopen either fails with a detected error or recovers
// with every invariant intact — never silent corruption.
TEST(CrashTortureTest, TornPageWriteIsDetectedNeverSilent) {
  const uint64_t seed = EnvU64("TENDAX_TORTURE_SEED", 7);
  const size_t num_ops = 60;
  Profile profile = ProfileWorkload(seed, num_ops);
  ASSERT_FALSE(::testing::Test::HasFailure());
  ASSERT_GT(profile.page_writes, 2u);

  for (uint64_t n :
       {uint64_t{1}, profile.page_writes / 2, profile.page_writes - 1}) {
    auto disk = std::make_shared<InMemoryDiskManager>();
    auto log = std::make_shared<InMemoryLogStorage>();
    auto plan = std::make_shared<FaultPlan>(seed);
    plan->TearNthPageWrite(n);
    RunOutcome run = RunWorkload(disk, log, plan, seed, num_ops);
    std::string context = "torn page " + plan->Describe() +
                          " workload_seed=" + std::to_string(seed);
    VerifyRecoveredOrDetected(disk, log, run, context);
    if (::testing::Test::HasFailure()) return;
  }
}

// Regression for the RecoveryStats bookkeeping (the undo loop used to
// clobber `losers` with a dead store before the final recompute): a known
// workload — two committed transactions, one in flight at the crash — must
// produce exactly these counters, including the checkpoint-related fields
// staying at their no-checkpoint defaults.
TEST(CrashTortureTest, RecoveryStatsAreExactForKnownWorkload) {
  auto disk = std::make_shared<InMemoryDiskManager>();
  auto log = std::make_shared<InMemoryLogStorage>();

  DatabaseOptions options;
  options.buffer_pool_pages = kPoolPages;
  options.disk = disk;
  options.log_storage = log;
  auto opened = Database::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);

  Schema schema({{"id", ColumnType::kUint64}, {"name", ColumnType::kString}});
  auto t = db->CreateTable("docs", schema);  // txn 1: committed (catalog)
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(db->txns()
                  ->RunInTxn(UserId(1),
                             [&](Transaction* txn) -> Status {  // txn 2
                               for (uint64_t i = 0; i < 5; ++i) {
                                 auto r = (*t)->Insert(
                                     txn, Record({i, "r" + std::to_string(i)}));
                                 if (!r.ok()) return r.status();
                               }
                               return Status::OK();
                             })
                  .ok());
  Transaction* loser = db->txns()->Begin(UserId(2));  // txn 3: in flight
  ASSERT_TRUE(
      (*t)->Insert(loser, Record({uint64_t{100}, std::string("lost")})).ok());
  ASSERT_TRUE(
      (*t)->Insert(loser, Record({uint64_t{101}, std::string("lost2")})).ok());
  ASSERT_TRUE(db->wal()->FlushAll().ok());

  // Count the durable records so the scan assertions are exact.
  std::string raw;
  ASSERT_TRUE(log->ReadAll(&raw).ok());
  std::vector<LogRecord> durable;
  Wal::DecodeLogBuffer(raw, &durable);
  ASSERT_GT(durable.size(), 7u);

  db->SimulateCrash();
  db.reset();
  auto reopened = Database::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

  const RecoveryStats& stats = (*reopened)->recovery_stats();
  EXPECT_EQ(stats.records_scanned, durable.size());
  EXPECT_EQ(stats.records_skipped, 0u);
  EXPECT_EQ(stats.checkpoint_lsn, kInvalidLsn);
  EXPECT_EQ(stats.txns_seen, 3u);
  EXPECT_EQ(stats.winners, 2u);
  EXPECT_EQ(stats.losers, 1u);
  EXPECT_EQ(stats.undo_applied, 2u) << "exactly the loser's two inserts";
  EXPECT_GE(stats.redo_applied, 7u);

  auto table = (*reopened)->GetTable("docs");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*(*table)->Count(), 5u);
}

// A transient fsync failure at commit time must not wedge the engine: the
// failed transaction rolls back, its locks release, and later edits on the
// same document keep working.
TEST(CrashTortureTest, TransientCommitFlushFailureKeepsEngineUsable) {
  const uint64_t seed = EnvU64("TENDAX_TORTURE_SEED", 7);
  auto disk = std::make_shared<InMemoryDiskManager>();
  auto log = std::make_shared<InMemoryLogStorage>();
  auto plan = std::make_shared<FaultPlan>(seed);

  TendaxOptions options;
  options.db.disk = std::make_shared<FaultInjectingDiskManager>(disk, plan);
  options.db.log_storage =
      std::make_shared<FaultInjectingLogStorage>(log, plan);
  options.db.buffer_pool_pages = kPoolPages;
  options.db.clock = std::make_shared<ManualClock>(1'000'000'000, 1000);
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto user = (*server)->accounts()->CreateUser("torture");
  ASSERT_TRUE(user.ok());
  auto doc = (*server)->text()->CreateDocument(*user, kDocName);
  ASSERT_TRUE(doc.ok());

  TypingTraceGenerator gen(seed);
  std::string shadow;
  size_t failures = 0;
  for (size_t i = 0; i < 40; ++i) {
    if (i == 10) {
      // Fail the very next sync: each edit transaction's commit flush is
      // the first sync it issues (listener transactions sync later), so
      // this deterministically kills edit #10's commit.
      plan->FailNthSync(plan->syncs_seen() + 1);
    }
    TypingAction a = gen.Next(shadow.size());
    std::string next = ApplyToShadow(shadow, a);
    Status st = a.kind == TypingAction::Kind::kInsert
                    ? (*server)
                          ->text()
                          ->InsertText(*user, *doc, a.pos, a.text)
                          .status()
                    : (*server)
                          ->text()
                          ->DeleteRange(*user, *doc, a.pos, a.len)
                          .status();
    if (st.ok()) {
      shadow = next;
    } else {
      ++failures;
      EXPECT_TRUE(st.IsIOError()) << st.ToString();
    }
  }
  EXPECT_EQ(failures, 1u) << plan->Describe();
  // No leaked transactions or locks: the stream kept going after the
  // failure and the live text matches the shadow of successful edits.
  EXPECT_EQ((*server)->db()->txns()->ActiveCount(), 0u);
  auto text = (*server)->text()->Text(*doc);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(*text, shadow) << plan->Describe();
  Status integrity = (*server)->CheckIntegrity();
  EXPECT_TRUE(integrity.ok()) << integrity.ToString();
}

}  // namespace
}  // namespace tendax

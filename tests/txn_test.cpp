// Tests for the lock manager (modes, blocking, deadlock detection) and the
// transaction manager (lifecycle, events, retry loop).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "txn/lock_manager.h"
#include "txn/txn_manager.h"
#include "util/clock.h"

namespace tendax {
namespace {

TEST(LockModeTest, CompatibilityMatrix) {
  using L = LockMode;
  // Classic hierarchical matrix.
  EXPECT_TRUE(LockCompatible(L::kIS, L::kIS));
  EXPECT_TRUE(LockCompatible(L::kIS, L::kIX));
  EXPECT_TRUE(LockCompatible(L::kIS, L::kS));
  EXPECT_FALSE(LockCompatible(L::kIS, L::kX));
  EXPECT_TRUE(LockCompatible(L::kIX, L::kIX));
  EXPECT_FALSE(LockCompatible(L::kIX, L::kS));
  EXPECT_FALSE(LockCompatible(L::kIX, L::kX));
  EXPECT_TRUE(LockCompatible(L::kS, L::kS));
  EXPECT_FALSE(LockCompatible(L::kS, L::kX));
  EXPECT_FALSE(LockCompatible(L::kX, L::kX));
  // Symmetry.
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(LockCompatible(static_cast<L>(a), static_cast<L>(b)),
                LockCompatible(static_cast<L>(b), static_cast<L>(a)));
    }
  }
}

TEST(LockModeTest, CoversAndSupremum) {
  using L = LockMode;
  EXPECT_TRUE(LockCovers(L::kX, L::kS));
  EXPECT_TRUE(LockCovers(L::kX, L::kIX));
  EXPECT_TRUE(LockCovers(L::kS, L::kIS));
  EXPECT_FALSE(LockCovers(L::kS, L::kIX));
  EXPECT_FALSE(LockCovers(L::kIS, L::kS));
  EXPECT_EQ(LockSupremum(L::kIX, L::kS), L::kX);  // no SIX mode
  EXPECT_EQ(LockSupremum(L::kIS, L::kIX), L::kIX);
  EXPECT_EQ(LockSupremum(L::kS, L::kS), L::kS);
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  uint64_t res = MakeResource(ResourceKind::kDocument, 1);
  EXPECT_TRUE(lm.Acquire(TxnId(1), res, LockMode::kS).ok());
  EXPECT_TRUE(lm.Acquire(TxnId(2), res, LockMode::kS).ok());
  EXPECT_EQ(lm.LockedResourceCount(), 1u);
  lm.ReleaseAll(TxnId(1));
  lm.ReleaseAll(TxnId(2));
  EXPECT_EQ(lm.LockedResourceCount(), 0u);
}

TEST(LockManagerTest, ExclusiveBlocksAndUnblocks) {
  LockManager lm(std::chrono::milliseconds(5000));
  uint64_t res = MakeResource(ResourceKind::kDocument, 1);
  ASSERT_TRUE(lm.Acquire(TxnId(1), res, LockMode::kX).ok());

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    EXPECT_TRUE(lm.Acquire(TxnId(2), res, LockMode::kX).ok());
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired);
  lm.ReleaseAll(TxnId(1));
  waiter.join();
  EXPECT_TRUE(acquired);
  EXPECT_GE(lm.stats().waits, 1u);
  lm.ReleaseAll(TxnId(2));
}

TEST(LockManagerTest, TimeoutReturnsConflict) {
  LockManager lm(std::chrono::milliseconds(50));
  uint64_t res = MakeResource(ResourceKind::kDocument, 1);
  ASSERT_TRUE(lm.Acquire(TxnId(1), res, LockMode::kX).ok());
  Status st = lm.Acquire(TxnId(2), res, LockMode::kS);
  EXPECT_TRUE(st.IsConflict()) << st.ToString();
  EXPECT_GE(lm.stats().timeouts, 1u);
  lm.ReleaseAll(TxnId(1));
}

TEST(LockManagerTest, UpgradeSharedToExclusive) {
  LockManager lm;
  uint64_t res = MakeResource(ResourceKind::kDocument, 1);
  ASSERT_TRUE(lm.Acquire(TxnId(1), res, LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(TxnId(1), res, LockMode::kX).ok());
  // Now exclusive: a shared request from another txn must block until
  // txn 1 releases.
  std::atomic<bool> got{false};
  std::thread t([&] {
    Status s = lm.Acquire(TxnId(2), res, LockMode::kS);
    got = s.ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got);
  lm.ReleaseAll(TxnId(1));
  t.join();
  EXPECT_TRUE(got);
  lm.ReleaseAll(TxnId(2));
}

TEST(LockManagerTest, IntentionLocksAllowFineGrainedSharing) {
  LockManager lm;
  uint64_t doc = MakeResource(ResourceKind::kDocument, 1);
  uint64_t region_a = MakeResource(ResourceKind::kRegion, 100);
  uint64_t region_b = MakeResource(ResourceKind::kRegion, 200);
  // Two writers in different regions of the same document.
  EXPECT_TRUE(lm.Acquire(TxnId(1), doc, LockMode::kIX).ok());
  EXPECT_TRUE(lm.Acquire(TxnId(2), doc, LockMode::kIX).ok());
  EXPECT_TRUE(lm.Acquire(TxnId(1), region_a, LockMode::kX).ok());
  EXPECT_TRUE(lm.Acquire(TxnId(2), region_b, LockMode::kX).ok());
  lm.ReleaseAll(TxnId(1));
  lm.ReleaseAll(TxnId(2));
}

TEST(LockManagerTest, DeadlockDetectedAndVictimChosen) {
  LockManager lm(std::chrono::milliseconds(5000));
  uint64_t r1 = MakeResource(ResourceKind::kDocument, 1);
  uint64_t r2 = MakeResource(ResourceKind::kDocument, 2);
  ASSERT_TRUE(lm.Acquire(TxnId(1), r1, LockMode::kX).ok());
  ASSERT_TRUE(lm.Acquire(TxnId(2), r2, LockMode::kX).ok());

  std::atomic<int> deadlocks{0};
  std::thread t1([&] {
    Status st = lm.Acquire(TxnId(1), r2, LockMode::kX);
    if (st.IsDeadlock()) {
      ++deadlocks;
      lm.ReleaseAll(TxnId(1));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread t2([&] {
    Status st = lm.Acquire(TxnId(2), r1, LockMode::kX);
    if (st.IsDeadlock()) {
      ++deadlocks;
      lm.ReleaseAll(TxnId(2));
    }
  });
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1);
  EXPECT_GE(lm.stats().deadlocks, 1u);
  lm.ReleaseAll(TxnId(1));
  lm.ReleaseAll(TxnId(2));
}

// ---------- TxnManager ----------

class TxnManagerTest : public ::testing::Test {
 protected:
  TxnManagerTest()
      : wal_(std::make_shared<InMemoryLogStorage>()),
        clock_(std::make_shared<ManualClock>()),
        txns_(&wal_, &locks_, clock_.get(), /*sync_commit=*/true) {}

  Wal wal_;
  LockManager locks_;
  std::shared_ptr<ManualClock> clock_;
  TxnManager txns_;
};

TEST_F(TxnManagerTest, LifecycleCounters) {
  Transaction* a = txns_.Begin(UserId(1));
  EXPECT_EQ(txns_.ActiveCount(), 1u);
  EXPECT_EQ(a->state(), TxnState::kActive);
  ASSERT_TRUE(txns_.Commit(a).ok());
  EXPECT_EQ(txns_.ActiveCount(), 0u);

  Transaction* b = txns_.Begin(UserId(1));
  ASSERT_TRUE(txns_.Abort(b).ok());
  auto stats = txns_.stats();
  EXPECT_EQ(stats.begun, 2u);
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.aborted, 1u);
}

TEST_F(TxnManagerTest, CommitReleasesLocks) {
  uint64_t res = MakeResource(ResourceKind::kDocument, 1);
  Transaction* a = txns_.Begin(UserId(1));
  ASSERT_TRUE(locks_.Acquire(a->id(), res, LockMode::kX).ok());
  ASSERT_TRUE(txns_.Commit(a).ok());
  // Lock is gone: another txn gets it instantly.
  Transaction* b = txns_.Begin(UserId(2));
  EXPECT_TRUE(locks_.Acquire(b->id(), res, LockMode::kX).ok());
  ASSERT_TRUE(txns_.Commit(b).ok());
}

TEST_F(TxnManagerTest, CommitListenersReceiveEvents) {
  std::vector<ChangeEvent> received;
  txns_.AddCommitListener(
      [&](TxnId, UserId user, const ChangeBatch& batch) {
        EXPECT_EQ(user.value, 5u);
        received.insert(received.end(), batch.begin(), batch.end());
      });
  Transaction* txn = txns_.Begin(UserId(5));
  ChangeEvent ev;
  ev.kind = ChangeKind::kTextInserted;
  ev.doc = DocumentId(3);
  ev.user = txn->user();
  ev.detail = "abc";
  txn->AddEvent(ev);
  ASSERT_TRUE(txns_.Commit(txn).ok());
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].kind, ChangeKind::kTextInserted);
  EXPECT_EQ(received[0].detail, "abc");
}

TEST_F(TxnManagerTest, AbortedTxnPublishesNothing) {
  int calls = 0;
  txns_.AddCommitListener(
      [&](TxnId, UserId, const ChangeBatch&) { ++calls; });
  Transaction* txn = txns_.Begin(UserId(5));
  ChangeEvent ev;
  ev.kind = ChangeKind::kTextInserted;
  txn->AddEvent(ev);
  ASSERT_TRUE(txns_.Abort(txn).ok());
  EXPECT_EQ(calls, 0);
}

TEST_F(TxnManagerTest, RunInTxnCommitsOnSuccess) {
  Status st = txns_.RunInTxn(UserId(1), [&](Transaction*) {
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(txns_.stats().committed, 1u);
}

TEST_F(TxnManagerTest, RunInTxnAbortsOnFailure) {
  Status st = txns_.RunInTxn(UserId(1), [&](Transaction*) {
    return Status::InvalidArgument("boom");
  });
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(txns_.stats().aborted, 1u);
  EXPECT_EQ(txns_.stats().committed, 0u);
}

TEST_F(TxnManagerTest, RunInTxnRetriesRetryableFailures) {
  int attempts = 0;
  Status st = txns_.RunInTxn(UserId(1), [&](Transaction*) -> Status {
    if (++attempts < 3) return Status::Conflict("try again");
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(txns_.stats().aborted, 2u);
  EXPECT_EQ(txns_.stats().committed, 1u);
}

TEST_F(TxnManagerTest, RunInTxnGivesUpAfterMaxRetries) {
  int attempts = 0;
  Status st = txns_.RunInTxn(
      UserId(1),
      [&](Transaction*) -> Status {
        ++attempts;
        return Status::Deadlock("always");
      },
      /*max_retries=*/2);
  EXPECT_TRUE(st.IsDeadlock());
  EXPECT_EQ(attempts, 3);  // initial + 2 retries
}

TEST_F(TxnManagerTest, WalContainsBeginCommitChain) {
  Transaction* txn = txns_.Begin(UserId(1));
  ASSERT_TRUE(txns_.LogUpdate(txn, UpdateOp::kInsert, 7, 3, "", "img").ok());
  ASSERT_TRUE(txns_.Commit(txn).ok());
  std::vector<LogRecord> log;
  ASSERT_TRUE(wal_.ReadAll(&log).ok());
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].type, LogType::kBegin);
  EXPECT_EQ(log[1].type, LogType::kUpdate);
  EXPECT_EQ(log[1].prev_lsn, log[0].lsn);
  EXPECT_EQ(log[2].type, LogType::kCommit);
  EXPECT_EQ(log[2].prev_lsn, log[1].lsn);
}

}  // namespace
}  // namespace tendax

// Tests for the wire protocol: codec round-trips, corrupt-input handling,
// and two "remote" editors collaborating purely through bytes.

#include <gtest/gtest.h>

#include "collab/wire.h"
#include "server_fixture.h"

namespace tendax {
namespace {

TEST(WireCodecTest, CommandRoundTrip) {
  EditCommand command;
  command.kind = CommandKind::kType;
  command.doc = DocumentId(42);
  command.pos = 7;
  command.len = 3;
  command.text = "payload text";
  command.extra = "attr-value";
  auto decoded = DecodeCommand(EncodeCommand(command));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, CommandKind::kType);
  EXPECT_EQ(decoded->doc, DocumentId(42));
  EXPECT_EQ(decoded->pos, 7u);
  EXPECT_EQ(decoded->len, 3u);
  EXPECT_EQ(decoded->text, "payload text");
  EXPECT_EQ(decoded->extra, "attr-value");
}

TEST(WireCodecTest, ResponseRoundTrip) {
  WireResponse response;
  response.code = StatusCode::kPermissionDenied;
  response.message = "nope";
  response.payload = std::string("bin\0data", 8);
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kPermissionDenied);
  EXPECT_EQ(decoded->message, "nope");
  EXPECT_EQ(decoded->payload.size(), 8u);
}

TEST(WireCodecTest, EventBatchRoundTrip) {
  ChangeBatch batch;
  for (int i = 0; i < 3; ++i) {
    ChangeEvent event;
    event.kind = ChangeKind::kTextInserted;
    event.doc = DocumentId(i + 1);
    event.user = UserId(9);
    event.version = 100 + i;
    event.at = 1234567;
    event.anchor = CharId(55);
    event.count = 4;
    event.detail = "abc" + std::to_string(i);
    batch.push_back(event);
  }
  auto decoded = DecodeEventBatch(EncodeEventBatch(batch));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[2].detail, "abc2");
  EXPECT_EQ((*decoded)[1].version, 101u);
  EXPECT_EQ((*decoded)[0].doc, DocumentId(1));
}

TEST(WireCodecTest, CorruptInputRejected) {
  EXPECT_TRUE(DecodeCommand(Slice("")).status().IsCorruption());
  EXPECT_TRUE(DecodeResponse(Slice("")).status().IsCorruption());
  EditCommand command;
  command.kind = CommandKind::kType;
  command.text = "hello";
  std::string bytes = EncodeCommand(command);
  bytes.resize(bytes.size() - 3);  // torn
  EXPECT_TRUE(DecodeCommand(bytes).status().IsCorruption());
}

class WireSessionTest : public ServerTest {};

TEST_F(WireSessionTest, RemoteEditorsCollaborateOverBytes) {
  // Two editors on "different machines": everything crosses the codec.
  auto alice_editor = server_->AttachEditor(alice_, "remote-windows");
  auto bob_editor = server_->AttachEditor(bob_, "remote-macos");
  RemoteEditorEndpoint alice_link(alice_editor->get());
  RemoteEditorEndpoint bob_link(bob_editor->get());

  DocumentId doc = MakeDoc(alice_, "over-the-wire", "");

  auto send = [](RemoteEditorEndpoint& link, const EditCommand& command) {
    auto response = DecodeResponse(link.Handle(EncodeCommand(command)));
    EXPECT_TRUE(response.ok());
    return *response;
  };
  auto cmd = [&](CommandKind kind, uint64_t pos = 0, uint64_t len = 0,
                 std::string text = "", std::string extra = "") {
    EditCommand command;
    command.kind = kind;
    command.doc = doc;
    command.pos = pos;
    command.len = len;
    command.text = std::move(text);
    command.extra = std::move(extra);
    return command;
  };

  // Both open; alice types; bob sees the text and the event, over bytes.
  EXPECT_EQ(send(alice_link, cmd(CommandKind::kOpen)).code, StatusCode::kOk);
  EXPECT_EQ(send(bob_link, cmd(CommandKind::kOpen)).code, StatusCode::kOk);
  (void)bob_link.PollEventsWire();  // drain the read backlog
  EXPECT_EQ(send(alice_link, cmd(CommandKind::kType, 0, 0, "typed remotely"))
                .code,
            StatusCode::kOk);
  auto bob_view = send(bob_link, cmd(CommandKind::kGetText));
  EXPECT_EQ(bob_view.payload, "typed remotely");

  auto wire_events = bob_link.PollEventsWire();
  ASSERT_TRUE(wire_events.ok());
  auto batch = DecodeEventBatch(*wire_events);
  ASSERT_TRUE(batch.ok());
  bool saw_insert = false;
  for (const ChangeEvent& event : *batch) {
    if (event.kind == ChangeKind::kTextInserted) saw_insert = true;
  }
  EXPECT_TRUE(saw_insert);

  // Copy/paste via a server-side clipboard handle.
  auto copy = send(bob_link, cmd(CommandKind::kCopy, 0, 5));
  ASSERT_EQ(copy.code, StatusCode::kOk);
  EXPECT_EQ(send(bob_link, cmd(CommandKind::kPaste, 14, 0, copy.payload))
                .code,
            StatusCode::kOk);
  EXPECT_EQ(send(alice_link, cmd(CommandKind::kGetText)).payload,
            "typed remotelytyped");

  // Layout and undo flow through too.
  EXPECT_EQ(send(alice_link,
                 cmd(CommandKind::kApplyLayout, 0, 5, "bold", "true"))
                .code,
            StatusCode::kOk);
  EXPECT_EQ(send(bob_link, cmd(CommandKind::kUndo)).code, StatusCode::kOk);
  EXPECT_EQ(send(alice_link, cmd(CommandKind::kGetText)).payload,
            "typed remotely");

  // Errors come back as wire codes, not crashes.
  auto bad = send(alice_link, cmd(CommandKind::kErase, 1000, 5));
  EXPECT_EQ(bad.code, StatusCode::kOutOfRange);
  auto bogus_clip = send(bob_link, cmd(CommandKind::kPaste, 0, 0, "99"));
  EXPECT_EQ(bogus_clip.code, StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tendax

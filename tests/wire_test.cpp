// Tests for the wire protocol: codec round-trips, corrupt-input handling,
// and two "remote" editors collaborating purely through bytes.

#include <gtest/gtest.h>

#include "collab/wire.h"
#include "obs/metrics.h"
#include "server_fixture.h"
#include "util/random.h"

namespace tendax {
namespace {

// --- randomized codec property tests ------------------------------------

std::string RandomBlob(Random* rng, size_t max_len) {
  std::string out;
  size_t len = rng->Uniform(max_len + 1);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng->Uniform(256)));
  }
  return out;
}

EditCommand RandomCommand(Random* rng) {
  EditCommand command;
  command.kind = static_cast<CommandKind>(1 + rng->Uniform(kCommandKindMax));
  command.request_id = rng->Next();
  command.doc = DocumentId(rng->Next());
  command.pos = rng->Next();
  command.len = rng->Next();
  command.text = RandomBlob(rng, 64);
  command.extra = RandomBlob(rng, 32);
  command.deadline_micros = rng->Next();
  return command;
}

WireResponse RandomResponse(Random* rng) {
  WireResponse response;
  // Codes beyond kStatusCodeMax do not exist; the decoder rejects them (see
  // UnknownEnumValuesRejected), so valid inputs stay in range.
  response.code = static_cast<StatusCode>(
      rng->Uniform(static_cast<uint64_t>(kStatusCodeMax) + 1));
  response.message = RandomBlob(rng, 48);
  response.payload = RandomBlob(rng, 96);
  response.retry_after_micros = rng->Next();
  return response;
}

ChangeEvent RandomEvent(Random* rng) {
  ChangeEvent event;
  event.kind = static_cast<ChangeKind>(1 + rng->Uniform(kChangeKindMax));
  event.doc = DocumentId(rng->Next());
  event.user = UserId(rng->Next());
  event.version = rng->Next();
  event.at = static_cast<Timestamp>(rng->Next());
  event.anchor = CharId(rng->Next());
  event.count = rng->Next();
  event.detail = RandomBlob(rng, 40);
  return event;
}

TEST(WireCodecTest, CommandRoundTrip) {
  EditCommand command;
  command.kind = CommandKind::kType;
  command.doc = DocumentId(42);
  command.pos = 7;
  command.len = 3;
  command.text = "payload text";
  command.extra = "attr-value";
  command.deadline_micros = 1'700'000'123'456ULL;
  auto decoded = DecodeCommand(EncodeCommand(command));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, CommandKind::kType);
  EXPECT_EQ(decoded->doc, DocumentId(42));
  EXPECT_EQ(decoded->pos, 7u);
  EXPECT_EQ(decoded->len, 3u);
  EXPECT_EQ(decoded->text, "payload text");
  EXPECT_EQ(decoded->extra, "attr-value");
  EXPECT_EQ(decoded->deadline_micros, 1'700'000'123'456ULL);
}

TEST(WireCodecTest, ResponseRoundTrip) {
  WireResponse response;
  response.code = StatusCode::kPermissionDenied;
  response.message = "nope";
  response.payload = std::string("bin\0data", 8);
  response.retry_after_micros = 12'500;
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kPermissionDenied);
  EXPECT_EQ(decoded->message, "nope");
  EXPECT_EQ(decoded->payload.size(), 8u);
  EXPECT_EQ(decoded->retry_after_micros, 12'500u);
}

TEST(WireCodecTest, UnavailableResponseCarriesRetryAfter) {
  WireResponse shed;
  shed.code = StatusCode::kUnavailable;
  shed.message = "admission queue full";
  shed.retry_after_micros = 64'000;
  auto decoded = DecodeResponse(EncodeResponse(shed));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kUnavailable);
  EXPECT_EQ(decoded->retry_after_micros, 64'000u);
  // The two new status codes introduced with the overload layer survive
  // the wire unchanged.
  WireResponse expired;
  expired.code = StatusCode::kDeadlineExceeded;
  auto decoded2 = DecodeResponse(EncodeResponse(expired));
  ASSERT_TRUE(decoded2.ok());
  EXPECT_EQ(decoded2->code, StatusCode::kDeadlineExceeded);
}

TEST(WireCodecTest, EventBatchRoundTrip) {
  ChangeBatch batch;
  for (int i = 0; i < 3; ++i) {
    ChangeEvent event;
    event.kind = ChangeKind::kTextInserted;
    event.doc = DocumentId(i + 1);
    event.user = UserId(9);
    event.version = 100 + i;
    event.at = 1234567;
    event.anchor = CharId(55);
    event.count = 4;
    event.detail = "abc" + std::to_string(i);
    batch.push_back(event);
  }
  auto decoded = DecodeEventBatch(EncodeEventBatch(batch));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[2].detail, "abc2");
  EXPECT_EQ((*decoded)[1].version, 101u);
  EXPECT_EQ((*decoded)[0].doc, DocumentId(1));
}

TEST(WireCodecTest, CorruptInputRejected) {
  EXPECT_TRUE(DecodeCommand(Slice("")).status().IsCorruption());
  EXPECT_TRUE(DecodeResponse(Slice("")).status().IsCorruption());
  EditCommand command;
  command.kind = CommandKind::kType;
  command.text = "hello";
  std::string bytes = EncodeCommand(command);
  bytes.resize(bytes.size() - 3);  // torn
  EXPECT_TRUE(DecodeCommand(bytes).status().IsCorruption());
}

// Strictness regressions: decoders reject unknown enum values and trailing
// garbage with kInvalidArgument instead of best-effort acceptance.
TEST(WireCodecTest, UnknownEnumValuesRejected) {
  EditCommand command;
  command.kind = CommandKind::kType;
  command.text = "x";
  std::string bytes = EncodeCommand(command);

  std::string zero_kind = bytes;
  zero_kind[0] = 0;
  EXPECT_TRUE(DecodeCommand(zero_kind).status().IsInvalidArgument());
  std::string high_kind = bytes;
  high_kind[0] = static_cast<char>(kCommandKindMax + 1);
  EXPECT_TRUE(DecodeCommand(high_kind).status().IsInvalidArgument());
  high_kind[0] = static_cast<char>(0xEE);
  EXPECT_TRUE(DecodeCommand(high_kind).status().IsInvalidArgument());

  WireResponse response;
  response.code = StatusCode::kOk;
  std::string response_bytes = EncodeResponse(response);
  response_bytes[0] =
      static_cast<char>(static_cast<uint8_t>(kStatusCodeMax) + 1);
  EXPECT_TRUE(DecodeResponse(response_bytes).status().IsInvalidArgument());

  ChangeEvent event;
  event.kind = ChangeKind::kTextInserted;
  std::string event_bytes = EncodeEvent(event);
  event_bytes[0] = 0;  // varint kind = 0
  EXPECT_TRUE(DecodeEvent(event_bytes).status().IsInvalidArgument());
  event_bytes[0] = static_cast<char>(kChangeKindMax + 1);
  EXPECT_TRUE(DecodeEvent(event_bytes).status().IsInvalidArgument());
}

TEST(WireCodecTest, TrailingBytesRejected) {
  EditCommand command;
  command.kind = CommandKind::kErase;
  command.pos = 3;
  command.len = 2;
  std::string bytes = EncodeCommand(command) + "x";
  EXPECT_TRUE(DecodeCommand(bytes).status().IsInvalidArgument());

  WireResponse response;
  response.payload = "p";
  std::string response_bytes = EncodeResponse(response) + "tail";
  EXPECT_TRUE(DecodeResponse(response_bytes).status().IsInvalidArgument());

  ChangeBatch batch{ChangeEvent{}};
  batch[0].kind = ChangeKind::kTextDeleted;
  std::string batch_bytes = EncodeEventBatch(batch);
  batch_bytes.push_back('\0');
  EXPECT_TRUE(DecodeEventBatch(batch_bytes).status().IsInvalidArgument());
}

TEST(WireCodecTest, RequestIdRoundTrips) {
  EditCommand command;
  command.kind = CommandKind::kType;
  command.request_id = 0xDEADBEEFCAFEULL;
  command.text = "retry me";
  auto decoded = DecodeCommand(EncodeCommand(command));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->request_id, 0xDEADBEEFCAFEULL);
}

TEST(WireCodecTest, SeqEventBatchRoundTripAndFuzz) {
  Random rng(20260808);
  for (int i = 0; i < 50; ++i) {
    std::vector<SeqEvent> batch;
    size_t n = rng.Uniform(6);
    for (size_t j = 0; j < n; ++j) {
      batch.push_back(SeqEvent{rng.Next(), RandomEvent(&rng)});
    }
    std::string bytes = EncodeSeqEventBatch(batch);
    auto decoded = DecodeSeqEventBatch(bytes);
    ASSERT_TRUE(decoded.ok()) << "iter " << i;
    ASSERT_EQ(decoded->size(), batch.size());
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ((*decoded)[j].seq, batch[j].seq);
      EXPECT_EQ((*decoded)[j].event.kind, batch[j].event.kind);
      EXPECT_EQ((*decoded)[j].event.detail, batch[j].event.detail);
    }
    // Every truncation and bit flip fails cleanly or decodes; never crashes.
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      (void)DecodeSeqEventBatch(Slice(bytes.data(), cut));
    }
    if (!bytes.empty()) {
      std::string flipped = bytes;
      size_t pos = rng.Uniform(flipped.size());
      flipped[pos] = static_cast<char>(flipped[pos] ^ (1 << rng.Uniform(8)));
      (void)DecodeSeqEventBatch(flipped);
    }
  }
}

TEST(WireCodecTest, FrameChecksumDetectsEveryBitFlip) {
  Random rng(7);
  const std::string body = RandomBlob(&rng, 64) + "payload";
  std::string frame = SealFrame(body);
  auto opened = OpenFrame(frame);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, body);
  for (size_t pos = 0; pos < frame.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = frame;
      damaged[pos] = static_cast<char>(damaged[pos] ^ (1 << bit));
      EXPECT_TRUE(OpenFrame(damaged).status().IsCorruption())
          << "flip at byte " << pos << " bit " << bit;
    }
  }
  EXPECT_TRUE(OpenFrame(Slice("abc")).status().IsCorruption());
}

TEST(WireCodecTest, RandomizedRoundTrips) {
  Random rng(20260806);
  for (int i = 0; i < 300; ++i) {
    EditCommand command = RandomCommand(&rng);
    auto decoded = DecodeCommand(EncodeCommand(command));
    ASSERT_TRUE(decoded.ok()) << "iter " << i;
    EXPECT_EQ(decoded->kind, command.kind);
    EXPECT_EQ(decoded->doc, command.doc);
    EXPECT_EQ(decoded->pos, command.pos);
    EXPECT_EQ(decoded->len, command.len);
    EXPECT_EQ(decoded->text, command.text);
    EXPECT_EQ(decoded->extra, command.extra);

    WireResponse response = RandomResponse(&rng);
    auto response_decoded = DecodeResponse(EncodeResponse(response));
    ASSERT_TRUE(response_decoded.ok()) << "iter " << i;
    EXPECT_EQ(response_decoded->code, response.code);
    EXPECT_EQ(response_decoded->message, response.message);
    EXPECT_EQ(response_decoded->payload, response.payload);

    ChangeBatch batch;
    size_t n = rng.Uniform(5);
    for (size_t j = 0; j < n; ++j) batch.push_back(RandomEvent(&rng));
    auto batch_decoded = DecodeEventBatch(EncodeEventBatch(batch));
    ASSERT_TRUE(batch_decoded.ok()) << "iter " << i;
    ASSERT_EQ(batch_decoded->size(), batch.size());
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ((*batch_decoded)[j].kind, batch[j].kind);
      EXPECT_EQ((*batch_decoded)[j].version, batch[j].version);
      EXPECT_EQ((*batch_decoded)[j].detail, batch[j].detail);
    }
  }
}

// Decoders must survive any truncation of a valid encoding: every strict
// prefix either decodes (when the dropped bytes were not needed) or is
// rejected with a Status — never a crash or out-of-bounds read.
TEST(WireCodecTest, EveryTruncationIsHandled) {
  Random rng(99);
  for (int i = 0; i < 25; ++i) {
    std::string command_bytes = EncodeCommand(RandomCommand(&rng));
    for (size_t cut = 0; cut < command_bytes.size(); ++cut) {
      (void)DecodeCommand(Slice(command_bytes.data(), cut));
    }
    std::string response_bytes = EncodeResponse(RandomResponse(&rng));
    for (size_t cut = 0; cut < response_bytes.size(); ++cut) {
      (void)DecodeResponse(Slice(response_bytes.data(), cut));
    }
    ChangeBatch batch{RandomEvent(&rng), RandomEvent(&rng)};
    std::string batch_bytes = EncodeEventBatch(batch);
    for (size_t cut = 0; cut < batch_bytes.size(); ++cut) {
      (void)DecodeEventBatch(Slice(batch_bytes.data(), cut));
    }
  }
}

// ... and any bit flip: corrupted varints can claim absurd lengths and
// counts; decoding must fail cleanly instead of over-reading or making
// multi-gigabyte allocations.
TEST(WireCodecTest, BitFlipFuzz) {
  Random rng(20260807);
  for (int i = 0; i < 200; ++i) {
    std::string bytes = EncodeCommand(RandomCommand(&rng));
    size_t flips = 1 + rng.Uniform(4);
    for (size_t f = 0; f < flips; ++f) {
      size_t pos = rng.Uniform(bytes.size());
      bytes[pos] = static_cast<char>(bytes[pos] ^ (1 << rng.Uniform(8)));
    }
    (void)DecodeCommand(bytes);

    std::string response_bytes = EncodeResponse(RandomResponse(&rng));
    size_t pos = rng.Uniform(response_bytes.size());
    response_bytes[pos] =
        static_cast<char>(response_bytes[pos] ^ (1 << rng.Uniform(8)));
    (void)DecodeResponse(response_bytes);

    ChangeBatch batch{RandomEvent(&rng)};
    std::string batch_bytes = EncodeEventBatch(batch);
    pos = rng.Uniform(batch_bytes.size());
    batch_bytes[pos] =
        static_cast<char>(batch_bytes[pos] ^ (1 << rng.Uniform(8)));
    (void)DecodeEventBatch(batch_bytes);
  }
}

TEST(WireCodecTest, StatsCommandRoundTrip) {
  EditCommand command;
  command.kind = CommandKind::kStats;
  command.request_id = 77;
  auto decoded = DecodeCommand(EncodeCommand(command));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, CommandKind::kStats);
  EXPECT_EQ(decoded->request_id, 77u);
}

class WireSessionTest : public ServerTest {};

TEST_F(WireSessionTest, StatsCommandReturnsVerifiableSnapshot) {
  auto editor = server_->AttachEditor(alice_, "stats-probe");
  ASSERT_TRUE(editor.ok());
  RemoteEditorEndpoint link(editor->get());
  MakeDoc(alice_, "stats-wire", "abc");

  EditCommand command;
  command.kind = CommandKind::kStats;
  auto response = DecodeResponse(link.Handle(EncodeCommand(command)));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->code, StatusCode::kOk) << response->message;
  auto snapshot = DecodeMetricsSnapshot(response->payload);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_GT(snapshot->CounterValue("txn.committed"), 0u);

  // The checksummed payload rejects every truncation...
  const std::string& payload = response->payload;
  for (size_t len = 0; len < payload.size(); ++len) {
    auto damaged = DecodeMetricsSnapshot(Slice(payload.data(), len));
    ASSERT_FALSE(damaged.ok()) << "prefix length " << len;
    EXPECT_TRUE(damaged.status().IsCorruption()) << "prefix length " << len;
  }
  // ...and a sample of single-bit flips.
  Random rng(171);
  for (int i = 0; i < 256; ++i) {
    std::string damaged = payload;
    size_t pos = rng.Uniform(damaged.size());
    damaged[pos] = static_cast<char>(damaged[pos] ^ (1 << rng.Uniform(8)));
    auto decoded = DecodeMetricsSnapshot(damaged);
    ASSERT_FALSE(decoded.ok()) << "flip " << i << " at byte " << pos;
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
}

TEST_F(WireSessionTest, RemoteEditorsCollaborateOverBytes) {
  // Two editors on "different machines": everything crosses the codec.
  auto alice_editor = server_->AttachEditor(alice_, "remote-windows");
  auto bob_editor = server_->AttachEditor(bob_, "remote-macos");
  RemoteEditorEndpoint alice_link(alice_editor->get());
  RemoteEditorEndpoint bob_link(bob_editor->get());

  DocumentId doc = MakeDoc(alice_, "over-the-wire", "");

  auto send = [](RemoteEditorEndpoint& link, const EditCommand& command) {
    auto response = DecodeResponse(link.Handle(EncodeCommand(command)));
    EXPECT_TRUE(response.ok());
    return *response;
  };
  auto cmd = [&](CommandKind kind, uint64_t pos = 0, uint64_t len = 0,
                 std::string text = "", std::string extra = "") {
    EditCommand command;
    command.kind = kind;
    command.doc = doc;
    command.pos = pos;
    command.len = len;
    command.text = std::move(text);
    command.extra = std::move(extra);
    return command;
  };

  // Both open; alice types; bob sees the text and the event, over bytes.
  EXPECT_EQ(send(alice_link, cmd(CommandKind::kOpen)).code, StatusCode::kOk);
  EXPECT_EQ(send(bob_link, cmd(CommandKind::kOpen)).code, StatusCode::kOk);
  (void)bob_link.PollEventsWire();  // drain the read backlog
  EXPECT_EQ(send(alice_link, cmd(CommandKind::kType, 0, 0, "typed remotely"))
                .code,
            StatusCode::kOk);
  auto bob_view = send(bob_link, cmd(CommandKind::kGetText));
  EXPECT_EQ(bob_view.payload, "typed remotely");

  auto wire_events = bob_link.PollEventsWire();
  ASSERT_TRUE(wire_events.ok());
  auto batch = DecodeEventBatch(*wire_events);
  ASSERT_TRUE(batch.ok());
  bool saw_insert = false;
  for (const ChangeEvent& event : *batch) {
    if (event.kind == ChangeKind::kTextInserted) saw_insert = true;
  }
  EXPECT_TRUE(saw_insert);

  // Copy/paste via a server-side clipboard handle.
  auto copy = send(bob_link, cmd(CommandKind::kCopy, 0, 5));
  ASSERT_EQ(copy.code, StatusCode::kOk);
  EXPECT_EQ(send(bob_link, cmd(CommandKind::kPaste, 14, 0, copy.payload))
                .code,
            StatusCode::kOk);
  EXPECT_EQ(send(alice_link, cmd(CommandKind::kGetText)).payload,
            "typed remotelytyped");

  // Layout and undo flow through too.
  EXPECT_EQ(send(alice_link,
                 cmd(CommandKind::kApplyLayout, 0, 5, "bold", "true"))
                .code,
            StatusCode::kOk);
  EXPECT_EQ(send(bob_link, cmd(CommandKind::kUndo)).code, StatusCode::kOk);
  EXPECT_EQ(send(alice_link, cmd(CommandKind::kGetText)).payload,
            "typed remotely");

  // Errors come back as wire codes, not crashes.
  auto bad = send(alice_link, cmd(CommandKind::kErase, 1000, 5));
  EXPECT_EQ(bad.code, StatusCode::kOutOfRange);
  auto bogus_clip = send(bob_link, cmd(CommandKind::kPaste, 0, 0, "99"));
  EXPECT_EQ(bogus_clip.code, StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tendax

// Additional database-level coverage: catalog persistence, WAL group
// commit, page allocation recovery, index lifecycle, table discovery.

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/query.h"

namespace tendax {
namespace {

Schema TwoCol() {
  return Schema(
      {{"id", ColumnType::kUint64}, {"name", ColumnType::kString}});
}

TEST(CatalogPersistenceTest, TablesSurviveReopenWithSchemas) {
  auto disk = std::make_shared<InMemoryDiskManager>();
  auto log = std::make_shared<InMemoryLogStorage>();
  {
    DatabaseOptions options;
    options.disk = disk;
    options.log_storage = log;
    auto db = *Database::Open(std::move(options));
    ASSERT_TRUE(db->CreateTable("alpha", TwoCol()).ok());
    ASSERT_TRUE(db
                    ->CreateTable("beta",
                                  Schema({{"x", ColumnType::kDouble},
                                          {"y", ColumnType::kBool},
                                          {"z", ColumnType::kInt64}}))
                    .ok());
  }
  DatabaseOptions options;
  options.disk = disk;
  options.log_storage = log;
  auto db = *Database::Open(std::move(options));
  auto names = db->catalog()->TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "beta");
  auto beta = db->GetTable("beta");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ((*beta)->schema().num_columns(), 3u);
  EXPECT_EQ((*beta)->schema().column(0).type, ColumnType::kDouble);
  // Ids must not be reused after reopen.
  auto gamma = db->CreateTable("gamma", TwoCol());
  ASSERT_TRUE(gamma.ok());
  EXPECT_NE((*gamma)->table_id(), (*beta)->table_id());
}

TEST(SchemaSerializationTest, RoundTripAndErrors) {
  Schema schema({{"a", ColumnType::kUint64},
                 {"b", ColumnType::kString},
                 {"c", ColumnType::kBool}});
  auto parsed = ParseSchema(SerializeSchema(schema));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_columns(), 3u);
  EXPECT_EQ(parsed->column(1).name, "b");
  EXPECT_EQ(parsed->column(2).type, ColumnType::kBool);
  EXPECT_TRUE(ParseSchema("broken").status().IsCorruption());
  EXPECT_TRUE(ParseSchema("a:MYSTERY").status().IsCorruption());
  // Empty schema round-trips (recovery stubs use it).
  EXPECT_TRUE(ParseSchema("").ok());
}

TEST(WalGroupCommitTest, FlushCoversEverythingBuffered) {
  Wal wal(std::make_shared<InMemoryLogStorage>());
  std::vector<Lsn> lsns;
  for (int i = 0; i < 10; ++i) {
    LogRecord rec;
    rec.type = LogType::kBegin;
    rec.txn = TxnId(i + 1);
    auto lsn = wal.Append(&rec);
    ASSERT_TRUE(lsn.ok());
    lsns.push_back(*lsn);
  }
  EXPECT_EQ(wal.flushed_lsn(), 0u);
  // Flushing up to the 3rd record group-commits all ten.
  ASSERT_TRUE(wal.Flush(lsns[2]).ok());
  EXPECT_EQ(wal.flushed_lsn(), lsns.back());
  // A later flush below the watermark is a no-op.
  ASSERT_TRUE(wal.Flush(lsns[0]).ok());
  EXPECT_EQ(wal.flushed_lsn(), lsns.back());
}

TEST(BufferPoolExtrasTest, EnsureAllocatedUpToGrowsTheFile) {
  InMemoryDiskManager disk;
  BufferPool pool(8, &disk);
  EXPECT_EQ(disk.NumPages(), 0u);
  ASSERT_TRUE(pool.EnsureAllocatedUpTo(5).ok());
  EXPECT_EQ(disk.NumPages(), 6u);
  // Idempotent.
  ASSERT_TRUE(pool.EnsureAllocatedUpTo(3).ok());
  EXPECT_EQ(disk.NumPages(), 6u);
  auto page = pool.FetchPage(5);
  ASSERT_TRUE(page.ok());
  pool.Unpin(*page, false);
}

TEST(IndexLifecycleTest, CreateGetAndDuplicate) {
  DatabaseOptions options;
  auto db = *Database::Open(std::move(options));
  auto index = db->CreateIndex("by_author");
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(db->CreateIndex("by_author").status().IsAlreadyExists());
  auto fetched = db->GetIndex("by_author");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, *index);
  EXPECT_TRUE(db->GetIndex("missing").status().IsNotFound());
  // Index pages are skipped by table discovery: create data + index pages,
  // checkpoint, and reopen over the same storage.
  ASSERT_TRUE((*index)->Insert(1, 2).ok());
}

TEST(TableDiscoveryTest, MixedPagesGroupCorrectly) {
  auto disk = std::make_shared<InMemoryDiskManager>();
  auto log = std::make_shared<InMemoryLogStorage>();
  uint64_t rows = 300;
  {
    DatabaseOptions options;
    options.disk = disk;
    options.log_storage = log;
    options.buffer_pool_pages = 128;
    auto db = *Database::Open(std::move(options));
    auto table = *db->CreateTable("data", TwoCol());
    // Interleave heap growth with index-page allocation.
    auto index = *db->CreateIndex("idx");
    ASSERT_TRUE(db->txns()
                    ->RunInTxn(UserId(1),
                               [&](Transaction* txn) -> Status {
                                 for (uint64_t i = 0; i < rows; ++i) {
                                   auto r = table->Insert(
                                       txn,
                                       Record({i, std::string(40, 'p')}));
                                   if (!r.ok()) return r.status();
                                   TENDAX_RETURN_IF_ERROR(
                                       index->Insert(i, r->Pack()));
                                 }
                                 return Status::OK();
                               })
                    .ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  DatabaseOptions options;
  options.disk = disk;
  options.log_storage = log;
  options.buffer_pool_pages = 128;
  auto db = *Database::Open(std::move(options));
  auto table = *db->GetTable("data");
  EXPECT_EQ(*table->Count(), rows);  // index pages were not misadopted
  // And the data is queryable.
  auto n = TableQuery(table)
               .Where("id", CompareOp::kLt, uint64_t{10})
               .Count();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 10u);
}

TEST(DatabaseDestructorTest, FlushesOnCleanShutdown) {
  auto disk = std::make_shared<InMemoryDiskManager>();
  auto log = std::make_shared<InMemoryLogStorage>();
  RecordId rid;
  {
    DatabaseOptions options;
    options.disk = disk;
    options.log_storage = log;
    auto db = *Database::Open(std::move(options));
    auto table = *db->CreateTable("t", TwoCol());
    ASSERT_TRUE(db->txns()
                    ->RunInTxn(UserId(1),
                               [&](Transaction* txn) -> Status {
                                 auto r = table->Insert(
                                     txn, Record({uint64_t{1},
                                                  std::string("bye")}));
                                 if (!r.ok()) return r.status();
                                 rid = *r;
                                 return Status::OK();
                               })
                    .ok());
    // No crash, no checkpoint: the destructor flushes.
  }
  DatabaseOptions options;
  options.disk = disk;
  options.log_storage = log;
  auto db = *Database::Open(std::move(options));
  auto table = *db->GetTable("t");
  auto rec = table->Get(rid);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->GetString(1), "bye");
}

}  // namespace
}  // namespace tendax

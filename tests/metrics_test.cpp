// Observability coverage: histogram bucket math and percentile estimation,
// striped counter/gauge primitives, the checksummed snapshot codec (strict
// rejection of truncation, corruption, unknown versions and trailing bytes),
// ScopedTimer RAII semantics, and deterministic end-to-end assertions that
// the registry counters exactly mirror the legacy per-subsystem stats under
// seeded fault schedules (group commit, retries, dedup, leases, resyncs).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "collab/retrying_client.h"
#include "collab/wire.h"
#include "db/database.h"
#include "obs/metrics.h"
#include "server_fixture.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"
#include "testing/fault_injection.h"
#include "testing/fault_plan.h"
#include "testing/flaky_transport.h"
#include "testing/schedule_controller.h"
#include "txn/lock_manager.h"
#include "util/coding.h"

namespace tendax {
namespace {

// --- histogram bucket math ----------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);
  EXPECT_EQ(Histogram::BucketFor(7), 3);
  EXPECT_EQ(Histogram::BucketFor(8), 4);
  EXPECT_EQ(Histogram::BucketFor((1ull << 45)), 46);
  EXPECT_EQ(Histogram::BucketFor((1ull << 46) - 1), 46);
  // Everything from 2^46 up lands in the overflow bucket.
  EXPECT_EQ(Histogram::BucketFor(1ull << 46), kHistogramBuckets - 1);
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), kHistogramBuckets - 1);
}

TEST(HistogramTest, BucketBoundsAreConsistentWithBucketFor) {
  EXPECT_EQ(HistogramSnapshot::BucketLowerBound(0), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(0), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(kHistogramBuckets - 1),
            UINT64_MAX);
  for (int b = 0; b < kHistogramBuckets - 1; ++b) {
    EXPECT_EQ(Histogram::BucketFor(HistogramSnapshot::BucketLowerBound(b)), b);
    EXPECT_EQ(Histogram::BucketFor(HistogramSnapshot::BucketUpperBound(b)), b);
  }
  EXPECT_EQ(Histogram::BucketFor(
                HistogramSnapshot::BucketLowerBound(kHistogramBuckets - 1)),
            kHistogramBuckets - 1);
}

TEST(HistogramTest, PercentilesOnKnownDistribution) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 5050u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 50.5);
  // Rank 50 falls in bucket [32, 63] (cumulative count 63); the estimator
  // reports the bucket's upper bound.
  EXPECT_EQ(snap.P50(), 63u);
  // Ranks 95 and 99 fall in the top occupied bucket [64, 127], whose upper
  // bound is clamped to the observed maximum.
  EXPECT_EQ(snap.P95(), 100u);
  EXPECT_EQ(snap.P99(), 100u);
}

TEST(HistogramTest, SingleValuePercentilesAreExact) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(42);
  HistogramSnapshot snap = h.Snapshot();
  // The bucket upper bound (63) exceeds the observed max, so clamping makes
  // every percentile of a constant distribution exact.
  EXPECT_EQ(snap.P50(), 42u);
  EXPECT_EQ(snap.P95(), 42u);
  EXPECT_EQ(snap.P99(), 42u);
}

TEST(HistogramTest, OverflowBucketReportsObservedMax) {
  Histogram h;
  h.Record(1ull << 50);
  h.Record(3);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.buckets[kHistogramBuckets - 1], 1u);
  EXPECT_EQ(snap.max, 1ull << 50);
  EXPECT_EQ(snap.P99(), 1ull << 50);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.P50(), 0u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, StripeMergeAcrossThreadsIsExact) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads * kPerThread));
  // sum = 1000 * (1 + 2 + ... + 8)
  EXPECT_EQ(snap.sum, 1000u * 36u);
  EXPECT_EQ(snap.max, 8u);
}

// --- counters and gauges -------------------------------------------------

TEST(CounterTest, StripesSumExactlyAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(GaugeTest, SetAddSetMax) {
  Gauge g;
  g.Set(-5);
  EXPECT_EQ(g.Value(), -5);
  g.Add(15);
  EXPECT_EQ(g.Value(), 10);
  g.SetMax(7);  // lower than current: no effect
  EXPECT_EQ(g.Value(), 10);
  g.SetMax(12);
  EXPECT_EQ(g.Value(), 12);
}

// --- registry -------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameReturnsSameObject) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter("a"), registry.counter("a"));
  EXPECT_NE(registry.counter("a"), registry.counter("b"));
  EXPECT_EQ(registry.gauge("a"), registry.gauge("a"));
  EXPECT_EQ(registry.histogram("a"), registry.histogram("a"));
  // Counter, gauge and histogram namespaces are independent.
  registry.counter("x")->Add(2);
  registry.gauge("x")->Set(-1);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("x"), 2u);
  EXPECT_EQ(snap.GaugeValue("x"), -1);
}

TEST(MetricsRegistryTest, DisabledRegistryKeepsCountersButNotHistograms) {
  MetricsRegistry registry(/*enabled=*/false);
  EXPECT_FALSE(registry.enabled());
  EXPECT_EQ(registry.histogram("lat"), nullptr);
  Counter* c = registry.counter("events");
  ASSERT_NE(c, nullptr);
  c->Add(3);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("events"), 3u);
  EXPECT_TRUE(snap.histograms.empty());
}

// --- ScopedTimer RAII semantics -------------------------------------------

TEST(ScopedTimerTest, RecordsOnEveryExitPath) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  auto early_return = [&](bool fail) {
    ScopedTimer timer(h);
    if (fail) return Status::IOError("injected");
    return Status::OK();
  };
  EXPECT_FALSE(early_return(true).ok());
  EXPECT_TRUE(early_return(false).ok());
  EXPECT_EQ(h->Snapshot().count, 2u);
}

TEST(ScopedTimerTest, NullHistogramIsInert) {
  ScopedTimer timer(nullptr);  // must not crash on destruction
}

TEST(ScopedTimerTest, CancelDropsTheSpan) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  {
    ScopedTimer timer(h);
    timer.Cancel();
  }
  EXPECT_EQ(h->Snapshot().count, 0u);
}

TEST(ScopedTimerTest, RedirectRetargetsWithoutRestartingTheClock) {
  MetricsRegistry registry;
  Histogram* a = registry.histogram("a");
  Histogram* b = registry.histogram("b");
  {
    ScopedTimer timer(a);
    timer.Redirect(b);
  }
  EXPECT_EQ(a->Snapshot().count, 0u);
  EXPECT_EQ(b->Snapshot().count, 1u);
}

TEST(ScopedTimerTest, RedirectOnDisarmedTimerStaysDisarmed) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  {
    ScopedTimer timer(nullptr);
    timer.Redirect(h);  // no start time to preserve: stays off
  }
  EXPECT_EQ(h->Snapshot().count, 0u);
}

// --- snapshot codec --------------------------------------------------------

// Mirrors the codec's FNV-1a so tests can craft payloads with valid
// checksums (to reach the strict post-checksum validation paths).
uint32_t TestFnv1a(const std::string& s) {
  uint32_t h = 2166136261u;
  for (unsigned char c : s) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

std::string Sealed(std::string payload) {
  PutFixed32(&payload, TestFnv1a(payload));
  return payload;
}

std::string EmptySnapshotPayload(uint32_t version) {
  std::string p;
  PutVarint32(&p, version);
  PutVarint32(&p, 0);  // counters
  PutVarint32(&p, 0);  // gauges
  PutVarint32(&p, 0);  // histograms
  return p;
}

TEST(MetricsCodecTest, TestChecksumMatchesCodecChecksum) {
  // Self-check for the crafted-payload tests below: re-sealing the codec's
  // own payload must reproduce its bytes exactly.
  MetricsRegistry registry;
  std::string encoded = EncodeMetricsSnapshot(registry.Snapshot());
  ASSERT_GE(encoded.size(), 4u);
  EXPECT_EQ(Sealed(encoded.substr(0, encoded.size() - 4)), encoded);
}

TEST(MetricsCodecTest, RoundTrip) {
  MetricsRegistry registry;
  registry.counter("wal.commits")->Add(12);
  registry.counter("zero")->Add(0);
  registry.counter("big")->Add(UINT64_MAX / 2);
  registry.gauge("depth")->Set(-42);
  Histogram* h = registry.histogram("lat");
  for (uint64_t v = 1; v <= 100; ++v) h->Record(v);

  MetricsSnapshot original = registry.Snapshot();
  auto decoded = DecodeMetricsSnapshot(EncodeMetricsSnapshot(original));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, MetricsSnapshot::kVersion);
  EXPECT_EQ(decoded->counters, original.counters);
  EXPECT_EQ(decoded->gauges, original.gauges);
  ASSERT_EQ(decoded->histograms.size(), 1u);
  const HistogramSnapshot* hs = decoded->FindHistogram("lat");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 100u);
  EXPECT_EQ(hs->sum, 5050u);
  EXPECT_EQ(hs->max, 100u);
  EXPECT_EQ(hs->buckets, original.histograms[0].second.buckets);
  EXPECT_EQ(decoded->CounterValue("wal.commits"), 12u);
  EXPECT_EQ(decoded->CounterValue("absent"), 0u);
  EXPECT_EQ(decoded->GaugeValue("depth"), -42);
  EXPECT_EQ(decoded->FindHistogram("absent"), nullptr);
}

TEST(MetricsCodecTest, EveryTruncationIsCorruption) {
  MetricsRegistry registry;
  registry.counter("c")->Add(7);
  registry.gauge("g")->Set(9);
  registry.histogram("h")->Record(5);
  std::string encoded = EncodeMetricsSnapshot(registry.Snapshot());
  for (size_t len = 0; len < encoded.size(); ++len) {
    auto decoded = DecodeMetricsSnapshot(Slice(encoded.data(), len));
    ASSERT_FALSE(decoded.ok()) << "prefix length " << len;
    EXPECT_TRUE(decoded.status().IsCorruption())
        << "prefix length " << len << ": " << decoded.status().ToString();
  }
}

TEST(MetricsCodecTest, EveryBitFlipIsRejected) {
  MetricsRegistry registry;
  registry.counter("c")->Add(7);
  registry.histogram("h")->Record(5);
  const std::string encoded = EncodeMetricsSnapshot(registry.Snapshot());
  for (size_t i = 0; i < encoded.size() * 8; ++i) {
    std::string damaged = encoded;
    damaged[i / 8] = static_cast<char>(damaged[i / 8] ^ (1u << (i % 8)));
    auto decoded = DecodeMetricsSnapshot(damaged);
    ASSERT_FALSE(decoded.ok()) << "bit " << i;
    EXPECT_TRUE(decoded.status().IsCorruption()) << "bit " << i;
  }
}

TEST(MetricsCodecTest, UnknownVersionIsInvalidArgument) {
  auto decoded = DecodeMetricsSnapshot(Sealed(EmptySnapshotPayload(2)));
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument())
      << decoded.status().ToString();
}

TEST(MetricsCodecTest, TrailingBytesAreInvalidArgument) {
  std::string payload = EmptySnapshotPayload(MetricsSnapshot::kVersion);
  payload.push_back('\0');
  auto decoded = DecodeMetricsSnapshot(Sealed(payload));
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument())
      << decoded.status().ToString();
}

TEST(MetricsCodecTest, OversizedBucketCountIsInvalidArgument) {
  std::string p;
  PutVarint32(&p, MetricsSnapshot::kVersion);
  PutVarint32(&p, 0);  // counters
  PutVarint32(&p, 0);  // gauges
  PutVarint32(&p, 1);  // one histogram...
  PutLengthPrefixed(&p, Slice("h"));
  PutVarint64(&p, 0);  // count
  PutVarint64(&p, 0);  // sum
  PutVarint64(&p, 0);  // max
  PutVarint32(&p, kHistogramBuckets + 1);  // ...claiming too many buckets
  for (int b = 0; b < kHistogramBuckets + 1; ++b) PutVarint64(&p, 0);
  auto decoded = DecodeMetricsSnapshot(Sealed(p));
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument())
      << decoded.status().ToString();
}

TEST(MetricsRegistryTest, TextExposition) {
  MetricsRegistry registry;
  registry.counter("wal.commits")->Add(3);
  registry.gauge("wal.max_batch")->Set(5);
  registry.histogram("wal.flush_micros")->Record(10);
  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find("# TYPE tendax_wal_commits counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("tendax_wal_commits 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tendax_wal_max_batch gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("tendax_wal_max_batch 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tendax_wal_flush_micros summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("tendax_wal_flush_micros_count 1\n"), std::string::npos);
}

// --- deterministic end-to-end: group commit ------------------------------

Schema ValueSchema() { return Schema({{"value", ColumnType::kUint64}}); }

// A scaled-down version of the group-commit rig: a Database over
// fault-injected in-memory backends plus the seeded schedule controller.
struct Rig {
  std::shared_ptr<InMemoryDiskManager> disk;
  std::shared_ptr<InMemoryLogStorage> log;
  std::shared_ptr<FaultPlan> plan;
  std::shared_ptr<ScheduleController> sched;
  std::unique_ptr<Database> db;
  std::vector<HeapTable*> tables;
};

Rig OpenRig(CommitFlushMode mode, size_t num_tables, uint64_t seed) {
  Rig rig;
  rig.disk = std::make_shared<InMemoryDiskManager>();
  rig.log = std::make_shared<InMemoryLogStorage>();
  rig.plan = std::make_shared<FaultPlan>(seed);
  rig.sched = std::make_shared<ScheduleController>(seed);
  DatabaseOptions options;
  options.buffer_pool_pages = 64;
  options.disk =
      std::make_shared<FaultInjectingDiskManager>(rig.disk, rig.plan);
  options.log_storage =
      std::make_shared<FaultInjectingLogStorage>(rig.log, rig.plan);
  options.group_commit.mode = mode;
  options.group_commit.flush_interval = std::chrono::microseconds(0);
  options.group_commit.hooks = rig.sched;
  auto db = Database::Open(std::move(options));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  if (!db.ok()) return rig;
  rig.db = std::move(*db);
  for (size_t i = 0; i < num_tables; ++i) {
    auto table = rig.db->CreateTable("t" + std::to_string(i), ValueSchema());
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    if (!table.ok()) return rig;
    rig.tables.push_back(*table);
  }
  return rig;
}

// Runs K threads each committing one insert so the commits coalesce.
void CommitConcurrently(Rig& rig, size_t k) {
  std::vector<std::thread> threads;
  threads.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    threads.emplace_back([&rig, i] {
      TxnManager* txns = rig.db->txns();
      Transaction* txn = txns->Begin(UserId(100 + i));
      Status st = rig.db->locks()->Acquire(
          txn->id(), MakeResource(ResourceKind::kDocument, 1 + i),
          LockMode::kX);
      if (st.ok()) {
        st = rig.tables[i]
                 ->Insert(txn, Record({static_cast<uint64_t>(1000 + i)}))
                 .status();
      }
      if (st.ok()) {
        (void)txns->Commit(txn);
      } else {
        (void)txns->Abort(txn);
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(MetricsE2ETest, GroupCommitBatchMetricsExact) {
  constexpr size_t kWriters = 4;
  Rig rig = OpenRig(CommitFlushMode::kFlusherThread, kWriters, /*seed=*/7);
  ASSERT_NE(rig.db, nullptr);
  MetricsRegistry* metrics = rig.db->metrics();
  ASSERT_NE(metrics, nullptr);

  MetricsSnapshot before = metrics->Snapshot();
  const uint64_t batch_records_before =
      before.FindHistogram("wal.batch_size") != nullptr
          ? before.FindHistogram("wal.batch_size")->count
          : 0;

  // Gate the next group flush so all writers pile into one batch.
  rig.sched->PauseAtFlush(rig.sched->flushes_finished() + 1);
  std::thread runner([&] { CommitConcurrently(rig, kWriters); });
  ASSERT_TRUE(rig.sched->WaitUntilPaused());
  ASSERT_TRUE(rig.sched->WaitForWaiters(kWriters));
  rig.sched->ReleaseFlush();
  runner.join();

  MetricsSnapshot after = metrics->Snapshot();
  EXPECT_EQ(after.CounterValue("wal.commits") - before.CounterValue("wal.commits"),
            kWriters);
  EXPECT_EQ(after.CounterValue("wal.syncs") - before.CounterValue("wal.syncs"),
            1u);
  // The flusher may run one extra (already-durable, sync-free) pass after
  // the gated batch, so group_flushes is >= 1 while syncs is exactly 1.
  EXPECT_GE(after.CounterValue("wal.group_flushes") -
                before.CounterValue("wal.group_flushes"),
            1u);
  EXPECT_EQ(after.GaugeValue("wal.max_batch"),
            static_cast<int64_t>(kWriters));
  const HistogramSnapshot* batch = after.FindHistogram("wal.batch_size");
  ASSERT_NE(batch, nullptr);
  EXPECT_GE(batch->count - batch_records_before, 1u);
  EXPECT_EQ(batch->max, kWriters);

  // The registry is a faithful mirror of the legacy accessors.
  WalGroupCommitStats legacy = rig.db->wal()->group_commit_stats();
  EXPECT_EQ(after.CounterValue("wal.commits"), legacy.commits);
  EXPECT_EQ(after.CounterValue("wal.syncs"), legacy.syncs);
  EXPECT_EQ(after.CounterValue("wal.group_flushes"), legacy.group_flushes);
  EXPECT_EQ(after.CounterValue("wal.failed_flushes"), legacy.failed_flushes);
  EXPECT_EQ(after.GaugeValue("wal.max_batch"),
            static_cast<int64_t>(legacy.max_batch));
}

// Satellite (d): the commit-latency timer is RAII'd at the top of
// Wal::CommitFlush / TxnManager::Commit, so a flush that *fails* still
// records a latency sample and the abort is counted.
TEST(MetricsE2ETest, FailedCommitFlushStillRecordsLatencyAndAbort) {
  Rig rig = OpenRig(CommitFlushMode::kInline, /*num_tables=*/1, /*seed=*/7);
  ASSERT_NE(rig.db, nullptr);
  MetricsRegistry* metrics = rig.db->metrics();

  MetricsSnapshot before = metrics->Snapshot();
  const HistogramSnapshot* cf = before.FindHistogram("wal.commit_flush_micros");
  const uint64_t commit_flushes_before = cf != nullptr ? cf->count : 0;

  rig.plan->FailNthSync(rig.plan->syncs_seen() + 1);
  TxnManager* txns = rig.db->txns();
  Transaction* txn = txns->Begin(UserId(1));
  ASSERT_TRUE(rig.tables[0]->Insert(txn, Record({uint64_t{5}})).ok());
  Status commit = txns->Commit(txn);
  EXPECT_FALSE(commit.ok());

  MetricsSnapshot after = metrics->Snapshot();
  const HistogramSnapshot* cf_after =
      after.FindHistogram("wal.commit_flush_micros");
  ASSERT_NE(cf_after, nullptr);
  EXPECT_EQ(cf_after->count - commit_flushes_before, 1u)
      << "error path must record commit-flush latency";
  EXPECT_EQ(after.CounterValue("txn.aborted") -
                before.CounterValue("txn.aborted"),
            1u);
  const HistogramSnapshot* tc = after.FindHistogram("txn.commit_micros");
  ASSERT_NE(tc, nullptr);
  EXPECT_GE(tc->count, 1u);
  // Mirrors stay faithful even through the failure.
  TxnManagerStats legacy = txns->stats();
  EXPECT_EQ(after.CounterValue("txn.begun"), legacy.begun);
  EXPECT_EQ(after.CounterValue("txn.committed"), legacy.committed);
  EXPECT_EQ(after.CounterValue("txn.aborted"), legacy.aborted);
}

// --- deterministic end-to-end: wire + retries ----------------------------

class MetricsWireTest : public ServerTest {
 protected:
  struct Remote {
    std::unique_ptr<Editor> editor;
    std::unique_ptr<RemoteEditorEndpoint> endpoint;
    std::unique_ptr<FlakyTransport> transport;
    std::unique_ptr<RetryingClient> client;
  };

  Remote MakeRemote(UserId user, const std::string& name,
                    NetFaultOptions faults, RetryOptions retry = {}) {
    Remote r;
    auto editor = server_->AttachEditor(user, name);
    EXPECT_TRUE(editor.ok()) << editor.status().ToString();
    r.editor = std::move(*editor);
    r.endpoint = std::make_unique<RemoteEditorEndpoint>(r.editor.get());
    r.transport = std::make_unique<FlakyTransport>(r.endpoint.get(), faults);
    r.client = std::make_unique<RetryingClient>(r.transport.get(), retry);
    return r;
  }

  static NetFaultOptions NoFaults(uint64_t seed = 1) {
    return NetFaultOptions::Uniform(seed, 0.0);
  }
};

TEST_F(MetricsWireTest, DispatchCountersPerCommandKind) {
  DocumentId doc = MakeDoc(alice_, "wire-metrics", "");
  MetricsRegistry* metrics = server_->metrics();
  MetricsSnapshot before = metrics->Snapshot();

  RetryOptions retry;
  retry.metrics = metrics;
  Remote r = MakeRemote(alice_, "wm-editor", NoFaults(), retry);
  ASSERT_TRUE(r.client->Open(doc).ok());
  ASSERT_TRUE(r.client->Type(doc, 0, "a").ok());
  ASSERT_TRUE(r.client->Type(doc, 1, "b").ok());
  ASSERT_TRUE(r.client->Type(doc, 2, "c").ok());
  auto text = r.client->GetText(doc);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "abc");

  MetricsSnapshot after = metrics->Snapshot();
  EXPECT_EQ(after.CounterValue("wire.requests") -
                before.CounterValue("wire.requests"),
            5u);
  EXPECT_EQ(after.CounterValue("client.calls") -
                before.CounterValue("client.calls"),
            5u);
  EXPECT_EQ(after.CounterValue("client.attempts") -
                before.CounterValue("client.attempts"),
            5u);
  const HistogramSnapshot* type_lat =
      after.FindHistogram("wire.dispatch_micros.type");
  ASSERT_NE(type_lat, nullptr);
  EXPECT_EQ(type_lat->count, 3u);
  const HistogramSnapshot* open_lat =
      after.FindHistogram("wire.dispatch_micros.open");
  ASSERT_NE(open_lat, nullptr);
  EXPECT_EQ(open_lat->count, 1u);
  const HistogramSnapshot* get_lat =
      after.FindHistogram("wire.dispatch_micros.get_text");
  ASSERT_NE(get_lat, nullptr);
  EXPECT_EQ(get_lat->count, 1u);
}

// Satellite (d), wire half: undecodable bytes still record a dispatch
// sample (into the "invalid" family) and bump the decode-error counter.
TEST_F(MetricsWireTest, DecodeErrorRecordsInvalidDispatch) {
  MetricsRegistry* metrics = server_->metrics();
  MetricsSnapshot before = metrics->Snapshot();

  Remote r = MakeRemote(alice_, "garbage-editor", NoFaults());
  const std::string garbage = "\xff\xfe\xfd not a command";
  std::string response_bytes = r.endpoint->Handle(garbage);
  auto response = DecodeResponse(response_bytes);
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->code, StatusCode::kOk);

  MetricsSnapshot after = metrics->Snapshot();
  EXPECT_EQ(after.CounterValue("wire.decode_errors") -
                before.CounterValue("wire.decode_errors"),
            1u);
  const HistogramSnapshot* invalid =
      after.FindHistogram("wire.dispatch_micros.invalid");
  ASSERT_NE(invalid, nullptr);
  EXPECT_EQ(invalid->count, 1u);
}

TEST_F(MetricsWireTest, RetryAndDedupCountersExactUnderForcedFault) {
  DocumentId doc = MakeDoc(alice_, "retry-metrics", "");
  MetricsRegistry* metrics = server_->metrics();
  MetricsSnapshot before = metrics->Snapshot();

  RetryOptions retry;
  retry.metrics = metrics;
  Remote r = MakeRemote(alice_, "rm-editor", NoFaults(), retry);
  ASSERT_TRUE(r.client->Open(doc).ok());
  // The Type executes server-side but its response is dropped; the retry is
  // answered from the dedup cache.
  r.transport->Force(2, NetFault::kDropResponse);
  ASSERT_TRUE(r.client->Type(doc, 0, "a").ok());

  MetricsSnapshot after = metrics->Snapshot();
  EXPECT_EQ(after.CounterValue("client.calls") -
                before.CounterValue("client.calls"),
            2u);
  EXPECT_EQ(after.CounterValue("client.attempts") -
                before.CounterValue("client.attempts"),
            3u);
  EXPECT_EQ(after.CounterValue("client.retries") -
                before.CounterValue("client.retries"),
            1u);
  EXPECT_EQ(after.CounterValue("client.timeouts") -
                before.CounterValue("client.timeouts"),
            1u);
  EXPECT_EQ(after.CounterValue("wire.dedup_hits") -
                before.CounterValue("wire.dedup_hits"),
            1u);
  // Registry and legacy stats agree exactly.
  EXPECT_EQ(after.CounterValue("client.attempts"), r.client->stats().attempts);
  EXPECT_EQ(after.CounterValue("client.timeouts"), r.client->stats().timeouts);
  EXPECT_EQ(after.CounterValue("wire.dedup_hits"), r.endpoint->dedup_hits());
}

// Acceptance criterion: a kStats round trip returns a checksum-verified
// snapshot covering WAL, buffer pool, transactions, locks, wire and
// session metrics.
TEST_F(MetricsWireTest, StatsCommandCoversEverySubsystem) {
  DocumentId doc = MakeDoc(alice_, "stats-doc", "");
  RetryOptions retry;
  retry.metrics = server_->metrics();
  Remote r = MakeRemote(alice_, "stats-editor", NoFaults(), retry);
  ASSERT_TRUE(r.client->Open(doc).ok());
  ASSERT_TRUE(r.client->Type(doc, 0, "hello").ok());

  auto snapshot = r.client->ServerStats();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  EXPECT_GT(snapshot->CounterValue("wal.commits"), 0u);
  EXPECT_GT(snapshot->CounterValue("bufferpool.hits"), 0u);
  EXPECT_GT(snapshot->CounterValue("txn.committed"), 0u);
  EXPECT_GT(snapshot->CounterValue("lock.acquisitions"), 0u);
  EXPECT_GT(snapshot->CounterValue("wire.requests"), 0u);
  EXPECT_GT(snapshot->CounterValue("session.events_delivered") +
                snapshot->CounterValue("session.connects"),
            0u);
  // Histograms ride along on the default (enabled) configuration.
  EXPECT_NE(snapshot->FindHistogram("txn.commit_micros"), nullptr);
  EXPECT_NE(snapshot->FindHistogram("wal.commit_flush_micros"), nullptr);
  // The in-process view agrees with the wire view for settled counters.
  auto local = r.editor->ServerStats();
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->CounterValue("txn.committed"),
            snapshot->CounterValue("txn.committed"));
}

// --- server configurations -------------------------------------------------

TEST(MetricsServerTest, DisabledMetricsStillServeCounters) {
  TendaxOptions options;
  options.metrics_enabled = false;
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto user = (*server)->accounts()->CreateUser("quiet");
  ASSERT_TRUE(user.ok());
  auto editor = (*server)->AttachEditor(*user, "quiet-editor");
  ASSERT_TRUE(editor.ok());
  auto doc = (*editor)->CreateDocument("quiet.txt");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE((*editor)->Type(*doc, 0, "x").ok());

  EXPECT_EQ((*server)->metrics()->histogram("anything"), nullptr);
  auto snapshot = (*editor)->ServerStats();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot->histograms.empty());
  EXPECT_GT(snapshot->CounterValue("txn.committed"), 0u);
  // The snapshot still survives the wire codec.
  auto decoded = DecodeMetricsSnapshot(EncodeMetricsSnapshot(*snapshot));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->CounterValue("txn.committed"),
            snapshot->CounterValue("txn.committed"));
}

TEST(MetricsServerTest, LeaseReapCountsSessionsExactly) {
  TendaxOptions options;
  auto clock = std::make_shared<ManualClock>(/*start=*/1'000'000'000,
                                             /*tick=*/1000);
  options.db.clock = clock;
  options.session.lease_ttl_micros = 60'000'000;  // 60s
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto user = (*server)->accounts()->CreateUser("lessee");
  ASSERT_TRUE(user.ok());
  auto editor = (*server)->AttachEditor(*user, "leased-editor");
  ASSERT_TRUE(editor.ok());

  clock->Advance(120'000'000);  // two full TTLs with no heartbeat
  EXPECT_EQ((*server)->sessions()->ReapExpired(), 1u);
  MetricsSnapshot snap = (*server)->metrics()->Snapshot();
  EXPECT_EQ(snap.CounterValue("session.sessions_reaped"), 1u);
  EXPECT_EQ(snap.CounterValue("session.sessions_reaped"),
            (*server)->sessions()->sessions_reaped());
}

TEST(MetricsServerTest, ResyncCounterMirrorsSessionManager) {
  TendaxOptions options;
  options.session.max_inbox_events = 3;  // tiny outbox: overflow fast
  auto server = TendaxServer::Open(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto alice = (*server)->accounts()->CreateUser("alice");
  auto bob = (*server)->accounts()->CreateUser("bob");
  ASSERT_TRUE(alice.ok() && bob.ok());
  auto writer = (*server)->AttachEditor(*alice, "writer");
  auto lagger = (*server)->AttachEditor(*bob, "lagger");
  ASSERT_TRUE(writer.ok() && lagger.ok());
  auto doc = (*writer)->CreateDocument("busy.txt");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE((*lagger)->Open(*doc).ok());

  // The lagger never polls, so its outbox overflows into a resync marker.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*writer)->Type(*doc, 0, "x").ok());
  }
  uint64_t legacy = (*server)->sessions()->resyncs_emitted();
  EXPECT_GE(legacy, 1u);
  MetricsSnapshot snap = (*server)->metrics()->Snapshot();
  EXPECT_EQ(snap.CounterValue("session.resyncs_emitted"), legacy);
  EXPECT_EQ(snap.CounterValue("session.events_delivered"),
            (*server)->sessions()->events_delivered());
}

// Quiesced end-to-end workload: every registry mirror equals its legacy
// accessor across all instrumented subsystems at once.
TEST_F(MetricsWireTest, SnapshotMatchesLegacyAccessorsAfterWorkload) {
  DocumentId doc = MakeDoc(alice_, "mirror-doc", "seed text");
  RetryOptions retry;
  retry.metrics = server_->metrics();
  Remote r = MakeRemote(alice_, "mirror-editor", NoFaults(), retry);
  ASSERT_TRUE(r.client->Open(doc).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(r.client->Type(doc, 0, "y").ok());
  }
  ASSERT_TRUE(r.client->Erase(doc, 0, 2).ok());

  MetricsSnapshot snap = server_->metrics()->Snapshot();
  Database* db = server_->db();
  WalGroupCommitStats wal = db->wal()->group_commit_stats();
  EXPECT_EQ(snap.CounterValue("wal.commits"), wal.commits);
  EXPECT_EQ(snap.CounterValue("wal.syncs"), wal.syncs);
  EXPECT_EQ(snap.CounterValue("wal.group_flushes"), wal.group_flushes);
  EXPECT_EQ(snap.CounterValue("wal.failed_flushes"), wal.failed_flushes);
  BufferPoolStats bp = db->buffer_pool()->stats();
  EXPECT_EQ(snap.CounterValue("bufferpool.hits"), bp.hits);
  EXPECT_EQ(snap.CounterValue("bufferpool.misses"), bp.misses);
  EXPECT_EQ(snap.CounterValue("bufferpool.evictions"), bp.evictions);
  EXPECT_EQ(snap.CounterValue("bufferpool.writebacks"), bp.dirty_writebacks);
  TxnManagerStats txn = db->txns()->stats();
  EXPECT_EQ(snap.CounterValue("txn.begun"), txn.begun);
  EXPECT_EQ(snap.CounterValue("txn.committed"), txn.committed);
  EXPECT_EQ(snap.CounterValue("txn.aborted"), txn.aborted);
  LockManagerStats locks = db->locks()->stats();
  EXPECT_EQ(snap.CounterValue("lock.acquisitions"), locks.acquisitions);
  EXPECT_EQ(snap.CounterValue("lock.waits"), locks.waits);
  EXPECT_EQ(snap.CounterValue("lock.deadlocks"), locks.deadlocks);
  EXPECT_EQ(snap.CounterValue("lock.timeouts"), locks.timeouts);
  EXPECT_EQ(snap.CounterValue("client.calls"), r.client->stats().calls);
  EXPECT_EQ(snap.CounterValue("client.attempts"), r.client->stats().attempts);
  EXPECT_EQ(snap.CounterValue("wire.dedup_hits"), r.endpoint->dedup_hits());
}

}  // namespace
}  // namespace tendax

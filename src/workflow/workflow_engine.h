#ifndef TENDAX_WORKFLOW_WORKFLOW_ENGINE_H_
#define TENDAX_WORKFLOW_WORKFLOW_ENGINE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "db/database.h"
#include "security/access_control.h"
#include "text/text_store.h"
#include "util/ids.h"
#include "util/mutex.h"
#include "util/result.h"

namespace tendax {

/// Lifecycle of a workflow task.
enum class TaskState : uint8_t {
  kPending = 1,   // waiting for predecessors
  kReady = 2,     // all predecessors done; assignee may start
  kDone = 3,
  kRejected = 4,  // assignee bounced it back; process owner must re-route
  kSkipped = 5,   // removed from the route at run time
};

const char* TaskStateName(TaskState state);

/// Who a task is assigned to: a concrete user or anyone holding a role.
struct Assignee {
  bool is_role = false;
  uint64_t id = 0;  // UserId or RoleId value

  static Assignee User(UserId u) { return {false, u.value}; }
  static Assignee Role(RoleId r) { return {true, r.value}; }
};

/// One task of an in-document process, optionally anchored to a character
/// range ("translate this section", "verify this paragraph").
struct TaskInfo {
  TaskId id;
  ProcessId process;
  DocumentId doc;
  std::string name;
  std::string description;
  Assignee assignee;
  TaskState state = TaskState::kPending;
  uint64_t order = 0;  // route position
  CharId anchor_start;
  CharId anchor_end;
  UserId created_by;
  Timestamp created_at = 0;
  UserId completed_by;
  Timestamp completed_at = 0;
};

/// A dynamic business process living inside a document (Sec. 3, bullet 2).
struct ProcessInfo {
  ProcessId id;
  DocumentId doc;
  std::string name;
  UserId creator;
  Timestamp created_at = 0;
  std::string state;  // "running" | "finished" | "rejected"
};

/// Defines and executes ad-hoc workflows *within* documents: tasks are
/// routed in sequence, assigned to users or roles, and — the paper's
/// point — can be created, changed and re-routed dynamically at run time.
/// Every state change is a committed transaction and lands in the audit
/// trail via its change event.
class WorkflowEngine {
 public:
  WorkflowEngine(Database* db, TextStore* text, AccessControl* acl);

  Status Init();

  // --- definition ---

  Result<ProcessId> DefineProcess(UserId user, DocumentId doc,
                                  const std::string& name);

  /// Appends a task to the route. `pos/len` anchor it to a text range
  /// (len 0 = whole document).
  Result<TaskId> AddTask(UserId user, ProcessId process,
                         const std::string& name,
                         const std::string& description, Assignee assignee,
                         size_t pos = 0, size_t len = 0);

  // --- dynamic run-time changes ---

  /// Inserts a new task right after `after` in the route (run-time change).
  Result<TaskId> InsertTaskAfter(UserId user, TaskId after,
                                 const std::string& name,
                                 const std::string& description,
                                 Assignee assignee);
  Status Reassign(UserId user, TaskId task, Assignee new_assignee);
  Status SkipTask(UserId user, TaskId task);

  // --- execution ---

  /// Marks `task` done; the next pending task in the route becomes ready.
  Status Complete(UserId user, TaskId task);
  /// Rejects the task; the process stalls until the owner re-routes.
  Status Reject(UserId user, TaskId task, const std::string& reason);
  /// Re-opens a rejected task (optionally reassigned) and resumes routing.
  Status Reroute(UserId user, TaskId task,
                 std::optional<Assignee> new_assignee);

  // --- queries ---

  Result<ProcessInfo> GetProcess(ProcessId process) const;
  Result<TaskInfo> GetTask(TaskId task) const;
  /// Tasks of a process in route order.
  std::vector<TaskInfo> Route(ProcessId process) const;
  /// Ready tasks the user may work on (direct or via roles).
  std::vector<TaskInfo> Worklist(UserId user) const;
  std::vector<ProcessInfo> ProcessesIn(DocumentId doc) const;

 private:
  Status PersistTask(UserId user, const TaskInfo& task, bool is_new);
  Status PersistProcess(UserId user, const ProcessInfo& process, bool is_new);
  /// Recomputes ready/pending states after a change; updates process state.
  Status AdvanceRoute(UserId user, ProcessId process);
  bool MayAct(UserId user, const TaskInfo& task) const;

  Database* const db_;
  TextStore* const text_;
  AccessControl* const acl_;

  HeapTable* processes_table_ = nullptr;
  HeapTable* tasks_table_ = nullptr;

  // Guards the process/task caches; released before the Persist* calls
  // into the database, and before acl_ checks (rank kRankDocument, below).
  mutable Mutex mu_{"workflow.mu", lockorder::kRankWorkflow};
  std::map<uint64_t, ProcessInfo> processes_ TENDAX_GUARDED_BY(mu_);
  std::map<uint64_t, TaskInfo> tasks_ TENDAX_GUARDED_BY(mu_);
  std::map<uint64_t, RecordId> process_rids_ TENDAX_GUARDED_BY(mu_);
  std::map<uint64_t, RecordId> task_rids_ TENDAX_GUARDED_BY(mu_);
  // Secondary in-memory indexes so per-process routing and worklists do
  // not scan every task in the system.
  std::map<uint64_t, std::vector<uint64_t>> tasks_by_process_
      TENDAX_GUARDED_BY(mu_);
  std::set<uint64_t> ready_tasks_ TENDAX_GUARDED_BY(mu_);
  std::atomic<uint64_t> next_process_id_{1};
  std::atomic<uint64_t> next_task_id_{1};
};

}  // namespace tendax

#endif  // TENDAX_WORKFLOW_WORKFLOW_ENGINE_H_

#include "workflow/workflow_engine.h"

#include <algorithm>

namespace tendax {

namespace {

Schema ProcessesSchema() {
  return Schema({{"proc_id", ColumnType::kUint64},
                 {"doc_id", ColumnType::kUint64},
                 {"name", ColumnType::kString},
                 {"creator", ColumnType::kUint64},
                 {"created_at", ColumnType::kUint64},
                 {"state", ColumnType::kString}});
}

Schema TasksSchema() {
  return Schema({{"task_id", ColumnType::kUint64},
                 {"proc_id", ColumnType::kUint64},
                 {"doc_id", ColumnType::kUint64},
                 {"name", ColumnType::kString},
                 {"description", ColumnType::kString},
                 {"assignee_is_role", ColumnType::kBool},
                 {"assignee", ColumnType::kUint64},
                 {"state", ColumnType::kUint64},
                 {"ord", ColumnType::kUint64},
                 {"anchor_start", ColumnType::kUint64},
                 {"anchor_end", ColumnType::kUint64},
                 {"created_by", ColumnType::kUint64},
                 {"created_at", ColumnType::kUint64},
                 {"completed_by", ColumnType::kUint64},
                 {"completed_at", ColumnType::kUint64}});
}

Record TaskToRecord(const TaskInfo& t) {
  return Record({t.id.value, t.process.value, t.doc.value, t.name,
                 t.description, t.assignee.is_role, t.assignee.id,
                 uint64_t{static_cast<uint64_t>(t.state)}, t.order,
                 t.anchor_start.value, t.anchor_end.value, t.created_by.value,
                 uint64_t{t.created_at}, t.completed_by.value,
                 uint64_t{t.completed_at}});
}

TaskInfo TaskFromRecord(const Record& rec) {
  TaskInfo t;
  t.id = TaskId(rec.GetUint(0));
  t.process = ProcessId(rec.GetUint(1));
  t.doc = DocumentId(rec.GetUint(2));
  t.name = rec.GetString(3);
  t.description = rec.GetString(4);
  t.assignee.is_role = rec.GetBool(5);
  t.assignee.id = rec.GetUint(6);
  t.state = static_cast<TaskState>(rec.GetUint(7));
  t.order = rec.GetUint(8);
  t.anchor_start = CharId(rec.GetUint(9));
  t.anchor_end = CharId(rec.GetUint(10));
  t.created_by = UserId(rec.GetUint(11));
  t.created_at = rec.GetUint(12);
  t.completed_by = UserId(rec.GetUint(13));
  t.completed_at = rec.GetUint(14);
  return t;
}

}  // namespace

const char* TaskStateName(TaskState state) {
  switch (state) {
    case TaskState::kPending:
      return "pending";
    case TaskState::kReady:
      return "ready";
    case TaskState::kDone:
      return "done";
    case TaskState::kRejected:
      return "rejected";
    case TaskState::kSkipped:
      return "skipped";
  }
  return "?";
}

WorkflowEngine::WorkflowEngine(Database* db, TextStore* text,
                               AccessControl* acl)
    : db_(db), text_(text), acl_(acl) {}

Status WorkflowEngine::Init() {
  auto processes = db_->EnsureTable("tendax_processes", ProcessesSchema());
  if (!processes.ok()) return processes.status();
  processes_table_ = *processes;
  auto tasks = db_->EnsureTable("tendax_tasks", TasksSchema());
  if (!tasks.ok()) return tasks.status();
  tasks_table_ = *tasks;

  uint64_t max_proc = 0, max_task = 0;
  TENDAX_RETURN_IF_ERROR(
      processes_table_->Scan([&](RecordId rid, const Record& rec) {
        ProcessInfo p;
        p.id = ProcessId(rec.GetUint(0));
        p.doc = DocumentId(rec.GetUint(1));
        p.name = rec.GetString(2);
        p.creator = UserId(rec.GetUint(3));
        p.created_at = rec.GetUint(4);
        p.state = rec.GetString(5);
        max_proc = std::max(max_proc, p.id.value);
        processes_[p.id.value] = p;
        process_rids_[p.id.value] = rid;
        return true;
      }));
  TENDAX_RETURN_IF_ERROR(
      tasks_table_->Scan([&](RecordId rid, const Record& rec) {
        TaskInfo t = TaskFromRecord(rec);
        max_task = std::max(max_task, t.id.value);
        tasks_by_process_[t.process.value].push_back(t.id.value);
        if (t.state == TaskState::kReady) ready_tasks_.insert(t.id.value);
        tasks_[t.id.value] = t;
        task_rids_[t.id.value] = rid;
        return true;
      }));
  next_process_id_ = max_proc + 1;
  next_task_id_ = max_task + 1;
  return Status::OK();
}

Status WorkflowEngine::PersistProcess(UserId user, const ProcessInfo& process,
                                      bool is_new) {
  RecordId rid;
  if (!is_new) {
    MutexLock lock(mu_);
    rid = process_rids_.at(process.id.value);
  }
  Record rec({process.id.value, process.doc.value, process.name,
              process.creator.value, uint64_t{process.created_at},
              process.state});
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    TENDAX_RETURN_IF_ERROR(db_->locks()->Acquire(
        txn->id(), MakeResource(ResourceKind::kProcess, process.id.value),
        LockMode::kX));
    if (is_new) {
      auto r = processes_table_->Insert(txn, rec);
      if (!r.ok()) return r.status();
      rid = *r;
    } else {
      auto r = processes_table_->Update(txn, rid, rec);
      if (!r.ok()) return r.status();
      rid = *r;
    }
    ChangeEvent ev;
    ev.kind = ChangeKind::kWorkflowChanged;
    ev.doc = process.doc;
    ev.user = user;
    ev.at = db_->clock()->NowMicros();
    ev.detail = "process:" + process.name + ":" + process.state;
    txn->AddEvent(ev);
    return Status::OK();
  });
  if (!st.ok()) return st;
  MutexLock lock(mu_);
  processes_[process.id.value] = process;
  process_rids_[process.id.value] = rid;
  return Status::OK();
}

Status WorkflowEngine::PersistTask(UserId user, const TaskInfo& task,
                                   bool is_new) {
  RecordId rid;
  if (!is_new) {
    MutexLock lock(mu_);
    rid = task_rids_.at(task.id.value);
  }
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    TENDAX_RETURN_IF_ERROR(db_->locks()->Acquire(
        txn->id(), MakeResource(ResourceKind::kProcess, task.process.value),
        LockMode::kX));
    if (is_new) {
      auto r = tasks_table_->Insert(txn, TaskToRecord(task));
      if (!r.ok()) return r.status();
      rid = *r;
    } else {
      auto r = tasks_table_->Update(txn, rid, TaskToRecord(task));
      if (!r.ok()) return r.status();
      rid = *r;
    }
    ChangeEvent ev;
    ev.kind = ChangeKind::kWorkflowChanged;
    ev.doc = task.doc;
    ev.user = user;
    ev.at = db_->clock()->NowMicros();
    ev.detail = "task:" + task.name + ":" + TaskStateName(task.state);
    txn->AddEvent(ev);
    return Status::OK();
  });
  if (!st.ok()) return st;
  MutexLock lock(mu_);
  if (is_new) tasks_by_process_[task.process.value].push_back(task.id.value);
  if (task.state == TaskState::kReady) {
    ready_tasks_.insert(task.id.value);
  } else {
    ready_tasks_.erase(task.id.value);
  }
  tasks_[task.id.value] = task;
  task_rids_[task.id.value] = rid;
  return Status::OK();
}

Result<ProcessId> WorkflowEngine::DefineProcess(UserId user, DocumentId doc,
                                                const std::string& name) {
  TENDAX_RETURN_IF_ERROR(acl_->Require(user, doc, Right::kWorkflow));
  ProcessInfo p;
  p.id = ProcessId(next_process_id_.fetch_add(1));
  p.doc = doc;
  p.name = name;
  p.creator = user;
  p.created_at = db_->clock()->NowMicros();
  p.state = "running";
  TENDAX_RETURN_IF_ERROR(PersistProcess(user, p, /*is_new=*/true));
  return p.id;
}

Result<TaskId> WorkflowEngine::AddTask(UserId user, ProcessId process,
                                       const std::string& name,
                                       const std::string& description,
                                       Assignee assignee, size_t pos,
                                       size_t len) {
  ProcessInfo proc;
  uint64_t max_order = 0;
  bool any_open = false;
  {
    MutexLock lock(mu_);
    auto it = processes_.find(process.value);
    if (it == processes_.end()) return Status::NotFound("unknown process");
    proc = it->second;
    auto pit = tasks_by_process_.find(process.value);
    if (pit != tasks_by_process_.end()) {
      for (uint64_t task_id : pit->second) {
        const TaskInfo& t = tasks_.at(task_id);
        max_order = std::max(max_order, t.order + 1);
        if (t.state == TaskState::kPending || t.state == TaskState::kReady) {
          any_open = true;
        }
      }
    }
  }
  TENDAX_RETURN_IF_ERROR(acl_->Require(user, proc.doc, Right::kWorkflow));

  TaskInfo t;
  t.id = TaskId(next_task_id_.fetch_add(1));
  t.process = process;
  t.doc = proc.doc;
  t.name = name;
  t.description = description;
  t.assignee = assignee;
  t.state = any_open ? TaskState::kPending : TaskState::kReady;
  t.order = max_order;
  t.created_by = user;
  t.created_at = db_->clock()->NowMicros();
  if (len > 0) {
    auto info = text_->RangeInfo(proc.doc, pos, len);
    if (!info.ok()) return info.status();
    t.anchor_start = info->front().id;
    t.anchor_end = info->back().id;
  }
  TENDAX_RETURN_IF_ERROR(PersistTask(user, t, /*is_new=*/true));
  // A finished process picks back up when new work arrives at run time.
  if (proc.state == "finished") {
    proc.state = "running";
    TENDAX_RETURN_IF_ERROR(PersistProcess(user, proc, false));
  }
  return t.id;
}

Result<TaskId> WorkflowEngine::InsertTaskAfter(UserId user, TaskId after,
                                               const std::string& name,
                                               const std::string& description,
                                               Assignee assignee) {
  TaskInfo anchor;
  {
    MutexLock lock(mu_);
    auto it = tasks_.find(after.value);
    if (it == tasks_.end()) return Status::NotFound("unknown task");
    anchor = it->second;
  }
  TENDAX_RETURN_IF_ERROR(acl_->Require(user, anchor.doc, Right::kWorkflow));

  // Shift later tasks to open a slot (dynamic re-routing).
  std::vector<TaskInfo> to_shift;
  {
    MutexLock lock(mu_);
    auto pit = tasks_by_process_.find(anchor.process.value);
    if (pit != tasks_by_process_.end()) {
      for (uint64_t task_id : pit->second) {
        const TaskInfo& t = tasks_.at(task_id);
        if (t.order > anchor.order) to_shift.push_back(t);
      }
    }
  }
  std::sort(to_shift.begin(), to_shift.end(),
            [](const TaskInfo& a, const TaskInfo& b) {
              return a.order > b.order;  // shift from the back
            });
  for (TaskInfo t : to_shift) {
    t.order += 1;
    TENDAX_RETURN_IF_ERROR(PersistTask(user, t, false));
  }

  TaskInfo t;
  t.id = TaskId(next_task_id_.fetch_add(1));
  t.process = anchor.process;
  t.doc = anchor.doc;
  t.name = name;
  t.description = description;
  t.assignee = assignee;
  t.state = TaskState::kPending;
  t.order = anchor.order + 1;
  t.created_by = user;
  t.created_at = db_->clock()->NowMicros();
  TENDAX_RETURN_IF_ERROR(PersistTask(user, t, /*is_new=*/true));
  TENDAX_RETURN_IF_ERROR(AdvanceRoute(user, anchor.process));
  return t.id;
}

Status WorkflowEngine::Reassign(UserId user, TaskId task,
                                Assignee new_assignee) {
  TaskInfo t;
  {
    MutexLock lock(mu_);
    auto it = tasks_.find(task.value);
    if (it == tasks_.end()) return Status::NotFound("unknown task");
    t = it->second;
  }
  TENDAX_RETURN_IF_ERROR(acl_->Require(user, t.doc, Right::kWorkflow));
  if (t.state == TaskState::kDone) {
    return Status::FailedPrecondition("task already done");
  }
  t.assignee = new_assignee;
  return PersistTask(user, t, false);
}

Status WorkflowEngine::SkipTask(UserId user, TaskId task) {
  TaskInfo t;
  {
    MutexLock lock(mu_);
    auto it = tasks_.find(task.value);
    if (it == tasks_.end()) return Status::NotFound("unknown task");
    t = it->second;
  }
  TENDAX_RETURN_IF_ERROR(acl_->Require(user, t.doc, Right::kWorkflow));
  if (t.state == TaskState::kDone) {
    return Status::FailedPrecondition("task already done");
  }
  t.state = TaskState::kSkipped;
  TENDAX_RETURN_IF_ERROR(PersistTask(user, t, false));
  return AdvanceRoute(user, t.process);
}

bool WorkflowEngine::MayAct(UserId user, const TaskInfo& task) const {
  if (!task.assignee.is_role) return task.assignee.id == user.value;
  auto roles = acl_->RolesOf(user);
  return roles.count(RoleId(task.assignee.id)) > 0;
}

Status WorkflowEngine::Complete(UserId user, TaskId task) {
  TaskInfo t;
  {
    MutexLock lock(mu_);
    auto it = tasks_.find(task.value);
    if (it == tasks_.end()) return Status::NotFound("unknown task");
    t = it->second;
  }
  if (t.state != TaskState::kReady) {
    return Status::FailedPrecondition("task is not ready (" +
                                      std::string(TaskStateName(t.state)) +
                                      ")");
  }
  if (!MayAct(user, t)) {
    return Status::PermissionDenied("task is not assigned to this user");
  }
  t.state = TaskState::kDone;
  t.completed_by = user;
  t.completed_at = db_->clock()->NowMicros();
  TENDAX_RETURN_IF_ERROR(PersistTask(user, t, false));
  return AdvanceRoute(user, t.process);
}

Status WorkflowEngine::Reject(UserId user, TaskId task,
                              const std::string& reason) {
  TaskInfo t;
  {
    MutexLock lock(mu_);
    auto it = tasks_.find(task.value);
    if (it == tasks_.end()) return Status::NotFound("unknown task");
    t = it->second;
  }
  if (t.state != TaskState::kReady) {
    return Status::FailedPrecondition("task is not ready");
  }
  if (!MayAct(user, t)) {
    return Status::PermissionDenied("task is not assigned to this user");
  }
  t.state = TaskState::kRejected;
  // Record the (latest) rejection reason without growing the description
  // unboundedly across repeated reject/reroute cycles.
  size_t old_note = t.description.find(" [rejected: ");
  if (old_note != std::string::npos) t.description.resize(old_note);
  t.description += " [rejected: " + reason + "]";
  TENDAX_RETURN_IF_ERROR(PersistTask(user, t, false));

  ProcessInfo proc;
  {
    MutexLock lock(mu_);
    proc = processes_.at(t.process.value);
  }
  proc.state = "rejected";
  return PersistProcess(user, proc, false);
}

Status WorkflowEngine::Reroute(UserId user, TaskId task,
                               std::optional<Assignee> new_assignee) {
  TaskInfo t;
  {
    MutexLock lock(mu_);
    auto it = tasks_.find(task.value);
    if (it == tasks_.end()) return Status::NotFound("unknown task");
    t = it->second;
  }
  TENDAX_RETURN_IF_ERROR(acl_->Require(user, t.doc, Right::kWorkflow));
  if (t.state != TaskState::kRejected) {
    return Status::FailedPrecondition("only rejected tasks can be rerouted");
  }
  t.state = TaskState::kPending;
  if (new_assignee.has_value()) t.assignee = *new_assignee;
  TENDAX_RETURN_IF_ERROR(PersistTask(user, t, false));

  ProcessInfo proc;
  {
    MutexLock lock(mu_);
    proc = processes_.at(t.process.value);
  }
  proc.state = "running";
  TENDAX_RETURN_IF_ERROR(PersistProcess(user, proc, false));
  return AdvanceRoute(user, t.process);
}

Status WorkflowEngine::AdvanceRoute(UserId user, ProcessId process) {
  // Snapshot the route.
  std::vector<TaskInfo> route;
  ProcessInfo proc;
  {
    MutexLock lock(mu_);
    auto it = processes_.find(process.value);
    if (it == processes_.end()) return Status::NotFound("unknown process");
    proc = it->second;
    auto pit = tasks_by_process_.find(process.value);
    if (pit != tasks_by_process_.end()) {
      for (uint64_t task_id : pit->second) route.push_back(tasks_.at(task_id));
    }
  }
  std::sort(route.begin(), route.end(),
            [](const TaskInfo& a, const TaskInfo& b) {
              return a.order < b.order;
            });

  if (proc.state == "rejected") return Status::OK();  // stalled

  // The first open task becomes ready; everything later stays pending.
  bool blocked = false;
  bool all_done = true;
  for (TaskInfo& t : route) {
    if (t.state == TaskState::kDone || t.state == TaskState::kSkipped) {
      continue;
    }
    if (t.state == TaskState::kRejected) return Status::OK();
    all_done = false;
    TaskState want = blocked ? TaskState::kPending : TaskState::kReady;
    blocked = true;
    if (t.state != want) {
      t.state = want;
      TENDAX_RETURN_IF_ERROR(PersistTask(user, t, false));
    }
  }
  std::string want_state = all_done ? "finished" : "running";
  if (proc.state != want_state) {
    proc.state = want_state;
    TENDAX_RETURN_IF_ERROR(PersistProcess(user, proc, false));
  }
  return Status::OK();
}

Result<ProcessInfo> WorkflowEngine::GetProcess(ProcessId process) const {
  MutexLock lock(mu_);
  auto it = processes_.find(process.value);
  if (it == processes_.end()) return Status::NotFound("unknown process");
  return it->second;
}

Result<TaskInfo> WorkflowEngine::GetTask(TaskId task) const {
  MutexLock lock(mu_);
  auto it = tasks_.find(task.value);
  if (it == tasks_.end()) return Status::NotFound("unknown task");
  return it->second;
}

std::vector<TaskInfo> WorkflowEngine::Route(ProcessId process) const {
  std::vector<TaskInfo> out;
  {
    MutexLock lock(mu_);
    auto pit = tasks_by_process_.find(process.value);
    if (pit != tasks_by_process_.end()) {
      for (uint64_t task_id : pit->second) out.push_back(tasks_.at(task_id));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TaskInfo& a, const TaskInfo& b) {
              return a.order < b.order;
            });
  return out;
}

std::vector<TaskInfo> WorkflowEngine::Worklist(UserId user) const {
  std::vector<TaskInfo> out;
  {
    MutexLock lock(mu_);
    for (uint64_t task_id : ready_tasks_) {
      out.push_back(tasks_.at(task_id));
    }
  }
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](const TaskInfo& t) { return !MayAct(user, t); }),
            out.end());
  std::sort(out.begin(), out.end(),
            [](const TaskInfo& a, const TaskInfo& b) {
              return a.created_at < b.created_at;
            });
  return out;
}

std::vector<ProcessInfo> WorkflowEngine::ProcessesIn(DocumentId doc) const {
  MutexLock lock(mu_);
  std::vector<ProcessInfo> out;
  for (const auto& [id, p] : processes_) {
    if (p.doc == doc) out.push_back(p);
  }
  return out;
}

}  // namespace tendax

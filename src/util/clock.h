#ifndef TENDAX_UTIL_CLOCK_H_
#define TENDAX_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "util/ids.h"

namespace tendax {

/// Time source abstraction. Creation-time metadata (a TeNDaX cornerstone)
/// is stamped through a `Clock` so that tests and benchmarks can inject a
/// deterministic `ManualClock` while production uses `SystemClock`.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Microseconds since the Unix epoch.
  virtual Timestamp NowMicros() const = 0;
};

/// Wall-clock time from the OS.
class SystemClock : public Clock {
 public:
  Timestamp NowMicros() const override;
};

/// A settable, monotonically advancing clock for tests and deterministic
/// benchmarks. Every read advances time by `tick_micros` so that successive
/// events get distinct, ordered timestamps.
class ManualClock : public Clock {
 public:
  explicit ManualClock(Timestamp start_micros = 1'000'000,
                       Timestamp tick_micros = 1)
      : now_(start_micros), tick_(tick_micros) {}

  Timestamp NowMicros() const override {
    return now_.fetch_add(tick_, std::memory_order_relaxed);
  }

  /// Jumps the clock forward by `micros`.
  void Advance(Timestamp micros) {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }

  void Set(Timestamp micros) { now_.store(micros, std::memory_order_relaxed); }

 private:
  mutable std::atomic<Timestamp> now_;
  Timestamp tick_;
};

}  // namespace tendax

#endif  // TENDAX_UTIL_CLOCK_H_

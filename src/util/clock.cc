#include "util/clock.h"

#include <chrono>

namespace tendax {

Timestamp SystemClock::NowMicros() const {
  return static_cast<Timestamp>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace tendax

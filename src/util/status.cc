#include "util/status.h"

namespace tendax {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tendax

#ifndef TENDAX_UTIL_LOCK_ORDER_H_
#define TENDAX_UTIL_LOCK_ORDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace tendax {

class MetricsRegistry;

namespace lockorder {

// Runtime lock-order validation. Every named `tendax::Mutex` /
// `tendax::SharedMutex` (util/mutex.h) registers a graph node interned by
// name, so all instances of e.g. "wal.gc" share one node. While validation
// is enabled, each acquisition
//   1. checks declared ranks: acquiring a mutex whose rank is *lower* than
//      a ranked mutex already held is an inversion — reported immediately,
//      on the first run, whether or not the opposing thread ever shows up;
//   2. records an acquired-after edge (innermost held -> acquired) in a
//      global graph and runs cycle detection — so the two halves of an
//      inversion taken on *different* threads are caught the first time the
//      second edge appears, again without needing the deadlock to strike;
//   3. flags re-acquisition of the same instance (guaranteed self-deadlock
//      for a non-recursive mutex).
// Violations carry the full held-stack and offending edge/cycle, and either
// abort (validation builds / tests) or surface through the `lockorder.*`
// metrics family (see PublishTo). Disabled, the per-acquisition cost is one
// relaxed atomic load and branch.
//
// Same-name nesting across *different instances* (two documents, two
// databases) is permitted and generates no edge: instances of one subsystem
// are peers the name graph cannot order.

/// Rank for mutexes that opt out of rank checking (the edge graph still
/// covers them). Ranks increase along the permitted acquisition order:
/// a thread may only acquire mutexes of strictly increasing rank.
inline constexpr int kUnranked = -1;

// Canonical cross-module rank map. Outer layers lock first (low rank),
// storage locks last (high rank, innermost). Gaps are deliberate: new
// mutexes slot in without renumbering. See DESIGN.md "Static analysis &
// lock discipline" before adding a rank.
inline constexpr int kRankServer = 10;        // core/tendax server state
inline constexpr int kRankSession = 20;       // collab/session_manager
inline constexpr int kRankWorkflow = 30;      // workflow engine
inline constexpr int kRankDocument = 40;      // document/meta/folders/search
inline constexpr int kRankUndo = 50;          // collab/undo_manager
inline constexpr int kRankDatabase = 60;      // db/database, catalog
inline constexpr int kRankTable = 70;         // heap tables, b+tree, text
inline constexpr int kRankPageLatch = 75;     // storage/page latch: taken
                                              // after the table mutex and
                                              // held across LogUpdate (txn,
                                              // wal), so it sits between
inline constexpr int kRankTxn = 80;           // txn/txn_manager
inline constexpr int kRankLock = 90;          // txn/lock_manager
inline constexpr int kRankBufferPool = 95;    // storage/buffer_pool: holds
                                              // its mutex across the
                                              // write-ahead WAL flush
inline constexpr int kRankWalGroup = 100;     // storage/wal gc_mu_
inline constexpr int kRankWal = 110;          // storage/wal mu_
inline constexpr int kRankDisk = 130;         // storage/disk_manager, log
inline constexpr int kRankLeaf = 200;         // metrics, testing hooks: no
                                              // tracked mutex taken inside

/// Interned per-name graph node. Opaque to callers; `tendax::Mutex` holds a
/// pointer obtained from Register().
struct MutexNode;

/// A detected discipline violation, Status-style: one line of what, plus
/// the machine-readable pieces a test can assert on exactly.
struct Violation {
  enum class Kind : uint8_t {
    kRankInversion = 0,  // acquired a lower rank while holding a higher one
    kCycle = 1,          // new edge closed a cycle in the acquired-after graph
    kSelfDeadlock = 2,   // re-acquired the same non-recursive instance
  };

  Kind kind = Kind::kRankInversion;
  /// Full formatted report: kind, offending edge, held stack, cycle path.
  std::string message;
  /// Name of the mutex being acquired when the violation fired.
  std::string acquiring;
  /// Names of tracked mutexes the thread held, outermost first.
  std::vector<std::string> held_stack;
  /// kCycle only: the cycle as node names, starting and ending at the
  /// acquired mutex (e.g. {"a", "b", "a"}).
  std::vector<std::string> cycle;

  /// The report as a Status (kFailedPrecondition) for call sites that
  /// propagate rather than abort.
  Status AsStatus() const { return Status::FailedPrecondition(message); }
};

/// Monotonic counters; mirrored into `lockorder.*` gauges by PublishTo().
struct Stats {
  uint64_t registered = 0;        // distinct named nodes interned
  uint64_t tracked_acquires = 0;  // acquisitions validated while enabled
  uint64_t edges = 0;             // distinct acquired-after edges recorded
  uint64_t rank_inversions = 0;
  uint64_t cycles = 0;
  uint64_t self_deadlocks = 0;

  uint64_t violations() const {
    return rank_inversions + cycles + self_deadlocks;
  }
};

namespace internal {
// Validation toggle, read on every Mutex::lock/unlock. Inline so the
// disabled fast path is a single relaxed load without a function call.
#if defined(TENDAX_LOCK_ORDER)
inline std::atomic<bool> g_enabled{true};
#else
inline std::atomic<bool> g_enabled{false};
#endif
}  // namespace internal

/// True while runtime validation is on. Defaults to the build mode:
/// on under -DTENDAX_LOCK_ORDER=ON, off otherwise.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Turns validation on or off. Enable before spawning worker threads:
/// acquisitions made while disabled are invisible, so a mid-flight enable
/// sees partial held-stacks until those locks unwind.
void SetEnabled(bool enabled);

/// When true, an unhandled violation aborts the process after printing the
/// report (the validation-build / test posture). When false it is recorded
/// (stats + last violation + stderr) and execution continues. Defaults to
/// the build mode, like Enabled().
void SetAbortOnViolation(bool abort_on_violation);

/// Replaces the violation sink. A non-null handler suppresses both the
/// stderr print and the abort — tests install one to capture reports.
/// Null restores the default behavior. Handlers run with no lockorder
/// lock held and may take tracked mutexes.
using Handler = std::function<void(const Violation&)>;
void SetViolationHandler(Handler handler);

Stats GetStats();

/// True once any violation has been recorded since the last Reset().
bool HasViolation();
/// The most recently recorded violation (empty Violation if none).
Violation LastViolation();

/// Test hook: clears the edge graph, stats, and last violation. Node
/// registrations survive (live mutexes keep their node pointers). Only
/// call while no tracked mutex is held on any thread.
void ResetForTest();

/// Test hook: names of tracked mutexes the calling thread currently holds,
/// outermost first.
std::vector<std::string> HeldStackForTest();

/// Mirrors Stats into `lockorder.*` gauges on `registry` (null-safe):
/// lockorder.registered, .tracked_acquires, .edges, .rank_inversions,
/// .cycles, .self_deadlocks, .violations, .enabled. Called at snapshot
/// time (kStats) so remote scrapes see violations from surviving runs.
void PublishTo(MetricsRegistry* registry);

// --- hooks for tendax::Mutex / tendax::SharedMutex (util/mutex.h) ---

/// Interns (or finds) the node for `name` and records `rank` on first
/// registration; later registrations of the same name keep the first rank.
/// Returns nullptr for a null name (unnamed mutexes are untracked).
const MutexNode* Register(const char* name, int rank);

/// Validates an intended acquisition of `instance` (a Mutex address)
/// registered under `node`: self-deadlock, rank, and cycle checks, plus
/// acquired-after edge recording. Call *before* blocking on the underlying
/// lock — a self-deadlock must be reported while the thread can still run.
void OnAcquiring(const MutexNode* node, const void* instance);

/// Pushes the now-held lock onto the thread's held stack. Call after the
/// underlying lock call returns (also used alone for successful try-locks,
/// which impose no ordering and skip OnAcquiring).
void OnAcquired(const MutexNode* node, const void* instance);

/// Records the release. Tolerates entries missing from the stack (lock
/// taken while validation was off) and out-of-stack-order unlocks.
void OnRelease(const MutexNode* node, const void* instance);

}  // namespace lockorder
}  // namespace tendax

#endif  // TENDAX_UTIL_LOCK_ORDER_H_

#ifndef TENDAX_UTIL_DEADLINE_H_
#define TENDAX_UTIL_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace tendax {

/// Ambient per-request deadline, gRPC-style. The collab endpoint arms it with
/// the request's remaining budget before dispatching into the engine; deep
/// blocking code (lock waits, long scans) reads it without any parameter
/// plumbing. Stored as a thread-local steady_clock point because the wait
/// primitives below it (CondVar::WaitUntil) are steady_clock-based — the
/// wall-clock budget from the wire is converted once at the endpoint.
///
/// A zero/unset deadline means "no deadline"; all queries are cheap no-ops.
class RequestDeadline {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// True iff a deadline is armed on this thread.
  static bool Armed();

  /// The armed deadline. Only meaningful when Armed().
  static TimePoint Deadline();

  /// True iff a deadline is armed and already in the past.
  static bool Expired();

  /// Remaining budget in microseconds; 0 when expired. Only meaningful when
  /// Armed().
  static uint64_t RemainingMicros();

 private:
  friend class ScopedRequestDeadline;
  static thread_local TimePoint deadline_;
  static thread_local bool armed_;
};

/// RAII guard that arms the calling thread's ambient deadline for the
/// dynamic extent of a request. Nests: the inner guard may only tighten the
/// deadline (an outer, earlier deadline wins), and the previous state is
/// restored on destruction. `budget_micros == 0` arms nothing (no-op guard).
class ScopedRequestDeadline {
 public:
  explicit ScopedRequestDeadline(uint64_t budget_micros);
  ~ScopedRequestDeadline();

  ScopedRequestDeadline(const ScopedRequestDeadline&) = delete;
  ScopedRequestDeadline& operator=(const ScopedRequestDeadline&) = delete;

 private:
  RequestDeadline::TimePoint saved_deadline_;
  bool saved_armed_;
};

}  // namespace tendax

#endif  // TENDAX_UTIL_DEADLINE_H_

#include "util/lock_order.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"

namespace tendax {
namespace lockorder {

struct MutexNode {
  std::string name;
  int rank = kUnranked;
  // Acquired-after successors: succ contains B iff some thread acquired B
  // while this node was its innermost tracked hold. Guarded by State().mu.
  std::unordered_set<const MutexNode*> succ;
};

namespace {

struct GlobalState {
  std::mutex mu;  // guards nodes' succ sets, handler, last violation
  std::unordered_map<std::string, std::unique_ptr<MutexNode>> nodes;
  Handler handler;
  Violation last;
};

// Leaked on purpose: mutexes (and threads holding them) may outlive every
// static destructor, so the validator state must never be torn down.
GlobalState& State() {
  static GlobalState* s = new GlobalState();
  return *s;
}

#if defined(TENDAX_LOCK_ORDER)
std::atomic<bool> g_abort{true};
#else
std::atomic<bool> g_abort{false};
#endif
std::atomic<bool> g_has_violation{false};
std::atomic<uint64_t> g_tracked{0};
std::atomic<uint64_t> g_edges{0};
std::atomic<uint64_t> g_rank_inversions{0};
std::atomic<uint64_t> g_cycles{0};
std::atomic<uint64_t> g_self_deadlocks{0};

struct Held {
  const MutexNode* node;
  const void* instance;
};
thread_local std::vector<Held> t_held;

std::string DescribeNode(const MutexNode* n) {
  if (n->rank == kUnranked) return n->name;
  std::ostringstream os;
  os << n->name << " (rank " << n->rank << ")";
  return os.str();
}

std::string DescribeHeldStack() {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < t_held.size(); ++i) {
    if (i > 0) os << ", ";
    os << DescribeNode(t_held[i].node);
  }
  os << "]";
  return os.str();
}

void FillHeldStack(Violation* v) {
  v->held_stack.reserve(t_held.size());
  for (const Held& h : t_held) v->held_stack.push_back(h.node->name);
}

// Routes a completed violation to the configured sink. Runs with no
// lockorder lock held so handlers may take tracked mutexes.
void Dispatch(Violation v) {
  switch (v.kind) {
    case Violation::Kind::kRankInversion:
      g_rank_inversions.fetch_add(1, std::memory_order_relaxed);
      break;
    case Violation::Kind::kCycle:
      g_cycles.fetch_add(1, std::memory_order_relaxed);
      break;
    case Violation::Kind::kSelfDeadlock:
      g_self_deadlocks.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  g_has_violation.store(true, std::memory_order_release);

  Handler handler;
  {
    std::lock_guard<std::mutex> l(State().mu);
    State().last = v;
    handler = State().handler;
  }
  if (handler) {
    handler(v);
    return;
  }
  std::fprintf(stderr, "tendax: %s\n", v.message.c_str());
  if (g_abort.load(std::memory_order_relaxed)) std::abort();
}

// Requires State().mu held: is `to` reachable from `from` along succ edges?
// Fills `path` with the node sequence from -> ... -> to when found.
bool FindPath(const MutexNode* from, const MutexNode* to,
              std::vector<const MutexNode*>* path) {
  if (from == to) {
    path->push_back(from);
    return true;
  }
  std::unordered_set<const MutexNode*> visited;
  std::vector<const MutexNode*> frontier{from};
  std::unordered_map<const MutexNode*, const MutexNode*> parent;
  visited.insert(from);
  while (!frontier.empty()) {
    const MutexNode* cur = frontier.back();
    frontier.pop_back();
    for (const MutexNode* next : cur->succ) {
      if (!visited.insert(next).second) continue;
      parent[next] = cur;
      if (next == to) {
        std::vector<const MutexNode*> rev{to};
        for (const MutexNode* p = cur; p != nullptr;
             p = (p == from) ? nullptr : parent[p]) {
          rev.push_back(p);
        }
        path->assign(rev.rbegin(), rev.rend());
        return true;
      }
      frontier.push_back(next);
    }
  }
  return false;
}

}  // namespace

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

void SetAbortOnViolation(bool abort_on_violation) {
  g_abort.store(abort_on_violation, std::memory_order_relaxed);
}

void SetViolationHandler(Handler handler) {
  std::lock_guard<std::mutex> l(State().mu);
  State().handler = std::move(handler);
}

Stats GetStats() {
  Stats s;
  {
    std::lock_guard<std::mutex> l(State().mu);
    s.registered = State().nodes.size();
  }
  s.tracked_acquires = g_tracked.load(std::memory_order_relaxed);
  s.edges = g_edges.load(std::memory_order_relaxed);
  s.rank_inversions = g_rank_inversions.load(std::memory_order_relaxed);
  s.cycles = g_cycles.load(std::memory_order_relaxed);
  s.self_deadlocks = g_self_deadlocks.load(std::memory_order_relaxed);
  return s;
}

bool HasViolation() { return g_has_violation.load(std::memory_order_acquire); }

Violation LastViolation() {
  std::lock_guard<std::mutex> l(State().mu);
  return State().last;
}

void ResetForTest() {
  std::lock_guard<std::mutex> l(State().mu);
  for (auto& [name, node] : State().nodes) node->succ.clear();
  State().last = Violation{};
  g_has_violation.store(false, std::memory_order_relaxed);
  g_tracked.store(0, std::memory_order_relaxed);
  g_edges.store(0, std::memory_order_relaxed);
  g_rank_inversions.store(0, std::memory_order_relaxed);
  g_cycles.store(0, std::memory_order_relaxed);
  g_self_deadlocks.store(0, std::memory_order_relaxed);
}

std::vector<std::string> HeldStackForTest() {
  std::vector<std::string> out;
  out.reserve(t_held.size());
  for (const Held& h : t_held) out.push_back(h.node->name);
  return out;
}

void PublishTo(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  Stats s = GetStats();
  registry->gauge("lockorder.registered")
      ->Set(static_cast<int64_t>(s.registered));
  registry->gauge("lockorder.tracked_acquires")
      ->Set(static_cast<int64_t>(s.tracked_acquires));
  registry->gauge("lockorder.edges")->Set(static_cast<int64_t>(s.edges));
  registry->gauge("lockorder.rank_inversions")
      ->Set(static_cast<int64_t>(s.rank_inversions));
  registry->gauge("lockorder.cycles")->Set(static_cast<int64_t>(s.cycles));
  registry->gauge("lockorder.self_deadlocks")
      ->Set(static_cast<int64_t>(s.self_deadlocks));
  registry->gauge("lockorder.violations")
      ->Set(static_cast<int64_t>(s.violations()));
  registry->gauge("lockorder.enabled")->Set(Enabled() ? 1 : 0);
}

const MutexNode* Register(const char* name, int rank) {
  if (name == nullptr) return nullptr;
  std::lock_guard<std::mutex> l(State().mu);
  auto& slot = State().nodes[name];
  if (slot == nullptr) {
    slot = std::make_unique<MutexNode>();
    slot->name = name;
    slot->rank = rank;
  }
  // Later registrations of the same name keep the first rank; a genuine
  // conflict shows up as a rank inversion at acquisition time instead.
  return slot.get();
}

void OnAcquiring(const MutexNode* node, const void* instance) {
  if (node == nullptr) return;
  g_tracked.fetch_add(1, std::memory_order_relaxed);

  // Self-deadlock: this exact instance is already held by this thread.
  // Must fire before the underlying lock() call, which would never return.
  for (const Held& h : t_held) {
    if (h.instance == instance) {
      Violation v;
      v.kind = Violation::Kind::kSelfDeadlock;
      v.acquiring = node->name;
      FillHeldStack(&v);
      v.message = "lock-order violation (self deadlock): re-acquiring \"" +
                  node->name + "\" already held by this thread; held stack: " +
                  DescribeHeldStack();
      Dispatch(std::move(v));
      return;
    }
  }

  // Rank check: a ranked mutex may only be acquired while every ranked
  // mutex already held has a strictly lower rank.
  if (node->rank != kUnranked) {
    for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
      const MutexNode* held = it->node;
      if (held->rank != kUnranked && held->rank > node->rank) {
        Violation v;
        v.kind = Violation::Kind::kRankInversion;
        v.acquiring = node->name;
        FillHeldStack(&v);
        v.message = "lock-order violation (rank inversion): acquiring \"" +
                    node->name + "\" (rank " + std::to_string(node->rank) +
                    ") while holding \"" + held->name + "\" (rank " +
                    std::to_string(held->rank) +
                    "); held stack: " + DescribeHeldStack();
        Dispatch(std::move(v));
        return;
      }
    }
  }

  // Acquired-after edge from the innermost tracked hold. Same-name peers
  // (distinct instances of one subsystem) are unordered: no edge.
  if (t_held.empty()) return;
  const MutexNode* prev = t_held.back().node;
  if (prev == node) return;

  std::vector<const MutexNode*> path;
  bool new_edge = false;
  bool cycle = false;
  {
    std::lock_guard<std::mutex> l(State().mu);
    // succ is keyed per-name, so mutating prev's set through a const
    // pointer is the one place the registry's ownership is exercised.
    new_edge =
        const_cast<MutexNode*>(prev)->succ.insert(node).second;
    if (new_edge) {
      g_edges.fetch_add(1, std::memory_order_relaxed);
      // Adding prev -> node closes a cycle iff node already reaches prev.
      // The edge stays in the graph either way, so each offending edge is
      // reported exactly once — deterministic, single-run detection.
      cycle = FindPath(node, prev, &path);
    }
  }
  if (!cycle) return;

  Violation v;
  v.kind = Violation::Kind::kCycle;
  v.acquiring = node->name;
  FillHeldStack(&v);
  v.cycle.reserve(path.size() + 1);
  for (const MutexNode* n : path) v.cycle.push_back(n->name);
  v.cycle.push_back(node->name);  // close the loop via the new edge
  std::ostringstream os;
  os << "lock-order violation (cycle): acquiring \"" << node->name
     << "\" while holding \"" << prev->name << "\" closes cycle ";
  for (size_t i = 0; i < v.cycle.size(); ++i) {
    if (i > 0) os << " -> ";
    os << v.cycle[i];
  }
  os << "; held stack: " << DescribeHeldStack();
  v.message = os.str();
  Dispatch(std::move(v));
}

void OnAcquired(const MutexNode* node, const void* instance) {
  if (node == nullptr) return;
  t_held.push_back(Held{node, instance});
}

void OnRelease(const MutexNode* node, const void* instance) {
  if (node == nullptr) return;
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->instance == instance) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Not found: the lock was taken while validation was off. Ignore.
}

}  // namespace lockorder
}  // namespace tendax

#ifndef TENDAX_UTIL_RESULT_H_
#define TENDAX_UTIL_RESULT_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "util/status.h"

namespace tendax {

/// A value-or-error type (StatusOr). A `Result<T>` holds either an OK status
/// plus a `T`, or a non-OK status and no value. Accessing the value of a
/// failed result is a programming error and asserts in debug builds.
/// [[nodiscard]] for the same reason as Status: a dropped Result<T> drops
/// an error with it.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from an error status; asserts that it is not OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }
  /// Implicit construction from a value (OK result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  // Dereferencing a failed Result is a programming error; abort loudly in
  // every build mode rather than reading an empty optional.
  void CheckOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "FATAL: Result accessed with error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// binds the value to `lhs`.
#define TENDAX_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto TENDAX_CONCAT_(res_, __LINE__) = (rexpr);     \
  if (!TENDAX_CONCAT_(res_, __LINE__).ok())          \
    return TENDAX_CONCAT_(res_, __LINE__).status();  \
  lhs = std::move(TENDAX_CONCAT_(res_, __LINE__)).value()

#define TENDAX_CONCAT_(a, b) TENDAX_CONCAT_IMPL_(a, b)
#define TENDAX_CONCAT_IMPL_(a, b) a##b

}  // namespace tendax

#endif  // TENDAX_UTIL_RESULT_H_

#ifndef TENDAX_UTIL_IDS_H_
#define TENDAX_UTIL_IDS_H_

#include <cstdint>
#include <functional>
#include <string>

namespace tendax {

/// Strongly-typed 64-bit identifier. Each entity kind instantiates its own
/// tag so that e.g. a `UserId` cannot be passed where a `DocumentId` is
/// expected. Value 0 is reserved as "invalid/none".
template <typename Tag>
struct StrongId {
  uint64_t value = 0;

  constexpr StrongId() = default;
  constexpr explicit StrongId(uint64_t v) : value(v) {}

  constexpr bool valid() const { return value != 0; }
  constexpr auto operator<=>(const StrongId&) const = default;

  std::string ToString() const {
    return std::string(Tag::kPrefix) + std::to_string(value);
  }
};

struct DocumentIdTag { static constexpr const char* kPrefix = "doc:"; };
struct CharIdTag { static constexpr const char* kPrefix = "ch:"; };
struct TxnIdTag { static constexpr const char* kPrefix = "txn:"; };
struct UserIdTag { static constexpr const char* kPrefix = "user:"; };
struct RoleIdTag { static constexpr const char* kPrefix = "role:"; };
struct SessionIdTag { static constexpr const char* kPrefix = "sess:"; };
struct ElementIdTag { static constexpr const char* kPrefix = "elem:"; };
struct TaskIdTag { static constexpr const char* kPrefix = "task:"; };
struct ProcessIdTag { static constexpr const char* kPrefix = "proc:"; };
struct FolderIdTag { static constexpr const char* kPrefix = "fold:"; };
struct NoteIdTag { static constexpr const char* kPrefix = "note:"; };
struct ObjectIdTag { static constexpr const char* kPrefix = "obj:"; };
struct TableIdTag { static constexpr const char* kPrefix = "tab:"; };
struct IndexIdTag { static constexpr const char* kPrefix = "idx:"; };

using DocumentId = StrongId<DocumentIdTag>;
using CharId = StrongId<CharIdTag>;
using TxnId = StrongId<TxnIdTag>;
using UserId = StrongId<UserIdTag>;
using RoleId = StrongId<RoleIdTag>;
using SessionId = StrongId<SessionIdTag>;
using ElementId = StrongId<ElementIdTag>;
using TaskId = StrongId<TaskIdTag>;
using ProcessId = StrongId<ProcessIdTag>;
using FolderId = StrongId<FolderIdTag>;
using NoteId = StrongId<NoteIdTag>;
using ObjectId = StrongId<ObjectIdTag>;
using TableId = StrongId<TableIdTag>;
using IndexId = StrongId<IndexIdTag>;

/// Monotonic version number of a document's edit history (one per committed
/// editing transaction).
using Version = uint64_t;
constexpr Version kVersionMax = UINT64_MAX;

/// Microseconds since the Unix epoch.
using Timestamp = uint64_t;

}  // namespace tendax

template <typename Tag>
struct std::hash<tendax::StrongId<Tag>> {
  size_t operator()(const tendax::StrongId<Tag>& id) const noexcept {
    return std::hash<uint64_t>()(id.value);
  }
};

#endif  // TENDAX_UTIL_IDS_H_

#ifndef TENDAX_UTIL_RANDOM_H_
#define TENDAX_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

namespace tendax {

/// Small, fast, seedable PRNG (xorshift64*). Used by workload generators and
/// property tests; deterministic for a given seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0x2545F4914F6CDD1DULL) : state_(seed ? seed : 1) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Picks a value skewed toward small numbers: uniform in
  /// [0, 2^Uniform(max_log+1)).
  uint64_t Skewed(int max_log) {
    return Uniform(uint64_t{1} << Uniform(static_cast<uint64_t>(max_log) + 1));
  }

  /// Random lowercase ASCII word of length in [min_len, max_len].
  std::string Word(int min_len, int max_len) {
    int len = min_len + static_cast<int>(Uniform(max_len - min_len + 1));
    std::string w(len, 'a');
    for (auto& c : w) c = static_cast<char>('a' + Uniform(26));
    return w;
  }

 private:
  uint64_t state_;
};

}  // namespace tendax

#endif  // TENDAX_UTIL_RANDOM_H_

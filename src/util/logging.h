#ifndef TENDAX_UTIL_LOGGING_H_
#define TENDAX_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tendax {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to kWarn so
/// tests and benches stay quiet.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

void Emit(LogLevel level, const char* file, int line, const std::string& msg);

/// Stream-style message collector used by the TENDAX_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define TENDAX_LOG(level)                                                  \
  if (::tendax::LogLevel::level < ::tendax::GetLogLevel()) {               \
  } else                                                                   \
    ::tendax::internal_logging::LogMessage(::tendax::LogLevel::level,      \
                                           __FILE__, __LINE__)             \
        .stream()

/// Fatal invariant check; aborts with a message when `cond` is false.
/// Used only for programming errors, never for data-dependent failures.
#define TENDAX_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "TENDAX_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

}  // namespace tendax

#endif  // TENDAX_UTIL_LOGGING_H_

#ifndef TENDAX_UTIL_CODING_H_
#define TENDAX_UTIL_CODING_H_

#include <cstdint>
#include <string>

#include "util/slice.h"

namespace tendax {

// Little-endian fixed-width and varint encoding primitives used by the
// storage engine, the WAL, and record serialization. Decode functions
// return false (or nullptr for the pointer-based forms) on truncated input.

void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
/// Appends varint32 length followed by the bytes of `value`.
void PutLengthPrefixed(std::string* dst, const Slice& value);

void EncodeFixed16(char* dst, uint16_t value);
void EncodeFixed32(char* dst, uint32_t value);
void EncodeFixed64(char* dst, uint64_t value);

uint16_t DecodeFixed16(const char* ptr);
uint32_t DecodeFixed32(const char* ptr);
uint64_t DecodeFixed64(const char* ptr);

bool GetFixed16(Slice* input, uint16_t* value);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
/// Parses a varint32 length prefix and the following bytes into `result`
/// (which aliases `input`'s storage).
bool GetLengthPrefixed(Slice* input, Slice* result);

/// Number of bytes PutVarint64 would emit for `value`.
int VarintLength(uint64_t value);

}  // namespace tendax

#endif  // TENDAX_UTIL_CODING_H_

#include "util/coding.h"

#include <cstring>

namespace tendax {

void EncodeFixed16(char* dst, uint16_t value) {
  memcpy(dst, &value, sizeof(value));  // little-endian hosts only
}

void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));
}

void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

uint16_t DecodeFixed16(const char* ptr) {
  uint16_t v;
  memcpy(&v, ptr, sizeof(v));
  return v;
}

uint32_t DecodeFixed32(const char* ptr) {
  uint32_t v;
  memcpy(&v, ptr, sizeof(v));
  return v;
}

uint64_t DecodeFixed64(const char* ptr) {
  uint64_t v;
  memcpy(&v, ptr, sizeof(v));
  return v;
}

void PutFixed16(std::string* dst, uint16_t value) {
  char buf[sizeof(value)];
  EncodeFixed16(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int i = 0;
  while (value >= 0x80) {
    buf[i++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), i);
}

void PutLengthPrefixed(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetFixed16(Slice* input, uint16_t* value) {
  if (input->size() < sizeof(*value)) return false;
  *value = DecodeFixed16(input->data());
  input->remove_prefix(sizeof(*value));
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < sizeof(*value)) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(sizeof(*value));
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < sizeof(*value)) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(sizeof(*value));
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint64_t byte = static_cast<unsigned char>((*input)[0]);
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v;
  if (!GetVarint64(input, &v) || v > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

bool GetLengthPrefixed(Slice* input, Slice* result) {
  uint32_t len;
  if (!GetVarint32(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace tendax

#ifndef TENDAX_UTIL_MUTEX_H_
#define TENDAX_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/lock_order.h"
#include "util/thread_annotations.h"

namespace tendax {

// Annotated synchronization wrappers. `tendax::Mutex` is a std::mutex that
//  (a) carries the clang `capability` attribute so -Wthread-safety can
//      prove every TENDAX_GUARDED_BY field is touched under it, and
//  (b) when constructed with a name (and optional lock-order rank), feeds
//      the runtime lock-order validator (util/lock_order.h) on every
//      acquisition while validation is enabled.
// Unnamed mutexes (fine-grained, per-object) skip the validator entirely;
// named ones pay one relaxed atomic load per lock/unlock while it is off.
//
// Use the RAII types below instead of std::lock_guard/std::unique_lock —
// the std templates carry no thread-safety attributes, so locks taken
// through them are invisible to the analysis.

class TENDAX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// A named mutex participates in runtime lock-order validation. `name`
  /// must have static storage duration (string literal); instances sharing
  /// a name share one lock-order graph node. See lockorder::kRank* for the
  /// repo rank map.
  explicit Mutex(const char* name, int rank = lockorder::kUnranked)
      : node_(lockorder::Register(name, rank)) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TENDAX_ACQUIRE() {
    const bool track = node_ != nullptr && lockorder::Enabled();
    if (track) lockorder::OnAcquiring(node_, this);
    mu_.lock();
    if (track) lockorder::OnAcquired(node_, this);
  }

  void unlock() TENDAX_RELEASE() {
    if (node_ != nullptr && lockorder::Enabled()) {
      lockorder::OnRelease(node_, this);
    }
    mu_.unlock();
  }

  /// Non-blocking, so it imposes no lock order: on success only the held
  /// stack is updated (later blocking acquisitions still see it held).
  bool try_lock() TENDAX_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    if (node_ != nullptr && lockorder::Enabled()) {
      lockorder::OnAcquired(node_, this);
    }
    return true;
  }

 private:
  std::mutex mu_;
  const lockorder::MutexNode* node_ = nullptr;
};

/// Reader/writer mutex with the same naming/ranking contract as Mutex.
/// Shared and exclusive acquisitions feed the same lock-order node: a
/// read-side inversion deadlocks against a writer just as surely.
class TENDAX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* name, int rank = lockorder::kUnranked)
      : node_(lockorder::Register(name, rank)) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() TENDAX_ACQUIRE() {
    const bool track = node_ != nullptr && lockorder::Enabled();
    if (track) lockorder::OnAcquiring(node_, this);
    mu_.lock();
    if (track) lockorder::OnAcquired(node_, this);
  }
  void unlock() TENDAX_RELEASE() {
    if (node_ != nullptr && lockorder::Enabled()) {
      lockorder::OnRelease(node_, this);
    }
    mu_.unlock();
  }
  void lock_shared() TENDAX_ACQUIRE_SHARED() {
    const bool track = node_ != nullptr && lockorder::Enabled();
    if (track) lockorder::OnAcquiring(node_, this);
    mu_.lock_shared();
    if (track) lockorder::OnAcquired(node_, this);
  }
  void unlock_shared() TENDAX_RELEASE_SHARED() {
    if (node_ != nullptr && lockorder::Enabled()) {
      lockorder::OnRelease(node_, this);
    }
    mu_.unlock_shared();
  }
  bool try_lock() TENDAX_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    if (node_ != nullptr && lockorder::Enabled()) {
      lockorder::OnAcquired(node_, this);
    }
    return true;
  }

 private:
  std::shared_mutex mu_;
  const lockorder::MutexNode* node_ = nullptr;
};

/// RAII exclusive lock over a Mutex. Supports the unique_lock-style
/// mid-scope Unlock/Lock dance and acts as a BasicLockable so CondVar can
/// wait on it (re-entering Mutex::lock keeps the validator's held stack
/// exact across waits).
class TENDAX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TENDAX_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
    held_ = true;
  }
  /// Binds without locking (std::defer_lock analogue).
  MutexLock(Mutex& mu, std::defer_lock_t) TENDAX_EXCLUDES(mu) : mu_(&mu) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() TENDAX_RELEASE() {
    if (held_) mu_->unlock();
  }

  void lock() TENDAX_ACQUIRE() {
    mu_->lock();
    held_ = true;
  }
  void unlock() TENDAX_RELEASE() {
    held_ = false;
    mu_->unlock();
  }
  // Repo-style aliases; the lowercase pair exists for BasicLockable.
  void Lock() TENDAX_ACQUIRE() { lock(); }
  void Unlock() TENDAX_RELEASE() { unlock(); }

  bool owns_lock() const { return held_; }

 private:
  Mutex* mu_;
  bool held_ = false;
};

/// RAII shared (reader) lock over a SharedMutex.
class TENDAX_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) TENDAX_ACQUIRE_SHARED(mu)
      : mu_(&mu) {
    mu_->lock_shared();
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;
  ~ReaderMutexLock() TENDAX_RELEASE_GENERIC() { mu_->unlock_shared(); }

 private:
  SharedMutex* mu_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class TENDAX_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) TENDAX_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
  }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;
  ~WriterMutexLock() TENDAX_RELEASE() { mu_->unlock(); }

 private:
  SharedMutex* mu_;
};

/// Condition variable bound to tendax::Mutex via MutexLock. Waits go
/// through MutexLock's lock/unlock, so the lock-order validator tracks the
/// implicit release/reacquire of every wait. No spurious-wakeup handling is
/// added: use the predicate overloads exactly as with std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  void Wait(MutexLock& lock) { cv_.wait(lock); }

  template <typename Predicate>
  void Wait(MutexLock& lock, Predicate pred) {
    cv_.wait(lock, std::move(pred));
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock, dur);
  }

  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(MutexLock& lock, const std::chrono::duration<Rep, Period>& dur,
               Predicate pred) {
    return cv_.wait_for(lock, dur, std::move(pred));
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock, deadline);
  }

  template <typename Clock, typename Duration, typename Predicate>
  bool WaitUntil(MutexLock& lock,
                 const std::chrono::time_point<Clock, Duration>& deadline,
                 Predicate pred) {
    return cv_.wait_until(lock, deadline, std::move(pred));
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace tendax

#endif  // TENDAX_UTIL_MUTEX_H_

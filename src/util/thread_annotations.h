#ifndef TENDAX_UTIL_THREAD_ANNOTATIONS_H_
#define TENDAX_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attributes (Abseil-style spelling). Under
// `clang -Wthread-safety` (enabled repo-wide by -DTENDAX_THREAD_SAFETY=ON)
// these turn the locking discipline into compile errors: a field marked
// TENDAX_GUARDED_BY(mu_) cannot be touched without holding mu_, a method
// marked TENDAX_REQUIRES(mu_) cannot be called without it, and a method
// marked TENDAX_EXCLUDES(mu_) cannot be called while holding it (the
// self-deadlock guard for public entry points). On every other compiler the
// macros expand to nothing, so annotated headers stay portable.
//
// Conventions used across the repo:
//  - every long-lived subsystem mutex is a `tendax::Mutex` (util/mutex.h),
//    constructed with a name and a lock-order rank (util/lock_order.h);
//  - every field it protects carries TENDAX_GUARDED_BY(mu_);
//  - private helpers that expect the lock held are named `...Locked()` and
//    carry TENDAX_REQUIRES(mu_);
//  - public entry points that take the lock carry TENDAX_EXCLUDES(mu_).

#if defined(__clang__) && !defined(SWIG)
#define TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op off clang
#endif

// Type attributes: a lockable type and an RAII lock-scope type.
#define TENDAX_CAPABILITY(x) TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))
#define TENDAX_SCOPED_CAPABILITY \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

// Data attributes: which lock protects a field (value / pointee).
#define TENDAX_GUARDED_BY(x) TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))
#define TENDAX_PT_GUARDED_BY(x) \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

// Static lock-order declarations (compile-time analogue of the runtime
// rank graph in util/lock_order.h).
#define TENDAX_ACQUIRED_BEFORE(...) \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define TENDAX_ACQUIRED_AFTER(...) \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

// Function attributes: lock state required on entry / changed on exit.
#define TENDAX_REQUIRES(...) \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define TENDAX_REQUIRES_SHARED(...) \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))
#define TENDAX_ACQUIRE(...) \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define TENDAX_ACQUIRE_SHARED(...) \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))
#define TENDAX_RELEASE(...) \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define TENDAX_RELEASE_SHARED(...) \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))
#define TENDAX_RELEASE_GENERIC(...) \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(release_generic_capability(__VA_ARGS__))
#define TENDAX_TRY_ACQUIRE(...) \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))
#define TENDAX_TRY_ACQUIRE_SHARED(...)  \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_( \
      try_acquire_shared_capability(__VA_ARGS__))
#define TENDAX_EXCLUDES(...) \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))
#define TENDAX_ASSERT_CAPABILITY(x) \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))
#define TENDAX_ASSERT_SHARED_CAPABILITY(x) \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(assert_shared_capability(x))
#define TENDAX_RETURN_CAPABILITY(x) \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

// Escape hatch for functions whose locking is deliberately too dynamic for
// the analysis (document why at each use).
#define TENDAX_NO_THREAD_SAFETY_ANALYSIS \
  TENDAX_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // TENDAX_UTIL_THREAD_ANNOTATIONS_H_

#include "util/deadline.h"

#include <algorithm>

namespace tendax {

thread_local RequestDeadline::TimePoint RequestDeadline::deadline_{};
thread_local bool RequestDeadline::armed_ = false;

bool RequestDeadline::Armed() { return armed_; }

RequestDeadline::TimePoint RequestDeadline::Deadline() { return deadline_; }

bool RequestDeadline::Expired() {
  return armed_ && std::chrono::steady_clock::now() >= deadline_;
}

uint64_t RequestDeadline::RemainingMicros() {
  if (!armed_) return 0;
  const auto now = std::chrono::steady_clock::now();
  if (now >= deadline_) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(deadline_ - now)
          .count());
}

ScopedRequestDeadline::ScopedRequestDeadline(uint64_t budget_micros)
    : saved_deadline_(RequestDeadline::deadline_),
      saved_armed_(RequestDeadline::armed_) {
  if (budget_micros == 0) return;
  auto candidate = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(budget_micros);
  if (saved_armed_) candidate = std::min(candidate, saved_deadline_);
  RequestDeadline::deadline_ = candidate;
  RequestDeadline::armed_ = true;
}

ScopedRequestDeadline::~ScopedRequestDeadline() {
  RequestDeadline::deadline_ = saved_deadline_;
  RequestDeadline::armed_ = saved_armed_;
}

}  // namespace tendax

#ifndef TENDAX_UTIL_STATUS_H_
#define TENDAX_UTIL_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace tendax {

/// Error category for a `Status`. Mirrors the taxonomy used by embedded
/// storage engines (RocksDB/Arrow style): library code never throws; every
/// fallible operation returns a `Status` or a `Result<T>`.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kPermissionDenied = 4,
  kConflict = 5,          // lock conflict; retryable
  kDeadlock = 6,          // transaction chosen as deadlock victim
  kAborted = 7,           // transaction aborted (explicitly or by the system)
  kCorruption = 8,        // on-disk or in-log data failed validation
  kIOError = 9,
  kOutOfRange = 10,
  kFailedPrecondition = 11,
  kUnimplemented = 12,
  kInternal = 13,
  kDeadlineExceeded = 14,  // request's deadline budget ran out; retryable
  kUnavailable = 15,       // server shed the request (overload); retry later
};

/// Highest valid StatusCode value. Wire decoders bound-check against this so
/// adding a code is a one-line change here plus a StatusCodeName entry (the
/// name-coverage test enforces the latter).
inline constexpr StatusCode kStatusCodeMax = StatusCode::kUnavailable;

/// Human-readable name of a status code, e.g. "Conflict".
const char* StatusCodeName(StatusCode code);

/// Value-semantic error carrier. An OK status is cheap (no allocation).
/// [[nodiscard]]: silently dropping a Status is how recovery bugs hide —
/// every discarded return must be an explicit, justified `(void)` cast.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Builds a status from a dynamic code (e.g. one read off the wire).
  /// `kOk` yields OK and drops the message.
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// True for failures a caller may resolve by retrying the transaction
  /// (lock conflicts and deadlock victims).
  bool IsRetryable() const { return IsConflict() || IsDeadlock(); }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code();
}

/// Propagates a non-OK status to the caller. Library-internal shorthand.
#define TENDAX_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::tendax::Status _st = (expr);               \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace tendax

#endif  // TENDAX_UTIL_STATUS_H_

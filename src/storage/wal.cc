#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/coding.h"

namespace tendax {

namespace {

uint32_t Fnv1a(const char* data, size_t n) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 16777619u;
  }
  return h;
}

}  // namespace

void LogRecord::EncodeTo(std::string* dst) const {
  PutVarint64(dst, lsn);
  PutVarint64(dst, prev_lsn);
  PutVarint64(dst, txn.value);
  dst->push_back(static_cast<char>(type));
  if (type == LogType::kUpdate || type == LogType::kCompensation) {
    dst->push_back(static_cast<char>(op));
    PutVarint64(dst, table_id);
    PutVarint64(dst, rid);
    PutLengthPrefixed(dst, before);
    PutLengthPrefixed(dst, after);
    PutVarint64(dst, undo_next_lsn);
  }
}

bool LogRecord::DecodeFrom(Slice input, LogRecord* out) {
  uint64_t lsn, prev, txn;
  if (!GetVarint64(&input, &lsn)) return false;
  if (!GetVarint64(&input, &prev)) return false;
  if (!GetVarint64(&input, &txn)) return false;
  if (input.empty()) return false;
  auto type = static_cast<LogType>(input[0]);
  input.remove_prefix(1);
  out->lsn = lsn;
  out->prev_lsn = prev;
  out->txn = TxnId(txn);
  out->type = type;
  if (type == LogType::kUpdate || type == LogType::kCompensation) {
    if (input.empty()) return false;
    out->op = static_cast<UpdateOp>(input[0]);
    input.remove_prefix(1);
    Slice before, after;
    if (!GetVarint64(&input, &out->table_id)) return false;
    if (!GetVarint64(&input, &out->rid)) return false;
    if (!GetLengthPrefixed(&input, &before)) return false;
    if (!GetLengthPrefixed(&input, &after)) return false;
    if (!GetVarint64(&input, &out->undo_next_lsn)) return false;
    out->before = before.ToString();
    out->after = after.ToString();
  }
  return true;
}

Status InMemoryLogStorage::Append(const Slice& data) {
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.append(data.data(), data.size());
  return Status::OK();
}

Status InMemoryLogStorage::ReadAll(std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  *out = buffer_;
  return Status::OK();
}

Status InMemoryLogStorage::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.clear();
  return Status::OK();
}

void InMemoryLogStorage::CorruptTail(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (n < buffer_.size()) buffer_.resize(n);
}

Result<std::unique_ptr<FileLogStorage>> FileLogStorage::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  return std::unique_ptr<FileLogStorage>(new FileLogStorage(fd, path));
}

FileLogStorage::~FileLogStorage() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileLogStorage::Append(const Slice& data) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write log: " + std::string(strerror(errno)));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileLogStorage::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync log: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Status FileLogStorage::ReadAll(std::string* out) {
  out->clear();
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) {
    return Status::IOError("lseek log: " + std::string(strerror(errno)));
  }
  out->resize(static_cast<size_t>(size));
  size_t got = 0;
  while (got < out->size()) {
    ssize_t n = ::pread(fd_, out->data() + got, out->size() - got,
                        static_cast<off_t>(got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread log: " + std::string(strerror(errno)));
    }
    if (n == 0) break;
    got += static_cast<size_t>(n);
  }
  out->resize(got);
  return Status::OK();
}

Status FileLogStorage::Truncate() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError("ftruncate log: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Wal::Wal(std::shared_ptr<LogStorage> storage) : storage_(std::move(storage)) {
  // Continue LSN numbering after any records already in the log.
  std::string buffer;
  if (storage_->ReadAll(&buffer).ok()) {
    std::vector<LogRecord> records;
    next_lsn_ = DecodeLogBuffer(buffer, &records);
    flushed_lsn_ = next_lsn_ - 1;
  }
}

Result<Lsn> Wal::Append(LogRecord* rec) {
  std::lock_guard<std::mutex> lock(mu_);
  rec->lsn = next_lsn_++;
  std::string payload;
  rec->EncodeTo(&payload);
  PutFixed32(&pending_, static_cast<uint32_t>(payload.size()));
  PutFixed32(&pending_, Fnv1a(payload.data(), payload.size()));
  pending_.append(payload);
  return rec->lsn;
}

Status Wal::Flush(Lsn up_to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (up_to <= flushed_lsn_) return Status::OK();
  // Group commit: flush everything buffered.
  if (!pending_.empty()) {
    TENDAX_RETURN_IF_ERROR(storage_->Append(pending_));
    pending_.clear();
  }
  TENDAX_RETURN_IF_ERROR(storage_->Sync());
  flushed_lsn_ = next_lsn_ - 1;
  return Status::OK();
}

Status Wal::FlushAll() {
  Lsn last;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last = next_lsn_ - 1;
  }
  return Flush(last);
}

Lsn Wal::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

Lsn Wal::flushed_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushed_lsn_;
}

Status Wal::ReadAll(std::vector<LogRecord>* out) {
  TENDAX_RETURN_IF_ERROR(FlushAll());
  std::string buffer;
  TENDAX_RETURN_IF_ERROR(storage_->ReadAll(&buffer));
  DecodeLogBuffer(buffer, out);
  return Status::OK();
}

Status Wal::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.clear();
  TENDAX_RETURN_IF_ERROR(storage_->Truncate());
  flushed_lsn_ = next_lsn_ - 1;
  return Status::OK();
}

Lsn Wal::DecodeLogBuffer(const std::string& buffer,
                         std::vector<LogRecord>* out) {
  Slice input(buffer);
  Lsn next = 1;
  bool first = true;
  while (input.size() >= 8) {
    uint32_t len = DecodeFixed32(input.data());
    uint32_t crc = DecodeFixed32(input.data() + 4);
    if (input.size() < 8 + static_cast<size_t>(len)) break;  // torn tail
    Slice payload(input.data() + 8, len);
    if (Fnv1a(payload.data(), payload.size()) != crc) break;  // corrupt tail
    LogRecord rec;
    if (!LogRecord::DecodeFrom(payload, &rec)) break;
    // LSNs are assigned contiguously (Reset() truncates bytes but keeps
    // numbering), so a record that passes framing yet breaks the sequence
    // is trash — stop rather than hand recovery an out-of-order history.
    if (rec.lsn == kInvalidLsn || (!first && rec.lsn != next)) break;
    first = false;
    next = rec.lsn + 1;
    out->push_back(std::move(rec));
    input.remove_prefix(8 + len);
  }
  return next;
}

}  // namespace tendax

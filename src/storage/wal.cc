#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/coding.h"

namespace tendax {

namespace {

uint32_t Fnv1a(const char* data, size_t n) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 16777619u;
  }
  return h;
}

}  // namespace

void LogRecord::EncodeTo(std::string* dst) const {
  PutVarint64(dst, lsn);
  PutVarint64(dst, prev_lsn);
  PutVarint64(dst, txn.value);
  dst->push_back(static_cast<char>(type));
  if (type == LogType::kUpdate || type == LogType::kCompensation) {
    dst->push_back(static_cast<char>(op));
    PutVarint64(dst, table_id);
    PutVarint64(dst, rid);
    PutLengthPrefixed(dst, before);
    PutLengthPrefixed(dst, after);
    PutVarint64(dst, undo_next_lsn);
  } else if (type == LogType::kCheckpointEnd) {
    PutVarint64(dst, checkpoint_begin_lsn);
    PutVarint64(dst, checkpoint_redo_lsn);
    PutVarint64(dst, att.size());
    for (const CheckpointTxnEntry& e : att) {
      PutVarint64(dst, e.txn);
      PutVarint64(dst, e.first_lsn);
      PutVarint64(dst, e.last_lsn);
    }
    PutVarint64(dst, dpt.size());
    for (const CheckpointPageEntry& e : dpt) {
      PutVarint64(dst, e.page);
      PutVarint64(dst, e.rec_lsn);
    }
  }
}

bool LogRecord::DecodeFrom(Slice input, LogRecord* out) {
  uint64_t lsn, prev, txn;
  if (!GetVarint64(&input, &lsn)) return false;
  if (!GetVarint64(&input, &prev)) return false;
  if (!GetVarint64(&input, &txn)) return false;
  if (input.empty()) return false;
  auto type = static_cast<LogType>(input[0]);
  input.remove_prefix(1);
  out->lsn = lsn;
  out->prev_lsn = prev;
  out->txn = TxnId(txn);
  out->type = type;
  if (type == LogType::kUpdate || type == LogType::kCompensation) {
    if (input.empty()) return false;
    out->op = static_cast<UpdateOp>(input[0]);
    input.remove_prefix(1);
    Slice before, after;
    if (!GetVarint64(&input, &out->table_id)) return false;
    if (!GetVarint64(&input, &out->rid)) return false;
    if (!GetLengthPrefixed(&input, &before)) return false;
    if (!GetLengthPrefixed(&input, &after)) return false;
    if (!GetVarint64(&input, &out->undo_next_lsn)) return false;
    out->before = before.ToString();
    out->after = after.ToString();
  } else if (type == LogType::kCheckpointEnd) {
    uint64_t n;
    if (!GetVarint64(&input, &out->checkpoint_begin_lsn)) return false;
    if (!GetVarint64(&input, &out->checkpoint_redo_lsn)) return false;
    if (!GetVarint64(&input, &n)) return false;
    // Each entry is at least one byte per field; a count past the remaining
    // input is malformed (and guards the reserve against fuzzed payloads).
    if (n > input.size()) return false;
    out->att.clear();
    out->att.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      CheckpointTxnEntry e;
      if (!GetVarint64(&input, &e.txn)) return false;
      if (!GetVarint64(&input, &e.first_lsn)) return false;
      if (!GetVarint64(&input, &e.last_lsn)) return false;
      out->att.push_back(e);
    }
    if (!GetVarint64(&input, &n)) return false;
    if (n > input.size()) return false;
    out->dpt.clear();
    out->dpt.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      CheckpointPageEntry e;
      if (!GetVarint64(&input, &e.page)) return false;
      if (!GetVarint64(&input, &e.rec_lsn)) return false;
      out->dpt.push_back(e);
    }
  }
  return true;
}

Status InMemoryLogStorage::Append(const Slice& data) {
  MutexLock lock(mu_);
  buffer_.append(data.data(), data.size());
  return Status::OK();
}

Status InMemoryLogStorage::ReadAll(std::string* out) {
  MutexLock lock(mu_);
  *out = buffer_;
  return Status::OK();
}

Status InMemoryLogStorage::Truncate() {
  MutexLock lock(mu_);
  buffer_.clear();
  return Status::OK();
}

void InMemoryLogStorage::CorruptTail(size_t n) {
  MutexLock lock(mu_);
  if (n < buffer_.size()) buffer_.resize(n);
}

Result<std::unique_ptr<FileLogStorage>> FileLogStorage::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  return std::unique_ptr<FileLogStorage>(new FileLogStorage(fd, path));
}

FileLogStorage::~FileLogStorage() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileLogStorage::Append(const Slice& data) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write log: " + std::string(strerror(errno)));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileLogStorage::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync log: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Status FileLogStorage::ReadAll(std::string* out) {
  out->clear();
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) {
    return Status::IOError("lseek log: " + std::string(strerror(errno)));
  }
  out->resize(static_cast<size_t>(size));
  size_t got = 0;
  while (got < out->size()) {
    ssize_t n = ::pread(fd_, out->data() + got, out->size() - got,
                        static_cast<off_t>(got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread log: " + std::string(strerror(errno)));
    }
    if (n == 0) break;
    got += static_cast<size_t>(n);
  }
  out->resize(got);
  return Status::OK();
}

Status FileLogStorage::Truncate() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError("ftruncate log: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Wal::Wal(std::shared_ptr<LogStorage> storage, GroupCommitOptions group_commit,
         MetricsRegistry* metrics, uint64_t segment_bytes)
    : storage_(std::move(storage)),
      segment_bytes_(segment_bytes),
      gc_options_(std::move(group_commit)),
      gc_mu_("wal.gc", lockorder::kRankWalGroup) {
  if (metrics != nullptr) {
    m_appends_ = metrics->counter("wal.appends");
    m_rotations_ = metrics->counter("wal.rotations");
    m_segments_ = metrics->gauge("wal.segments");
    m_truncated_bytes_ = metrics->gauge("wal.truncated_bytes");
    m_syncs_ = metrics->counter("wal.syncs");
    m_commits_ = metrics->counter("wal.commits");
    m_group_flushes_ = metrics->counter("wal.group_flushes");
    m_failed_flushes_ = metrics->counter("wal.failed_flushes");
    m_max_batch_ = metrics->gauge("wal.max_batch");
    m_flush_micros_ = metrics->histogram("wal.flush_micros");
    m_commit_flush_micros_ = metrics->histogram("wal.commit_flush_micros");
    m_batch_size_ = metrics->histogram("wal.batch_size");
  }
  // Continue LSN numbering after any records already in the log.
  Lsn durable = 0;
  if (storage_->segmented()) {
    // Per-segment read rebuilds both the LSN cursor and the segment spans
    // the truncation logic needs. Only the last segment may carry a torn
    // tail (appends never touch sealed segments), so a decode that stops
    // early in an earlier segment marks everything after it untrustworthy.
    MutexLock lock(mu_);
    Lsn next = 1;
    bool trusted = true;
    for (uint64_t id : storage_->SegmentIds()) {
      SegmentSpan span;
      std::string part;
      std::vector<LogRecord> records;
      if (trusted && storage_->ReadSegment(id, &part).ok()) {
        DecodeLogBuffer(part, &records);
      } else {
        trusted = false;
      }
      if (!records.empty()) {
        if (next != 1 && records.front().lsn != next) {
          // Discontiguous across the segment boundary: treat this segment
          // and everything after it as trash (span unknown => retained).
          trusted = false;
          segment_spans_[id] = SegmentSpan{};
          continue;
        }
        span.first = records.front().lsn;
        span.last = records.back().lsn;
        next = records.back().lsn + 1;
      } else if (trusted) {
        // A sealed-empty segment: holds no records, safe to truncate once
        // anything newer is truncatable.
        span.first = next;
        span.last = next - 1;
      }
      segment_spans_[id] = span;
    }
    // The current segment is open-ended regardless of what the scan saw.
    SegmentSpan& current = segment_spans_[storage_->current_segment()];
    if (current.first == kInvalidLsn) current.first = next;
    current.last = kInvalidLsn;
    next_lsn_ = next;
    flushed_lsn_ = next - 1;
    durable = flushed_lsn_;
    MetricSet(m_segments_, static_cast<int64_t>(segment_spans_.size()));
  } else {
    std::string buffer;
    if (storage_->ReadAll(&buffer).ok()) {
      std::vector<LogRecord> records;
      MutexLock lock(mu_);
      next_lsn_ = DecodeLogBuffer(buffer, &records);
      flushed_lsn_ = next_lsn_ - 1;
      durable = flushed_lsn_;
    }
  }
  {
    MutexLock lock(gc_mu_);
    gc_durable_ = durable;
  }
  if (gc_options_.mode == CommitFlushMode::kFlusherThread) {
    flusher_ = std::thread(&Wal::FlusherLoop, this);
  }
}

Wal::~Wal() {
  // Note: deliberately no flush here — dropping a Wal with buffered records
  // models a crash that loses them (see the constructor comment). Shutdown
  // only resolves committers still blocked on the flusher.
  Shutdown();
}

Result<Lsn> Wal::Append(LogRecord* rec) {
  if (gc_poisoned_.load(std::memory_order_acquire)) {
    return gc_poison_status_;
  }
  MutexLock lock(mu_);
  rec->lsn = next_lsn_++;
  std::string payload;
  rec->EncodeTo(&payload);
  PutFixed32(&pending_, static_cast<uint32_t>(payload.size()));
  PutFixed32(&pending_, Fnv1a(payload.data(), payload.size()));
  pending_.append(payload);
  MetricAdd(m_appends_);
  return rec->lsn;
}

Status Wal::Flush(Lsn up_to) { return FlushInternal(up_to, false); }

Status Wal::FlushInternal(Lsn up_to, bool force_sync) {
  MutexLock l(mu_);
  for (;;) {
    if (!force_sync && up_to <= flushed_lsn_) return Status::OK();
    if (!flush_in_flight_) break;
    flush_cv_.Wait(l);
  }
  flush_in_flight_ = true;
  // Armed only after the already-durable early return above, so the
  // histogram measures physical flushes; RAII covers both the append-failed
  // and sync-failed exits below.
  ScopedTimer flush_timer(m_flush_micros_);
  std::string batch;
  batch.swap(pending_);
  const Lsn target = next_lsn_ - 1;
  l.Unlock();

  // Storage I/O runs without mu_ so appenders keep flowing during a slow
  // fsync; flush_in_flight_ keeps the batches themselves serialized.
  Status st = Status::OK();
  if (!batch.empty()) st = storage_->Append(batch);
  const bool appended = st.ok();
  if (appended) st = storage_->Sync();

  l.Lock();
  if (appended) {
    // The bytes reached storage even if the Sync failed; a retry only needs
    // to Sync again, so the batch stays out of pending_.
    ++syncs_issued_;
    MetricAdd(m_syncs_);
    if (st.ok() && target > flushed_lsn_) flushed_lsn_ = target;
    if (st.ok() && segment_bytes_ > 0 && storage_->segmented() &&
        storage_->SegmentBytes(storage_->current_segment()) >=
            segment_bytes_) {
      // Size-based rotation. Safe here: we still own the flight, so no
      // other flush can be mid-I/O against the old segment. Failure is
      // benign — appends simply keep landing in the oversized segment.
      (void)RotateLocked(flushed_lsn_);
    }
  } else {
    // Nothing new became durable; put the batch back ahead of any records
    // appended meanwhile so log order is preserved for the retry.
    pending_.insert(0, batch);
  }
  flush_in_flight_ = false;
  flush_cv_.NotifyAll();
  return st;
}

Status Wal::FlushAll() {
  Lsn last;
  {
    MutexLock lock(mu_);
    last = next_lsn_ - 1;
  }
  return Flush(last);
}

Status Wal::CommitFlush(Lsn lsn) {
  // First statement so every exit — poisoned, inline, per-commit, shutdown
  // degrade, and both group modes — records into the histogram via RAII.
  ScopedTimer commit_timer(m_commit_flush_micros_);
  MutexLock l(gc_mu_);
  ++gc_stats_.commits;
  MetricAdd(m_commits_);
  if (gc_poisoned_.load(std::memory_order_relaxed)) {
    return gc_poison_status_;
  }
  switch (gc_options_.mode) {
    case CommitFlushMode::kInline:
      l.Unlock();
      return FlushInternal(lsn, /*force_sync=*/false);
    case CommitFlushMode::kPerCommit:
      l.Unlock();
      return FlushInternal(lsn, /*force_sync=*/true);
    case CommitFlushMode::kLeader:
    case CommitFlushMode::kFlusherThread:
      break;
  }
  if (gc_shutdown_) {
    // Engine is closing; degrade to an inline flush rather than block on a
    // flusher that is gone.
    l.Unlock();
    return FlushInternal(lsn, /*force_sync=*/false);
  }

  ++gc_waiters_;
  if (lsn > gc_max_requested_) gc_max_requested_ = lsn;
  const uint64_t start_gen = gc_gen_;
  if (gc_options_.hooks) gc_options_.hooks->OnCommitEnqueued(gc_waiters_, lsn);

  Status result = Status::OK();
  if (gc_options_.mode == CommitFlushMode::kFlusherThread) {
    gc_work_ = true;
    gc_flusher_cv_.NotifyOne();
    // Wake when a flush covers us — or when a flush attempt that covered us
    // fails, in which case its error fans out to the whole batch.
    while (!(gc_durable_ >= lsn ||
             (gc_fail_gen_ > start_gen && gc_fail_target_ >= lsn))) {
      gc_waiter_cv_.Wait(l);
    }
    if (gc_fail_gen_ > start_gen && gc_fail_target_ >= lsn) {
      // A shared flush attempt that covered this commit failed. Take the
      // error even if a later attempt made the bytes durable (the flusher
      // may re-sync an already-appended batch): every waiter of a failed
      // batch reports failure and rolls back, and recovery resolves the
      // durability ambiguity from the surviving log — the rollback's CLRs
      // net out a commit record that did reach storage.
      result = gc_fail_status_;
    }
  } else {
    // kLeader: the first waiter to find no flush in progress flushes for
    // the whole group; everyone else blocks until an outcome covers them.
    // Failure coverage is checked first for the same reason as above: a
    // failed attempt fans out to its whole batch even if a later attempt
    // succeeded.
    for (;;) {
      if (gc_fail_gen_ > start_gen && gc_fail_target_ >= lsn) {
        result = gc_fail_status_;
        break;
      }
      if (gc_durable_ >= lsn) break;
      if (!gc_flush_active_) {
        gc_flush_active_ = true;
        GroupFlushLocked(l);
        gc_flush_active_ = false;
        // Loop to evaluate our own fate against the published outcome.
      } else {
        gc_waiter_cv_.Wait(l);
      }
    }
  }
  --gc_waiters_;
  if (gc_waiters_ == 0) gc_flusher_cv_.NotifyAll();
  return result;
}

// REQUIRES(gc_mu_) is enforced at call sites; the body's unlock/relock of
// the caller-held lock is opted out of the static analysis (see wal.h).
void Wal::GroupFlushLocked(MutexLock& l) TENDAX_NO_THREAD_SAFETY_ANALYSIS {
  const uint64_t index = ++gc_flush_seq_;
  GroupCommitHooks* hooks = gc_options_.hooks.get();
  if (hooks != nullptr) {
    const size_t announced_waiters = gc_waiters_;
    const Lsn announced_target = gc_max_requested_;
    l.Unlock();  // the hook may block (it is the test pause gate)
    hooks->OnGroupFlushStart(index, announced_waiters, announced_target);
    l.Lock();
  }
  // Snapshot after the hook gate so commits that piled up while a test held
  // the flusher paused belong to this attempt's outcome (success or error).
  const Lsn target = gc_max_requested_;
  const size_t batch = gc_waiters_;
  l.Unlock();
  Status st = FlushInternal(target, /*force_sync=*/false);
  if (hooks != nullptr) hooks->OnGroupFlushEnd(index, st);
  const Lsn durable = flushed_lsn();
  l.Lock();
  ++gc_gen_;
  ++gc_stats_.group_flushes;
  if (batch > gc_stats_.max_batch) gc_stats_.max_batch = batch;
  MetricAdd(m_group_flushes_);
  MetricMax(m_max_batch_, static_cast<int64_t>(batch));
  MetricRecord(m_batch_size_, batch);
  if (st.ok()) {
    if (durable > gc_durable_) gc_durable_ = durable;
  } else {
    ++gc_stats_.failed_flushes;
    MetricAdd(m_failed_flushes_);
    gc_fail_gen_ = gc_gen_;
    gc_fail_target_ = target;
    gc_fail_status_ = st;
    if (gc_options_.early_lock_release &&
        !gc_poisoned_.load(std::memory_order_relaxed)) {
      // The waiters of this batch released their locks when they appended
      // their commit records, so other transactions may already have built
      // on writes we now cannot make durable — rolling the batch back
      // in place would be unsound. Fail-stop instead: every further
      // Append/CommitFlush returns this error, and reopen + recovery
      // re-establishes a consistent state from whatever the log retained.
      gc_poison_status_ = st;
      gc_poisoned_.store(true, std::memory_order_release);
      // Fail-stop covers every waiter currently parked, not just the ones
      // the failed attempt targeted — no later attempt may hand any of
      // them a success once the pipeline is poisoned.
      if (gc_max_requested_ > gc_fail_target_) {
        gc_fail_target_ = gc_max_requested_;
      }
    }
  }
  gc_waiter_cv_.NotifyAll();
}

void Wal::FlusherLoop() {
  MutexLock l(gc_mu_);
  for (;;) {
    while (!(gc_shutdown_ || gc_work_)) gc_flusher_cv_.Wait(l);
    if (gc_shutdown_) {
      // Drain: every remaining waiter gets an outcome (durable or the
      // fanned-out flush error) before the thread exits.
      while (gc_waiters_ > 0) {
        gc_work_ = false;
        GroupFlushLocked(l);
        while (!(gc_waiters_ == 0 || gc_work_)) gc_flusher_cv_.Wait(l);
      }
      return;
    }
    // Batching window: give concurrent committers a beat to pile on before
    // paying the fsync, unless the batch is already full.
    if (gc_options_.flush_interval.count() > 0 &&
        gc_waiters_ < gc_options_.max_batch_waiters) {
      const auto deadline =
          std::chrono::steady_clock::now() + gc_options_.flush_interval;
      while (!(gc_shutdown_ ||
               gc_waiters_ >= gc_options_.max_batch_waiters)) {
        if (gc_flusher_cv_.WaitUntil(l, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
    }
    gc_work_ = false;
    if (gc_waiters_ > 0) GroupFlushLocked(l);
  }
}

void Wal::Shutdown() {
  {
    MutexLock l(gc_mu_);
    gc_shutdown_ = true;
  }
  gc_flusher_cv_.NotifyAll();
  if (flusher_.joinable()) flusher_.join();
}

Status Wal::poison_status() const {
  MutexLock l(gc_mu_);
  return gc_poisoned_.load(std::memory_order_relaxed) ? gc_poison_status_
                                                      : Status::OK();
}

WalGroupCommitStats Wal::group_commit_stats() const {
  WalGroupCommitStats out;
  {
    MutexLock l(gc_mu_);
    out = gc_stats_;
  }
  MutexLock l(mu_);
  out.syncs = syncs_issued_;
  return out;
}

Lsn Wal::next_lsn() const {
  MutexLock lock(mu_);
  return next_lsn_;
}

Lsn Wal::flushed_lsn() const {
  MutexLock lock(mu_);
  return flushed_lsn_;
}

Status Wal::ReadAll(std::vector<LogRecord>* out) {
  TENDAX_RETURN_IF_ERROR(FlushAll());
  std::string buffer;
  TENDAX_RETURN_IF_ERROR(storage_->ReadAll(&buffer));
  out->clear();
  DecodeLogBuffer(buffer, out);
  return Status::OK();
}

Status Wal::Reset() {
  MutexLock lock(mu_);
  // An in-flight flush would append its batch after the truncate; wait it
  // out so the log restarts empty.
  while (flush_in_flight_) flush_cv_.Wait(lock);
  pending_.clear();
  TENDAX_RETURN_IF_ERROR(storage_->Truncate());
  flushed_lsn_ = next_lsn_ - 1;
  if (storage_->segmented()) {
    segment_spans_.clear();
    segment_spans_[storage_->current_segment()] =
        SegmentSpan{next_lsn_, kInvalidLsn};
    MetricSet(m_segments_, static_cast<int64_t>(segment_spans_.size()));
  }
  return Status::OK();
}

size_t Wal::SegmentCount() const {
  if (!storage_->segmented()) return 1;
  MutexLock lock(mu_);
  return segment_spans_.size();
}

Status Wal::RotateLocked(Lsn last_lsn) {
  const uint64_t old_id = storage_->current_segment();
  uint64_t new_id = 0;
  TENDAX_RETURN_IF_ERROR(storage_->RotateSegment(&new_id));
  SegmentSpan& old_span = segment_spans_[old_id];
  old_span.last = last_lsn;
  if (old_span.first == kInvalidLsn) old_span.first = last_lsn + 1;
  // Records buffered but not yet flushed (lsn > last_lsn) land in the new
  // segment, so its span opens right after the sealed one.
  segment_spans_[new_id] = SegmentSpan{last_lsn + 1, kInvalidLsn};
  MetricAdd(m_rotations_);
  MetricSet(m_segments_, static_cast<int64_t>(segment_spans_.size()));
  return Status::OK();
}

Status Wal::RotateSegmentNow() {
  if (!storage_->segmented()) return Status::OK();
  TENDAX_RETURN_IF_ERROR(FlushAll());
  MutexLock lock(mu_);
  // Rotation must not interleave with a flush's storage I/O: the flush's
  // Sync would hit the new, empty segment while its batch sits unsynced in
  // the sealed one.
  while (flush_in_flight_) flush_cv_.Wait(lock);
  return RotateLocked(flushed_lsn_);
}

Result<uint64_t> Wal::TruncateSegmentsBelow(Lsn bound) {
  if (!storage_->segmented() || bound <= 1) return uint64_t{0};
  MutexLock lock(mu_);
  uint64_t freed = 0;
  // Oldest-first: a crash mid-sweep then leaves a contiguous suffix of the
  // log, which is the shape every reader (recovery, the span rebuild in
  // the constructor) is built to trust.
  while (segment_spans_.size() > 1) {
    auto it = segment_spans_.begin();
    if (it->first == storage_->current_segment()) break;
    const SegmentSpan& span = it->second;
    // An open/unknown span, or one reaching into [bound, ...), must stay.
    if (span.last == kInvalidLsn || span.last >= bound) break;
    uint64_t bytes = 0;
    Status st = storage_->DropSegment(it->first, &bytes);
    if (!st.ok()) {
      MetricSet(m_segments_, static_cast<int64_t>(segment_spans_.size()));
      return st;
    }
    freed += bytes;
    segment_spans_.erase(it);
  }
  MetricSet(m_segments_, static_cast<int64_t>(segment_spans_.size()));
  if (m_truncated_bytes_ != nullptr) {
    m_truncated_bytes_->Add(static_cast<int64_t>(freed));
  }
  return freed;
}

Lsn Wal::DecodeLogBuffer(const std::string& buffer,
                         std::vector<LogRecord>* out) {
  Slice input(buffer);
  Lsn next = 1;
  bool first = true;
  while (input.size() >= 8) {
    uint32_t len = DecodeFixed32(input.data());
    uint32_t crc = DecodeFixed32(input.data() + 4);
    if (input.size() < 8 + static_cast<size_t>(len)) break;  // torn tail
    Slice payload(input.data() + 8, len);
    if (Fnv1a(payload.data(), payload.size()) != crc) break;  // corrupt tail
    LogRecord rec;
    if (!LogRecord::DecodeFrom(payload, &rec)) break;
    // LSNs are assigned contiguously (Reset() truncates bytes but keeps
    // numbering), so a record that passes framing yet breaks the sequence
    // is trash — stop rather than hand recovery an out-of-order history.
    if (rec.lsn == kInvalidLsn || (!first && rec.lsn != next)) break;
    first = false;
    next = rec.lsn + 1;
    out->push_back(std::move(rec));
    input.remove_prefix(8 + len);
  }
  return next;
}

}  // namespace tendax

#include "storage/segmented_log.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tendax {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + strerror(errno));
}

// Splits `prefix` into (directory, basename) for directory scans/fsyncs.
void SplitPath(const std::string& prefix, std::string* dir,
               std::string* base) {
  size_t slash = prefix.find_last_of('/');
  if (slash == std::string::npos) {
    *dir = ".";
    *base = prefix;
  } else {
    *dir = prefix.substr(0, slash == 0 ? 1 : slash);
    *base = prefix.substr(slash + 1);
  }
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open " + path);
  out->clear();
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Errno("read " + path);
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace

SegmentedLogStorage::SegmentedLogStorage(bool file_backed, std::string prefix)
    : file_backed_(file_backed), prefix_(std::move(prefix)) {}

SegmentedLogStorage::~SegmentedLogStorage() {
  MutexLock lock(mu_);
  if (fd_ >= 0) ::close(fd_);
}

std::shared_ptr<SegmentedLogStorage> SegmentedLogStorage::InMemory() {
  auto log = std::shared_ptr<SegmentedLogStorage>(
      new SegmentedLogStorage(/*file_backed=*/false, ""));
  MutexLock lock(log->mu_);
  log->sizes_[1] = 0;
  log->mem_[1] = "";
  return log;
}

Result<std::shared_ptr<SegmentedLogStorage>> SegmentedLogStorage::OpenFiles(
    const std::string& prefix) {
  auto log = std::shared_ptr<SegmentedLogStorage>(
      new SegmentedLogStorage(/*file_backed=*/true, prefix));

  std::string dir, base;
  SplitPath(prefix, &dir, &base);
  std::vector<uint64_t> ids;
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    const std::string stem = base + ".";
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name.size() <= stem.size() || name.compare(0, stem.size(), stem)) {
        continue;
      }
      std::string tail = name.substr(stem.size());
      if (tail.empty() ||
          tail.find_first_not_of("0123456789") != std::string::npos) {
        continue;
      }
      ids.push_back(strtoull(tail.c_str(), nullptr, 10));
    }
    ::closedir(d);
  }
  std::sort(ids.begin(), ids.end());
  // Only the contiguous suffix of the id sequence is trustworthy history:
  // the checkpointer deletes oldest-first, so a crash can only remove a
  // prefix. Anything before a gap is an orphan and is ignored.
  size_t start = 0;
  for (size_t i = ids.size(); i-- > 1;) {
    if (ids[i - 1] + 1 != ids[i]) {
      start = i;
      break;
    }
  }

  MutexLock lock(log->mu_);
  for (size_t i = start; i < ids.size(); ++i) {
    struct stat st;
    std::string path = log->SegmentPath(ids[i]);
    if (::stat(path.c_str(), &st) != 0) return Errno("stat " + path);
    log->sizes_[ids[i]] = static_cast<uint64_t>(st.st_size);
  }
  log->current_ = log->sizes_.empty() ? 1 : log->sizes_.rbegin()->first;
  log->sizes_.try_emplace(log->current_, 0);
  TENDAX_RETURN_IF_ERROR(log->OpenCurrentFileLocked());
  return log;
}

std::string SegmentedLogStorage::SegmentPath(uint64_t id) const {
  char buf[32];
  snprintf(buf, sizeof(buf), ".%06" PRIu64, id);
  return prefix_ + buf;
}

Status SegmentedLogStorage::OpenCurrentFileLocked() {
  std::string path = SegmentPath(current_);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return Errno("open " + path);
  return Status::OK();
}

Status SegmentedLogStorage::CloseCurrentFileLocked(bool sync) {
  if (fd_ < 0) return Status::OK();
  Status st = Status::OK();
  if (sync && ::fsync(fd_) != 0) st = Errno("fsync segment");
  if (::close(fd_) != 0 && st.ok()) st = Errno("close segment");
  fd_ = -1;
  return st;
}

Status SegmentedLogStorage::SyncDirLocked() {
  std::string dir, base;
  SplitPath(prefix_, &dir, &base);
  int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd < 0) return Errno("open dir " + dir);
  Status st = Status::OK();
  if (::fsync(dfd) != 0) st = Errno("fsync dir " + dir);
  ::close(dfd);
  return st;
}

Status SegmentedLogStorage::Append(const Slice& data) {
  MutexLock lock(mu_);
  if (!file_backed_) {
    mem_[current_].append(data.data(), data.size());
    sizes_[current_] += data.size();
    return Status::OK();
  }
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write segment");
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  sizes_[current_] += data.size();
  return Status::OK();
}

Status SegmentedLogStorage::Sync() {
  MutexLock lock(mu_);
  if (!file_backed_) return Status::OK();
  if (::fsync(fd_) != 0) return Errno("fsync segment");
  return Status::OK();
}

Status SegmentedLogStorage::ReadAll(std::string* out) {
  out->clear();
  for (uint64_t id : SegmentIds()) {
    std::string part;
    TENDAX_RETURN_IF_ERROR(ReadSegment(id, &part));
    out->append(part);
  }
  return Status::OK();
}

Status SegmentedLogStorage::Truncate() {
  MutexLock lock(mu_);
  if (file_backed_) {
    TENDAX_RETURN_IF_ERROR(CloseCurrentFileLocked(/*sync=*/false));
    for (const auto& [id, size] : sizes_) {
      (void)size;
      std::string path = SegmentPath(id);
      if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
        return Errno("unlink " + path);
      }
    }
  }
  uint64_t next = current_ + 1;  // ids stay monotonic across Truncate
  sizes_.clear();
  mem_.clear();
  current_ = next;
  sizes_[current_] = 0;
  if (!file_backed_) {
    mem_[current_] = "";
    return Status::OK();
  }
  TENDAX_RETURN_IF_ERROR(OpenCurrentFileLocked());
  return SyncDirLocked();
}

uint64_t SegmentedLogStorage::current_segment() const {
  MutexLock lock(mu_);
  return current_;
}

std::vector<uint64_t> SegmentedLogStorage::SegmentIds() const {
  MutexLock lock(mu_);
  std::vector<uint64_t> ids;
  ids.reserve(sizes_.size());
  for (const auto& [id, size] : sizes_) {
    (void)size;
    ids.push_back(id);
  }
  return ids;
}

uint64_t SegmentedLogStorage::SegmentBytes(uint64_t id) const {
  MutexLock lock(mu_);
  auto it = sizes_.find(id);
  return it == sizes_.end() ? 0 : it->second;
}

uint64_t SegmentedLogStorage::TotalBytes() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [id, size] : sizes_) {
    (void)id;
    total += size;
  }
  return total;
}

Status SegmentedLogStorage::ReadSegment(uint64_t id, std::string* out) {
  {
    MutexLock lock(mu_);
    if (!sizes_.count(id)) {
      return Status::NotFound("no log segment " + std::to_string(id));
    }
    if (!file_backed_) {
      *out = mem_[id];
      return Status::OK();
    }
  }
  return ReadWholeFile(SegmentPath(id), out);
}

Status SegmentedLogStorage::RotateSegment(uint64_t* new_id) {
  MutexLock lock(mu_);
  if (file_backed_) {
    // Seal durably before switching so the old segment's tail can never be
    // lost once records land in the new one.
    TENDAX_RETURN_IF_ERROR(CloseCurrentFileLocked(/*sync=*/true));
  }
  ++current_;
  sizes_[current_] = 0;
  if (!file_backed_) {
    mem_[current_] = "";
  } else {
    TENDAX_RETURN_IF_ERROR(OpenCurrentFileLocked());
    TENDAX_RETURN_IF_ERROR(SyncDirLocked());
  }
  if (new_id != nullptr) *new_id = current_;
  return Status::OK();
}

Status SegmentedLogStorage::DropSegment(uint64_t id, uint64_t* bytes_freed) {
  MutexLock lock(mu_);
  if (id == current_) {
    return Status::InvalidArgument("cannot drop the current log segment");
  }
  auto it = sizes_.find(id);
  if (it == sizes_.end()) {
    return Status::NotFound("no log segment " + std::to_string(id));
  }
  if (file_backed_) {
    std::string path = SegmentPath(id);
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Errno("unlink " + path);
    }
    TENDAX_RETURN_IF_ERROR(SyncDirLocked());
  }
  if (bytes_freed != nullptr) *bytes_freed = it->second;
  sizes_.erase(it);
  mem_.erase(id);
  return Status::OK();
}

void SegmentedLogStorage::CorruptTail(size_t n) {
  MutexLock lock(mu_);
  if (file_backed_) return;
  std::string& cur = mem_[current_];
  if (n < cur.size()) {
    cur.resize(n);
    sizes_[current_] = n;
  }
}

}  // namespace tendax

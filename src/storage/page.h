#ifndef TENDAX_STORAGE_PAGE_H_
#define TENDAX_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

#include "util/coding.h"
#include "util/mutex.h"

namespace tendax {

/// Physical page number within a database file.
using PageId = uint32_t;
constexpr PageId kInvalidPageId = UINT32_MAX;

/// Size of every database page in bytes.
constexpr size_t kPageSize = 4096;

/// Byte offset where page-owner data begins. The header holds the page LSN
/// (8 bytes, recovery) and a payload checksum (4 bytes, written at flush
/// time and verified when the page is read back — integrity enforcement);
/// 4 bytes are reserved.
constexpr size_t kPageHeaderSize = 16;
constexpr size_t kPageChecksumOffset = 8;

/// FNV-1a over a byte range (page checksums, WAL framing).
uint32_t PageChecksum(const char* data, size_t n);

/// A buffer-pool frame: one page worth of bytes plus bookkeeping. Pages are
/// pinned while in use; the buffer pool may evict only unpinned frames.
///
/// The first 8 bytes of the payload hold the page LSN — the LSN of the last
/// log record applied to this page — which makes redo idempotent.
class Page {
 public:
  Page() { Reset(); }

  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;

  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Owner-usable region (after the LSN header).
  char* payload() { return data_ + kPageHeaderSize; }
  const char* payload() const { return data_ + kPageHeaderSize; }
  static constexpr size_t payload_size() {
    return kPageSize - kPageHeaderSize;
  }

  PageId id() const { return id_; }
  void set_id(PageId id) { id_ = id; }

  uint64_t lsn() const { return DecodeFixed64(data_); }
  void set_lsn(uint64_t lsn) { EncodeFixed64(data_, lsn); }

  /// On-disk payload checksum; 0 means "not yet checksummed" (fresh page).
  uint32_t stored_checksum() const {
    return DecodeFixed32(data_ + kPageChecksumOffset);
  }
  void StampChecksum() {
    EncodeFixed32(data_ + kPageChecksumOffset,
                  PageChecksum(payload(), payload_size()));
  }
  /// True if the payload matches the stored checksum (or none is stored).
  bool ChecksumValid() const {
    uint32_t stored = stored_checksum();
    return stored == 0 || stored == PageChecksum(payload(), payload_size());
  }

  int pin_count() const { return pin_count_; }
  bool is_dirty() const { return dirty_; }

  /// Recovery LSN: the page LSN recorded when this frame last went from
  /// clean to dirty — the earliest log record whose effect might not be on
  /// disk. 0 while the page is clean. Maintained by the buffer pool (under
  /// its mutex, like pin_count_/dirty_) for the fuzzy checkpointer's
  /// dirty-page table.
  uint64_t rec_lsn() const { return rec_lsn_; }

  /// Content latch: holders may read/modify the payload. Callers must hold
  /// a pin while latched (a pinned page is never evicted or recycled).
  Mutex& latch() TENDAX_RETURN_CAPABILITY(latch_) { return latch_; }

  void Reset() {
    memset(data_, 0, kPageSize);
    id_ = kInvalidPageId;
    pin_count_ = 0;
    dirty_ = false;
    rec_lsn_ = 0;
  }

 private:
  friend class BufferPool;

  char data_[kPageSize];
  PageId id_ = kInvalidPageId;
  int pin_count_ = 0;
  bool dirty_ = false;
  uint64_t rec_lsn_ = 0;
  // Taken after the owning table's mutex (FindPageWithSpace) and held
  // across WAL logging of the change (heap_table), so it ranks between
  // kRankTable and kRankTxn. Never taken by the buffer pool itself.
  Mutex latch_{"page.latch", lockorder::kRankPageLatch};
};

}  // namespace tendax

#endif  // TENDAX_STORAGE_PAGE_H_

#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tendax {

Result<PageId> InMemoryDiskManager::AllocatePage() {
  MutexLock lock(mu_);
  auto page = std::make_unique<char[]>(kPageSize);
  memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Status InMemoryDiskManager::ReadPage(PageId id, char* out) {
  MutexLock lock(mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " beyond allocated pages");
  }
  memcpy(out, pages_[id].get(), kPageSize);
  return Status::OK();
}

Status InMemoryDiskManager::WritePage(PageId id, const char* data) {
  MutexLock lock(mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " beyond allocated pages");
  }
  memcpy(pages_[id].get(), data, kPageSize);
  return Status::OK();
}

uint32_t InMemoryDiskManager::NumPages() const {
  MutexLock lock(mu_);
  return static_cast<uint32_t>(pages_.size());
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + strerror(errno));
  }
  if (st.st_size % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption("database file size not page-aligned: " + path);
  }
  auto num_pages = static_cast<uint32_t>(st.st_size / kPageSize);
  return std::unique_ptr<FileDiskManager>(
      new FileDiskManager(fd, num_pages));
}

FileDiskManager::~FileDiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<PageId> FileDiskManager::AllocatePage() {
  MutexLock lock(mu_);
  PageId id = num_pages_;
  char zeros[kPageSize] = {0};
  ssize_t n = ::pwrite(fd_, zeros, kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite (allocate): " +
                           std::string(strerror(errno)));
  }
  ++num_pages_;
  return id;
}

Status FileDiskManager::ReadPage(PageId id, char* out) {
  MutexLock lock(mu_);
  if (id >= num_pages_) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " beyond allocated pages");
  }
  ssize_t n = ::pread(fd_, out, kPageSize, static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pread: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId id, const char* data) {
  MutexLock lock(mu_);
  if (id >= num_pages_) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " beyond allocated pages");
  }
  ssize_t n = ::pwrite(fd_, data, kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

uint32_t FileDiskManager::NumPages() const {
  MutexLock lock(mu_);
  return num_pages_;
}

Status FileDiskManager::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

}  // namespace tendax

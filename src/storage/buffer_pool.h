#ifndef TENDAX_STORAGE_BUFFER_POOL_H_
#define TENDAX_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"

namespace tendax {

/// Counters exposed for the substrate benchmarks (experiment E9).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
};

/// Fixed-capacity page cache with LRU replacement and WAL coupling: a dirty
/// page is written back only after the WAL is durable up to the page's LSN
/// (the write-ahead rule). All methods are thread-safe; returned Page
/// pointers stay valid while the page is pinned.
class BufferPool {
 public:
  /// `wal` may be null for WAL-less databases (volatile catalogs, tests),
  /// and `metrics` may be null for uninstrumented standalone pools.
  BufferPool(size_t capacity, DiskManager* disk, Wal* wal = nullptr,
             MetricsRegistry* metrics = nullptr);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the page pinned; call Unpin when done.
  Result<Page*> FetchPage(PageId id) TENDAX_EXCLUDES(mu_);

  /// Allocates a new page on disk and returns it pinned.
  Result<Page*> NewPage() TENDAX_EXCLUDES(mu_);

  /// Releases one pin; `dirty` marks the page as modified.
  void Unpin(Page* page, bool dirty) TENDAX_EXCLUDES(mu_);

  /// Writes the page back if dirty (page may stay cached).
  Status FlushPage(PageId id) TENDAX_EXCLUDES(mu_);

  /// Writes back every dirty page. Does not evict.
  Status FlushAll() TENDAX_EXCLUDES(mu_);

  /// Snapshot of the dirty-page table: every dirty page with the recovery
  /// LSN recorded when it last went from clean to dirty. The fuzzy
  /// checkpointer embeds this in its kCheckpointEnd record; min rec_lsn
  /// over the table bounds where redo must start.
  std::vector<CheckpointPageEntry> DirtyPageTable() const
      TENDAX_EXCLUDES(mu_);

  /// Number of dirty pages currently cached (checkpoint trigger input).
  size_t DirtyCount() const TENDAX_EXCLUDES(mu_);

  /// Writes back page `id` only if nobody holds a pin on it. Returns true
  /// when the page is clean afterwards (flushed now, already clean, or not
  /// cached), false when it was pinned and left untouched — the caller
  /// (the checkpointer) retries or simply leaves it in the dirty-page
  /// table, which keeps redo_lsn conservative. Mirrors eviction's safety
  /// argument: mutators hold a pin for the whole modify+log sequence, and
  /// no new pin can appear while the pool mutex is held.
  Result<bool> FlushPageIfIdle(PageId id) TENDAX_EXCLUDES(mu_);

  /// Drops every cached page without writing anything back — simulates a
  /// crash for recovery tests. All pins must have been released.
  void DropAllForCrashTest() TENDAX_EXCLUDES(mu_);

  /// Allocates pages until `id` exists on disk. Recovery uses this when a
  /// page allocation was lost in a crash (file growth is not fsync'd).
  Status EnsureAllocatedUpTo(PageId id);

  size_t capacity() const { return capacity_; }
  BufferPoolStats stats() const TENDAX_EXCLUDES(mu_);

 private:
  // Finds a reusable frame, evicting if necessary.
  Result<Page*> GetFreeFrame() TENDAX_REQUIRES(mu_);
  Status WriteBack(Page* page) TENDAX_REQUIRES(mu_);
  // Marks `page` dirty, recording its recovery LSN at the clean->dirty
  // transition.
  void MarkDirtyLocked(Page* page) TENDAX_REQUIRES(mu_);
  // Moves `id` to the MRU position.
  void Touch(PageId id) TENDAX_REQUIRES(mu_);

  const size_t capacity_;
  DiskManager* const disk_;
  Wal* const wal_;

  // Held across the write-ahead wal_->Flush in WriteBack, hence ranked
  // before kRankWal (see util/lock_order.h).
  mutable Mutex mu_{"bufferpool.mu", lockorder::kRankBufferPool};
  std::vector<std::unique_ptr<Page>> frames_ TENDAX_GUARDED_BY(mu_);
  std::unordered_map<PageId, Page*> page_table_ TENDAX_GUARDED_BY(mu_);
  // front = LRU, back = MRU
  std::list<PageId> lru_ TENDAX_GUARDED_BY(mu_);
  std::unordered_map<PageId, std::list<PageId>::iterator> lru_pos_
      TENDAX_GUARDED_BY(mu_);
  std::vector<Page*> free_frames_ TENDAX_GUARDED_BY(mu_);
  BufferPoolStats stats_ TENDAX_GUARDED_BY(mu_);

  // Registry mirrors of stats_ (null without a registry). Hits are counted
  // but not timed — timing the hit path would cost more than the path
  // itself; only the miss path (disk read + possible eviction) is timed.
  Counter* m_hits_ = nullptr;
  Counter* m_misses_ = nullptr;
  Counter* m_evictions_ = nullptr;
  Counter* m_writebacks_ = nullptr;
  Histogram* m_miss_micros_ = nullptr;
};

/// RAII pin guard: unpins on destruction. Mark dirty via `MarkDirty()`.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      page_ = other.page_;
      dirty_ = other.dirty_;
      other.pool_ = nullptr;
      other.page_ = nullptr;
      other.dirty_ = false;
    }
    return *this;
  }

  Page* get() { return page_; }
  Page* operator->() { return page_; }
  explicit operator bool() const { return page_ != nullptr; }

  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ != nullptr && page_ != nullptr) {
      pool_->Unpin(page_, dirty_);
    }
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace tendax

#endif  // TENDAX_STORAGE_BUFFER_POOL_H_

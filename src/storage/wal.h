#ifndef TENDAX_STORAGE_WAL_H_
#define TENDAX_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/ids.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace tendax {

/// Log sequence number. LSN 0 is "none"; real LSNs start at 1 and increase
/// by one per appended record.
using Lsn = uint64_t;
constexpr Lsn kInvalidLsn = 0;

/// Kind of a WAL record.
enum class LogType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kUpdate = 4,        // a logical record-level change (insert/update/delete)
  kCompensation = 5,  // CLR written while undoing an update
  kCheckpoint = 6,    // quiescent checkpoint marker
};

/// Sub-kind for kUpdate / kCompensation records.
enum class UpdateOp : uint8_t {
  kInsert = 1,
  kUpdate = 2,
  kDelete = 3,
};

/// A single WAL record. Updates are logged logically at record granularity:
/// the (table, rid) addressed plus before/after images. Replay is
/// deterministic because the rid chosen at run time is recorded, and
/// idempotent because pages carry the LSN of the last applied record.
struct LogRecord {
  Lsn lsn = kInvalidLsn;
  Lsn prev_lsn = kInvalidLsn;  // previous record of the same transaction
  TxnId txn;
  LogType type = LogType::kBegin;

  // kUpdate / kCompensation only:
  UpdateOp op = UpdateOp::kInsert;
  uint64_t table_id = 0;
  uint64_t rid = 0;          // packed RecordId (page << 16 | slot)
  std::string before;        // pre-image (empty for insert)
  std::string after;         // post-image (empty for delete)
  Lsn undo_next_lsn = kInvalidLsn;  // kCompensation: next record to undo

  /// Serializes this record (without framing) into `dst`.
  void EncodeTo(std::string* dst) const;
  /// Parses a record from `input`; returns false on malformed input.
  static bool DecodeFrom(Slice input, LogRecord* out);
};

/// Byte sink holding the serialized log. Implementations must make Append
/// atomic with respect to concurrent calls from Wal (Wal serializes
/// internally, so plain implementations suffice).
class LogStorage {
 public:
  virtual ~LogStorage() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Sync() = 0;
  /// Reads the entire log into `out`.
  virtual Status ReadAll(std::string* out) = 0;
  /// Discards all content.
  virtual Status Truncate() = 0;
};

/// In-memory log storage; survives "crashes" simulated by discarding the
/// buffer pool, which is exactly what the recovery tests exercise.
class InMemoryLogStorage : public LogStorage {
 public:
  Status Append(const Slice& data) override;
  Status Sync() override { return Status::OK(); }
  Status ReadAll(std::string* out) override;
  Status Truncate() override;

  /// Chops the log to its first `n` bytes, simulating a torn tail write.
  void CorruptTail(size_t n);

 private:
  std::mutex mu_;
  std::string buffer_;
};

/// Append-only file log storage.
class FileLogStorage : public LogStorage {
 public:
  static Result<std::unique_ptr<FileLogStorage>> Open(
      const std::string& path);
  ~FileLogStorage() override;

  Status Append(const Slice& data) override;
  Status Sync() override;
  Status ReadAll(std::string* out) override;
  Status Truncate() override;

 private:
  explicit FileLogStorage(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  int fd_;
  std::string path_;
};

/// The write-ahead log. Thread-safe. Appends buffer in memory; Flush()
/// makes everything up to a given LSN durable. Framing per record:
/// fixed32 payload length, fixed32 FNV-1a checksum, payload. A torn tail
/// (truncated or corrupt final record) is tolerated on read.
class Wal {
 public:
  /// Storage is shared so that a test can keep a handle, simulate a crash
  /// by dropping the Wal (losing `pending_`), and reopen a new Wal over the
  /// same bytes.
  explicit Wal(std::shared_ptr<LogStorage> storage);

  /// Assigns the next LSN to `rec`, serializes and buffers it. Returns the
  /// assigned LSN.
  Result<Lsn> Append(LogRecord* rec);

  /// Ensures all records with lsn <= `up_to` are durable.
  Status Flush(Lsn up_to);
  /// Ensures every appended record is durable.
  Status FlushAll();

  Lsn next_lsn() const;
  Lsn flushed_lsn() const;

  /// Decodes every durable record plus any still-buffered ones, in order.
  /// Stops silently at the first torn/corrupt record (crash tail).
  Status ReadAll(std::vector<LogRecord>* out);

  /// Discards the entire log (only valid at a quiescent checkpoint) and
  /// continues LSN numbering.
  Status Reset();

  LogStorage* storage() { return storage_.get(); }

  /// Decodes a serialized log (as produced by LogStorage::ReadAll) without
  /// a Wal instance; used by recovery. Returns the next LSN to issue.
  /// Stops at the first torn, checksum-corrupt, undecodable, or
  /// LSN-discontiguous record, so a crash tail is always dropped cleanly.
  static Lsn DecodeLogBuffer(const std::string& buffer,
                             std::vector<LogRecord>* out);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<LogStorage> storage_;
  std::string pending_;  // serialized but not yet flushed to storage
  Lsn next_lsn_ = 1;
  Lsn flushed_lsn_ = 0;
};

}  // namespace tendax

#endif  // TENDAX_STORAGE_WAL_H_

#ifndef TENDAX_STORAGE_WAL_H_
#define TENDAX_STORAGE_WAL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/ids.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace tendax {

/// Log sequence number. LSN 0 is "none"; real LSNs start at 1 and increase
/// by one per appended record.
using Lsn = uint64_t;
constexpr Lsn kInvalidLsn = 0;

/// Kind of a WAL record.
enum class LogType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kUpdate = 4,        // a logical record-level change (insert/update/delete)
  kCompensation = 5,  // CLR written while undoing an update
  kCheckpoint = 6,    // quiescent checkpoint marker (legacy single-file path)
  kCheckpointBegin = 7,  // fuzzy checkpoint opened (ARIES begin_chkpt)
  kCheckpointEnd = 8,    // fuzzy checkpoint closed; carries the ATT and DPT
};

/// Sub-kind for kUpdate / kCompensation records.
enum class UpdateOp : uint8_t {
  kInsert = 1,
  kUpdate = 2,
  kDelete = 3,
};

/// One active transaction at the instant a fuzzy checkpoint snapshotted the
/// transaction table. `first_lsn` bounds how far back undo may need to read.
struct CheckpointTxnEntry {
  uint64_t txn = 0;
  Lsn first_lsn = kInvalidLsn;  // LSN of the transaction's begin record
  Lsn last_lsn = kInvalidLsn;   // most recent record at snapshot time
};

/// One dirty page at the instant a fuzzy checkpoint snapshotted the buffer
/// pool. `rec_lsn` is the LSN of the first record that dirtied the page
/// since it was last clean — redo must start no later than the minimum
/// rec_lsn across the table.
struct CheckpointPageEntry {
  uint64_t page = 0;
  Lsn rec_lsn = kInvalidLsn;
};

/// A single WAL record. Updates are logged logically at record granularity:
/// the (table, rid) addressed plus before/after images. Replay is
/// deterministic because the rid chosen at run time is recorded, and
/// idempotent because pages carry the LSN of the last applied record.
struct LogRecord {
  Lsn lsn = kInvalidLsn;
  Lsn prev_lsn = kInvalidLsn;  // previous record of the same transaction
  TxnId txn;
  LogType type = LogType::kBegin;

  // kUpdate / kCompensation only:
  UpdateOp op = UpdateOp::kInsert;
  uint64_t table_id = 0;
  uint64_t rid = 0;          // packed RecordId (page << 16 | slot)
  std::string before;        // pre-image (empty for insert)
  std::string after;         // post-image (empty for delete)
  Lsn undo_next_lsn = kInvalidLsn;  // kCompensation: next record to undo

  // kCheckpointEnd only: the fuzzy-checkpoint snapshot.
  Lsn checkpoint_begin_lsn = kInvalidLsn;  // LSN of the paired kCheckpointBegin
  Lsn checkpoint_redo_lsn = kInvalidLsn;   // min(begin, min DPT rec_lsn)
  std::vector<CheckpointTxnEntry> att;     // active-transaction table
  std::vector<CheckpointPageEntry> dpt;    // dirty-page table

  /// Serializes this record (without framing) into `dst`.
  void EncodeTo(std::string* dst) const;
  /// Parses a record from `input`; returns false on malformed input.
  static bool DecodeFrom(Slice input, LogRecord* out);
};

/// Byte sink holding the serialized log. Implementations must make Append
/// atomic with respect to concurrent calls from Wal (Wal serializes
/// internally, so plain implementations suffice).
class LogStorage {
 public:
  virtual ~LogStorage() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Sync() = 0;
  /// Reads the entire log into `out`.
  virtual Status ReadAll(std::string* out) = 0;
  /// Discards all content.
  virtual Status Truncate() = 0;

  // --- segmentation (optional; single-file backends keep the defaults) ---
  //
  // A segmented backend stores the log as a sequence of numbered segments.
  // Appends always go to the current (highest-numbered) segment; ReadAll
  // concatenates segments in id order, so callers that do not care about
  // segmentation see one contiguous byte stream. Segment ids are monotonic
  // and never reused, which is what lets the Wal keep per-segment LSN spans.

  /// True when this backend stores the log as numbered segments.
  virtual bool segmented() const { return false; }
  /// Id of the segment receiving appends (0 when not segmented).
  virtual uint64_t current_segment() const { return 0; }
  /// All live segment ids, ascending.
  virtual std::vector<uint64_t> SegmentIds() const { return {}; }
  /// Byte size of segment `id` (0 for unknown ids).
  virtual uint64_t SegmentBytes(uint64_t id) const {
    (void)id;
    return 0;
  }
  /// Reads the raw bytes of one segment.
  virtual Status ReadSegment(uint64_t id, std::string* out) {
    (void)id;
    (void)out;
    return Status::Unimplemented("log storage is not segmented");
  }
  /// Seals the current segment (durably) and opens a fresh one; the new
  /// segment's id is returned through `new_id` when non-null.
  virtual Status RotateSegment(uint64_t* new_id) {
    (void)new_id;
    return Status::Unimplemented("log storage is not segmented");
  }
  /// Deletes one sealed segment; `bytes_freed` (when non-null) receives its
  /// size. Deleting the current segment is an error.
  virtual Status DropSegment(uint64_t id, uint64_t* bytes_freed) {
    (void)id;
    (void)bytes_freed;
    return Status::Unimplemented("log storage is not segmented");
  }
};

/// In-memory log storage; survives "crashes" simulated by discarding the
/// buffer pool, which is exactly what the recovery tests exercise.
class InMemoryLogStorage : public LogStorage {
 public:
  Status Append(const Slice& data) override;
  Status Sync() override { return Status::OK(); }
  Status ReadAll(std::string* out) override;
  Status Truncate() override;

  /// Chops the log to its first `n` bytes, simulating a torn tail write.
  void CorruptTail(size_t n);

 private:
  Mutex mu_{"log.mem", lockorder::kRankDisk};
  std::string buffer_ TENDAX_GUARDED_BY(mu_);
};

/// Append-only file log storage.
class FileLogStorage : public LogStorage {
 public:
  static Result<std::unique_ptr<FileLogStorage>> Open(
      const std::string& path);
  ~FileLogStorage() override;

  Status Append(const Slice& data) override;
  Status Sync() override;
  Status ReadAll(std::string* out) override;
  Status Truncate() override;

 private:
  explicit FileLogStorage(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  int fd_;
  std::string path_;
};

/// How a committing transaction's "make my commit record durable" request
/// is serviced (see `Wal::CommitFlush`). Non-commit flushes (checkpoints,
/// shutdown, recovery) always go through the plain inline path.
enum class CommitFlushMode : uint8_t {
  /// Commit flushes inline on the calling thread. A flush covers everything
  /// buffered, so concurrent commits still coalesce opportunistically.
  kInline = 0,
  /// Every commit pays its own Sync even when already covered — the strict
  /// per-commit-fsync ablation baseline for the group-commit benchmarks.
  kPerCommit,
  /// Group commit, leader/follower: the first waiter to find no flush in
  /// progress flushes on behalf of the whole waiting group.
  kLeader,
  /// Group commit, dedicated flusher: a background thread owned by the Wal
  /// coalesces all waiting commits into one Append+Sync. The thread only
  /// flushes when commits are waiting, so the I/O op sequence of a
  /// single-writer workload stays deterministic.
  kFlusherThread,
};

/// Test-only observation and pause points on the group-commit pipeline.
/// `ScheduleController` (src/testing) implements this to gate the flusher
/// at chosen flush indices and force crash/tear/error interleavings.
class GroupCommitHooks {
 public:
  virtual ~GroupCommitHooks() = default;
  /// A committing transaction joined the waiting group. Called with the
  /// Wal's group lock held: implementations must be cheap and must not
  /// call back into the Wal. `waiters` includes the new arrival.
  virtual void OnCommitEnqueued(size_t waiters, Lsn lsn) {
    (void)waiters;
    (void)lsn;
  }
  /// Coalesced flush attempt number `flush_index` (1-based) is about to
  /// run. Called without any Wal lock held, so implementations may block —
  /// this is the pause gate. `waiters`/`target` describe the group at the
  /// time the flush was triggered; commits that enqueue while the hook
  /// blocks are still picked up by this flush.
  virtual void OnGroupFlushStart(uint64_t flush_index, size_t waiters,
                                 Lsn target) {
    (void)flush_index;
    (void)waiters;
    (void)target;
  }
  /// The flush attempt finished with `status`. Called without locks held.
  virtual void OnGroupFlushEnd(uint64_t flush_index, const Status& status) {
    (void)flush_index;
    (void)status;
  }
};

/// Group-commit configuration, plumbed in via `DatabaseOptions`.
struct GroupCommitOptions {
  CommitFlushMode mode = CommitFlushMode::kInline;
  /// kFlusherThread: how long the flusher waits for more commits to pile up
  /// before flushing a non-full batch. Zero flushes as soon as any commit
  /// waits (lowest latency, still batches whatever arrived together).
  std::chrono::microseconds flush_interval{100};
  /// kFlusherThread: flush immediately once this many commits wait.
  size_t max_batch_waiters = 64;
  /// kLeader/kFlusherThread: release a committing transaction's locks as
  /// soon as its commit record has an LSN in the log buffer, before
  /// blocking on the shared flush (early lock release, as in Aether). This
  /// is what lets commits on one hot document pipeline into a batch at
  /// all — with strict 2PL the next writer cannot even start until the
  /// previous fsync returns. Crash-safe because group-commit durability is
  /// a prefix of commit-LSN order: a transaction that builds on released
  /// writes commits strictly later, so it can never survive a crash that
  /// its predecessor does not. The price is the failure path: once locks
  /// are gone, in-place undo is unsound, so a failed shared flush
  /// fail-stops the Wal (see Wal::CommitFlush) instead of rolling the
  /// batch back. Set false to keep locks through the flush and retain
  /// transient-flush-failure rollback.
  bool early_lock_release = true;
  /// Test-only schedule hooks; null in production.
  std::shared_ptr<GroupCommitHooks> hooks;
};

/// Counters for the group-commit pipeline (all modes).
struct WalGroupCommitStats {
  uint64_t commits = 0;         // CommitFlush calls that joined a group
  uint64_t group_flushes = 0;   // coalesced flush attempts
  uint64_t failed_flushes = 0;  // ... that returned an error
  uint64_t max_batch = 0;       // largest waiter group a flush covered
  uint64_t syncs = 0;           // LogStorage::Sync calls issued (all paths)
};

/// The write-ahead log. Thread-safe. Appends buffer in memory; Flush()
/// makes everything up to a given LSN durable. Framing per record:
/// fixed32 payload length, fixed32 FNV-1a checksum, payload. A torn tail
/// (truncated or corrupt final record) is tolerated on read.
///
/// Commit durability goes through `CommitFlush`, which implements the
/// configured group-commit mode; physical flushing is single-flighted, so
/// one Append+Sync makes a whole batch of buffered records durable.
class Wal {
 public:
  /// Storage is shared so that a test can keep a handle, simulate a crash
  /// by dropping the Wal (losing `pending_`), and reopen a new Wal over the
  /// same bytes. In kFlusherThread mode the Wal owns the flusher thread:
  /// started here, drained and joined by `Shutdown()`/the destructor.
  /// `metrics` may be null (standalone/unit use); it must outlive the Wal.
  /// `segment_bytes` only matters over a segmented LogStorage: once the
  /// current segment exceeds it, the next successful flush rotates to a new
  /// segment (0 disables size-based rotation; checkpoints may still rotate
  /// explicitly via RotateSegmentNow).
  explicit Wal(std::shared_ptr<LogStorage> storage,
               GroupCommitOptions group_commit = {},
               MetricsRegistry* metrics = nullptr,
               uint64_t segment_bytes = 0);
  ~Wal();

  /// Assigns the next LSN to `rec`, serializes and buffers it. Returns the
  /// assigned LSN.
  Result<Lsn> Append(LogRecord* rec) TENDAX_EXCLUDES(mu_);

  /// Ensures all records with lsn <= `up_to` are durable.
  Status Flush(Lsn up_to) TENDAX_EXCLUDES(mu_);
  /// Ensures every appended record is durable.
  Status FlushAll() TENDAX_EXCLUDES(mu_);

  /// Makes the commit record at `lsn` durable using the configured
  /// `CommitFlushMode`. In the group modes the caller blocks until a
  /// coalesced flush covers `lsn`, or until a shared flush attempt that
  /// covers `lsn` fails — in which case every waiter of that batch gets
  /// the error, and the caller must treat its commit as not durable.
  Status CommitFlush(Lsn lsn) TENDAX_EXCLUDES(gc_mu_, mu_);

  /// Drains and stops the flusher thread (no-op in other modes; safe to
  /// call twice). After shutdown, CommitFlush degrades to inline flushing.
  void Shutdown() TENDAX_EXCLUDES(gc_mu_);

  Lsn next_lsn() const TENDAX_EXCLUDES(mu_);
  Lsn flushed_lsn() const TENDAX_EXCLUDES(mu_);

  /// Decodes every durable record plus any still-buffered ones, in order.
  /// Stops silently at the first torn/corrupt record (crash tail).
  Status ReadAll(std::vector<LogRecord>* out) TENDAX_EXCLUDES(mu_);

  /// Discards the entire log (only valid at a quiescent checkpoint) and
  /// continues LSN numbering.
  Status Reset() TENDAX_EXCLUDES(mu_);

  LogStorage* storage() { return storage_.get(); }
  const GroupCommitOptions& group_commit_options() const {
    return gc_options_;
  }
  WalGroupCommitStats group_commit_stats() const
      TENDAX_EXCLUDES(gc_mu_, mu_);

  /// True when the configured mode batches commits and
  /// `early_lock_release` is on: the transaction layer then releases locks
  /// after appending the commit record, before CommitFlush.
  bool ReleasesLocksEarly() const {
    return gc_options_.early_lock_release &&
           (gc_options_.mode == CommitFlushMode::kLeader ||
            gc_options_.mode == CommitFlushMode::kFlusherThread);
  }

  /// Non-OK once a shared flush has failed under early lock release: the
  /// Wal has fail-stopped — every further Append/CommitFlush returns this
  /// status and consistency is re-established by reopen + recovery.
  Status poison_status() const TENDAX_EXCLUDES(gc_mu_);

  /// Decodes a serialized log (as produced by LogStorage::ReadAll) without
  /// a Wal instance; used by recovery. Returns the next LSN to issue.
  /// Stops at the first torn, checksum-corrupt, undecodable, or
  /// LSN-discontiguous record, so a crash tail is always dropped cleanly.
  static Lsn DecodeLogBuffer(const std::string& buffer,
                             std::vector<LogRecord>* out);

  // --- segmentation (no-ops over a non-segmented LogStorage) ---

  /// True when the underlying storage keeps the log in numbered segments.
  bool segmented() const { return storage_->segmented(); }

  /// Live segments (1 models "the single file" when not segmented).
  size_t SegmentCount() const TENDAX_EXCLUDES(mu_);

  /// Flushes everything buffered, seals the current segment and opens a
  /// fresh one. Used by the checkpointer so sealed history becomes
  /// truncatable regardless of `segment_bytes`.
  Status RotateSegmentNow() TENDAX_EXCLUDES(mu_);

  /// Deletes sealed segments whose records all have lsn < `bound`,
  /// oldest-first so a crash mid-sweep always leaves a contiguous log
  /// suffix. The current segment is never deleted. Returns bytes freed.
  Result<uint64_t> TruncateSegmentsBelow(Lsn bound) TENDAX_EXCLUDES(mu_);

 private:
  /// Per-segment LSN span. `last == kInvalidLsn` means the segment is still
  /// open (or its span is unknown, e.g. an empty sealed segment) and must
  /// be retained by truncation.
  struct SegmentSpan {
    Lsn first = kInvalidLsn;
    Lsn last = kInvalidLsn;
  };

  /// Seals the current segment at `last_lsn` and opens a fresh one whose
  /// span starts at `last_lsn + 1`. Expects `mu_` held by the caller.
  Status RotateLocked(Lsn last_lsn) TENDAX_REQUIRES(mu_);
  /// The one physical flush path. Single-flighted: concurrent callers wait
  /// for the in-flight flush, then re-check coverage. The storage
  /// Append+Sync runs outside `mu_` so appends keep flowing during a slow
  /// fsync. `force_sync` issues a Sync even when `up_to` is already
  /// covered (the strict kPerCommit baseline).
  Status FlushInternal(Lsn up_to, bool force_sync) TENDAX_EXCLUDES(mu_);

  /// Runs one coalesced flush for the current waiter group and publishes
  /// the outcome (durable LSN or fanned-out error). Expects `l` to hold
  /// `gc_mu_`; temporarily releases it around hooks and the flush itself —
  /// that mid-flight unlock of a caller-held lock is beyond the static
  /// analysis, so the definition opts out while call sites stay checked.
  void GroupFlushLocked(MutexLock& l) TENDAX_REQUIRES(gc_mu_);

  void FlusherLoop() TENDAX_EXCLUDES(gc_mu_);

  mutable Mutex mu_{"wal.mu", lockorder::kRankWal};
  std::shared_ptr<LogStorage> storage_;
  // Serialized but not yet flushed to storage.
  std::string pending_ TENDAX_GUARDED_BY(mu_);
  Lsn next_lsn_ TENDAX_GUARDED_BY(mu_) = 1;
  Lsn flushed_lsn_ TENDAX_GUARDED_BY(mu_) = 0;
  // A FlushInternal is in storage I/O.
  bool flush_in_flight_ TENDAX_GUARDED_BY(mu_) = false;
  CondVar flush_cv_;  // signaled when flush_in_flight_ drops
  uint64_t syncs_issued_ TENDAX_GUARDED_BY(mu_) = 0;

  // --- segmentation state (meaningful only when storage_->segmented()) ---
  const uint64_t segment_bytes_;
  // LSN span of every live segment, keyed by segment id.
  std::map<uint64_t, SegmentSpan> segment_spans_ TENDAX_GUARDED_BY(mu_);

  // --- group-commit state (never touched while holding mu_; lock order is
  // gc_mu_ -> mu_, mirrored statically by ACQUIRED_BEFORE and at runtime by
  // the kRankWalGroup < kRankWal ranks) ---
  const GroupCommitOptions gc_options_;
  mutable Mutex gc_mu_ TENDAX_ACQUIRED_BEFORE(mu_);
  CondVar gc_waiter_cv_;   // wakes blocked committers
  CondVar gc_flusher_cv_;  // wakes the flusher thread
  // Committers currently blocked.
  size_t gc_waiters_ TENDAX_GUARDED_BY(gc_mu_) = 0;
  // Highest LSN any waiter asked for.
  Lsn gc_max_requested_ TENDAX_GUARDED_BY(gc_mu_) = 0;
  // Mirror of flushed_lsn_ for waiter wakeup.
  Lsn gc_durable_ TENDAX_GUARDED_BY(gc_mu_) = 0;
  // kFlusherThread: unserviced enqueue signal.
  bool gc_work_ TENDAX_GUARDED_BY(gc_mu_) = false;
  // kLeader: a leader is mid-flush.
  bool gc_flush_active_ TENDAX_GUARDED_BY(gc_mu_) = false;
  // Completed coalesced flush attempts.
  uint64_t gc_gen_ TENDAX_GUARDED_BY(gc_mu_) = 0;
  // Gen of the latest failed attempt.
  uint64_t gc_fail_gen_ TENDAX_GUARDED_BY(gc_mu_) = 0;
  // Target LSN of that failed attempt.
  Lsn gc_fail_target_ TENDAX_GUARDED_BY(gc_mu_) = 0;
  // Its error, fanned out to covered waiters.
  Status gc_fail_status_ TENDAX_GUARDED_BY(gc_mu_);
  bool gc_shutdown_ TENDAX_GUARDED_BY(gc_mu_) = false;
  // Flush attempt numbering for hooks.
  uint64_t gc_flush_seq_ TENDAX_GUARDED_BY(gc_mu_) = 0;
  WalGroupCommitStats gc_stats_ TENDAX_GUARDED_BY(gc_mu_);
  // Fail-stop latch for early lock release. gc_poison_status_ is written
  // once (under gc_mu_) before the flag is set with release order, and
  // never changes afterwards, so an acquire load of the flag on the hot
  // Append path is enough to read it safely without gc_mu_.
  std::atomic<bool> gc_poisoned_{false};
  Status gc_poison_status_;
  std::thread flusher_;

  // Registry mirrors of the legacy stats (null when no registry was given).
  // The structs above stay authoritative for their accessors; these feed
  // the unified kStats snapshot.
  Counter* m_appends_ = nullptr;
  Counter* m_rotations_ = nullptr;
  Gauge* m_segments_ = nullptr;
  Gauge* m_truncated_bytes_ = nullptr;
  Counter* m_syncs_ = nullptr;
  Counter* m_commits_ = nullptr;
  Counter* m_group_flushes_ = nullptr;
  Counter* m_failed_flushes_ = nullptr;
  Gauge* m_max_batch_ = nullptr;
  Histogram* m_flush_micros_ = nullptr;
  Histogram* m_commit_flush_micros_ = nullptr;
  Histogram* m_batch_size_ = nullptr;
};

}  // namespace tendax

#endif  // TENDAX_STORAGE_WAL_H_

#include "storage/page.h"

namespace tendax {

uint32_t PageChecksum(const char* data, size_t n) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 16777619u;
  }
  return h;
}

}  // namespace tendax

#ifndef TENDAX_STORAGE_DISK_MANAGER_H_
#define TENDAX_STORAGE_DISK_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/page.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"

namespace tendax {

/// Abstraction over the page store backing a database: allocates page
/// numbers and reads/writes whole pages. Implementations must be
/// thread-safe.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Allocates a fresh (zeroed) page and returns its id.
  virtual Result<PageId> AllocatePage() = 0;
  /// Reads page `id` into `out` (kPageSize bytes).
  virtual Status ReadPage(PageId id, char* out) = 0;
  /// Writes kPageSize bytes from `data` to page `id`.
  virtual Status WritePage(PageId id, const char* data) = 0;
  /// Number of pages ever allocated.
  virtual uint32_t NumPages() const = 0;
  /// Forces written pages to durable storage.
  virtual Status Sync() = 0;
};

/// Heap-backed page store for tests and volatile databases.
class InMemoryDiskManager : public DiskManager {
 public:
  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* data) override;
  uint32_t NumPages() const override;
  Status Sync() override { return Status::OK(); }

 private:
  mutable Mutex mu_{"disk.mem", lockorder::kRankDisk};
  std::vector<std::unique_ptr<char[]>> pages_ TENDAX_GUARDED_BY(mu_);
};

/// File-backed page store. The file grows as pages are allocated; page `i`
/// lives at byte offset `i * kPageSize`.
class FileDiskManager : public DiskManager {
 public:
  /// Opens (creating if necessary) the database file at `path`.
  static Result<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path);
  ~FileDiskManager() override;

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* data) override;
  uint32_t NumPages() const override;
  Status Sync() override;

 private:
  FileDiskManager(int fd, uint32_t num_pages)
      : fd_(fd), num_pages_(num_pages) {}

  mutable Mutex mu_{"disk.file", lockorder::kRankDisk};
  const int fd_;  // the fd itself is stable; I/O through it is positioned
  uint32_t num_pages_ TENDAX_GUARDED_BY(mu_);
};

}  // namespace tendax

#endif  // TENDAX_STORAGE_DISK_MANAGER_H_

#include "storage/buffer_pool.h"

#include "util/logging.h"

namespace tendax {

BufferPool::BufferPool(size_t capacity, DiskManager* disk, Wal* wal,
                       MetricsRegistry* metrics)
    : capacity_(capacity), disk_(disk), wal_(wal) {
  TENDAX_CHECK(capacity_ > 0);
  if (metrics != nullptr) {
    m_hits_ = metrics->counter("bufferpool.hits");
    m_misses_ = metrics->counter("bufferpool.misses");
    m_evictions_ = metrics->counter("bufferpool.evictions");
    m_writebacks_ = metrics->counter("bufferpool.writebacks");
    m_miss_micros_ = metrics->histogram("bufferpool.miss_micros");
  }
  frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    frames_.push_back(std::make_unique<Page>());
    free_frames_.push_back(frames_.back().get());
  }
}

Result<Page*> BufferPool::FetchPage(PageId id) {
  MutexLock lock(mu_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    MetricAdd(m_hits_);
    Page* page = it->second;
    ++page->pin_count_;
    Touch(id);
    return page;
  }
  ++stats_.misses;
  MetricAdd(m_misses_);
  // Times the whole miss path (eviction + disk read + checksum), including
  // the error exits, via RAII.
  ScopedTimer miss_timer(m_miss_micros_);
  auto frame = GetFreeFrame();
  if (!frame.ok()) return frame.status();
  Page* page = *frame;
  Status st = disk_->ReadPage(id, page->data());
  if (!st.ok()) {
    free_frames_.push_back(page);
    return st;
  }
  if (!page->ChecksumValid()) {
    page->Reset();
    free_frames_.push_back(page);
    return Status::Corruption("page " + std::to_string(id) +
                              " failed checksum verification");
  }
  page->set_id(id);
  page->pin_count_ = 1;
  page->dirty_ = false;
  page->rec_lsn_ = 0;
  page_table_[id] = page;
  lru_.push_back(id);
  lru_pos_[id] = std::prev(lru_.end());
  return page;
}

Result<Page*> BufferPool::NewPage() {
  MutexLock lock(mu_);
  auto id_res = disk_->AllocatePage();
  if (!id_res.ok()) return id_res.status();
  PageId id = *id_res;
  auto frame = GetFreeFrame();
  if (!frame.ok()) return frame.status();
  Page* page = *frame;
  page->Reset();
  page->set_id(id);
  page->pin_count_ = 1;
  page->dirty_ = false;
  MarkDirtyLocked(page);  // a fresh page must reach disk eventually
  page_table_[id] = page;
  lru_.push_back(id);
  lru_pos_[id] = std::prev(lru_.end());
  return page;
}

void BufferPool::Unpin(Page* page, bool dirty) {
  MutexLock lock(mu_);
  TENDAX_CHECK(page->pin_count_ > 0);
  --page->pin_count_;
  if (dirty) MarkDirtyLocked(page);
}

void BufferPool::MarkDirtyLocked(Page* page) {
  if (page->dirty_) return;
  page->dirty_ = true;
  // WAL-logged pages carry the LSN of the record that just modified them,
  // which is exactly the earliest record whose effect is not yet on disk.
  // Non-logged pages (indexes, derived data) have no records to redo, so
  // the WAL cursor — no earlier record can ever target them — keeps them
  // from dragging redo_lsn (and with it, log truncation) backwards.
  page->rec_lsn_ =
      page->lsn() != 0 ? page->lsn() : (wal_ != nullptr ? wal_->next_lsn() : 1);
}

Status BufferPool::FlushPage(PageId id) {
  MutexLock lock(mu_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return Status::OK();
  return WriteBack(it->second);
}

Status BufferPool::FlushAll() {
  MutexLock lock(mu_);
  for (auto& [id, page] : page_table_) {
    TENDAX_RETURN_IF_ERROR(WriteBack(page));
  }
  return disk_->Sync();
}

void BufferPool::DropAllForCrashTest() {
  MutexLock lock(mu_);
  for (auto& [id, page] : page_table_) {
    TENDAX_CHECK(page->pin_count_ == 0);
    page->Reset();
    free_frames_.push_back(page);
  }
  page_table_.clear();
  lru_.clear();
  lru_pos_.clear();
}

Status BufferPool::EnsureAllocatedUpTo(PageId id) {
  while (disk_->NumPages() <= id) {
    auto res = disk_->AllocatePage();
    if (!res.ok()) return res.status();
  }
  return Status::OK();
}

BufferPoolStats BufferPool::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

Result<Page*> BufferPool::GetFreeFrame() {
  if (!free_frames_.empty()) {
    Page* page = free_frames_.back();
    free_frames_.pop_back();
    return page;
  }
  // Evict the least-recently-used unpinned page.
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    Page* candidate = page_table_.at(*it);
    if (candidate->pin_count_ > 0) continue;
    TENDAX_RETURN_IF_ERROR(WriteBack(candidate));
    ++stats_.evictions;
    MetricAdd(m_evictions_);
    page_table_.erase(*it);
    lru_pos_.erase(*it);
    lru_.erase(it);
    candidate->Reset();
    return candidate;
  }
  return Status::Internal("buffer pool exhausted: all pages pinned");
}

Status BufferPool::WriteBack(Page* page) {
  if (!page->dirty_) return Status::OK();
  if (wal_ != nullptr) {
    // Write-ahead rule: the log must cover this page before it hits disk.
    TENDAX_RETURN_IF_ERROR(wal_->Flush(page->lsn()));
  }
  page->StampChecksum();
  TENDAX_RETURN_IF_ERROR(disk_->WritePage(page->id(), page->data()));
  page->dirty_ = false;
  page->rec_lsn_ = 0;
  ++stats_.dirty_writebacks;
  MetricAdd(m_writebacks_);
  return Status::OK();
}

std::vector<CheckpointPageEntry> BufferPool::DirtyPageTable() const {
  MutexLock lock(mu_);
  std::vector<CheckpointPageEntry> dpt;
  for (const auto& [id, page] : page_table_) {
    if (!page->dirty_) continue;
    CheckpointPageEntry e;
    e.page = id;
    e.rec_lsn = page->rec_lsn_;
    dpt.push_back(e);
  }
  return dpt;
}

size_t BufferPool::DirtyCount() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [id, page] : page_table_) {
    (void)id;
    if (page->dirty_) ++n;
  }
  return n;
}

Result<bool> BufferPool::FlushPageIfIdle(PageId id) {
  MutexLock lock(mu_);
  auto it = page_table_.find(id);
  // Absent or clean means eviction or a plain flush already wrote it back.
  if (it == page_table_.end() || !it->second->dirty_) return true;
  if (it->second->pin_count_ > 0) return false;
  TENDAX_RETURN_IF_ERROR(WriteBack(it->second));
  return true;
}

void BufferPool::Touch(PageId id) {
  auto pos = lru_pos_.find(id);
  if (pos != lru_pos_.end()) {
    lru_.splice(lru_.end(), lru_, pos->second);
    pos->second = std::prev(lru_.end());
  }
}

}  // namespace tendax

#ifndef TENDAX_STORAGE_SEGMENTED_LOG_H_
#define TENDAX_STORAGE_SEGMENTED_LOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/wal.h"
#include "util/mutex.h"

namespace tendax {

/// Log storage that keeps the WAL as a sequence of numbered segments
/// (`<prefix>.000001`, `<prefix>.000002`, ...) instead of one growing file.
/// Appends go to the current (highest-numbered) segment; `RotateSegment`
/// durably seals it and opens the next; `DropSegment` deletes a sealed
/// segment once the checkpointer has proven its records redundant. Segment
/// ids are monotonic and never reused, even across Truncate().
///
/// Two modes share the class:
///  - in-memory (`InMemory()`): segments live in a map. Like
///    `InMemoryLogStorage`, the object survives a simulated crash (the test
///    keeps the shared_ptr and reopens a new Wal over it), which is what
///    the checkpoint crash sweeps exercise.
///  - file-backed (`OpenFiles(prefix)`): one file per segment next to the
///    database file. Open scans the directory for surviving segments; a
///    gap in the id sequence (possible only if a past crash interrupted an
///    out-of-order manual delete) keeps just the contiguous suffix, which
///    is the only part recovery could trust anyway.
class SegmentedLogStorage : public LogStorage {
 public:
  /// A fresh in-memory segmented log with one empty segment.
  static std::shared_ptr<SegmentedLogStorage> InMemory();

  /// Opens (or creates) a file-backed segmented log. `prefix` is the path
  /// stem: segments are `<prefix>.NNNNNN`.
  static Result<std::shared_ptr<SegmentedLogStorage>> OpenFiles(
      const std::string& prefix);

  ~SegmentedLogStorage() override;

  // LogStorage:
  Status Append(const Slice& data) override;
  Status Sync() override;
  Status ReadAll(std::string* out) override;
  Status Truncate() override;

  bool segmented() const override { return true; }
  uint64_t current_segment() const override;
  std::vector<uint64_t> SegmentIds() const override;
  uint64_t SegmentBytes(uint64_t id) const override;
  Status ReadSegment(uint64_t id, std::string* out) override;
  Status RotateSegment(uint64_t* new_id) override;
  Status DropSegment(uint64_t id, uint64_t* bytes_freed) override;

  /// Total bytes across all live segments.
  uint64_t TotalBytes() const;

  /// Chops the *current* segment to its first `n` bytes — the segmented
  /// analogue of InMemoryLogStorage::CorruptTail (in-memory mode only).
  void CorruptTail(size_t n);

 private:
  SegmentedLogStorage(bool file_backed, std::string prefix);

  std::string SegmentPath(uint64_t id) const;
  Status OpenCurrentFileLocked() TENDAX_REQUIRES(mu_);
  Status CloseCurrentFileLocked(bool sync) TENDAX_REQUIRES(mu_);
  Status SyncDirLocked() TENDAX_REQUIRES(mu_);

  const bool file_backed_;
  const std::string prefix_;

  mutable Mutex mu_{"log.segmented", lockorder::kRankDisk};
  // Segment id -> byte size. In-memory mode additionally keeps contents.
  std::map<uint64_t, uint64_t> sizes_ TENDAX_GUARDED_BY(mu_);
  std::map<uint64_t, std::string> mem_ TENDAX_GUARDED_BY(mu_);
  uint64_t current_ TENDAX_GUARDED_BY(mu_) = 1;
  int fd_ TENDAX_GUARDED_BY(mu_) = -1;  // file mode: current segment fd
};

}  // namespace tendax

#endif  // TENDAX_STORAGE_SEGMENTED_LOG_H_

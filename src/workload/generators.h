#ifndef TENDAX_WORKLOAD_GENERATORS_H_
#define TENDAX_WORKLOAD_GENERATORS_H_

#include <string>
#include <vector>

#include "util/random.h"

namespace tendax {

/// One simulated editing gesture.
struct TypingAction {
  enum class Kind : uint8_t { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  size_t pos = 0;
  std::string text;  // kInsert
  size_t len = 0;    // kDelete
};

/// Synthetic stand-in for the human typists of the original demo: produces
/// a stream of inserts/deletes with realistic locality (a cursor that
/// mostly advances, occasionally jumps; short bursts of typing; ~1 delete
/// per 8 inserts). Deterministic for a given seed.
class TypingTraceGenerator {
 public:
  explicit TypingTraceGenerator(uint64_t seed, double delete_ratio = 0.12)
      : rng_(seed), delete_ratio_(delete_ratio) {}

  /// Next gesture for a document currently `doc_len` characters long.
  TypingAction Next(size_t doc_len);

 private:
  Random rng_;
  double delete_ratio_;
  size_t cursor_ = 0;
};

/// Zipf-distributed vocabulary corpus generator: builds realistic document
/// text so search/mining benches see natural term-frequency skew.
class CorpusGenerator {
 public:
  explicit CorpusGenerator(uint64_t seed, size_t vocabulary = 2000);

  /// A document of roughly `words` words in sentences and paragraphs.
  std::string Document(size_t words);

  /// A short title of 2-4 words.
  std::string Title();

  /// One vocabulary word, Zipf-sampled.
  const std::string& Word();

 private:
  Random rng_;
  std::vector<std::string> vocabulary_;
  std::vector<double> cumulative_;  // Zipf CDF
};

}  // namespace tendax

#endif  // TENDAX_WORKLOAD_GENERATORS_H_

#include "workload/generators.h"

#include <algorithm>
#include <cmath>

namespace tendax {

TypingAction TypingTraceGenerator::Next(size_t doc_len) {
  cursor_ = std::min(cursor_, doc_len);
  TypingAction action;
  // Occasionally jump the cursor (navigation).
  if (rng_.OneIn(12) && doc_len > 0) {
    cursor_ = rng_.Uniform(doc_len + 1);
  }
  if (doc_len > 0 && rng_.NextDouble() < delete_ratio_) {
    action.kind = TypingAction::Kind::kDelete;
    size_t max_len = std::min<size_t>(doc_len - std::min(cursor_, doc_len - 1),
                                      1 + rng_.Uniform(8));
    if (cursor_ >= doc_len) cursor_ = doc_len - 1;
    action.pos = cursor_;
    action.len = std::max<size_t>(1, std::min(max_len, doc_len - cursor_));
    return action;
  }
  action.kind = TypingAction::Kind::kInsert;
  action.pos = cursor_;
  // A burst: a word, a space, sometimes punctuation/newline.
  std::string burst = rng_.Word(2, 9);
  if (rng_.OneIn(9)) {
    burst += rng_.OneIn(4) ? ".\n" : ". ";
  } else {
    burst += " ";
  }
  action.text = burst;
  cursor_ += burst.size();
  return action;
}

CorpusGenerator::CorpusGenerator(uint64_t seed, size_t vocabulary)
    : rng_(seed) {
  vocabulary_.reserve(vocabulary);
  for (size_t i = 0; i < vocabulary; ++i) {
    vocabulary_.push_back(rng_.Word(3, 10));
  }
  // Zipf CDF with exponent ~1.
  cumulative_.resize(vocabulary);
  double total = 0;
  for (size_t i = 0; i < vocabulary; ++i) {
    total += 1.0 / static_cast<double>(i + 1);
    cumulative_[i] = total;
  }
  for (double& c : cumulative_) c /= total;
}

const std::string& CorpusGenerator::Word() {
  double u = rng_.NextDouble();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  size_t idx = static_cast<size_t>(it - cumulative_.begin());
  if (idx >= vocabulary_.size()) idx = vocabulary_.size() - 1;
  return vocabulary_[idx];
}

std::string CorpusGenerator::Document(size_t words) {
  std::string out;
  size_t sentence_len = 0;
  size_t paragraph_sentences = 0;
  for (size_t i = 0; i < words; ++i) {
    out += Word();
    ++sentence_len;
    if (sentence_len >= 6 + rng_.Uniform(10)) {
      ++paragraph_sentences;
      sentence_len = 0;
      if (paragraph_sentences >= 3 + rng_.Uniform(4)) {
        out += ".\n\n";
        paragraph_sentences = 0;
      } else {
        out += ". ";
      }
    } else {
      out += " ";
    }
  }
  return out;
}

std::string CorpusGenerator::Title() {
  std::string out = Word();
  size_t extra = 1 + rng_.Uniform(3);
  for (size_t i = 0; i < extra; ++i) {
    out += "-" + Word();
  }
  return out;
}

}  // namespace tendax

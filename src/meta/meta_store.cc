#include "meta/meta_store.h"

#include <algorithm>

namespace tendax {

namespace {

Schema AuditSchema() {
  return Schema({{"seq", ColumnType::kUint64},
                 {"doc_id", ColumnType::kUint64},
                 {"user_id", ColumnType::kUint64},
                 {"kind", ColumnType::kUint64},
                 {"at", ColumnType::kUint64},
                 {"detail", ColumnType::kString}});
}

Schema PropsSchema() {
  return Schema({{"doc_id", ColumnType::kUint64},
                 {"key", ColumnType::kString},
                 {"value", ColumnType::kString}});
}

AuditEntry EntryFromRecord(const Record& rec) {
  AuditEntry e;
  e.seq = rec.GetUint(0);
  e.doc = DocumentId(rec.GetUint(1));
  e.user = UserId(rec.GetUint(2));
  e.kind = static_cast<AuditKind>(rec.GetUint(3));
  e.at = rec.GetUint(4);
  e.detail = rec.GetString(5);
  return e;
}

}  // namespace

const char* AuditKindName(AuditKind kind) {
  switch (kind) {
    case AuditKind::kCreate:
      return "create";
    case AuditKind::kEdit:
      return "edit";
    case AuditKind::kRead:
      return "read";
    case AuditKind::kLayout:
      return "layout";
    case AuditKind::kStructure:
      return "structure";
    case AuditKind::kSecurity:
      return "security";
    case AuditKind::kWorkflow:
      return "workflow";
    case AuditKind::kRename:
      return "rename";
    case AuditKind::kStateChange:
      return "state";
  }
  return "?";
}

MetaStore::MetaStore(Database* db) : db_(db) {}

Status MetaStore::Init() {
  auto audit = db_->EnsureTable("tendax_audit", AuditSchema());
  if (!audit.ok()) return audit.status();
  audit_table_ = *audit;
  auto props = db_->EnsureTable("tendax_props", PropsSchema());
  if (!props.ok()) return props.status();
  props_table_ = *props;

  // Rebuild aggregates from the persisted trail.
  uint64_t max_seq = 0;
  TENDAX_RETURN_IF_ERROR(
      audit_table_->Scan([&](RecordId, const Record& rec) {
        AuditEntry e = EntryFromRecord(rec);
        max_seq = std::max(max_seq, e.seq);
        ApplyToAggregates(e);
        return true;
      }));
  next_seq_ = max_seq + 1;
  TENDAX_RETURN_IF_ERROR(
      props_table_->Scan([&](RecordId rid, const Record& rec) {
        auto key = std::make_pair(rec.GetUint(0), rec.GetString(1));
        props_[key] = rec.GetString(2);
        prop_rids_[key] = rid;
        return true;
      }));

  // Automatic capture: every committed transaction's change events become
  // audit entries (the paper's "meta data gathered automatically").
  db_->txns()->AddCommitListener(
      [this](TxnId, UserId user, const ChangeBatch& batch) {
        for (const ChangeEvent& ev : batch) {
          auto kind = KindForEvent(ev.kind);
          if (!kind.has_value()) continue;
          // The source transaction is already committed — a failed audit
          // append cannot be surfaced to it, only dropped.
          (void)Append(ev.user.valid() ? ev.user : user, ev.doc, *kind,
                       ev.detail, ev.at);
        }
      });
  return Status::OK();
}

std::optional<AuditKind> MetaStore::KindForEvent(ChangeKind kind) {
  switch (kind) {
    case ChangeKind::kDocumentCreated:
      return AuditKind::kCreate;
    case ChangeKind::kTextInserted:
    case ChangeKind::kTextDeleted:
    case ChangeKind::kUndoApplied:
    case ChangeKind::kRedoApplied:
      return AuditKind::kEdit;
    case ChangeKind::kLayoutChanged:
      return AuditKind::kLayout;
    case ChangeKind::kStructureChanged:
    case ChangeKind::kNoteAdded:
    case ChangeKind::kObjectInserted:
      return AuditKind::kStructure;
    case ChangeKind::kSecurityChanged:
      return AuditKind::kSecurity;
    case ChangeKind::kWorkflowChanged:
      return AuditKind::kWorkflow;
    case ChangeKind::kDocumentRenamed:
      return AuditKind::kRename;
    case ChangeKind::kDocumentStateChanged:
      return AuditKind::kStateChange;
    default:
      return std::nullopt;
  }
}

Status MetaStore::Append(UserId user, DocumentId doc, AuditKind kind,
                         const std::string& detail, Timestamp at) {
  if (!doc.valid()) return Status::OK();
  AuditEntry entry;
  entry.seq = next_seq_.fetch_add(1);
  entry.doc = doc;
  entry.user = user;
  entry.kind = kind;
  entry.at = at != 0 ? at : db_->clock()->NowMicros();
  entry.detail = detail;

  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) {
    return audit_table_
        ->Insert(txn, Record({entry.seq, doc.value, user.value,
                              uint64_t{static_cast<uint64_t>(kind)},
                              uint64_t{entry.at}, detail}))
        .status();
  });
  if (!st.ok()) return st;

  ApplyToAggregates(entry);
  std::vector<AuditListener> listeners;
  {
    MutexLock lock(mu_);
    listeners = listeners_;
  }
  for (const auto& listener : listeners) listener(entry);
  return Status::OK();
}

void MetaStore::ApplyToAggregates(const AuditEntry& entry) {
  MutexLock lock(mu_);
  DocumentMeta& meta = meta_[entry.doc.value];
  meta.doc = entry.doc;
  UserTouch& touch = meta.by_user[entry.user];
  if (entry.kind == AuditKind::kRead) {
    meta.readers.insert(entry.user);
    ++meta.total_reads;
    ++touch.reads;
    touch.last_read = std::max(touch.last_read, entry.at);
    meta.last_read_at = std::max(meta.last_read_at, entry.at);
  } else {
    meta.authors.insert(entry.user);
    ++meta.total_edits;
    ++touch.edits;
    touch.last_edit = std::max(touch.last_edit, entry.at);
    if (entry.at >= meta.last_edit_at) {
      meta.last_edit_at = entry.at;
      meta.last_edit_by = entry.user;
    }
  }
}

Status MetaStore::RecordRead(UserId user, DocumentId doc) {
  return Append(user, doc, AuditKind::kRead, "", 0);
}

DocumentMeta MetaStore::Meta(DocumentId doc) const {
  MutexLock lock(mu_);
  auto it = meta_.find(doc.value);
  if (it == meta_.end()) {
    DocumentMeta empty;
    empty.doc = doc;
    return empty;
  }
  return it->second;
}

std::vector<DocumentId> MetaStore::ReadBy(UserId user,
                                          Timestamp since) const {
  MutexLock lock(mu_);
  std::vector<DocumentId> out;
  for (const auto& [doc, meta] : meta_) {
    auto it = meta.by_user.find(user);
    if (it != meta.by_user.end() && it->second.last_read >= since) {
      out.push_back(DocumentId(doc));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<DocumentId> MetaStore::EditedBy(UserId user,
                                            Timestamp since) const {
  MutexLock lock(mu_);
  std::vector<DocumentId> out;
  for (const auto& [doc, meta] : meta_) {
    auto it = meta.by_user.find(user);
    if (it != meta.by_user.end() && it->second.last_edit >= since) {
      out.push_back(DocumentId(doc));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<DocumentId> MetaStore::TouchedDocuments() const {
  MutexLock lock(mu_);
  std::vector<DocumentId> out;
  out.reserve(meta_.size());
  for (const auto& [doc, meta] : meta_) out.push_back(DocumentId(doc));
  std::sort(out.begin(), out.end());
  return out;
}

Status MetaStore::VisitAudit(
    const std::function<bool(const AuditEntry&)>& fn) const {
  std::vector<AuditEntry> entries;
  TENDAX_RETURN_IF_ERROR(
      audit_table_->Scan([&](RecordId, const Record& rec) {
        entries.push_back(EntryFromRecord(rec));
        return true;
      }));
  std::sort(entries.begin(), entries.end(),
            [](const AuditEntry& a, const AuditEntry& b) {
              return a.seq < b.seq;
            });
  for (const AuditEntry& e : entries) {
    if (!fn(e)) break;
  }
  return Status::OK();
}

Status MetaStore::SetProperty(UserId user, DocumentId doc,
                              const std::string& key,
                              const std::string& value) {
  auto map_key = std::make_pair(doc.value, key);
  RecordId existing;
  bool update = false;
  {
    MutexLock lock(mu_);
    auto it = prop_rids_.find(map_key);
    if (it != prop_rids_.end()) {
      existing = it->second;
      update = true;
    }
  }
  Record rec({doc.value, key, value});
  RecordId new_rid;
  Status st = db_->txns()->RunInTxn(user, [&](Transaction* txn) -> Status {
    if (update) {
      auto rid = props_table_->Update(txn, existing, rec);
      if (!rid.ok()) return rid.status();
      new_rid = *rid;
    } else {
      auto rid = props_table_->Insert(txn, rec);
      if (!rid.ok()) return rid.status();
      new_rid = *rid;
    }
    return Status::OK();
  });
  if (!st.ok()) return st;
  MutexLock lock(mu_);
  props_[map_key] = value;
  prop_rids_[map_key] = new_rid;
  return Status::OK();
}

Result<std::string> MetaStore::GetProperty(DocumentId doc,
                                           const std::string& key) const {
  MutexLock lock(mu_);
  auto it = props_.find(std::make_pair(doc.value, key));
  if (it == props_.end()) {
    return Status::NotFound("no property '" + key + "' on " + doc.ToString());
  }
  return it->second;
}

std::map<std::string, std::string> MetaStore::Properties(
    DocumentId doc) const {
  MutexLock lock(mu_);
  std::map<std::string, std::string> out;
  auto lo = props_.lower_bound(std::make_pair(doc.value, std::string()));
  for (auto it = lo; it != props_.end() && it->first.first == doc.value;
       ++it) {
    out[it->first.second] = it->second;
  }
  return out;
}

void MetaStore::AddAuditListener(AuditListener listener) {
  MutexLock lock(mu_);
  listeners_.push_back(std::move(listener));
}

}  // namespace tendax

#ifndef TENDAX_META_META_STORE_H_
#define TENDAX_META_META_STORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "text/text_store.h"
#include "util/ids.h"
#include "util/mutex.h"
#include "util/result.h"

namespace tendax {

/// Kinds of audited interactions with a document.
enum class AuditKind : uint8_t {
  kCreate = 1,
  kEdit = 2,
  kRead = 3,
  kLayout = 4,
  kStructure = 5,
  kSecurity = 6,
  kWorkflow = 7,
  kRename = 8,
  kStateChange = 9,
};

const char* AuditKindName(AuditKind kind);

/// One audit-trail entry.
struct AuditEntry {
  uint64_t seq = 0;
  DocumentId doc;
  UserId user;
  AuditKind kind = AuditKind::kEdit;
  Timestamp at = 0;
  std::string detail;
};

/// Per-user interaction summary with one document.
struct UserTouch {
  uint64_t reads = 0;
  uint64_t edits = 0;
  Timestamp last_read = 0;
  Timestamp last_edit = 0;
};

/// Aggregated document-level metadata — the paper's automatically gathered
/// "document creation process" metadata: creator, authors, readers, state,
/// size, timestamps (Sec. 2).
struct DocumentMeta {
  DocumentId doc;
  std::set<UserId> authors;
  std::set<UserId> readers;
  uint64_t total_edits = 0;
  uint64_t total_reads = 0;
  Timestamp last_edit_at = 0;
  UserId last_edit_by;
  Timestamp last_read_at = 0;
  std::map<UserId, UserTouch> by_user;
};

/// Captures metadata automatically while documents are created and used:
/// subscribes to transaction commits (edits, layout, workflow, …) and
/// records explicit read events, persisting an audit trail and maintaining
/// in-memory aggregates that feed dynamic folders, search ranking, and
/// mining. Also stores user-defined document properties.
class MetaStore {
 public:
  explicit MetaStore(Database* db);

  /// Creates tables, rebuilds aggregates from the persisted audit trail and
  /// hooks into the transaction manager's commit stream. Call once.
  Status Init();

  /// Explicitly records that `user` read `doc` (editors call this when a
  /// document is opened).
  Status RecordRead(UserId user, DocumentId doc);

  /// Document aggregates (empty record if the doc was never touched).
  DocumentMeta Meta(DocumentId doc) const;

  /// Documents `user` read/edited since `since` (microsecond timestamp).
  std::vector<DocumentId> ReadBy(UserId user, Timestamp since) const;
  std::vector<DocumentId> EditedBy(UserId user, Timestamp since) const;

  /// All documents with any recorded interaction.
  std::vector<DocumentId> TouchedDocuments() const;

  /// Visits the persisted audit trail in sequence order.
  Status VisitAudit(const std::function<bool(const AuditEntry&)>& fn) const;

  // --- user-defined properties (doc-level key/value) ---

  Status SetProperty(UserId user, DocumentId doc, const std::string& key,
                     const std::string& value);
  Result<std::string> GetProperty(DocumentId doc, const std::string& key) const;
  std::map<std::string, std::string> Properties(DocumentId doc) const;

  /// Listener invoked after each audit entry is recorded (dynamic folders
  /// subscribe here for incremental refresh).
  using AuditListener = std::function<void(const AuditEntry&)>;
  void AddAuditListener(AuditListener listener);

 private:
  /// Maps a committed change event to an audit kind (or nullopt to skip).
  static std::optional<AuditKind> KindForEvent(ChangeKind kind);
  Status Append(UserId user, DocumentId doc, AuditKind kind,
                const std::string& detail, Timestamp at);
  void ApplyToAggregates(const AuditEntry& entry);

  Database* const db_;
  HeapTable* audit_table_ = nullptr;
  HeapTable* props_table_ = nullptr;

  // Guards the aggregate caches and listener list; dropped before Append's
  // transaction and before listeners run (they are copied out first).
  mutable Mutex mu_{"metastore.mu", lockorder::kRankDocument};
  std::unordered_map<uint64_t, DocumentMeta> meta_ TENDAX_GUARDED_BY(mu_);
  std::map<std::pair<uint64_t, std::string>, std::string> props_
      TENDAX_GUARDED_BY(mu_);
  std::map<std::pair<uint64_t, std::string>, RecordId> prop_rids_
      TENDAX_GUARDED_BY(mu_);
  std::vector<AuditListener> listeners_ TENDAX_GUARDED_BY(mu_);
  std::atomic<uint64_t> next_seq_{1};
};

}  // namespace tendax

#endif  // TENDAX_META_META_STORE_H_

#ifndef TENDAX_COLLAB_ADMISSION_H_
#define TENDAX_COLLAB_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>

#include "obs/metrics.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tendax {

enum class CommandKind : uint8_t;

/// Priority class of a request under overload. Lower value = more important;
/// the controller always sheds the numerically-highest class first.
enum class PriorityClass : uint8_t {
  kCritical = 0,    // lease renewals & stream resumes: losing one kills a
                    // session, so these are never shed before normals
  kNormal = 1,      // editing gestures
  kBackground = 2,  // stats scrapes, search: first to go
};

constexpr size_t kPriorityClassCount = 3;

/// Lowercase name of a priority class ("critical"/"normal"/"background").
const char* PriorityClassName(PriorityClass cls);

/// Maps a wire command to its priority class: kHeartbeat/kResume are
/// critical, kStats is background, everything else is a normal edit.
PriorityClass ClassifyCommand(CommandKind kind);

struct AdmissionOptions {
  /// Maximum concurrently-executing requests. 0 disables admission control
  /// entirely (every Admit() succeeds immediately) — the default, so servers
  /// that never opt in behave exactly as before.
  size_t max_inflight = 0;
  /// Maximum requests parked waiting for an in-flight slot (all classes
  /// combined). Arrivals beyond this displace or become shed traffic.
  size_t queue_depth = 64;
  /// Base of the server-computed retry-after hint. The hint scales with the
  /// current queue length: base * (1 + queued), clamped to the max below,
  /// so clients back off harder the deeper the backlog is.
  uint64_t retry_after_base_micros = 1'000;
  uint64_t retry_after_max_micros = 500'000;
  /// A waiter parked longer than this is shed (kUnavailable) rather than
  /// left to occupy a queue slot forever.
  uint64_t max_queue_wait_micros = 2'000'000;
};

/// Per-class shed/admit totals, mirrored into `admission.*` registry metrics.
struct AdmissionStats {
  uint64_t admitted[kPriorityClassCount] = {0, 0, 0};
  uint64_t shed[kPriorityClassCount] = {0, 0, 0};
  uint64_t deadline_exceeded = 0;  // waiters that ran out of request budget
  uint64_t sessions_refused = 0;   // new sessions refused while degraded
  uint64_t inflight = 0;
  uint64_t queued = 0;
  bool degraded = false;
};

/// SEDA-style bounded-concurrency gate in front of the editor endpoint.
///
/// At most `max_inflight` requests execute concurrently; up to `queue_depth`
/// more wait in priority order. When the queue is full the lowest class
/// sheds first: an arrival is refused if its class is no better than the
/// worst waiting class, otherwise it displaces the newest waiter of that
/// worst class. Shed requests get a typed kUnavailable plus a server-computed
/// retry-after hint so clients converge instead of hammering.
///
/// Degraded mode (pressure probe true — e.g. the buffer pool's dirty-page
/// count at the checkpointer's threshold) sheds the whole background class
/// immediately and refuses *new* sessions, protecting in-progress work first.
///
/// Lock discipline: `mu_` is rank kRankServer and is never held across calls
/// into any other subsystem — the pressure probe runs before it is taken and
/// grants/releases only touch local waiter state.
class AdmissionController {
 public:
  /// Outcome of one admission attempt.
  struct Ticket {
    Status status;  // OK = admitted; caller must Release() when done
    uint64_t retry_after_micros = 0;  // nonzero iff status.IsUnavailable()
  };

  AdmissionController(const AdmissionOptions& options,
                      MetricsRegistry* metrics);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  bool enabled() const { return options_.max_inflight > 0; }
  const AdmissionOptions& options() const { return options_; }

  /// Blocks until a slot is granted, the request is shed (kUnavailable), or
  /// the caller's ambient RequestDeadline / max_queue_wait expires
  /// (kDeadlineExceeded / kUnavailable). On OK the caller owns one in-flight
  /// slot and must call Release() exactly once.
  Ticket Admit(PriorityClass cls);
  void Release();

  /// RAII admission: releases on destruction iff the ticket was granted.
  class Pass {
   public:
    Pass(AdmissionController* controller, PriorityClass cls)
        : controller_(controller),
          ticket_(controller ? controller->Admit(cls) : Ticket{}) {}
    ~Pass() {
      if (controller_ && ticket_.status.ok()) controller_->Release();
    }
    Pass(const Pass&) = delete;
    Pass& operator=(const Pass&) = delete;
    const Ticket& ticket() const { return ticket_; }

   private:
    AdmissionController* const controller_;
    Ticket ticket_;
  };

  /// Installs the degradation signal (e.g. dirty-page pressure). Evaluated
  /// outside `mu_` on the admission path; must be safe to call from any
  /// thread. Replacing an installed probe is only safe before concurrent use.
  void SetPressureProbe(std::function<bool()> probe);

  /// Evaluates the pressure probe now and returns the degraded flag.
  bool Degraded();

  /// Gate for *new* sessions: kUnavailable while degraded (existing
  /// sessions keep their slots and leases). Called by SessionManager before
  /// creating a session; no slot is consumed.
  Status AdmitNewSession();

  AdmissionStats Stats() const;

 private:
  struct Waiter {
    explicit Waiter(PriorityClass c) : cls(c) {}
    const PriorityClass cls;
    bool granted = false;
    bool shed = false;
    CondVar cv;
  };

  /// Hands the free slot to the oldest waiter of the best waiting class.
  void GrantLocked() TENDAX_REQUIRES(mu_);
  /// Removes `w` from its class queue (no-op if already granted/removed).
  void UnlinkLocked(Waiter* w) TENDAX_REQUIRES(mu_);
  uint64_t RetryAfterLocked() const TENDAX_REQUIRES(mu_);
  size_t QueuedLocked() const TENDAX_REQUIRES(mu_);
  void ShedLocked(PriorityClass cls) TENDAX_REQUIRES(mu_);
  void PublishGaugesLocked() TENDAX_REQUIRES(mu_);

  const AdmissionOptions options_;

  mutable Mutex mu_{"admission.mu", lockorder::kRankServer};
  size_t inflight_ TENDAX_GUARDED_BY(mu_) = 0;
  std::deque<Waiter*> queues_[kPriorityClassCount] TENDAX_GUARDED_BY(mu_);
  AdmissionStats stats_ TENDAX_GUARDED_BY(mu_);

  std::function<bool()> probe_;
  std::atomic<bool> degraded_{false};

  Counter* m_admitted_[kPriorityClassCount] = {};
  Counter* m_shed_[kPriorityClassCount] = {};
  Counter* m_deadline_exceeded_ = nullptr;
  Counter* m_sessions_refused_ = nullptr;
  Gauge* m_inflight_ = nullptr;
  Gauge* m_queued_ = nullptr;
  Gauge* m_degraded_ = nullptr;
  Histogram* m_queue_wait_ = nullptr;
  Histogram* m_retry_after_ = nullptr;
};

}  // namespace tendax

#endif  // TENDAX_COLLAB_ADMISSION_H_

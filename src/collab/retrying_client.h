#ifndef TENDAX_COLLAB_RETRYING_CLIENT_H_
#define TENDAX_COLLAB_RETRYING_CLIENT_H_

#include <functional>
#include <string>
#include <vector>

#include "collab/wire.h"
#include "util/random.h"

namespace tendax {

/// Retry/backoff knobs for a client driving a lossy transport.
struct RetryOptions {
  /// Attempts per logical command before giving up (first try included).
  int max_attempts = 10;
  /// Exponential backoff: wait ~base * 2^attempt (with jitter), capped.
  uint64_t base_backoff_micros = 200;
  uint64_t max_backoff_micros = 50'000;
  /// Seed for backoff jitter and idempotency-key salting.
  uint64_t seed = 1;
  /// How to spend the backoff. Defaults to not sleeping at all — the
  /// in-process transports are synchronous, so backoff is bookkeeping
  /// (recorded in stats) rather than real waiting. Wire a real sleep in
  /// here when driving an asynchronous transport.
  std::function<void(uint64_t micros)> sleep_fn;
  /// Optional registry for client-side "client.*" counters mirroring
  /// RetryStats. May be null; must outlive the client when set.
  MetricsRegistry* metrics = nullptr;
  /// Deadline budget stamped on every outgoing command (0 = none). The
  /// absolute deadline is computed once per logical Call — it covers all
  /// retries of that command — and the server rejects the frame at dispatch
  /// once it has passed, and caps lock waits/scans by the remaining budget.
  uint64_t default_deadline_micros = 0;
  /// Clock used for deadline stamping and breaker cooldowns. Must be the
  /// same clock domain as the server's when deadlines are enabled (the
  /// deadline crosses the wire as an absolute timestamp). Null = a shared
  /// SystemClock.
  Clock* clock = nullptr;
  /// Circuit breaker: after this many *consecutive* kUnavailable responses
  /// the breaker opens and calls fail fast (kUnavailable, no wire traffic)
  /// until `breaker_cooldown_micros` passes; the next call is then a
  /// half-open probe — success closes the breaker, another kUnavailable
  /// re-opens it. 0 disables the breaker.
  int breaker_threshold = 0;
  uint64_t breaker_cooldown_micros = 100'000;
};

/// The jittered-backoff window for retry `attempt` (0-based): base * 2^n,
/// saturating instead of wrapping for large attempt counts, clamped to
/// `cap`. Exposed for the overflow regression test.
uint64_t BackoffWindowMicros(uint64_t base, int attempt, uint64_t cap);

/// Client-side observability for the retry machinery.
struct RetryStats {
  uint64_t calls = 0;          // logical commands issued
  uint64_t attempts = 0;       // wire attempts (>= calls)
  uint64_t timeouts = 0;       // attempts lost in the transport
  uint64_t wire_errors = 0;    // frames damaged in flight (checksum/codec)
  uint64_t exhausted = 0;      // commands that ran out of attempts
  uint64_t backoff_micros = 0; // total backoff budgeted
  uint64_t resyncs = 0;        // change-stream resyncs observed
  uint64_t unavailable = 0;    // typed kUnavailable (shed) responses seen
  uint64_t unavailable_without_hint = 0;  // ... that carried no retry-after
  uint64_t retry_after_honored = 0;  // server hint overrode local backoff
  uint64_t breaker_opens = 0;        // closed/half-open -> open transitions
  uint64_t breaker_short_circuits = 0;  // calls failed fast while open
};

/// The editor side of the resilient session protocol: wraps a
/// `WireTransport` with per-command idempotency keys, timeouts-as-status,
/// and exponential backoff with jitter, and tracks the change-stream
/// cursor (`last_seq`) for resumable delivery.
///
/// A command is retried only on transport-level loss (timeout / damaged
/// frame); clean server-side errors (kOutOfRange, kPermissionDenied, ...)
/// are surfaced to the caller unchanged. Because retries reuse the same
/// idempotency key, the server applies each logical command at most once
/// no matter how often the transport duplicates or redelivers it.
class RetryingClient {
 public:
  explicit RetryingClient(WireTransport* transport, RetryOptions options = {});

  /// Issues one logical command: assigns an idempotency key (unless the
  /// command already carries one or is exempt), retries across transport
  /// loss, and returns the decoded response.
  Result<WireResponse> Call(EditCommand command);

  // --- gesture helpers (thin wrappers over Call) ---
  Status Open(DocumentId doc);
  Status Close(DocumentId doc);
  Status Type(DocumentId doc, uint64_t pos, const std::string& text);
  Status Erase(DocumentId doc, uint64_t pos, uint64_t len);
  Result<std::string> GetText(DocumentId doc);
  /// Time-travel read (kGetTextAt): the document's text as of `version`.
  Result<std::string> GetTextAt(DocumentId doc, uint64_t version);
  Status SetCursor(DocumentId doc, uint64_t pos);
  Status Heartbeat();
  /// Fetches the server's metrics snapshot via kStats and verifies its
  /// checksum. Exempt from idempotency keys (reads current state).
  Result<MetricsSnapshot> ServerStats();

  /// One resumable-delivery exchange.
  struct Changes {
    /// Newly delivered events, in sequence order (resync markers elided).
    std::vector<ChangeEvent> events;
    /// True when the stream was trimmed (marker or sequence gap): the
    /// client's replica is stale and it must re-read a snapshot
    /// (`GetText`); events after this point are invalidation hints.
    bool resync_required = false;
  };

  /// Sends kResume with the current cursor, advances the cursor past the
  /// returned events, and reports whether a snapshot re-read is required.
  /// Safe to retry: a lost response costs nothing because the server keeps
  /// events buffered until they are acknowledged by a later PollChanges.
  Result<Changes> PollChanges();

  /// The change-stream cursor (highest sequence applied). Survives
  /// transport churn: carry it into a new client when reconnecting over a
  /// fresh transport to resume where the old connection left off.
  uint64_t last_seq() const { return last_seq_; }
  void set_last_seq(uint64_t seq) { last_seq_ = seq; }

  const RetryStats& stats() const { return stats_; }

  /// True while the circuit breaker is open (calls fail fast).
  bool breaker_open() const { return breaker_open_; }

 private:
  Clock* clock() const;

  WireTransport* const transport_;
  const RetryOptions options_;
  Random rng_;
  uint64_t key_salt_;
  uint64_t next_key_ = 0;
  uint64_t last_seq_ = 0;
  RetryStats stats_;

  // Circuit-breaker state (single-threaded like the rest of the client).
  int consecutive_unavailable_ = 0;
  bool breaker_open_ = false;
  uint64_t breaker_opened_at_ = 0;

  // Registry mirrors of stats_ (null without options.metrics).
  Counter* m_calls_ = nullptr;
  Counter* m_attempts_ = nullptr;
  Counter* m_retries_ = nullptr;
  Counter* m_timeouts_ = nullptr;
  Counter* m_wire_errors_ = nullptr;
  Counter* m_exhausted_ = nullptr;
  Counter* m_resyncs_ = nullptr;
  Counter* m_unavailable_ = nullptr;
  Counter* m_retry_after_honored_ = nullptr;
  Counter* m_breaker_opens_ = nullptr;
  Counter* m_breaker_short_circuits_ = nullptr;
};

}  // namespace tendax

#endif  // TENDAX_COLLAB_RETRYING_CLIENT_H_

#ifndef TENDAX_COLLAB_UNDO_MANAGER_H_
#define TENDAX_COLLAB_UNDO_MANAGER_H_

#include <map>
#include <string>
#include <vector>

#include "text/text_store.h"
#include "util/ids.h"
#include "util/mutex.h"
#include "util/result.h"

namespace tendax {

/// Kind of a recorded editing operation.
enum class OpKind : uint8_t { kInsert = 1, kDelete = 2 };

/// One entry of the server-wide operation log used for undo/redo.
struct EditOp {
  uint64_t op_id = 0;
  DocumentId doc;
  UserId user;
  Version version = 0;
  OpKind kind = OpKind::kInsert;
  std::vector<CharId> chars;
  std::string text;
  bool undone = false;
  uint64_t undo_seq = 0;  // when it was undone (redo re-applies newest first)
};

/// Local and global undo/redo as *compensating transactions* — the paper's
/// headline collaboration feature. Because deleted characters are
/// tombstoned (never removed), every inverse is exact:
///
///   undo(insert) = tombstone those characters      redo = resurrect them
///   undo(delete) = resurrect those characters      redo = tombstone again
///
/// *Local* undo reverts the calling user's most recent op in a document;
/// *global* undo reverts the most recent op by anyone. Neither touches
/// other users' later edits (character identity, not positions, addresses
/// the targets), which is exactly what makes undo safe under concurrency.
class UndoManager {
 public:
  explicit UndoManager(TextStore* text);

  /// Records a committed editing operation (editors call this after each
  /// successful insert/paste or delete).
  void RecordInsert(UserId user, DocumentId doc, const EditResult& result,
                    const std::string& text) TENDAX_EXCLUDES(mu_);
  void RecordDelete(UserId user, DocumentId doc, const EditResult& result,
                    const std::string& text) TENDAX_EXCLUDES(mu_);

  /// Undoes the calling user's latest not-yet-undone op in `doc`.
  Result<EditOp> UndoLocal(UserId user, DocumentId doc);
  /// Undoes the latest not-yet-undone op in `doc` regardless of author;
  /// `user` is the actor performing the compensation.
  Result<EditOp> UndoGlobal(UserId user, DocumentId doc);
  /// Re-applies the calling user's most recently undone op.
  Result<EditOp> RedoLocal(UserId user, DocumentId doc);
  /// Re-applies the most recently undone op by anyone.
  Result<EditOp> RedoGlobal(UserId user, DocumentId doc);

  /// Ops recorded for a document, oldest first (for tests/inspection).
  std::vector<EditOp> History(DocumentId doc) const TENDAX_EXCLUDES(mu_);

 private:
  Result<EditOp> UndoImpl(UserId actor, DocumentId doc, bool local)
      TENDAX_EXCLUDES(mu_);
  Result<EditOp> RedoImpl(UserId actor, DocumentId doc, bool local)
      TENDAX_EXCLUDES(mu_);
  Status ApplyInverse(UserId actor, const EditOp& op);
  Status ApplyForward(UserId actor, const EditOp& op);

  TextStore* const text_;

  // Dropped across the Apply* calls into the text store (rank kRankTable):
  // Undo/RedoImpl pick the target under the lock, edit outside, re-lock to
  // mark it.
  mutable Mutex mu_{"undo.mu", lockorder::kRankUndo};
  std::map<uint64_t, std::vector<EditOp>> history_
      TENDAX_GUARDED_BY(mu_);  // doc -> ops in order
  uint64_t next_op_id_ TENDAX_GUARDED_BY(mu_) = 1;
  uint64_t next_undo_seq_ TENDAX_GUARDED_BY(mu_) = 1;
};

}  // namespace tendax

#endif  // TENDAX_COLLAB_UNDO_MANAGER_H_

#ifndef TENDAX_COLLAB_WIRE_H_
#define TENDAX_COLLAB_WIRE_H_

#include <string>
#include <vector>

#include "collab/editor.h"
#include "txn/events.h"
#include "util/result.h"
#include "util/slice.h"

namespace tendax {

/// Editor gestures as wire messages. The original demo ran GUI editors on
/// Windows, Linux and macOS against one database over a LAN; this codec is
/// the reproduction's stand-in for that protocol: every gesture and every
/// change notification round-trips through a compact binary encoding, so a
/// remote editor only ever exchanges bytes with the server.
enum class CommandKind : uint8_t {
  kOpen = 1,
  kClose = 2,
  kType = 3,
  kErase = 4,
  kCopy = 5,       // returns a clipboard handle held server-side
  kPaste = 6,
  kUndo = 7,
  kRedo = 8,
  kUndoAnyone = 9,
  kRedoAnyone = 10,
  kGetText = 11,
  kSetCursor = 12,
  kAnnotate = 13,
  kApplyLayout = 14,
};

/// One editor gesture on the wire.
struct EditCommand {
  CommandKind kind = CommandKind::kGetText;
  DocumentId doc;
  uint64_t pos = 0;
  uint64_t len = 0;
  std::string text;   // kType/kPaste payload, kAnnotate note, layout attr
  std::string extra;  // layout value
};

/// The server's answer: a status plus an optional payload (document text,
/// clipboard id, ...).
struct WireResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::string payload;
};

// --- codec ---

std::string EncodeCommand(const EditCommand& command);
Result<EditCommand> DecodeCommand(Slice bytes);

std::string EncodeResponse(const WireResponse& response);
Result<WireResponse> DecodeResponse(Slice bytes);

/// Change notifications cross the wire too (server -> editor push).
std::string EncodeEvent(const ChangeEvent& event);
Result<ChangeEvent> DecodeEvent(Slice bytes);
std::string EncodeEventBatch(const ChangeBatch& batch);
Result<ChangeBatch> DecodeEventBatch(Slice bytes);

/// Server-side endpoint for one remote editor: decodes command bytes,
/// executes them against the wrapped `Editor`, and encodes the response.
/// Clipboards from kCopy stay server-side and are referenced by handle in
/// kPaste (`text` = handle), exactly like a GUI client would do.
class RemoteEditorEndpoint {
 public:
  explicit RemoteEditorEndpoint(Editor* editor) : editor_(editor) {}

  /// One request/response exchange.
  std::string Handle(Slice command_bytes);

  /// Pending change notifications, encoded for the wire.
  Result<std::string> PollEventsWire();

 private:
  WireResponse Execute(const EditCommand& command);

  Editor* const editor_;
  std::vector<std::vector<PasteChar>> clipboards_;
};

}  // namespace tendax

#endif  // TENDAX_COLLAB_WIRE_H_

#ifndef TENDAX_COLLAB_WIRE_H_
#define TENDAX_COLLAB_WIRE_H_

#include <array>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "collab/editor.h"
#include "txn/events.h"
#include "util/result.h"
#include "util/slice.h"

namespace tendax {

/// Editor gestures as wire messages. The original demo ran GUI editors on
/// Windows, Linux and macOS against one database over a LAN; this codec is
/// the reproduction's stand-in for that protocol: every gesture and every
/// change notification round-trips through a compact binary encoding, so a
/// remote editor only ever exchanges bytes with the server.
enum class CommandKind : uint8_t {
  kOpen = 1,
  kClose = 2,
  kType = 3,
  kErase = 4,
  kCopy = 5,       // returns a clipboard handle held server-side
  kPaste = 6,
  kUndo = 7,
  kRedo = 8,
  kUndoAnyone = 9,
  kRedoAnyone = 10,
  kGetText = 11,
  kSetCursor = 12,
  kAnnotate = 13,
  kApplyLayout = 14,
  kHeartbeat = 15,  // lease renewal; no payload
  kResume = 16,     // `pos` = last applied seq; payload = SeqEvent batch
  kStats = 17,      // payload = checksummed EncodeMetricsSnapshot bytes
  kGetTextAt = 18,  // time travel: `pos` = version; payload = text at it
};

/// Highest valid `CommandKind` value; `DecodeCommand` rejects anything
/// outside [1, kCommandKindMax] with kInvalidArgument.
constexpr uint8_t kCommandKindMax = 18;

/// Lowercase short name of a command kind, e.g. "type"; "?" for values
/// outside the enum. Used for per-command metric names.
const char* CommandKindName(CommandKind kind);

/// One editor gesture on the wire.
struct EditCommand {
  CommandKind kind = CommandKind::kGetText;
  /// Idempotency key. 0 = none; otherwise the server caches the response
  /// under this key and a retried duplicate returns the cached response
  /// instead of executing twice. Clients assign a fresh key per logical
  /// command and reuse it across retries of that command.
  uint64_t request_id = 0;
  DocumentId doc;
  uint64_t pos = 0;
  uint64_t len = 0;
  std::string text;   // kType/kPaste payload, kAnnotate note, layout attr
  std::string extra;  // layout value
  /// Absolute request deadline in server-clock microseconds; 0 = none.
  /// Absolute (not a relative budget) so a frame that sat in a retry queue
  /// arrives already-expired and is rejected at dispatch instead of doing
  /// work nobody is waiting for. The remaining budget caps lock waits and
  /// long scans downstream (see util/deadline.h).
  uint64_t deadline_micros = 0;
};

/// The server's answer: a status plus an optional payload (document text,
/// clipboard id, encoded SeqEvent batch, ...).
struct WireResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::string payload;
  /// Server-computed backoff hint, nonzero iff `code == kUnavailable`: how
  /// long the client should wait before retrying. Overrides the client's
  /// own exponential backoff (the server can see the whole queue; the
  /// client can't).
  uint64_t retry_after_micros = 0;
};

// --- codec ---
//
// Decoders are strict: unknown enum values and trailing bytes are rejected
// with kInvalidArgument, truncated input with kCorruption. A frame either
// parses exactly or not at all — there is no best-effort acceptance.

std::string EncodeCommand(const EditCommand& command);
Result<EditCommand> DecodeCommand(Slice bytes);

std::string EncodeResponse(const WireResponse& response);
Result<WireResponse> DecodeResponse(Slice bytes);

/// Change notifications cross the wire too (server -> editor push).
std::string EncodeEvent(const ChangeEvent& event);
Result<ChangeEvent> DecodeEvent(Slice bytes);
std::string EncodeEventBatch(const ChangeBatch& batch);
Result<ChangeBatch> DecodeEventBatch(Slice bytes);

/// Sequence-stamped events for the resumable change stream (kResume).
std::string EncodeSeqEventBatch(const std::vector<SeqEvent>& events);
Result<std::vector<SeqEvent>> DecodeSeqEventBatch(Slice bytes);

// --- frame integrity ---
//
// Frames crossing a real network carry a checksum envelope so in-flight
// corruption is detected at the receiving side and handled as frame loss
// (drop + retry) rather than leaking into command parsing.

/// Prepends a checksum header to `body`.
std::string SealFrame(const std::string& body);
/// Verifies and strips the checksum header; kCorruption on damage.
Result<std::string> OpenFrame(Slice frame);

// --- transport ---

/// One synchronous request/response exchange over sealed frames. A non-OK
/// result means the request or response frame was lost, damaged, or timed
/// out — the command may or may not have executed server-side, which is
/// exactly why commands carry idempotency keys.
class WireTransport {
 public:
  virtual ~WireTransport() = default;
  virtual Result<std::string> RoundTrip(const std::string& request) = 0;
};

class RemoteEditorEndpoint;

/// The lossless in-process transport: every frame is delivered intact.
class DirectTransport : public WireTransport {
 public:
  explicit DirectTransport(RemoteEditorEndpoint* endpoint)
      : endpoint_(endpoint) {}
  Result<std::string> RoundTrip(const std::string& request) override;

 private:
  RemoteEditorEndpoint* const endpoint_;
};

/// Server-side endpoint for one remote editor: decodes command bytes,
/// executes them against the wrapped `Editor`, and encodes the response.
/// Clipboards from kCopy stay server-side and are referenced by handle in
/// kPaste (`text` = handle), exactly like a GUI client would do.
///
/// The endpoint also deduplicates retried commands: responses to commands
/// carrying an idempotency key are cached (bounded, FIFO eviction), and a
/// duplicate delivery of the same key returns the cached response without
/// re-executing — at-most-once execution under at-least-once delivery.
class RemoteEditorEndpoint {
 public:
  explicit RemoteEditorEndpoint(Editor* editor, size_t dedup_capacity = 1024);

  /// One request/response exchange on raw (unsealed) command bytes.
  std::string Handle(Slice command_bytes);

  /// One exchange on checksummed frames: verifies the request envelope,
  /// handles the body, seals the response. A non-OK result means the
  /// request frame was damaged in flight and must be treated as lost.
  Result<std::string> HandleFrame(Slice sealed_request);

  /// Pending change notifications, encoded for the wire.
  Result<std::string> PollEventsWire();

  /// Duplicate deliveries answered from the cache (at-most-once proof).
  uint64_t dedup_hits() const { return dedup_hits_; }
  size_t dedup_entries() const { return dedup_.size(); }

  /// Requests rejected at dispatch because their deadline had already
  /// passed (no work done).
  uint64_t deadline_rejected() const { return deadline_rejected_; }

 private:
  WireResponse Execute(const EditCommand& command);

  Editor* const editor_;
  std::vector<std::vector<PasteChar>> clipboards_;
  const size_t dedup_capacity_;
  std::unordered_map<uint64_t, std::string> dedup_;  // key -> encoded response
  std::deque<uint64_t> dedup_order_;                 // FIFO eviction
  uint64_t dedup_hits_ = 0;
  uint64_t deadline_rejected_ = 0;

  // Registry-backed wire metrics, resolved from the editor's server-side
  // registry at construction (null when metrics are disabled). Dispatch
  // latency is kept per command kind; index 0 holds requests that failed to
  // decode ("wire.dispatch_micros.invalid").
  Counter* m_requests_ = nullptr;
  Counter* m_decode_errors_ = nullptr;
  Counter* m_dedup_hits_ = nullptr;
  Counter* m_deadline_rejected_ = nullptr;
  std::array<Histogram*, kCommandKindMax + 1> m_dispatch_{};
};

}  // namespace tendax

#endif  // TENDAX_COLLAB_WIRE_H_

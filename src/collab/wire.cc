#include "collab/wire.h"

#include <algorithm>

#include "collab/admission.h"
#include "storage/page.h"  // PageChecksum (FNV-1a), reused for frames
#include "util/clock.h"
#include "util/coding.h"
#include "util/deadline.h"

namespace tendax {

const char* CommandKindName(CommandKind kind) {
  switch (kind) {
    case CommandKind::kOpen:
      return "open";
    case CommandKind::kClose:
      return "close";
    case CommandKind::kType:
      return "type";
    case CommandKind::kErase:
      return "erase";
    case CommandKind::kCopy:
      return "copy";
    case CommandKind::kPaste:
      return "paste";
    case CommandKind::kUndo:
      return "undo";
    case CommandKind::kRedo:
      return "redo";
    case CommandKind::kUndoAnyone:
      return "undo_anyone";
    case CommandKind::kRedoAnyone:
      return "redo_anyone";
    case CommandKind::kGetText:
      return "get_text";
    case CommandKind::kSetCursor:
      return "set_cursor";
    case CommandKind::kAnnotate:
      return "annotate";
    case CommandKind::kApplyLayout:
      return "apply_layout";
    case CommandKind::kHeartbeat:
      return "heartbeat";
    case CommandKind::kResume:
      return "resume";
    case CommandKind::kStats:
      return "stats";
    case CommandKind::kGetTextAt:
      return "get_text_at";
  }
  return "?";
}

std::string EncodeCommand(const EditCommand& command) {
  std::string out;
  out.push_back(static_cast<char>(command.kind));
  PutVarint64(&out, command.request_id);
  PutVarint64(&out, command.doc.value);
  PutVarint64(&out, command.pos);
  PutVarint64(&out, command.len);
  PutLengthPrefixed(&out, command.text);
  PutLengthPrefixed(&out, command.extra);
  PutVarint64(&out, command.deadline_micros);
  return out;
}

Result<EditCommand> DecodeCommand(Slice bytes) {
  if (bytes.empty()) return Status::Corruption("empty command");
  const uint8_t kind = static_cast<uint8_t>(bytes[0]);
  if (kind < 1 || kind > kCommandKindMax) {
    return Status::InvalidArgument("unknown command kind " +
                                   std::to_string(kind));
  }
  EditCommand command;
  command.kind = static_cast<CommandKind>(kind);
  bytes.remove_prefix(1);
  uint64_t doc;
  Slice text, extra;
  if (!GetVarint64(&bytes, &command.request_id) ||
      !GetVarint64(&bytes, &doc) || !GetVarint64(&bytes, &command.pos) ||
      !GetVarint64(&bytes, &command.len) ||
      !GetLengthPrefixed(&bytes, &text) ||
      !GetLengthPrefixed(&bytes, &extra) ||
      !GetVarint64(&bytes, &command.deadline_micros)) {
    return Status::Corruption("truncated command");
  }
  if (!bytes.empty()) {
    return Status::InvalidArgument("trailing bytes after command");
  }
  command.doc = DocumentId(doc);
  command.text = text.ToString();
  command.extra = extra.ToString();
  return command;
}

std::string EncodeResponse(const WireResponse& response) {
  std::string out;
  out.push_back(static_cast<char>(response.code));
  PutLengthPrefixed(&out, response.message);
  PutLengthPrefixed(&out, response.payload);
  PutVarint64(&out, response.retry_after_micros);
  return out;
}

Result<WireResponse> DecodeResponse(Slice bytes) {
  if (bytes.empty()) return Status::Corruption("empty response");
  const uint8_t code = static_cast<uint8_t>(bytes[0]);
  if (code > static_cast<uint8_t>(kStatusCodeMax)) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(code));
  }
  WireResponse response;
  response.code = static_cast<StatusCode>(code);
  bytes.remove_prefix(1);
  Slice message, payload;
  if (!GetLengthPrefixed(&bytes, &message) ||
      !GetLengthPrefixed(&bytes, &payload) ||
      !GetVarint64(&bytes, &response.retry_after_micros)) {
    return Status::Corruption("truncated response");
  }
  if (!bytes.empty()) {
    return Status::InvalidArgument("trailing bytes after response");
  }
  response.message = message.ToString();
  response.payload = payload.ToString();
  return response;
}

std::string EncodeEvent(const ChangeEvent& event) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(event.kind));
  PutVarint64(&out, event.doc.value);
  PutVarint64(&out, event.user.value);
  PutVarint64(&out, event.version);
  PutVarint64(&out, event.at);
  PutVarint64(&out, event.anchor.value);
  PutVarint64(&out, event.count);
  PutLengthPrefixed(&out, event.detail);
  return out;
}

Result<ChangeEvent> DecodeEvent(Slice bytes) {
  ChangeEvent event;
  uint32_t kind;
  uint64_t doc, user, anchor;
  Slice detail;
  if (!GetVarint32(&bytes, &kind) || !GetVarint64(&bytes, &doc) ||
      !GetVarint64(&bytes, &user) || !GetVarint64(&bytes, &event.version) ||
      !GetVarint64(&bytes, &event.at) || !GetVarint64(&bytes, &anchor) ||
      !GetVarint64(&bytes, &event.count) ||
      !GetLengthPrefixed(&bytes, &detail)) {
    return Status::Corruption("truncated event");
  }
  if (kind < 1 || kind > kChangeKindMax) {
    return Status::InvalidArgument("unknown change kind " +
                                   std::to_string(kind));
  }
  if (!bytes.empty()) {
    return Status::InvalidArgument("trailing bytes after event");
  }
  event.kind = static_cast<ChangeKind>(kind);
  event.doc = DocumentId(doc);
  event.user = UserId(user);
  event.anchor = CharId(anchor);
  event.detail = detail.ToString();
  return event;
}

std::string EncodeEventBatch(const ChangeBatch& batch) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(batch.size()));
  for (const ChangeEvent& event : batch) {
    PutLengthPrefixed(&out, EncodeEvent(event));
  }
  return out;
}

Result<ChangeBatch> DecodeEventBatch(Slice bytes) {
  uint32_t n;
  if (!GetVarint32(&bytes, &n)) return Status::Corruption("truncated batch");
  ChangeBatch batch;
  // The count is attacker-controlled; cap the upfront reservation so a
  // corrupt varint cannot demand a multi-gigabyte allocation. Each entry
  // needs at least one length byte, so a plausible n is bounded by the
  // remaining payload; growth beyond the cap goes through push_back.
  batch.reserve(std::min<size_t>(n, bytes.size()));
  for (uint32_t i = 0; i < n; ++i) {
    Slice one;
    if (!GetLengthPrefixed(&bytes, &one)) {
      return Status::Corruption("truncated batch entry");
    }
    auto event = DecodeEvent(one);
    if (!event.ok()) return event.status();
    batch.push_back(std::move(*event));
  }
  if (!bytes.empty()) {
    return Status::InvalidArgument("trailing bytes after batch");
  }
  return batch;
}

std::string EncodeSeqEventBatch(const std::vector<SeqEvent>& events) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(events.size()));
  for (const SeqEvent& entry : events) {
    PutVarint64(&out, entry.seq);
    PutLengthPrefixed(&out, EncodeEvent(entry.event));
  }
  return out;
}

Result<std::vector<SeqEvent>> DecodeSeqEventBatch(Slice bytes) {
  uint32_t n;
  if (!GetVarint32(&bytes, &n)) {
    return Status::Corruption("truncated seq batch");
  }
  std::vector<SeqEvent> events;
  events.reserve(std::min<size_t>(n, bytes.size()));
  for (uint32_t i = 0; i < n; ++i) {
    SeqEvent entry;
    Slice one;
    if (!GetVarint64(&bytes, &entry.seq) || !GetLengthPrefixed(&bytes, &one)) {
      return Status::Corruption("truncated seq batch entry");
    }
    auto event = DecodeEvent(one);
    if (!event.ok()) return event.status();
    entry.event = std::move(*event);
    events.push_back(std::move(entry));
  }
  if (!bytes.empty()) {
    return Status::InvalidArgument("trailing bytes after seq batch");
  }
  return events;
}

std::string SealFrame(const std::string& body) {
  std::string out;
  PutFixed32(&out, PageChecksum(body.data(), body.size()));
  out.append(body);
  return out;
}

Result<std::string> OpenFrame(Slice frame) {
  if (frame.size() < 4) return Status::Corruption("frame shorter than header");
  uint32_t stored;
  if (!GetFixed32(&frame, &stored)) {
    return Status::Corruption("frame shorter than header");
  }
  if (stored != PageChecksum(frame.data(), frame.size())) {
    return Status::Corruption("frame checksum mismatch");
  }
  return frame.ToString();
}

Result<std::string> DirectTransport::RoundTrip(const std::string& request) {
  return endpoint_->HandleFrame(request);
}

RemoteEditorEndpoint::RemoteEditorEndpoint(Editor* editor,
                                           size_t dedup_capacity)
    : editor_(editor), dedup_capacity_(dedup_capacity) {
  MetricsRegistry* metrics = editor_->metrics();
  if (metrics != nullptr) {
    m_requests_ = metrics->counter("wire.requests");
    m_decode_errors_ = metrics->counter("wire.decode_errors");
    m_dedup_hits_ = metrics->counter("wire.dedup_hits");
    m_deadline_rejected_ = metrics->counter("admission.deadline_rejected");
    m_dispatch_[0] = metrics->histogram("wire.dispatch_micros.invalid");
    for (uint8_t k = 1; k <= kCommandKindMax; ++k) {
      m_dispatch_[k] = metrics->histogram(
          std::string("wire.dispatch_micros.") +
          CommandKindName(static_cast<CommandKind>(k)));
    }
  }
}

std::string RemoteEditorEndpoint::Handle(Slice command_bytes) {
  MetricAdd(m_requests_);
  // Armed before decode so malformed requests record too; retargeted to the
  // per-command histogram once the kind is known. RAII covers every exit.
  ScopedTimer dispatch_timer(m_dispatch_[0]);
  auto command = DecodeCommand(command_bytes);
  if (!command.ok()) {
    MetricAdd(m_decode_errors_);
    WireResponse bad;
    bad.code = command.status().code();
    bad.message = command.status().message();
    return EncodeResponse(bad);
  }
  dispatch_timer.Redirect(m_dispatch_[static_cast<uint8_t>(command->kind)]);
  // Deadline check happens before any work: an already-expired request is
  // pure waste — the client stopped waiting — so reject it at the door.
  // The remaining budget (if any) is armed as the ambient RequestDeadline
  // around admission + execution so lock waits and scans stay within it.
  uint64_t budget_micros = 0;
  if (command->deadline_micros != 0 && editor_->clock() != nullptr) {
    const uint64_t now = editor_->clock()->NowMicros();
    if (now >= command->deadline_micros) {
      ++deadline_rejected_;
      MetricAdd(m_deadline_rejected_);
      WireResponse expired;
      expired.code = StatusCode::kDeadlineExceeded;
      expired.message = "deadline expired before dispatch";
      return EncodeResponse(expired);
    }
    budget_micros = command->deadline_micros - now;
  }
  // At-most-once execution: a retried command (same idempotency key)
  // returns the cached response instead of running again. Resume, heartbeat
  // and stats are exempt — they are idempotent by construction and must
  // reflect current state, never a cached snapshot of it.
  const bool dedupable = command->request_id != 0 &&
                         command->kind != CommandKind::kResume &&
                         command->kind != CommandKind::kHeartbeat &&
                         command->kind != CommandKind::kStats;
  if (dedupable) {
    auto it = dedup_.find(command->request_id);
    if (it != dedup_.end()) {
      ++dedup_hits_;
      MetricAdd(m_dedup_hits_);
      return it->second;
    }
  }
  std::string encoded;
  {
    ScopedRequestDeadline scoped_deadline(budget_micros);
    // Admission sits after the dedup lookup (a cached answer costs nothing
    // and must stay reachable even under shed) and inside the deadline
    // scope (queue wait counts against the request's budget).
    AdmissionController* admission = editor_->admission();
    AdmissionController::Pass pass(admission,
                                   ClassifyCommand(command->kind));
    const auto& ticket = pass.ticket();
    if (!ticket.status.ok()) {
      WireResponse refused;
      refused.code = ticket.status.code();
      refused.message = ticket.status.message();
      refused.retry_after_micros = ticket.retry_after_micros;
      return EncodeResponse(refused);
    }
    encoded = EncodeResponse(Execute(*command));
  }
  if (dedupable) {
    if (dedup_.size() >= dedup_capacity_ && !dedup_order_.empty()) {
      dedup_.erase(dedup_order_.front());
      dedup_order_.pop_front();
    }
    dedup_.emplace(command->request_id, encoded);
    dedup_order_.push_back(command->request_id);
  }
  return encoded;
}

Result<std::string> RemoteEditorEndpoint::HandleFrame(Slice sealed_request) {
  auto body = OpenFrame(sealed_request);
  // A damaged request frame is indistinguishable from a lost one: the
  // caller must surface a timeout so the client retries.
  if (!body.ok()) return body.status();
  return SealFrame(Handle(*body));
}

WireResponse RemoteEditorEndpoint::Execute(const EditCommand& command) {
  WireResponse response;
  auto fail = [&response](const Status& st) {
    response.code = st.code();
    response.message = st.message();
  };
  switch (command.kind) {
    case CommandKind::kOpen:
      fail(editor_->Open(command.doc));
      break;
    case CommandKind::kClose:
      fail(editor_->Close(command.doc));
      break;
    case CommandKind::kType:
      fail(editor_->Type(command.doc, command.pos, command.text));
      break;
    case CommandKind::kErase:
      fail(editor_->Erase(command.doc, command.pos, command.len));
      break;
    case CommandKind::kCopy: {
      auto clip = editor_->CopyRange(command.doc, command.pos, command.len);
      if (!clip.ok()) {
        fail(clip.status());
        break;
      }
      clipboards_.push_back(std::move(*clip));
      response.payload = std::to_string(clipboards_.size() - 1);
      break;
    }
    case CommandKind::kPaste: {
      size_t handle = 0;
      if (!command.text.empty()) handle = std::stoull(command.text);
      if (handle >= clipboards_.size()) {
        fail(Status::InvalidArgument("unknown clipboard handle"));
        break;
      }
      fail(editor_->PasteAt(command.doc, command.pos, clipboards_[handle]));
      break;
    }
    case CommandKind::kUndo:
      fail(editor_->Undo(command.doc));
      break;
    case CommandKind::kRedo:
      fail(editor_->Redo(command.doc));
      break;
    case CommandKind::kUndoAnyone:
      fail(editor_->UndoAnyone(command.doc));
      break;
    case CommandKind::kRedoAnyone:
      fail(editor_->RedoAnyone(command.doc));
      break;
    case CommandKind::kGetText: {
      auto text = editor_->Text(command.doc);
      if (!text.ok()) {
        fail(text.status());
        break;
      }
      response.payload = std::move(*text);
      break;
    }
    case CommandKind::kSetCursor:
      fail(editor_->SetCursor(command.doc, command.pos));
      break;
    case CommandKind::kAnnotate:
      fail(editor_->Annotate(command.doc, command.pos, command.text)
               .status());
      break;
    case CommandKind::kApplyLayout:
      fail(editor_->ApplyLayout(command.doc, command.pos, command.len,
                                command.text, command.extra));
      break;
    case CommandKind::kHeartbeat:
      fail(editor_->Heartbeat());
      break;
    case CommandKind::kResume: {
      auto events = editor_->ResumeEvents(command.pos);
      if (!events.ok()) {
        fail(events.status());
        break;
      }
      response.payload = EncodeSeqEventBatch(*events);
      break;
    }
    case CommandKind::kStats: {
      auto snapshot = editor_->ServerStats();
      if (!snapshot.ok()) {
        fail(snapshot.status());
        break;
      }
      response.payload = EncodeMetricsSnapshot(*snapshot);
      break;
    }
    case CommandKind::kGetTextAt: {
      auto text = editor_->TextAt(command.doc, command.pos);
      if (!text.ok()) {
        fail(text.status());
        break;
      }
      response.payload = std::move(*text);
      break;
    }
  }
  return response;
}

Result<std::string> RemoteEditorEndpoint::PollEventsWire() {
  auto events = editor_->PollEvents();
  if (!events.ok()) return events.status();
  return EncodeEventBatch(*events);
}

}  // namespace tendax

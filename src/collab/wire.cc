#include "collab/wire.h"

#include <algorithm>

#include "util/coding.h"

namespace tendax {

std::string EncodeCommand(const EditCommand& command) {
  std::string out;
  out.push_back(static_cast<char>(command.kind));
  PutVarint64(&out, command.doc.value);
  PutVarint64(&out, command.pos);
  PutVarint64(&out, command.len);
  PutLengthPrefixed(&out, command.text);
  PutLengthPrefixed(&out, command.extra);
  return out;
}

Result<EditCommand> DecodeCommand(Slice bytes) {
  if (bytes.empty()) return Status::Corruption("empty command");
  EditCommand command;
  command.kind = static_cast<CommandKind>(bytes[0]);
  bytes.remove_prefix(1);
  uint64_t doc;
  Slice text, extra;
  if (!GetVarint64(&bytes, &doc) || !GetVarint64(&bytes, &command.pos) ||
      !GetVarint64(&bytes, &command.len) ||
      !GetLengthPrefixed(&bytes, &text) ||
      !GetLengthPrefixed(&bytes, &extra)) {
    return Status::Corruption("truncated command");
  }
  command.doc = DocumentId(doc);
  command.text = text.ToString();
  command.extra = extra.ToString();
  return command;
}

std::string EncodeResponse(const WireResponse& response) {
  std::string out;
  out.push_back(static_cast<char>(response.code));
  PutLengthPrefixed(&out, response.message);
  PutLengthPrefixed(&out, response.payload);
  return out;
}

Result<WireResponse> DecodeResponse(Slice bytes) {
  if (bytes.empty()) return Status::Corruption("empty response");
  WireResponse response;
  response.code = static_cast<StatusCode>(bytes[0]);
  bytes.remove_prefix(1);
  Slice message, payload;
  if (!GetLengthPrefixed(&bytes, &message) ||
      !GetLengthPrefixed(&bytes, &payload)) {
    return Status::Corruption("truncated response");
  }
  response.message = message.ToString();
  response.payload = payload.ToString();
  return response;
}

std::string EncodeEvent(const ChangeEvent& event) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(event.kind));
  PutVarint64(&out, event.doc.value);
  PutVarint64(&out, event.user.value);
  PutVarint64(&out, event.version);
  PutVarint64(&out, event.at);
  PutVarint64(&out, event.anchor.value);
  PutVarint64(&out, event.count);
  PutLengthPrefixed(&out, event.detail);
  return out;
}

Result<ChangeEvent> DecodeEvent(Slice bytes) {
  ChangeEvent event;
  uint32_t kind;
  uint64_t doc, user, anchor;
  Slice detail;
  if (!GetVarint32(&bytes, &kind) || !GetVarint64(&bytes, &doc) ||
      !GetVarint64(&bytes, &user) || !GetVarint64(&bytes, &event.version) ||
      !GetVarint64(&bytes, &event.at) || !GetVarint64(&bytes, &anchor) ||
      !GetVarint64(&bytes, &event.count) ||
      !GetLengthPrefixed(&bytes, &detail)) {
    return Status::Corruption("truncated event");
  }
  event.kind = static_cast<ChangeKind>(kind);
  event.doc = DocumentId(doc);
  event.user = UserId(user);
  event.anchor = CharId(anchor);
  event.detail = detail.ToString();
  return event;
}

std::string EncodeEventBatch(const ChangeBatch& batch) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(batch.size()));
  for (const ChangeEvent& event : batch) {
    PutLengthPrefixed(&out, EncodeEvent(event));
  }
  return out;
}

Result<ChangeBatch> DecodeEventBatch(Slice bytes) {
  uint32_t n;
  if (!GetVarint32(&bytes, &n)) return Status::Corruption("truncated batch");
  ChangeBatch batch;
  // The count is attacker-controlled; cap the upfront reservation so a
  // corrupt varint cannot demand a multi-gigabyte allocation. Each entry
  // needs at least one length byte, so a plausible n is bounded by the
  // remaining payload; growth beyond the cap goes through push_back.
  batch.reserve(std::min<size_t>(n, bytes.size()));
  for (uint32_t i = 0; i < n; ++i) {
    Slice one;
    if (!GetLengthPrefixed(&bytes, &one)) {
      return Status::Corruption("truncated batch entry");
    }
    auto event = DecodeEvent(one);
    if (!event.ok()) return event.status();
    batch.push_back(std::move(*event));
  }
  return batch;
}

std::string RemoteEditorEndpoint::Handle(Slice command_bytes) {
  auto command = DecodeCommand(command_bytes);
  if (!command.ok()) {
    WireResponse bad;
    bad.code = command.status().code();
    bad.message = command.status().message();
    return EncodeResponse(bad);
  }
  return EncodeResponse(Execute(*command));
}

WireResponse RemoteEditorEndpoint::Execute(const EditCommand& command) {
  WireResponse response;
  auto fail = [&response](const Status& st) {
    response.code = st.code();
    response.message = st.message();
  };
  switch (command.kind) {
    case CommandKind::kOpen:
      fail(editor_->Open(command.doc));
      break;
    case CommandKind::kClose:
      fail(editor_->Close(command.doc));
      break;
    case CommandKind::kType:
      fail(editor_->Type(command.doc, command.pos, command.text));
      break;
    case CommandKind::kErase:
      fail(editor_->Erase(command.doc, command.pos, command.len));
      break;
    case CommandKind::kCopy: {
      auto clip = editor_->CopyRange(command.doc, command.pos, command.len);
      if (!clip.ok()) {
        fail(clip.status());
        break;
      }
      clipboards_.push_back(std::move(*clip));
      response.payload = std::to_string(clipboards_.size() - 1);
      break;
    }
    case CommandKind::kPaste: {
      size_t handle = 0;
      if (!command.text.empty()) handle = std::stoull(command.text);
      if (handle >= clipboards_.size()) {
        fail(Status::InvalidArgument("unknown clipboard handle"));
        break;
      }
      fail(editor_->PasteAt(command.doc, command.pos, clipboards_[handle]));
      break;
    }
    case CommandKind::kUndo:
      fail(editor_->Undo(command.doc));
      break;
    case CommandKind::kRedo:
      fail(editor_->Redo(command.doc));
      break;
    case CommandKind::kUndoAnyone:
      fail(editor_->UndoAnyone(command.doc));
      break;
    case CommandKind::kRedoAnyone:
      fail(editor_->RedoAnyone(command.doc));
      break;
    case CommandKind::kGetText: {
      auto text = editor_->Text(command.doc);
      if (!text.ok()) {
        fail(text.status());
        break;
      }
      response.payload = std::move(*text);
      break;
    }
    case CommandKind::kSetCursor:
      fail(editor_->SetCursor(command.doc, command.pos));
      break;
    case CommandKind::kAnnotate:
      fail(editor_->Annotate(command.doc, command.pos, command.text)
               .status());
      break;
    case CommandKind::kApplyLayout:
      fail(editor_->ApplyLayout(command.doc, command.pos, command.len,
                                command.text, command.extra));
      break;
    default:
      fail(Status::InvalidArgument("unknown command kind"));
      break;
  }
  return response;
}

Result<std::string> RemoteEditorEndpoint::PollEventsWire() {
  auto events = editor_->PollEvents();
  if (!events.ok()) return events.status();
  return EncodeEventBatch(*events);
}

}  // namespace tendax

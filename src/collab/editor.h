#ifndef TENDAX_COLLAB_EDITOR_H_
#define TENDAX_COLLAB_EDITOR_H_

#include <memory>
#include <string>
#include <vector>

#include "collab/session_manager.h"
#include "collab/undo_manager.h"
#include "document/document_model.h"
#include "security/access_control.h"
#include "text/text_store.h"

namespace tendax {

class AdmissionController;
class Clock;

/// The services an editor client talks to (all owned by the server).
struct CollabServices {
  TextStore* text = nullptr;
  DocumentModel* docs = nullptr;
  AccessControl* acl = nullptr;
  MetaStore* meta = nullptr;
  SessionManager* sessions = nullptr;
  UndoManager* undo = nullptr;
  /// Server-wide metrics registry; null when the attaching server predates
  /// the observability layer or metrics were stripped.
  MetricsRegistry* metrics = nullptr;
  /// The server's clock (shared with the database). Used by the wire
  /// endpoint to judge request deadlines; null = deadlines unenforceable.
  Clock* clock = nullptr;
  /// Overload-admission gate in front of the wire endpoint; null or
  /// disabled = every request admitted (the pre-overload-layer behavior).
  AdmissionController* admission = nullptr;
};

/// A headless TeNDaX editor client: the word processor without the GUI.
/// Every gesture (typing, deleting, copy/paste, layouting, annotating,
/// undo/redo) checks access rights, runs as real-time transactions, and is
/// registered in the operation log so it can be undone locally or globally.
///
/// The original demo ran editors on Windows, Linux and macOS against one
/// database; here an Editor is an in-process client attached to a session.
class Editor {
 public:
  Editor(CollabServices services, SessionId session, UserId user);
  ~Editor();

  Editor(const Editor&) = delete;
  Editor& operator=(const Editor&) = delete;

  SessionId session() const { return session_; }
  UserId user() const { return user_; }

  // --- document handling ---
  Result<DocumentId> CreateDocument(const std::string& name);
  Status Open(DocumentId doc);
  Status Close(DocumentId doc);

  // --- text gestures ---
  Status Type(DocumentId doc, size_t pos, const std::string& text);
  Status Erase(DocumentId doc, size_t pos, size_t len);
  Result<std::vector<PasteChar>> CopyRange(DocumentId doc, size_t pos,
                                           size_t len);
  Status PasteAt(DocumentId doc, size_t pos,
                 const std::vector<PasteChar>& clipboard);
  /// Paste text that originated outside TeNDaX (tracked provenance).
  Status PasteExternal(DocumentId doc, size_t pos, const std::string& text,
                       const std::string& source);

  // --- layout / structure / annotation gestures ---
  Status ApplyLayout(DocumentId doc, size_t pos, size_t len,
                     const std::string& attr, const std::string& value);
  Result<ElementId> MarkSection(DocumentId doc, const std::string& label,
                                size_t pos, size_t len);
  Result<NoteId> Annotate(DocumentId doc, size_t pos,
                          const std::string& note);
  Result<ObjectId> InsertImage(DocumentId doc, size_t pos,
                               const std::string& name,
                               const std::string& bytes);
  Result<ObjectId> InsertTable(DocumentId doc, size_t pos,
                               const std::string& name, uint32_t rows,
                               uint32_t cols);

  // --- undo / redo ---
  Status Undo(DocumentId doc);        // local: my last op
  Status Redo(DocumentId doc);
  Status UndoAnyone(DocumentId doc);  // global: anyone's last op
  Status RedoAnyone(DocumentId doc);

  // --- view ---
  Result<std::string> Text(DocumentId doc);
  /// Time-travel read: the text as of `version` (served from an MVCC
  /// snapshot; no locks). Versions below the purge floor fail typed.
  Result<std::string> TextAt(DocumentId doc, Version version);
  Result<std::string> RenderMarkup(DocumentId doc);
  Status SetCursor(DocumentId doc, size_t pos);
  /// Change notifications accumulated since the last call.
  Result<std::vector<ChangeEvent>> PollEvents();

  // --- session resilience ---
  /// Renews the session lease (a liveness ping with no other effect).
  Status Heartbeat();
  /// Resumable delivery: acknowledges events up to `last_seq` and returns
  /// the retained suffix with sequence numbers. See SessionManager::Resume.
  Result<std::vector<SeqEvent>> ResumeEvents(uint64_t last_seq);

  // --- observability ---
  /// Point-in-time snapshot of the server's metrics registry (WAL, buffer
  /// pool, txn, lock, wire, and session counters/histograms). Backs the
  /// kStats wire command. FailedPrecondition when no registry is attached.
  Result<MetricsSnapshot> ServerStats() const;
  /// The attached registry, or null. Used by the wire endpoint to register
  /// its own dispatch metrics.
  MetricsRegistry* metrics() const { return services_.metrics; }
  /// The server clock, or null (deadlines then unenforceable at dispatch).
  Clock* clock() const { return services_.clock; }
  /// The server's admission controller, or null (no overload protection).
  AdmissionController* admission() const { return services_.admission; }

 private:
  CollabServices services_;
  SessionId session_;
  UserId user_;
};

}  // namespace tendax

#endif  // TENDAX_COLLAB_EDITOR_H_

#include "collab/editor.h"

#include "text/utf8.h"
#include "util/lock_order.h"

namespace tendax {

Editor::Editor(CollabServices services, SessionId session, UserId user)
    : services_(services), session_(session), user_(user) {}

// Destructors cannot propagate a Status; a failed disconnect only means the
// session was already reaped or the server is shutting down.
Editor::~Editor() { (void)services_.sessions->Disconnect(session_); }

Result<DocumentId> Editor::CreateDocument(const std::string& name) {
  auto doc = services_.text->CreateDocument(user_, name);
  if (!doc.ok()) return doc;
  TENDAX_RETURN_IF_ERROR(services_.sessions->OpenDocument(session_, *doc));
  return doc;
}

Status Editor::Open(DocumentId doc) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kRead));
  return services_.sessions->OpenDocument(session_, doc);
}

Status Editor::Close(DocumentId doc) {
  return services_.sessions->CloseDocument(session_, doc);
}

Status Editor::Type(DocumentId doc, size_t pos, const std::string& text) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kWrite));
  auto result = services_.text->InsertText(user_, doc, pos, text);
  if (!result.ok()) return result.status();
  services_.undo->RecordInsert(user_, doc, *result, text);
  return Status::OK();
}

Status Editor::Erase(DocumentId doc, size_t pos, size_t len) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kWrite));
  auto erased = services_.text->TextRange(doc, pos, len);
  if (!erased.ok()) return erased.status();
  auto result = services_.text->DeleteRange(user_, doc, pos, len);
  if (!result.ok()) return result.status();
  services_.undo->RecordDelete(user_, doc, *result, *erased);
  return Status::OK();
}

Result<std::vector<PasteChar>> Editor::CopyRange(DocumentId doc, size_t pos,
                                                 size_t len) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kRead));
  return services_.text->Copy(user_, doc, pos, len);
}

Status Editor::PasteAt(DocumentId doc, size_t pos,
                       const std::vector<PasteChar>& clipboard) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kWrite));
  auto result = services_.text->Paste(user_, doc, pos, clipboard);
  if (!result.ok()) return result.status();
  std::vector<uint32_t> cps;
  cps.reserve(clipboard.size());
  for (const PasteChar& c : clipboard) cps.push_back(c.cp);
  services_.undo->RecordInsert(user_, doc, *result, EncodeUtf8(cps));
  return Status::OK();
}

Status Editor::PasteExternal(DocumentId doc, size_t pos,
                             const std::string& text,
                             const std::string& source) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kWrite));
  auto result = services_.text->InsertText(user_, doc, pos, text, source);
  if (!result.ok()) return result.status();
  services_.undo->RecordInsert(user_, doc, *result, text);
  return Status::OK();
}

Status Editor::ApplyLayout(DocumentId doc, size_t pos, size_t len,
                           const std::string& attr, const std::string& value) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kLayout));
  return services_.docs->ApplyLayout(user_, doc, pos, len, attr, value)
      .status();
}

Result<ElementId> Editor::MarkSection(DocumentId doc, const std::string& label,
                                      size_t pos, size_t len) {
  TENDAX_RETURN_IF_ERROR(
      services_.acl->Require(user_, doc, Right::kStructure));
  return services_.docs->CreateElement(user_, doc, ElementId(), "section",
                                       label, pos, len);
}

Result<NoteId> Editor::Annotate(DocumentId doc, size_t pos,
                                const std::string& note) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kWrite));
  return services_.docs->AddNote(user_, doc, pos, note);
}

Result<ObjectId> Editor::InsertImage(DocumentId doc, size_t pos,
                                     const std::string& name,
                                     const std::string& bytes) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kWrite));
  return services_.docs->EmbedImage(user_, doc, pos, name, bytes);
}

Result<ObjectId> Editor::InsertTable(DocumentId doc, size_t pos,
                                     const std::string& name, uint32_t rows,
                                     uint32_t cols) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kWrite));
  return services_.docs->InsertTable(user_, doc, pos, name, rows, cols);
}

Status Editor::Undo(DocumentId doc) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kWrite));
  return services_.undo->UndoLocal(user_, doc).status();
}

Status Editor::Redo(DocumentId doc) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kWrite));
  return services_.undo->RedoLocal(user_, doc).status();
}

Status Editor::UndoAnyone(DocumentId doc) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kWrite));
  return services_.undo->UndoGlobal(user_, doc).status();
}

Status Editor::RedoAnyone(DocumentId doc) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kWrite));
  return services_.undo->RedoGlobal(user_, doc).status();
}

Result<std::string> Editor::Text(DocumentId doc) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kRead));
  return services_.text->Text(doc);
}

Result<std::string> Editor::TextAt(DocumentId doc, Version version) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kRead));
  return services_.text->TextAtVersion(doc, version);
}

Result<std::string> Editor::RenderMarkup(DocumentId doc) {
  TENDAX_RETURN_IF_ERROR(services_.acl->Require(user_, doc, Right::kRead));
  return services_.docs->RenderMarkup(doc);
}

Status Editor::SetCursor(DocumentId doc, size_t pos) {
  return services_.sessions->SetCursor(session_, doc, pos);
}

Result<std::vector<ChangeEvent>> Editor::PollEvents() {
  return services_.sessions->Poll(session_);
}

Status Editor::Heartbeat() { return services_.sessions->Heartbeat(session_); }

Result<std::vector<SeqEvent>> Editor::ResumeEvents(uint64_t last_seq) {
  return services_.sessions->Resume(session_, last_seq);
}

Result<MetricsSnapshot> Editor::ServerStats() const {
  if (services_.metrics == nullptr) {
    return Status::FailedPrecondition("no metrics registry attached");
  }
  // Fold the lock-order validator's counters into the snapshot so remote
  // scrapes surface any violation a surviving (non-aborting) run recorded.
  lockorder::PublishTo(services_.metrics);
  // Point-in-time gauges (live snapshot count, oldest snapshot age) are
  // recomputed at scrape time rather than maintained continuously.
  if (services_.text != nullptr) services_.text->RefreshMvccGauges();
  return services_.metrics->Snapshot();
}

}  // namespace tendax

#include "collab/admission.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "collab/wire.h"
#include "util/deadline.h"

namespace tendax {

const char* PriorityClassName(PriorityClass cls) {
  switch (cls) {
    case PriorityClass::kCritical:
      return "critical";
    case PriorityClass::kNormal:
      return "normal";
    case PriorityClass::kBackground:
      return "background";
  }
  return "?";
}

PriorityClass ClassifyCommand(CommandKind kind) {
  switch (kind) {
    case CommandKind::kHeartbeat:
    case CommandKind::kResume:
      return PriorityClass::kCritical;
    case CommandKind::kStats:
      return PriorityClass::kBackground;
    default:
      return PriorityClass::kNormal;
  }
}

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         MetricsRegistry* metrics)
    : options_(options) {
  if (metrics == nullptr) return;
  for (size_t c = 0; c < kPriorityClassCount; ++c) {
    const std::string suffix = PriorityClassName(static_cast<PriorityClass>(c));
    m_admitted_[c] = metrics->counter("admission.admitted." + suffix);
    m_shed_[c] = metrics->counter("admission.shed." + suffix);
  }
  m_deadline_exceeded_ = metrics->counter("admission.deadline_exceeded");
  m_sessions_refused_ = metrics->counter("admission.sessions_refused");
  m_inflight_ = metrics->gauge("admission.inflight");
  m_queued_ = metrics->gauge("admission.queued");
  m_degraded_ = metrics->gauge("admission.degraded");
  m_queue_wait_ = metrics->histogram("admission.queue_wait_micros");
  m_retry_after_ = metrics->histogram("admission.retry_after_micros");
}

void AdmissionController::SetPressureProbe(std::function<bool()> probe) {
  probe_ = std::move(probe);
}

bool AdmissionController::Degraded() {
  // The probe reaches into another subsystem (buffer pool), so it runs
  // without mu_ held; the cached flag is what the admission path consults.
  const bool degraded = probe_ ? probe_() : false;
  degraded_.store(degraded, std::memory_order_relaxed);
  MetricSet(m_degraded_, degraded ? 1 : 0);
  return degraded;
}

Status AdmissionController::AdmitNewSession() {
  if (!enabled() || !Degraded()) return Status::OK();
  {
    MutexLock lock(mu_);
    ++stats_.sessions_refused;
  }
  MetricAdd(m_sessions_refused_);
  return Status::Unavailable(
      "server is degraded (dirty-page pressure); not accepting new sessions");
}

size_t AdmissionController::QueuedLocked() const {
  size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

uint64_t AdmissionController::RetryAfterLocked() const {
  const uint64_t hint =
      options_.retry_after_base_micros * (1 + QueuedLocked());
  return std::max<uint64_t>(
      1, std::min(hint, options_.retry_after_max_micros));
}

void AdmissionController::ShedLocked(PriorityClass cls) {
  ++stats_.shed[static_cast<size_t>(cls)];
  MetricAdd(m_shed_[static_cast<size_t>(cls)]);
}

void AdmissionController::PublishGaugesLocked() {
  MetricSet(m_inflight_, static_cast<int64_t>(inflight_));
  MetricSet(m_queued_, static_cast<int64_t>(QueuedLocked()));
  stats_.inflight = inflight_;
  stats_.queued = QueuedLocked();
}

void AdmissionController::GrantLocked() {
  for (auto& q : queues_) {
    if (q.empty()) continue;
    Waiter* w = q.front();  // oldest waiter of the best waiting class
    q.pop_front();
    w->granted = true;
    ++inflight_;
    w->cv.NotifyOne();
    return;
  }
}

void AdmissionController::UnlinkLocked(Waiter* w) {
  auto& q = queues_[static_cast<size_t>(w->cls)];
  auto it = std::find(q.begin(), q.end(), w);
  if (it != q.end()) q.erase(it);
}

AdmissionController::Ticket AdmissionController::Admit(PriorityClass cls) {
  Ticket ticket;
  if (!enabled()) return ticket;

  const bool degraded =
      probe_ ? Degraded() : degraded_.load(std::memory_order_relaxed);
  if (degraded && cls == PriorityClass::kBackground) {
    MutexLock lock(mu_);
    ShedLocked(cls);
    ticket.retry_after_micros = RetryAfterLocked();
    MetricRecord(m_retry_after_, ticket.retry_after_micros);
    ticket.status =
        Status::Unavailable("server is degraded; background traffic shed");
    return ticket;
  }

  const auto enqueued_at = std::chrono::steady_clock::now();
  MutexLock lock(mu_);

  if (inflight_ < options_.max_inflight && QueuedLocked() == 0) {
    ++inflight_;
    ++stats_.admitted[static_cast<size_t>(cls)];
    MetricAdd(m_admitted_[static_cast<size_t>(cls)]);
    PublishGaugesLocked();
    return ticket;
  }

  if (QueuedLocked() >= options_.queue_depth) {
    // Queue full: the numerically-highest (least important) waiting class
    // is the shed victim. An arrival no better than that class is refused;
    // a better arrival displaces the victim class's *newest* waiter (the
    // one that has invested the least wait so far).
    size_t victim = kPriorityClassCount;
    for (size_t c = kPriorityClassCount; c-- > 0;) {
      if (!queues_[c].empty()) {
        victim = c;
        break;
      }
    }
    if (victim == kPriorityClassCount || static_cast<size_t>(cls) >= victim) {
      ShedLocked(cls);
      ticket.retry_after_micros = RetryAfterLocked();
      MetricRecord(m_retry_after_, ticket.retry_after_micros);
      ticket.status = Status::Unavailable("admission queue full");
      PublishGaugesLocked();
      return ticket;
    }
    Waiter* displaced = queues_[victim].back();
    queues_[victim].pop_back();
    displaced->shed = true;
    ShedLocked(displaced->cls);
    displaced->cv.NotifyOne();
  }

  Waiter self(cls);
  queues_[static_cast<size_t>(cls)].push_back(&self);
  PublishGaugesLocked();

  // Wait bounded by both the caller's remaining request budget and the
  // controller's own queue-wait cap.
  auto wait_deadline =
      enqueued_at + std::chrono::microseconds(options_.max_queue_wait_micros);
  const bool has_request_deadline = RequestDeadline::Armed();
  if (has_request_deadline) {
    wait_deadline = std::min(wait_deadline, RequestDeadline::Deadline());
  }

  while (!self.granted && !self.shed) {
    if (self.cv.WaitUntil(lock, wait_deadline) == std::cv_status::timeout &&
        !self.granted && !self.shed) {
      UnlinkLocked(&self);
      if (has_request_deadline && RequestDeadline::Expired()) {
        ++stats_.deadline_exceeded;
        MetricAdd(m_deadline_exceeded_);
        ticket.status = Status::DeadlineExceeded(
            "request deadline expired while queued for admission");
      } else {
        ShedLocked(cls);
        ticket.retry_after_micros = RetryAfterLocked();
        MetricRecord(m_retry_after_, ticket.retry_after_micros);
        ticket.status = Status::Unavailable("queued past max_queue_wait");
      }
      PublishGaugesLocked();
      return ticket;
    }
  }

  const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - enqueued_at)
                          .count();
  MetricRecord(m_queue_wait_, static_cast<uint64_t>(waited));

  if (self.shed) {
    ticket.retry_after_micros = RetryAfterLocked();
    MetricRecord(m_retry_after_, ticket.retry_after_micros);
    ticket.status = Status::Unavailable(
        "displaced from admission queue by higher-priority arrival");
    PublishGaugesLocked();
    return ticket;
  }

  // Granted: GrantLocked() already moved the slot to us.
  ++stats_.admitted[static_cast<size_t>(cls)];
  MetricAdd(m_admitted_[static_cast<size_t>(cls)]);
  PublishGaugesLocked();
  return ticket;
}

void AdmissionController::Release() {
  if (!enabled()) return;
  MutexLock lock(mu_);
  if (inflight_ > 0) --inflight_;
  GrantLocked();
  PublishGaugesLocked();
}

AdmissionStats AdmissionController::Stats() const {
  MutexLock lock(mu_);
  AdmissionStats out = stats_;
  out.inflight = inflight_;
  out.queued = QueuedLocked();
  out.degraded = degraded_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace tendax

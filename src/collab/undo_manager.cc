#include "collab/undo_manager.h"

namespace tendax {

UndoManager::UndoManager(TextStore* text) : text_(text) {}

void UndoManager::RecordInsert(UserId user, DocumentId doc,
                               const EditResult& result,
                               const std::string& text) {
  MutexLock lock(mu_);
  EditOp op;
  op.op_id = next_op_id_++;
  op.doc = doc;
  op.user = user;
  op.version = result.version;
  op.kind = OpKind::kInsert;
  op.chars = result.chars;
  op.text = text;
  history_[doc.value].push_back(std::move(op));
}

void UndoManager::RecordDelete(UserId user, DocumentId doc,
                               const EditResult& result,
                               const std::string& text) {
  MutexLock lock(mu_);
  EditOp op;
  op.op_id = next_op_id_++;
  op.doc = doc;
  op.user = user;
  op.version = result.version;
  op.kind = OpKind::kDelete;
  op.chars = result.chars;
  op.text = text;
  history_[doc.value].push_back(std::move(op));
}

Status UndoManager::ApplyInverse(UserId actor, const EditOp& op) {
  if (op.kind == OpKind::kInsert) {
    return text_->DeleteChars(actor, op.doc, op.chars).status();
  }
  return text_->ResurrectChars(actor, op.doc, op.chars).status();
}

Status UndoManager::ApplyForward(UserId actor, const EditOp& op) {
  if (op.kind == OpKind::kInsert) {
    return text_->ResurrectChars(actor, op.doc, op.chars).status();
  }
  return text_->DeleteChars(actor, op.doc, op.chars).status();
}

Result<EditOp> UndoManager::UndoImpl(UserId actor, DocumentId doc,
                                     bool local) {
  EditOp target;
  size_t index = 0;
  {
    MutexLock lock(mu_);
    auto it = history_.find(doc.value);
    if (it == history_.end()) return Status::NotFound("nothing to undo");
    auto& ops = it->second;
    bool found = false;
    for (size_t i = ops.size(); i-- > 0;) {
      if (ops[i].undone) continue;
      if (local && ops[i].user != actor) continue;
      target = ops[i];
      index = i;
      found = true;
      break;
    }
    if (!found) return Status::NotFound("nothing to undo");
  }
  TENDAX_RETURN_IF_ERROR(ApplyInverse(actor, target));
  MutexLock lock(mu_);
  auto& ops = history_[doc.value];
  if (index < ops.size() && ops[index].op_id == target.op_id) {
    ops[index].undone = true;
    ops[index].undo_seq = next_undo_seq_++;
  }
  target.undone = true;
  return target;
}

Result<EditOp> UndoManager::RedoImpl(UserId actor, DocumentId doc,
                                     bool local) {
  EditOp target;
  size_t index = 0;
  {
    MutexLock lock(mu_);
    auto it = history_.find(doc.value);
    if (it == history_.end()) return Status::NotFound("nothing to redo");
    auto& ops = it->second;
    // Redo the most recently *undone* op (stack discipline), not the most
    // recent op.
    bool found = false;
    uint64_t best_seq = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (!ops[i].undone) continue;
      if (local && ops[i].user != actor) continue;
      if (ops[i].undo_seq >= best_seq) {
        best_seq = ops[i].undo_seq;
        target = ops[i];
        index = i;
        found = true;
      }
    }
    if (!found) return Status::NotFound("nothing to redo");
  }
  TENDAX_RETURN_IF_ERROR(ApplyForward(actor, target));
  MutexLock lock(mu_);
  auto& ops = history_[doc.value];
  if (index < ops.size() && ops[index].op_id == target.op_id) {
    ops[index].undone = false;
  }
  target.undone = false;
  return target;
}

Result<EditOp> UndoManager::UndoLocal(UserId user, DocumentId doc) {
  return UndoImpl(user, doc, /*local=*/true);
}

Result<EditOp> UndoManager::UndoGlobal(UserId user, DocumentId doc) {
  return UndoImpl(user, doc, /*local=*/false);
}

Result<EditOp> UndoManager::RedoLocal(UserId user, DocumentId doc) {
  return RedoImpl(user, doc, /*local=*/true);
}

Result<EditOp> UndoManager::RedoGlobal(UserId user, DocumentId doc) {
  return RedoImpl(user, doc, /*local=*/false);
}

std::vector<EditOp> UndoManager::History(DocumentId doc) const {
  MutexLock lock(mu_);
  auto it = history_.find(doc.value);
  return it == history_.end() ? std::vector<EditOp>() : it->second;
}

}  // namespace tendax

#include "collab/session_manager.h"

#include <algorithm>

#include "collab/admission.h"

namespace tendax {

SessionManager::SessionManager(Database* db, MetaStore* meta,
                               SessionOptions options)
    : db_(db), meta_(meta), options_(options) {
  MetricsRegistry* metrics = db_->metrics();
  m_events_delivered_ = metrics->counter("session.events_delivered");
  m_resyncs_emitted_ = metrics->counter("session.resyncs_emitted");
  m_sessions_reaped_ = metrics->counter("session.sessions_reaped");
  m_connects_ = metrics->counter("session.connects");
  m_disconnects_ = metrics->counter("session.disconnects");
  m_heartbeats_ = metrics->counter("session.heartbeats");
  m_resumes_ = metrics->counter("session.resumes");
}

Status SessionManager::Init() {
  db_->txns()->AddCommitListener(
      [this](TxnId, UserId, const ChangeBatch& batch) { Dispatch(batch); });
  return Status::OK();
}

void SessionManager::TouchLocked(Session* session) {
  if (options_.lease_ttl_micros == 0) return;
  session->lease_expires_at =
      db_->clock()->NowMicros() + options_.lease_ttl_micros;
}

bool SessionManager::ExpiredLocked(const Session& session,
                                   Timestamp now) const {
  return session.lease_expires_at != 0 && session.lease_expires_at < now;
}

void SessionManager::EmitResyncLocked(Session* session, DocumentId doc) {
  session->outbox.clear();
  ChangeEvent marker;
  marker.kind = ChangeKind::kResync;
  marker.doc = doc;
  marker.at = db_->clock()->NowMicros();
  session->outbox.push_back(SeqEvent{session->next_seq++, std::move(marker)});
  m_resyncs_emitted_->Add();
}

void SessionManager::Dispatch(const ChangeBatch& batch) {
  if (batch.empty()) return;
  MutexLock lock(mu_);
  const Timestamp now =
      options_.lease_ttl_micros != 0 ? db_->clock()->NowMicros() : 0;
  for (const ChangeEvent& ev : batch) {
    if (!ev.doc.valid()) continue;
    for (auto& [id, session] : sessions_) {
      if (!session->info.open_docs.count(ev.doc)) continue;
      // Dead sessions get no deliveries; the reaper will collect them.
      if (ExpiredLocked(*session, now)) continue;
      if (session->outbox.size() >= options_.max_inbox_events) {
        // Slow consumer: replace the whole backlog with one resync marker
        // instead of growing (or silently dropping the front of) the
        // stream. The current event is folded into the marker too.
        EmitResyncLocked(session.get(), ev.doc);
        continue;
      }
      session->outbox.push_back(SeqEvent{session->next_seq++, ev});
      m_events_delivered_->Add();
    }
  }
}

Result<SessionId> SessionManager::Connect(UserId user,
                                          const std::string& client) {
  // Degradation policy: refuse *new* sessions before harming existing ones.
  // Checked before mu_ — the gate takes its own (lower-rank) lock and may
  // probe the buffer pool.
  if (admission_ != nullptr) {
    TENDAX_RETURN_IF_ERROR(admission_->AdmitNewSession());
  }
  ReapExpired();
  SessionId id(next_session_id_.fetch_add(1));
  auto session = std::make_unique<Session>();
  session->info.id = id;
  session->info.user = user;
  session->info.client = client;
  session->info.connected_at = db_->clock()->NowMicros();
  MutexLock lock(mu_);
  TouchLocked(session.get());
  sessions_[id.value] = std::move(session);
  m_connects_->Add();
  return id;
}

Status SessionManager::Disconnect(SessionId session) {
  MutexLock lock(mu_);
  auto it = sessions_.find(session.value);
  if (it == sessions_.end()) return Status::NotFound("unknown session");
  // Drop awareness state with the session: open-document registrations and
  // cursors live inside the Session object, so erasing it guarantees
  // SessionsViewing/CursorsFor never report a dead editor.
  it->second->cursors.clear();
  it->second->info.open_docs.clear();
  sessions_.erase(it);
  m_disconnects_->Add();
  return Status::OK();
}

size_t SessionManager::ReapExpired() {
  if (options_.lease_ttl_micros == 0) return 0;
  MutexLock lock(mu_);
  const Timestamp now = db_->clock()->NowMicros();
  size_t reaped = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (ExpiredLocked(*it->second, now)) {
      it = sessions_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  if (reaped > 0) m_sessions_reaped_->Add(reaped);
  return reaped;
}

Status SessionManager::OpenDocument(SessionId session, DocumentId doc) {
  UserId user;
  {
    MutexLock lock(mu_);
    auto it = sessions_.find(session.value);
    if (it == sessions_.end()) return Status::NotFound("unknown session");
    it->second->info.open_docs.insert(doc);
    TouchLocked(it->second.get());
    user = it->second->info.user;
  }
  // Opening is a read: it lands in the audit trail and powers dynamic
  // folders like "all documents I read last week".
  return meta_->RecordRead(user, doc);
}

Status SessionManager::CloseDocument(SessionId session, DocumentId doc) {
  MutexLock lock(mu_);
  auto it = sessions_.find(session.value);
  if (it == sessions_.end()) return Status::NotFound("unknown session");
  it->second->info.open_docs.erase(doc);
  it->second->cursors.erase(doc.value);
  TouchLocked(it->second.get());
  return Status::OK();
}

Status SessionManager::SetCursor(SessionId session, DocumentId doc,
                                 size_t pos) {
  MutexLock lock(mu_);
  auto it = sessions_.find(session.value);
  if (it == sessions_.end()) return Status::NotFound("unknown session");
  if (!it->second->info.open_docs.count(doc)) {
    return Status::FailedPrecondition("document not open in session");
  }
  it->second->cursors[doc.value] = pos;
  TouchLocked(it->second.get());
  return Status::OK();
}

Result<std::vector<ChangeEvent>> SessionManager::Poll(SessionId session) {
  MutexLock lock(mu_);
  auto it = sessions_.find(session.value);
  if (it == sessions_.end()) return Status::NotFound("unknown session");
  Session* s = it->second.get();
  TouchLocked(s);
  std::vector<ChangeEvent> out;
  out.reserve(s->outbox.size());
  for (const SeqEvent& e : s->outbox) out.push_back(e.event);
  // Fire-and-forget: delivery is the acknowledgement.
  s->acked = s->next_seq - 1;
  s->outbox.clear();
  return out;
}

Result<std::vector<SeqEvent>> SessionManager::Resume(SessionId session,
                                                     uint64_t last_seq) {
  MutexLock lock(mu_);
  auto it = sessions_.find(session.value);
  if (it == sessions_.end()) return Status::NotFound("unknown session");
  Session* s = it->second.get();
  TouchLocked(s);
  m_resumes_->Add();
  if (last_seq >= s->next_seq) {
    return Status::InvalidArgument("resume seq " + std::to_string(last_seq) +
                                   " was never delivered");
  }
  if (last_seq < s->acked) {
    // The client lost state the server already discarded (it acked these
    // events in a previous life): per-event redelivery is impossible, so
    // collapse the stream into a snapshot-resync. `acked` moves back so an
    // idempotent retry of this same Resume returns the same marker.
    EmitResyncLocked(s, DocumentId());
    s->acked = last_seq;
    std::vector<SeqEvent> out(s->outbox.begin(), s->outbox.end());
    return out;
  }
  // Acknowledge the prefix the client has applied...
  while (!s->outbox.empty() && s->outbox.front().seq <= last_seq) {
    s->outbox.pop_front();
  }
  s->acked = std::max(s->acked, last_seq);
  // ...and redeliver the retained suffix without acking it: the client
  // acks by quoting these seqs in its next Resume.
  std::vector<SeqEvent> out(s->outbox.begin(), s->outbox.end());
  return out;
}

Status SessionManager::Heartbeat(SessionId session) {
  MutexLock lock(mu_);
  auto it = sessions_.find(session.value);
  if (it == sessions_.end()) return Status::NotFound("unknown session");
  TouchLocked(it->second.get());
  m_heartbeats_->Add();
  return Status::OK();
}

Result<size_t> SessionManager::PendingCount(SessionId session) const {
  MutexLock lock(mu_);
  auto it = sessions_.find(session.value);
  if (it == sessions_.end()) return Status::NotFound("unknown session");
  return it->second->outbox.size();
}

std::vector<SessionInfo> SessionManager::OnlineSessions() const {
  MutexLock lock(mu_);
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session->info);
  std::sort(out.begin(), out.end(),
            [](const SessionInfo& a, const SessionInfo& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<SessionInfo> SessionManager::SessionsViewing(
    DocumentId doc) const {
  MutexLock lock(mu_);
  std::vector<SessionInfo> out;
  for (const auto& [id, session] : sessions_) {
    if (session->info.open_docs.count(doc)) out.push_back(session->info);
  }
  std::sort(out.begin(), out.end(),
            [](const SessionInfo& a, const SessionInfo& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<CursorInfo> SessionManager::CursorsFor(DocumentId doc) const {
  MutexLock lock(mu_);
  std::vector<CursorInfo> out;
  for (const auto& [id, session] : sessions_) {
    auto it = session->cursors.find(doc.value);
    if (it == session->cursors.end()) continue;
    CursorInfo c;
    c.session = session->info.id;
    c.user = session->info.user;
    c.pos = it->second;
    out.push_back(c);
  }
  return out;
}

}  // namespace tendax

#include "collab/session_manager.h"

namespace tendax {

namespace {
/// Cap per-session inboxes so an idle session cannot grow without bound.
constexpr size_t kMaxInbox = 10000;
}  // namespace

SessionManager::SessionManager(Database* db, MetaStore* meta)
    : db_(db), meta_(meta) {}

Status SessionManager::Init() {
  db_->txns()->AddCommitListener(
      [this](TxnId, UserId, const ChangeBatch& batch) { Dispatch(batch); });
  return Status::OK();
}

void SessionManager::Dispatch(const ChangeBatch& batch) {
  if (batch.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const ChangeEvent& ev : batch) {
    if (!ev.doc.valid()) continue;
    for (auto& [id, session] : sessions_) {
      if (!session->info.open_docs.count(ev.doc)) continue;
      if (session->inbox.size() >= kMaxInbox) session->inbox.pop_front();
      session->inbox.push_back(ev);
      events_delivered_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Result<SessionId> SessionManager::Connect(UserId user,
                                          const std::string& client) {
  SessionId id(next_session_id_.fetch_add(1));
  auto session = std::make_unique<Session>();
  session->info.id = id;
  session->info.user = user;
  session->info.client = client;
  session->info.connected_at = db_->clock()->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  sessions_[id.value] = std::move(session);
  return id;
}

Status SessionManager::Disconnect(SessionId session) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(session.value) == 0) {
    return Status::NotFound("unknown session");
  }
  return Status::OK();
}

Status SessionManager::OpenDocument(SessionId session, DocumentId doc) {
  UserId user;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session.value);
    if (it == sessions_.end()) return Status::NotFound("unknown session");
    it->second->info.open_docs.insert(doc);
    user = it->second->info.user;
  }
  // Opening is a read: it lands in the audit trail and powers dynamic
  // folders like "all documents I read last week".
  return meta_->RecordRead(user, doc);
}

Status SessionManager::CloseDocument(SessionId session, DocumentId doc) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session.value);
  if (it == sessions_.end()) return Status::NotFound("unknown session");
  it->second->info.open_docs.erase(doc);
  it->second->cursors.erase(doc.value);
  return Status::OK();
}

Status SessionManager::SetCursor(SessionId session, DocumentId doc,
                                 size_t pos) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session.value);
  if (it == sessions_.end()) return Status::NotFound("unknown session");
  if (!it->second->info.open_docs.count(doc)) {
    return Status::FailedPrecondition("document not open in session");
  }
  it->second->cursors[doc.value] = pos;
  return Status::OK();
}

Result<std::vector<ChangeEvent>> SessionManager::Poll(SessionId session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session.value);
  if (it == sessions_.end()) return Status::NotFound("unknown session");
  std::vector<ChangeEvent> out(it->second->inbox.begin(),
                               it->second->inbox.end());
  it->second->inbox.clear();
  return out;
}

Result<size_t> SessionManager::PendingCount(SessionId session) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session.value);
  if (it == sessions_.end()) return Status::NotFound("unknown session");
  return it->second->inbox.size();
}

std::vector<SessionInfo> SessionManager::OnlineSessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session->info);
  std::sort(out.begin(), out.end(),
            [](const SessionInfo& a, const SessionInfo& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<SessionInfo> SessionManager::SessionsViewing(
    DocumentId doc) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionInfo> out;
  for (const auto& [id, session] : sessions_) {
    if (session->info.open_docs.count(doc)) out.push_back(session->info);
  }
  std::sort(out.begin(), out.end(),
            [](const SessionInfo& a, const SessionInfo& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<CursorInfo> SessionManager::CursorsFor(DocumentId doc) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CursorInfo> out;
  for (const auto& [id, session] : sessions_) {
    auto it = session->cursors.find(doc.value);
    if (it == session->cursors.end()) continue;
    CursorInfo c;
    c.session = session->info.id;
    c.user = session->info.user;
    c.pos = it->second;
    out.push_back(c);
  }
  return out;
}

}  // namespace tendax

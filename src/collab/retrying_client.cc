#include "collab/retrying_client.h"

#include <algorithm>
#include <bit>

#include "util/clock.h"

namespace tendax {

uint64_t BackoffWindowMicros(uint64_t base, int attempt, uint64_t cap) {
  if (base == 0) return 0;
  if (attempt < 0) attempt = 0;
  // `base << attempt` wraps once the shift pushes the top set bit out, so
  // clamp the exponent first: any shift that cannot fit saturates to cap.
  if (attempt >= std::countl_zero(base)) return cap;
  return std::min(base << attempt, cap);
}

RetryingClient::RetryingClient(WireTransport* transport, RetryOptions options)
    : transport_(transport),
      options_(std::move(options)),
      rng_(options_.seed),
      // Salt keys with the seed so two clients sharing one endpoint (a
      // reconnect) do not collide on key 1, 2, 3, ...
      key_salt_(options_.seed * 0x9E3779B97F4A7C15ULL) {
  if (options_.metrics != nullptr) {
    m_calls_ = options_.metrics->counter("client.calls");
    m_attempts_ = options_.metrics->counter("client.attempts");
    m_retries_ = options_.metrics->counter("client.retries");
    m_timeouts_ = options_.metrics->counter("client.timeouts");
    m_wire_errors_ = options_.metrics->counter("client.wire_errors");
    m_exhausted_ = options_.metrics->counter("client.exhausted");
    m_resyncs_ = options_.metrics->counter("client.resyncs");
    m_unavailable_ = options_.metrics->counter("client.unavailable");
    m_retry_after_honored_ =
        options_.metrics->counter("client.retry_after_honored");
    m_breaker_opens_ = options_.metrics->counter("client.breaker_opens");
    m_breaker_short_circuits_ =
        options_.metrics->counter("client.breaker_short_circuits");
  }
}

Clock* RetryingClient::clock() const {
  if (options_.clock != nullptr) return options_.clock;
  static SystemClock shared;
  return &shared;
}

Result<WireResponse> RetryingClient::Call(EditCommand command) {
  ++stats_.calls;
  MetricAdd(m_calls_);

  // Fail fast while the breaker is open: a server that just shed us will
  // shed us again, and every extra frame feeds the storm. After the
  // cooldown the next call goes through as a half-open probe.
  if (breaker_open_) {
    const uint64_t now = clock()->NowMicros();
    const uint64_t reopen_at =
        breaker_opened_at_ + options_.breaker_cooldown_micros;
    if (now < reopen_at) {
      ++stats_.breaker_short_circuits;
      MetricAdd(m_breaker_short_circuits_);
      WireResponse open;
      open.code = StatusCode::kUnavailable;
      open.message = "circuit breaker open";
      open.retry_after_micros = reopen_at - now;
      return open;
    }
  }

  const bool exempt = command.kind == CommandKind::kResume ||
                      command.kind == CommandKind::kHeartbeat ||
                      command.kind == CommandKind::kStats;
  if (command.request_id == 0 && !exempt) {
    command.request_id = key_salt_ ^ ++next_key_;
    if (command.request_id == 0) command.request_id = ++next_key_;
  }
  // The deadline is stamped once per logical command: it spans every retry
  // of this frame, so a frame redelivered after the client gave up arrives
  // already-expired and the server drops it at dispatch.
  if (command.deadline_micros == 0 && options_.default_deadline_micros > 0) {
    command.deadline_micros =
        clock()->NowMicros() + options_.default_deadline_micros;
  }
  const std::string frame = SealFrame(EncodeCommand(command));
  // A nonzero hint from the server replaces the next jittered window — the
  // server can see the whole queue; the client can't.
  uint64_t server_hint = 0;
  Status last_error = Status::IOError("no attempt made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      uint64_t wait;
      if (server_hint > 0) {
        wait = server_hint;
        server_hint = 0;
        ++stats_.retry_after_honored;
        MetricAdd(m_retry_after_honored_);
      } else {
        // Full jitter: wait a uniform slice of the current window, which
        // doubles per retry (saturating — see BackoffWindowMicros). Keeps
        // retry storms from synchronizing across clients.
        const uint64_t window =
            BackoffWindowMicros(options_.base_backoff_micros, attempt - 1,
                                options_.max_backoff_micros);
        wait = window > 0 ? 1 + rng_.Uniform(window) : 0;
      }
      stats_.backoff_micros += wait;
      if (options_.sleep_fn) options_.sleep_fn(wait);
      MetricAdd(m_retries_);
    }
    ++stats_.attempts;
    MetricAdd(m_attempts_);
    auto raw = transport_->RoundTrip(frame);
    if (!raw.ok()) {
      last_error = raw.status();
      ++stats_.timeouts;
      MetricAdd(m_timeouts_);
      continue;
    }
    auto body = OpenFrame(*raw);
    if (!body.ok()) {
      last_error = body.status();
      ++stats_.wire_errors;
      MetricAdd(m_wire_errors_);
      continue;
    }
    auto response = DecodeResponse(*body);
    if (!response.ok()) {
      last_error = response.status();
      ++stats_.wire_errors;
      MetricAdd(m_wire_errors_);
      continue;
    }
    if (response->code == StatusCode::kUnavailable) {
      // The server shed us. Retry on its schedule — unless that keeps
      // happening, in which case open the breaker and stop contributing
      // to the storm.
      ++stats_.unavailable;
      MetricAdd(m_unavailable_);
      if (response->retry_after_micros == 0) {
        ++stats_.unavailable_without_hint;
      }
      ++consecutive_unavailable_;
      if (options_.breaker_threshold > 0 &&
          consecutive_unavailable_ >= options_.breaker_threshold) {
        breaker_open_ = true;
        breaker_opened_at_ = clock()->NowMicros();
        ++stats_.breaker_opens;
        MetricAdd(m_breaker_opens_);
        return *response;
      }
      if (attempt + 1 >= options_.max_attempts) return *response;
      server_hint = response->retry_after_micros;
      continue;
    }
    // Any non-shed answer (success or a clean server error) proves the
    // server is responsive again: reset/close the breaker.
    consecutive_unavailable_ = 0;
    breaker_open_ = false;
    return *response;
  }
  ++stats_.exhausted;
  MetricAdd(m_exhausted_);
  return Status::FromCode(last_error.code(),
                          "retries exhausted: " + last_error.message());
}

namespace {
Status ToStatus(const WireResponse& response) {
  return Status::FromCode(response.code, response.message);
}

EditCommand MakeCommand(CommandKind kind, DocumentId doc, uint64_t pos = 0,
                        uint64_t len = 0, std::string text = "") {
  EditCommand command;
  command.kind = kind;
  command.doc = doc;
  command.pos = pos;
  command.len = len;
  command.text = std::move(text);
  return command;
}
}  // namespace

Status RetryingClient::Open(DocumentId doc) {
  auto r = Call(MakeCommand(CommandKind::kOpen, doc));
  return r.ok() ? ToStatus(*r) : r.status();
}

Status RetryingClient::Close(DocumentId doc) {
  auto r = Call(MakeCommand(CommandKind::kClose, doc));
  return r.ok() ? ToStatus(*r) : r.status();
}

Status RetryingClient::Type(DocumentId doc, uint64_t pos,
                            const std::string& text) {
  auto r = Call(MakeCommand(CommandKind::kType, doc, pos, 0, text));
  return r.ok() ? ToStatus(*r) : r.status();
}

Status RetryingClient::Erase(DocumentId doc, uint64_t pos, uint64_t len) {
  auto r = Call(MakeCommand(CommandKind::kErase, doc, pos, len));
  return r.ok() ? ToStatus(*r) : r.status();
}

Result<std::string> RetryingClient::GetText(DocumentId doc) {
  auto r = Call(MakeCommand(CommandKind::kGetText, doc));
  if (!r.ok()) return r.status();
  if (r->code != StatusCode::kOk) return ToStatus(*r);
  return r->payload;
}

Result<std::string> RetryingClient::GetTextAt(DocumentId doc,
                                              uint64_t version) {
  auto r = Call(MakeCommand(CommandKind::kGetTextAt, doc, version));
  if (!r.ok()) return r.status();
  if (r->code != StatusCode::kOk) return ToStatus(*r);
  return r->payload;
}

Status RetryingClient::SetCursor(DocumentId doc, uint64_t pos) {
  auto r = Call(MakeCommand(CommandKind::kSetCursor, doc, pos));
  return r.ok() ? ToStatus(*r) : r.status();
}

Status RetryingClient::Heartbeat() {
  auto r = Call(MakeCommand(CommandKind::kHeartbeat, DocumentId()));
  return r.ok() ? ToStatus(*r) : r.status();
}

Result<MetricsSnapshot> RetryingClient::ServerStats() {
  auto r = Call(MakeCommand(CommandKind::kStats, DocumentId()));
  if (!r.ok()) return r.status();
  if (r->code != StatusCode::kOk) return ToStatus(*r);
  return DecodeMetricsSnapshot(r->payload);
}

Result<RetryingClient::Changes> RetryingClient::PollChanges() {
  auto r = Call(MakeCommand(CommandKind::kResume, DocumentId(), last_seq_));
  if (!r.ok()) return r.status();
  if (r->code != StatusCode::kOk) return ToStatus(*r);
  auto batch = DecodeSeqEventBatch(r->payload);
  if (!batch.ok()) return batch.status();
  Changes out;
  for (SeqEvent& entry : *batch) {
    // The server delivers a contiguous suffix; a gap means events between
    // the cursor and this entry were trimmed server-side.
    if (entry.seq > last_seq_ + 1) out.resync_required = true;
    if (entry.seq > last_seq_) last_seq_ = entry.seq;
    if (entry.event.kind == ChangeKind::kResync) {
      out.resync_required = true;
    } else {
      out.events.push_back(std::move(entry.event));
    }
  }
  if (out.resync_required) {
    ++stats_.resyncs;
    MetricAdd(m_resyncs_);
  }
  return out;
}

}  // namespace tendax

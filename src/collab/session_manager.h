#ifndef TENDAX_COLLAB_SESSION_MANAGER_H_
#define TENDAX_COLLAB_SESSION_MANAGER_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "meta/meta_store.h"
#include "util/ids.h"
#include "util/result.h"

namespace tendax {

/// A connected editor (the demo ran them on Windows, Linux and macOS; here
/// they are in-process clients attached over the commit-event bus).
struct SessionInfo {
  SessionId id;
  UserId user;
  std::string client;  // e.g. "editor-linux"
  Timestamp connected_at = 0;
  std::set<DocumentId> open_docs;
};

/// A live cursor, part of the awareness feature.
struct CursorInfo {
  SessionId session;
  UserId user;
  size_t pos = 0;
  Timestamp at = 0;
};

/// Editor sessions, awareness (who is online, who views which document,
/// where their cursors are) and real-time change propagation: committed
/// transactions fan out to every session that has the document open, which
/// is how "everything typed appears within the other editors as soon as it
/// is stored persistently".
class SessionManager {
 public:
  SessionManager(Database* db, MetaStore* meta);

  /// Hooks the commit-event stream. Call once.
  Status Init();

  Result<SessionId> Connect(UserId user, const std::string& client);
  Status Disconnect(SessionId session);

  /// Opens a document in the session: future changes to it are delivered,
  /// and the read is recorded in the audit trail (reader metadata).
  Status OpenDocument(SessionId session, DocumentId doc);
  Status CloseDocument(SessionId session, DocumentId doc);

  Status SetCursor(SessionId session, DocumentId doc, size_t pos);

  /// Drains the session's pending change notifications.
  Result<std::vector<ChangeEvent>> Poll(SessionId session);
  /// Number of undelivered notifications.
  Result<size_t> PendingCount(SessionId session) const;

  // --- awareness ---
  std::vector<SessionInfo> OnlineSessions() const;
  std::vector<SessionInfo> SessionsViewing(DocumentId doc) const;
  std::vector<CursorInfo> CursorsFor(DocumentId doc) const;

  /// Total events fanned out (for the concurrency bench).
  uint64_t events_delivered() const { return events_delivered_.load(); }

 private:
  struct Session {
    SessionInfo info;
    std::map<uint64_t, size_t> cursors;  // doc -> pos
    std::deque<ChangeEvent> inbox;
  };

  void Dispatch(const ChangeBatch& batch);

  Database* const db_;
  MetaStore* const meta_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions_;
  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<uint64_t> events_delivered_{0};
};

}  // namespace tendax

#endif  // TENDAX_COLLAB_SESSION_MANAGER_H_

#ifndef TENDAX_COLLAB_SESSION_MANAGER_H_
#define TENDAX_COLLAB_SESSION_MANAGER_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "meta/meta_store.h"
#include "util/ids.h"
#include "util/mutex.h"
#include "util/result.h"

namespace tendax {

/// A connected editor (the demo ran them on Windows, Linux and macOS; here
/// they are in-process clients attached over the commit-event bus).
struct SessionInfo {
  SessionId id;
  UserId user;
  std::string client;  // e.g. "editor-linux"
  Timestamp connected_at = 0;
  std::set<DocumentId> open_docs;
};

/// A live cursor, part of the awareness feature.
struct CursorInfo {
  SessionId session;
  UserId user;
  size_t pos = 0;
  Timestamp at = 0;
};

/// A change notification stamped with its per-session delivery sequence
/// number. Sequence numbers are monotone and contiguous as assigned; a gap
/// observed by a client means events were trimmed and a resync is needed.
struct SeqEvent {
  uint64_t seq = 0;
  ChangeEvent event;
};

/// Session-resilience knobs.
struct SessionOptions {
  /// Lease time-to-live in microseconds. A session whose lease is not
  /// renewed (by a heartbeat or any session-keyed call) within this window
  /// is eligible for reaping: it is removed together with its cursors and
  /// open-document registrations. 0 disables leases (sessions are immortal
  /// until Disconnect), which is the in-process demo default.
  uint64_t lease_ttl_micros = 0;
  /// Cap on a session's undelivered/unacknowledged change events. When the
  /// outbox would exceed this, it is coalesced into a single `kResync`
  /// marker instead of growing without bound; the client re-reads a
  /// snapshot.
  size_t max_inbox_events = 10000;
};

/// Editor sessions, awareness (who is online, who views which document,
/// where their cursors are) and real-time change propagation: committed
/// transactions fan out to every session that has the document open, which
/// is how "everything typed appears within the other editors as soon as it
/// is stored persistently".
///
/// Delivery is resumable: every event enqueued for a session carries a
/// per-session monotone sequence number, and events are retained (bounded
/// by `max_inbox_events`) until the client acknowledges them via
/// `Resume(session, last_seq)`. A client that reconnects re-issues Resume
/// with the last sequence it applied and receives exactly the missed
/// suffix — or a single `kResync` marker when the suffix was trimmed.
class AdmissionController;

class SessionManager {
 public:
  SessionManager(Database* db, MetaStore* meta, SessionOptions options = {});

  /// Hooks the commit-event stream. Call once.
  Status Init();

  /// Installs the overload gate consulted by Connect: while the server is
  /// degraded, *new* sessions are refused (kUnavailable) before existing
  /// sessions lose anything. Call before concurrent use; null detaches.
  void AttachAdmission(AdmissionController* admission) {
    admission_ = admission;
  }

  Result<SessionId> Connect(UserId user, const std::string& client)
      TENDAX_EXCLUDES(mu_);
  Status Disconnect(SessionId session) TENDAX_EXCLUDES(mu_);

  /// Opens a document in the session: future changes to it are delivered,
  /// and the read is recorded in the audit trail (reader metadata).
  Status OpenDocument(SessionId session, DocumentId doc)
      TENDAX_EXCLUDES(mu_);
  Status CloseDocument(SessionId session, DocumentId doc)
      TENDAX_EXCLUDES(mu_);

  Status SetCursor(SessionId session, DocumentId doc, size_t pos)
      TENDAX_EXCLUDES(mu_);

  /// Drains the session's pending change notifications and acknowledges
  /// them (fire-and-forget delivery, the pre-resilience protocol).
  Result<std::vector<ChangeEvent>> Poll(SessionId session)
      TENDAX_EXCLUDES(mu_);

  /// Resumable delivery: acknowledges everything up to `last_seq`
  /// (dropping it from the retained outbox) and returns every retained
  /// event after it, without acknowledging the returned events — they stay
  /// buffered until a later Resume acks them, so a lost response frame
  /// costs nothing. If `last_seq` predates the retained window (the client
  /// fell too far behind), the stream is replaced by one `kResync` marker.
  Result<std::vector<SeqEvent>> Resume(SessionId session, uint64_t last_seq)
      TENDAX_EXCLUDES(mu_);

  /// Renews the session's lease without any other effect.
  Status Heartbeat(SessionId session) TENDAX_EXCLUDES(mu_);

  /// Removes every session whose lease has expired, dropping its cursors
  /// and open-document registrations. Returns the number reaped. A no-op
  /// when leases are disabled. Also invoked opportunistically on Connect.
  size_t ReapExpired() TENDAX_EXCLUDES(mu_);

  /// Number of undelivered notifications.
  Result<size_t> PendingCount(SessionId session) const TENDAX_EXCLUDES(mu_);

  // --- awareness ---
  std::vector<SessionInfo> OnlineSessions() const TENDAX_EXCLUDES(mu_);
  std::vector<SessionInfo> SessionsViewing(DocumentId doc) const
      TENDAX_EXCLUDES(mu_);
  std::vector<CursorInfo> CursorsFor(DocumentId doc) const
      TENDAX_EXCLUDES(mu_);

  /// Total events fanned out (for the concurrency bench). Backed by the
  /// metrics registry ("session.events_delivered") since the observability
  /// migration; same for the two readouts below.
  uint64_t events_delivered() const { return m_events_delivered_->Value(); }
  /// Times a session's outbox overflowed and was coalesced into a
  /// `kResync` marker (backpressure observability).
  uint64_t resyncs_emitted() const { return m_resyncs_emitted_->Value(); }
  /// Sessions removed by lease expiry.
  uint64_t sessions_reaped() const { return m_sessions_reaped_->Value(); }

  const SessionOptions& options() const { return options_; }

 private:
  struct Session {
    SessionInfo info;
    std::map<uint64_t, size_t> cursors;  // doc -> pos
    std::deque<SeqEvent> outbox;         // retained, seq-ascending
    uint64_t next_seq = 1;               // seq assigned to the next event
    uint64_t acked = 0;                  // highest acknowledged seq
    Timestamp lease_expires_at = 0;      // 0 = immortal (leases disabled)
  };

  void Dispatch(const ChangeBatch& batch) TENDAX_EXCLUDES(mu_);
  /// Renews the lease.
  void TouchLocked(Session* session) TENDAX_REQUIRES(mu_);
  /// True if the session's lease has lapsed.
  bool ExpiredLocked(const Session& session, Timestamp now) const
      TENDAX_REQUIRES(mu_);
  /// Coalesces the outbox into a single kResync marker.
  void EmitResyncLocked(Session* session, DocumentId doc)
      TENDAX_REQUIRES(mu_);

  Database* const db_;
  MetaStore* const meta_;
  const SessionOptions options_;
  AdmissionController* admission_ = nullptr;  // set once before concurrency

  // Dropped before any db_ / meta_ call (OpenDocument records the read
  // outside the lock); Dispatch runs on the commit thread with nothing held.
  mutable Mutex mu_{"session.mu", lockorder::kRankSession};
  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions_
      TENDAX_GUARDED_BY(mu_);
  std::atomic<uint64_t> next_session_id_{1};

  // Registry-backed counters (the database always carries a registry, so
  // these are never null). The first three feed the legacy accessors above.
  Counter* m_events_delivered_;
  Counter* m_resyncs_emitted_;
  Counter* m_sessions_reaped_;
  Counter* m_connects_;
  Counter* m_disconnects_;
  Counter* m_heartbeats_;
  Counter* m_resumes_;
};

}  // namespace tendax

#endif  // TENDAX_COLLAB_SESSION_MANAGER_H_

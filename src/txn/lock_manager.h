#ifndef TENDAX_TXN_LOCK_MANAGER_H_
#define TENDAX_TXN_LOCK_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "util/ids.h"
#include "util/mutex.h"
#include "util/status.h"

namespace tendax {

/// Hierarchical lock modes (no SIX; an IX+S holder upgrades to X).
enum class LockMode : uint8_t { kIS = 0, kIX = 1, kS = 2, kX = 3 };

const char* LockModeName(LockMode mode);

/// True if a holder in `held` permits another transaction in `requested`.
bool LockCompatible(LockMode held, LockMode requested);

/// True if holding `held` already grants everything `requested` would.
bool LockCovers(LockMode held, LockMode requested);

/// Least mode granting both `a` and `b` (used for upgrades).
LockMode LockSupremum(LockMode a, LockMode b);

/// Kinds of lockable resources in the TeNDaX hierarchy. A transaction takes
/// intention locks on the document before locking a finer region inside it.
enum class ResourceKind : uint8_t {
  kDocument = 1,   // whole document
  kRegion = 2,     // character region inside a document (keyed by anchor)
  kCatalog = 3,    // schema-level operations
  kFolder = 4,
  kProcess = 5,
};

/// Packs a resource kind and entity id into the flat lock key space.
constexpr uint64_t MakeResource(ResourceKind kind, uint64_t id) {
  return (static_cast<uint64_t>(kind) << 56) | (id & 0x00FF'FFFF'FFFF'FFFFULL);
}

struct LockManagerStats {
  uint64_t acquisitions = 0;
  uint64_t waits = 0;
  uint64_t deadlocks = 0;
  uint64_t timeouts = 0;
  /// Waits cut short by the *request's* deadline (not lock_timeout): the
  /// ambient RequestDeadline expired first, so the caller got the typed
  /// kDeadlineExceeded instead of a retryable Conflict.
  uint64_t deadline_exceeded = 0;
};

/// Strict two-phase lock manager with wait-for-graph deadlock detection.
/// On deadlock the *requesting* transaction is the victim and receives
/// Status::Deadlock; callers abort it and may retry. A wait that exceeds
/// `timeout` returns Status::Conflict. When the calling thread carries an
/// ambient RequestDeadline (util/deadline.h) that lands before the
/// timeout, the wait is capped there instead and an expiry surfaces as
/// Status::DeadlineExceeded.
class LockManager {
 public:
  /// `metrics` may be null (standalone/unit use); it must outlive the
  /// manager.
  explicit LockManager(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(2000),
      MetricsRegistry* metrics = nullptr)
      : timeout_(timeout) {
    if (metrics != nullptr) {
      m_acquisitions_ = metrics->counter("lock.acquisitions");
      m_waits_ = metrics->counter("lock.waits");
      m_deadlocks_ = metrics->counter("lock.deadlocks");
      m_timeouts_ = metrics->counter("lock.timeouts");
      m_deadline_exceeded_ = metrics->counter("lock.deadline_exceeded");
      m_wait_micros_ = metrics->histogram("lock.wait_micros");
    }
  }

  /// Acquires (or upgrades to) `mode` on `resource` for `txn`. Blocks while
  /// incompatible locks are held by other transactions.
  Status Acquire(TxnId txn, uint64_t resource, LockMode mode)
      TENDAX_EXCLUDES(mu_);

  /// Releases every lock held by `txn` and wakes waiters.
  void ReleaseAll(TxnId txn) TENDAX_EXCLUDES(mu_);

  /// Number of distinct resources currently locked (for tests).
  size_t LockedResourceCount() const TENDAX_EXCLUDES(mu_);

  LockManagerStats stats() const TENDAX_EXCLUDES(mu_);

 private:
  struct Grant {
    TxnId txn;
    LockMode mode;
  };
  struct ResourceState {
    std::vector<Grant> grants;
    int waiters = 0;
  };

  // Requires mu_ held: is `mode` grantable to `txn` on `state` right now?
  static bool Grantable(const ResourceState& state, TxnId txn, LockMode mode);

  // Requires mu_ held: would granting create a wait; returns blockers.
  static std::vector<TxnId> Blockers(const ResourceState& state, TxnId txn,
                                     LockMode mode);

  // Does adding edges waiter->blockers close a cycle? (Grantable/Blockers
  // above also require mu_, but static members cannot name it in an
  // attribute — callers hold it through Acquire.)
  bool WouldDeadlock(TxnId waiter, const std::vector<TxnId>& blockers) const
      TENDAX_REQUIRES(mu_);

  const std::chrono::milliseconds timeout_;

  // Leaf of the txn layer: held across nothing but metrics updates.
  mutable Mutex mu_{"lockmgr.mu", lockorder::kRankLock};
  CondVar cv_;
  std::unordered_map<uint64_t, ResourceState> resources_
      TENDAX_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> held_by_txn_
      TENDAX_GUARDED_BY(mu_);
  // wait-for graph: txn -> set of txns it is waiting on
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> wait_for_
      TENDAX_GUARDED_BY(mu_);
  LockManagerStats stats_ TENDAX_GUARDED_BY(mu_);

  // Registry mirrors of stats_ (null without a registry).
  Counter* m_acquisitions_ = nullptr;
  Counter* m_waits_ = nullptr;
  Counter* m_deadlocks_ = nullptr;
  Counter* m_timeouts_ = nullptr;
  Counter* m_deadline_exceeded_ = nullptr;
  Histogram* m_wait_micros_ = nullptr;
};

}  // namespace tendax

#endif  // TENDAX_TXN_LOCK_MANAGER_H_

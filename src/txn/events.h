#ifndef TENDAX_TXN_EVENTS_H_
#define TENDAX_TXN_EVENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.h"

namespace tendax {

/// What a committed transaction did, at domain granularity. Events are
/// attached to the transaction while it runs and published to subscribers
/// (editor sessions, dynamic folders, the search index, awareness) only
/// after commit — this is the "everything typed appears as soon as it is
/// stored persistently" propagation path of the paper.
enum class ChangeKind : uint16_t {
  kTextInserted = 1,
  kTextDeleted = 2,
  kLayoutChanged = 3,
  kStructureChanged = 4,
  kDocumentCreated = 5,
  kDocumentRenamed = 6,
  kDocumentStateChanged = 7,
  kSecurityChanged = 8,
  kNoteAdded = 9,
  kObjectInserted = 10,
  kWorkflowChanged = 11,
  kMetadataChanged = 12,
  kDocumentRead = 13,
  kFolderChanged = 14,
  kUndoApplied = 15,
  kRedoApplied = 16,
  /// Delivery-layer marker, not a committed change: the session's change
  /// stream was trimmed (slow consumer / stale resume cursor) and per-event
  /// redelivery is impossible. The client must re-read a document snapshot;
  /// events delivered after the marker may predate that snapshot and are
  /// invalidation hints only.
  kResync = 17,
};

/// Highest valid `ChangeKind` value; decoders reject anything outside
/// [1, kChangeKindMax].
constexpr uint16_t kChangeKindMax = 17;

/// One domain-level change produced by a transaction.
struct ChangeEvent {
  ChangeKind kind;
  DocumentId doc;
  UserId user;
  Version version = 0;      // document version created by the commit
  Timestamp at = 0;         // commit-side stamp
  CharId anchor;            // first affected character (if any)
  uint64_t count = 0;       // number of affected characters/items
  std::string detail;       // operation-specific payload (e.g. text)
};

using ChangeBatch = std::vector<ChangeEvent>;

}  // namespace tendax

#endif  // TENDAX_TXN_EVENTS_H_

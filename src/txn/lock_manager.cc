#include "txn/lock_manager.h"

#include <algorithm>
#include <optional>

#include "util/deadline.h"

namespace tendax {

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kS:
      return "S";
    case LockMode::kX:
      return "X";
  }
  return "?";
}

bool LockCompatible(LockMode held, LockMode requested) {
  static constexpr bool kMatrix[4][4] = {
      // requested:  IS     IX     S      X        held:
      {true, true, true, false},   // IS
      {true, true, false, false},  // IX
      {true, false, true, false},  // S
      {false, false, false, false},  // X
  };
  return kMatrix[static_cast<int>(held)][static_cast<int>(requested)];
}

bool LockCovers(LockMode held, LockMode requested) {
  if (held == requested) return true;
  switch (held) {
    case LockMode::kX:
      return true;
    case LockMode::kS:
      return requested == LockMode::kIS;
    case LockMode::kIX:
      return requested == LockMode::kIS;
    case LockMode::kIS:
      return false;
  }
  return false;
}

LockMode LockSupremum(LockMode a, LockMode b) {
  if (LockCovers(a, b)) return a;
  if (LockCovers(b, a)) return b;
  // Remaining incomparable pairs: {IX, S} -> X (no SIX mode).
  return LockMode::kX;
}

Status LockManager::Acquire(TxnId txn, uint64_t resource, LockMode mode) {
  MutexLock lock(mu_);
  ResourceState& state = resources_[resource];

  // Upgrade path: merge with any mode this transaction already holds.
  LockMode target = mode;
  for (const Grant& g : state.grants) {
    if (g.txn == txn) {
      if (LockCovers(g.mode, mode)) {
        ++stats_.acquisitions;
        MetricAdd(m_acquisitions_);
        return Status::OK();
      }
      target = LockSupremum(g.mode, mode);
      break;
    }
  }

  // Deadline propagation: the wait is bounded by min(lock_timeout, the
  // request's remaining budget). A request that would miss its deadline
  // anyway gives the lock back to useful work early and surfaces the typed
  // kDeadlineExceeded instead of a generic conflict.
  auto deadline = std::chrono::steady_clock::now() + timeout_;
  bool deadline_is_request = false;
  if (RequestDeadline::Armed() && RequestDeadline::Deadline() < deadline) {
    deadline = RequestDeadline::Deadline();
    deadline_is_request = true;
  }
  bool waited = false;
  // Armed at the first wait; RAII records the time blocked on every exit
  // below (deadlock victim, timeout, and eventual grant alike).
  std::optional<ScopedTimer> wait_timer;
  while (!Grantable(state, txn, target)) {
    std::vector<TxnId> blockers = Blockers(state, txn, target);
    if (WouldDeadlock(txn, blockers)) {
      ++stats_.deadlocks;
      MetricAdd(m_deadlocks_);
      if (waited) {
        wait_for_.erase(txn.value);
        --state.waiters;
      }
      return Status::Deadlock("deadlock acquiring " +
                              std::string(LockModeName(target)) +
                              " on resource " + std::to_string(resource));
    }
    auto& edges = wait_for_[txn.value];
    edges.clear();
    for (TxnId b : blockers) edges.insert(b.value);
    if (!waited) {
      waited = true;
      ++state.waiters;
      ++stats_.waits;
      MetricAdd(m_waits_);
      wait_timer.emplace(m_wait_micros_);
    }
    if (cv_.WaitUntil(lock, deadline) == std::cv_status::timeout &&
        !Grantable(state, txn, target)) {
      wait_for_.erase(txn.value);
      --state.waiters;
      if (deadline_is_request) {
        ++stats_.deadline_exceeded;
        MetricAdd(m_deadline_exceeded_);
        return Status::DeadlineExceeded(
            "request deadline expired waiting for resource " +
            std::to_string(resource));
      }
      ++stats_.timeouts;
      MetricAdd(m_timeouts_);
      return Status::Conflict("lock wait timeout on resource " +
                              std::to_string(resource));
    }
  }
  if (waited) {
    wait_for_.erase(txn.value);
    --state.waiters;
  }

  bool upgraded = false;
  for (Grant& g : state.grants) {
    if (g.txn == txn) {
      g.mode = target;
      upgraded = true;
      break;
    }
  }
  if (!upgraded) state.grants.push_back(Grant{txn, target});
  held_by_txn_[txn.value].insert(resource);
  ++stats_.acquisitions;
  MetricAdd(m_acquisitions_);
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn) {
  MutexLock lock(mu_);
  auto it = held_by_txn_.find(txn.value);
  if (it != held_by_txn_.end()) {
    for (uint64_t resource : it->second) {
      auto rit = resources_.find(resource);
      if (rit == resources_.end()) continue;
      auto& grants = rit->second.grants;
      grants.erase(std::remove_if(grants.begin(), grants.end(),
                                  [&](const Grant& g) { return g.txn == txn; }),
                   grants.end());
      if (grants.empty() && rit->second.waiters == 0) {
        resources_.erase(rit);
      }
    }
    held_by_txn_.erase(it);
  }
  wait_for_.erase(txn.value);
  cv_.NotifyAll();
}

size_t LockManager::LockedResourceCount() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [res, state] : resources_) {
    if (!state.grants.empty()) ++n;
  }
  return n;
}

LockManagerStats LockManager::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

bool LockManager::Grantable(const ResourceState& state, TxnId txn,
                            LockMode mode) {
  for (const Grant& g : state.grants) {
    if (g.txn == txn) continue;
    if (!LockCompatible(g.mode, mode)) return false;
  }
  return true;
}

std::vector<TxnId> LockManager::Blockers(const ResourceState& state, TxnId txn,
                                         LockMode mode) {
  std::vector<TxnId> blockers;
  for (const Grant& g : state.grants) {
    if (g.txn == txn) continue;
    if (!LockCompatible(g.mode, mode)) blockers.push_back(g.txn);
  }
  return blockers;
}

bool LockManager::WouldDeadlock(TxnId waiter,
                                const std::vector<TxnId>& blockers) const {
  // DFS from each blocker through the wait-for graph looking for `waiter`.
  std::unordered_set<uint64_t> visited;
  std::vector<uint64_t> stack;
  for (TxnId b : blockers) stack.push_back(b.value);
  while (!stack.empty()) {
    uint64_t current = stack.back();
    stack.pop_back();
    if (current == waiter.value) return true;
    if (!visited.insert(current).second) continue;
    auto it = wait_for_.find(current);
    if (it == wait_for_.end()) continue;
    for (uint64_t next : it->second) stack.push_back(next);
  }
  return false;
}

}  // namespace tendax

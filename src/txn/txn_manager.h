#ifndef TENDAX_TXN_TXN_MANAGER_H_
#define TENDAX_TXN_TXN_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/wal.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/result.h"

namespace tendax {

/// Applies a logical change to stored data on behalf of abort-undo and
/// crash recovery: `op` is the operation to perform now (already inverted
/// for undo), `image` the record image it needs, `lsn` the LSN to stamp on
/// the touched page. Implemented by the db layer.
class ChangeApplier {
 public:
  virtual ~ChangeApplier() = default;
  virtual Status ApplyChange(uint64_t table_id, UpdateOp op, uint64_t rid,
                             const std::string& image, Lsn lsn) = 0;
};

/// Invoked after a transaction durably commits, with its change events.
/// Listeners drive real-time propagation to other editors, dynamic folders,
/// the search index and awareness.
using CommitListener =
    std::function<void(TxnId, UserId, const ChangeBatch&)>;

struct TxnManagerStats {
  uint64_t begun = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
};

/// Transaction lifecycle: begin / commit / abort with strict 2PL and WAL
/// integration (begin + update records while running, commit/abort record +
/// log flush at the end, compensating records during abort-undo).
class TxnManager {
 public:
  /// `wal` may be null for a volatile (non-durable) database. `sync_commit`
  /// controls whether commit waits for the log flush (durability) or not.
  /// `metrics` may be null (standalone/unit use).
  TxnManager(Wal* wal, LockManager* locks, Clock* clock,
             bool sync_commit = true, MetricsRegistry* metrics = nullptr);

  /// Starts a transaction on behalf of `user`. `TxnMode::kSnapshotRead`
  /// transactions write no begin record (they never log anything, so there
  /// is no chain for recovery to walk) and must not acquire locks or call
  /// `LogUpdate`.
  Transaction* Begin(UserId user, TxnMode mode = TxnMode::kReadWrite);

  /// Commits: appends the commit record, waits for its (possibly group)
  /// flush, releases locks, then publishes the transaction's change events
  /// to commit listeners. On a failed append or flush the transaction is
  /// rolled back before returning — callers must not touch `txn` after a
  /// Commit call regardless of the outcome.
  Status Commit(Transaction* txn);

  /// Aborts: undoes the write set in reverse order through the applier
  /// (logging CLRs), appends the abort record, releases locks.
  Status Abort(Transaction* txn);

  /// Runs `body` in a transaction with automatic commit, abort on error,
  /// and bounded retry on retryable (lock/deadlock) failures.
  Status RunInTxn(UserId user, const std::function<Status(Transaction*)>& body,
                  int max_retries = 8);

  /// Runs `body` in a `TxnMode::kSnapshotRead` transaction: no locks, no
  /// WAL records, no retries (there is nothing to conflict on). The body
  /// reads published MVCC snapshots; `LogUpdate` inside it fails typed.
  Status RunSnapshotRead(UserId user,
                         const std::function<Status(Transaction*)>& body);

  void SetChangeApplier(ChangeApplier* applier) { applier_ = applier; }
  void AddCommitListener(CommitListener listener);

  /// Appends an update record for `txn` and returns its LSN; maintains the
  /// per-transaction chain and write set. Called by the db layer.
  Result<Lsn> LogUpdate(Transaction* txn, UpdateOp op, uint64_t table_id,
                        uint64_t rid, std::string before, std::string after);

  size_t ActiveCount() const TENDAX_EXCLUDES(mu_);

  /// Snapshot of the active-transaction table for a fuzzy checkpoint: every
  /// in-flight transaction with the LSN of its begin record (`first_lsn`)
  /// and its most recent record (`last_lsn`). Log truncation must retain
  /// everything at or above the minimum first_lsn so a post-crash undo can
  /// still walk these transactions' chains.
  std::vector<CheckpointTxnEntry> ActiveTxnTable() const TENDAX_EXCLUDES(mu_);

  TxnManagerStats stats() const TENDAX_EXCLUDES(mu_);
  LockManager* lock_manager() { return locks_; }
  Clock* clock() { return clock_; }
  Wal* wal() { return wal_; }

 private:
  void Finalize(Transaction* txn, TxnState state);

  Wal* const wal_;
  LockManager* const locks_;
  Clock* const clock_;
  const bool sync_commit_;
  ChangeApplier* applier_ = nullptr;

  std::atomic<uint64_t> next_txn_id_{1};
  // Registry bookkeeping only: never held across wal_ / locks_ / listener
  // calls (listeners run on a copy taken under the lock).
  mutable Mutex mu_{"txnmgr.mu", lockorder::kRankTxn};
  std::unordered_map<uint64_t, std::unique_ptr<Transaction>> active_
      TENDAX_GUARDED_BY(mu_);
  std::vector<CommitListener> listeners_ TENDAX_GUARDED_BY(mu_);
  TxnManagerStats stats_ TENDAX_GUARDED_BY(mu_);

  // Registry mirrors of stats_ (null without a registry).
  Counter* m_begun_ = nullptr;
  Counter* m_committed_ = nullptr;
  Counter* m_aborted_ = nullptr;
  Counter* m_snapshot_reads_ = nullptr;
  Histogram* m_commit_micros_ = nullptr;
};

}  // namespace tendax

#endif  // TENDAX_TXN_TXN_MANAGER_H_

#ifndef TENDAX_TXN_TRANSACTION_H_
#define TENDAX_TXN_TRANSACTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/wal.h"
#include "txn/events.h"
#include "util/ids.h"

namespace tendax {

enum class TxnState : uint8_t { kActive = 0, kCommitted = 1, kAborted = 2 };

/// One entry of a transaction's write set; enough to undo the change
/// logically (and to find the WAL record chain).
struct WriteEntry {
  UpdateOp op;
  uint64_t table_id;
  uint64_t rid;
  std::string before;
  std::string after;
  Lsn lsn;
};

/// A database transaction. In TeNDaX every editing action — a keystroke, a
/// paste, a layout change, a workflow step — runs inside one of these, which
/// is what makes collaborative editing "real-time transactions".
///
/// A Transaction object is used by one thread at a time (the owning editor
/// session); the managers it touches are themselves thread-safe.
class Transaction {
 public:
  Transaction(TxnId id, UserId user, Timestamp start)
      : id_(id), user_(user), start_time_(start) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  UserId user() const { return user_; }
  TxnState state() const { return state_; }
  Timestamp start_time() const { return start_time_; }

  Lsn prev_lsn() const { return prev_lsn_; }
  void set_prev_lsn(Lsn lsn) { prev_lsn_ = lsn; }

  const std::vector<WriteEntry>& write_set() const { return write_set_; }
  void AddWrite(WriteEntry entry) { write_set_.push_back(std::move(entry)); }

  const ChangeBatch& events() const { return events_; }
  void AddEvent(ChangeEvent event) { events_.push_back(std::move(event)); }

  /// Registers compensation for a non-logged side effect (e.g. an in-memory
  /// index entry). Actions run in reverse order if the transaction aborts;
  /// they are discarded on commit. Actions are best-effort by contract —
  /// the abort path has no way to surface their status, which is why the
  /// registering lambdas `(void)`-discard the inner Status.
  void AddRollbackAction(std::function<void()> fn) {
    rollback_actions_.push_back(std::move(fn));
  }
  const std::vector<std::function<void()>>& rollback_actions() const {
    return rollback_actions_;
  }

  bool read_only() const { return write_set_.empty(); }

 private:
  friend class TxnManager;

  const TxnId id_;
  const UserId user_;
  const Timestamp start_time_;
  TxnState state_ = TxnState::kActive;
  Lsn prev_lsn_ = kInvalidLsn;
  std::vector<WriteEntry> write_set_;
  ChangeBatch events_;
  std::vector<std::function<void()>> rollback_actions_;
};

}  // namespace tendax

#endif  // TENDAX_TXN_TRANSACTION_H_

#ifndef TENDAX_TXN_TRANSACTION_H_
#define TENDAX_TXN_TRANSACTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/wal.h"
#include "txn/events.h"
#include "util/ids.h"

namespace tendax {

enum class TxnState : uint8_t { kActive = 0, kCommitted = 1, kAborted = 2 };

/// How a transaction interacts with concurrency control and the log.
///
/// `kSnapshotRead` is the MVCC read mode: the transaction reads published
/// document snapshots only, acquires no LockManager locks, writes no WAL
/// records (not even a begin record), and refuses `LogUpdate`. It exists so
/// read-only operations still run inside the transaction framework (events,
/// accounting, uniform call shape) without ever stalling behind a writer.
enum class TxnMode : uint8_t { kReadWrite = 0, kSnapshotRead = 1 };

/// One entry of a transaction's write set; enough to undo the change
/// logically (and to find the WAL record chain).
struct WriteEntry {
  UpdateOp op;
  uint64_t table_id;
  uint64_t rid;
  std::string before;
  std::string after;
  Lsn lsn;
};

/// A database transaction. In TeNDaX every editing action — a keystroke, a
/// paste, a layout change, a workflow step — runs inside one of these, which
/// is what makes collaborative editing "real-time transactions".
///
/// A Transaction object is used by one thread at a time (the owning editor
/// session); the managers it touches are themselves thread-safe.
class Transaction {
 public:
  Transaction(TxnId id, UserId user, Timestamp start,
              TxnMode mode = TxnMode::kReadWrite)
      : id_(id), user_(user), start_time_(start), mode_(mode) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  UserId user() const { return user_; }
  TxnState state() const { return state_; }
  Timestamp start_time() const { return start_time_; }
  TxnMode mode() const { return mode_; }
  bool is_snapshot_read() const { return mode_ == TxnMode::kSnapshotRead; }

  // prev_lsn is written by the owning thread on every logged change and
  // read concurrently by the fuzzy checkpointer's ATT snapshot; relaxed
  // atomics keep that race benign (the snapshot only needs *a* recent
  // value — truncation safety rests on first_lsn, which is written once
  // before the transaction is published).
  Lsn prev_lsn() const { return prev_lsn_.load(std::memory_order_relaxed); }
  void set_prev_lsn(Lsn lsn) {
    prev_lsn_.store(lsn, std::memory_order_relaxed);
  }

  /// LSN of this transaction's begin record; lower-bounds every record it
  /// will ever log. Fuzzy checkpoints snapshot it into the ATT so log
  /// truncation never discards records an undo might still need.
  Lsn first_lsn() const { return first_lsn_; }

  const std::vector<WriteEntry>& write_set() const { return write_set_; }
  void AddWrite(WriteEntry entry) { write_set_.push_back(std::move(entry)); }

  const ChangeBatch& events() const { return events_; }
  void AddEvent(ChangeEvent event) { events_.push_back(std::move(event)); }

  /// Registers compensation for a non-logged side effect (e.g. an in-memory
  /// index entry). Actions run in reverse order if the transaction aborts;
  /// they are discarded on commit. Actions are best-effort by contract —
  /// the abort path has no way to surface their status, which is why the
  /// registering lambdas `(void)`-discard the inner Status.
  void AddRollbackAction(std::function<void()> fn) {
    rollback_actions_.push_back(std::move(fn));
  }
  const std::vector<std::function<void()>>& rollback_actions() const {
    return rollback_actions_;
  }

  bool read_only() const { return write_set_.empty(); }

 private:
  friend class TxnManager;

  const TxnId id_;
  const UserId user_;
  const Timestamp start_time_;
  const TxnMode mode_;
  TxnState state_ = TxnState::kActive;
  std::atomic<Lsn> prev_lsn_{kInvalidLsn};
  Lsn first_lsn_ = kInvalidLsn;
  std::vector<WriteEntry> write_set_;
  ChangeBatch events_;
  std::vector<std::function<void()>> rollback_actions_;
};

}  // namespace tendax

#endif  // TENDAX_TXN_TRANSACTION_H_

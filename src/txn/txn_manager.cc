#include "txn/txn_manager.h"

#include "util/logging.h"

namespace tendax {

TxnManager::TxnManager(Wal* wal, LockManager* locks, Clock* clock,
                       bool sync_commit, MetricsRegistry* metrics)
    : wal_(wal), locks_(locks), clock_(clock), sync_commit_(sync_commit) {
  if (metrics != nullptr) {
    m_begun_ = metrics->counter("txn.begun");
    m_committed_ = metrics->counter("txn.committed");
    m_aborted_ = metrics->counter("txn.aborted");
    m_snapshot_reads_ = metrics->counter("txn.snapshot_reads");
    m_commit_micros_ = metrics->histogram("txn.commit_micros");
  }
}

Transaction* TxnManager::Begin(UserId user, TxnMode mode) {
  TxnId id(next_txn_id_.fetch_add(1, std::memory_order_relaxed));
  auto txn = std::make_unique<Transaction>(id, user, clock_->NowMicros(), mode);
  Transaction* raw = txn.get();
  // Snapshot-read transactions never log, so a begin record would only be
  // dead weight in the log (and would pin WAL truncation via the ATT).
  if (wal_ != nullptr && mode == TxnMode::kReadWrite) {
    LogRecord rec;
    rec.type = LogType::kBegin;
    rec.txn = id;
    auto lsn = wal_->Append(&rec);
    if (lsn.ok()) {
      raw->set_prev_lsn(*lsn);
      raw->first_lsn_ = *lsn;
    }
  }
  {
    MutexLock lock(mu_);
    active_[id.value] = std::move(txn);
    ++stats_.begun;
    MetricAdd(m_begun_);
  }
  if (mode == TxnMode::kSnapshotRead) MetricAdd(m_snapshot_reads_);
  return raw;
}

Status TxnManager::Commit(Transaction* txn) {
  TENDAX_CHECK(txn->state() == TxnState::kActive);
  // First statement after the precondition so every exit — append failure,
  // early-release flush failure, group-flush failure, and success — records
  // commit latency via RAII.
  ScopedTimer commit_timer(m_commit_micros_);
  if (wal_ != nullptr && !txn->read_only()) {
    LogRecord rec;
    rec.type = LogType::kCommit;
    rec.txn = txn->id();
    rec.prev_lsn = txn->prev_lsn();
    auto lsn = wal_->Append(&rec);
    if (!lsn.ok()) {
      // The append failure is what the caller must see; the rollback's own
      // status (best-effort on a failing log) would only mask it.
      (void)Abort(txn);
      return lsn.status();
    }
    if (sync_commit_) {
      bool early_released = false;
      if (wal_->ReleasesLocksEarly()) {
        // Early lock release: the commit record has its place in the log,
        // and group-commit durability is a prefix of commit-LSN order, so
        // any transaction that builds on these writes commits strictly
        // later and can never outlive this one across a crash. Releasing
        // now lets the next writer of a hot document run while this commit
        // waits for the shared fsync — without it, a document-level X lock
        // serializes committers through the flush and there is never a
        // group to coalesce.
        locks_->ReleaseAll(txn->id());
        early_released = true;
      }
      Status flushed = wal_->CommitFlush(*lsn);
      if (!flushed.ok()) {
        if (early_released) {
          // Locks are gone, so another transaction may already have built
          // on this one's writes — in-place undo would be unsound. The Wal
          // has fail-stopped (poisoned) itself: no further commit can
          // succeed, and reopen + recovery re-establishes consistency from
          // whatever the log retained. Finalize without undo so no locks
          // or transaction slots leak.
          Finalize(txn, TxnState::kAborted);
          MutexLock lock(mu_);
          ++stats_.aborted;
          MetricAdd(m_aborted_);
          return flushed;
        }
        // The flush may have been shared with other committers (group
        // commit); its error fans out to every waiter of the batch, and
        // each one rolls back here — effects undone, locks released, no
        // listeners run. Whether the commit record reached durable storage
        // is ambiguous; recovery resolves it from the surviving log.
        (void)Abort(txn);
        return flushed;
      }
    }
  }
  // Copy what listeners need before the transaction object is destroyed.
  TxnId id = txn->id();
  UserId user = txn->user();
  ChangeBatch events = txn->events();

  Finalize(txn, TxnState::kCommitted);

  std::vector<CommitListener> listeners;
  {
    MutexLock lock(mu_);
    ++stats_.committed;
    MetricAdd(m_committed_);
    listeners = listeners_;
  }
  for (const auto& listener : listeners) {
    listener(id, user, events);
  }
  return Status::OK();
}

Status TxnManager::Abort(Transaction* txn) {
  TENDAX_CHECK(txn->state() == TxnState::kActive);
  // Undo the write set in reverse order, logging a compensation record per
  // undone change so that a crash mid-abort recovers correctly. I/O failures
  // (the log device going down mid-abort, a page read error) degrade to
  // best-effort unlogged undo: the transaction is always finalized so locks
  // never leak, and crash recovery re-runs any missed undo from the
  // surviving log suffix.
  Status first_error = Status::OK();
  bool wal_ok = wal_ != nullptr;
  const auto& writes = txn->write_set();
  for (auto it = writes.rbegin(); it != writes.rend(); ++it) {
    UpdateOp inverse;
    const std::string* image;
    switch (it->op) {
      case UpdateOp::kInsert:
        inverse = UpdateOp::kDelete;
        image = &it->before;  // empty
        break;
      case UpdateOp::kDelete:
        inverse = UpdateOp::kInsert;
        image = &it->before;
        break;
      case UpdateOp::kUpdate:
        inverse = UpdateOp::kUpdate;
        image = &it->before;
        break;
      default:
        return Status::Internal("unknown op in write set");
    }
    Lsn clr_lsn = kInvalidLsn;
    if (wal_ok) {
      LogRecord clr;
      clr.type = LogType::kCompensation;
      clr.txn = txn->id();
      clr.prev_lsn = txn->prev_lsn();
      clr.op = inverse;
      clr.table_id = it->table_id;
      clr.rid = it->rid;
      clr.after = *image;
      clr.undo_next_lsn = it->lsn;
      auto lsn = wal_->Append(&clr);
      if (!lsn.ok()) {
        if (first_error.ok()) first_error = lsn.status();
        wal_ok = false;
      } else {
        clr_lsn = *lsn;
        txn->set_prev_lsn(clr_lsn);
      }
    }
    if (applier_ != nullptr) {
      Status applied = applier_->ApplyChange(it->table_id, inverse, it->rid,
                                             *image, clr_lsn);
      if (!applied.ok() && first_error.ok()) first_error = applied;
    }
  }
  if (wal_ok && !txn->read_only()) {
    LogRecord rec;
    rec.type = LogType::kAbort;
    rec.txn = txn->id();
    rec.prev_lsn = txn->prev_lsn();
    auto lsn = wal_->Append(&rec);
    if (!lsn.ok() && first_error.ok()) first_error = lsn.status();
  }
  // Undo non-logged side effects (index entries etc.) in reverse order.
  const auto& actions = txn->rollback_actions();
  for (auto it = actions.rbegin(); it != actions.rend(); ++it) {
    (*it)();
  }
  Finalize(txn, TxnState::kAborted);
  {
    MutexLock lock(mu_);
    ++stats_.aborted;
    MetricAdd(m_aborted_);
  }
  return first_error;
}

Status TxnManager::RunInTxn(UserId user,
                            const std::function<Status(Transaction*)>& body,
                            int max_retries) {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    Transaction* txn = Begin(user);
    Status st = body(txn);
    if (st.ok()) {
      // Commit rolls the transaction back itself on a failed append/flush,
      // so there is nothing left to abort here.
      return Commit(txn);
    }
    Status aborted = Abort(txn);
    if (!aborted.ok()) return aborted;
    if (!st.IsRetryable()) return st;
    last = st;
  }
  return last;
}

Status TxnManager::RunSnapshotRead(
    UserId user, const std::function<Status(Transaction*)>& body) {
  // Snapshot reads hold no locks, never log, and have nothing to undo, so
  // the registry round-trip (two global-mutex crossings per read) would be
  // pure overhead on the lock-free read path. Run on a stack transaction
  // that never enters `active_`: it is invisible to ActiveCount, the
  // checkpoint ATT, and the begun/committed accounting — consistent with
  // the WAL records it never writes.
  Transaction txn(TxnId(next_txn_id_.fetch_add(1, std::memory_order_relaxed)),
                  user, clock_->NowMicros(), TxnMode::kSnapshotRead);
  MetricAdd(m_snapshot_reads_);
  Status st = body(&txn);
  txn.state_ = st.ok() ? TxnState::kCommitted : TxnState::kAborted;
  return st;
}

void TxnManager::AddCommitListener(CommitListener listener) {
  MutexLock lock(mu_);
  listeners_.push_back(std::move(listener));
}

Result<Lsn> TxnManager::LogUpdate(Transaction* txn, UpdateOp op,
                                  uint64_t table_id, uint64_t rid,
                                  std::string before, std::string after) {
  if (txn->is_snapshot_read()) {
    return Status::FailedPrecondition(
        "snapshot-read transaction cannot log updates");
  }
  Lsn lsn = kInvalidLsn;
  if (wal_ != nullptr) {
    LogRecord rec;
    rec.type = LogType::kUpdate;
    rec.txn = txn->id();
    rec.prev_lsn = txn->prev_lsn();
    rec.op = op;
    rec.table_id = table_id;
    rec.rid = rid;
    rec.before = before;
    rec.after = after;
    auto res = wal_->Append(&rec);
    if (!res.ok()) return res.status();
    lsn = *res;
    txn->set_prev_lsn(lsn);
  }
  txn->AddWrite(WriteEntry{op, table_id, rid, std::move(before),
                           std::move(after), lsn});
  return lsn;
}

size_t TxnManager::ActiveCount() const {
  MutexLock lock(mu_);
  return active_.size();
}

std::vector<CheckpointTxnEntry> TxnManager::ActiveTxnTable() const {
  MutexLock lock(mu_);
  std::vector<CheckpointTxnEntry> att;
  att.reserve(active_.size());
  for (const auto& [id, txn] : active_) {
    // Snapshot-read transactions have no log records for recovery to walk:
    // including them (first_lsn = kInvalidLsn) would only pin truncation.
    if (txn->is_snapshot_read()) continue;
    CheckpointTxnEntry e;
    e.txn = id;
    e.first_lsn = txn->first_lsn();
    e.last_lsn = txn->prev_lsn();
    att.push_back(e);
  }
  return att;
}

TxnManagerStats TxnManager::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void TxnManager::Finalize(Transaction* txn, TxnState state) {
  txn->state_ = state;
  locks_->ReleaseAll(txn->id());
  MutexLock lock(mu_);
  active_.erase(txn->id().value);  // destroys *txn
}

}  // namespace tendax

#include "core/tendax.h"

namespace tendax {

Result<std::unique_ptr<TendaxServer>> TendaxServer::Open(
    TendaxOptions options) {
  auto server = std::unique_ptr<TendaxServer>(new TendaxServer());

  if (!options.db.metrics) {
    options.db.metrics =
        std::make_shared<MetricsRegistry>(options.metrics_enabled);
  }
  auto db = Database::Open(options.db);
  if (!db.ok()) return db.status();
  server->db_ = std::move(*db);
  Database* raw_db = server->db_.get();

  server->text_ = std::make_unique<TextStore>(raw_db);
  server->text_->SetSnapshotsEnabled(options.mvcc_snapshots);
  TENDAX_RETURN_IF_ERROR(server->text_->Init());

  server->meta_ = std::make_unique<MetaStore>(raw_db);
  TENDAX_RETURN_IF_ERROR(server->meta_->Init());

  server->acl_ = std::make_unique<AccessControl>(
      raw_db, server->text_.get(), options.default_open_access);
  TENDAX_RETURN_IF_ERROR(server->acl_->Init());

  server->docs_ =
      std::make_unique<DocumentModel>(raw_db, server->text_.get());
  TENDAX_RETURN_IF_ERROR(server->docs_->Init());

  server->sessions_ = std::make_unique<SessionManager>(
      raw_db, server->meta_.get(), options.session);
  TENDAX_RETURN_IF_ERROR(server->sessions_->Init());

  server->admission_ = std::make_unique<AdmissionController>(
      options.admission, raw_db->metrics());
  if (options.db.checkpoint_dirty_page_threshold > 0) {
    // Degradation signal: the same dirty-page threshold that triggers a
    // fuzzy checkpoint marks the server as under buffer-pool pressure.
    BufferPool* pool = raw_db->buffer_pool();
    const size_t threshold = options.db.checkpoint_dirty_page_threshold;
    server->admission_->SetPressureProbe(
        [pool, threshold] { return pool->DirtyCount() >= threshold; });
  }
  server->sessions_->AttachAdmission(server->admission_.get());

  server->undo_ = std::make_unique<UndoManager>(server->text_.get());

  server->workflows_ = std::make_unique<WorkflowEngine>(
      raw_db, server->text_.get(), server->acl_.get());
  TENDAX_RETURN_IF_ERROR(server->workflows_->Init());

  server->lineage_ = std::make_unique<LineageAnalyzer>(server->text_.get());

  server->folders_ = std::make_unique<FolderManager>(
      raw_db, server->text_.get(), server->meta_.get());
  TENDAX_RETURN_IF_ERROR(server->folders_->Init());

  server->search_ = std::make_unique<SearchEngine>(
      raw_db, server->text_.get(), server->meta_.get(), server->docs_.get(),
      server->lineage_.get());
  TENDAX_RETURN_IF_ERROR(server->search_->Init());

  server->text_miner_ = std::make_unique<TextMiner>(server->text_.get());
  server->visual_miner_ = std::make_unique<VisualMiner>(
      server->text_.get(), server->meta_.get(), server->lineage_.get(),
      raw_db->clock());
  server->diff_ = std::make_unique<VersionDiff>(server->text_.get());
  server->templates_ = std::make_unique<TemplateStore>(
      raw_db, server->text_.get(), server->docs_.get());
  TENDAX_RETURN_IF_ERROR(server->templates_->Init());

  return server;
}

Result<std::unique_ptr<Editor>> TendaxServer::AttachEditor(
    UserId user, const std::string& client) {
  auto session = sessions_->Connect(user, client);
  if (!session.ok()) return session.status();
  CollabServices services;
  services.text = text_.get();
  services.docs = docs_.get();
  services.acl = acl_.get();
  services.meta = meta_.get();
  services.sessions = sessions_.get();
  services.undo = undo_.get();
  services.metrics = db_->metrics();
  services.clock = db_->clock();
  services.admission = admission_.get();
  return std::make_unique<Editor>(services, *session, user);
}

}  // namespace tendax

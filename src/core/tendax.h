#ifndef TENDAX_CORE_TENDAX_H_
#define TENDAX_CORE_TENDAX_H_

#include <memory>
#include <string>

#include "collab/admission.h"
#include "collab/editor.h"
#include "collab/session_manager.h"
#include "collab/undo_manager.h"
#include "db/database.h"
#include "document/document_model.h"
#include "document/templates.h"
#include "folders/folders.h"
#include "lineage/lineage.h"
#include "meta/meta_store.h"
#include "mining/mining.h"
#include "search/search_engine.h"
#include "security/access_control.h"
#include "text/diff.h"
#include "text/text_store.h"
#include "workflow/workflow_engine.h"

namespace tendax {

/// Server configuration.
struct TendaxOptions {
  /// Storage/transaction options (path empty = in-memory database).
  /// `db.disk` and `db.log_storage` accept pre-built backends — fault
  /// injection tests plug `FaultInjecting{DiskManager,LogStorage}` wrappers
  /// in here and reopen over the inner backends to model a crash+restart.
  ///
  /// `db.group_commit` selects the commit-durability strategy: per-commit
  /// fsync, or group commit with a leader committer / a background flusher
  /// thread that coalesces all concurrently waiting keystroke commits into
  /// one fsync. The flusher's lifecycle is tied to the server: started on
  /// Open, drained and joined on destruction.
  ///
  /// `db.checkpoint_interval_micros` / `db.checkpoint_dirty_page_threshold`
  /// arm the background fuzzy checkpointer (either trigger suffices): it
  /// periodically writes back pre-checkpoint dirty pages, logs an ARIES
  /// begin/end pair, and — over the segmented WAL that file-backed servers
  /// use by default, rotating every `db.wal_segment_bytes` — deletes log
  /// segments recovery can no longer need. Editing continues throughout;
  /// the checkpointer thread stops with the server.
  DatabaseOptions db;
  /// Whether documents without explicit grants are open to every user
  /// (the demo's LAN-party default) or restricted to their creator.
  bool default_open_access = true;
  /// Session-resilience knobs: lease TTL (0 = immortal sessions) and the
  /// per-session change-stream cap before coalescing into a resync marker.
  SessionOptions session;
  /// Observability. Counters and gauges are always live (their cost is a
  /// relaxed atomic add); turning this off additionally disables latency
  /// histograms, so instrumented paths skip their clock reads — the
  /// near-zero-cost configuration benchmarked by BM_MetricsOverhead.
  /// Ignored when `db.metrics` is already set.
  bool metrics_enabled = true;
  /// MVCC snapshot reads (default on): committed edits publish immutable
  /// refcounted snapshots and read-only operations (GetText, time travel,
  /// copy sources, search indexing, stats) serve from them without
  /// acquiring document locks. Off = the pre-MVCC behavior, where reads
  /// share the handle mutex and Copy takes a shared document lock — the
  /// ablation baseline measured by bench_mvcc.
  bool mvcc_snapshots = true;
  /// Overload protection. `admission.max_inflight = 0` (the default) turns
  /// admission control off entirely; nonzero bounds concurrent wire
  /// requests, queues the overflow in priority order (heartbeats/resumes >
  /// edits > stats), and sheds the rest with typed kUnavailable + a
  /// retry-after hint. The degradation probe is wired automatically: when
  /// `db.checkpoint_dirty_page_threshold` is set and the buffer pool's
  /// dirty-page count reaches it, background traffic is shed outright and
  /// new sessions are refused until pressure clears.
  AdmissionOptions admission;
};

/// The TeNDaX server: one embedded database plus every subsystem of the
/// paper wired together — native text storage, automatic metadata capture,
/// access control, collaborative sessions with awareness and undo/redo,
/// in-document workflows, dynamic folders, data lineage, search, and
/// text/visual mining.
///
/// Typical use:
///
///   auto server = TendaxServer::Open({});
///   auto alice  = (*server)->accounts()->CreateUser("alice");
///   auto editor = (*server)->AttachEditor(*alice, "editor-linux");
///   auto doc    = (*editor)->CreateDocument("notes.txt");
///   (*editor)->Type(*doc, 0, "hello, tendax");
class TendaxServer {
 public:
  static Result<std::unique_ptr<TendaxServer>> Open(TendaxOptions options);

  TendaxServer(const TendaxServer&) = delete;
  TendaxServer& operator=(const TendaxServer&) = delete;

  /// Connects a new editor client for `user`.
  Result<std::unique_ptr<Editor>> AttachEditor(UserId user,
                                               const std::string& client);

  Database* db() { return db_.get(); }
  MetricsRegistry* metrics() { return db_->metrics(); }
  TextStore* text() { return text_.get(); }
  MetaStore* meta() { return meta_.get(); }
  AccessControl* accounts() { return acl_.get(); }
  DocumentModel* documents() { return docs_.get(); }
  SessionManager* sessions() { return sessions_.get(); }
  AdmissionController* admission() { return admission_.get(); }
  UndoManager* undo() { return undo_.get(); }
  WorkflowEngine* workflows() { return workflows_.get(); }
  LineageAnalyzer* lineage() { return lineage_.get(); }
  FolderManager* folders() { return folders_.get(); }
  SearchEngine* search() { return search_.get(); }
  TextMiner* text_miner() { return text_miner_.get(); }
  VisualMiner* visual_miner() { return visual_miner_.get(); }
  VersionDiff* diff() { return diff_.get(); }
  TemplateStore* templates() { return templates_.get(); }

  /// Quiescent checkpoint of the underlying database. Fails with
  /// FailedPrecondition while any transaction is active — prefer
  /// `CheckpointNow()` on a live server.
  Status Checkpoint() { return db_->Checkpoint(); }

  /// Fuzzy checkpoint: runs concurrently with active editor sessions.
  Status CheckpointNow() { return db_->CheckpointNow(); }

  /// Full structural integrity sweep of the underlying database (pages,
  /// tables, indexes). See `Database::CheckIntegrity`.
  Status CheckIntegrity() const { return db_->CheckIntegrity(); }

 private:
  TendaxServer() = default;

  std::unique_ptr<Database> db_;
  std::unique_ptr<TextStore> text_;
  std::unique_ptr<MetaStore> meta_;
  std::unique_ptr<AccessControl> acl_;
  std::unique_ptr<DocumentModel> docs_;
  std::unique_ptr<SessionManager> sessions_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<UndoManager> undo_;
  std::unique_ptr<WorkflowEngine> workflows_;
  std::unique_ptr<LineageAnalyzer> lineage_;
  std::unique_ptr<FolderManager> folders_;
  std::unique_ptr<SearchEngine> search_;
  std::unique_ptr<TextMiner> text_miner_;
  std::unique_ptr<VisualMiner> visual_miner_;
  std::unique_ptr<VersionDiff> diff_;
  std::unique_ptr<TemplateStore> templates_;
};

}  // namespace tendax

#endif  // TENDAX_CORE_TENDAX_H_

#include "testing/fault_injection.h"

#include <cstring>

#include "storage/page.h"

namespace tendax {

namespace {

Status Injected(IoOp op, const FaultDecision& decision) {
  return Status::IOError("injected fault: " + std::string(IoOpName(op)) +
                         " at op " + std::to_string(decision.op_index));
}

Status Crashed(IoOp op) {
  return Status::IOError("injected crash: storage is down (" +
                         std::string(IoOpName(op)) + ")");
}

}  // namespace

Result<PageId> FaultInjectingDiskManager::AllocatePage() {
  FaultDecision d = plan_->OnIo(IoOp::kAllocatePage, 0);
  if (d.action == FaultAction::kCrashed) return Crashed(IoOp::kAllocatePage);
  if (d.action != FaultAction::kProceed) {
    return Injected(IoOp::kAllocatePage, d);
  }
  return inner_->AllocatePage();
}

Status FaultInjectingDiskManager::ReadPage(PageId id, char* out) {
  FaultDecision d = plan_->OnIo(IoOp::kReadPage, 0);
  if (d.action == FaultAction::kCrashed) return Crashed(IoOp::kReadPage);
  if (d.action != FaultAction::kProceed) return Injected(IoOp::kReadPage, d);
  return inner_->ReadPage(id, out);
}

Status FaultInjectingDiskManager::WritePage(PageId id, const char* data) {
  FaultDecision d = plan_->OnIo(IoOp::kWritePage, kPageSize);
  switch (d.action) {
    case FaultAction::kProceed:
      return inner_->WritePage(id, data);
    case FaultAction::kFail:
      return Injected(IoOp::kWritePage, d);
    case FaultAction::kTear: {
      // A torn page: the first keep_bytes of the new image land on disk,
      // the rest keeps its previous contents.
      char merged[kPageSize];
      Status st = inner_->ReadPage(id, merged);
      if (!st.ok()) return st;
      memcpy(merged, data, d.keep_bytes);
      // The caller sees the injected crash regardless of whether the torn
      // image landed — exactly like real power loss mid-write.
      (void)inner_->WritePage(id, merged);
      return Injected(IoOp::kWritePage, d);
    }
    case FaultAction::kCrashed:
      return Crashed(IoOp::kWritePage);
  }
  return Status::Internal("unreachable");
}

Status FaultInjectingDiskManager::Sync() {
  FaultDecision d = plan_->OnIo(IoOp::kDiskSync, 0);
  if (d.action == FaultAction::kCrashed) return Crashed(IoOp::kDiskSync);
  if (d.action != FaultAction::kProceed) return Injected(IoOp::kDiskSync, d);
  return inner_->Sync();
}

Status FaultInjectingLogStorage::Append(const Slice& data) {
  FaultDecision d = plan_->OnIo(IoOp::kLogAppend, data.size());
  switch (d.action) {
    case FaultAction::kProceed:
      return inner_->Append(data);
    case FaultAction::kFail:
      return Injected(IoOp::kLogAppend, d);
    case FaultAction::kTear:
      // Torn tail: only a prefix of the record bytes reaches the log. The
      // injected crash masks the inner status, as real power loss would.
      (void)inner_->Append(Slice(data.data(), d.keep_bytes));
      return Injected(IoOp::kLogAppend, d);
    case FaultAction::kCrashed:
      return Crashed(IoOp::kLogAppend);
  }
  return Status::Internal("unreachable");
}

Status FaultInjectingLogStorage::Sync() {
  FaultDecision d = plan_->OnIo(IoOp::kLogSync, 0);
  if (d.action == FaultAction::kCrashed) return Crashed(IoOp::kLogSync);
  if (d.action != FaultAction::kProceed) return Injected(IoOp::kLogSync, d);
  return inner_->Sync();
}

Status FaultInjectingLogStorage::ReadAll(std::string* out) {
  FaultDecision d = plan_->OnIo(IoOp::kLogRead, 0);
  if (d.action == FaultAction::kCrashed) return Crashed(IoOp::kLogRead);
  if (d.action != FaultAction::kProceed) return Injected(IoOp::kLogRead, d);
  return inner_->ReadAll(out);
}

Status FaultInjectingLogStorage::Truncate() {
  FaultDecision d = plan_->OnIo(IoOp::kLogTruncate, 0);
  if (d.action == FaultAction::kCrashed) return Crashed(IoOp::kLogTruncate);
  if (d.action != FaultAction::kProceed) {
    return Injected(IoOp::kLogTruncate, d);
  }
  return inner_->Truncate();
}

Status FaultInjectingLogStorage::ReadSegment(uint64_t id, std::string* out) {
  FaultDecision d = plan_->OnIo(IoOp::kLogRead, 0);
  if (d.action == FaultAction::kCrashed) return Crashed(IoOp::kLogRead);
  if (d.action != FaultAction::kProceed) return Injected(IoOp::kLogRead, d);
  return inner_->ReadSegment(id, out);
}

Status FaultInjectingLogStorage::RotateSegment(uint64_t* new_id) {
  FaultDecision d = plan_->OnIo(IoOp::kLogRotate, 0);
  if (d.action == FaultAction::kCrashed) return Crashed(IoOp::kLogRotate);
  if (d.action != FaultAction::kProceed) return Injected(IoOp::kLogRotate, d);
  return inner_->RotateSegment(new_id);
}

Status FaultInjectingLogStorage::DropSegment(uint64_t id,
                                             uint64_t* bytes_freed) {
  FaultDecision d = plan_->OnIo(IoOp::kLogDropSegment, 0);
  if (d.action == FaultAction::kCrashed) {
    return Crashed(IoOp::kLogDropSegment);
  }
  if (d.action != FaultAction::kProceed) {
    return Injected(IoOp::kLogDropSegment, d);
  }
  return inner_->DropSegment(id, bytes_freed);
}

}  // namespace tendax

#include "testing/flaky_transport.h"

#include <algorithm>

namespace tendax {

const char* NetFaultName(NetFault fault) {
  switch (fault) {
    case NetFault::kNone:
      return "None";
    case NetFault::kDropRequest:
      return "DropRequest";
    case NetFault::kDupRequest:
      return "DupRequest";
    case NetFault::kDelayRequest:
      return "DelayRequest";
    case NetFault::kCorruptRequest:
      return "CorruptRequest";
    case NetFault::kDropResponse:
      return "DropResponse";
    case NetFault::kDelayResponse:
      return "DelayResponse";
    case NetFault::kCorruptResponse:
      return "CorruptResponse";
  }
  return "Unknown";
}

NetFaultOptions NetFaultOptions::Uniform(uint64_t seed, double rate) {
  NetFaultOptions options;
  options.seed = seed;
  options.drop_request = rate;
  options.dup_request = rate;
  options.delay_request = rate;
  options.corrupt_request = rate;
  options.drop_response = rate;
  options.delay_response = rate;
  options.corrupt_response = rate;
  return options;
}

FlakyTransport::FlakyTransport(RemoteEditorEndpoint* endpoint,
                               NetFaultOptions options)
    : endpoint_(endpoint), options_(options), rng_(options.seed) {}

void FlakyTransport::Force(uint64_t nth_round_trip, NetFault fault) {
  forced_[nth_round_trip] = fault;
}

void FlakyTransport::Disarm() {
  armed_ = false;
  ReleaseDue(/*flush_all=*/true);
}

NetFault FlakyTransport::RollRequestLeg() {
  const double roll = rng_.NextDouble();
  double edge = options_.drop_request;
  if (roll < edge) return NetFault::kDropRequest;
  if (roll < (edge += options_.dup_request)) return NetFault::kDupRequest;
  if (roll < (edge += options_.delay_request)) return NetFault::kDelayRequest;
  if (roll < (edge += options_.corrupt_request)) {
    return NetFault::kCorruptRequest;
  }
  return NetFault::kNone;
}

NetFault FlakyTransport::RollResponseLeg() {
  const double roll = rng_.NextDouble();
  double edge = options_.drop_response;
  if (roll < edge) return NetFault::kDropResponse;
  if (roll < (edge += options_.delay_response)) {
    return NetFault::kDelayResponse;
  }
  if (roll < (edge += options_.corrupt_response)) {
    return NetFault::kCorruptResponse;
  }
  return NetFault::kNone;
}

std::string FlakyTransport::Corrupt(std::string frame) {
  if (frame.empty()) return frame;
  const size_t flips = 1 + rng_.Uniform(4);
  for (size_t i = 0; i < flips; ++i) {
    const size_t pos = rng_.Uniform(frame.size());
    frame[pos] = static_cast<char>(frame[pos] ^ (1 << rng_.Uniform(8)));
  }
  return frame;
}

void FlakyTransport::ReleaseDue(bool flush_all) {
  // Late frames hit the server in arrival order; their responses go
  // nowhere (the original caller timed out long ago). This is the stale
  // retry that the server's dedup cache must render harmless.
  auto it = delayed_.begin();
  while (it != delayed_.end()) {
    if (flush_all || it->due <= round_trips_) {
      (void)endpoint_->HandleFrame(it->frame);
      ++stats_.late_deliveries;
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<std::string> FlakyTransport::RoundTrip(const std::string& request) {
  ++round_trips_;
  ++stats_.round_trips;
  ReleaseDue(/*flush_all=*/false);
  if (!armed_) return endpoint_->HandleFrame(request);

  NetFault fault;
  if (auto it = forced_.find(round_trips_); it != forced_.end()) {
    fault = it->second;
  } else {
    fault = RollRequestLeg();
    if (fault == NetFault::kNone) fault = RollResponseLeg();
  }

  // Request leg.
  Result<std::string> response = Status::IOError("unreachable");
  switch (fault) {
    case NetFault::kDropRequest:
      ++stats_.dropped;
      return Status::IOError("timeout: request lost");
    case NetFault::kDelayRequest:
      ++stats_.delayed;
      delayed_.push_back(Delayed{
          request, round_trips_ + 1 +
                       (options_.max_delay_round_trips != 0
                            ? rng_.Uniform(options_.max_delay_round_trips)
                            : 0)});
      return Status::IOError("timeout: request delayed past deadline");
    case NetFault::kCorruptRequest:
      ++stats_.corrupted;
      // The server's checksum rejects the frame; nothing comes back.
      (void)endpoint_->HandleFrame(Corrupt(request));
      return Status::IOError("timeout: request damaged in flight");
    case NetFault::kDupRequest:
      ++stats_.duplicated;
      (void)endpoint_->HandleFrame(request);
      response = endpoint_->HandleFrame(request);
      break;
    default:
      response = endpoint_->HandleFrame(request);
      break;
  }
  if (!response.ok()) return response.status();

  // Response leg.
  switch (fault) {
    case NetFault::kDropResponse:
      ++stats_.dropped;
      return Status::IOError("timeout: response lost");
    case NetFault::kDelayResponse:
      // The reply exists but arrives after the client's deadline; for a
      // synchronous round trip that is indistinguishable from loss.
      ++stats_.delayed;
      return Status::IOError("timeout: response delayed past deadline");
    case NetFault::kCorruptResponse:
      ++stats_.corrupted;
      return Corrupt(std::move(*response));
    default:
      return response;
  }
}

std::string FlakyTransport::Describe() const {
  auto rate = [](double v) {
    std::string s = std::to_string(v);
    s.resize(std::min<size_t>(s.size(), 5));
    return s;
  };
  std::string out = "FlakyTransport{seed=" + std::to_string(options_.seed);
  out += ", drop_req=" + rate(options_.drop_request);
  out += ", dup_req=" + rate(options_.dup_request);
  out += ", delay_req=" + rate(options_.delay_request);
  out += ", corrupt_req=" + rate(options_.corrupt_request);
  out += ", drop_resp=" + rate(options_.drop_response);
  out += ", delay_resp=" + rate(options_.delay_response);
  out += ", corrupt_resp=" + rate(options_.corrupt_response);
  for (const auto& [n, fault] : forced_) {
    out += ", force@" + std::to_string(n) + "=" + NetFaultName(fault);
  }
  out += ", round_trips=" + std::to_string(stats_.round_trips) + "}";
  return out;
}

}  // namespace tendax

#ifndef TENDAX_TESTING_FAULT_INJECTION_H_
#define TENDAX_TESTING_FAULT_INJECTION_H_

#include <memory>
#include <string>

#include "storage/disk_manager.h"
#include "storage/wal.h"
#include "testing/fault_plan.h"

namespace tendax {

/// A `DiskManager` decorator that consults a shared `FaultPlan` before every
/// call. Injected failures return `Status::IOError`; torn writes persist a
/// prefix of the new page image over the old bytes (exactly what a power
/// cut mid-sector-write leaves behind) and then put the plan into the
/// crashed state. Plug it into `DatabaseOptions::disk` (and therefore
/// `TendaxOptions::db.disk`) to torture a full server; after the simulated
/// crash, reopen over the inner manager to model a restart.
class FaultInjectingDiskManager : public DiskManager {
 public:
  FaultInjectingDiskManager(std::shared_ptr<DiskManager> inner,
                            std::shared_ptr<FaultPlan> plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* data) override;
  uint32_t NumPages() const override { return inner_->NumPages(); }
  Status Sync() override;

  DiskManager* inner() { return inner_.get(); }
  FaultPlan* plan() { return plan_.get(); }

 private:
  std::shared_ptr<DiskManager> inner_;
  std::shared_ptr<FaultPlan> plan_;
};

/// A `LogStorage` decorator driven by the same `FaultPlan`: appends can
/// fail, tear (persist a prefix of the record bytes, then crash), or be
/// swallowed by a crashed plan; `Sync` failures model an fsync error at
/// commit time. Plug it into `DatabaseOptions::log_storage`.
///
/// Segmentation passes through: wrapping a `SegmentedLogStorage` yields a
/// segmented decorated log, so checkpoint crash sweeps can fault rotation
/// (kLogRotate) and segment deletion (kLogDropSegment) too. Tear faults on
/// these ops degrade to plain failures — there is no partial rotate/unlink
/// to model; the plan still enters the crashed state.
class FaultInjectingLogStorage : public LogStorage {
 public:
  FaultInjectingLogStorage(std::shared_ptr<LogStorage> inner,
                           std::shared_ptr<FaultPlan> plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}

  Status Append(const Slice& data) override;
  Status Sync() override;
  Status ReadAll(std::string* out) override;
  Status Truncate() override;

  bool segmented() const override { return inner_->segmented(); }
  uint64_t current_segment() const override {
    return inner_->current_segment();
  }
  std::vector<uint64_t> SegmentIds() const override {
    return inner_->SegmentIds();
  }
  uint64_t SegmentBytes(uint64_t id) const override {
    return inner_->SegmentBytes(id);
  }
  Status ReadSegment(uint64_t id, std::string* out) override;
  Status RotateSegment(uint64_t* new_id) override;
  Status DropSegment(uint64_t id, uint64_t* bytes_freed) override;

  LogStorage* inner() { return inner_.get(); }
  FaultPlan* plan() { return plan_.get(); }

 private:
  std::shared_ptr<LogStorage> inner_;
  std::shared_ptr<FaultPlan> plan_;
};

}  // namespace tendax

#endif  // TENDAX_TESTING_FAULT_INJECTION_H_

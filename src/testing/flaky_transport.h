#ifndef TENDAX_TESTING_FLAKY_TRANSPORT_H_
#define TENDAX_TESTING_FLAKY_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "collab/wire.h"
#include "util/random.h"

namespace tendax {

/// What the transport does to one round trip. Request-leg faults strike
/// before the server sees the frame; response-leg faults strike after the
/// command executed — the difference is exactly what idempotency keys and
/// resumable streams exist to mask.
enum class NetFault : uint8_t {
  kNone = 0,
  kDropRequest,      // server never sees the command
  kDupRequest,       // server executes the frame twice
  kDelayRequest,     // frame held back, redelivered after later round trips
  kCorruptRequest,   // bit flips in flight; checksum rejects it server-side
  kDropResponse,     // command executed, reply lost
  kDelayResponse,    // command executed, reply arrives after the timeout
  kCorruptResponse,  // reply damaged; checksum rejects it client-side
};

const char* NetFaultName(NetFault fault);

/// A seeded schedule of network faults, the transport sibling of
/// `FaultPlan`: per-round-trip fault probabilities, plus exact overrides
/// ("fault round trip N") for targeted regressions. A given seed plus a
/// given workload reproduces the same fault sequence bit-for-bit.
struct NetFaultOptions {
  uint64_t seed = 1;
  // Independent per-leg probabilities in [0, 1]. Evaluated in declaration
  // order; at most one fault fires per leg.
  double drop_request = 0.0;
  double dup_request = 0.0;
  double delay_request = 0.0;
  double corrupt_request = 0.0;
  double drop_response = 0.0;
  double delay_response = 0.0;
  double corrupt_response = 0.0;
  /// A delayed request is redelivered after up to this many later round
  /// trips (seeded choice), i.e. out of order with newer commands.
  uint32_t max_delay_round_trips = 3;

  /// Every fault kind at the same `rate` — the sweep-test workhorse.
  static NetFaultOptions Uniform(uint64_t seed, double rate);
};

/// A deterministic, fault-injecting `WireTransport` over an in-process
/// `RemoteEditorEndpoint`. Frames are sealed/checksummed; corruption is
/// surfaced to either side as frame loss, drops and delays as timeouts
/// (`kIOError`). Delayed request frames are redelivered late — stale
/// retries landing after newer commands, which the server-side dedup cache
/// must absorb.
class FlakyTransport : public WireTransport {
 public:
  FlakyTransport(RemoteEditorEndpoint* endpoint, NetFaultOptions options);

  Result<std::string> RoundTrip(const std::string& request) override;

  /// Forces `fault` on the `nth` round trip (1-based), overriding the
  /// probabilistic roll. Call before the run for targeted regressions.
  void Force(uint64_t nth_round_trip, NetFault fault);

  /// Faithful delivery from now on; pending delayed frames are flushed to
  /// the server first (they were already "in the network").
  void Disarm();

  struct Stats {
    uint64_t round_trips = 0;
    uint64_t dropped = 0;
    uint64_t duplicated = 0;
    uint64_t delayed = 0;
    uint64_t corrupted = 0;
    uint64_t late_deliveries = 0;  // delayed frames redelivered
  };
  const Stats& stats() const { return stats_; }

  /// One-line reproduction recipe, e.g.
  /// "FlakyTransport{seed=7, drop_req=0.1, ..., round_trips=42}".
  std::string Describe() const;

 private:
  NetFault RollRequestLeg();
  NetFault RollResponseLeg();
  std::string Corrupt(std::string frame);
  /// Redelivers delayed frames whose due round trip has passed.
  void ReleaseDue(bool flush_all);

  RemoteEditorEndpoint* const endpoint_;
  const NetFaultOptions options_;
  Random rng_;
  bool armed_ = true;
  uint64_t round_trips_ = 0;
  std::map<uint64_t, NetFault> forced_;  // round trip -> fault
  struct Delayed {
    std::string frame;
    uint64_t due;  // round trip index after which it is redelivered
  };
  std::vector<Delayed> delayed_;
  Stats stats_;
};

}  // namespace tendax

#endif  // TENDAX_TESTING_FLAKY_TRANSPORT_H_

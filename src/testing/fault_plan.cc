#include "testing/fault_plan.h"

namespace tendax {

const char* IoOpName(IoOp op) {
  switch (op) {
    case IoOp::kAllocatePage:
      return "AllocatePage";
    case IoOp::kReadPage:
      return "ReadPage";
    case IoOp::kWritePage:
      return "WritePage";
    case IoOp::kDiskSync:
      return "DiskSync";
    case IoOp::kLogAppend:
      return "LogAppend";
    case IoOp::kLogSync:
      return "LogSync";
    case IoOp::kLogRead:
      return "LogRead";
    case IoOp::kLogTruncate:
      return "LogTruncate";
    case IoOp::kLogRotate:
      return "LogRotate";
    case IoOp::kLogDropSegment:
      return "LogDropSegment";
  }
  return "Unknown";
}

void FaultPlan::FailOp(uint64_t index) {
  MutexLock lock(mu_);
  by_op_[index] = Spec{FaultAction::kFail, 0};
}

void FaultPlan::CrashAtOp(uint64_t index) {
  MutexLock lock(mu_);
  by_op_[index] = Spec{FaultAction::kCrashed, 0};
}

void FaultPlan::TearNthLogAppend(uint64_t n, size_t keep_bytes) {
  MutexLock lock(mu_);
  by_append_[n] = Spec{FaultAction::kTear, keep_bytes};
}

void FaultPlan::TearNthPageWrite(uint64_t n, size_t keep_bytes) {
  MutexLock lock(mu_);
  by_page_write_[n] = Spec{FaultAction::kTear, keep_bytes};
}

void FaultPlan::FailNthSync(uint64_t n) {
  MutexLock lock(mu_);
  by_sync_[n] = Spec{FaultAction::kFail, 0};
}

FaultDecision FaultPlan::OnIo(IoOp op, size_t data_size) {
  MutexLock lock(mu_);
  FaultDecision decision;
  decision.op_index = ++ops_;

  // Per-kind ordinals advance regardless of arming so that profiling runs
  // and injected runs see identical numbering.
  uint64_t ordinal = 0;
  const std::map<uint64_t, Spec>* kind_map = nullptr;
  switch (op) {
    case IoOp::kLogAppend:
      ordinal = ++appends_;
      kind_map = &by_append_;
      break;
    case IoOp::kWritePage:
      ordinal = ++page_writes_;
      kind_map = &by_page_write_;
      break;
    case IoOp::kDiskSync:
    case IoOp::kLogSync:
      ordinal = ++syncs_;
      kind_map = &by_sync_;
      break;
    default:
      break;
  }

  if (!armed_) return decision;
  if (crashed_) {
    decision.action = FaultAction::kCrashed;
    return decision;
  }

  const Spec* hit = nullptr;
  if (auto it = by_op_.find(decision.op_index); it != by_op_.end()) {
    hit = &it->second;
  } else if (kind_map != nullptr) {
    if (auto kit = kind_map->find(ordinal); kit != kind_map->end()) {
      hit = &kit->second;
    }
  }
  if (hit == nullptr) return decision;

  decision.action = hit->action;
  if (hit->action == FaultAction::kTear) {
    decision.keep_bytes = hit->keep_bytes != kAutoTear
                              ? hit->keep_bytes
                              : (data_size > 0 ? rng_.Uniform(data_size) : 0);
    if (decision.keep_bytes > data_size) decision.keep_bytes = data_size;
    crashed_ = true;
  } else if (hit->action == FaultAction::kCrashed) {
    crashed_ = true;
  }
  if (!triggered_.empty()) triggered_ += ",";
  triggered_ += std::string(IoOpName(op)) + "@" +
                std::to_string(decision.op_index);
  return decision;
}

void FaultPlan::Disarm() {
  MutexLock lock(mu_);
  armed_ = false;
  crashed_ = false;
}

bool FaultPlan::crashed() const {
  MutexLock lock(mu_);
  return crashed_;
}

uint64_t FaultPlan::ops_seen() const {
  MutexLock lock(mu_);
  return ops_;
}

uint64_t FaultPlan::appends_seen() const {
  MutexLock lock(mu_);
  return appends_;
}

uint64_t FaultPlan::page_writes_seen() const {
  MutexLock lock(mu_);
  return page_writes_;
}

uint64_t FaultPlan::syncs_seen() const {
  MutexLock lock(mu_);
  return syncs_;
}

std::string FaultPlan::Describe() const {
  MutexLock lock(mu_);
  std::string out = "FaultPlan{seed=" + std::to_string(seed_);
  auto add = [&out](const char* what, const std::map<uint64_t, Spec>& m) {
    for (const auto& [idx, spec] : m) {
      out += std::string(", ") + what + "=" + std::to_string(idx);
      if (spec.action == FaultAction::kTear && spec.keep_bytes != kAutoTear) {
        out += "(keep " + std::to_string(spec.keep_bytes) + "B)";
      }
    }
  };
  add("op", by_op_);
  add("log_append", by_append_);
  add("page_write", by_page_write_);
  add("sync", by_sync_);
  if (!triggered_.empty()) out += ", triggered=" + triggered_;
  out += ", ops_seen=" + std::to_string(ops_) + "}";
  return out;
}

}  // namespace tendax

#include "testing/schedule_controller.h"

#include <sstream>

namespace tendax {

void ScheduleController::PauseAtFlush(uint64_t n) {
  MutexLock lock(mu_);
  pause_at_.insert(n);
}

uint64_t ScheduleController::PickFlush(uint64_t lo, uint64_t hi) {
  MutexLock lock(mu_);
  if (hi <= lo) return lo;
  return lo + rng_.Uniform(hi - lo + 1);
}

bool ScheduleController::WaitUntilPaused(std::chrono::milliseconds timeout) {
  MutexLock lock(mu_);
  return cv_.WaitFor(lock, timeout, [&] { return paused_; });
}

bool ScheduleController::WaitForWaiters(size_t k,
                                        std::chrono::milliseconds timeout) {
  MutexLock lock(mu_);
  return cv_.WaitFor(lock, timeout, [&] { return waiters_now_ >= k; });
}

void ScheduleController::ReleaseFlush() {
  MutexLock lock(mu_);
  if (started_ > released_through_) released_through_ = started_;
  cv_.NotifyAll();
}

uint64_t ScheduleController::flushes_started() const {
  MutexLock lock(mu_);
  return started_;
}

uint64_t ScheduleController::flushes_finished() const {
  MutexLock lock(mu_);
  return finished_;
}

size_t ScheduleController::max_waiters_seen() const {
  MutexLock lock(mu_);
  return max_waiters_;
}

std::string ScheduleController::Describe() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  out << "ScheduleController{seed=" << seed_ << ", flushes=" << finished_
      << "/" << started_ << ", max_waiters=" << max_waiters_;
  if (!pause_at_.empty()) {
    out << ", pause_at=";
    bool first = true;
    for (uint64_t n : pause_at_) {
      out << (first ? "" : ",") << n;
      first = false;
    }
  }
  out << "}";
  return out.str();
}

void ScheduleController::OnCommitEnqueued(size_t waiters, Lsn lsn) {
  (void)lsn;
  MutexLock lock(mu_);
  // `waiters` is the live group size at enqueue time. Committers leaving
  // after a flush are not observed, so this is only exact while the gate is
  // closed — which is exactly when WaitForWaiters is used.
  waiters_now_ = waiters;
  if (waiters > max_waiters_) max_waiters_ = waiters;
  cv_.NotifyAll();
}

void ScheduleController::OnGroupFlushStart(uint64_t flush_index,
                                           size_t waiters, Lsn target) {
  (void)waiters;
  (void)target;
  MutexLock lock(mu_);
  started_ = flush_index;
  if (pause_at_.count(flush_index) != 0 && released_through_ < flush_index) {
    paused_ = true;
    cv_.NotifyAll();
    cv_.Wait(lock, [&] { return released_through_ >= flush_index; });
    paused_ = false;
  }
}

void ScheduleController::OnGroupFlushEnd(uint64_t flush_index,
                                         const Status& status) {
  (void)status;
  MutexLock lock(mu_);
  finished_ = flush_index;
  waiters_now_ = 0;
  cv_.NotifyAll();
}

void ScheduleController::PauseAtCheckpoint(uint64_t checkpoint_index,
                                           CheckpointPhase phase) {
  MutexLock lock(mu_);
  ckpt_pause_at_.emplace(checkpoint_index, static_cast<uint8_t>(phase));
}

bool ScheduleController::WaitUntilCheckpointPaused(
    std::chrono::milliseconds timeout) {
  MutexLock lock(mu_);
  return cv_.WaitFor(lock, timeout, [&] { return ckpt_paused_; });
}

void ScheduleController::ReleaseCheckpoint() {
  MutexLock lock(mu_);
  ckpt_release_ = true;
  cv_.NotifyAll();
}

void ScheduleController::OnCheckpointPhase(uint64_t checkpoint_index,
                                           CheckpointPhase phase) {
  MutexLock lock(mu_);
  auto key = std::make_pair(checkpoint_index, static_cast<uint8_t>(phase));
  auto it = ckpt_pause_at_.find(key);
  if (it == ckpt_pause_at_.end()) return;
  ckpt_pause_at_.erase(it);
  ckpt_paused_ = true;
  cv_.NotifyAll();
  cv_.Wait(lock, [&] { return ckpt_release_; });
  ckpt_release_ = false;
  ckpt_paused_ = false;
  cv_.NotifyAll();
}

}  // namespace tendax

#ifndef TENDAX_TESTING_SCHEDULE_CONTROLLER_H_
#define TENDAX_TESTING_SCHEDULE_CONTROLLER_H_

#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <utility>

#include "db/checkpointer.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/random.h"

namespace tendax {

/// A seeded concurrency-schedule controller for the group-commit pipeline.
///
/// Plugged into `GroupCommitOptions::hooks`, it lets a test pause the
/// flusher (background thread or leader committer) at chosen coalesced
/// flush indices, pile up concurrent committers and storage faults behind
/// the closed gate, and then release the flush into the prepared
/// interleaving. Combined with `FaultPlan`'s op-index machinery this makes
/// schedules like "commit waiting when the crash fires", "batch torn
/// mid-append" and "flush error fans out to K waiters" deterministic.
///
/// Control flow of a typical test:
///
///   auto sched = std::make_shared<ScheduleController>(seed);
///   sched->PauseAtFlush(1);                  // gate the first group flush
///   ... start K committing threads ...
///   ASSERT_TRUE(sched->WaitForWaiters(K));   // all K are enqueued
///   plan->FailNthSync(plan->syncs_seen() + 1);
///   sched->ReleaseFlush();                   // open the gate
///   ... join threads, assert the fan-out ...
///
/// Thread-safe. `seed` only drives `PickFlush` and is echoed by
/// `Describe()` so failures are reproducible.
///
/// It is also a `CheckpointHooks`: plugged into
/// `DatabaseOptions::checkpoint_hooks` it parks the fuzzy checkpointer at a
/// chosen (checkpoint index, phase) gate so a test can run edits, commits
/// or storage faults against a checkpoint frozen mid-pipeline, then release
/// it — e.g. "transaction begins after the ATT snapshot", "power is lost
/// between the end record and truncation".
class ScheduleController : public GroupCommitHooks, public CheckpointHooks {
 public:
  explicit ScheduleController(uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  uint64_t seed() const { return seed_; }

  // --- scheduling (call before / between flushes) ---

  /// Gates coalesced flush attempt number `n` (1-based): the flusher blocks
  /// in its start hook until `ReleaseFlush()`.
  void PauseAtFlush(uint64_t n);

  /// Seeded inclusive pick in [lo, hi] for choosing a flush index to gate.
  uint64_t PickFlush(uint64_t lo, uint64_t hi);

  // --- control (test side) ---

  /// Blocks until the flusher is parked at a gated flush. False on timeout.
  bool WaitUntilPaused(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

  /// Blocks until at least `k` committers are enqueued behind the group
  /// (as observed by enqueue hooks). False on timeout.
  bool WaitForWaiters(
      size_t k,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

  /// Opens the gate for the currently parked flush (and, if the released
  /// index was the only scheduled pause, lets later flushes run freely).
  void ReleaseFlush();

  /// Gates fuzzy checkpoint number `checkpoint_index` (1-based) at `phase`:
  /// the checkpointer blocks inside its phase hook until
  /// `ReleaseCheckpoint()`. Each gate fires at most once.
  void PauseAtCheckpoint(uint64_t checkpoint_index, CheckpointPhase phase);

  /// Blocks until the checkpointer is parked at a gate. False on timeout.
  bool WaitUntilCheckpointPaused(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

  /// Opens the gate the checkpointer is currently parked at (or the next
  /// one it reaches, if called early).
  void ReleaseCheckpoint();

  // --- observation ---

  uint64_t flushes_started() const;
  uint64_t flushes_finished() const;
  /// Largest waiter group observed at any enqueue.
  size_t max_waiters_seen() const;
  /// One-line reproduction recipe, e.g.
  /// "ScheduleController{seed=7, flushes=3/3, max_waiters=8}".
  std::string Describe() const;

  // --- GroupCommitHooks ---

  void OnCommitEnqueued(size_t waiters, Lsn lsn) override;
  void OnGroupFlushStart(uint64_t flush_index, size_t waiters,
                         Lsn target) override;
  void OnGroupFlushEnd(uint64_t flush_index, const Status& status) override;

  // --- CheckpointHooks ---

  void OnCheckpointPhase(uint64_t checkpoint_index,
                         CheckpointPhase phase) override;

 private:
  const uint64_t seed_;

  // The flush hooks run on WAL threads that may hold group-commit state;
  // this lock guards only the gate bookkeeping (the parked flusher waits on
  // cv_ holding nothing else), hence leaf rank.
  mutable Mutex mu_{"schedule.mu", lockorder::kRankLeaf};
  CondVar cv_;
  Random rng_ TENDAX_GUARDED_BY(mu_);
  std::set<uint64_t> pause_at_
      TENDAX_GUARDED_BY(mu_);  // flush indices with a closed gate
  bool paused_ TENDAX_GUARDED_BY(mu_) =
      false;  // flusher is parked at a gate right now
  uint64_t released_through_ TENDAX_GUARDED_BY(mu_) =
      0;  // gates at or below this index are open
  uint64_t started_ TENDAX_GUARDED_BY(mu_) = 0;
  uint64_t finished_ TENDAX_GUARDED_BY(mu_) = 0;
  size_t waiters_now_ TENDAX_GUARDED_BY(mu_) = 0;
  size_t max_waiters_ TENDAX_GUARDED_BY(mu_) = 0;

  // Checkpoint gate, mirroring the flush gate above. (index, phase) pairs
  // with a closed gate; each is erased when its pause fires.
  std::set<std::pair<uint64_t, uint8_t>> ckpt_pause_at_
      TENDAX_GUARDED_BY(mu_);
  bool ckpt_paused_ TENDAX_GUARDED_BY(mu_) = false;
  bool ckpt_release_ TENDAX_GUARDED_BY(mu_) = false;
};

}  // namespace tendax

#endif  // TENDAX_TESTING_SCHEDULE_CONTROLLER_H_

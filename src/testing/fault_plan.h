#ifndef TENDAX_TESTING_FAULT_PLAN_H_
#define TENDAX_TESTING_FAULT_PLAN_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>

#include "util/mutex.h"
#include "util/random.h"

namespace tendax {

/// Category of a storage I/O operation, as observed by the fault-injecting
/// wrappers in `fault_injection.h`. Disk-manager and log-storage traffic
/// share one global op counter so "crash at op N" covers any I/O point.
enum class IoOp : uint8_t {
  kAllocatePage = 0,
  kReadPage,
  kWritePage,
  kDiskSync,
  kLogAppend,
  kLogSync,
  kLogRead,
  kLogTruncate,
  kLogRotate,       // seal the current WAL segment, open the next
  kLogDropSegment,  // delete one truncated WAL segment
};

/// Human-readable name of an IoOp, e.g. "WritePage".
const char* IoOpName(IoOp op);

/// What the wrapper should do for one I/O call.
enum class FaultAction : uint8_t {
  kProceed,  // forward to the inner backend
  kFail,     // return an injected IOError; later ops proceed
  kTear,     // persist only `keep_bytes` of the data, then hard-crash
  kCrashed,  // the plan has crashed: fail without touching the backend
};

/// The wrapper-facing verdict for one I/O call.
struct FaultDecision {
  FaultAction action = FaultAction::kProceed;
  size_t keep_bytes = 0;  // kTear only: prefix that reaches the backend
  uint64_t op_index = 0;  // 1-based global index of this op
};

/// A deterministic, seeded schedule of storage faults.
///
/// One FaultPlan is shared by the `FaultInjectingDiskManager` and the
/// `FaultInjectingLogStorage` wrapping a database's storage, so the global
/// op index counts every storage I/O the database issues, in order. Faults
/// can be scheduled by global op index (crash/fail at any I/O point) or by
/// per-kind ordinal (tear the Nth log append, fail the Nth Sync). A given
/// seed plus a given schedule reproduces the same run bit-for-bit as long
/// as the workload itself is deterministic.
///
/// After a crash fault triggers, every subsequent I/O fails until
/// `Disarm()` is called — the moral equivalent of the machine losing power
/// with only the already-persisted bytes surviving.
///
/// Thread-safe; wrappers may be used from concurrent transactions.
class FaultPlan {
 public:
  static constexpr size_t kAutoTear = std::numeric_limits<size_t>::max();

  /// `seed` drives tear-point selection when no explicit byte offset is
  /// given, and is echoed by `Describe()` for reproduction.
  explicit FaultPlan(uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  uint64_t seed() const { return seed_; }

  // --- scheduling (call before the run; 1-based indexes) ---

  /// The `index`-th I/O op fails with IOError; the run continues.
  void FailOp(uint64_t index);

  /// Hard crash: op `index` and every later op fail with IOError.
  void CrashAtOp(uint64_t index);

  /// The `n`-th log append persists only `keep_bytes` (kAutoTear = pick a
  /// seeded random prefix at trigger time), then hard-crashes — a torn
  /// tail record.
  void TearNthLogAppend(uint64_t n, size_t keep_bytes = kAutoTear);

  /// The `n`-th page write persists only `keep_bytes` of the page image
  /// (merged over the old contents), then hard-crashes — a torn page.
  void TearNthPageWrite(uint64_t n, size_t keep_bytes = kAutoTear);

  /// The `n`-th Sync (disk or log) fails with IOError, once.
  void FailNthSync(uint64_t n);

  // --- runtime (called by the wrappers before every I/O) ---

  /// Decides the fate of the next I/O op. `data_size` is the payload size
  /// for writes/appends (used to pick auto tear points), 0 otherwise.
  FaultDecision OnIo(IoOp op, size_t data_size);

  /// Stops injecting faults (and clears the crashed state); op counting
  /// continues. Used to model the post-crash restart over the surviving
  /// bytes.
  void Disarm();

  /// True once a crash or tear fault has triggered.
  bool crashed() const;

  /// Total I/O ops observed so far (profiling runs use this to learn the
  /// crash-point space of a workload).
  uint64_t ops_seen() const;

  /// Per-kind ordinal counters, for scheduling kind-relative faults from a
  /// profiling run (e.g. "tear a log append somewhere in the workload").
  uint64_t appends_seen() const;
  uint64_t page_writes_seen() const;
  uint64_t syncs_seen() const;

  /// One-line reproduction recipe for failure messages, e.g.
  /// "FaultPlan{seed=7, crash_at_op=153, triggered=LogSync@153}".
  std::string Describe() const;

 private:
  struct Spec {
    FaultAction action;
    size_t keep_bytes;
  };

  const uint64_t seed_;

  // OnIo is called by the wrappers before forwarding to the inner backend,
  // possibly while a WAL or disk lock is held — the plan lock protects its
  // own counters only and is never held across anything, hence leaf rank.
  mutable Mutex mu_{"faultplan.mu", lockorder::kRankLeaf};
  Random rng_ TENDAX_GUARDED_BY(mu_);
  bool armed_ TENDAX_GUARDED_BY(mu_) = true;
  bool crashed_ TENDAX_GUARDED_BY(mu_) = false;
  uint64_t ops_ TENDAX_GUARDED_BY(mu_) = 0;
  uint64_t appends_ TENDAX_GUARDED_BY(mu_) = 0;
  uint64_t page_writes_ TENDAX_GUARDED_BY(mu_) = 0;
  uint64_t syncs_ TENDAX_GUARDED_BY(mu_) = 0;
  std::map<uint64_t, Spec> by_op_
      TENDAX_GUARDED_BY(mu_);  // global op index -> fault
  std::map<uint64_t, Spec> by_append_
      TENDAX_GUARDED_BY(mu_);  // nth log append -> fault
  std::map<uint64_t, Spec> by_page_write_
      TENDAX_GUARDED_BY(mu_);  // nth page write -> fault
  std::map<uint64_t, Spec> by_sync_
      TENDAX_GUARDED_BY(mu_);  // nth sync -> fault
  std::string triggered_
      TENDAX_GUARDED_BY(mu_);  // description of fired faults
};

}  // namespace tendax

#endif  // TENDAX_TESTING_FAULT_PLAN_H_

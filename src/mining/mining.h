#ifndef TENDAX_MINING_MINING_H_
#define TENDAX_MINING_MINING_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "lineage/lineage.h"
#include "meta/meta_store.h"
#include "text/text_store.h"
#include "util/ids.h"
#include "util/result.h"

namespace tendax {

/// A document's position in the 2-D visual-mining projection plus the
/// metadata dimensions the view can encode (size, age, authors — paper
/// Sec. 3 bullet 5 / Fig. 2).
struct DocPoint {
  DocumentId doc;
  std::string name;
  double x = 0, y = 0;        // similarity layout coordinates in [0, 1]
  uint64_t size = 0;          // live characters
  uint64_t age_micros = 0;    // now - created_at
  size_t author_count = 0;
  uint64_t read_count = 0;
  uint64_t citation_count = 0;
};

/// Axes selectable in the scatter view (dimension navigation).
enum class MiningAxis : uint8_t {
  kSimilarityX = 0,
  kSimilarityY = 1,
  kSize = 2,
  kAge = 3,
  kAuthors = 4,
  kReads = 5,
  kCitations = 6,
};

const char* MiningAxisName(MiningAxis axis);

/// Text mining over the stored corpus: tf-idf vectors, pairwise cosine
/// similarity, and per-document keyword extraction.
class TextMiner {
 public:
  explicit TextMiner(TextStore* text);

  /// (Re)computes tf-idf vectors for every document.
  Status BuildVectors();

  /// Cosine similarity of two documents' tf-idf vectors in [0, 1].
  Result<double> Similarity(DocumentId a, DocumentId b) const;

  /// Top-k highest tf-idf terms of a document.
  Result<std::vector<std::pair<std::string, double>>> Keywords(
      DocumentId doc, size_t k = 5) const;

  /// Most similar other documents.
  Result<std::vector<std::pair<DocumentId, double>>> Nearest(
      DocumentId doc, size_t k = 5) const;

  size_t VectorCount() const { return vectors_.size(); }

 private:
  TextStore* const text_;
  std::unordered_map<uint64_t, std::map<std::string, double>> vectors_;
  std::unordered_map<uint64_t, double> norms_;
};

/// The visual-mining view: projects the whole document space to 2-D with a
/// deterministic force layout over pairwise similarity, decorates each
/// point with metadata dimensions, and renders Fig. 2 as SVG or ASCII.
class VisualMiner {
 public:
  VisualMiner(TextStore* text, MetaStore* meta, LineageAnalyzer* lineage,
              Clock* clock);

  /// Computes the projection (`iterations` force steps; deterministic).
  Result<std::vector<DocPoint>> Project(int iterations = 50);

  /// Scatter of `points` on the chosen axes as an SVG document.
  std::string RenderSvg(const std::vector<DocPoint>& points,
                        MiningAxis x_axis = MiningAxis::kSimilarityX,
                        MiningAxis y_axis = MiningAxis::kSimilarityY,
                        int width = 640, int height = 480);

  /// Terminal scatter (rows x cols character grid).
  std::string RenderAscii(const std::vector<DocPoint>& points,
                          MiningAxis x_axis = MiningAxis::kSimilarityX,
                          MiningAxis y_axis = MiningAxis::kSimilarityY,
                          int cols = 64, int rows = 20);

 private:
  static double AxisValue(const DocPoint& p, MiningAxis axis);

  TextStore* const text_;
  MetaStore* const meta_;
  LineageAnalyzer* const lineage_;
  Clock* const clock_;
};

}  // namespace tendax

#endif  // TENDAX_MINING_MINING_H_

#include "mining/mining.h"

#include <algorithm>
#include <cmath>

#include "search/search_engine.h"  // Tokenize
#include "util/random.h"

namespace tendax {

const char* MiningAxisName(MiningAxis axis) {
  switch (axis) {
    case MiningAxis::kSimilarityX:
      return "similarity-x";
    case MiningAxis::kSimilarityY:
      return "similarity-y";
    case MiningAxis::kSize:
      return "size";
    case MiningAxis::kAge:
      return "age";
    case MiningAxis::kAuthors:
      return "authors";
    case MiningAxis::kReads:
      return "reads";
    case MiningAxis::kCitations:
      return "citations";
  }
  return "?";
}

TextMiner::TextMiner(TextStore* text) : text_(text) {}

Status TextMiner::BuildVectors() {
  vectors_.clear();
  norms_.clear();
  std::vector<DocumentId> docs = text_->ListDocuments();
  // Document frequencies.
  std::unordered_map<std::string, uint64_t> df;
  std::unordered_map<uint64_t, std::map<std::string, uint64_t>> tf;
  for (DocumentId doc : docs) {
    auto content = text_->Text(doc);
    if (!content.ok()) return content.status();
    auto& counts = tf[doc.value];
    for (const std::string& term : Tokenize(*content)) {
      ++counts[term];
    }
    for (const auto& [term, count] : counts) ++df[term];
  }
  const double n = static_cast<double>(docs.size());
  for (DocumentId doc : docs) {
    auto& vec = vectors_[doc.value];
    const auto& counts = tf[doc.value];
    uint64_t total = 0;
    for (const auto& [term, count] : counts) total += count;
    double norm_sq = 0;
    for (const auto& [term, count] : counts) {
      double weight = (static_cast<double>(count) / std::max<uint64_t>(1, total)) *
                      std::log(1.0 + n / static_cast<double>(df[term]));
      vec[term] = weight;
      norm_sq += weight * weight;
    }
    norms_[doc.value] = std::sqrt(norm_sq);
  }
  return Status::OK();
}

Result<double> TextMiner::Similarity(DocumentId a, DocumentId b) const {
  auto va = vectors_.find(a.value);
  auto vb = vectors_.find(b.value);
  if (va == vectors_.end() || vb == vectors_.end()) {
    return Status::FailedPrecondition("vectors not built for documents");
  }
  double na = norms_.at(a.value), nb = norms_.at(b.value);
  if (na == 0 || nb == 0) return 0.0;
  // Iterate the smaller vector.
  const auto& small = va->second.size() <= vb->second.size() ? va->second
                                                             : vb->second;
  const auto& large = va->second.size() <= vb->second.size() ? vb->second
                                                             : va->second;
  double dot = 0;
  for (const auto& [term, w] : small) {
    auto it = large.find(term);
    if (it != large.end()) dot += w * it->second;
  }
  return dot / (na * nb);
}

Result<std::vector<std::pair<std::string, double>>> TextMiner::Keywords(
    DocumentId doc, size_t k) const {
  auto it = vectors_.find(doc.value);
  if (it == vectors_.end()) {
    return Status::FailedPrecondition("vectors not built for document");
  }
  std::vector<std::pair<std::string, double>> terms(it->second.begin(),
                                                    it->second.end());
  std::sort(terms.begin(), terms.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (terms.size() > k) terms.resize(k);
  return terms;
}

Result<std::vector<std::pair<DocumentId, double>>> TextMiner::Nearest(
    DocumentId doc, size_t k) const {
  if (!vectors_.count(doc.value)) {
    return Status::FailedPrecondition("vectors not built for document");
  }
  std::vector<std::pair<DocumentId, double>> out;
  for (const auto& [other, vec] : vectors_) {
    if (other == doc.value) continue;
    auto sim = Similarity(doc, DocumentId(other));
    if (!sim.ok()) return sim.status();
    out.emplace_back(DocumentId(other), *sim);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (out.size() > k) out.resize(k);
  return out;
}

VisualMiner::VisualMiner(TextStore* text, MetaStore* meta,
                         LineageAnalyzer* lineage, Clock* clock)
    : text_(text), meta_(meta), lineage_(lineage), clock_(clock) {}

Result<std::vector<DocPoint>> VisualMiner::Project(int iterations) {
  std::vector<DocumentId> docs = text_->ListDocuments();
  const size_t n = docs.size();
  std::vector<DocPoint> points(n);

  TextMiner miner(text_);
  TENDAX_RETURN_IF_ERROR(miner.BuildVectors());

  // Citation counts from one graph build (cheaper than per-doc queries).
  auto graph = lineage_->BuildGraph();
  if (!graph.ok()) return graph.status();
  std::unordered_map<uint64_t, std::set<uint64_t>> citing;
  for (const auto& [edge, count] : graph->internal_edges) {
    citing[edge.first].insert(edge.second);
  }

  Timestamp now = clock_->NowMicros();
  Random rng(0x7E4DA8);  // fixed seed -> deterministic layout
  for (size_t i = 0; i < n; ++i) {
    points[i].doc = docs[i];
    auto info = text_->GetDocumentInfo(docs[i]);
    if (info.ok()) {
      points[i].name = info->name;
      points[i].size = info->length;
      points[i].age_micros = now > info->created ? now - info->created : 0;
    }
    auto meta = meta_->Meta(docs[i]);
    points[i].author_count = meta.authors.size();
    points[i].read_count = meta.total_reads;
    points[i].citation_count = citing[docs[i].value].size();
    points[i].x = rng.NextDouble();
    points[i].y = rng.NextDouble();
  }
  if (n <= 1) return points;

  // Pairwise similarities once.
  std::vector<std::vector<double>> sim(n, std::vector<double>(n, 0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      auto s = miner.Similarity(docs[i], docs[j]);
      if (!s.ok()) return s.status();
      sim[i][j] = sim[j][i] = *s;
    }
  }

  // Force layout: similar documents attract (target distance 1 - sim),
  // dissimilar ones repel. Deterministic spring relaxation.
  for (int step = 0; step < iterations; ++step) {
    double rate = 0.1 * (1.0 - static_cast<double>(step) / iterations);
    for (size_t i = 0; i < n; ++i) {
      double fx = 0, fy = 0;
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        double dx = points[j].x - points[i].x;
        double dy = points[j].y - points[i].y;
        double dist = std::sqrt(dx * dx + dy * dy) + 1e-9;
        double target = 1.0 - sim[i][j];  // similar -> close
        double force = (dist - target) / dist;
        fx += force * dx;
        fy += force * dy;
      }
      points[i].x += rate * fx / static_cast<double>(n);
      points[i].y += rate * fy / static_cast<double>(n);
    }
  }
  // Normalize into [0, 1].
  double min_x = 1e18, max_x = -1e18, min_y = 1e18, max_y = -1e18;
  for (const DocPoint& p : points) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  double span_x = std::max(1e-9, max_x - min_x);
  double span_y = std::max(1e-9, max_y - min_y);
  for (DocPoint& p : points) {
    p.x = (p.x - min_x) / span_x;
    p.y = (p.y - min_y) / span_y;
  }
  return points;
}

double VisualMiner::AxisValue(const DocPoint& p, MiningAxis axis) {
  switch (axis) {
    case MiningAxis::kSimilarityX:
      return p.x;
    case MiningAxis::kSimilarityY:
      return p.y;
    case MiningAxis::kSize:
      return static_cast<double>(p.size);
    case MiningAxis::kAge:
      return static_cast<double>(p.age_micros);
    case MiningAxis::kAuthors:
      return static_cast<double>(p.author_count);
    case MiningAxis::kReads:
      return static_cast<double>(p.read_count);
    case MiningAxis::kCitations:
      return static_cast<double>(p.citation_count);
  }
  return 0;
}

std::string VisualMiner::RenderSvg(const std::vector<DocPoint>& points,
                                   MiningAxis x_axis, MiningAxis y_axis,
                                   int width, int height) {
  double min_x = 1e18, max_x = -1e18, min_y = 1e18, max_y = -1e18;
  for (const DocPoint& p : points) {
    min_x = std::min(min_x, AxisValue(p, x_axis));
    max_x = std::max(max_x, AxisValue(p, x_axis));
    min_y = std::min(min_y, AxisValue(p, y_axis));
    max_y = std::max(max_y, AxisValue(p, y_axis));
  }
  double span_x = std::max(1e-9, max_x - min_x);
  double span_y = std::max(1e-9, max_y - min_y);

  std::string svg =
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
      std::to_string(width) + "\" height=\"" + std::to_string(height) +
      "\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  svg += "<text x=\"8\" y=\"16\" font-size=\"12\">TeNDaX visual mining: " +
         std::string(MiningAxisName(x_axis)) + " vs " +
         std::string(MiningAxisName(y_axis)) + " (" +
         std::to_string(points.size()) + " documents)</text>\n";
  for (const DocPoint& p : points) {
    double nx = (AxisValue(p, x_axis) - min_x) / span_x;
    double ny = (AxisValue(p, y_axis) - min_y) / span_y;
    int cx = 20 + static_cast<int>(nx * (width - 40));
    int cy = height - 20 - static_cast<int>(ny * (height - 40));
    // Radius encodes size; opacity encodes reads.
    double r = 3.0 + std::min(9.0, std::sqrt(static_cast<double>(p.size)) / 4);
    svg += "<circle cx=\"" + std::to_string(cx) + "\" cy=\"" +
           std::to_string(cy) + "\" r=\"" + std::to_string(r) +
           "\" fill=\"steelblue\" fill-opacity=\"0.6\"><title>" + p.name +
           " (size=" + std::to_string(p.size) +
           ", reads=" + std::to_string(p.read_count) +
           ", cites=" + std::to_string(p.citation_count) +
           ")</title></circle>\n";
  }
  svg += "</svg>\n";
  return svg;
}

std::string VisualMiner::RenderAscii(const std::vector<DocPoint>& points,
                                     MiningAxis x_axis, MiningAxis y_axis,
                                     int cols, int rows) {
  double min_x = 1e18, max_x = -1e18, min_y = 1e18, max_y = -1e18;
  for (const DocPoint& p : points) {
    min_x = std::min(min_x, AxisValue(p, x_axis));
    max_x = std::max(max_x, AxisValue(p, x_axis));
    min_y = std::min(min_y, AxisValue(p, y_axis));
    max_y = std::max(max_y, AxisValue(p, y_axis));
  }
  double span_x = std::max(1e-9, max_x - min_x);
  double span_y = std::max(1e-9, max_y - min_y);

  std::vector<std::string> grid(rows, std::string(cols, ' '));
  for (const DocPoint& p : points) {
    double nx = (AxisValue(p, x_axis) - min_x) / span_x;
    double ny = (AxisValue(p, y_axis) - min_y) / span_y;
    int c = std::min(cols - 1, static_cast<int>(nx * cols));
    int r = std::min(rows - 1, static_cast<int>((1.0 - ny) * rows));
    char& cell = grid[r][c];
    if (cell == ' ') {
      cell = 'o';
    } else if (cell == 'o') {
      cell = 'O';
    } else {
      cell = '@';  // 3+ documents share the cell
    }
  }
  std::string out = "visual mining (" + std::string(MiningAxisName(x_axis)) +
                    " vs " + MiningAxisName(y_axis) + ", " +
                    std::to_string(points.size()) + " docs)\n";
  out += "+" + std::string(cols, '-') + "+\n";
  for (const std::string& row : grid) {
    out += "|" + row + "|\n";
  }
  out += "+" + std::string(cols, '-') + "+\n";
  return out;
}

}  // namespace tendax

#ifndef TENDAX_DB_SLOTTED_PAGE_H_
#define TENDAX_DB_SLOTTED_PAGE_H_

#include <cstdint>

#include "storage/page.h"
#include "util/result.h"
#include "util/slice.h"

namespace tendax {

/// Slot number within a slotted page.
using SlotId = uint16_t;

/// A record id: page number plus slot, packed for WAL records and indexes.
struct RecordId {
  PageId page = kInvalidPageId;
  SlotId slot = 0;

  constexpr auto operator<=>(const RecordId&) const = default;

  uint64_t Pack() const {
    return (static_cast<uint64_t>(page) << 16) | slot;
  }
  static RecordId Unpack(uint64_t packed) {
    return RecordId{static_cast<PageId>(packed >> 16),
                    static_cast<SlotId>(packed & 0xFFFF)};
  }
  bool valid() const { return page != kInvalidPageId; }
  std::string ToString() const {
    return "(" + std::to_string(page) + "," + std::to_string(slot) + ")";
  }
};

/// Non-owning view implementing the classic slotted-page layout inside a
/// buffer-pool page's payload:
///
///   [table_id u32][next_page u32][num_slots u16][free_ptr u16]
///   [slot 0: offset u16, len u16][slot 1]...          (grows upward)
///   ... free space ...
///   [record data]                                      (grows downward)
///
/// `free_ptr` is the payload offset where the used data region begins. A
/// zeroed page (free_ptr == 0) is detected as uninitialized. Slot offsets of
/// 0xFFFF mark deleted slots (slot ids stay stable; data space is reclaimed
/// by compaction).
class SlottedPage {
 public:
  explicit SlottedPage(Page* page) : page_(page) {}

  /// Largest record that can ever be stored in a page (payload minus the
  /// 12-byte page header and one 4-byte slot entry).
  static constexpr size_t kMaxRecordSize = Page::payload_size() - 16;

  bool IsInitialized() const;
  void Init(uint32_t table_id);

  uint32_t table_id() const;
  PageId next_page() const;
  void set_next_page(PageId next);

  uint16_t num_slots() const;
  /// Bytes available for a new record, assuming one new slot entry and
  /// counting reclaimable (deleted) space.
  size_t FreeSpace() const;

  /// Stores `data` in a free slot; compacts if fragmented. Returns the slot.
  Result<SlotId> Insert(const Slice& data);

  /// Deterministic-replay variant: stores `data` in exactly `slot`,
  /// extending the slot directory if needed. Fails if the slot is occupied.
  Status InsertAt(SlotId slot, const Slice& data);

  /// Returns the record bytes (pointing into the page).
  Result<Slice> Get(SlotId slot) const;

  Status Delete(SlotId slot);

  /// Replaces the record in `slot`. Fails with kOutOfRange if the new data
  /// cannot fit even after compaction (caller then relocates the record).
  Status Update(SlotId slot, const Slice& data);

  /// True if the slot holds a live record.
  bool IsLive(SlotId slot) const;

  /// Structural integrity check: the slot directory and data region stay
  /// inside the payload, no live slot escapes the data region, and no two
  /// live records overlap. Uninitialized pages are vacuously valid. Used by
  /// `Database::CheckIntegrity` after crash recovery.
  Status Validate() const;

 private:
  static constexpr size_t kHeaderSize() { return 12; }
  static constexpr size_t kSlotSize = 4;

  char* payload() { return page_->payload(); }
  const char* payload() const { return page_->payload(); }

  uint16_t slot_offset(SlotId slot) const;
  uint16_t slot_len(SlotId slot) const;
  void set_slot(SlotId slot, uint16_t offset, uint16_t len);
  uint16_t free_ptr() const;
  void set_free_ptr(uint16_t v);
  void set_num_slots(uint16_t v);
  /// Contiguous gap between slot directory end and data region start.
  size_t ContiguousFree() const;
  /// Rewrites the data region to remove holes left by deletes/updates.
  void Compact();
  /// Writes record bytes into the data region; requires contiguous room.
  uint16_t EmplaceData(const Slice& data);

  static constexpr uint16_t kDeletedOffset = 0xFFFF;

  Page* page_;
};

}  // namespace tendax

#endif  // TENDAX_DB_SLOTTED_PAGE_H_

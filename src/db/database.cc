#include "db/database.h"

#include "db/slotted_page.h"
#include "storage/segmented_log.h"
#include "util/logging.h"

namespace tendax {

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  auto db = std::unique_ptr<Database>(new Database());
  db->clock_ =
      options.clock ? options.clock : std::make_shared<SystemClock>();

  if (options.disk) {
    db->disk_ = options.disk;
  } else if (options.path.empty()) {
    db->disk_ = std::make_shared<InMemoryDiskManager>();
  } else {
    auto disk = FileDiskManager::Open(options.path);
    if (!disk.ok()) return disk.status();
    db->disk_ = std::shared_ptr<DiskManager>(std::move(*disk));
  }

  if (options.log_storage) {
    db->log_storage_ = options.log_storage;
  } else if (options.path.empty()) {
    db->log_storage_ = std::make_shared<InMemoryLogStorage>();
  } else {
    auto log = SegmentedLogStorage::OpenFiles(options.path + ".wal");
    if (!log.ok()) return log.status();
    db->log_storage_ = std::move(*log);
  }

  db->metrics_ = options.metrics ? options.metrics
                                 : std::make_shared<MetricsRegistry>();
  db->wal_ = std::make_unique<Wal>(db->log_storage_, options.group_commit,
                                   db->metrics_.get(),
                                   options.wal_segment_bytes);
  db->buffer_pool_ = std::make_unique<BufferPool>(
      options.buffer_pool_pages, db->disk_.get(), db->wal_.get(),
      db->metrics_.get());
  db->lock_manager_ =
      std::make_unique<LockManager>(options.lock_timeout, db->metrics_.get());
  db->txn_manager_ = std::make_unique<TxnManager>(
      db->wal_.get(), db->lock_manager_.get(), db->clock_.get(),
      options.sync_commit, db->metrics_.get());
  db->txn_manager_->SetChangeApplier(db.get());
  db->catalog_ =
      std::make_unique<Catalog>(db->buffer_pool_.get(), db->txn_manager_.get());

  TENDAX_RETURN_IF_ERROR(db->RecoverAndLoad());

  // The checkpointer exists even without a background trigger so
  // CheckpointNow() always has a pipeline to run; Start() is a no-op then.
  CheckpointOptions ckpt;
  ckpt.interval_micros = options.checkpoint_interval_micros;
  ckpt.dirty_page_threshold = options.checkpoint_dirty_page_threshold;
  ckpt.hooks = options.checkpoint_hooks;
  db->checkpointer_ = std::make_unique<Checkpointer>(
      db->wal_.get(), db->buffer_pool_.get(), db->txn_manager_.get(),
      db->metrics_.get(), std::move(ckpt));
  db->checkpointer_->Start();
  return db;
}

Database::~Database() {
  // Stop the checkpointer before tearing anything down: its thread reaches
  // into the WAL, buffer pool, and txn manager.
  if (checkpointer_ != nullptr) {
    checkpointer_->Stop();
  }
  if (wal_ != nullptr) {
    // Resolve any committers still blocked on the group flusher before the
    // final flushes below.
    wal_->Shutdown();
    if (!wal_->poison_status().ok()) {
      // Fail-stopped: a shared flush failed after its waiters had released
      // their locks, so in-memory pages may hold effects the durable log
      // cannot justify. Close like a crash — write nothing back — and let
      // the next open recover from the log.
      return;
    }
  }
  // Shutdown flushes are best-effort: there is no caller left to act on a
  // failure, and recovery rebuilds anything that failed to reach disk.
  if (buffer_pool_ != nullptr) {
    (void)buffer_pool_->FlushAll();
  }
  if (wal_ != nullptr) {
    (void)wal_->FlushAll();
  }
}

Status Database::RecoverAndLoad() {
  std::vector<LogRecord> log;
  TENDAX_RETURN_IF_ERROR(wal_->ReadAll(&log));

  if (!log.empty()) {
    // Recovery works on schema-less stub tables: redo/undo is bytes-level.
    std::unordered_map<uint64_t, std::unique_ptr<HeapTable>> stubs;
    auto table_for = [&](uint64_t table_id) -> HeapTable* {
      auto it = stubs.find(table_id);
      if (it == stubs.end()) {
        auto stub = std::make_unique<HeapTable>(
            static_cast<uint32_t>(table_id), "__recovery_stub", Schema(),
            buffer_pool_.get(), txn_manager_.get());
        it = stubs.emplace(table_id, std::move(stub)).first;
      }
      return it->second.get();
    };
    RecoveryManager recovery(table_for, wal_.get());
    TENDAX_RETURN_IF_ERROR(recovery.Run(log));
    recovery_stats_ = recovery.stats();
    // State is now the committed history; make it durable and restart the
    // log so replay never sees the old records again.
    TENDAX_RETURN_IF_ERROR(buffer_pool_->FlushAll());
    TENDAX_RETURN_IF_ERROR(wal_->Reset());
  }

  auto pages = DiscoverPages();
  if (!pages.ok()) return pages.status();
  return catalog_->LoadFromStorage(*pages);
}

Result<std::unordered_map<uint32_t, std::vector<PageId>>>
Database::DiscoverPages() {
  std::unordered_map<uint32_t, std::vector<PageId>> by_table;
  const uint32_t n = disk_->NumPages();
  for (PageId pid = 0; pid < n; ++pid) {
    auto page = buffer_pool_->FetchPage(pid);
    if (!page.ok()) return page.status();
    PageGuard guard(buffer_pool_.get(), *page);
    SlottedPage sp(guard.get());
    uint32_t table_id = sp.table_id();
    if (!sp.IsInitialized()) continue;       // free/unused page
    if (table_id & 0x80000000u) continue;    // index page (derived data)
    by_table[table_id].push_back(pid);
  }
  return by_table;
}

Result<HeapTable*> Database::CreateTable(const std::string& name,
                                         const Schema& schema) {
  HeapTable* created = nullptr;
  Status st = txn_manager_->RunInTxn(
      UserId(0), [&](Transaction* txn) -> Status {
        TENDAX_RETURN_IF_ERROR(lock_manager_->Acquire(
            txn->id(), MakeResource(ResourceKind::kCatalog, 0), LockMode::kX));
        auto table = catalog_->CreateTable(txn, name, schema);
        if (!table.ok()) return table.status();
        created = *table;
        return Status::OK();
      });
  if (!st.ok()) return st;
  return created;
}

Result<HeapTable*> Database::EnsureTable(const std::string& name,
                                         const Schema& schema) {
  auto existing = catalog_->GetTable(name);
  if (existing.ok()) return existing;
  auto created = CreateTable(name, schema);
  if (created.ok()) return created;
  if (created.status().IsAlreadyExists()) return catalog_->GetTable(name);
  return created;
}

Result<HeapTable*> Database::GetTable(const std::string& name) const {
  return catalog_->GetTable(name);
}

Result<BPlusTree*> Database::CreateIndex(const std::string& name) {
  MutexLock lock(index_mu_);
  if (indexes_.count(name)) {
    return Status::AlreadyExists("index '" + name + "' exists");
  }
  auto tree = BPlusTree::Create(next_index_id_++, name, buffer_pool_.get());
  if (!tree.ok()) return tree.status();
  BPlusTree* raw = tree->get();
  indexes_[name] = std::move(*tree);
  return raw;
}

Result<BPlusTree*> Database::GetIndex(const std::string& name) const {
  MutexLock lock(index_mu_);
  auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return Status::NotFound("no index named '" + name + "'");
  }
  return it->second.get();
}

Status Database::Checkpoint() {
  if (wal_ != nullptr) {
    Status poisoned = wal_->poison_status();
    // A checkpoint must not write back pages the log cannot justify.
    if (!poisoned.ok()) return poisoned;
  }
  if (txn_manager_->ActiveCount() > 0) {
    return Status::FailedPrecondition(
        "checkpoint requires a quiescent database; use CheckpointNow() for "
        "a fuzzy checkpoint under load");
  }
  if (wal_->segmented()) {
    // With nobody active the fuzzy pipeline degenerates to the quiescent
    // one — empty ATT, every flushable page flushed — while keeping the
    // log in segment form.
    return CheckpointNow();
  }
  // Legacy single-file path: flush everything, restart the log.
  TENDAX_RETURN_IF_ERROR(buffer_pool_->FlushAll());
  TENDAX_RETURN_IF_ERROR(wal_->Reset());
  LogRecord marker;
  marker.type = LogType::kCheckpoint;
  auto lsn = wal_->Append(&marker);
  if (!lsn.ok()) return lsn.status();
  return wal_->Flush(*lsn);
}

Status Database::CheckpointNow() { return checkpointer_->CheckpointNow(); }

void Database::SimulateCrash() { buffer_pool_->DropAllForCrashTest(); }

Status Database::CheckIntegrity() const {
  // 1. Page level: fetching verifies the stored checksum; initialized data
  //    pages must also have a sound slot directory.
  const uint32_t n = disk_->NumPages();
  for (PageId pid = 0; pid < n; ++pid) {
    auto page = buffer_pool_->FetchPage(pid);
    if (!page.ok()) {
      return Status::Corruption("page " + std::to_string(pid) + ": " +
                                page.status().ToString());
    }
    PageGuard guard(buffer_pool_.get(), *page);
    SlottedPage sp(guard.get());
    if (!sp.IsInitialized()) continue;
    if (sp.table_id() & 0x80000000u) continue;  // index page, checked below
    Status st = sp.Validate();
    if (!st.ok()) {
      return Status::Corruption("page " + std::to_string(pid) + ": " +
                                st.ToString());
    }
  }
  // 2. Table level: every record must decode against its schema.
  for (const std::string& name : catalog_->TableNames()) {
    auto table = catalog_->GetTable(name);
    if (!table.ok()) return table.status();
    Status st = (*table)->Scan([](RecordId, const Record&) { return true; });
    if (!st.ok()) {
      return Status::Corruption("table " + name + ": " + st.ToString());
    }
  }
  // 3. Index level.
  MutexLock lock(index_mu_);
  for (const auto& [name, tree] : indexes_) {
    TENDAX_RETURN_IF_ERROR(tree->CheckIntegrity());
  }
  return Status::OK();
}

Status Database::ApplyChange(uint64_t table_id, UpdateOp op, uint64_t rid,
                             const std::string& image, Lsn lsn) {
  auto table = catalog_->GetTableById(table_id);
  if (!table.ok()) return table.status();
  return (*table)->ApplyChange(op, RecordId::Unpack(rid), image, lsn);
}

}  // namespace tendax

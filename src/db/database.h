#ifndef TENDAX_DB_DATABASE_H_
#define TENDAX_DB_DATABASE_H_

#include <chrono>
#include <memory>
#include <string>
#include <unordered_map>

#include "db/bptree.h"
#include "db/catalog.h"
#include "db/checkpointer.h"
#include "db/recovery.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/result.h"

namespace tendax {

/// Configuration for opening a database.
struct DatabaseOptions {
  /// Path prefix for the data file (`<path>`) and log (`<path>.wal`).
  /// Empty means fully in-memory.
  std::string path;
  /// Buffer pool capacity in pages.
  size_t buffer_pool_pages = 4096;
  /// Whether commits wait for the log flush.
  bool sync_commit = true;
  /// How commit flushes are serviced (per-commit vs group commit); the
  /// flusher thread, when configured, lives inside the Wal and is drained
  /// on close. See `GroupCommitOptions`.
  GroupCommitOptions group_commit;
  /// Lock wait timeout before a Conflict error. When the acquiring thread
  /// carries an ambient request deadline (util/deadline.h — armed by the
  /// wire endpoint from the frame's `deadline_micros`), the effective wait
  /// bound is min(lock_timeout, remaining deadline budget) and a
  /// deadline-side expiry surfaces as kDeadlineExceeded instead.
  std::chrono::milliseconds lock_timeout{2000};
  /// Time source for all metadata stamps; defaults to the system clock.
  std::shared_ptr<Clock> clock;
  /// Test hooks: pre-built storage to share across a simulated crash.
  std::shared_ptr<DiskManager> disk;
  std::shared_ptr<LogStorage> log_storage;
  /// Segmented WAL: rotate to a new segment once the current one exceeds
  /// this many bytes. Only meaningful over a segmented LogStorage —
  /// file-backed databases use one by default; in-memory/injected storages
  /// opt in by passing a SegmentedLogStorage as `log_storage`.
  uint64_t wal_segment_bytes = 1 << 20;
  /// Background fuzzy checkpointer cadence (0 = no timer trigger). With
  /// either trigger set, Open starts a checkpointer thread after recovery.
  uint64_t checkpoint_interval_micros = 0;
  /// Checkpoint once this many buffer-pool pages are dirty (0 = off).
  size_t checkpoint_dirty_page_threshold = 0;
  /// Test-only checkpoint phase hooks (pause gates); null in production.
  std::shared_ptr<CheckpointHooks> checkpoint_hooks;
  /// Metrics registry shared by every subsystem of this database. When
  /// unset, Open creates an enabled registry; pass one constructed with
  /// `MetricsRegistry(false)` to disable latency histograms.
  std::shared_ptr<MetricsRegistry> metrics;
};

/// The embedded database engine TeNDaX runs on: storage + WAL + buffer pool
/// + locking + transactions + catalog + crash recovery, in one handle.
///
/// Opening a database automatically runs ARIES-lite recovery over any log
/// left by a previous incarnation, then rebuilds the catalog from storage.
class Database : public ChangeApplier {
 public:
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);
  ~Database() override;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table in its own transaction.
  Result<HeapTable*> CreateTable(const std::string& name,
                                 const Schema& schema);
  /// Creates the table if it does not exist yet; returns it either way.
  Result<HeapTable*> EnsureTable(const std::string& name,
                                 const Schema& schema);
  Result<HeapTable*> GetTable(const std::string& name) const;

  /// Creates an in-memory-rooted, page-backed secondary index (derived
  /// data: rebuilt by callers after reopen, not WAL-logged).
  Result<BPlusTree*> CreateIndex(const std::string& name)
      TENDAX_EXCLUDES(index_mu_);
  Result<BPlusTree*> GetIndex(const std::string& name) const
      TENDAX_EXCLUDES(index_mu_);

  /// Quiescent checkpoint. Requires `txns()->ActiveCount() == 0`: with a
  /// transaction in flight this fails with `Status::FailedPrecondition`
  /// (message prefix "checkpoint requires a quiescent database") and
  /// changes nothing — callers that cannot guarantee quiescence should use
  /// `CheckpointNow()` instead, which is the whole point of the fuzzy
  /// pipeline. Over a segmented log this is a thin wrapper around
  /// `CheckpointNow()`; over a single-file log it keeps the legacy
  /// flush-everything-then-truncate behavior.
  Status Checkpoint();

  /// Non-quiescent (fuzzy) checkpoint: safe to call with any number of
  /// transactions in flight. See `Checkpointer` for the pipeline.
  Status CheckpointNow();

  /// Full structural integrity sweep: every initialized data page passes
  /// checksum verification and `SlottedPage::Validate`, every catalog table
  /// scans and decodes end to end, and every index passes
  /// `BPlusTree::CheckIntegrity`. Used by crash-recovery tests after reopen.
  Status CheckIntegrity() const;

  /// Drops all cached pages without flushing (crash simulation for tests;
  /// pair with reopening via the same DiskManager/LogStorage).
  void SimulateCrash();

  /// ChangeApplier: routes abort-undo changes to the owning table.
  Status ApplyChange(uint64_t table_id, UpdateOp op, uint64_t rid,
                     const std::string& image, Lsn lsn) override;

  TxnManager* txns() { return txn_manager_.get(); }
  LockManager* locks() { return lock_manager_.get(); }
  BufferPool* buffer_pool() { return buffer_pool_.get(); }
  Catalog* catalog() { return catalog_.get(); }
  Wal* wal() { return wal_.get(); }
  Clock* clock() { return clock_.get(); }
  /// Shared ownership for components whose artifacts can outlive the
  /// database (e.g. MVCC snapshots held by readers after eviction).
  std::shared_ptr<Clock> clock_shared() const { return clock_; }
  MetricsRegistry* metrics() { return metrics_.get(); }
  std::shared_ptr<MetricsRegistry> metrics_shared() const { return metrics_; }
  Checkpointer* checkpointer() { return checkpointer_.get(); }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

 private:
  Database() = default;

  Status RecoverAndLoad();
  /// Groups initialized data pages by owning table id (skips index pages).
  Result<std::unordered_map<uint32_t, std::vector<PageId>>> DiscoverPages();

  std::shared_ptr<Clock> clock_;
  // Declared before the subsystems that cache pointers into it so it is
  // destroyed after all of them.
  std::shared_ptr<MetricsRegistry> metrics_;
  std::shared_ptr<DiskManager> disk_;
  std::shared_ptr<LogStorage> log_storage_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BufferPool> buffer_pool_;
  std::unique_ptr<LockManager> lock_manager_;
  std::unique_ptr<TxnManager> txn_manager_;
  std::unique_ptr<Catalog> catalog_;
  // Declared after the subsystems it drives; its thread is stopped first
  // thing in ~Database, before the WAL shuts down.
  std::unique_ptr<Checkpointer> checkpointer_;

  // Held across BPlusTree::Create / CheckIntegrity (tree mutex, rank
  // kRankTable), hence the database rank.
  mutable Mutex index_mu_{"database.index", lockorder::kRankDatabase};
  std::unordered_map<std::string, std::unique_ptr<BPlusTree>> indexes_
      TENDAX_GUARDED_BY(index_mu_);
  uint32_t next_index_id_ TENDAX_GUARDED_BY(index_mu_) = 1;

  RecoveryStats recovery_stats_;
};

}  // namespace tendax

#endif  // TENDAX_DB_DATABASE_H_

#include "db/schema.h"

namespace tendax {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kUint64:
      return "UINT64";
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kBool:
      return "BOOL";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
  }
  return "?";
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    by_name_[columns_[i].name] = i;
  }
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return it->second;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ColumnTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace tendax

#ifndef TENDAX_DB_CHECKPOINTER_H_
#define TENDAX_DB_CHECKPOINTER_H_

#include <cstdint>
#include <memory>
#include <thread>

#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/wal.h"
#include "txn/txn_manager.h"
#include "util/mutex.h"
#include "util/status.h"

namespace tendax {

/// Where a fuzzy checkpoint run currently stands. Hooks fire at each phase
/// boundary, which is exactly where the crash sweeps and schedule tests
/// need to interleave concurrent commits or power loss.
enum class CheckpointPhase : uint8_t {
  kBeforeBegin = 0,    // about to append kCheckpointBegin
  kAfterBeginRecord,   // begin record appended, ATT/DPT snapshotted
  kAfterDirtyFlush,    // pre-checkpoint dirty pages written back
  kAfterEndRecord,     // kCheckpointEnd appended and durable
  kAfterTruncate,      // redundant segments deleted
};

/// Human-readable phase name, e.g. "AfterDirtyFlush".
const char* CheckpointPhaseName(CheckpointPhase phase);

/// Test-only observation and pause points on the checkpoint pipeline,
/// mirroring GroupCommitHooks. `ScheduleController` (src/testing)
/// implements this to park the checkpointer at a chosen phase while editor
/// commits (or a fault plan) run against it.
class CheckpointHooks {
 public:
  virtual ~CheckpointHooks() = default;
  /// Checkpoint number `checkpoint_index` (1-based) reached `phase`.
  /// Called without any storage lock held, so implementations may block —
  /// this is the pause gate.
  virtual void OnCheckpointPhase(uint64_t checkpoint_index,
                                 CheckpointPhase phase) {
    (void)checkpoint_index;
    (void)phase;
  }
};

/// Knobs for the background checkpointer, plumbed in via DatabaseOptions /
/// TendaxOptions.
struct CheckpointOptions {
  /// Run a checkpoint every this many microseconds (0 = no timer trigger).
  uint64_t interval_micros = 0;
  /// Run a checkpoint once this many buffer-pool pages are dirty
  /// (0 = no threshold trigger). Polled by the background thread.
  size_t dirty_page_threshold = 0;
  /// Test-only phase hooks; null in production.
  std::shared_ptr<CheckpointHooks> hooks;
};

/// Counters for the checkpoint pipeline.
struct CheckpointerStats {
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t pages_flushed = 0;       // dirty pages written by checkpoints
  uint64_t pages_skipped_busy = 0;  // left dirty because they stayed pinned
  uint64_t bytes_truncated = 0;     // WAL segment bytes deleted
  Lsn last_end_lsn = kInvalidLsn;   // kCheckpointEnd of the last success
  Lsn last_redo_lsn = kInvalidLsn;  // its computed redo point
};

/// The non-quiescent (fuzzy) checkpointer. A checkpoint runs concurrently
/// with editing transactions:
///
///   1. append kCheckpointBegin (LSN B)
///   2. snapshot the active-transaction table (TxnManager) and dirty-page
///      table (BufferPool, per-page rec_lsn)
///   3. write back the snapshotted dirty pages, skipping any that stay
///      pinned (they simply remain in the DPT and bound redo_lsn)
///   4. re-snapshot the DPT; redo_lsn = min(B, min rec_lsn)
///   5. append kCheckpointEnd carrying ATT + DPT + redo_lsn; flush it
///   6. rotate the WAL segment and delete segments wholly below
///      min(redo_lsn, min ATT first_lsn), oldest-first
///
/// Recovery then starts analysis at the last complete checkpoint instead
/// of record zero (see RecoveryManager), which together with step 6 makes
/// both restart time and log disk usage O(working set), not O(history).
///
/// Thread-safe; CheckpointNow() may be called directly (tests, the
/// quiescent Database::Checkpoint wrapper) and is serialized against the
/// background thread.
class Checkpointer {
 public:
  /// All pointers must outlive the Checkpointer; `metrics` may be null.
  Checkpointer(Wal* wal, BufferPool* pool, TxnManager* txns,
               MetricsRegistry* metrics, CheckpointOptions options);
  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Starts the background thread when a trigger (interval or threshold)
  /// is configured; no-op otherwise. Idempotent.
  void Start();

  /// Stops and joins the background thread. Idempotent; called by the
  /// destructor. In-flight checkpoints finish first.
  void Stop();

  /// Runs one fuzzy checkpoint synchronously on the calling thread.
  Status CheckpointNow() TENDAX_EXCLUDES(run_mu_);

  CheckpointerStats stats() const TENDAX_EXCLUDES(state_mu_);

 private:
  void Loop();
  Status RunOnce() TENDAX_REQUIRES(run_mu_);
  void Hook(uint64_t index, CheckpointPhase phase);

  Wal* const wal_;
  BufferPool* const pool_;
  TxnManager* const txns_;
  const CheckpointOptions options_;

  // Serializes checkpoint runs. Held across WAL appends, buffer-pool
  // flushes and the ATT snapshot, so it ranks with the database layer —
  // well below every storage/txn mutex it reaches into.
  mutable Mutex run_mu_{"checkpointer.run", lockorder::kRankDatabase};
  uint64_t index_ TENDAX_GUARDED_BY(run_mu_) = 0;

  // Lifecycle + stats only; never held across any call out.
  mutable Mutex state_mu_{"checkpointer.state", lockorder::kRankLeaf};
  CondVar cv_;
  bool stop_ TENDAX_GUARDED_BY(state_mu_) = false;
  bool started_ TENDAX_GUARDED_BY(state_mu_) = false;
  CheckpointerStats stats_ TENDAX_GUARDED_BY(state_mu_);
  std::thread thread_;

  // Registry mirrors (null without a registry).
  Counter* m_completed_ = nullptr;
  Counter* m_failed_ = nullptr;
  Counter* m_pages_flushed_ = nullptr;
  Counter* m_pages_busy_ = nullptr;
  Histogram* m_duration_micros_ = nullptr;
  Histogram* m_pages_per_checkpoint_ = nullptr;
};

}  // namespace tendax

#endif  // TENDAX_DB_CHECKPOINTER_H_

#ifndef TENDAX_DB_HEAP_TABLE_H_
#define TENDAX_DB_HEAP_TABLE_H_

#include <functional>
#include <string>
#include <vector>

#include "db/record.h"
#include "db/schema.h"
#include "db/slotted_page.h"
#include "storage/buffer_pool.h"
#include "txn/txn_manager.h"
#include "util/mutex.h"
#include "util/result.h"

namespace tendax {

/// A heap file of slotted pages holding one table's records.
///
/// Every mutation is WAL-logged through the owning transaction *before* it
/// is applied, and the touched page is stamped with the record's LSN, which
/// makes redo idempotent and replay deterministic (inserts are replayed into
/// the exact rid they got originally).
///
/// Pages self-describe their table via the slotted-page header, so the page
/// chain is discovered by scanning the database file at open — a broken
/// next-pointer can never orphan records after a crash.
class HeapTable {
 public:
  HeapTable(uint32_t table_id, std::string name, Schema schema,
            BufferPool* pool, TxnManager* txns);

  uint32_t table_id() const { return table_id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Validates against the schema, logs, and stores the record.
  Result<RecordId> Insert(Transaction* txn, const Record& record);

  /// Reads a record.
  Result<Record> Get(RecordId rid) const;

  /// Replaces a record. If the new version no longer fits in its page the
  /// record moves; the (possibly new) rid is returned and the move is logged
  /// as delete+insert.
  Result<RecordId> Update(Transaction* txn, RecordId rid,
                          const Record& record);

  Status Delete(Transaction* txn, RecordId rid);

  /// Visits every live record in (page, slot) order. Return false from the
  /// callback to stop early.
  Status Scan(
      const std::function<bool(RecordId, const Record&)>& fn) const;

  /// Number of live records (O(pages)).
  Result<uint64_t> Count() const;

  // --- recovery/undo interface (no logging; page-LSN guarded) ---

  /// Applies a change directly: insert `image` at exactly `rid`, update the
  /// record at `rid` to `image`, or delete it. When `lsn` is valid the
  /// change is skipped if the page already carries a newer LSN and the page
  /// is stamped after applying.
  Status ApplyChange(UpdateOp op, RecordId rid, const std::string& image,
                     Lsn lsn);

  /// Registers a page discovered at open time as belonging to this table.
  void AdoptPage(PageId page) TENDAX_EXCLUDES(mu_);

  /// Pages currently making up the heap file (ascending).
  std::vector<PageId> pages() const TENDAX_EXCLUDES(mu_);

 private:
  Result<std::string> GetBytes(RecordId rid) const;
  /// Finds (or allocates) a page with room for `need` bytes. Returns it
  /// pinned via the guard. Takes page latches while holding mu_ — the
  /// reverse order is never used (InsertBytes drops the latch first).
  Result<PageId> FindPageWithSpace(size_t need) TENDAX_EXCLUDES(mu_);
  /// Makes sure `page` exists on disk (used by replay) and is adopted.
  Status EnsurePage(PageId page) TENDAX_EXCLUDES(mu_);
  Result<RecordId> InsertBytes(Transaction* txn, const std::string& bytes)
      TENDAX_EXCLUDES(mu_);

  const uint32_t table_id_;
  const std::string name_;
  const Schema schema_;
  BufferPool* const pool_;
  TxnManager* const txns_;

  // Guards pages_ and insert placement.
  mutable Mutex mu_{"heaptable.mu", lockorder::kRankTable};
  std::vector<PageId> pages_ TENDAX_GUARDED_BY(mu_);  // ascending
  PageId last_insert_page_ TENDAX_GUARDED_BY(mu_) = kInvalidPageId;
};

}  // namespace tendax

#endif  // TENDAX_DB_HEAP_TABLE_H_

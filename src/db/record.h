#ifndef TENDAX_DB_RECORD_H_
#define TENDAX_DB_RECORD_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "db/schema.h"
#include "util/result.h"
#include "util/slice.h"

namespace tendax {

/// A single column value. `std::monostate` encodes SQL NULL.
using Value = std::variant<std::monostate, uint64_t, int64_t, bool, double,
                           std::string>;

bool ValueIsNull(const Value& v);
std::string ValueToString(const Value& v);

/// A typed tuple. Values are positional; the schema gives them names and
/// types. Encoding is self-delimiting so records can live in slotted pages.
class Record {
 public:
  Record() = default;
  explicit Record(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }
  Value& value(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  uint64_t GetUint(size_t i) const { return std::get<uint64_t>(values_[i]); }
  int64_t GetInt(size_t i) const { return std::get<int64_t>(values_[i]); }
  bool GetBool(size_t i) const { return std::get<bool>(values_[i]); }
  double GetDouble(size_t i) const { return std::get<double>(values_[i]); }
  const std::string& GetString(size_t i) const {
    return std::get<std::string>(values_[i]);
  }

  /// Serializes to a self-delimiting byte string.
  void EncodeTo(std::string* dst) const;
  std::string Encode() const;

  /// Parses bytes produced by EncodeTo.
  static Result<Record> Decode(Slice input);

  /// Checks the record's arity and value types against `schema` (NULLs pass).
  Status ConformsTo(const Schema& schema) const;

  std::string ToString() const;

  bool operator==(const Record& other) const { return values_ == other.values_; }

 private:
  std::vector<Value> values_;
};

}  // namespace tendax

#endif  // TENDAX_DB_RECORD_H_
